package fireledger

// Ablation benchmarks for the design choices DESIGN.md calls out: the §5.1
// next-block piggyback (amortized single-phase rounds vs the two-phase
// strawman) and the §6.1.1 benign failure detector under crash failures.

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/transport"
)

// BenchmarkAblationPiggyback contrasts the amortized one-phase protocol
// (piggyback on) against the two-phase strawman (piggyback off, explicit
// push every round). The paper's point: the piggyback removes one message
// delay per round, so bps rises with it, most visibly when latency
// dominates (LAN model, small blocks).
func BenchmarkAblationPiggyback(b *testing.B) {
	base := harness.Options{
		N: 4, Workers: 1, Batch: 1, TxSize: 64,
		Latency:           transport.SingleDC(),
		EgressBytesPerSec: 10e9 / 8,
		Warmup:            400 * time.Millisecond,
		Duration:          time.Second,
	}
	b.Run("piggyback-on", func(b *testing.B) {
		var bps float64
		for i := 0; i < b.N; i++ {
			bps = harness.RunFLO(base).BPS
		}
		b.ReportMetric(bps, "bps")
	})
	b.Run("piggyback-off", func(b *testing.B) {
		opts := base
		opts.DisablePiggyback = true
		var bps float64
		for i := 0; i < b.N; i++ {
			bps = harness.RunFLO(opts).BPS
		}
		b.ReportMetric(bps, "bps")
	})
}

// BenchmarkAblationFailureDetector contrasts throughput under a crashed
// node with the §6.1.1 benign FD active (default threshold) versus
// effectively disabled (huge threshold): without suspicion the cluster pays
// a full delivery timeout on every one of the crashed node's turns.
func BenchmarkAblationFailureDetector(b *testing.B) {
	base := harness.Options{
		N: 4, Workers: 1, Batch: 100, TxSize: 512,
		Latency:           transport.SingleDC(),
		EgressBytesPerSec: 10e9 / 8,
		Warmup:            400 * time.Millisecond,
		Duration:          2 * time.Second,
		CrashF:            1,
		InitialTimer:      100 * time.Millisecond,
	}
	b.Run("fd-on", func(b *testing.B) {
		var tps float64
		for i := 0; i < b.N; i++ {
			tps = harness.RunFLO(base).TPS
		}
		b.ReportMetric(tps, "tps")
	})
	b.Run("fd-off", func(b *testing.B) {
		opts := base
		opts.FDThreshold = 1 << 30 // suspicion never triggers
		var tps float64
		for i := 0; i < b.N; i++ {
			tps = harness.RunFLO(opts).TPS
		}
		b.ReportMetric(tps, "tps")
	})
}

// BenchmarkAblationProposerReshuffle measures the cost of the §6.1.1
// pseudo-random proposer permutation (VRF substitute) relative to plain
// round-robin in the fault-free case — it should be ~free.
func BenchmarkAblationProposerReshuffle(b *testing.B) {
	base := harness.Options{
		N: 7, Workers: 1, Batch: 100, TxSize: 512,
		Latency:           transport.SingleDC(),
		EgressBytesPerSec: 10e9 / 8,
		Warmup:            400 * time.Millisecond,
		Duration:          time.Second,
	}
	b.Run("round-robin", func(b *testing.B) {
		var tps float64
		for i := 0; i < b.N; i++ {
			tps = harness.RunFLO(base).TPS
		}
		b.ReportMetric(tps, "tps")
	})
	b.Run("reshuffle-every-20", func(b *testing.B) {
		opts := base
		opts.EpochLen = 20
		var tps float64
		for i := 0; i < b.N; i++ {
			tps = harness.RunFLO(opts).TPS
		}
		b.ReportMetric(tps, "tps")
	})
}

// BenchmarkAblationGossip contrasts clique body dissemination against
// push-gossip (§7.2.2's remark: gossip "may improve the throughput but not
// the latency"). The interesting metric is origin egress — with gossip the
// proposer sends fanout bodies instead of n−1 — traded against extra hops.
func BenchmarkAblationGossip(b *testing.B) {
	base := harness.Options{
		N: 10, Workers: 1, Batch: 100, TxSize: 512,
		Latency:           transport.SingleDC(),
		EgressBytesPerSec: 10e9 / 8,
		Warmup:            400 * time.Millisecond,
		Duration:          time.Second,
	}
	report := func(b *testing.B, opts harness.Options) {
		var res harness.Result
		for i := 0; i < b.N; i++ {
			res = harness.RunFLO(opts)
		}
		b.ReportMetric(res.BPS, "bps")
		b.ReportMetric(res.BytesPerBlock, "bytes/block")
	}
	b.Run("clique", func(b *testing.B) { report(b, base) })
	b.Run("gossip-fanout-3", func(b *testing.B) {
		opts := base
		opts.GossipBodies = true
		opts.GossipFanout = 3
		report(b, opts)
	})
}

// BenchmarkAblationCompression measures body compression (the paper's
// Conclusions: "one should consider compressing the data for large
// transactions") on large compressible transactions — wire bytes per block
// should collapse while throughput holds or improves under bandwidth
// pressure.
func BenchmarkAblationCompression(b *testing.B) {
	base := harness.Options{
		N: 4, Workers: 1, Batch: 100, TxSize: 4096,
		Latency:           transport.SingleDC(),
		EgressBytesPerSec: 10e9 / 8,
		Warmup:            400 * time.Millisecond,
		Duration:          time.Second,
		CompressibleLoad:  true,
	}
	report := func(b *testing.B, opts harness.Options) {
		var res harness.Result
		for i := 0; i < b.N; i++ {
			res = harness.RunFLO(opts)
		}
		b.ReportMetric(res.TPS, "tps")
		b.ReportMetric(res.BytesPerBlock, "bytes/block")
	}
	b.Run("plain", func(b *testing.B) { report(b, base) })
	b.Run("compressed", func(b *testing.B) {
		opts := base
		opts.CompressBodies = true
		report(b, opts)
	})
}

// BenchmarkAblationExcludeConvicted measures the accountability path (paper
// §1: Byzantine nodes are removed once proven): with exclusion on, an
// equivocator is convicted early in the run and throughput recovers to near
// fault-free levels; with it off, every one of its turns risks a recovery.
func BenchmarkAblationExcludeConvicted(b *testing.B) {
	base := harness.Options{
		N: 4, Workers: 1, Batch: 100, TxSize: 512,
		Latency:           transport.SingleDC(),
		EgressBytesPerSec: 10e9 / 8,
		Warmup:            time.Second, // long enough for the conviction to land
		Duration:          2 * time.Second,
		ByzantineF:        1,
	}
	report := func(b *testing.B, opts harness.Options) {
		var res harness.Result
		for i := 0; i < b.N; i++ {
			res = harness.RunFLO(opts)
		}
		b.ReportMetric(res.TPS, "tps")
		b.ReportMetric(res.RPS, "recoveries/s")
	}
	b.Run("exclusion-off", func(b *testing.B) { report(b, base) })
	b.Run("exclusion-on", func(b *testing.B) {
		opts := base
		opts.ExcludeConvicted = true
		report(b, opts)
	})
}

package fireledger

// One testing.B benchmark per table and figure of the paper's evaluation
// (§7). Each benchmark runs the corresponding harness experiment at a small
// fixed configuration per iteration and reports the figure's headline
// metric (tps, bps, sps, latency) via b.ReportMetric, so `go test -bench=.
// -benchmem` regenerates the whole evaluation at smoke scale. For the full
// parameter sweeps with paper-style rows, use cmd/flbench.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/harness"
	"repro/internal/transport"
)

// benchOpts is the shared per-iteration configuration: short windows keep
// b.N iterations affordable while still measuring steady state.
func benchOpts(n, workers, batch, size int) harness.Options {
	return harness.Options{
		N: n, Workers: workers, Batch: batch, TxSize: size,
		Latency:           transport.SingleDC(),
		EgressBytesPerSec: 10e9 / 8,
		Warmup:            300 * time.Millisecond,
		Duration:          700 * time.Millisecond,
	}
}

func reportFLO(b *testing.B, opts harness.Options) {
	b.Helper()
	// Allocation tracking rides on every cluster benchmark: run with
	// -benchmem to see allocs/op alongside the throughput metrics, so an
	// encode/hash regression shows up as an allocation spike here even
	// before it costs visible tps.
	b.ReportAllocs()
	var tps, bps, lat, poolReuse float64
	for i := 0; i < b.N; i++ {
		res := harness.RunFLO(opts)
		tps, bps = res.TPS, res.BPS
		lat = res.Latency.Percentile(50).Seconds()
		if res.EncPoolGets > 0 {
			poolReuse = float64(res.EncPoolReuses) / float64(res.EncPoolGets)
		}
	}
	b.ReportMetric(tps, "tps")
	b.ReportMetric(bps, "bps")
	b.ReportMetric(lat*1000, "latency-ms-p50")
	if poolReuse > 0 {
		b.ReportMetric(poolReuse, "encpool-reuse-frac")
	}
}

// BenchmarkTable1 measures the per-mode characteristics: signature
// operations per block and the OBBC fast-path fraction in the fault-free,
// crash, and Byzantine modes.
func BenchmarkTable1(b *testing.B) {
	modes := []struct {
		name             string
		crash, byzantine int
	}{
		{"fault-free", 0, 0},
		{"crash-f", 1, 0},
		{"byzantine-f", 0, 1},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			opts := benchOpts(4, 1, 100, 512)
			opts.CrashF = m.crash
			opts.ByzantineF = m.byzantine
			opts.Duration = 1500 * time.Millisecond
			var sign, fast, rps float64
			for i := 0; i < b.N; i++ {
				res := harness.RunFLO(opts)
				sign, fast, rps = res.SignOpsPerBlock, res.FastFraction, res.RPS
			}
			b.ReportMetric(sign, "sign-ops/block")
			b.ReportMetric(fast, "fast-frac")
			b.ReportMetric(rps, "recoveries/s")
		})
	}
}

// BenchmarkFig5 measures the signature generation rate (sps) across the ω,
// β, σ grid of the §7.1 micro-benchmark.
func BenchmarkFig5(b *testing.B) {
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{10, 1000} {
			for _, size := range []int{512, 4096} {
				b.Run(fmt.Sprintf("w%d/beta%d/sigma%d", workers, batch, size), func(b *testing.B) {
					var sps float64
					for i := 0; i < b.N; i++ {
						sps = harness.SignatureRate(flcrypto.Ed25519, workers, batch, size, 150*time.Millisecond)
					}
					b.ReportMetric(sps, "sps")
				})
			}
		}
	}
}

// BenchmarkFig6 measures FLO's block rate (bps) versus cluster size in a
// single data-center.
func BenchmarkFig6(b *testing.B) {
	for _, n := range []int{4, 7, 10} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			reportFLO(b, benchOpts(n, 2, 1, 64))
		})
	}
}

// BenchmarkFig7 measures FLO's transaction throughput across the Table 2
// sweep corners in a single data-center.
func BenchmarkFig7(b *testing.B) {
	for _, n := range []int{4, 10} {
		for _, batch := range []int{10, 1000} {
			b.Run(fmt.Sprintf("n%d/beta%d/sigma512", n, batch), func(b *testing.B) {
				reportFLO(b, benchOpts(n, 4, batch, 512))
			})
		}
	}
}

// BenchmarkFig8 measures the delivery-latency distribution (the CDFs of
// Fig 8): p50 and p99 for σ=512.
func BenchmarkFig8(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			opts := benchOpts(4, workers, 100, 512)
			var p50, p99 float64
			for i := 0; i < b.N; i++ {
				res := harness.RunFLO(opts)
				p50 = res.Latency.Percentile(50).Seconds() * 1000
				p99 = res.Latency.Percentile(99).Seconds() * 1000
			}
			b.ReportMetric(p50, "latency-ms-p50")
			b.ReportMetric(p99, "latency-ms-p99")
		})
	}
}

// BenchmarkFig9 measures the event-breakdown gaps (A→B, B→C, C→D, D→E).
func BenchmarkFig9(b *testing.B) {
	opts := benchOpts(4, 2, 100, 512)
	var gaps [4]float64
	for i := 0; i < b.N; i++ {
		res := harness.RunFLO(opts)
		for g := 0; g < 4; g++ {
			gaps[g] = res.Gaps[g].Seconds() * 1000
		}
	}
	for g, name := range []string{"A-B", "B-C", "C-D", "D-E"} {
		b.ReportMetric(gaps[g], name+"-ms")
	}
}

// BenchmarkFig10 measures scalability at a large cluster size.
func BenchmarkFig10(b *testing.B) {
	opts := benchOpts(16, 1, 100, 512)
	opts.Warmup = time.Second
	reportFLO(b, opts)
}

// BenchmarkFig11 measures throughput while f nodes are crashed.
func BenchmarkFig11(b *testing.B) {
	for _, n := range []int{4, 7} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			opts := benchOpts(n, 1, 100, 512)
			opts.CrashF = (n - 1) / 3
			opts.Duration = 2 * time.Second
			reportFLO(b, opts)
		})
	}
}

// BenchmarkFig12 measures throughput and recovery rate under the §7.4.2
// Byzantine split-equivocator.
func BenchmarkFig12(b *testing.B) {
	opts := benchOpts(4, 1, 100, 512)
	opts.ByzantineF = 1
	opts.Warmup = time.Second
	opts.Duration = 3 * time.Second
	var tps, rps float64
	for i := 0; i < b.N; i++ {
		res := harness.RunFLO(opts)
		tps, rps = res.TPS, res.RPS
	}
	b.ReportMetric(tps, "tps")
	b.ReportMetric(rps, "recoveries/s")
}

// BenchmarkFig13 measures the block rate in the geo-distributed setting.
func BenchmarkFig13(b *testing.B) {
	for _, n := range []int{4, 10} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			opts := benchOpts(n, 2, 1, 64)
			opts.Latency = transport.Geo(0.05)
			opts.InitialTimer = 100 * time.Millisecond
			opts.Warmup = time.Second
			opts.Duration = 2 * time.Second
			reportFLO(b, opts)
		})
	}
}

// BenchmarkFig14 measures geo throughput for σ=512.
func BenchmarkFig14(b *testing.B) {
	opts := benchOpts(10, 4, 100, 512)
	opts.Latency = transport.Geo(0.05)
	opts.InitialTimer = 100 * time.Millisecond
	opts.Warmup = time.Second
	opts.Duration = 2 * time.Second
	reportFLO(b, opts)
}

// BenchmarkFig15 measures geo latency (5% trimmed mean, as in the paper).
func BenchmarkFig15(b *testing.B) {
	opts := benchOpts(10, 1, 100, 512)
	opts.Latency = transport.Geo(0.05)
	opts.InitialTimer = 100 * time.Millisecond
	opts.Warmup = time.Second
	opts.Duration = 2 * time.Second
	var trimmed float64
	for i := 0; i < b.N; i++ {
		res := harness.RunFLO(opts)
		trimmed = res.Latency.TrimmedMean(0.05).Seconds() * 1000
	}
	b.ReportMetric(trimmed, "latency-ms-trimmed")
}

// BenchmarkFig16 compares FLO and HotStuff on the same harness.
func BenchmarkFig16(b *testing.B) {
	opts := benchOpts(4, 4, 200, 512)
	b.Run("flo", func(b *testing.B) { reportFLO(b, opts) })
	b.Run("hotstuff", func(b *testing.B) {
		var tps, lat float64
		for i := 0; i < b.N; i++ {
			res := harness.RunHotStuff(opts)
			tps = res.TPS
			lat = res.Latency.Percentile(50).Seconds() * 1000
		}
		b.ReportMetric(tps, "tps")
		b.ReportMetric(lat, "latency-ms-p50")
	})
}

// BenchmarkVerifyPipeline measures the saturated-throughput effect of the
// asynchronous verification pipeline (verify pool + cache + mailbox
// dispatch) against the synchronous-inline ablation, at the Fig 7 heavy
// corner. The micro-benchmarks behind BENCH_verify.json live in
// internal/flcrypto; this one shows the end-to-end difference.
func BenchmarkVerifyPipeline(b *testing.B) {
	for _, mode := range []struct {
		name            string
		sync, batchless bool
	}{{"pooled", false, false}, {"pooled-nobatch", false, true}, {"sync", true, false}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := benchOpts(4, 4, 200, 512)
			opts.SyncVerify = mode.sync
			opts.DisableBatchVerify = mode.batchless
			reportFLO(b, opts)
		})
	}
}

// BenchmarkFig17 compares FLO and the PBFT ordering service (the BFT-SMaRt
// stand-in).
func BenchmarkFig17(b *testing.B) {
	opts := benchOpts(4, 4, 200, 512)
	b.Run("flo", func(b *testing.B) { reportFLO(b, opts) })
	b.Run("pbft", func(b *testing.B) {
		var tps, lat float64
		for i := 0; i < b.N; i++ {
			res := harness.RunPBFT(opts)
			tps = res.TPS
			lat = res.Latency.Percentile(50).Seconds() * 1000
		}
		b.ReportMetric(tps, "tps")
		b.ReportMetric(lat, "latency-ms-p50")
	})
}

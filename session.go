package fireledger

import (
	"context"

	"repro/internal/clientapi"
)

// ErrCompacted reports a Blocks cursor below the node's retained history
// (the rounds were checkpointed away): the stream cannot be served without
// a gap, and the consumer must restart from current state instead of
// replaying. Detect it on a terminal BlockEvent with errors.Is — it is
// typed identically on the in-process and remote paths.
var ErrCompacted = clientapi.ErrCompacted

// ErrNoState reports a state read against a node that runs without a state
// backend (Config.State nil). It is typed identically on the in-process and
// remote paths; detect it with errors.Is.
var ErrNoState = clientapi.ErrNoState

// Session-layer vocabulary, shared by the in-process Client and the remote
// session behind Dial. Downstream code imports only this package.
type (
	// Receipt is the proof of commitment a resolved write carries: the
	// worker, round, and header hash of the definite block (in the merged
	// global order) the transaction landed in.
	Receipt = clientapi.Receipt
	// Cursor addresses a position in the merged definite block stream —
	// the next block wanted is (Worker, Round). The zero Cursor means
	// "from genesis"; resume after a block with Cursor{w, r}.Next(ω).
	Cursor = clientapi.Cursor
	// Pending is an in-flight write: acked when a node accepts it,
	// resolved with its Receipt when it reaches a definite block.
	Pending = clientapi.Pending
	// BlockEvent is one element of a Blocks stream: a definite block of
	// the merged order, or a terminal error before the channel closes.
	BlockEvent = clientapi.BlockEvent
	// Info describes the serving node: identity, cluster size, worker
	// count ω (needed for Cursor.Next), and delivery totals.
	Info = clientapi.Info
	// ReadToken anchors a state read at a commit receipt: the read blocks
	// until the serving node's applied frontier covers (Worker, Round), so
	// a session that writes and then reads with the write's Receipt.Token()
	// observes its own write even against a different node. The zero token
	// reads whatever is currently applied.
	ReadToken = clientapi.ReadToken
	// Entry is one key/value pair of a Scan result.
	Entry = clientapi.Entry
	// KeyUpdate is one WatchKey notification: the key's value (or deletion)
	// as of the definite block at (Worker, Round). Intermediate updates may
	// be coalesced; the latest state is always delivered.
	KeyUpdate = clientapi.KeyUpdate
	// StreamOption narrows a Blocks stream with a server-side filter
	// (WithClientFilter, WithTxPrefix); see Session.Blocks.
	StreamOption = clientapi.StreamOption
)

// WithClientFilter restricts a Blocks stream to blocks carrying at least one
// transaction submitted by client — an end-user app streams its own writes,
// not the whole ledger. Evaluated on the serving side (once per block, shared
// across subscribers on the remote path), so suppressed blocks never cross
// the wire.
func WithClientFilter(client uint64) StreamOption { return clientapi.WithClientFilter(client) }

// WithTxPrefix restricts a Blocks stream to blocks carrying at least one
// transaction whose payload starts with prefix. Options combine
// conjunctively: with both set, some single transaction must match both.
func WithTxPrefix(prefix []byte) StreamOption { return clientapi.WithTxPrefix(prefix) }

// Session is the application-facing FireLedger client API. Both transports
// implement it identically:
//
//   - NewClient attaches an in-process session to a *Node in the same
//     process (examples, embedded deployments, tests).
//   - Dial opens a remote session to a node's client port over the
//     versioned wire protocol of internal/clientapi (cmd/fireledger
//     -client serves it; cmd/flclient consumes it).
//
// Writes: Submit pipelines a payload and returns a Pending that resolves
// with the commit Receipt once the transaction is in a definite block of
// the merged order — final under BBFC(f+1), not merely tentative. Reads:
// Blocks streams the merged definite block sequence from a Cursor, replaying
// history from the node's log before following the live tail, every block
// exactly once — so a consumer that reconnects with the cursor just past
// its last block resumes with no gaps and no duplicates.
type Session interface {
	// Submit sends payload as this session's next transaction.
	Submit(payload []byte) (*Pending, error)
	// SubmitWait is Submit followed by Pending.Wait: it blocks until the
	// write is final and returns its commit receipt.
	SubmitWait(ctx context.Context, payload []byte) (Receipt, error)
	// Blocks streams the merged definite block sequence from cursor. The
	// channel closes when ctx ends, the session closes, or the cursor
	// predates the node's retained history (a terminal BlockEvent.Err
	// reports abnormal ends; test the latter with
	// errors.Is(ev.Err, ErrCompacted)). Options (WithClientFilter,
	// WithTxPrefix) narrow the stream to blocks carrying a matching
	// transaction; the cursor still advances over suppressed blocks, so
	// resuming from the last received block's Cursor.Next is gap-free in
	// the filtered view. Portable code opens at most one stream per
	// session: a remote session carries one subscription per connection,
	// and the in-process implementation's support for several concurrent
	// streams is an extension.
	Blocks(ctx context.Context, cursor Cursor, opts ...StreamOption) (<-chan BlockEvent, error)
	// Get reads key from the node's ledger state once the applied frontier
	// covers at (use Receipt.Token() for read-your-writes; the zero token
	// reads current state). It returns the value and whether the key exists,
	// or ErrNoState if the node runs without a state backend.
	Get(ctx context.Context, key string, at ReadToken) ([]byte, bool, error)
	// Scan returns up to max entries with begin <= key < end in ascending
	// key order, anchored at at like Get. The empty end means "to the last
	// key"; max <= 0 asks for the transport's cap (a remote session never
	// returns more than its per-reply limit — page by re-issuing Scan with
	// begin just past the last key returned).
	Scan(ctx context.Context, begin, end string, max int, at ReadToken) ([]Entry, error)
	// WatchKey streams updates to key: first the key's state once the
	// frontier covers at, then a KeyUpdate whenever a definite block changes
	// it (coalesced under load — the latest state always arrives). The
	// channel closes when ctx ends or the session closes.
	WatchKey(ctx context.Context, key string, at ReadToken) (<-chan KeyUpdate, error)
	// Info reports the serving node's identity and delivery totals.
	Info(ctx context.Context) (Info, error)
	// Close releases the session and its client identity; unresolved
	// Pendings fail.
	Close() error
}

// Dial opens a remote Session to a node's client port (cmd/fireledger
// -client). clientID is the session's identity: it must be unique among the
// node's live sessions — the server refuses duplicates — and scopes the
// sequence numbers that pair submissions with commit receipts.
func Dial(addr string, clientID uint64) (Session, error) {
	c, err := clientapi.Dial(addr, clientID, clientapi.DialOptions{})
	if err != nil {
		return nil, err
	}
	return &remoteSession{c: c}, nil
}

// remoteSession adapts the wire client to the Session interface.
type remoteSession struct{ c *clientapi.Client }

func (s *remoteSession) Submit(payload []byte) (*Pending, error) { return s.c.Submit(payload) }
func (s *remoteSession) SubmitWait(ctx context.Context, payload []byte) (Receipt, error) {
	return s.c.SubmitWait(ctx, payload)
}
func (s *remoteSession) Blocks(ctx context.Context, cursor Cursor, opts ...StreamOption) (<-chan BlockEvent, error) {
	return s.c.SubscribeFiltered(ctx, cursor, clientapi.BuildFilter(opts...))
}
func (s *remoteSession) Get(ctx context.Context, key string, at ReadToken) ([]byte, bool, error) {
	return s.c.Get(ctx, key, at)
}
func (s *remoteSession) Scan(ctx context.Context, begin, end string, max int, at ReadToken) ([]Entry, error) {
	return s.c.Scan(ctx, begin, end, max, at)
}
func (s *remoteSession) WatchKey(ctx context.Context, key string, at ReadToken) (<-chan KeyUpdate, error) {
	return s.c.WatchKey(ctx, key, at)
}
func (s *remoteSession) Info(ctx context.Context) (Info, error) { return s.c.Info(ctx) }
func (s *remoteSession) Close() error                           { return s.c.Close() }

// Both session implementations satisfy the interface.
var (
	_ Session = (*Client)(nil)
	_ Session = (*remoteSession)(nil)
)

#!/usr/bin/env bash
# Cold-start smoke for cmd/fireledger: boot a node with an EMPTY data dir
# into a TCP cluster whose survivors have long since compacted their logs
# past genesis. Range sync alone cannot rebuild the newcomer (no peer
# retains rounds 1..base anymore); the node must negotiate a snapshot
# transfer, install it, and then make live progress — all with zero
# operator intervention. CI runs this after the unit suites.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
bin="$workdir/fireledger"
trap 'kill $(jobs -p) 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$bin" ./cmd/fireledger

addrs=127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7303,127.0.0.1:7304
common=(-addrs "$addrs" -workers 1 -batch 20 -saturate 64 -snapshot-every 4 -catchup-batch 8 -stats 1s)

# Three of four nodes: quorum (n-f = 3) holds, so they decide and compact
# aggressively (retain = f+2+4 = 7 rounds) while node 3 does not exist yet.
for i in 0 1 2; do
  "$bin" -id "$i" "${common[@]}" -data "$workdir/n$i" >"$workdir/n$i.log" 2>&1 &
done

# Wait until the survivors are far past anything a cold node could range-
# sync: >= 60 definite blocks guarantees the retained tail starts well
# above round 1.
deadline=$((SECONDS + 120))
while :; do
  blocks=$(sed -n 's/.*total: [0-9]* txs, \([0-9]*\) blocks.*/\1/p' "$workdir/n0.log" | tail -1)
  [ -n "${blocks:-}" ] && [ "$blocks" -ge 60 ] && break
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "FAIL: survivors never reached 60 definite blocks"
    tail -20 "$workdir"/n*.log
    exit 1
  fi
  sleep 1
done

# Cold-start node 3 with a fresh data dir: no chain, no state, no history.
"$bin" -id 3 "${common[@]}" -data "$workdir/n3" >"$workdir/n3.log" 2>&1 &

deadline=$((SECONDS + 90))
until grep -q 'installed transferred snapshot' "$workdir/n3.log"; do
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "FAIL: cold node never installed a transferred snapshot"
    tail -40 "$workdir"/n*.log
    exit 1
  fi
  sleep 1
done

# The install alone is not enough — the node must join live consensus.
deadline=$((SECONDS + 60))
until grep -Eq 'tps=[1-9]' "$workdir/n3.log"; do
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "FAIL: node 3 installed a snapshot but shows no live throughput"
    tail -40 "$workdir/n3.log"
    exit 1
  fi
  sleep 1
done

echo "OK: cold-started node rejoined via snapshot transfer"
grep 'installed transferred snapshot' "$workdir/n3.log" | head -3

package fireledger

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/clientapi"
	"repro/internal/flcrypto"
	"repro/internal/transport"
)

// TestRemoteSessionEndToEnd is the cmd/fireledger + cmd/flclient deployment
// path as an integration test: a 4-node FLO cluster over real loopback TCP
// sockets, the clientapi server fronting node 0, and remote Sessions dialed
// through the public fireledger.Dial. It asserts the acceptance contract of
// the client API redesign:
//
//   - every submit is acked, and every write yields a commit receipt that
//     names a real definite block containing the transaction;
//   - a subscriber started at cursor zero observes the identical merged
//     definite stream the node's own delivery hook saw — same blocks, same
//     order, no gaps, no duplicates.
func TestRemoteSessionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("opens real sockets")
	}
	const n = 4
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	ks, err := flcrypto.GenerateKeySet(n, flcrypto.Ed25519,
		flcrypto.NewDeterministicReader("session-e2e"))
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		worker uint32
		round  uint64
		hash   Hash
	}
	var mu sync.Mutex
	var local []key

	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		ep, err := transport.NewTCPEndpoint(transport.TCPConfig{
			ID:    flcrypto.NodeID(i),
			Addrs: addrs,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Endpoint:     ep,
			Registry:     ks.Registry,
			Priv:         ks.Privs[i],
			Workers:      1,
			BatchSize:    8,
			InitialTimer: 100 * time.Millisecond,
		}
		if i == 0 {
			cfg.Deliver = func(w uint32, blk Block) {
				mu.Lock()
				local = append(local, key{w, blk.Signed.Header.Round, blk.Hash()})
				mu.Unlock()
			}
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	srv := clientapi.NewServer(nodes[0], clientapi.ServerOptions{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		srv.Close()
		for _, node := range nodes {
			node.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Subscriber from cursor zero, started before any write.
	subscriber, err := Dial(srv.Addr(), 500)
	if err != nil {
		t.Fatal(err)
	}
	defer subscriber.Close()
	events, err := subscriber.Blocks(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}

	// Writer session: every write acked and committed with a receipt
	// pointing at a real definite block that contains it.
	writer, err := Dial(srv.Addr(), 501)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	const writes = 10
	for i := 0; i < writes; i++ {
		p, err := writer.Submit([]byte{byte(i)})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		select {
		case <-p.Acked():
		case <-ctx.Done():
			t.Fatalf("write %d was never acked", i)
		}
		receipt, err := p.Wait(ctx)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		blk, ok := nodes[0].Worker(int(receipt.Worker)).Chain().BlockAt(receipt.Round)
		if !ok {
			t.Fatalf("write %d: receipt names unknown round %d", i, receipt.Round)
		}
		if blk.Hash() != receipt.BlockHash {
			t.Fatalf("write %d: receipt hash mismatch", i)
		}
		found := false
		for _, tx := range blk.Body.Txs {
			if tx.Client == 501 && tx.Seq == p.Tx.Seq {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("write %d: receipt block does not contain the transaction", i)
		}
	}

	// The subscriber's stream must be byte-identical (worker, round, hash)
	// with what node 0's own delivery hook observed, from the beginning.
	const compare = 30
	var remote []key
	for len(remote) < compare {
		select {
		case ev, ok := <-events:
			if !ok || ev.Err != nil {
				t.Fatalf("stream ended after %d blocks: %v", len(remote), ev.Err)
			}
			remote = append(remote, key{ev.Worker, ev.Block.Signed.Header.Round, ev.Block.Hash()})
		case <-ctx.Done():
			t.Fatalf("timed out after %d streamed blocks", len(remote))
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		have := len(local)
		mu.Unlock()
		if have >= compare {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 0 delivered only %d blocks", have)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < compare; i++ {
		if remote[i] != local[i] {
			t.Fatalf("merged stream diverges at %d: remote %+v, local %+v", i, remote[i], local[i])
		}
	}
}

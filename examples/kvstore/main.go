// Command kvstore builds a replicated key-value store on FireLedger's
// Session API: SET operations are submitted through a session and ordered
// by the blockchain; every replica materializes its map by consuming a
// Blocks stream from cursor zero — the merged definite order, replayed from
// history and then followed live, each block exactly once. Reads are served
// locally from finalized state only — the paper's FLO read path, where an
// answer is returned only once it is definitely decided (§6.2).
package main

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	fireledger "repro"
)

// store is one replica's materialized state.
type store struct {
	mu   sync.RWMutex
	data map[string]string
	ops  int
}

func newStore() *store { return &store{data: make(map[string]string)} }

// apply executes the SET operations of a definite block, in order.
func (s *store) apply(blk fireledger.Block) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tx := range blk.Body.Txs {
		op := string(tx.Payload)
		key, value, ok := strings.Cut(op, "=")
		if !ok {
			continue
		}
		s.data[key] = value
		s.ops++
	}
}

// get reads finalized state.
func (s *store) get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

func (s *store) opCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ops
}

func main() {
	cluster, err := fireledger.NewLocalCluster(4, func(i int, cfg *fireledger.Config) {
		cfg.Workers = 2 // two ordering workers, merged round-robin
		cfg.BatchSize = 8
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// One replica per node, each materializing its state from its own
	// node's Blocks stream — the total order makes them identical.
	stores := make([]*store, 4)
	for i := range stores {
		stores[i] = newStore()
		session, err := fireledger.NewClient(cluster.Node(i), 100+uint64(i))
		if err != nil {
			panic(err)
		}
		defer session.Close()
		events, err := session.Blocks(ctx, fireledger.Cursor{})
		if err != nil {
			panic(err)
		}
		go func(s *store, events <-chan fireledger.BlockEvent) {
			for ev := range events {
				if ev.Err != nil {
					return
				}
				s.apply(ev.Block)
			}
		}(stores[i], events)
	}

	// Write 50 keys through one session, with later writes overwriting
	// earlier ones for the same key: total order makes the final value
	// identical everywhere. Waiting for each receipt keeps the overwrite
	// order deterministic.
	writer, err := fireledger.NewClient(cluster.Node(0), 1)
	if err != nil {
		panic(err)
	}
	defer writer.Close()
	const writes = 50
	for j := 0; j < writes; j++ {
		key := fmt.Sprintf("user:%d", j%10)
		value := fmt.Sprintf("v%d", j)
		if _, err := writer.SubmitWait(ctx, []byte(key+"="+value)); err != nil {
			panic(err)
		}
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		done := true
		for _, s := range stores {
			if s.opCount() < writes {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			panic("writes were not finalized in time")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every replica must answer reads identically.
	for k := 0; k < 10; k++ {
		key := fmt.Sprintf("user:%d", k)
		base, ok := stores[0].get(key)
		if !ok {
			panic("missing key " + key)
		}
		for i := 1; i < 4; i++ {
			if v, _ := stores[i].get(key); v != base {
				panic(fmt.Sprintf("replica %d: %s=%q, replica 0 has %q", i, key, v, base))
			}
		}
		fmt.Printf("%s = %s (agreed by all replicas)\n", key, base)
	}
	fmt.Println("replicated kv store consistent across the cluster")
}

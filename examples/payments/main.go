// Command payments is the consortium-ledger scenario the paper's
// introduction motivates: a permissioned cluster (say, banks) maintaining a
// shared ledger of transfers. Transfers ride as FireLedger transaction
// payloads; each replica applies the definite (final) blocks to its balance
// table in the agreed order and enforces the application-level validity rule
// — no overdrafts — deterministically, so every correct replica converges on
// identical balances. This is the external `valid` predicate of the paper's
// VPBC/BBFC formulation living at the application layer.
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	fireledger "repro"
)

// transfer is the application payload: move Amount from one account to
// another.
type transfer struct {
	From, To uint32
	Amount   uint64
}

func (t transfer) marshal() []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint32(buf[0:], t.From)
	binary.BigEndian.PutUint32(buf[4:], t.To)
	binary.BigEndian.PutUint64(buf[8:], t.Amount)
	return buf
}

func parseTransfer(b []byte) (transfer, bool) {
	if len(b) != 16 {
		return transfer{}, false
	}
	return transfer{
		From:   binary.BigEndian.Uint32(b[0:]),
		To:     binary.BigEndian.Uint32(b[4:]),
		Amount: binary.BigEndian.Uint64(b[8:]),
	}, true
}

// ledger is one replica's deterministic state machine.
type ledger struct {
	mu       sync.Mutex
	balances map[uint32]uint64
	applied  int
	rejected int
}

func newLedger(accounts int, opening uint64) *ledger {
	l := &ledger{balances: make(map[uint32]uint64, accounts)}
	for a := 0; a < accounts; a++ {
		l.balances[uint32(a)] = opening
	}
	return l
}

// apply executes a definite block. Overdrafts are rejected — every replica
// rejects the same ones because blocks arrive in the same order.
func (l *ledger) apply(blk fireledger.Block) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, tx := range blk.Body.Txs {
		tr, ok := parseTransfer(tx.Payload)
		if !ok {
			l.rejected++
			continue
		}
		if l.balances[tr.From] < tr.Amount {
			l.rejected++ // overdraft: invalid at the application layer
			continue
		}
		l.balances[tr.From] -= tr.Amount
		l.balances[tr.To] += tr.Amount
		l.applied++
	}
}

func (l *ledger) total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum uint64
	for _, b := range l.balances {
		sum += b
	}
	return sum
}

func main() {
	const (
		accounts = 16
		opening  = 1000
		payments = 200
	)
	ledgers := make([]*ledger, 4)
	for i := range ledgers {
		ledgers[i] = newLedger(accounts, opening)
	}

	cluster, err := fireledger.NewLocalCluster(4, func(i int, cfg *fireledger.Config) {
		cfg.BatchSize = 20
		cfg.Deliver = func(_ uint32, blk fireledger.Block) { ledgers[i].apply(blk) }
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	// Clients issue random transfers, including some that will overdraft.
	rng := rand.New(rand.NewSource(42))
	for j := 0; j < payments; j++ {
		tr := transfer{
			From:   uint32(rng.Intn(accounts)),
			To:     uint32(rng.Intn(accounts)),
			Amount: uint64(rng.Intn(300)) + 1,
		}
		tx := fireledger.Transaction{Client: 100, Seq: uint64(j + 1), Payload: tr.marshal()}
		if err := cluster.Node(j % 4).Submit(tx); err != nil {
			panic(err)
		}
	}

	// Wait until every replica has applied all finalized payments.
	deadline := time.Now().Add(60 * time.Second)
	for {
		done := true
		for _, l := range ledgers {
			l.mu.Lock()
			n := l.applied + l.rejected
			l.mu.Unlock()
			if n < payments {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			panic("payments were not finalized in time")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Conservation of money + replica agreement.
	want := uint64(accounts * opening)
	for i, l := range ledgers {
		if got := l.total(); got != want {
			panic(fmt.Sprintf("replica %d total = %d, want %d (money not conserved)", i, got, want))
		}
	}
	for i := 1; i < len(ledgers); i++ {
		for a := uint32(0); a < accounts; a++ {
			if ledgers[i].balances[a] != ledgers[0].balances[a] {
				panic(fmt.Sprintf("replica %d diverged on account %d", i, a))
			}
		}
	}
	fmt.Printf("replicas agree: %d transfers applied, %d rejected (overdrafts), total conserved at %d\n",
		ledgers[0].applied, ledgers[0].rejected, want)
}

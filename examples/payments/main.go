// Command payments is the consortium-ledger scenario the paper's
// introduction motivates: a permissioned cluster (say, banks) maintaining a
// shared ledger of transfers. Transfers ride as FireLedger's built-in
// transfer command; each replica's state backend applies the definite
// (final) blocks in the agreed order and enforces the application-level
// validity rule — no overdrafts — deterministically, so every correct
// replica converges on identical balances. This is the external `valid`
// predicate of the paper's VPBC/BBFC formulation living at the state layer.
//
// Balances are read back through the Session read API: Get and Scan anchored
// at a commit receipt's consistency token, so the reader observes every
// transfer it issued — even from a session on a different node than the one
// that accepted the writes.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	fireledger "repro"
)

func acct(a int) string { return fmt.Sprintf("acct/%02d", a) }

// after returns the merged-order later of two receipts: the one whose
// definite block comes second in the (round, worker) order.
func after(a, b fireledger.Receipt) fireledger.Receipt {
	if b.Round > a.Round || (b.Round == a.Round && b.Worker > a.Worker) {
		return b
	}
	return a
}

func main() {
	const (
		accounts = 16
		opening  = 1000
		payments = 200
	)

	// Every node applies the definite stream to its own state backend.
	cluster, err := fireledger.NewLocalCluster(4, func(i int, cfg *fireledger.Config) {
		cfg.BatchSize = 20
		cfg.State = fireledger.NewMapState()
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	session, err := fireledger.NewClient(cluster.Node(0), 100)
	if err != nil {
		panic(err)
	}
	defer session.Close()

	// Open the accounts (a counter add from zero), then issue random
	// transfers — including some that will overdraft and be rejected
	// identically by every replica. Writes are pipelined; each resolves
	// with the receipt of the definite block it landed in.
	var last fireledger.Receipt
	var pending []*fireledger.Pending
	for a := 0; a < accounts; a++ {
		p, err := session.Submit(fireledger.EncodeAdd(acct(a), opening))
		if err != nil {
			panic(err)
		}
		pending = append(pending, p)
	}
	rng := rand.New(rand.NewSource(42))
	for j := 0; j < payments; j++ {
		from, to := rng.Intn(accounts), rng.Intn(accounts)
		amount := uint64(rng.Intn(300)) + 1
		p, err := session.Submit(fireledger.EncodeTransfer(acct(from), acct(to), amount))
		if err != nil {
			panic(err)
		}
		pending = append(pending, p)
	}
	for _, p := range pending {
		r, err := p.Wait(ctx)
		if err != nil {
			panic(err)
		}
		last = after(last, r)
	}
	token := last.Token()
	fmt.Printf("%d transfers final; last lands at (worker %d, round %d)\n",
		payments, token.Worker, token.Round)

	// Read the balances back with the token — from a session on a
	// *different* node than the writes went to. The token blocks the read
	// until that replica's applied frontier covers the last write, so the
	// session reads its own writes without sleeping or polling.
	reader, err := fireledger.NewClient(cluster.Node(2), 101)
	if err != nil {
		panic(err)
	}
	defer reader.Close()

	// One ranged scan returns the whole balance table in key order
	// ("acct0" is the smallest string above every "acct/…" key).
	entries, err := reader.Scan(ctx, "acct/", "acct0", 0, token)
	if err != nil {
		panic(err)
	}
	if len(entries) != accounts {
		panic(fmt.Sprintf("scan returned %d accounts, want %d", len(entries), accounts))
	}
	var total uint64
	for _, e := range entries {
		total += binary.BigEndian.Uint64(e.Value)
	}
	if want := uint64(accounts * opening); total != want {
		panic(fmt.Sprintf("total = %d, want %d (money not conserved)", total, want))
	}

	// Point reads with the same token agree on every node.
	for i := 0; i < cluster.N(); i++ {
		s, err := fireledger.NewClient(cluster.Node(i), uint64(200+i))
		if err != nil {
			panic(err)
		}
		for j, e := range entries {
			v, ok, err := s.Get(ctx, acct(j), token)
			if err != nil || !ok {
				panic(fmt.Sprintf("node %d: Get(%s): ok=%v err=%v", i, acct(j), ok, err))
			}
			if binary.BigEndian.Uint64(v) != binary.BigEndian.Uint64(e.Value) {
				panic(fmt.Sprintf("node %d diverged on %s", i, acct(j)))
			}
		}
		s.Close()
	}

	fmt.Printf("replicas agree on %d balances; total conserved at %d\n", len(entries), total)
	for _, e := range entries[:4] {
		fmt.Printf("  %s = %d\n", e.Key, binary.BigEndian.Uint64(e.Value))
	}
	fmt.Println("  ...")
}

// Command escrow runs deterministic escrow "smart contracts" on FireLedger:
// the paper notes that "transactions may in fact be any deterministic
// computational step, including the execution of smart contracts code" (§1).
// Escrow logic (lock → release-to-seller | refund-to-buyer) executes inside
// each replica's state machine against the totally-ordered definite
// transaction stream, so every replica converges to identical balances —
// shown at the end by comparing state-machine hashes across all nodes.
//
// The demo also exercises the Client API: buyers submit operations and wait
// for finality (depth f+2) before acting on them.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	fireledger "repro"
	"repro/internal/statemachine"
)

// Escrow op codes (application payload, first byte).
const (
	opDeposit = 1 // buyer, amount          → credit buyer's account
	opLock    = 2 // escrow id, buyer, seller, amount → move buyer → escrow
	opRelease = 3 // escrow id              → escrow → seller
	opRefund  = 4 // escrow id              → escrow → buyer
)

// engine is one replica's contract interpreter over a deterministic KV.
type engine struct {
	mu sync.Mutex
	kv *statemachine.KV
}

func newEngine() *engine { return &engine{kv: statemachine.NewKV()} }

func acct(id uint32) string   { return fmt.Sprintf("acct/%08x", id) }
func escrow(id uint32) string { return fmt.Sprintf("escrow/%08x", id) }

// apply interprets one transaction. Invalid operations (unknown escrow,
// insufficient funds) are rejected identically at every replica — the
// application-level `valid` rule of the paper's VPBC formulation.
func (e *engine) apply(tx fireledger.Transaction) {
	p := tx.Payload
	if len(p) < 1 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch p[0] {
	case opDeposit:
		if len(p) != 13 {
			return
		}
		buyer := binary.BigEndian.Uint32(p[1:])
		amount := int64(binary.BigEndian.Uint64(p[5:]))
		e.add(acct(buyer), amount)
	case opLock:
		if len(p) != 21 {
			return
		}
		id := binary.BigEndian.Uint32(p[1:])
		buyer := binary.BigEndian.Uint32(p[5:])
		seller := binary.BigEndian.Uint32(p[9:])
		amount := int64(binary.BigEndian.Uint64(p[13:]))
		if e.kv.Counter(acct(buyer)) < amount || amount <= 0 {
			return // overdraft: rejected deterministically
		}
		if _, exists := e.kv.Get(escrow(id)); exists {
			return // duplicate escrow id
		}
		e.add(acct(buyer), -amount)
		// Escrow record: amount(8) buyer(4) seller(4).
		rec := make([]byte, 16)
		binary.BigEndian.PutUint64(rec[0:], uint64(amount))
		binary.BigEndian.PutUint32(rec[8:], buyer)
		binary.BigEndian.PutUint32(rec[12:], seller)
		e.kv.Apply(fireledger.Transaction{Payload: statemachine.EncodeSet(escrow(id), rec)})
	case opRelease, opRefund:
		if len(p) != 5 {
			return
		}
		id := binary.BigEndian.Uint32(p[1:])
		rec, ok := e.kv.Get(escrow(id))
		if !ok || len(rec) != 16 {
			return
		}
		amount := int64(binary.BigEndian.Uint64(rec[0:]))
		buyer := binary.BigEndian.Uint32(rec[8:])
		seller := binary.BigEndian.Uint32(rec[12:])
		to := seller
		if p[0] == opRefund {
			to = buyer
		}
		e.add(acct(to), amount)
		e.kv.Apply(fireledger.Transaction{Payload: statemachine.EncodeDel(escrow(id))})
	}
}

func (e *engine) add(key string, delta int64) {
	e.kv.Apply(fireledger.Transaction{Payload: statemachine.EncodeAdd(key, delta)})
}

func (e *engine) balance(id uint32) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.kv.Counter(acct(id))
}

func (e *engine) hash() [32]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.kv.Hash()
}

func payloadDeposit(buyer uint32, amount uint64) []byte {
	p := make([]byte, 13)
	p[0] = opDeposit
	binary.BigEndian.PutUint32(p[1:], buyer)
	binary.BigEndian.PutUint64(p[5:], amount)
	return p
}

func payloadLock(id, buyer, seller uint32, amount uint64) []byte {
	p := make([]byte, 21)
	p[0] = opLock
	binary.BigEndian.PutUint32(p[1:], id)
	binary.BigEndian.PutUint32(p[5:], buyer)
	binary.BigEndian.PutUint32(p[9:], seller)
	binary.BigEndian.PutUint64(p[13:], amount)
	return p
}

func payloadSettle(op byte, id uint32) []byte {
	p := make([]byte, 5)
	p[0] = op
	binary.BigEndian.PutUint32(p[1:], id)
	return p
}

func main() {
	const n = 4
	engines := make([]*engine, n)
	cluster, err := fireledger.NewLocalCluster(n, func(i int, cfg *fireledger.Config) {
		cfg.BatchSize = 16
		engines[i] = newEngine()
		eng := engines[i]
		cfg.Deliver = func(_ uint32, blk fireledger.Block) {
			for _, tx := range blk.Body.Txs {
				eng.apply(tx)
			}
		}
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	client, err := fireledger.NewClient(cluster.Node(0), 1)
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	must := func(payload []byte, what string) {
		receipt, err := client.SubmitWait(ctx, payload)
		if err != nil {
			panic(fmt.Sprintf("%s: %v", what, err))
		}
		fmt.Printf("final at (worker %d, round %d): %s\n", receipt.Worker, receipt.Round, what)
	}

	const alice, bob, carol = 0xA11CE, 0xB0B, 0xCA401
	must(payloadDeposit(alice, 1000), "alice deposits 1000")
	must(payloadLock(1, alice, bob, 400), "escrow #1: alice locks 400 for bob")
	must(payloadLock(2, alice, carol, 300), "escrow #2: alice locks 300 for carol")
	must(payloadLock(3, alice, bob, 9999), "escrow #3: overdraft attempt (must be rejected by the contract)")
	must(payloadSettle(opRelease, 1), "escrow #1 released to bob")
	must(payloadSettle(opRefund, 2), "escrow #2 refunded to alice")

	// Settle: wait for every replica to reach the same applied position.
	time.Sleep(500 * time.Millisecond)

	fmt.Printf("\nbalances at node 0: alice=%d bob=%d carol=%d\n",
		engines[0].balance(alice), engines[0].balance(bob), engines[0].balance(carol))
	if got := engines[0].balance(alice); got != 600 {
		fmt.Printf("UNEXPECTED alice balance %d (want 600 = 1000 − 400 released − 300 locked + 300 refunded)\n", got)
	}

	ref := engines[0].hash()
	for i := 1; i < n; i++ {
		if engines[i].hash() != ref {
			fmt.Printf("replica %d state hash DIVERGED\n", i)
			return
		}
	}
	fmt.Println("all replica state hashes identical: deterministic contracts on a total order")
}

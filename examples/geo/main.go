// Command geo reproduces the flavor of the paper's §7.5 multi-data-center
// deployment in-process: ten nodes placed in the ten AWS regions of the
// paper (Tokyo, Canada-Central, Frankfurt, Paris, São Paulo, Oregon,
// Singapore, Sydney, Ireland, Ohio) with realistic inter-region latencies,
// compressed by a scale factor so the demo finishes quickly. It prints the
// observed throughput and latency and contrasts them with a zero-latency
// run — the ≈10× bps gap of Fig 13.
package main

import (
	"fmt"
	"time"

	fireledger "repro"
	"repro/internal/transport"
)

func run(latency fireledger.LatencyModel, label string, timer time.Duration) (bps float64) {
	cluster, err := fireledger.NewLocalClusterOn(10, latency, func(i int, cfg *fireledger.Config) {
		cfg.BatchSize = 100
		cfg.Saturate = 512 // σ=512, the Bitcoin-sized transactions of §7
		cfg.InitialTimer = timer
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	time.Sleep(1 * time.Second) // warm up
	base := cluster.Node(0).Worker(0).Metrics().DefiniteBlocks.Load()
	window := 4 * time.Second
	time.Sleep(window)
	blocks := cluster.Node(0).Worker(0).Metrics().DefiniteBlocks.Load() - base
	bps = float64(blocks) / window.Seconds()
	fmt.Printf("%-22s bps=%7.1f tps=%9.0f\n", label, bps, bps*100)
	return bps
}

func main() {
	fmt.Println("10-node cluster, beta=100, sigma=512")
	for i, region := range transport.GeoRegions {
		fmt.Printf("  node %d -> %s\n", i, region)
	}
	lan := run(transport.SingleDC(), "single data-center:", 25*time.Millisecond)
	geo := run(transport.Geo(0.25), "geo (0.25x real RTTs):", 250*time.Millisecond)
	fmt.Printf("geo/lan bps ratio: %.2f (paper Fig 13: geo is <10%% of single-DC bps)\n", geo/lan)
}

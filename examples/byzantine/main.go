// Command byzantine demonstrates FireLedger's §7.4.2 adversary and the
// recovery machinery: node 3 equivocates — on each of its proposing turns it
// sends different block versions to two halves of the cluster. Correct
// nodes detect the broken hash link, reliably broadcast a cryptographic
// proof of the inconsistency, run the atomic-broadcast recovery procedure,
// and keep extending a single agreed chain. The demo prints the recovery
// count and verifies the correct replicas' definite prefixes match.
package main

import (
	"fmt"
	"time"

	fireledger "repro"
)

func main() {
	cluster, err := fireledger.NewLocalCluster(4, func(i int, cfg *fireledger.Config) {
		cfg.BatchSize = 10
		cfg.Saturate = 64 // synthetic full-block load
		if i == 3 {
			cfg.Equivocate = true // the Byzantine split-proposer
		}
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	correct := []int{0, 1, 2}
	fmt.Println("running with an equivocating proposer (node 3)...")
	deadline := time.Now().Add(120 * time.Second)
	for {
		minDef := uint64(1<<63 - 1)
		for _, i := range correct {
			if d := cluster.Node(i).Worker(0).Chain().Definite(); d < minDef {
				minDef = d
			}
		}
		if minDef >= 20 {
			break
		}
		if time.Now().After(deadline) {
			panic("no progress under the equivocator")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Definite prefixes must agree despite the adversary.
	minDef := cluster.Node(0).Worker(0).Chain().Definite()
	for _, i := range correct[1:] {
		if d := cluster.Node(i).Worker(0).Chain().Definite(); d < minDef {
			minDef = d
		}
	}
	for r := uint64(1); r <= minDef; r++ {
		base, _ := cluster.Node(0).Worker(0).Chain().HeaderAt(r)
		for _, i := range correct[1:] {
			hdr, ok := cluster.Node(i).Worker(0).Chain().HeaderAt(r)
			if !ok || hdr.Hash() != base.Hash() {
				panic(fmt.Sprintf("round %d differs between correct nodes", r))
			}
		}
	}

	var recoveries, nils uint64
	for _, i := range correct {
		m := cluster.Node(i).Worker(0).Metrics()
		recoveries += m.Recoveries.Load()
		nils += m.NilRounds.Load()
	}
	fmt.Printf("agreed definite prefix: %d rounds\n", minDef)
	fmt.Printf("recoveries run: %d, failed (nil) rounds: %d\n", recoveries, nils)
	fmt.Println("BBFC(f+1) agreement held: the equivocator could not fork the definite chain")
}

// Command audit demonstrates FireLedger's accountability path (paper §1):
// "any Byzantine deviation from the protocol results in a strong proof of
// which node was the culprit ... once a proof of Byzantine behavior is being
// generated, the corresponding Byzantine node will be removed from the
// system."
//
// The demo runs a 4-node cluster in which node 3 is a split-equivocator
// (§7.4.2): on its proposing turns it sends different block versions to
// different halves of the cluster. Correct nodes detect the conflicting
// signed headers, assemble the transferable equivocation proof, put it on
// the chain as a conviction transaction, and — once the conviction is in a
// definite block — exclude node 3 from the proposer rotation from an agreed
// round on. The printout shows the recoveries caused by the attack, the
// conviction landing, and the recovery rate dropping to zero afterwards.
package main

import (
	"fmt"
	"sync"
	"time"

	fireledger "repro"
)

func main() {
	const n = 4
	const byz = 3

	var mu sync.Mutex
	convictedAt := make(map[int]uint64) // observer node → offense round

	cluster, err := fireledger.NewLocalCluster(n, func(i int, cfg *fireledger.Config) {
		cfg.BatchSize = 20
		cfg.Saturate = 128 // synthetic load so blocks keep flowing
		cfg.ExcludeConvicted = true
		if i == byz {
			cfg.Equivocate = true
		}
		node := i
		cfg.OnConviction = func(_ uint32, rec fireledger.ConvictionRecord) {
			mu.Lock()
			convictedAt[node] = rec.Proof.Round()
			mu.Unlock()
			fmt.Printf("node %d: conviction of node %d on-chain (offense round %d, chain round %d)\n",
				node, rec.Culprit, rec.Proof.Round(), rec.ChainRound)
		}
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	fmt.Printf("running %d nodes; node %d equivocates on every proposing turn\n\n", n, byz)

	// Wait for all correct nodes to register the exclusion.
	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		got := len(convictedAt)
		mu.Unlock()
		if got >= n-1 {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("no conviction observed (unexpected); aborting")
			return
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Show the agreed exclusion and the post-conviction behavior.
	conv := cluster.Node(0).Worker(0).Convictions()
	eff := conv[byz]
	fmt.Printf("\nexclusion effective from round %d at every correct node\n", eff)

	type sample struct{ definite, recoveries uint64 }
	snap := func(i int) sample {
		w := cluster.Node(i).Worker(0)
		return sample{w.Chain().Definite(), w.Metrics().Recoveries.Load()}
	}
	before := snap(0)
	time.Sleep(2 * time.Second)
	after := snap(0)

	fmt.Printf("\n2s window after exclusion at node 0:\n")
	fmt.Printf("  definite rounds: %d → %d (+%d)\n", before.definite, after.definite, after.definite-before.definite)
	fmt.Printf("  recoveries:      %d → %d (+%d)\n", before.recoveries, after.recoveries, after.recoveries-before.recoveries)

	// Verify the culprit proposed nothing at or after the effective round.
	chain := cluster.Node(0).Worker(0).Chain()
	banned := 0
	for r := eff; r <= chain.Definite(); r++ {
		if hdr, ok := chain.HeaderAt(r); ok && hdr.Proposer == byz {
			banned++
		}
	}
	fmt.Printf("  blocks proposed by node %d at rounds ≥ %d: %d (want 0)\n", byz, eff, banned)

	if err := chain.Audit(cluster.Keys.Registry); err != nil {
		fmt.Printf("chain audit FAILED: %v\n", err)
		return
	}
	fmt.Println("\nchain audit clean; the cluster runs on without the convicted node")
}

// Command audit demonstrates FireLedger's accountability path (paper §1):
// "any Byzantine deviation from the protocol results in a strong proof of
// which node was the culprit ... once a proof of Byzantine behavior is being
// generated, the corresponding Byzantine node will be removed from the
// system."
//
// The demo runs a 4-node cluster in which node 3 is a split-equivocator
// (§7.4.2): on its proposing turns it sends different block versions to
// different halves of the cluster. Correct nodes detect the conflicting
// signed headers, assemble the transferable equivocation proof, put it on
// the chain as a conviction transaction, and — once the conviction is in a
// definite block — exclude node 3 from the proposer rotation from an agreed
// round on.
//
// While the attack runs, a client writes an audit trail of numbered records
// into ledger state. Afterwards it range-scans the trail back (paged, in key
// order, anchored at the last record's commit receipt) — showing that every
// committed record survived the equivocation attack and its recoveries, and
// is queryable straight from the replica without replaying blocks by hand.
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	fireledger "repro"
)

func recordKey(j int) string { return fmt.Sprintf("audit/%06d", j) }

func main() {
	const n = 4
	const byz = 3

	var mu sync.Mutex
	convictedAt := make(map[int]uint64) // observer node → offense round

	cluster, err := fireledger.NewLocalCluster(n, func(i int, cfg *fireledger.Config) {
		cfg.BatchSize = 20
		cfg.ExcludeConvicted = true
		cfg.State = fireledger.NewMapState()
		if i == byz {
			cfg.Equivocate = true
		}
		node := i
		cfg.OnConviction = func(_ uint32, rec fireledger.ConvictionRecord) {
			mu.Lock()
			convictedAt[node] = rec.Proof.Round()
			mu.Unlock()
			fmt.Printf("node %d: conviction of node %d on-chain (offense round %d, chain round %d)\n",
				node, rec.Culprit, rec.Proof.Round(), rec.ChainRound)
		}
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	fmt.Printf("running %d nodes; node %d equivocates on every proposing turn\n\n", n, byz)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The audit trail doubles as the cluster's load: numbered records are
	// written in pipelined batches through a correct node until every
	// correct node has registered the conviction — so the attack, the
	// recoveries, and the exclusion all happen while the trail grows.
	session, err := fireledger.NewClient(cluster.Node(0), 500)
	if err != nil {
		panic(err)
	}
	defer session.Close()
	allConvicted := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(convictedAt) >= n-1
	}
	var last fireledger.Receipt
	records := 0
	deadline := time.Now().Add(60 * time.Second)
	for !allConvicted() {
		if time.Now().After(deadline) {
			fmt.Println("no conviction observed (unexpected); aborting")
			return
		}
		var pending []*fireledger.Pending
		for k := 0; k < 50; k++ {
			payload := fireledger.EncodeSet(recordKey(records+k), []byte(fmt.Sprintf("event %d", records+k)))
			p, err := session.Submit(payload)
			if err != nil {
				panic(err)
			}
			pending = append(pending, p)
		}
		for _, p := range pending {
			r, err := p.Wait(ctx)
			if err != nil {
				panic(err)
			}
			if r.Round > last.Round || (r.Round == last.Round && r.Worker > last.Worker) {
				last = r
			}
		}
		records += len(pending)
	}
	fmt.Printf("%d audit records committed during the attack\n", records)

	// Show the agreed exclusion and the post-conviction behavior.
	conv := cluster.Node(0).Worker(0).Convictions()
	eff := conv[byz]
	fmt.Printf("\nexclusion effective from round %d at every correct node\n", eff)

	type sample struct{ definite, recoveries uint64 }
	snap := func(i int) sample {
		w := cluster.Node(i).Worker(0)
		return sample{w.Chain().Definite(), w.Metrics().Recoveries.Load()}
	}
	before := snap(0)
	time.Sleep(2 * time.Second)
	after := snap(0)

	fmt.Printf("\n2s window after exclusion at node 0:\n")
	fmt.Printf("  definite rounds: %d → %d (+%d)\n", before.definite, after.definite, after.definite-before.definite)
	fmt.Printf("  recoveries:      %d → %d (+%d)\n", before.recoveries, after.recoveries, after.recoveries-before.recoveries)

	// Verify the culprit proposed nothing at or after the effective round.
	chain := cluster.Node(0).Worker(0).Chain()
	banned := 0
	for r := eff; r <= chain.Definite(); r++ {
		if hdr, ok := chain.HeaderAt(r); ok && hdr.Proposer == byz {
			banned++
		}
	}
	fmt.Printf("  blocks proposed by node %d at rounds ≥ %d: %d (want 0)\n", byz, eff, banned)

	// Range-query the audit trail back, paged, anchored at the last
	// record's receipt — from a different node than the writes went to.
	reader, err := fireledger.NewClient(cluster.Node(1), 501)
	if err != nil {
		panic(err)
	}
	defer reader.Close()
	token := last.Token()
	seen, begin := 0, "audit/"
	for {
		page, err := reader.Scan(ctx, begin, "audit0", 64, token)
		if err != nil {
			panic(err)
		}
		if len(page) == 0 {
			break
		}
		for _, e := range page {
			if e.Key != recordKey(seen) {
				panic(fmt.Sprintf("audit trail gap: got %q, want %q", e.Key, recordKey(seen)))
			}
			seen++
		}
		begin = page[len(page)-1].Key + "\x00" // resume just past the last key
	}
	if seen != records {
		panic(fmt.Sprintf("audit scan returned %d records, want %d", seen, records))
	}
	fmt.Printf("\naudit trail intact: %d records scanned back in order despite the attack\n", seen)

	if err := chain.Audit(cluster.Keys.Registry); err != nil {
		fmt.Printf("chain audit FAILED: %v\n", err)
		return
	}
	fmt.Println("chain audit clean; the cluster runs on without the convicted node")
}

// Command quickstart runs a 4-node in-process FireLedger cluster and walks
// the Session API end to end: writes submitted through a session resolve
// with commit receipts naming the definite block they landed in, and a
// Blocks stream from cursor zero replays the same merged definite sequence
// — the smallest tour of the public API.
package main

import (
	"context"
	"fmt"
	"time"

	fireledger "repro"
)

func main() {
	cluster, err := fireledger.NewLocalCluster(4, func(i int, cfg *fireledger.Config) {
		cfg.Workers = 1
		cfg.BatchSize = 4
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A session per node would work too; one suffices — the client manager
	// routes each write to the node's least-loaded worker (§6.2).
	session, err := fireledger.NewClient(cluster.Node(0), 7)
	if err != nil {
		panic(err)
	}
	defer session.Close()

	// Submit 12 operations and wait for each commit receipt: the write is
	// final (definite under BBFC(f+1)), and the receipt says where.
	for j := 0; j < 12; j++ {
		receipt, err := session.SubmitWait(ctx, []byte(fmt.Sprintf("operation %d", j)))
		if err != nil {
			panic(err)
		}
		fmt.Printf("operation %d final in block (worker %d, round %d, hash %x…)\n",
			j, receipt.Worker, receipt.Round, receipt.BlockHash[:4])
	}

	// Independently replay the ledger from genesis: a Blocks stream with the
	// zero cursor serves history first, then the live tail. Count our
	// transactions back out of the definite blocks.
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	events, err := session.Blocks(streamCtx, fireledger.Cursor{})
	if err != nil {
		panic(err)
	}
	seen := 0
	for ev := range events {
		if ev.Err != nil {
			panic(ev.Err)
		}
		for _, tx := range ev.Block.Body.Txs {
			if tx.Client == 7 {
				seen++
			}
		}
		if seen >= 12 {
			stopStream()
			break
		}
	}
	fmt.Printf("replayed all %d operations from the merged definite stream; chain tip=%d definite=%d\n",
		seen,
		cluster.Node(0).Worker(0).Chain().Tip(),
		cluster.Node(0).Worker(0).Chain().Definite())
}

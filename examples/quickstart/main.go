// Command quickstart runs a 4-node in-process FireLedger cluster, submits a
// handful of transactions through the FLO client manager, and prints each
// block as it becomes definite — the smallest end-to-end tour of the public
// API.
package main

import (
	"fmt"
	"sync"
	"time"

	fireledger "repro"
)

func main() {
	var mu sync.Mutex
	delivered := 0

	cluster, err := fireledger.NewLocalCluster(4, func(i int, cfg *fireledger.Config) {
		cfg.Workers = 1
		cfg.BatchSize = 4
		if i == 0 {
			cfg.Deliver = func(worker uint32, blk fireledger.Block) {
				mu.Lock()
				delivered++
				mu.Unlock()
				fmt.Printf("definite block: worker=%d round=%d proposer=%d txs=%d\n",
					worker, blk.Signed.Header.Round, blk.Signed.Header.Proposer, len(blk.Body.Txs))
			}
		}
	})
	if err != nil {
		panic(err)
	}
	cluster.Start()
	defer cluster.Stop()

	// Submit 12 transactions round-robin across the nodes; the client
	// manager routes each to the least-loaded worker (§6.2).
	for j := 0; j < 12; j++ {
		tx := fireledger.Transaction{
			Client:  7,
			Seq:     uint64(j + 1),
			Payload: []byte(fmt.Sprintf("operation %d", j)),
		}
		if err := cluster.Node(j % 4).Submit(tx); err != nil {
			panic(err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if cluster.Node(0).Worker(0).Metrics().DefiniteTxs.Load() >= 12 {
			break
		}
		if time.Now().After(deadline) {
			panic("transactions were not finalized in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("all 12 transactions finalized; chain tip=%d definite=%d\n",
		cluster.Node(0).Worker(0).Chain().Tip(),
		cluster.Node(0).Worker(0).Chain().Definite())
}

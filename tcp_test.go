package fireledger

import (
	"net"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
)

// TestTCPClusterEndToEnd runs a full 4-node FLO cluster over real loopback
// TCP sockets — the cmd/fireledger deployment path — and checks that blocks
// finalize and the chains agree.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("opens real sockets")
	}
	const n = 4
	// Reserve loopback ports.
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}

	ks, err := flcrypto.GenerateKeySet(n, flcrypto.Ed25519,
		flcrypto.NewDeterministicReader("tcp-test"))
	if err != nil {
		t.Fatal(err)
	}

	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		ep, err := transport.NewTCPEndpoint(transport.TCPConfig{
			ID:    flcrypto.NodeID(i),
			Addrs: addrs,
		})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(Config{
			Endpoint:     ep,
			Registry:     ks.Registry,
			Priv:         ks.Privs[i],
			Workers:      1,
			BatchSize:    10,
			Saturate:     64,
			InitialTimer: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	deadline := time.Now().Add(60 * time.Second)
	for {
		minDef := nodes[0].Worker(0).Chain().Definite()
		for _, node := range nodes[1:] {
			if d := node.Worker(0).Chain().Definite(); d < minDef {
				minDef = d
			}
		}
		if minDef >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP cluster stalled at %d definite rounds", minDef)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Agreement over TCP.
	for r := uint64(1); r <= 8; r++ {
		base, ok := nodes[0].Worker(0).Chain().HeaderAt(r)
		if !ok {
			t.Fatalf("node 0 missing round %d", r)
		}
		for i, node := range nodes[1:] {
			hdr, ok := node.Worker(0).Chain().HeaderAt(r)
			if !ok || hdr.Hash() != base.Hash() {
				t.Fatalf("round %d differs at node %d", r, i+1)
			}
		}
	}
}

// TestDeterministicKeyDerivation checks the demo-PKI property cmd/fireledger
// relies on: every process deriving from the same seed gets the same key
// set, and different seeds get different keys.
func TestDeterministicKeyDerivation(t *testing.T) {
	a, err := flcrypto.GenerateKeySet(4, flcrypto.Ed25519, flcrypto.NewDeterministicReader("seed-1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := flcrypto.GenerateKeySet(4, flcrypto.Ed25519, flcrypto.NewDeterministicReader("seed-1"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := flcrypto.GenerateKeySet(4, flcrypto.Ed25519, flcrypto.NewDeterministicReader("seed-2"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cross-process check")
	sig, err := a.Privs[2].Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Registry.Verify(2, msg, sig) {
		t.Fatal("same seed produced different keys")
	}
	if c.Registry.Verify(2, msg, sig) {
		t.Fatal("different seeds produced the same keys")
	}
}

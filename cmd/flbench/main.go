// Command flbench regenerates the paper's evaluation (§7): every table and
// figure has a named experiment that assembles the corresponding cluster
// configuration on the simulated network, runs the measured window, and
// prints rows in the same shape the paper plots.
//
//	flbench -exp fig7            # quick profile of Fig 7's sweep
//	flbench -exp fig16 -full     # paper-scale FLO vs HotStuff comparison
//	flbench -exp all             # the whole evaluation, in paper order
//	flbench -exp workers -out BENCH_workers.json   # ω scaling artifact
//	flbench -exp state -out BENCH_state.json       # state-backend artifact
//	flbench -exp fanout -out BENCH_fanout.json     # fan-out hub artifact
//	flbench -exp verify -out verify.json           # verification-mode sweep
//	flbench -list                # what's available
//
// The quick profile compresses sweeps and measurement windows so the full
// set finishes in minutes; -full approximates the paper's Table 2
// parameters (expect a long run). Absolute numbers depend on the host —
// the *shapes* (who wins, how metrics scale with n, ω, β, σ) are the
// reproduction targets; see EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/harness"
)

// benchDoc is the shape of the JSON artifacts (BENCH_workers.json,
// BENCH_state.json): the cells plus enough environment metadata to read the
// numbers honestly.
type benchDoc struct {
	Date      string `json:"date"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	Profile   string `json:"profile"`
	Cells     any    `json:"cells"`
}

func main() {
	var (
		exp  = flag.String("exp", "", "experiment to run: workers, table1, fig5..fig17, or all")
		full = flag.Bool("full", false, "paper-scale parameters instead of the quick profile")
		list = flag.Bool("list", false, "list available experiments")
		out  = flag.String("out", "", "for -exp workers: also write the cells as JSON to this path")
	)
	flag.Parse()

	if *list || *exp == "" {
		names := make([]string, 0, len(harness.Experiments))
		for name := range harness.Experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("available experiments (run with -exp <name>):")
		for _, name := range names {
			fmt.Println("  ", name)
		}
		fmt.Println("   all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	scale := harness.Quick
	profile := "quick"
	if *full {
		scale = harness.Full
		profile = "full"
	}

	if *out != "" {
		start := time.Now()
		var cells any
		switch *exp {
		case "workers":
			ws := harness.WorkersSweep(scale)
			cells = ws
			fmt.Printf("# workers: tps vs omega, n=4, batch=100, sigma=512, single data-center\n")
			fmt.Printf("gomaxprocs\tworkers\ttps\tp50-ms\tp99-ms\tblocks\n")
			for _, c := range ws {
				fmt.Printf("%d\t%d\t%.0f\t%.2f\t%.2f\t%d\n",
					c.GoMaxProcs, c.Workers, c.TPS, c.P50Ms, c.P99Ms, c.Blocks)
			}
		case "state":
			ss := harness.StateSweep(scale)
			cells = ss
			fmt.Printf("# state: write tps + read rates vs backend, n=4, batch=100, sigma=512, single data-center\n")
			fmt.Printf("backend\tworkers\ttps\tgets/s\tscans/s\tp50-ms\tblocks\n")
			for _, c := range ss {
				fmt.Printf("%s\t%d\t%.0f\t%.0f\t%.0f\t%.2f\t%d\n",
					c.Backend, c.Workers, c.TPS, c.GetsPerSec, c.ScansPerSec, c.P50Ms, c.Blocks)
			}
		case "fanout":
			fs := harness.FanoutSweep(scale)
			cells = fs
			fmt.Printf("# fanout: shared fan-out hub vs subscriber count, n=4, workers=1, batch=100, sigma=256, single data-center\n")
			fmt.Printf("subs\tfiltered\tstalled\ttps\tdeliv/s\tlag-p50-ms\tlag-p99-ms\tenc/blk\tshare-ratio\tdemotions\treplays\toverflow\n")
			for _, c := range fs {
				fmt.Printf("%d\t%t\t%t\t%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%.1f\t%d\t%d\t%d\n",
					c.Subs, c.Filtered, c.Stalled, c.TPS, c.DeliveriesPerSec, c.LagP50Ms, c.LagP99Ms,
					c.EncodesPerBlock, c.SharingRatio, c.Demotions, c.CohortReplays, c.OverflowDisconnects)
			}
		case "verify":
			vs := harness.VerifySweep(scale)
			cells = vs
			fmt.Printf("# verify: tps vs verification mode, n=4, workers=4, batch=200, sigma=512\n")
			fmt.Printf("latency\tmode\ttps\tp50-ms\tblocks\tbatches\tavg-batch\tbisections\tsingles\n")
			for _, c := range vs {
				fmt.Printf("%s\t%s\t%.0f\t%.2f\t%d\t%d\t%.1f\t%d\t%d\n",
					c.Latency, c.Mode, c.TPS, c.P50Ms, c.Blocks, c.Batches, c.AvgBatch, c.Bisections, c.Singles)
			}
		default:
			fmt.Fprintln(os.Stderr, "-out is only supported with -exp workers, state, fanout, or verify")
			os.Exit(2)
		}
		doc := benchDoc{
			Date:      time.Now().UTC().Format("2006-01-02"),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			GoVersion: runtime.Version(),
			Profile:   profile,
			Cells:     cells,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("# %s done in %v; wrote %s\n", *exp, time.Since(start).Round(time.Millisecond), *out)
		return
	}

	run := func(name string) {
		fn, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fn(os.Stdout, scale)
		fmt.Printf("# %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range harness.ExperimentOrder {
			run(name)
		}
		return
	}
	run(*exp)
}

// Command flbench regenerates the paper's evaluation (§7): every table and
// figure has a named experiment that assembles the corresponding cluster
// configuration on the simulated network, runs the measured window, and
// prints rows in the same shape the paper plots.
//
//	flbench -exp fig7            # quick profile of Fig 7's sweep
//	flbench -exp fig16 -full     # paper-scale FLO vs HotStuff comparison
//	flbench -exp all             # the whole evaluation, in paper order
//	flbench -exp workers -out BENCH_workers.json   # ω scaling artifact
//	flbench -list                # what's available
//
// The quick profile compresses sweeps and measurement windows so the full
// set finishes in minutes; -full approximates the paper's Table 2
// parameters (expect a long run). Absolute numbers depend on the host —
// the *shapes* (who wins, how metrics scale with n, ω, β, σ) are the
// reproduction targets; see EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/harness"
)

// workersDoc is the BENCH_workers.json shape: the scaling cells plus enough
// environment metadata to read the numbers honestly.
type workersDoc struct {
	Date      string                `json:"date"`
	GOOS      string                `json:"goos"`
	GOARCH    string                `json:"goarch"`
	NumCPU    int                   `json:"num_cpu"`
	GoVersion string                `json:"go_version"`
	Profile   string                `json:"profile"`
	Cells     []harness.WorkersCell `json:"cells"`
}

func main() {
	var (
		exp  = flag.String("exp", "", "experiment to run: workers, table1, fig5..fig17, or all")
		full = flag.Bool("full", false, "paper-scale parameters instead of the quick profile")
		list = flag.Bool("list", false, "list available experiments")
		out  = flag.String("out", "", "for -exp workers: also write the cells as JSON to this path")
	)
	flag.Parse()

	if *list || *exp == "" {
		names := make([]string, 0, len(harness.Experiments))
		for name := range harness.Experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("available experiments (run with -exp <name>):")
		for _, name := range names {
			fmt.Println("  ", name)
		}
		fmt.Println("   all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	scale := harness.Quick
	profile := "quick"
	if *full {
		scale = harness.Full
		profile = "full"
	}

	if *out != "" {
		if *exp != "workers" {
			fmt.Fprintln(os.Stderr, "-out is only supported with -exp workers")
			os.Exit(2)
		}
		start := time.Now()
		cells := harness.WorkersSweep(scale)
		doc := workersDoc{
			Date:      time.Now().UTC().Format("2006-01-02"),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			GoVersion: runtime.Version(),
			Profile:   profile,
			Cells:     cells,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("# workers: tps vs omega, n=4, batch=100, sigma=512, single data-center\n")
		fmt.Printf("gomaxprocs\tworkers\ttps\tp50-ms\tp99-ms\tblocks\n")
		for _, c := range cells {
			fmt.Printf("%d\t%d\t%.0f\t%.2f\t%.2f\t%d\n",
				c.GoMaxProcs, c.Workers, c.TPS, c.P50Ms, c.P99Ms, c.Blocks)
		}
		fmt.Printf("# workers done in %v; wrote %s\n", time.Since(start).Round(time.Millisecond), *out)
		return
	}

	run := func(name string) {
		fn, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fn(os.Stdout, scale)
		fmt.Printf("# %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range harness.ExperimentOrder {
			run(name)
		}
		return
	}
	run(*exp)
}

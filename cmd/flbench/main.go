// Command flbench regenerates the paper's evaluation (§7): every table and
// figure has a named experiment that assembles the corresponding cluster
// configuration on the simulated network, runs the measured window, and
// prints rows in the same shape the paper plots.
//
//	flbench -exp fig7            # quick profile of Fig 7's sweep
//	flbench -exp fig16 -full     # paper-scale FLO vs HotStuff comparison
//	flbench -exp all             # the whole evaluation, in paper order
//	flbench -list                # what's available
//
// The quick profile compresses sweeps and measurement windows so the full
// set finishes in minutes; -full approximates the paper's Table 2
// parameters (expect a long run). Absolute numbers depend on the host —
// the *shapes* (who wins, how metrics scale with n, ω, β, σ) are the
// reproduction targets; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment to run: table1, fig5..fig17, or all")
		full = flag.Bool("full", false, "paper-scale parameters instead of the quick profile")
		list = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		names := make([]string, 0, len(harness.Experiments))
		for name := range harness.Experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("available experiments (run with -exp <name>):")
		for _, name := range names {
			fmt.Println("  ", name)
		}
		fmt.Println("   all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	scale := harness.Quick
	if *full {
		scale = harness.Full
	}

	run := func(name string) {
		fn, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fn(os.Stdout, scale)
		fmt.Printf("# %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range harness.ExperimentOrder {
			run(name)
		}
		return
	}
	run(*exp)
}

// Command flsim runs long offline simulation campaigns: seeded randomized
// fault schedules (internal/simnet/check.Explore) against in-process
// FireLedger clusters, with every failing seed shrunk to a minimal repro and
// written out for the regression corpus. CI's sim-nightly job runs it for an
// hour and uploads failures as artifacts; locally it is the tool for
// soak-testing a change:
//
//	go run ./cmd/flsim -seeds 500 -out failures/
//	go run ./cmd/flsim -duration 1h -out failures/        # time-bounded
//	go run ./cmd/flsim -replay 9                          # rerun one seed
//
// A failure report names the seed; `go test ./internal/simnet/check -run
// TestSimExplore -seed=<seed> -v` (or -replay here) reruns the exact
// schedule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/simnet/check"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 200, "number of seeded scenarios to run")
		baseSeed = flag.Int64("base-seed", 0, "first seed (0 = derive from current time)")
		n        = flag.Int("n", 0, "fixed cluster size (0 = mixed 4/7)")
		replay   = flag.Int64("replay", 0, "replay a single seed verbosely and exit")
		out      = flag.String("out", "", "directory for failing-seed reports (created if missing)")
		duration = flag.Duration("duration", 0, "wall-clock budget (0 = run all seeds)")
		noByz    = flag.Bool("no-byzantine", false, "exclude equivocator scenarios")
		verbose  = flag.Bool("v", false, "log every scenario, not just failures")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	gen := check.GenOpts{N: *n, NoByzantine: *noByz}

	if *replay != 0 {
		sc := check.Generate(*replay, gen)
		logf("%s", sc.String())
		if err := check.Run(sc, check.RunOpts{Logf: logf}); err != nil {
			logf("seed %d FAILED: %v", *replay, err)
			os.Exit(1)
		}
		logf("seed %d ok", *replay)
		return
	}

	if *baseSeed == 0 {
		*baseSeed = time.Now().UnixNano() % (1 << 40)
	}
	opts := check.ExploreOpts{
		BaseSeed: *baseSeed,
		Count:    *seeds,
		Gen:      gen,
		Logf:     logf,
	}
	if !*verbose {
		// Quiet mode still reports failures and shrink progress.
		opts.Logf = func(format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			if strings.Contains(msg, " ok (") {
				return
			}
			fmt.Println(msg)
		}
	}
	if *duration > 0 {
		opts.Deadline = time.Now().Add(*duration)
	}
	start := time.Now()
	failures := check.Explore(opts)
	logf("campaign: base-seed=%d seeds=%d failures=%d elapsed=%s",
		*baseSeed, *seeds, len(failures), time.Since(start).Round(time.Second))

	if *out != "" && len(failures) > 0 {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			logf("mkdir %s: %v", *out, err)
			os.Exit(1)
		}
		for _, f := range failures {
			report := map[string]any{
				"seed":     f.Seed,
				"error":    f.Err.Error(),
				"scenario": f.Scenario.String(),
				"replay":   f.ReplayCommand(),
			}
			if f.Shrunk != nil {
				report["shrunk"] = f.Shrunk.String()
				if f.ShrunkErr != nil {
					report["shrunk_error"] = f.ShrunkErr.Error()
				}
			}
			buf, _ := json.MarshalIndent(report, "", "  ")
			path := filepath.Join(*out, fmt.Sprintf("seed-%d.json", f.Seed))
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				logf("write %s: %v", path, err)
			}
		}
		logf("wrote %d failure report(s) to %s", len(failures), *out)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

//go:build !unix

package main

func raiseFDLimit() {}

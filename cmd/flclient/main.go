// Command flclient drives a running cmd/fireledger node's client port over
// the Session API (fireledger.Dial): concurrent sessions submit random
// transactions at a configurable rate, every write waits for its commit
// receipt, and the run reports sustained committed throughput plus
// submit→commit latency percentiles (optionally as JSON, the format of
// BENCH_clientapi.json).
//
//	flclient -node 127.0.0.1:9000 -clients 4 -size 512 -rate 1000 -duration 30s
//
// With -selfhost the command instead boots its own 4-node loopback-TCP
// cluster in-process and benches against it — the zero-setup round trip:
//
//	flclient -selfhost -clients 4 -size 256 -duration 10s -out BENCH_clientapi.json
//
// With -subscribe an extra session streams the merged definite block
// sequence from cursor zero for the whole run and the block count is
// reported alongside — exercising the SUBSCRIBE replay/live path under
// submission load.
//
// With -subscribers N the run additionally attaches N concurrent streaming
// sessions over real TCP, all from cursor zero — the fan-out smoke: every
// stream must be gap-free (each session checks its merged-position sequence
// is exactly 0,1,2,...), and the run exits nonzero if any stream gapped or
// died. The soft file-descriptor limit is raised to the hard ceiling first:
//
//	flclient -selfhost -subscribers 5000 -clients 2 -duration 10s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	fireledger "repro"
	"repro/internal/clientapi"
	"repro/internal/flcrypto"
	"repro/internal/metrics"
	"repro/internal/transport"
)

func main() {
	var (
		node      = flag.String("node", "127.0.0.1:9000", "node client-API address")
		clients   = flag.Int("clients", 1, "concurrent sessions")
		idBase    = flag.Uint64("id-base", 1000, "client id of the first session (ids are id-base..id-base+clients-1)")
		size      = flag.Int("size", 512, "transaction payload size (sigma)")
		rate      = flag.Int("rate", 1000, "total transactions per second across all sessions (0 = as fast as possible)")
		inflight  = flag.Int("inflight", 256, "max unresolved writes per session (pipelining bound)")
		duration  = flag.Duration("duration", 30*time.Second, "how long to submit")
		subscribe = flag.Bool("subscribe", false, "also stream the merged definite blocks from cursor 0 during the run")
		subsN     = flag.Int("subscribers", 0, "attach this many concurrent streaming sessions from cursor 0; each asserts a gap-free stream")
		selfhost  = flag.Bool("selfhost", false, "boot an in-process 4-node loopback cluster and bench against it")
		workers   = flag.Int("workers", 1, "with -selfhost: worker instances (omega) per node")
		out       = flag.String("out", "", "write the result as JSON to this file")
	)
	flag.Parse()

	addr := *node
	if *selfhost {
		var stop func()
		addr, stop = startSelfhostCluster(*workers)
		defer stop()
	}

	hist := metrics.NewHistogram(1 << 20)
	var submitted, committed, failed, streamed atomic.Uint64

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *subscribe {
		sess, err := fireledger.Dial(addr, *idBase+uint64(*clients))
		if err != nil {
			log.Fatalf("dial subscriber: %v", err)
		}
		defer sess.Close()
		events, err := sess.Blocks(ctx, fireledger.Cursor{})
		if err != nil {
			log.Fatalf("subscribe: %v", err)
		}
		go func() {
			for ev := range events {
				if ev.Err != nil {
					log.Printf("stream ended: %v", ev.Err)
					return
				}
				streamed.Add(1)
			}
		}()
	}

	// The fan-out population: -subscribers sessions over real TCP, every one
	// streaming from cursor 0 and checking its merged-position sequence for
	// gaps. Session ids sit far above the submitters' so commit receipts
	// (routed by tx client id) can never target a subscriber session.
	var (
		subsWG    sync.WaitGroup
		subEvents atomic.Uint64
		subFailed atomic.Uint64
		subGapped atomic.Uint64
		subIDBase = uint64(1) << 32
	)
	if *subsN > 0 {
		raiseFDLimit()
		attachStart := time.Now()
		dialSem := make(chan struct{}, 64)
		for i := 0; i < *subsN; i++ {
			subsWG.Add(1)
			dialSem <- struct{}{}
			go func(i int) {
				defer subsWG.Done()
				released := false
				release := func() {
					if !released {
						released = true
						<-dialSem
					}
				}
				defer release()
				c, err := clientapi.Dial(addr, subIDBase+uint64(i), clientapi.DialOptions{Timeout: time.Minute})
				if err != nil {
					log.Printf("subscriber %d: dial: %v", i, err)
					subFailed.Add(1)
					return
				}
				defer c.Close()
				events, err := c.Subscribe(ctx, clientapi.Cursor{})
				if err != nil {
					log.Printf("subscriber %d: subscribe: %v", i, err)
					subFailed.Add(1)
					return
				}
				release() // bound concurrent dials, not session lifetimes
				workers := uint64(c.Workers())
				var next uint64
				for ev := range events {
					if ev.Err != nil {
						log.Printf("subscriber %d: stream died at pos %d: %v", i, next, ev.Err)
						subFailed.Add(1)
						return
					}
					pos := (ev.Block.Signed.Header.Round-1)*workers + uint64(ev.Worker)
					if pos != next {
						if ctx.Err() != nil {
							// A canceled stream may shed events while it winds
							// down (the client drops frames a gone consumer
							// would block); only a gap seen before cancellation
							// indicts the server's fan-out.
							return
						}
						log.Printf("subscriber %d: GAP: got merged pos %d, want %d", i, pos, next)
						subGapped.Add(1)
						return
					}
					next++
					subEvents.Add(1)
				}
			}(i)
		}
		// Fill the semaphore to know every dial finished, then drain it.
		for i := 0; i < cap(dialSem); i++ {
			dialSem <- struct{}{}
		}
		for i := 0; i < cap(dialSem); i++ {
			<-dialSem
		}
		log.Printf("%d subscribers attached in %v", *subsN, time.Since(attachStart).Round(time.Millisecond))
	}

	benchStart := time.Now()
	stopAt := benchStart.Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := fireledger.Dial(addr, *idBase+uint64(i))
			if err != nil {
				log.Printf("session %d: dial: %v", i, err)
				failed.Add(1)
				return
			}
			defer sess.Close()
			rng := rand.New(rand.NewSource(int64(i)*7919 + time.Now().UnixNano()))
			var interval time.Duration
			if *rate > 0 {
				interval = time.Duration(*clients) * time.Second / time.Duration(*rate)
			}
			sem := make(chan struct{}, *inflight)
			var pwg sync.WaitGroup
			next := time.Now()
			for time.Now().Before(stopAt) {
				payload := make([]byte, *size)
				rng.Read(payload)
				sem <- struct{}{}
				start := time.Now()
				p, err := sess.Submit(payload)
				if err != nil {
					<-sem
					log.Printf("session %d: submit: %v", i, err)
					failed.Add(1)
					break
				}
				submitted.Add(1)
				pwg.Add(1)
				go func() {
					defer pwg.Done()
					defer func() { <-sem }()
					wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
					defer wcancel()
					if _, err := p.Wait(wctx); err != nil {
						failed.Add(1)
						return
					}
					committed.Add(1)
					hist.Observe(time.Since(start))
				}()
				if interval > 0 {
					next = next.Add(interval)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
			}
			pwg.Wait()
		}(i)
	}
	wg.Wait()
	cancel()
	subsWG.Wait() // streams end cleanly on ctx cancel (STREAM_END, channel close)

	// Measured wall time, not the nominal -duration: it includes dial time
	// and the drain of writes still in flight at the deadline, so tps is
	// committed work over the window the commits actually occupied.
	elapsed := time.Since(benchStart).Seconds()
	result := benchResult{
		Protocol:     clientapi.Version,
		Clients:      *clients,
		Rate:         *rate,
		TxSize:       *size,
		DurationS:    elapsed,
		Submitted:    submitted.Load(),
		Committed:    committed.Load(),
		Failed:       failed.Load(),
		TPS:          float64(committed.Load()) / elapsed,
		LatencyMsP50: ms(hist.Percentile(50)),
		LatencyMsP90: ms(hist.Percentile(90)),
		LatencyMsP99: ms(hist.Percentile(99)),
		LatencyMsMax: ms(hist.Percentile(100)),
	}
	if *subscribe {
		result.BlocksStreamed = streamed.Load()
	}
	if *subsN > 0 {
		result.Subscribers = *subsN
		result.SubscriberEvents = subEvents.Load()
		log.Printf("fan-out: %d subscribers streamed %d block events (gapped %d, died %d)",
			*subsN, result.SubscriberEvents, subGapped.Load(), subFailed.Load())
	}
	log.Printf("committed %d/%d txs of %d bytes in %.1fs: %.0f tps, latency p50=%.1fms p90=%.1fms p99=%.1fms (failed %d, streamed %d blocks)",
		result.Committed, result.Submitted, *size, elapsed, result.TPS,
		result.LatencyMsP50, result.LatencyMsP90, result.LatencyMsP99, result.Failed, result.BlocksStreamed)
	if *out != "" {
		env := benchEnv{
			Date:   time.Now().Format("2006-01-02"),
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(),
		}
		doc := benchDoc{
			Description: "flclient round trip over the clientapi wire protocol: concurrent remote sessions submit σ-byte writes and wait for commit receipts; latency is submit→COMMIT (write finality in the merged definite order), tps counts committed writes. With -selfhost the bench runs against a 4-node loopback-TCP cluster in one process.",
			Environment: env,
			Runs:        []benchResult{result},
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("marshal result: %v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
	if result.Committed == 0 {
		log.Fatal("no write committed — the cluster never acked finality")
	}
	if g, f := subGapped.Load(), subFailed.Load(); g > 0 || f > 0 {
		log.Fatalf("fan-out smoke failed: %d subscriber streams gapped, %d died", g, f)
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

type benchDoc struct {
	Description string        `json:"description"`
	Environment benchEnv      `json:"environment"`
	Runs        []benchResult `json:"runs"`
}

type benchEnv struct {
	Date   string `json:"date"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
}

type benchResult struct {
	Protocol       uint32  `json:"protocol_version"`
	Clients        int     `json:"clients"`
	Rate           int     `json:"rate_limit_tps"`
	TxSize         int     `json:"tx_size"`
	DurationS      float64 `json:"duration_s"`
	Submitted      uint64  `json:"submitted"`
	Committed      uint64  `json:"committed"`
	Failed         uint64  `json:"failed"`
	TPS            float64 `json:"tps"`
	LatencyMsP50   float64 `json:"latency_ms_p50"`
	LatencyMsP90   float64 `json:"latency_ms_p90"`
	LatencyMsP99   float64 `json:"latency_ms_p99"`
	LatencyMsMax   float64 `json:"latency_ms_max"`
	BlocksStreamed uint64  `json:"blocks_streamed,omitempty"`
	// -subscribers mode: the fan-out population and the total block events
	// it absorbed (every stream verified gap-free from cursor 0).
	Subscribers      int    `json:"subscribers,omitempty"`
	SubscriberEvents uint64 `json:"subscriber_events,omitempty"`
}

// startSelfhostCluster boots a 4-node FLO cluster over loopback TCP inside
// this process, serves the client API from node 0, and returns its address
// plus a shutdown function — cmd/fireledger's deployment path without the
// process orchestration, for zero-setup benching.
func startSelfhostCluster(workers int) (addr string, stop func()) {
	const n = 4
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("selfhost: reserve port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	ks, err := flcrypto.GenerateKeySet(n, flcrypto.Ed25519, flcrypto.NewDeterministicReader("flclient-selfhost"))
	if err != nil {
		log.Fatalf("selfhost: keys: %v", err)
	}
	nodes := make([]*fireledger.Node, n)
	for i := 0; i < n; i++ {
		ep, err := transport.NewTCPEndpoint(transport.TCPConfig{ID: flcrypto.NodeID(i), Addrs: addrs})
		if err != nil {
			log.Fatalf("selfhost: endpoint %d: %v", i, err)
		}
		node, err := fireledger.NewNode(fireledger.Config{
			Endpoint:     ep,
			Registry:     ks.Registry,
			Priv:         ks.Privs[i],
			Workers:      workers,
			BatchSize:    100,
			InitialTimer: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("selfhost: node %d: %v", i, err)
		}
		nodes[i] = node
	}
	srv := clientapi.NewServer(nodes[0], clientapi.ServerOptions{Logf: log.Printf})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatalf("selfhost: client API: %v", err)
	}
	for _, node := range nodes {
		node.Start()
	}
	fmt.Fprintf(os.Stderr, "selfhost: 4-node loopback cluster up, client API on %s\n", srv.Addr())
	return srv.Addr(), func() {
		srv.Close()
		for _, node := range nodes {
			node.Stop()
		}
	}
}

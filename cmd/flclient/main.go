// Command flclient submits random transactions to a running cmd/fireledger
// node's client port (-client on the node) at a configurable rate, for
// driving multi-process clusters by hand.
//
//	flclient -node 127.0.0.1:9000 -size 512 -rate 1000 -duration 30s
package main

import (
	"encoding/binary"
	"flag"
	"log"
	"math/rand"
	"net"
	"time"
)

func main() {
	var (
		node     = flag.String("node", "127.0.0.1:9000", "node client address")
		size     = flag.Int("size", 512, "transaction payload size (sigma)")
		rate     = flag.Int("rate", 1000, "transactions per second (0 = as fast as possible)")
		duration = flag.Duration("duration", 30*time.Second, "how long to run")
	)
	flag.Parse()

	conn, err := net.Dial("tcp", *node)
	if err != nil {
		log.Fatalf("dial %s: %v", *node, err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	payload := make([]byte, *size)
	lenBuf := make([]byte, 4)
	binary.BigEndian.PutUint32(lenBuf, uint32(*size))

	var interval time.Duration
	if *rate > 0 {
		interval = time.Second / time.Duration(*rate)
	}
	deadline := time.Now().Add(*duration)
	sent := 0
	next := time.Now()
	for time.Now().Before(deadline) {
		rng.Read(payload)
		if _, err := conn.Write(lenBuf); err != nil {
			log.Fatalf("write: %v", err)
		}
		if _, err := conn.Write(payload); err != nil {
			log.Fatalf("write: %v", err)
		}
		sent++
		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	log.Printf("submitted %d transactions of %d bytes", sent, *size)
}

//go:build unix

package main

import "syscall"

// raiseFDLimit lifts the soft open-file limit to the hard ceiling before a
// -subscribers run: with -selfhost both ends of every subscriber connection
// live in this process, so N subscribers hold ~2N descriptors.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}

// Command fireledger runs one FLO node of a multi-process TCP cluster.
//
// Every process is started with the same -addrs list and -seed; node
// identity is -id (the index into the address list). The shared seed
// deterministically derives the whole cluster's key set, which stands in
// for the PKI a permissioned deployment would provision out of band (keys
// derived this way are for demos and benchmarks only).
//
// Example — a local 4-node cluster (run each in its own terminal, any
// start order):
//
//	fireledger -id 0 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	fireledger -id 1 -addrs ...
//	fireledger -id 2 -addrs ...
//	fireledger -id 3 -addrs ...
//
// With -saturate σ the node fills every block with random σ-byte
// transactions (the paper's §7.2 load). With -client :port it serves the
// versioned client wire protocol of internal/clientapi on that port:
// fireledger.Dial / cmd/flclient sessions submit transactions, receive
// commit receipts, and stream the merged definite block sequence from a
// cursor. With -state map|durable the node additionally maintains a
// queryable ledger replica and serves receipt-anchored point gets, ordered
// range scans, and key watches over the same client port ("durable"
// requires -data; with -snapshot-every its snapshot rides in the chain
// checkpoints, so restarts resume the state too).
package main

import (
	"flag"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	fireledger "repro"
	"repro/internal/clientapi"
	"repro/internal/flcrypto"
	"repro/internal/transport"
)

func main() {
	var (
		id          = flag.Int("id", 0, "this node's index into -addrs")
		addrs       = flag.String("addrs", "", "comma-separated host:port list, one per node (required)")
		seed        = flag.String("seed", "fireledger-demo", "shared key-derivation seed (demo PKI)")
		workers     = flag.Int("workers", 1, "FLO workers (the paper's omega)")
		batch       = flag.Int("batch", 100, "transactions per block (beta)")
		saturate    = flag.Int("saturate", 0, "fill blocks with random transactions of this size (sigma); 0 = client load only")
		clientAddr  = flag.String("client", "", "listen address for flclient submissions (optional)")
		dataDir     = flag.String("data", "", "directory for the persistent chain logs (optional; enables restart recovery)")
		syncWrites  = flag.Bool("sync", false, "fsync every persisted block (requires -data)")
		groupCommit = flag.Bool("group-commit", false, "batch durable appends into one fsync per batch (requires -sync)")
		gcWindow    = flag.Duration("group-commit-window", 0, "static delay per group-commit flush to grow batches (with -group-commit; overrides -group-commit-adaptive; 0 = batch only during in-flight fsyncs)")
		gcAdaptive  = flag.Bool("group-commit-adaptive", false, "size the group-commit flush delay from the observed block arrival rate (with -group-commit)")
		gcMaxWindow = flag.Duration("group-commit-max-window", 0, "cap on the adaptive group-commit flush delay (0 = store default)")
		noBatchVer  = flag.Bool("no-batch-verify", false, "verify every signature individually instead of batching Ed25519 checks into multi-scalar combinations")
		verBatchMax = flag.Int("verify-batch-max", 0, "cap on signatures per batched Ed25519 combination (0 = default)")
		verMinWait  = flag.Duration("verify-min-wait", 0, "minimum batch-fill grace period per verification batch (0 = default)")
		verMaxWait  = flag.Duration("verify-max-wait", 0, "maximum adaptive batch-fill wait per verification batch (0 = default)")
		catchBatch  = flag.Int("catchup-batch", 64, "blocks per streaming catch-up batch; also the lag threshold that switches a node from per-round pulls to range sync")
		snapEvery   = flag.Uint64("snapshot-every", 0, "checkpoint and compact the chain log every N definite rounds (requires -data; 0 disables)")
		state       = flag.String("state", "", "queryable ledger state backend: 'map' (in-memory) or 'durable' (requires -data); empty serves no state reads")
		statsEvery  = flag.Duration("stats", 5*time.Second, "stats print interval")
		gossip      = flag.Bool("gossip", false, "disseminate block bodies by push-gossip instead of the clique overlay")
		fanout      = flag.Int("fanout", 3, "gossip fanout (with -gossip)")
		compressB   = flag.Bool("compress", false, "DEFLATE-compress block bodies on the wire")
		exclude     = flag.Bool("exclude-convicted", false, "convict equivocators on-chain and remove them from the proposer rotation (must match across the cluster)")
	)
	flag.Parse()

	list := strings.Split(*addrs, ",")
	if *addrs == "" || len(list) < 4 {
		log.Fatal("need -addrs with at least 4 nodes (f >= 1 requires n >= 4)")
	}
	if *id < 0 || *id >= len(list) {
		log.Fatalf("-id %d out of range for %d addrs", *id, len(list))
	}

	ks, err := flcrypto.GenerateKeySet(len(list), flcrypto.Ed25519, flcrypto.NewDeterministicReader(*seed))
	if err != nil {
		log.Fatalf("derive keys: %v", err)
	}

	ep, err := transport.NewTCPEndpoint(transport.TCPConfig{
		ID:    flcrypto.NodeID(*id),
		Addrs: list,
	})
	if err != nil {
		log.Fatalf("listen: %v", err)
	}

	var backend fireledger.StateBackend
	switch *state {
	case "":
	case "map":
		backend = fireledger.NewMapState()
	case "durable":
		if *dataDir == "" {
			log.Fatal("-state durable requires -data")
		}
		b, err := fireledger.OpenDurableState(filepath.Join(*dataDir, "state"))
		if err != nil {
			log.Fatalf("open state backend: %v", err)
		}
		backend = b
		if closer, ok := backend.(io.Closer); ok {
			defer closer.Close()
		}
	default:
		log.Fatalf("unknown -state %q (want 'map' or 'durable')", *state)
	}

	node, err := fireledger.NewNode(fireledger.Config{
		Endpoint:             ep,
		Registry:             ks.Registry,
		Priv:                 ks.Privs[*id],
		Workers:              *workers,
		BatchSize:            *batch,
		Saturate:             *saturate,
		DataDir:              *dataDir,
		SyncWrites:           *syncWrites,
		GroupCommit:          *groupCommit,
		GroupCommitWindow:    *gcWindow,
		GroupCommitAdaptive:  *gcAdaptive,
		GroupCommitMaxWindow: *gcMaxWindow,
		DisableBatchVerify:   *noBatchVer,
		VerifyBatchMax:       *verBatchMax,
		VerifyMinWait:        *verMinWait,
		VerifyMaxWait:        *verMaxWait,
		CatchUpBatch:         *catchBatch,
		SnapshotEvery:        *snapEvery,
		State:                backend,
		GossipBodies:         *gossip,
		GossipFanout:         *fanout,
		CompressBodies:       *compressB,
		ExcludeConvicted:     *exclude,
		OnConviction: func(w uint32, rec fireledger.ConvictionRecord) {
			log.Printf("worker %d: node %d convicted of equivocation (offense round %d, on-chain at round %d)",
				w, rec.Culprit, rec.Proof.Round(), rec.ChainRound)
		},
		OnSnapshotInstall: func(w uint32, base uint64) {
			log.Printf("worker %d: installed transferred snapshot at base %d (peers had compacted past this node's tail)",
				w, base)
		},
	})
	if err != nil {
		log.Fatalf("assemble node: %v", err)
	}
	node.Start()
	defer node.Stop()
	log.Printf("node %d up on %s (n=%d, workers=%d, batch=%d, saturate=%d, state=%s)",
		*id, list[*id], len(list), *workers, *batch, *saturate, *state)

	var srv *clientapi.Server
	if *clientAddr != "" {
		srv = clientapi.NewServer(node, clientapi.ServerOptions{Logf: log.Printf})
		if err := srv.Listen(*clientAddr); err != nil {
			log.Fatalf("client API: %v", err)
		}
		defer srv.Close()
		log.Printf("serving client API v%d on %s", clientapi.Version, srv.Addr())
	}

	go func() {
		var lastTxs, lastBlocks uint64
		var lastFan clientapi.FanoutStats
		for range time.Tick(*statsEvery) {
			txs, blocks := node.DeliveredTxs(), node.DeliveredBlocks()
			secs := statsEvery.Seconds()
			log.Printf("tps=%.0f bps=%.0f (total: %d txs, %d blocks)",
				float64(txs-lastTxs)/secs, float64(blocks-lastBlocks)/secs, txs, blocks)
			lastTxs, lastBlocks = txs, blocks
			if srv == nil {
				continue
			}
			fs := srv.Fanout()
			// Fan-out counters only when subscribers are (or were) attached:
			// frames shared vs encoded is the hub's encode-once ratio.
			if fs.FramesShared == 0 && fs.LiveSubs+fs.LaggingSubs+fs.CohortSubs == 0 {
				continue
			}
			log.Printf("fanout: subs=%d/%d/%d (live/lagging/cohort) shared=%d encoded=%d replays=%d demotions=%d overflow-disconnects=%d",
				fs.LiveSubs, fs.LaggingSubs, fs.CohortSubs,
				fs.FramesShared-lastFan.FramesShared, fs.FramesEncoded-lastFan.FramesEncoded,
				fs.CohortReplays-lastFan.CohortReplays, fs.Demotions-lastFan.Demotions,
				fs.OverflowDisconnects-lastFan.OverflowDisconnects)
			lastFan = fs
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
}

// Package fireledger is the public API of this FireLedger reproduction: a
// high-throughput permissioned blockchain consensus protocol (Buchnik &
// Friedman, VLDB 2020) together with the FLO orchestrator the paper
// evaluates.
//
// A node runs ω FireLedger worker instances over a shared transport. In the
// optimistic case each worker decides a block per communication step: the
// round's proposer broadcasts its block, every other node contributes a
// single unsigned bit (the OBBC vote), and the next proposer piggybacks its
// own block on that vote. The last f+1 blocks of each chain are tentative;
// a block is final (definite) at depth f+2. Byzantine equivocation is
// detected through the chain's hash links and repaired by an
// atomic-broadcast recovery procedure that all correct nodes run together.
//
// Applications talk to a node through the Session API — one interface with
// an in-process implementation (NewClient) and a remote one (Dial, speaking
// the versioned wire protocol of internal/clientapi). Every write resolves
// with a commit receipt naming the definite block it landed in, and Blocks
// streams the merged definite block sequence from a cursor, replaying
// history before following the live tail.
//
// Quick start (in-process cluster):
//
//	cluster, _ := fireledger.NewLocalCluster(4, nil)
//	cluster.Start()
//	defer cluster.Stop()
//
//	session, _ := fireledger.NewClient(cluster.Node(0), 1)
//	receipt, _ := session.SubmitWait(ctx, []byte("pay alice 10"))
//	fmt.Printf("final in block (worker %d, round %d, hash %x)\n",
//	    receipt.Worker, receipt.Round, receipt.BlockHash)
//
//	events, _ := session.Blocks(ctx, fireledger.Cursor{}) // from genesis
//	for ev := range events {
//	    // definite blocks, merged order, exactly once
//	}
//
// Against a TCP deployment the only change is the constructor:
// fireledger.Dial("host:port", clientID) returns the same Session. See
// examples/ for complete applications and cmd/fireledger for a TCP
// multi-process deployment.
package fireledger

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/flcrypto"
	"repro/internal/flo"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

// Re-exported core types. Downstream code imports only this package.
type (
	// Transaction is a client operation: an opaque payload plus a
	// (Client, Seq) identity.
	Transaction = types.Transaction
	// Block is a decided batch of transactions with its signed header.
	Block = types.Block
	// BlockHeader is the consensus-path view of a block.
	BlockHeader = types.BlockHeader
	// Node is one FLO participant running ω FireLedger workers.
	Node = flo.Node
	// Config assembles a Node; see flo.Config for all knobs.
	Config = flo.Config
	// NodeID identifies a cluster member (0..n−1).
	NodeID = flcrypto.NodeID
	// Hash is a 32-byte content digest (block identities, receipts).
	Hash = flcrypto.Hash
	// KeySet bundles a test/simulation cluster's keys.
	KeySet = flcrypto.KeySet
	// Event is a per-round lifecycle event (block proposed, header
	// proposed, tentative, definite).
	Event = core.Event
	// LatencyModel shapes the simulated network's propagation delays.
	LatencyModel = transport.LatencyModel
	// Equivocation is a transferable proof that a proposer signed two
	// different headers for the same round — the "strong proof of which
	// node was the culprit" of paper §1 (see Config.ExcludeConvicted).
	Equivocation = evidence.Equivocation
	// ConvictionRecord is one culprit's entry in a node's evidence pool.
	ConvictionRecord = evidence.Record
	// StateBackend is the pluggable ledger-state store a node applies the
	// merged definite stream to (Config.State). Two implementations ship:
	// NewMapState (in-memory) and OpenDurableState (disk-backed value log
	// with an in-memory ordered index).
	StateBackend = statemachine.StateBackend
)

// Lifecycle events, re-exported for Deliver/OnEvent consumers.
const (
	EventBlockProposed  = core.EventBlockProposed
	EventHeaderProposed = core.EventHeaderProposed
	EventTentative      = core.EventTentative
	EventDefinite       = core.EventDefinite
)

// NewNode creates a FLO node from cfg. The caller supplies the transport
// endpoint (see NewLocalCluster for the in-process path and
// transport.NewTCPEndpoint for real deployments).
func NewNode(cfg Config) (*Node, error) { return flo.NewNode(cfg) }

// NewMapState returns the in-memory ledger-state backend: a hash map with
// an ordered view built per scan. State survives restarts only through
// store checkpoints (Config.Store).
func NewMapState() StateBackend { return statemachine.NewKV() }

// OpenDurableState opens the disk-backed ledger-state backend in dir: values
// live in an append-only log (reads are one ReadAt), the ordered key index
// stays in memory, and durability rides in store checkpoints — on restart
// the node restores the freshest checkpoint into the backend and replays the
// definite blocks above it.
func OpenDurableState(dir string) (StateBackend, error) { return statemachine.OpenDurable(dir) }

// The KV command language the built-in backends apply; submit these
// payloads through a Session and read them back with Get/Scan/WatchKey.
// Transactions whose payload does not decode as a command are ignored by
// the state machine (the ledger remains a generic ordered log).
var (
	// EncodeSet writes value under key.
	EncodeSet = statemachine.EncodeSet
	// EncodeDel removes key.
	EncodeDel = statemachine.EncodeDel
	// EncodeAdd adjusts the 8-byte big-endian counter at key by delta
	// (missing key counts as zero).
	EncodeAdd = statemachine.EncodeAdd
	// EncodeTransfer atomically moves amount from one counter key to
	// another, rejected deterministically on every node if the source
	// balance is insufficient.
	EncodeTransfer = statemachine.EncodeTransfer
)

// Cluster is an in-process FireLedger deployment: n nodes over a simulated
// network. It is the entry point for examples, tests, and experimentation;
// production deployments wire Nodes over TCP instead (cmd/fireledger).
type Cluster struct {
	Keys  *KeySet
	Net   *transport.ChanNetwork
	nodes []*Node
}

// NewLocalCluster builds an n-node in-process cluster. tweak (optional) is
// invoked with each node's Config before the node is created — set Workers,
// BatchSize, Deliver callbacks, Byzantine behavior, and so on there.
func NewLocalCluster(n int, tweak func(i int, cfg *Config)) (*Cluster, error) {
	return NewLocalClusterOn(n, nil, tweak)
}

// NewLocalClusterOn is NewLocalCluster with an explicit latency model
// (transport.SingleDC(), transport.Geo(scale), or nil for zero latency).
func NewLocalClusterOn(n int, latency LatencyModel, tweak func(i int, cfg *Config)) (*Cluster, error) {
	if n < 4 {
		return nil, fmt.Errorf("fireledger: need n ≥ 4 for f ≥ 1 (got %d)", n)
	}
	ks, err := flcrypto.GenerateKeySet(n, flcrypto.Ed25519, nil)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Keys: ks,
		Net:  transport.NewChanNetwork(transport.ChanConfig{N: n, Latency: latency}),
	}
	for i := 0; i < n; i++ {
		cfg := Config{
			Endpoint: c.Net.Endpoint(NodeID(i)),
			Registry: ks.Registry,
			Priv:     ks.Privs[i],
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		node, err := flo.NewNode(cfg)
		if err != nil {
			c.Net.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// N returns the cluster size.
func (c *Cluster) N() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Start launches every node.
func (c *Cluster) Start() {
	for _, node := range c.nodes {
		node.Start()
	}
}

// Stop shuts every node down and closes the network.
func (c *Cluster) Stop() {
	for _, node := range c.nodes {
		node.Stop()
	}
	c.Net.Close()
}

// Crash silences node i (fail-stop), for failure experiments.
func (c *Cluster) Crash(i int) { c.Net.Crash(NodeID(i)) }

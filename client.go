package fireledger

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/evidence"
	"repro/internal/types"
)

// Client is the application-facing submission handle of a FLO node: it
// assigns client-local sequence numbers, routes writes through the node's
// least-loaded worker (§6.2), and resolves each write when the transaction
// appears in a definite block of the merged, globally-ordered stream — i.e.,
// when the write is final under BBFC(f+1), not merely tentative.
//
// A Client tracks only its own transactions; many Clients (with distinct
// IDs) may share a node. Wait-style methods respect context cancellation.
type Client struct {
	node *Node
	id   uint64

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan struct{} // seq → closed on commit
}

// NewClient attaches a client with the given identity to a node. The
// identity must be unique among the node's clients and must not be the
// reserved system identity used for conviction transactions. Create clients
// before calling Node.Start, or accept that earlier deliveries are not
// observed.
func NewClient(node *Node, clientID uint64) (*Client, error) {
	if clientID == evidence.SystemClient {
		return nil, fmt.Errorf("fireledger: client id %#x is reserved for conviction transactions", clientID)
	}
	c := &Client{node: node, id: clientID, pending: make(map[uint64]chan struct{})}
	node.SubscribeDeliver(func(_ uint32, blk types.Block) {
		for i := range blk.Body.Txs {
			tx := &blk.Body.Txs[i]
			if tx.Client != c.id {
				continue
			}
			c.mu.Lock()
			if ch, ok := c.pending[tx.Seq]; ok {
				close(ch)
				delete(c.pending, tx.Seq)
			}
			c.mu.Unlock()
		}
	})
	return c, nil
}

// Pending is an in-flight write: it resolves when the transaction reaches a
// definite block in the merged order.
type Pending struct {
	// Tx is the submitted transaction (with the assigned Seq).
	Tx Transaction
	ch <-chan struct{}
}

// Done returns a channel closed when the write is final.
func (p *Pending) Done() <-chan struct{} { return p.ch }

// Wait blocks until the write is final or ctx ends.
func (p *Pending) Wait(ctx context.Context) error {
	select {
	case <-p.ch:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fireledger: waiting for tx (client %d, seq %d): %w", p.Tx.Client, p.Tx.Seq, ctx.Err())
	}
}

// Submit sends payload as this client's next transaction and returns its
// Pending handle.
func (c *Client) Submit(payload []byte) (*Pending, error) {
	c.mu.Lock()
	c.seq++
	tx := Transaction{Client: c.id, Seq: c.seq, Payload: payload}
	ch := make(chan struct{})
	c.pending[tx.Seq] = ch
	c.mu.Unlock()
	if err := c.node.Submit(tx); err != nil {
		c.mu.Lock()
		delete(c.pending, tx.Seq)
		c.mu.Unlock()
		return nil, err
	}
	return &Pending{Tx: tx, ch: ch}, nil
}

// SubmitWait is Submit followed by Wait.
func (c *Client) SubmitWait(ctx context.Context, payload []byte) error {
	p, err := c.Submit(payload)
	if err != nil {
		return err
	}
	return p.Wait(ctx)
}

// InFlight reports how many of this client's writes are not yet final.
func (c *Client) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

package fireledger

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clientapi"
	"repro/internal/types"
)

// Client is the in-process Session implementation: it attaches directly to
// a *Node in the same process, assigns client-local sequence numbers, routes
// writes through the node's hash-affinity worker choice (§6.2), and resolves each
// write with its commit receipt when the transaction appears in a definite
// block of the merged, globally-ordered stream — i.e., when the write is
// final under BBFC(f+1), not merely tentative.
//
// A Client tracks only its own transactions; many sessions (with distinct
// ids) may share a node. Wait-style methods respect context cancellation.
type Client struct {
	node      *Node
	id        uint64
	cancelSub func()

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*inflight // seq → resolution
	closed  bool
}

// inflight pairs a Pending with its resolver.
type inflight struct {
	p       *Pending
	resolve func(Receipt, error)
}

// NewClient attaches a session with the given identity to a node. The
// identity is claimed exclusively — a second session (in-process or remote)
// with the same id is refused until this one closes — and must not be the
// reserved system identity used for conviction transactions.
func NewClient(node *Node, clientID uint64) (*Client, error) {
	if err := node.RegisterClient(clientID); err != nil {
		return nil, fmt.Errorf("fireledger: %w", err)
	}
	// The sequence base is clock-seeded so two sessions of the same client
	// identity (a Close/NewClient cycle with writes still in flight) can
	// never mint the same (client, seq) transaction identity.
	c := &Client{node: node, id: clientID, seq: uint64(time.Now().UnixNano()), pending: make(map[uint64]*inflight)}
	c.cancelSub = node.SubscribeDeliver(c.onDeliver)
	return c, nil
}

// onDeliver resolves this session's writes out of the merged definite
// stream. It runs on the node's delivery path and must not block.
func (c *Client) onDeliver(w uint32, blk types.Block) {
	var receipt Receipt // lazily built: most blocks carry none of our txs
	for i := range blk.Body.Txs {
		tx := &blk.Body.Txs[i]
		if tx.Client != c.id {
			continue
		}
		c.mu.Lock()
		e := c.pending[tx.Seq]
		delete(c.pending, tx.Seq)
		c.mu.Unlock()
		if e == nil {
			continue
		}
		if receipt.Round == 0 {
			receipt = Receipt{Worker: w, Round: blk.Signed.Header.Round, BlockHash: blk.Hash()}
		}
		e.resolve(receipt, nil)
	}
}

// Submit sends payload as this session's next transaction and returns its
// Pending handle, acked immediately (in-process acceptance is synchronous).
func (c *Client) Submit(payload []byte) (*Pending, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("fireledger: session closed")
	}
	c.seq++
	tx := Transaction{Client: c.id, Seq: c.seq, Payload: payload}
	p, ack, resolve := clientapi.NewPending(tx)
	c.pending[tx.Seq] = &inflight{p: p, resolve: resolve}
	c.mu.Unlock()
	if err := c.node.Submit(tx); err != nil {
		c.mu.Lock()
		delete(c.pending, tx.Seq)
		c.mu.Unlock()
		return nil, err
	}
	ack()
	return p, nil
}

// SubmitWait is Submit followed by Pending.Wait: it blocks until the write
// is final and returns its commit receipt.
func (c *Client) SubmitWait(ctx context.Context, payload []byte) (Receipt, error) {
	p, err := c.Submit(payload)
	if err != nil {
		return Receipt{}, err
	}
	return p.Wait(ctx)
}

// Blocks streams the node's merged definite block sequence from cursor:
// history replayed from the node's log (or in-memory chain), then the live
// delivery tail, every block exactly once — every matching block, when
// filter options narrow the stream. Multiple concurrent streams per
// in-process session are allowed.
func (c *Client) Blocks(ctx context.Context, cursor Cursor, opts ...StreamOption) (<-chan BlockEvent, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("fireledger: session closed")
	}
	c.mu.Unlock()
	cfg := clientapi.StreamConfig{Filter: clientapi.BuildFilter(opts...)}
	ch := make(chan BlockEvent, 256)
	go func() {
		defer close(ch)
		err := clientapi.StreamWith(ctx, c.node, cursor, cfg, func(w uint32, blk types.Block) error {
			select {
			case ch <- BlockEvent{Worker: w, Block: blk}:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			// The terminal error is a contract signal (ErrCompacted means
			// the consumer has a gap); it must not be droppable by a full
			// buffer. Blocking on ctx is safe: the consumer owns ctx and a
			// consumer that stopped draining blocks the stream either way.
			select {
			case ch <- BlockEvent{Err: err}:
			case <-ctx.Done():
			}
		}
	}()
	return ch, nil
}

// Get reads key from the node's ledger state once the applied frontier
// covers at; see Session.Get.
func (c *Client) Get(ctx context.Context, key string, at ReadToken) ([]byte, bool, error) {
	return c.node.StateGet(ctx, key, at.Worker, at.Round)
}

// Scan returns entries with begin <= key < end in ascending key order,
// anchored at at; see Session.Scan. The in-process path has no per-reply
// cap: max <= 0 returns the full range.
func (c *Client) Scan(ctx context.Context, begin, end string, max int, at ReadToken) ([]Entry, error) {
	return c.node.StateScan(ctx, begin, end, max, at.Worker, at.Round)
}

// WatchKey streams updates to key, anchored at at; see Session.WatchKey.
// The watch ends when ctx does.
func (c *Client) WatchKey(ctx context.Context, key string, at ReadToken) (<-chan KeyUpdate, error) {
	ch, _, err := c.node.StateWatch(ctx, key, at.Worker, at.Round)
	return ch, err
}

// Info reports the serving node's identity and delivery totals.
func (c *Client) Info(context.Context) (Info, error) {
	return Info{
		Node:            int64(c.node.ID()),
		N:               c.node.N(),
		Workers:         c.node.Workers(),
		DeliveredBlocks: c.node.DeliveredBlocks(),
		DeliveredTxs:    c.node.DeliveredTxs(),
		PoolPending:     c.node.PoolPending(),
	}, nil
}

// Close detaches the session and releases its client identity (the id may
// be re-registered afterwards). Unresolved Pendings fail; Blocks streams
// end via their contexts.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pend := c.pending
	c.pending = make(map[uint64]*inflight)
	c.mu.Unlock()
	c.cancelSub()
	c.node.UnregisterClient(c.id)
	for _, e := range pend {
		e.resolve(Receipt{}, errors.New("fireledger: session closed"))
	}
	return nil
}

// InFlight reports how many of this session's writes are not yet final.
func (c *Client) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

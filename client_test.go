package fireledger

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// clientCluster builds a 4-node cluster in client-pool mode (no saturating
// load) and returns it started.
func clientCluster(t *testing.T, tweak func(i int, cfg *Config)) *Cluster {
	t.Helper()
	cluster, err := NewLocalCluster(4, func(i int, cfg *Config) {
		cfg.BatchSize = 8
		if tweak != nil {
			tweak(i, cfg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	t.Cleanup(cluster.Stop)
	return cluster
}

func TestClientSubmitWait(t *testing.T) {
	cluster := clientCluster(t, nil)
	client, err := NewClient(cluster.Node(0), 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if err := client.SubmitWait(ctx, []byte(fmt.Sprintf("write-%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if n := client.InFlight(); n != 0 {
		t.Fatalf("in-flight after all commits = %d", n)
	}
}

func TestClientConcurrentWriters(t *testing.T) {
	cluster := clientCluster(t, nil)
	const writers = 4
	const each = 6
	var wg sync.WaitGroup
	errs := make(chan error, writers*each)
	for w := 0; w < writers; w++ {
		client, err := NewClient(cluster.Node(w%cluster.N()), 100+uint64(w))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Client, w int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i := 0; i < each; i++ {
				if err := c.SubmitWait(ctx, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(client, w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientSequencesAreDistinct(t *testing.T) {
	cluster := clientCluster(t, nil)
	client, err := NewClient(cluster.Node(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	var ps []*Pending
	for i := 0; i < 10; i++ {
		p, err := client.Submit([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.Tx.Seq] {
			t.Fatalf("duplicate seq %d", p.Tx.Seq)
		}
		seen[p.Tx.Seq] = true
		ps = append(ps, p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, p := range ps {
		if err := p.Wait(ctx); err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
	}
}

func TestClientRejectsReservedID(t *testing.T) {
	cluster := clientCluster(t, nil)
	if _, err := NewClient(cluster.Node(0), 0xF1_7E_1E_D6_E5_00_00_01); err == nil {
		t.Fatal("reserved system client id accepted")
	}
}

func TestClientWaitHonorsContext(t *testing.T) {
	// A node that cannot make progress alone: submit and expect the wait to
	// end with the context, not hang.
	cluster, err := NewLocalCluster(4, func(i int, cfg *Config) { cfg.BatchSize = 8 })
	if err != nil {
		t.Fatal(err)
	}
	// Only node 0 started: no quorum, nothing ever commits.
	cluster.Node(0).Start()
	t.Cleanup(cluster.Stop)
	client, err := NewClient(cluster.Node(0), 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := client.SubmitWait(ctx, []byte("never")); err == nil {
		t.Fatal("wait returned success without quorum")
	}
	if client.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1 (uncommitted)", client.InFlight())
	}
}

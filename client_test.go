package fireledger

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// clientCluster builds a 4-node cluster in client-pool mode (no saturating
// load) and returns it started.
func clientCluster(t *testing.T, tweak func(i int, cfg *Config)) *Cluster {
	t.Helper()
	cluster, err := NewLocalCluster(4, func(i int, cfg *Config) {
		cfg.BatchSize = 8
		if tweak != nil {
			tweak(i, cfg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	t.Cleanup(cluster.Stop)
	return cluster
}

func TestClientSubmitWaitReceipt(t *testing.T) {
	cluster := clientCluster(t, nil)
	client, err := NewClient(cluster.Node(0), 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		receipt, err := client.SubmitWait(ctx, []byte(fmt.Sprintf("write-%d", i)))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		// The receipt must name a real definite block that contains the
		// write and whose hash matches.
		blk, ok := cluster.Node(0).Worker(int(receipt.Worker)).Chain().BlockAt(receipt.Round)
		if !ok {
			t.Fatalf("write %d: receipt names round %d, which the node does not hold", i, receipt.Round)
		}
		if blk.Hash() != receipt.BlockHash {
			t.Fatalf("write %d: receipt hash mismatch at (w%d, r%d)", i, receipt.Worker, receipt.Round)
		}
		found := false
		for _, tx := range blk.Body.Txs {
			if tx.Client == 42 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("write %d: receipt block has no tx of client 42", i)
		}
	}
	if n := client.InFlight(); n != 0 {
		t.Fatalf("in-flight after all commits = %d", n)
	}
}

func TestClientConcurrentWriters(t *testing.T) {
	cluster := clientCluster(t, nil)
	const writers = 4
	const each = 6
	var wg sync.WaitGroup
	errs := make(chan error, writers*each)
	for w := 0; w < writers; w++ {
		client, err := NewClient(cluster.Node(w%cluster.N()), 100+uint64(w))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Client, w int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i := 0; i < each; i++ {
				if _, err := c.SubmitWait(ctx, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(client, w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientSequencesAreDistinct(t *testing.T) {
	cluster := clientCluster(t, nil)
	client, err := NewClient(cluster.Node(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	var ps []*Pending
	for i := 0; i < 10; i++ {
		p, err := client.Submit([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.Tx.Seq] {
			t.Fatalf("duplicate seq %d", p.Tx.Seq)
		}
		seen[p.Tx.Seq] = true
		ps = append(ps, p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, p := range ps {
		if _, err := p.Wait(ctx); err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
	}
}

func TestClientRejectsReservedID(t *testing.T) {
	cluster := clientCluster(t, nil)
	if _, err := NewClient(cluster.Node(0), 0xF1_7E_1E_D6_E5_00_00_01); err == nil {
		t.Fatal("reserved system client id accepted")
	}
}

// TestClientDuplicateIDRejected: a client identity is an exclusive claim on
// its node — a second registration must fail (it would otherwise resolve
// the first session's sequence numbers), and Close must release it.
func TestClientDuplicateIDRejected(t *testing.T) {
	cluster := clientCluster(t, nil)
	c1, err := NewClient(cluster.Node(0), 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(cluster.Node(0), 77); err == nil {
		t.Fatal("duplicate client id accepted on the same node")
	}
	// The same id on a different node is a distinct claim.
	other, err := NewClient(cluster.Node(1), 77)
	if err != nil {
		t.Fatalf("same id on another node refused: %v", err)
	}
	other.Close()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := NewClient(cluster.Node(0), 77)
	if err != nil {
		t.Fatalf("id not released by Close: %v", err)
	}
	c3.Close()
}

func TestClientWaitHonorsContext(t *testing.T) {
	// A node that cannot make progress alone: submit and expect the wait to
	// end with the context, not hang.
	cluster, err := NewLocalCluster(4, func(i int, cfg *Config) { cfg.BatchSize = 8 })
	if err != nil {
		t.Fatal(err)
	}
	// Only node 0 started: no quorum, nothing ever commits.
	cluster.Node(0).Start()
	t.Cleanup(cluster.Stop)
	client, err := NewClient(cluster.Node(0), 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := client.SubmitWait(ctx, []byte("never")); err == nil {
		t.Fatal("wait returned success without quorum")
	}
	if client.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1 (uncommitted)", client.InFlight())
	}
}

// TestClientBlocksStream: the in-process session's Blocks stream from the
// genesis cursor reproduces the node's own merged delivery exactly.
func TestClientBlocksStream(t *testing.T) {
	type key struct {
		worker uint32
		round  uint64
		hash   Hash
	}
	var mu sync.Mutex
	var local []key
	cluster := clientCluster(t, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Workers = 2 // exercise merged-order cursor arithmetic
			cfg.Deliver = func(w uint32, blk Block) {
				mu.Lock()
				local = append(local, key{w, blk.Signed.Header.Round, blk.Hash()})
				mu.Unlock()
			}
		} else {
			cfg.Workers = 2
		}
	})
	client, err := NewClient(cluster.Node(0), 12)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	events, err := client.Blocks(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	const want = 20
	var got []key
	for len(got) < want {
		select {
		case ev, ok := <-events:
			if !ok || ev.Err != nil {
				t.Fatalf("stream ended after %d: %v", len(got), ev.Err)
			}
			got = append(got, key{ev.Worker, ev.Block.Signed.Header.Round, ev.Block.Hash()})
		case <-ctx.Done():
			t.Fatalf("timed out after %d blocks", len(got))
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(local)
		mu.Unlock()
		if n >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node delivered only %d blocks", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < want; i++ {
		if got[i] != local[i] {
			t.Fatalf("stream diverges at %d: session %+v, node %+v", i, got[i], local[i])
		}
	}
}

package statemachine

import (
	"testing"

	"repro/internal/types"
)

func deliverBlock(w uint32, round uint64, txs ...types.Transaction) (uint32, types.Block) {
	return w, types.Block{
		Signed: types.SignedHeader{Header: types.BlockHeader{Instance: w, Round: round}},
		Body:   types.Body{Txs: txs},
	}
}

func TestReplicaIdempotentDelivery(t *testing.T) {
	r := NewReplica()
	r.Deliver(deliverBlock(0, 1, types.Transaction{Client: 1, Seq: 1, Payload: EncodeAdd("x", 5)}))
	r.Deliver(deliverBlock(0, 2, types.Transaction{Client: 1, Seq: 2, Payload: EncodeAdd("x", 7)}))
	if got := r.KV().Counter("x"); got != 12 {
		t.Fatalf("x = %d, want 12", got)
	}
	// Re-delivery of an already-applied round is a no-op.
	if applied := r.Deliver(deliverBlock(0, 2, types.Transaction{Client: 1, Seq: 2, Payload: EncodeAdd("x", 7)})); applied {
		t.Fatal("round 2 re-applied")
	}
	if got := r.KV().Counter("x"); got != 12 {
		t.Fatalf("x = %d after re-delivery, want 12", got)
	}
	if r.Position(0) != 2 {
		t.Fatalf("position %d, want 2", r.Position(0))
	}
}

func TestReplicaSnapshotRestoreReplay(t *testing.T) {
	r := NewReplica()
	r.Deliver(deliverBlock(0, 1, types.Transaction{Client: 1, Seq: 1, Payload: EncodeSet("k", []byte("v1"))}))
	r.Deliver(deliverBlock(1, 1, types.Transaction{Client: 2, Seq: 1, Payload: EncodeAdd("n", 3)}))
	snap := r.Snapshot()

	// The restart path: restore the checkpoint, then re-deliver a window
	// of blocks that overlaps what the checkpoint already covers.
	r2, err := RestoreReplica(snap)
	if err != nil {
		t.Fatal(err)
	}
	r2.Deliver(deliverBlock(0, 1, types.Transaction{Client: 1, Seq: 1, Payload: EncodeSet("k", []byte("v1"))}))
	r2.Deliver(deliverBlock(1, 1, types.Transaction{Client: 2, Seq: 1, Payload: EncodeAdd("n", 3)}))
	r2.Deliver(deliverBlock(0, 2, types.Transaction{Client: 1, Seq: 2, Payload: EncodeAdd("n", 4)}))
	if got := r2.KV().Counter("n"); got != 7 {
		t.Fatalf("n = %d, want 7 (overlap must not double-apply)", got)
	}
	if v, _ := r2.KV().Get("k"); string(v) != "v1" {
		t.Fatalf("k = %q", v)
	}
	if r2.Position(0) != 2 || r2.Position(1) != 1 {
		t.Fatalf("positions: w0=%d w1=%d", r2.Position(0), r2.Position(1))
	}

	if _, err := RestoreReplica([]byte("garbage")); err == nil {
		t.Fatal("garbage snapshot restored")
	}
}

// TestReplicaMergedCursor checks the explicit merged-stream cursor: it
// tracks the maximal applied position in (round, worker) order, ignores
// idempotent re-deliveries, and survives a snapshot round trip with
// byte-identical re-serialization (the canonical-encoding property flo's
// ω>1 checkpoints rely on).
func TestReplicaMergedCursor(t *testing.T) {
	r := NewReplica()
	tx := func(c, s uint64) types.Transaction {
		return types.Transaction{Client: c, Seq: s, Payload: EncodeAdd("n", 1)}
	}
	// Merged order of an ω=3 deployment: (0,1) (1,1) (2,1) (0,2) (1,2).
	r.Deliver(deliverBlock(0, 1, tx(1, 1)))
	r.Deliver(deliverBlock(1, 1, tx(1, 2)))
	r.Deliver(deliverBlock(2, 1, tx(1, 3)))
	r.Deliver(deliverBlock(0, 2, tx(1, 4)))
	r.Deliver(deliverBlock(1, 2, tx(1, 5)))
	if w, round := r.Cursor(); w != 1 || round != 2 {
		t.Fatalf("cursor (%d,%d), want (1,2)", w, round)
	}
	// Idempotent re-delivery of an older position must not move the cursor.
	r.Deliver(deliverBlock(2, 1, tx(1, 3)))
	if w, round := r.Cursor(); w != 1 || round != 2 {
		t.Fatalf("cursor moved on re-delivery: (%d,%d)", w, round)
	}

	snap := r.Snapshot()
	r2, err := RestoreReplica(snap)
	if err != nil {
		t.Fatal(err)
	}
	if w, round := r2.Cursor(); w != 1 || round != 2 {
		t.Fatalf("restored cursor (%d,%d), want (1,2)", w, round)
	}
	snap2 := r2.Snapshot()
	if string(snap) != string(snap2) {
		t.Fatal("snapshot → restore → snapshot is not byte-identical")
	}
}

package statemachine

import (
	"errors"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// ErrNoState is returned by state reads against a node that was not
// configured with a queryable backend (flo.Config.State unset).
var ErrNoState = errors.New("statemachine: no state backend configured")

// Entry is one key/value pair yielded by a range scan, in ascending key
// order.
type Entry struct {
	Key   string
	Value []byte
}

// StateBackend is the pluggable storage engine under a Replica: the applier
// feeds it the merged definite transaction stream in order, and the read
// path serves point gets and ordered range scans from it. Two backends ship
// with the package — the in-memory map (KV, the default) and the durable
// value-log backend (Durable) — and both serialize to the same canonical
// snapshot bytes, so a snapshot taken on one restores byte-identically on
// the other.
//
// Implementations must be safe for concurrent use: applies arrive from the
// replica's single delivery goroutine while gets and scans arrive from any
// number of client sessions.
type StateBackend interface {
	// Apply executes one transaction payload. Malformed or rejected
	// payloads leave the state unchanged but still advance the applied
	// count: replicas agree on rejection exactly as they agree on
	// application.
	Apply(tx types.Transaction) error
	// ApplyBatch applies one block's transactions in order. It exists so a
	// backend can amortize per-batch costs (a single log write, one index
	// pass); semantics are identical to calling Apply in a loop.
	ApplyBatch(txs []types.Transaction)
	// Get returns the current value of key.
	Get(key string) ([]byte, bool)
	// Scan returns up to max entries with begin <= key < end in ascending
	// key order. An empty end means "to the end of the keyspace"; max <= 0
	// means no cap.
	Scan(begin, end string, max int) []Entry
	// Len returns the number of live keys.
	Len() int
	// Applied returns how many transactions have been applied (including
	// rejected ones) — the backend's logical position.
	Applied() uint64
	// Hash digests the full state; equal streams yield equal hashes across
	// backends.
	Hash() flcrypto.Hash
	// Snapshot serializes the state canonically (sorted keys, fixed
	// framing). All backends emit identical bytes for identical state.
	Snapshot() []byte
	// Restore replaces the backend's contents with a snapshot's.
	Restore(snap []byte) error
	// Close releases any resources (files) the backend holds.
	Close() error
}

package statemachine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/types"
)

// The conformance suite: every StateBackend implementation must pass every
// test below. Add new backends to this table.
func forEachBackend(t *testing.T, fn func(t *testing.T, open func(t *testing.T) StateBackend)) {
	t.Helper()
	for name, open := range map[string]func(t *testing.T) StateBackend{
		"map": func(t *testing.T) StateBackend { return NewKV() },
		"durable": func(t *testing.T) StateBackend {
			d, err := OpenDurable(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		},
	} {
		t.Run(name, func(t *testing.T) { fn(t, open) })
	}
}

func mustApply(t *testing.T, b StateBackend, payloads ...[]byte) {
	t.Helper()
	for i, p := range payloads {
		if err := b.Apply(types.Transaction{Client: 1, Seq: uint64(i + 1), Payload: p}); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
}

func TestBackendScanOrdering(t *testing.T) {
	forEachBackend(t, func(t *testing.T, open func(t *testing.T) StateBackend) {
		b := open(t)
		// Inserted out of order; scans must come back sorted.
		for _, k := range []string{"b", "e", "a", "d", "c"} {
			mustApply(t, b, EncodeSet(k, []byte("v-"+k)))
		}
		got := b.Scan("", "", 0)
		if len(got) != 5 {
			t.Fatalf("full scan: %d entries, want 5", len(got))
		}
		for i, e := range got {
			want := string(rune('a' + i))
			if e.Key != want || string(e.Value) != "v-"+want {
				t.Fatalf("entry %d = %q/%q, want %q", i, e.Key, e.Value, want)
			}
		}
		// Half-open range [b, d).
		if got := b.Scan("b", "d", 0); len(got) != 2 || got[0].Key != "b" || got[1].Key != "c" {
			t.Fatalf("range [b,d) = %v", got)
		}
		// Cap.
		if got := b.Scan("", "", 2); len(got) != 2 || got[1].Key != "b" {
			t.Fatalf("capped scan = %v", got)
		}
		// Empty range.
		if got := b.Scan("c", "c", 0); len(got) != 0 {
			t.Fatalf("empty range returned %v", got)
		}
		// Deletions disappear from scans.
		mustApply(t, b, EncodeDel("c"))
		if got := b.Scan("b", "d", 0); len(got) != 1 || got[0].Key != "b" {
			t.Fatalf("range after delete = %v", got)
		}
	})
}

func TestBackendSnapshotRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, open func(t *testing.T) StateBackend) {
		b := open(t)
		mustApply(t, b,
			EncodeSet("k1", []byte("v1")),
			EncodeAdd("n", 41),
			EncodeSet("k2", []byte("v2")),
			EncodeDel("k1"),
			EncodeAdd("n", 1),
		)
		snap := b.Snapshot()

		b2 := open(t)
		if err := b2.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if got := b2.Snapshot(); !bytes.Equal(snap, got) {
			t.Fatal("snapshot → restore → snapshot is not byte-identical")
		}
		if b2.Hash() != b.Hash() {
			t.Fatal("restored hash differs")
		}
		if b2.Applied() != b.Applied() {
			t.Fatalf("applied %d, want %d", b2.Applied(), b.Applied())
		}
		if _, ok := b2.Get("k1"); ok {
			t.Fatal("deleted key resurrected by restore")
		}
		if v, ok := b2.Get("n"); !ok || binary.BigEndian.Uint64(v) != 42 {
			t.Fatalf("n = %v after restore", v)
		}
		// Restore replaces state, not merges: a dirty backend restored from
		// snap must equal a fresh one restored from snap.
		b3 := open(t)
		mustApply(t, b3, EncodeSet("junk", []byte("x")))
		if err := b3.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if got := b3.Snapshot(); !bytes.Equal(snap, got) {
			t.Fatal("restore over dirty state kept residue")
		}
	})
}

// TestBackendsAgree drives both backends through one mixed workload and
// demands byte-identical snapshots and hashes: the canonical snapshot
// framing is shared, so checkpoints written by one backend restore into the
// other.
func TestBackendsAgree(t *testing.T) {
	kv := NewKV()
	d, err := OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var seq uint64
	for i := 0; i < 200; i++ {
		var p []byte
		switch i % 4 {
		case 0:
			p = EncodeSet(fmt.Sprintf("k%03d", i%50), []byte(fmt.Sprintf("v%d", i)))
		case 1:
			p = EncodeAdd(fmt.Sprintf("c%02d", i%10), int64(i))
		case 2:
			p = EncodeDel(fmt.Sprintf("k%03d", (i+2)%50))
		case 3:
			p = EncodeTransfer("c00", fmt.Sprintf("c%02d", i%10), 1)
		}
		seq++
		tx := types.Transaction{Client: 7, Seq: seq, Payload: p}
		errKV := kv.Apply(tx)
		errD := d.Apply(tx)
		if (errKV == nil) != (errD == nil) {
			t.Fatalf("op %d: backends disagree on validity: kv=%v durable=%v", i, errKV, errD)
		}
	}
	if kv.Hash() != d.Hash() {
		t.Fatal("hashes diverge across backends")
	}
	if !bytes.Equal(kv.Snapshot(), d.Snapshot()) {
		t.Fatal("snapshots diverge across backends")
	}
	// Cross-restore: a map-backend snapshot restores into the durable
	// backend (and vice versa) because the framing is canonical.
	d2, err := OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.Restore(kv.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if d2.Hash() != kv.Hash() {
		t.Fatal("cross-backend restore diverged")
	}
}

// TestBackendIdempotentReplay runs the restart path through the Replica:
// restore a checkpoint, then re-deliver a block window overlapping what the
// checkpoint covers. Replayed positions must not double-apply on any
// backend.
func TestBackendIdempotentReplay(t *testing.T) {
	forEachBackend(t, func(t *testing.T, open func(t *testing.T) StateBackend) {
		r := NewReplicaWith(open(t))
		r.Deliver(deliverBlock(0, 1, types.Transaction{Client: 1, Seq: 1, Payload: EncodeAdd("n", 3)}))
		r.Deliver(deliverBlock(1, 1, types.Transaction{Client: 1, Seq: 2, Payload: EncodeSet("k", []byte("v"))}))
		snap := r.Snapshot()

		r2, err := RestoreReplicaInto(open(t), snap)
		if err != nil {
			t.Fatal(err)
		}
		// Overlapping replay (both blocks) plus one new block.
		r2.Deliver(deliverBlock(0, 1, types.Transaction{Client: 1, Seq: 1, Payload: EncodeAdd("n", 3)}))
		r2.Deliver(deliverBlock(1, 1, types.Transaction{Client: 1, Seq: 2, Payload: EncodeSet("k", []byte("v"))}))
		r2.Deliver(deliverBlock(0, 2, types.Transaction{Client: 1, Seq: 3, Payload: EncodeAdd("n", 4)}))
		if v, ok := r2.State().Get("n"); !ok || binary.BigEndian.Uint64(v) != 7 {
			t.Fatalf("n = %v, want 7 (replayed positions must not double-apply)", v)
		}
		if r2.Position(0) != 2 || r2.Position(1) != 1 {
			t.Fatalf("positions w0=%d w1=%d", r2.Position(0), r2.Position(1))
		}
	})
}

func TestBackendTransfer(t *testing.T) {
	forEachBackend(t, func(t *testing.T, open func(t *testing.T) StateBackend) {
		b := open(t)
		mustApply(t, b, EncodeAdd("alice", 100), EncodeAdd("bob", 10))
		mustApply(t, b, EncodeTransfer("alice", "bob", 30))
		counter := func(k string) uint64 {
			v, ok := b.Get(k)
			if !ok {
				t.Fatalf("missing counter %q", k)
			}
			return binary.BigEndian.Uint64(v)
		}
		if counter("alice") != 70 || counter("bob") != 40 {
			t.Fatalf("alice=%d bob=%d after transfer", counter("alice"), counter("bob"))
		}
		// Overdraft: rejected deterministically, balances untouched, but the
		// position still advances (rejection is part of the agreed history).
		applied := b.Applied()
		err := b.Apply(types.Transaction{Client: 1, Seq: 99, Payload: EncodeTransfer("alice", "bob", 1000)})
		if err == nil {
			t.Fatal("overdraft accepted")
		}
		if counter("alice") != 70 || counter("bob") != 40 {
			t.Fatal("overdraft mutated balances")
		}
		if b.Applied() != applied+1 {
			t.Fatalf("applied %d, want %d (rejection must advance the position)", b.Applied(), applied+1)
		}
		// Transfer from a missing account is an overdraft of 0.
		if err := b.Apply(types.Transaction{Client: 1, Seq: 100, Payload: EncodeTransfer("ghost", "bob", 1)}); err == nil {
			t.Fatal("transfer from missing account accepted")
		}
		// Self-transfer within balance is a no-op, beyond it an overdraft.
		mustApply(t, b, EncodeTransfer("alice", "alice", 70))
		if counter("alice") != 70 {
			t.Fatal("self-transfer changed the balance")
		}
		if err := b.Apply(types.Transaction{Client: 1, Seq: 101, Payload: EncodeTransfer("alice", "alice", 71)}); err == nil {
			t.Fatal("self-overdraft accepted")
		}
	})
}

// TestDurableCompaction overwrites one key until the value log holds mostly
// garbage, then checks compaction rewrote it without losing state.
func TestDurableCompaction(t *testing.T) {
	d, err := OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	big := bytes.Repeat([]byte("x"), 64<<10)
	for i := 0; i < 80; i++ {
		mustApply(t, d, EncodeSet("hot", append(big, byte(i))), EncodeSet(fmt.Sprintf("cold%02d", i), []byte("keep")))
	}
	d.mu.RLock()
	size, live := d.size, d.live
	d.mu.RUnlock()
	if size > 2*live+compactSlack {
		t.Fatalf("log not compacted: size=%d live=%d", size, live)
	}
	if v, ok := d.Get("hot"); !ok || v[len(v)-1] != 79 {
		t.Fatal("hot key lost its last write")
	}
	for i := 0; i < 80; i++ {
		if v, ok := d.Get(fmt.Sprintf("cold%02d", i)); !ok || string(v) != "keep" {
			t.Fatalf("cold%02d lost after compaction", i)
		}
	}
}

// TestDurableReopenIsEmpty pins the recovery contract: the value log is NOT
// the durability story — checkpoints are. Reopening a directory starts
// empty; state comes back via Restore plus block replay (the flo restart
// path), never by trusting a log that may be ahead of the checkpointed
// cursor.
func TestDurableReopenIsEmpty(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, d, EncodeSet("k", []byte("v")))
	snap := d.Snapshot()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 0 || d2.Applied() != 0 {
		t.Fatalf("reopened backend not empty: len=%d applied=%d", d2.Len(), d2.Applied())
	}
	if err := d2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := d2.Get("k"); !ok || string(v) != "v" {
		t.Fatal("restore after reopen lost the key")
	}
}

// Package statemachine provides the deterministic replicated state machine
// that rides on FLO's total order: every replica applies the merged definite
// transaction stream to a pluggable state backend and, because application
// is a pure function of the stream, all replicas hold identical state at
// equal positions ("transactions may in fact be any deterministic
// computational step", paper §1). Two backends implement StateBackend: the
// in-memory map (KV) and the durable value-log store (Durable); both emit
// the same canonical snapshot bytes, which makes replica state portable — a
// digest for cross-replica comparison, a serialized form for state transfer
// and restart, interchangeable across backends.
package statemachine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// Op codes of the KV command language.
const (
	// OpSet assigns a value to a key.
	OpSet = 1
	// OpDel removes a key.
	OpDel = 2
	// OpAdd increments a key's value interpreted as a big-endian uint64
	// (missing keys count as 0) — enough for balances and counters.
	OpAdd = 3
	// OpTransfer moves an amount between two counter keys atomically,
	// rejecting deterministically when the source balance is short — the
	// overdraft check every replica agrees on.
	OpTransfer = 4
)

// Errors returned by Apply. An erroring transaction leaves the state
// unchanged but still advances the applied-count: replicas must agree on
// rejection exactly as they agree on application.
var (
	ErrBadOp = errors.New("statemachine: malformed operation")
	// ErrInsufficient rejects a TRANSFER whose source balance is below the
	// amount.
	ErrInsufficient = errors.New("statemachine: insufficient balance")
)

// EncodeSet builds a SET payload.
func EncodeSet(key string, value []byte) []byte {
	e := types.NewEncoder(16 + len(key) + len(value))
	e.Uint8(OpSet)
	e.Bytes32([]byte(key))
	e.Bytes32(value)
	return e.Bytes()
}

// EncodeDel builds a DEL payload.
func EncodeDel(key string) []byte {
	e := types.NewEncoder(8 + len(key))
	e.Uint8(OpDel)
	e.Bytes32([]byte(key))
	return e.Bytes()
}

// EncodeAdd builds an ADD payload (delta is two's-complement, so negative
// deltas subtract).
func EncodeAdd(key string, delta int64) []byte {
	e := types.NewEncoder(16 + len(key))
	e.Uint8(OpAdd)
	e.Bytes32([]byte(key))
	e.Int64(delta)
	return e.Bytes()
}

// EncodeTransfer builds a TRANSFER payload moving amount from one counter
// key to another.
func EncodeTransfer(from, to string, amount uint64) []byte {
	e := types.NewEncoder(24 + len(from) + len(to))
	e.Uint8(OpTransfer)
	e.Bytes32([]byte(from))
	e.Bytes32([]byte(to))
	e.Uint64(amount)
	return e.Bytes()
}

// TxKeys returns the keys a payload touches, in payload order. Malformed
// payloads return nil. The watch path uses it to decide which registered
// keys a block may have changed without re-running the ops.
func TxKeys(payload []byte) []string {
	d := types.NewDecoder(payload)
	switch d.Uint8() {
	case OpSet, OpDel, OpAdd:
		key := string(d.Bytes32())
		if d.Err() != nil {
			return nil
		}
		return []string{key}
	case OpTransfer:
		from := string(d.Bytes32())
		to := string(d.Bytes32())
		if d.Err() != nil {
			return nil
		}
		return []string{from, to}
	}
	return nil
}

// table is the primitive mutation surface applyOp drives; each backend
// supplies closures over its own storage so the op semantics live in
// exactly one place.
type table struct {
	get func(key string) ([]byte, bool)
	put func(key string, value []byte)
	del func(key string)
}

// applyOp interprets one payload against a table. It is the single
// definition of the command language: both backends (and therefore every
// replica) reject and apply identically.
func applyOp(payload []byte, t table) error {
	d := types.NewDecoder(payload)
	op := d.Uint8()
	switch op {
	case OpSet:
		key := string(d.Bytes32())
		value := append([]byte(nil), d.Bytes32()...)
		if d.Finish() != nil {
			return ErrBadOp
		}
		t.put(key, value)
	case OpDel:
		key := string(d.Bytes32())
		if d.Finish() != nil {
			return ErrBadOp
		}
		t.del(key)
	case OpAdd:
		key := string(d.Bytes32())
		delta := d.Int64()
		if d.Finish() != nil {
			return ErrBadOp
		}
		cur, err := counterAt(t, key)
		if err != nil {
			return err
		}
		t.put(key, beBytes(uint64(int64(cur)+delta)))
	case OpTransfer:
		from := string(d.Bytes32())
		to := string(d.Bytes32())
		amount := d.Uint64()
		if d.Finish() != nil {
			return ErrBadOp
		}
		fromV, err := counterAt(t, from)
		if err != nil {
			return err
		}
		toV, err := counterAt(t, to)
		if err != nil {
			return err
		}
		if fromV < amount {
			return fmt.Errorf("%w: %q has %d, needs %d", ErrInsufficient, from, fromV, amount)
		}
		if from == to {
			return nil // self-transfer: balance checked, state unchanged
		}
		t.put(from, beBytes(fromV-amount))
		t.put(to, beBytes(toV+amount))
	default:
		return fmt.Errorf("%w: op %d", ErrBadOp, op)
	}
	return nil
}

// counterAt reads key as a big-endian uint64 counter (0 when absent).
func counterAt(t table, key string) (uint64, error) {
	raw, ok := t.get(key)
	if !ok {
		return 0, nil
	}
	if len(raw) != 8 {
		return 0, fmt.Errorf("%w: counter op on non-counter key %q", ErrBadOp, key)
	}
	return beUint64(raw), nil
}

// KV is the default in-memory backend: a plain map plus the canonical
// snapshot serialization. All methods are safe for concurrent use; Apply
// calls must arrive in the replica's delivery order.
type KV struct {
	mu      sync.RWMutex
	data    map[string][]byte
	applied uint64 // count of Apply calls (including rejected ones)
}

var _ StateBackend = (*KV)(nil)

// NewKV returns an empty store.
func NewKV() *KV {
	return &KV{data: make(map[string][]byte)}
}

// Apply executes one transaction payload. Malformed payloads are rejected
// deterministically (same error at every replica) and counted.
func (kv *KV) Apply(tx types.Transaction) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.applyLocked(tx)
}

func (kv *KV) applyLocked(tx types.Transaction) error {
	kv.applied++
	return applyOp(tx.Payload, table{
		get: func(k string) ([]byte, bool) { v, ok := kv.data[k]; return v, ok },
		put: func(k string, v []byte) { kv.data[k] = v },
		del: func(k string) { delete(kv.data, k) },
	})
}

// ApplyBatch applies one block's transactions in order.
func (kv *KV) ApplyBatch(txs []types.Transaction) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	for i := range txs {
		_ = kv.applyLocked(txs[i])
	}
}

func beUint64(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

func beBytes(v uint64) []byte {
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out
}

// Get returns the value of key.
func (kv *KV) Get(key string) ([]byte, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Scan returns up to max entries with begin <= key < end in ascending key
// order (empty end = unbounded, max <= 0 = uncapped).
func (kv *KV) Scan(begin, end string, max int) []Entry {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		if k >= begin && (end == "" || k < end) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if max > 0 && len(keys) > max {
		keys = keys[:max]
	}
	out := make([]Entry, len(keys))
	for i, k := range keys {
		out[i] = Entry{Key: k, Value: append([]byte(nil), kv.data[k]...)}
	}
	return out
}

// Counter returns key's value as a counter (0 when absent or malformed).
func (kv *KV) Counter(key string) int64 {
	v, ok := kv.Get(key)
	if !ok || len(v) != 8 {
		return 0
	}
	return int64(beUint64(v))
}

// Len returns the number of keys.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.data)
}

// Applied returns how many transactions have been applied (including
// rejected ones) — the replica's logical position.
func (kv *KV) Applied() uint64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.applied
}

// Hash returns a digest of the full state (keys, values, position). Two
// replicas that applied the same stream have equal hashes — the
// cross-replica consistency oracle used in tests and examples.
func (kv *KV) Hash() flcrypto.Hash {
	return flcrypto.Sum256(kv.Snapshot())
}

// Snapshot serializes the state deterministically (sorted keys).
func (kv *KV) Snapshot() []byte {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e := types.NewEncoder(64 * (len(keys) + 1))
	e.Uint64(kv.applied)
	e.Uint32(uint32(len(keys)))
	for _, k := range keys {
		e.Bytes32([]byte(k))
		e.Bytes32(kv.data[k])
	}
	return e.Bytes()
}

// Restore replaces the store's contents with a snapshot's.
func (kv *KV) Restore(snap []byte) error {
	data, applied, err := decodeSnapshot(snap)
	if err != nil {
		return err
	}
	kv.mu.Lock()
	kv.data, kv.applied = data, applied
	kv.mu.Unlock()
	return nil
}

// Close is a no-op for the in-memory backend.
func (kv *KV) Close() error { return nil }

// decodeSnapshot parses the canonical snapshot framing shared by every
// backend.
func decodeSnapshot(snap []byte) (map[string][]byte, uint64, error) {
	d := types.NewDecoder(snap)
	applied := d.Uint64()
	n := d.Uint32()
	if d.Err() != nil || n > types.MaxFieldLen/8 {
		return nil, 0, fmt.Errorf("statemachine: corrupt snapshot header")
	}
	data := make(map[string][]byte, n)
	for i := uint32(0); i < n; i++ {
		key := string(d.Bytes32())
		value := append([]byte(nil), d.Bytes32()...)
		if d.Err() != nil {
			break
		}
		data[key] = value
	}
	if err := d.Finish(); err != nil {
		return nil, 0, fmt.Errorf("statemachine: corrupt snapshot: %w", err)
	}
	return data, applied, nil
}

// Restore rebuilds an in-memory store from a snapshot.
func Restore(snap []byte) (*KV, error) {
	kv := NewKV()
	if err := kv.Restore(snap); err != nil {
		return nil, err
	}
	return kv, nil
}

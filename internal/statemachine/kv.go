// Package statemachine provides the deterministic replicated state machine
// that rides on FLO's total order: every replica applies the merged definite
// transaction stream to a KV store and, because application is a pure
// function of the stream, all replicas hold identical state at equal
// positions ("transactions may in fact be any deterministic computational
// step", paper §1). Snapshots make replica state portable: a digest for
// cross-replica comparison, a serialized form for state transfer and
// restart.
package statemachine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// Op codes of the KV command language.
const (
	// OpSet assigns a value to a key.
	OpSet = 1
	// OpDel removes a key.
	OpDel = 2
	// OpAdd increments a key's value interpreted as a big-endian uint64
	// (missing keys count as 0) — enough for balances and counters.
	OpAdd = 3
)

// Errors returned by Apply. An erroring transaction leaves the state
// unchanged but still advances the applied-count: replicas must agree on
// rejection exactly as they agree on application.
var (
	ErrBadOp = errors.New("statemachine: malformed operation")
)

// EncodeSet builds a SET payload.
func EncodeSet(key string, value []byte) []byte {
	e := types.NewEncoder(16 + len(key) + len(value))
	e.Uint8(OpSet)
	e.Bytes32([]byte(key))
	e.Bytes32(value)
	return e.Bytes()
}

// EncodeDel builds a DEL payload.
func EncodeDel(key string) []byte {
	e := types.NewEncoder(8 + len(key))
	e.Uint8(OpDel)
	e.Bytes32([]byte(key))
	return e.Bytes()
}

// EncodeAdd builds an ADD payload (delta is two's-complement, so negative
// deltas subtract).
func EncodeAdd(key string, delta int64) []byte {
	e := types.NewEncoder(16 + len(key))
	e.Uint8(OpAdd)
	e.Bytes32([]byte(key))
	e.Int64(delta)
	return e.Bytes()
}

// KV is one replica's state. All methods are safe for concurrent use;
// Apply calls must arrive in the replica's delivery order.
type KV struct {
	mu      sync.RWMutex
	data    map[string][]byte
	applied uint64 // count of Apply calls (including rejected ones)
}

// NewKV returns an empty store.
func NewKV() *KV {
	return &KV{data: make(map[string][]byte)}
}

// Apply executes one transaction payload. Malformed payloads are rejected
// deterministically (same error at every replica) and counted.
func (kv *KV) Apply(tx types.Transaction) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.applied++
	d := types.NewDecoder(tx.Payload)
	op := d.Uint8()
	switch op {
	case OpSet:
		key := string(d.Bytes32())
		value := append([]byte(nil), d.Bytes32()...)
		if d.Finish() != nil {
			return ErrBadOp
		}
		kv.data[key] = value
	case OpDel:
		key := string(d.Bytes32())
		if d.Finish() != nil {
			return ErrBadOp
		}
		delete(kv.data, key)
	case OpAdd:
		key := string(d.Bytes32())
		delta := d.Int64()
		if d.Finish() != nil {
			return ErrBadOp
		}
		cur := int64(0)
		if raw, ok := kv.data[key]; ok {
			if len(raw) != 8 {
				return fmt.Errorf("%w: ADD on non-counter key %q", ErrBadOp, key)
			}
			cur = int64(beUint64(raw))
		}
		kv.data[key] = beBytes(uint64(cur + delta))
	default:
		return fmt.Errorf("%w: op %d", ErrBadOp, op)
	}
	return nil
}

func beUint64(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

func beBytes(v uint64) []byte {
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out
}

// Get returns the value of key.
func (kv *KV) Get(key string) ([]byte, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Counter returns key's value as a counter (0 when absent or malformed).
func (kv *KV) Counter(key string) int64 {
	v, ok := kv.Get(key)
	if !ok || len(v) != 8 {
		return 0
	}
	return int64(beUint64(v))
}

// Len returns the number of keys.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.data)
}

// Applied returns how many transactions have been applied (including
// rejected ones) — the replica's logical position.
func (kv *KV) Applied() uint64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.applied
}

// Hash returns a digest of the full state (keys, values, position). Two
// replicas that applied the same stream have equal hashes — the
// cross-replica consistency oracle used in tests and examples.
func (kv *KV) Hash() flcrypto.Hash {
	return flcrypto.Sum256(kv.Snapshot())
}

// Snapshot serializes the state deterministically (sorted keys).
func (kv *KV) Snapshot() []byte {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e := types.NewEncoder(64 * (len(keys) + 1))
	e.Uint64(kv.applied)
	e.Uint32(uint32(len(keys)))
	for _, k := range keys {
		e.Bytes32([]byte(k))
		e.Bytes32(kv.data[k])
	}
	return e.Bytes()
}

// Restore rebuilds a replica from a snapshot.
func Restore(snap []byte) (*KV, error) {
	d := types.NewDecoder(snap)
	kv := NewKV()
	kv.applied = d.Uint64()
	n := d.Uint32()
	if d.Err() != nil || n > types.MaxFieldLen/8 {
		return nil, fmt.Errorf("statemachine: corrupt snapshot header")
	}
	for i := uint32(0); i < n; i++ {
		key := string(d.Bytes32())
		value := append([]byte(nil), d.Bytes32()...)
		if d.Err() != nil {
			break
		}
		kv.data[key] = value
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("statemachine: corrupt snapshot: %w", err)
	}
	return kv, nil
}

package statemachine

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func tx(payload []byte) types.Transaction {
	return types.Transaction{Client: 1, Seq: 1, Payload: payload}
}

func TestKVSetGetDel(t *testing.T) {
	kv := NewKV()
	if err := kv.Apply(tx(EncodeSet("alice", []byte("10")))); err != nil {
		t.Fatal(err)
	}
	v, ok := kv.Get("alice")
	if !ok || string(v) != "10" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	if err := kv.Apply(tx(EncodeSet("alice", []byte("20")))); err != nil {
		t.Fatal(err)
	}
	v, _ = kv.Get("alice")
	if string(v) != "20" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if err := kv.Apply(tx(EncodeDel("alice"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.Get("alice"); ok {
		t.Fatal("key survived DEL")
	}
	if kv.Applied() != 3 {
		t.Fatalf("applied = %d", kv.Applied())
	}
}

func TestKVCounter(t *testing.T) {
	kv := NewKV()
	if err := kv.Apply(tx(EncodeAdd("bal", 100))); err != nil {
		t.Fatal(err)
	}
	if err := kv.Apply(tx(EncodeAdd("bal", -30))); err != nil {
		t.Fatal(err)
	}
	if got := kv.Counter("bal"); got != 70 {
		t.Fatalf("counter = %d", got)
	}
	// ADD on a non-counter key is rejected but still counted.
	kv.Apply(tx(EncodeSet("text", []byte("hello"))))
	if err := kv.Apply(tx(EncodeAdd("text", 1))); err == nil {
		t.Fatal("ADD on 5-byte value accepted")
	}
	if kv.Applied() != 4 {
		t.Fatalf("applied = %d (rejections must count)", kv.Applied())
	}
	if got := kv.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
}

func TestKVRejectsMalformed(t *testing.T) {
	kv := NewKV()
	cases := [][]byte{
		nil,
		{99},          // unknown op
		{OpSet, 1, 2}, // truncated
		append(EncodeSet("k", []byte("v")), 0xEE), // trailing bytes
	}
	for i, payload := range cases {
		if err := kv.Apply(tx(payload)); err == nil {
			t.Fatalf("case %d: malformed payload accepted", i)
		}
	}
	if kv.Len() != 0 {
		t.Fatal("rejected ops mutated state")
	}
	if kv.Applied() != uint64(len(cases)) {
		t.Fatalf("applied = %d", kv.Applied())
	}
}

func TestKVSnapshotRestoreRoundTrip(t *testing.T) {
	kv := NewKV()
	kv.Apply(tx(EncodeSet("a", []byte("1"))))
	kv.Apply(tx(EncodeSet("b", []byte("2"))))
	kv.Apply(tx(EncodeAdd("c", 42)))
	kv.Apply(tx(EncodeDel("a")))
	snap := kv.Snapshot()
	got, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != kv.Hash() {
		t.Fatal("restore diverged from original")
	}
	if got.Applied() != kv.Applied() {
		t.Fatalf("restored position = %d, want %d", got.Applied(), kv.Applied())
	}
	if got.Counter("c") != 42 {
		t.Fatalf("restored counter = %d", got.Counter("c"))
	}
	if _, ok := got.Get("a"); ok {
		t.Fatal("deleted key resurrected")
	}
}

func TestKVRestoreRejectsCorrupt(t *testing.T) {
	kv := NewKV()
	kv.Apply(tx(EncodeSet("a", []byte("1"))))
	snap := kv.Snapshot()
	if _, err := Restore(snap[:len(snap)-2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := Restore(append(snap, 9)); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
}

// randomOps builds a deterministic op stream from a seed.
func randomOps(seed int64, count int) []types.Transaction {
	rng := rand.New(rand.NewSource(seed))
	keys := []string{"a", "b", "c", "d", "e"}
	out := make([]types.Transaction, count)
	for i := range out {
		key := keys[rng.Intn(len(keys))]
		var payload []byte
		switch rng.Intn(3) {
		case 0:
			val := make([]byte, rng.Intn(32))
			rng.Read(val)
			payload = EncodeSet(key, val)
		case 1:
			payload = EncodeDel(key)
		default:
			// ADD may hit a SET string key and be rejected — also a
			// behavior replicas must agree on.
			payload = EncodeAdd("ctr:"+key, int64(rng.Intn(100)-50))
		}
		out[i] = types.Transaction{Client: 7, Seq: uint64(i), Payload: payload}
	}
	return out
}

func TestKVDeterminismQuick(t *testing.T) {
	// Property: two replicas applying the same stream agree on the state
	// hash; a replica restored from a mid-stream snapshot and fed the rest
	// agrees too.
	fn := func(seed int64, countRaw uint8, cutRaw uint8) bool {
		count := int(countRaw)%80 + 1
		cut := int(cutRaw) % count
		ops := randomOps(seed, count)

		a, b := NewKV(), NewKV()
		for _, op := range ops {
			a.Apply(op)
		}
		for _, op := range ops[:cut] {
			b.Apply(op)
		}
		c, err := Restore(b.Snapshot())
		if err != nil {
			return false
		}
		for _, op := range ops[cut:] {
			b.Apply(op)
			c.Apply(op)
		}
		return a.Hash() == b.Hash() && b.Hash() == c.Hash()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKVSnapshotDeterministic(t *testing.T) {
	// Same logical state reached by different op orders (where commutative)
	// must snapshot identically: map iteration order must not leak.
	a, b := NewKV(), NewKV()
	a.Apply(tx(EncodeSet("x", []byte("1"))))
	a.Apply(tx(EncodeSet("y", []byte("2"))))
	b.Apply(tx(EncodeSet("y", []byte("2"))))
	b.Apply(tx(EncodeSet("x", []byte("1"))))
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("snapshot depends on insertion order")
	}
}

package statemachine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// Durable is the disk-backed state backend: values live in an append-only
// value log on disk, and an in-memory ordered index maps each live key to
// its latest value's location. Point gets and range scans read through the
// index (one ReadAt per value, served from the page cache for hot keys), so
// the resident footprint is keys-only — the shape that lets applied state
// outgrow RAM without giving up ordered iteration.
//
// Durability rides in store checkpoints, not in the log: Snapshot emits the
// same canonical bytes as KV.Snapshot (byte-identical across backends) and
// is captured at the merge point by flo's checkpointer; recovery is always
// Restore(checkpoint state) followed by replayed-block re-delivery through
// the replica's idempotent (worker, round) positions. The log is therefore
// a serving store that is rebuilt on restore, never replayed on its own —
// which is what keeps a torn log tail from ever corrupting state.
type Durable struct {
	mu   sync.RWMutex
	dir  string
	f    *os.File // append-only value log
	size int64    // log end offset
	live int64    // bytes of live (indexed) values

	index   map[string]valRef
	keys    []string // sorted live keys
	applied uint64
}

// valRef locates one live value in the log.
type valRef struct {
	off int64
	len uint32
}

// compactSlack is how many bytes of garbage the log tolerates beyond 2×
// the live set before apply-time compaction rewrites it.
const compactSlack = 1 << 20

var _ StateBackend = (*Durable)(nil)

// OpenDurable opens a value-log backend rooted at dir, creating it if
// needed. The backend always starts empty: its contents are rebuilt by
// Restore (from a checkpoint's state) plus block replay, so a pre-existing
// log at dir is truncated rather than trusted.
func OpenDurable(dir string) (*Durable, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statemachine: open durable: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "state.log"), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("statemachine: open durable: %w", err)
	}
	return &Durable{dir: dir, f: f, index: make(map[string]valRef)}, nil
}

// Dir returns the backend's root directory.
func (d *Durable) Dir() string { return d.dir }

// Apply executes one transaction payload (see StateBackend).
func (d *Durable) Apply(tx types.Transaction) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.applyLocked(tx)
	d.maybeCompactLocked()
	return err
}

// ApplyBatch applies one block's transactions in order; compaction is
// considered once per batch.
func (d *Durable) ApplyBatch(txs []types.Transaction) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range txs {
		_ = d.applyLocked(txs[i])
	}
	d.maybeCompactLocked()
}

func (d *Durable) applyLocked(tx types.Transaction) error {
	d.applied++
	return applyOp(tx.Payload, table{
		get: d.getLocked,
		put: d.putLocked,
		del: d.delLocked,
	})
}

// getLocked reads a live value out of the log.
func (d *Durable) getLocked(key string) ([]byte, bool) {
	ref, ok := d.index[key]
	if !ok {
		return nil, false
	}
	buf := make([]byte, ref.len)
	if _, err := d.f.ReadAt(buf, ref.off); err != nil {
		// The log is node-local and append-only; a failed read here means
		// the file was tampered with out-of-band. Treat as absent — the
		// next checkpoint restore rebuilds the log wholesale.
		return nil, false
	}
	return buf, true
}

// putLocked appends the value to the log and points the index at it.
func (d *Durable) putLocked(key string, value []byte) {
	off := d.size
	if len(value) > 0 {
		if _, err := d.f.WriteAt(value, off); err != nil {
			// Leave the index on the old value; the applied count still
			// advances, and the divergence heals at the next restore.
			return
		}
	}
	d.size += int64(len(value))
	if old, ok := d.index[key]; ok {
		d.live -= int64(old.len)
	} else {
		d.insertKeyLocked(key)
	}
	d.index[key] = valRef{off: off, len: uint32(len(value))}
	d.live += int64(len(value))
}

func (d *Durable) delLocked(key string) {
	ref, ok := d.index[key]
	if !ok {
		return
	}
	d.live -= int64(ref.len)
	delete(d.index, key)
	i := sort.SearchStrings(d.keys, key)
	if i < len(d.keys) && d.keys[i] == key {
		d.keys = append(d.keys[:i], d.keys[i+1:]...)
	}
}

func (d *Durable) insertKeyLocked(key string) {
	i := sort.SearchStrings(d.keys, key)
	if i < len(d.keys) && d.keys[i] == key {
		return
	}
	d.keys = append(d.keys, "")
	copy(d.keys[i+1:], d.keys[i:])
	d.keys[i] = key
}

// maybeCompactLocked rewrites the log with live values only once dead bytes
// dominate — the amortized cleanup that keeps an append-only log bounded by
// the live set.
func (d *Durable) maybeCompactLocked() {
	if d.size <= 2*d.live+compactSlack {
		return
	}
	_ = d.rewriteLocked()
}

// rewriteLocked streams every live value into a fresh log and atomically
// swaps it in (write-tmp, rename — the store.WriteSnapshot pattern).
func (d *Durable) rewriteLocked() error {
	tmpPath := filepath.Join(d.dir, "state.log.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("statemachine: compact: %w", err)
	}
	newIndex := make(map[string]valRef, len(d.index))
	var off int64
	for _, k := range d.keys {
		v, ok := d.getLocked(k)
		if !ok {
			v = nil
		}
		if len(v) > 0 {
			if _, err := tmp.WriteAt(v, off); err != nil {
				tmp.Close()
				os.Remove(tmpPath)
				return fmt.Errorf("statemachine: compact: %w", err)
			}
		}
		newIndex[k] = valRef{off: off, len: uint32(len(v))}
		off += int64(len(v))
	}
	logPath := filepath.Join(d.dir, "state.log")
	if err := os.Rename(tmpPath, logPath); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("statemachine: compact: %w", err)
	}
	d.f.Close()
	d.f = tmp
	d.index = newIndex
	d.size, d.live = off, off
	return nil
}

// Get returns the current value of key.
func (d *Durable) Get(key string) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.getLocked(key)
}

// Scan returns up to max entries with begin <= key < end in ascending key
// order (empty end = unbounded, max <= 0 = uncapped). The ordered key index
// makes this a binary search plus a contiguous walk.
func (d *Durable) Scan(begin, end string, max int) []Entry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	i := sort.SearchStrings(d.keys, begin)
	var out []Entry
	for ; i < len(d.keys); i++ {
		k := d.keys[i]
		if end != "" && k >= end {
			break
		}
		if max > 0 && len(out) >= max {
			break
		}
		v, _ := d.getLocked(k)
		out = append(out, Entry{Key: k, Value: v})
	}
	return out
}

// Len returns the number of live keys.
func (d *Durable) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.keys)
}

// Applied returns the backend's logical position.
func (d *Durable) Applied() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.applied
}

// Hash digests the full state; equal to KV.Hash for equal state.
func (d *Durable) Hash() flcrypto.Hash {
	return flcrypto.Sum256(d.Snapshot())
}

// Snapshot serializes the state canonically — byte-identical to what a KV
// holding the same data would emit, which is what lets a checkpoint taken
// on one backend restore on the other.
func (d *Durable) Snapshot() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e := types.NewEncoder(64 * (len(d.keys) + 1))
	e.Uint64(d.applied)
	e.Uint32(uint32(len(d.keys)))
	for _, k := range d.keys {
		v, _ := d.getLocked(k)
		e.Bytes32([]byte(k))
		e.Bytes32(v)
	}
	return e.Bytes()
}

// Restore replaces the backend's contents with a snapshot's, rewriting the
// value log from scratch.
func (d *Durable) Restore(snap []byte) error {
	data, applied, err := decodeSnapshot(snap)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if err := d.f.Truncate(0); err != nil {
		return fmt.Errorf("statemachine: restore: %w", err)
	}
	d.size, d.live = 0, 0
	d.index = make(map[string]valRef, len(data))
	d.keys = d.keys[:0]
	for _, k := range keys {
		d.putLocked(k, data[k])
	}
	// putLocked maintained sorted order because keys arrived sorted; the
	// index and key list are now exactly the snapshot's live set.
	d.applied = applied
	return nil
}

// Close closes the value log.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

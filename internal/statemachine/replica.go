package statemachine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
)

// Replica applies FLO's merged definite block stream to a StateBackend
// while tracking the last applied round per worker, making delivery
// idempotent: a block at a round the replica has already passed is skipped.
// That property is what snapshot restore needs — the restart path
// re-delivers every replayed post-snapshot block and the replica applies
// exactly the ones its checkpoint does not cover — and it also tolerates
// the at-least-once delivery a crash between persist and apply can produce.
//
// A Replica snapshot embeds both the backend state and the per-worker
// positions, so it plugs directly into flo's checkpointing (and because
// backend snapshots are canonical, a replica checkpointed on one backend
// restores onto the other).
//
// Beyond applying, the replica is the node's read surface: Get/Scan serve
// point and range reads, WaitCovered blocks until the applied frontier
// covers a receipt's (worker, round) — the consistency token that gives a
// client read-your-writes — and WatchKey streams changes to one key.
type Replica struct {
	mu    sync.Mutex
	state StateBackend
	last  map[uint32]uint64 // worker → last applied round
	// (curW, curRound) is the explicit merged-stream cursor: the position of
	// the most recent block applied in the merged (round, worker) order. It
	// rides in Snapshot, so a restored replica knows exactly where in the
	// merged stream its state sits — the property flo needs to allow
	// SnapshotState with ω > 1.
	curW     uint32
	curRound uint64

	// frontier is closed and replaced on every position advance; WaitCovered
	// blocks on it.
	frontier chan struct{}
	watchers map[string][]*watcher
}

// NewReplica returns an empty replica over the in-memory map backend.
func NewReplica() *Replica {
	return NewReplicaWith(NewKV())
}

// NewReplicaWith returns an empty replica over the given backend.
func NewReplicaWith(b StateBackend) *Replica {
	return &Replica{
		state:    b,
		last:     make(map[uint32]uint64),
		frontier: make(chan struct{}),
		watchers: make(map[string][]*watcher),
	}
}

// State exposes the underlying backend (read access).
func (r *Replica) State() StateBackend { return r.state }

// KV exposes the underlying store when the replica runs on the in-memory
// backend; it returns nil for other backends. Prefer State.
func (r *Replica) KV() *KV {
	kv, _ := r.state.(*KV)
	return kv
}

// Position returns the last applied round of worker w.
func (r *Replica) Position(w uint32) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last[w]
}

// Cursor returns the merged-stream position of the most recently applied
// block: the (worker, round) pair that is maximal in the merged
// (round, worker) order among everything this replica has applied. A zero
// round means nothing was applied yet.
func (r *Replica) Cursor() (worker uint32, round uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curW, r.curRound
}

// Get returns the current value of key from the backend.
func (r *Replica) Get(key string) ([]byte, bool) { return r.state.Get(key) }

// Scan returns up to max entries with begin <= key < end in ascending key
// order from the backend.
func (r *Replica) Scan(begin, end string, max int) []Entry {
	return r.state.Scan(begin, end, max)
}

// Covered reports whether the replica has applied worker w's round. A zero
// round is always covered (read whatever is current).
func (r *Replica) Covered(w uint32, round uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return round == 0 || r.last[w] >= round
}

// WaitCovered blocks until the replica's applied frontier covers
// (w, round) — the consistency barrier behind receipt-anchored reads: a
// client that submits, takes the commit Receipt, and reads with its token
// is guaranteed to observe its own write.
func (r *Replica) WaitCovered(ctx context.Context, w uint32, round uint64) error {
	for {
		r.mu.Lock()
		if round == 0 || r.last[w] >= round {
			r.mu.Unlock()
			return nil
		}
		ch := r.frontier
		r.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Deliver applies one definite block from worker w, skipping blocks at or
// below the replica's position for that worker. It reports whether the
// block was applied. r.mu is held across the position update and the
// applies, so a concurrent Snapshot never captures a position whose
// transactions are only partially in the backend.
func (r *Replica) Deliver(w uint32, blk types.Block) bool {
	round := blk.Signed.Header.Round
	r.mu.Lock()
	defer r.mu.Unlock()
	if round <= r.last[w] {
		return false
	}
	// Resolve which watched keys this block may touch before applying, so
	// the post-apply reads see exactly this block's effect.
	var touched []string
	if len(r.watchers) > 0 {
		seen := make(map[string]bool)
		for i := range blk.Body.Txs {
			for _, k := range TxKeys(blk.Body.Txs[i].Payload) {
				if _, watched := r.watchers[k]; watched && !seen[k] {
					seen[k] = true
					touched = append(touched, k)
				}
			}
		}
	}
	r.state.ApplyBatch(blk.Body.Txs)
	r.last[w] = round
	if round > r.curRound || (round == r.curRound && w > r.curW) {
		r.curW, r.curRound = w, round
	}
	close(r.frontier)
	r.frontier = make(chan struct{})
	for _, k := range touched {
		v, ok := r.state.Get(k)
		upd := KeyUpdate{Key: k, Value: v, Exists: ok, Worker: r.curW, Round: r.curRound}
		for _, wt := range r.watchers[k] {
			wt.offer(upd)
		}
	}
	return true
}

// KeyUpdate is one observed change of a watched key. Worker/Round is the
// replica's merged cursor when the update was captured — usable as a
// consistency token for follow-up reads.
type KeyUpdate struct {
	Key    string
	Value  []byte
	Exists bool
	Worker uint32
	Round  uint64
}

// watcher is one WatchKey registration. Delivery coalesces: the replica's
// apply path writes the latest update into a slot without ever blocking,
// and a pump goroutine drains the slot into the subscriber's channel —
// a slow consumer sees the newest value, not an unbounded backlog.
type watcher struct {
	key    string
	mu     sync.Mutex
	latest KeyUpdate
	has    bool
	wake   chan struct{}
	done   chan struct{}
	out    chan KeyUpdate
}

func (wt *watcher) offer(upd KeyUpdate) {
	wt.mu.Lock()
	wt.latest, wt.has = upd, true
	wt.mu.Unlock()
	select {
	case wt.wake <- struct{}{}:
	default:
	}
}

func (wt *watcher) pump() {
	defer close(wt.out)
	for {
		select {
		case <-wt.done:
			return
		case <-wt.wake:
		}
		wt.mu.Lock()
		upd, has := wt.latest, wt.has
		wt.has = false
		wt.mu.Unlock()
		if !has {
			continue
		}
		select {
		case wt.out <- upd:
		case <-wt.done:
			return
		}
	}
}

// WatchKey registers a watch on key: the returned channel first yields the
// key's current state (captured atomically with registration, so no change
// is missed in between) and then every subsequent change, coalesced to the
// latest value when the consumer lags. cancel unregisters the watch and
// closes the channel.
func (r *Replica) WatchKey(key string) (<-chan KeyUpdate, func()) {
	wt := &watcher{
		key:  key,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
		out:  make(chan KeyUpdate, 1),
	}
	r.mu.Lock()
	r.watchers[key] = append(r.watchers[key], wt)
	v, ok := r.state.Get(key)
	wt.offer(KeyUpdate{Key: key, Value: v, Exists: ok, Worker: r.curW, Round: r.curRound})
	r.mu.Unlock()
	go wt.pump()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			r.mu.Lock()
			ws := r.watchers[key]
			for i, w := range ws {
				if w == wt {
					r.watchers[key] = append(ws[:i], ws[i+1:]...)
					break
				}
			}
			if len(r.watchers[key]) == 0 {
				delete(r.watchers, key)
			}
			r.mu.Unlock()
			close(wt.done)
		})
	}
	return wt.out, cancel
}

// Snapshot serializes the replica deterministically: the merged-stream
// cursor, the per-worker positions, and the backend snapshot, captured
// atomically with respect to Deliver. The encoding is canonical (workers
// sorted, backend bytes canonical), so restoring a snapshot and
// re-serializing yields byte-identical output — on either backend.
func (r *Replica) Snapshot() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	workers := make([]uint32, 0, len(r.last))
	for w := range r.last {
		workers = append(workers, w)
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i] < workers[j] })
	e := types.NewEncoder(64)
	e.Uint32(r.curW)
	e.Uint64(r.curRound)
	e.Uint32(uint32(len(workers)))
	for _, w := range workers {
		e.Uint32(w)
		e.Uint64(r.last[w])
	}
	e.Bytes32(r.state.Snapshot())
	return e.Bytes()
}

// decodeReplicaSnapshot parses a Replica snapshot into its cursor,
// per-worker positions, and backend payload.
func decodeReplicaSnapshot(snap []byte) (curW uint32, curRound uint64, last map[uint32]uint64, stateSnap []byte, err error) {
	d := types.NewDecoder(snap)
	curW = d.Uint32()
	curRound = d.Uint64()
	n := d.Uint32()
	if d.Err() != nil || n > types.MaxFieldLen/12 {
		return 0, 0, nil, nil, fmt.Errorf("statemachine: corrupt replica snapshot header")
	}
	last = make(map[uint32]uint64, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		w := d.Uint32()
		last[w] = d.Uint64()
	}
	stateSnap = d.Bytes32()
	if err := d.Finish(); err != nil {
		return 0, 0, nil, nil, fmt.Errorf("statemachine: corrupt replica snapshot: %w", err)
	}
	return curW, curRound, last, stateSnap, nil
}

// SnapshotPositions returns the per-worker applied positions recorded in a
// Replica snapshot, without restoring it — the transfer path uses this to
// verify a donated snapshot's claimed frontier before installing anything.
func SnapshotPositions(snap []byte) (map[uint32]uint64, error) {
	_, _, last, _, err := decodeReplicaSnapshot(snap)
	return last, err
}

// Reset restores a Replica snapshot into a live replica in place: the
// backend contents are replaced, the positions jump to the snapshot's, and
// every blocked WaitCovered re-evaluates against the new frontier (watchers
// are re-offered their key's post-restore value). This is the
// snapshot-transfer install path — unlike RestoreReplicaInto it keeps the
// replica identity (and thus every Session holding it) intact.
func (r *Replica) Reset(snap []byte) error {
	curW, curRound, last, stateSnap, err := decodeReplicaSnapshot(snap)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.state.Restore(stateSnap); err != nil {
		return err
	}
	r.last, r.curW, r.curRound = last, curW, curRound
	close(r.frontier)
	r.frontier = make(chan struct{})
	for key, ws := range r.watchers {
		v, ok := r.state.Get(key)
		upd := KeyUpdate{Key: key, Value: v, Exists: ok, Worker: r.curW, Round: r.curRound}
		for _, wt := range ws {
			wt.offer(upd)
		}
	}
	return nil
}

// RestoreReplica rebuilds a replica over the in-memory backend from a
// Snapshot.
func RestoreReplica(snap []byte) (*Replica, error) {
	return RestoreReplicaInto(NewKV(), snap)
}

// RestoreReplicaInto rebuilds a replica from a Snapshot, loading the state
// into the given backend (whose previous contents are replaced). A nil snap
// yields a fresh replica over the backend — the "no checkpoint yet" boot.
func RestoreReplicaInto(b StateBackend, snap []byte) (*Replica, error) {
	if snap == nil {
		return NewReplicaWith(b), nil
	}
	curW, curRound, last, stateSnap, err := decodeReplicaSnapshot(snap)
	if err != nil {
		return nil, err
	}
	if err := b.Restore(stateSnap); err != nil {
		return nil, err
	}
	r := NewReplicaWith(b)
	r.last, r.curW, r.curRound = last, curW, curRound
	return r, nil
}

package statemachine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
)

// Replica applies FLO's merged definite block stream to a KV while tracking
// the last applied round per worker, making delivery idempotent: a block at
// a round the replica has already passed is skipped. That property is what
// snapshot restore needs — the restart path re-delivers every replayed
// post-snapshot block and the replica applies exactly the ones its
// checkpoint does not cover — and it also tolerates the at-least-once
// delivery a crash between persist and apply can produce.
//
// A Replica snapshot embeds both the KV state and the per-worker positions,
// so it plugs directly into flo.Config.SnapshotState/RestoreState.
type Replica struct {
	mu   sync.Mutex
	kv   *KV
	last map[uint32]uint64 // worker → last applied round
	// (curW, curRound) is the explicit merged-stream cursor: the position of
	// the most recent block applied in the merged (round, worker) order. It
	// rides in Snapshot, so a restored replica knows exactly where in the
	// merged stream its state sits — the property flo needs to allow
	// SnapshotState with ω > 1.
	curW     uint32
	curRound uint64
}

// NewReplica returns an empty replica.
func NewReplica() *Replica {
	return &Replica{kv: NewKV(), last: make(map[uint32]uint64)}
}

// KV exposes the underlying store (read access).
func (r *Replica) KV() *KV { return r.kv }

// Position returns the last applied round of worker w.
func (r *Replica) Position(w uint32) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last[w]
}

// Cursor returns the merged-stream position of the most recently applied
// block: the (worker, round) pair that is maximal in the merged
// (round, worker) order among everything this replica has applied. A zero
// round means nothing was applied yet.
func (r *Replica) Cursor() (worker uint32, round uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curW, r.curRound
}

// Deliver applies one definite block from worker w, skipping blocks at or
// below the replica's position for that worker. It reports whether the
// block was applied. r.mu is held across the position update and the
// applies, so a concurrent Snapshot never captures a position whose
// transactions are only partially in the KV.
func (r *Replica) Deliver(w uint32, blk types.Block) bool {
	round := blk.Signed.Header.Round
	r.mu.Lock()
	defer r.mu.Unlock()
	if round <= r.last[w] {
		return false
	}
	for i := range blk.Body.Txs {
		// Deterministic rejection is part of the stream semantics; errors
		// are deliberately not surfaced per-tx here.
		_ = r.kv.Apply(blk.Body.Txs[i])
	}
	r.last[w] = round
	if round > r.curRound || (round == r.curRound && w > r.curW) {
		r.curW, r.curRound = w, round
	}
	return true
}

// Snapshot serializes the replica deterministically: the merged-stream
// cursor, the per-worker positions, and the KV snapshot, captured atomically
// with respect to Deliver. The encoding is canonical (workers sorted), so
// restoring a snapshot and re-serializing yields byte-identical output.
func (r *Replica) Snapshot() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	workers := make([]uint32, 0, len(r.last))
	for w := range r.last {
		workers = append(workers, w)
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i] < workers[j] })
	e := types.NewEncoder(64)
	e.Uint32(r.curW)
	e.Uint64(r.curRound)
	e.Uint32(uint32(len(workers)))
	for _, w := range workers {
		e.Uint32(w)
		e.Uint64(r.last[w])
	}
	e.Bytes32(r.kv.Snapshot())
	return e.Bytes()
}

// RestoreReplica rebuilds a replica from a Snapshot.
func RestoreReplica(snap []byte) (*Replica, error) {
	d := types.NewDecoder(snap)
	curW := d.Uint32()
	curRound := d.Uint64()
	n := d.Uint32()
	if d.Err() != nil || n > types.MaxFieldLen/12 {
		return nil, fmt.Errorf("statemachine: corrupt replica snapshot header")
	}
	last := make(map[uint32]uint64, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		w := d.Uint32()
		last[w] = d.Uint64()
	}
	kvSnap := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("statemachine: corrupt replica snapshot: %w", err)
	}
	kv, err := Restore(kvSnap)
	if err != nil {
		return nil, err
	}
	return &Replica{kv: kv, last: last, curW: curW, curRound: curRound}, nil
}

// Package metrics provides the measurement instruments of the paper's §7
// evaluation: latency histograms with CDFs and trimmed means (Fig 8, 15),
// throughput accounting (Fig 6, 7, 10-14), and the per-round event timeline
// behind the Fig 9 heatmaps.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The zero value is ready. Hot-path instrumentation (pooled-buffer
// reuse, coalesced flushes, group commits) uses these so the harness
// experiments can report the mechanisms' activity alongside throughput.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// BatchStats aggregates batch sizes (coalesced transport flushes,
// group-commit fsync batches): how many batches were formed, how many items
// they carried in total, and the largest one observed. Mean batch size is
// the headline number — it is what turns per-item costs (syscalls, fsyncs)
// into per-batch costs.
type BatchStats struct {
	batches atomic.Uint64
	items   atomic.Uint64
	max     atomic.Uint64
}

// Observe records one batch of n items. Zero-item batches are ignored.
func (s *BatchStats) Observe(n int) {
	if n <= 0 {
		return
	}
	s.batches.Add(1)
	s.items.Add(uint64(n))
	for {
		cur := s.max.Load()
		if uint64(n) <= cur || s.max.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// Snapshot returns the totals observed so far.
func (s *BatchStats) Snapshot() BatchSnapshot {
	return BatchSnapshot{
		Batches: s.batches.Load(),
		Items:   s.items.Load(),
		Max:     s.max.Load(),
	}
}

// BatchSnapshot is a point-in-time view of a BatchStats.
type BatchSnapshot struct {
	Batches uint64 // batches formed
	Items   uint64 // items across all batches
	Max     uint64 // largest single batch
}

// Mean returns the average batch size (0 when no batches were observed).
func (s BatchSnapshot) Mean() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Items) / float64(s.Batches)
}

// Histogram collects duration samples and answers percentile/CDF queries.
// It keeps raw samples (bounded) rather than buckets: experiment runs are
// short and exact percentiles keep the CDF plots honest.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	max     int
	dropped int
}

// NewHistogram creates a histogram bounded to maxSamples (default 1<<20).
func NewHistogram(maxSamples int) *Histogram {
	if maxSamples <= 0 {
		maxSamples = 1 << 20
	}
	return &Histogram{max: maxSamples}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) >= h.max {
		h.dropped++
		return
	}
	h.samples = append(h.samples, d)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

func (h *Histogram) sorted() []time.Duration {
	h.mu.Lock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-th percentile (0 < p ≤ 100), or 0 when empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	s := h.sorted()
	if len(s) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TrimmedMean returns the mean after dropping the `trim` most extreme
// fraction from the top (the paper omits the 5% most extreme results in
// Fig 15: trim = 0.05).
func (h *Histogram) TrimmedMean(trim float64) time.Duration {
	s := h.sorted()
	keep := len(s) - int(float64(len(s))*trim)
	if keep <= 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s[:keep] {
		sum += d
	}
	return sum / time.Duration(keep)
}

// CDF returns (value, cumulative-fraction) pairs at `points` evenly spaced
// quantiles, ready for a Fig 8-style plot.
func (h *Histogram) CDF(points int) []CDFPoint {
	s := h.sorted()
	if len(s) == 0 || points <= 0 {
		return nil
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		frac := float64(i) / float64(points)
		idx := int(frac*float64(len(s))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{Value: s[idx], Fraction: frac})
	}
	return out
}

// CDFPoint is one point of a cumulative distribution plot.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// WriteCDF renders the CDF as "fraction<TAB>seconds" rows.
func (h *Histogram) WriteCDF(w io.Writer, points int) {
	for _, p := range h.CDF(points) {
		fmt.Fprintf(w, "%.3f\t%.4f\n", p.Fraction, p.Value.Seconds())
	}
}

// Timeline records the per-round lifecycle timestamps behind Fig 9: for
// each (worker, round), the first time each event was observed anywhere in
// the cluster. Events are the paper's A (block proposal), B (header
// proposal), C (tentative decision), D (definite decision), E (FLO
// delivery).
type Timeline struct {
	mu sync.Mutex
	m  map[timelineKey][5]time.Time
}

type timelineKey struct {
	worker uint32
	round  uint64
}

// EventCount is the number of tracked lifecycle events.
const EventCount = 5

// EventNames label the Fig 9 rows.
var EventNames = [EventCount]string{"A:block", "B:header", "C:tentative", "D:definite", "E:delivered"}

// NewTimeline creates an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{m: make(map[timelineKey][5]time.Time)}
}

// Record stamps event ev (0..4) for (worker, round) if not already stamped.
func (t *Timeline) Record(worker uint32, round uint64, ev int) {
	if ev < 0 || ev >= EventCount {
		return
	}
	now := time.Now()
	key := timelineKey{worker, round}
	t.mu.Lock()
	stamps := t.m[key]
	if stamps[ev].IsZero() {
		stamps[ev] = now
		t.m[key] = stamps
	}
	t.mu.Unlock()
}

// Gaps returns the average duration between consecutive events (A→B, B→C,
// C→D, D→E) over all rounds where both stamps exist — the Fig 9 heat
// values — plus how many rounds contributed.
func (t *Timeline) Gaps() ([EventCount - 1]time.Duration, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sums [EventCount - 1]time.Duration
	var counts [EventCount - 1]int
	for _, stamps := range t.m {
		for i := 0; i < EventCount-1; i++ {
			if !stamps[i].IsZero() && !stamps[i+1].IsZero() && stamps[i+1].After(stamps[i]) {
				sums[i] += stamps[i+1].Sub(stamps[i])
				counts[i]++
			}
		}
	}
	var out [EventCount - 1]time.Duration
	total := 0
	for i := range sums {
		if counts[i] > 0 {
			out[i] = sums[i] / time.Duration(counts[i])
			total = counts[i]
		}
	}
	return out, total
}

// Birth returns the A-event timestamp of (worker, round), for latency
// measurements (block birth → delivery).
func (t *Timeline) Birth(worker uint32, round uint64) (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	stamps, ok := t.m[timelineKey{worker, round}]
	if !ok || stamps[0].IsZero() {
		return time.Time{}, false
	}
	return stamps[0], true
}

// Rate is a simple throughput window: totals divided by elapsed time.
type Rate struct {
	start time.Time
	base  uint64
}

// NewRate opens a measurement window with the counter's current value.
func NewRate(current uint64) *Rate {
	return &Rate{start: time.Now(), base: current}
}

// PerSecond returns the rate given the counter's value now.
func (r *Rate) PerSecond(current uint64) float64 {
	elapsed := time.Since(r.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(current-r.base) / elapsed
}

package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Percentile(50); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Percentile(1); got > 5*time.Millisecond {
		t.Fatalf("p1 = %v", got)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Percentile(50) != 0 || h.TrimmedMean(0.05) != 0 {
		t.Fatal("empty histogram should answer zeros")
	}
	if h.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestHistogramTrimmedMean(t *testing.T) {
	h := NewHistogram(0)
	for i := 0; i < 95; i++ {
		h.Observe(10 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(10 * time.Second) // outliers the paper's Fig 15 trims
	}
	if got := h.TrimmedMean(0.05); got != 10*time.Millisecond {
		t.Fatalf("trimmed mean = %v, want 10ms", got)
	}
	if got := h.TrimmedMean(0); got <= 10*time.Millisecond {
		t.Fatal("untrimmed mean should be pulled up by outliers")
	}
}

func TestHistogramBounded(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 10 {
		t.Fatalf("bounded histogram kept %d samples", h.Count())
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewHistogram(0)
		for _, v := range raw {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		pts := h.CDF(8)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCDFFormat(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(time.Second)
	var sb strings.Builder
	h.WriteCDF(&sb, 4)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 CDF rows, got %d", len(lines))
	}
	if !strings.Contains(lines[3], "1.000") {
		t.Fatalf("last row should reach fraction 1.000: %q", lines[3])
	}
}

func TestTimelineGaps(t *testing.T) {
	tl := NewTimeline()
	tl.Record(0, 1, 0)
	time.Sleep(5 * time.Millisecond)
	tl.Record(0, 1, 1)
	time.Sleep(2 * time.Millisecond)
	tl.Record(0, 1, 2)
	tl.Record(0, 1, 3)
	tl.Record(0, 1, 4)
	gaps, n := tl.Gaps()
	if n == 0 {
		t.Fatal("no rounds contributed")
	}
	if gaps[0] < 4*time.Millisecond {
		t.Fatalf("A->B gap = %v, want >= ~5ms", gaps[0])
	}
}

func TestTimelineFirstStampWins(t *testing.T) {
	tl := NewTimeline()
	tl.Record(0, 1, 0)
	birth1, ok := tl.Birth(0, 1)
	if !ok {
		t.Fatal("missing birth")
	}
	time.Sleep(2 * time.Millisecond)
	tl.Record(0, 1, 0) // duplicate: ignored
	birth2, _ := tl.Birth(0, 1)
	if !birth1.Equal(birth2) {
		t.Fatal("duplicate stamp overwrote the first")
	}
}

func TestTimelineIgnoresBadEvent(t *testing.T) {
	tl := NewTimeline()
	tl.Record(0, 1, -1)
	tl.Record(0, 1, EventCount)
	if _, ok := tl.Birth(0, 1); ok {
		t.Fatal("invalid events were recorded")
	}
}

func TestRate(t *testing.T) {
	r := NewRate(100)
	time.Sleep(50 * time.Millisecond)
	got := r.PerSecond(200)
	if got < 500 || got > 2100 {
		t.Fatalf("rate = %v, want ~2000 within slack", got)
	}
}

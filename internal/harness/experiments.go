package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
)

// Scale bundles the knobs that trade fidelity for wall-clock time: the
// quick profile is used by `go test`/CI and the benchmarks, the full
// profile by `flbench -full`.
type Scale struct {
	Workers   []int // ω sweep
	Ns        []int // cluster sizes
	Batches   []int // β sweep
	Sizes     []int // σ sweep
	Warmup    time.Duration
	Duration  time.Duration
	GeoScale  float64 // latency compression for the geo model
	BigN      int     // Fig 10 cluster size
	SigBench  time.Duration
	Bandwidth float64 // egress model, bytes/sec
}

// Quick is the CI-friendly profile: small sweeps, sub-second windows,
// compressed geo latency. Shapes survive; absolute numbers are smaller.
var Quick = Scale{
	Workers:   []int{1, 2, 4},
	Ns:        []int{4, 7},
	Batches:   []int{10, 100},
	Sizes:     []int{512},
	Warmup:    400 * time.Millisecond,
	Duration:  1200 * time.Millisecond,
	GeoScale:  0.05,
	BigN:      16,
	SigBench:  200 * time.Millisecond,
	Bandwidth: 10e9 / 8, // the paper's "up to 10 Gbps" links
}

// Full approximates the paper's Table 2 sweep (minutes of wall clock).
var Full = Scale{
	Workers:   []int{1, 2, 4, 6, 8, 10},
	Ns:        []int{4, 7, 10},
	Batches:   []int{10, 100, 1000},
	Sizes:     []int{512, 1024, 4096},
	Warmup:    2 * time.Second,
	Duration:  10 * time.Second,
	GeoScale:  0.25,
	BigN:      100,
	SigBench:  time.Second,
	Bandwidth: 10e9 / 8,
}

// Fig5 prints the signature-generation-rate micro-benchmark (§7.1): sps for
// every (ω, β, σ) combination.
func Fig5(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 5: signature generation rate (ed25519; paper: ECDSA secp256k1)\n")
	fmt.Fprintf(w, "workers\tbatch\ttxsize\tsps\n")
	for _, batch := range s.Batches {
		for _, size := range s.Sizes {
			for _, workers := range s.Workers {
				sps := SignatureRate(flcrypto.Ed25519, workers, batch, size, s.SigBench)
				fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\n", workers, batch, size, sps)
			}
		}
	}
}

// Fig6 prints FLO's blocks-per-second in a single data-center cluster.
func Fig6(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 6: FLO bps, single data-center, sigma=0 (headers only)\n")
	fmt.Fprintf(w, "n\tworkers\tbps\n")
	for _, n := range s.Ns {
		for _, workers := range s.Workers {
			res := RunFLO(Options{
				N: n, Workers: workers, Batch: 1, TxSize: 64,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
			})
			fmt.Fprintf(w, "%d\t%d\t%.0f\n", n, workers, res.BPS)
		}
	}
}

// Fig7 prints FLO's transaction throughput across the Table 2 sweep in a
// single data-center.
func Fig7(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 7: FLO tps, single data-center\n")
	fmt.Fprintf(w, "n\tbatch\ttxsize\tworkers\ttps\n")
	for _, n := range s.Ns {
		for _, batch := range s.Batches {
			for _, size := range s.Sizes {
				for _, workers := range s.Workers {
					res := RunFLO(Options{
						N: n, Workers: workers, Batch: batch, TxSize: size,
						Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
						Warmup: s.Warmup, Duration: s.Duration,
					})
					fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\n", n, batch, size, workers, res.TPS)
				}
			}
		}
	}
}

// Fig8 prints latency CDFs for σ=512 configurations (single data-center).
func Fig8(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 8: latency CDF, sigma=512, single data-center\n")
	for _, n := range s.Ns {
		for _, workers := range s.Workers {
			for _, batch := range s.Batches {
				res := RunFLO(Options{
					N: n, Workers: workers, Batch: batch, TxSize: 512,
					Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
					Warmup: s.Warmup, Duration: s.Duration,
				})
				fmt.Fprintf(w, "## n=%d workers=%d batch=%d (samples=%d)\n", n, workers, batch, res.Latency.Count())
				res.Latency.WriteCDF(w, 10)
			}
		}
	}
}

// Fig9 prints the event-breakdown heat values: average time between the
// five lifecycle events A..E.
func Fig9(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 9: relative execution time between events (sigma=512)\n")
	fmt.Fprintf(w, "n\tworkers\tA->B\tB->C\tC->D\tD->E\n")
	for _, n := range s.Ns {
		for _, workers := range s.Workers {
			res := RunFLO(Options{
				N: n, Workers: workers, Batch: 100, TxSize: 512,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
			})
			fmt.Fprintf(w, "%d\t%d\t%.4f\t%.4f\t%.4f\t%.4f\n", n, workers,
				res.Gaps[0].Seconds(), res.Gaps[1].Seconds(), res.Gaps[2].Seconds(), res.Gaps[3].Seconds())
		}
	}
}

// Fig10 prints the scalability run: a large cluster, σ=512.
func Fig10(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 10: scalability, n=%d, sigma=512\n", s.BigN)
	fmt.Fprintf(w, "n\tbatch\tworkers\ttps\n")
	workers := s.Workers
	if len(workers) > 3 {
		workers = workers[:3] // the paper sweeps 1..5 at n=100
	}
	for _, batch := range s.Batches {
		for _, ww := range workers {
			res := RunFLO(Options{
				N: s.BigN, Workers: ww, Batch: batch, TxSize: 512,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: 2 * s.Warmup, Duration: s.Duration,
			})
			fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\n", s.BigN, batch, ww, res.TPS)
		}
	}
}

// Fig11 prints tps under crash failures of f nodes (§7.4.1).
func Fig11(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 11: tps under crash of f nodes, sigma=512\n")
	fmt.Fprintf(w, "n\tf\tbatch\tworkers\ttps\n")
	for _, n := range s.Ns {
		f := (n - 1) / 3
		for _, batch := range s.Batches {
			for _, workers := range s.Workers {
				res := RunFLO(Options{
					N: n, Workers: workers, Batch: batch, TxSize: 512,
					Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
					Warmup: s.Warmup, Duration: 2 * s.Duration, CrashF: f,
				})
				fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\n", n, f, batch, workers, res.TPS)
			}
		}
	}
}

// Fig12 prints tps and recoveries/sec under Byzantine split-equivocators
// (§7.4.2).
func Fig12(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 12: tps and rps under Byzantine equivocators, sigma=512\n")
	fmt.Fprintf(w, "n\tf\tbatch\tworkers\ttps\trps\n")
	for _, n := range s.Ns {
		f := (n - 1) / 3
		for _, batch := range s.Batches {
			for _, workers := range s.Workers {
				res := RunFLO(Options{
					N: n, Workers: workers, Batch: batch, TxSize: 512,
					Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
					Warmup: s.Warmup, Duration: 2 * s.Duration, ByzantineF: f,
				})
				fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\t%.2f\n", n, f, batch, workers, res.TPS, res.RPS)
			}
		}
	}
}

// Fig13 prints bps in the geo-distributed deployment (§7.5.1).
func Fig13(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 13: FLO bps, multi data-center (geo scale %.2f)\n", s.GeoScale)
	fmt.Fprintf(w, "n\tworkers\tbps\n")
	for _, n := range s.Ns {
		for _, workers := range s.Workers {
			res := RunFLO(Options{
				N: n, Workers: workers, Batch: 1, TxSize: 64,
				Latency: transport.Geo(s.GeoScale), EgressBytesPerSec: s.Bandwidth,
				Warmup: 2 * s.Warmup, Duration: 2 * s.Duration,
				InitialTimer: 100 * time.Millisecond,
			})
			fmt.Fprintf(w, "%d\t%d\t%.0f\n", n, workers, res.BPS)
		}
	}
}

// Fig14 prints tps in the geo-distributed deployment, σ=512.
func Fig14(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 14: FLO tps, multi data-center, sigma=512 (geo scale %.2f)\n", s.GeoScale)
	fmt.Fprintf(w, "n\tbatch\tworkers\ttps\n")
	for _, n := range s.Ns {
		for _, batch := range s.Batches {
			for _, workers := range s.Workers {
				res := RunFLO(Options{
					N: n, Workers: workers, Batch: batch, TxSize: 512,
					Latency: transport.Geo(s.GeoScale), EgressBytesPerSec: s.Bandwidth,
					Warmup: 2 * s.Warmup, Duration: 2 * s.Duration,
					InitialTimer: 100 * time.Millisecond,
				})
				fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\n", n, batch, workers, res.TPS)
			}
		}
	}
}

// Fig15 prints geo latency with the 5% most extreme samples trimmed, as the
// paper does.
func Fig15(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 15: FLO latency, multi data-center, sigma=512, 5%% trimmed\n")
	fmt.Fprintf(w, "n\tworkers\tbatch\ttrimmed-mean-s\tp50-s\tp90-s\n")
	for _, n := range s.Ns {
		for _, workers := range s.Workers {
			for _, batch := range s.Batches {
				res := RunFLO(Options{
					N: n, Workers: workers, Batch: batch, TxSize: 512,
					Latency: transport.Geo(s.GeoScale), EgressBytesPerSec: s.Bandwidth,
					Warmup: 2 * s.Warmup, Duration: 2 * s.Duration,
					InitialTimer: 100 * time.Millisecond,
				})
				fmt.Fprintf(w, "%d\t%d\t%d\t%.4f\t%.4f\t%.4f\n", n, workers, batch,
					res.Latency.TrimmedMean(0.05).Seconds(),
					res.Latency.Percentile(50).Seconds(),
					res.Latency.Percentile(90).Seconds())
			}
		}
	}
}

// Fig16 compares FLO against HotStuff (same harness, same load): tps and
// latency versus n, with the paper's β=1000, ω=8 FLO configuration.
func Fig16(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 16: FLO vs HotStuff, single data-center\n")
	fmt.Fprintf(w, "n\ttxsize\tflo-tps\ths-tps\tflo-lat-s\ths-lat-s\n")
	floWorkers := 8
	floBatch := 1000
	if len(s.Workers) < 4 { // quick profile: scale the config down
		floWorkers = 4
		floBatch = 200
	}
	for _, n := range s.Ns {
		for _, size := range s.Sizes {
			fl := RunFLO(Options{
				N: n, Workers: floWorkers, Batch: floBatch, TxSize: size,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
			})
			hs := RunHotStuff(Options{
				N: n, Batch: floBatch, TxSize: size,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
			})
			fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\t%.4f\t%.4f\n", n, size,
				fl.TPS, hs.TPS,
				fl.Latency.Percentile(50).Seconds(), hs.Latency.Percentile(50).Seconds())
		}
	}
}

// Fig17 compares FLO against the PBFT ordering service (BFT-SMaRt stand-in).
func Fig17(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Fig 17: FLO vs PBFT (BFT-SMaRt stand-in), single data-center\n")
	fmt.Fprintf(w, "n\ttxsize\tflo-tps\tpbft-tps\tflo-lat-s\tpbft-lat-s\n")
	floWorkers := 8
	floBatch := 1000
	if len(s.Workers) < 4 {
		floWorkers = 4
		floBatch = 200
	}
	for _, n := range s.Ns {
		for _, size := range s.Sizes {
			fl := RunFLO(Options{
				N: n, Workers: floWorkers, Batch: floBatch, TxSize: size,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
			})
			pb := RunPBFT(Options{
				N: n, Batch: floBatch, TxSize: size,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
			})
			fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\t%.4f\t%.4f\n", n, size,
				fl.TPS, pb.TPS,
				fl.Latency.Percentile(50).Seconds(), pb.Latency.Percentile(50).Seconds())
		}
	}
}

// Table1 measures the performance-characteristics table: per-mode signature
// operations per block, OBBC fast-path share, and the structural latency in
// rounds (f+1 by construction).
func Table1(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# Table 1: FireLedger per-mode characteristics (n=4, f=1)\n")
	fmt.Fprintf(w, "mode\tsign-ops/block\tmsgs/block/node\tfast-path-frac\trecoveries\tlatency-rounds\n")
	modes := []struct {
		name string
		opts Options
	}{
		{"fault-free", Options{N: 4, Batch: 100, TxSize: 512, Latency: transport.SingleDC(),
			Warmup: s.Warmup, Duration: s.Duration, EgressBytesPerSec: s.Bandwidth}},
		{"crash-f", Options{N: 4, Batch: 100, TxSize: 512, Latency: transport.SingleDC(),
			Warmup: s.Warmup, Duration: 2 * s.Duration, CrashF: 1, EgressBytesPerSec: s.Bandwidth}},
		{"byzantine-f", Options{N: 4, Batch: 100, TxSize: 512, Latency: transport.SingleDC(),
			Warmup: s.Warmup, Duration: 2 * s.Duration, ByzantineF: 1, EgressBytesPerSec: s.Bandwidth}},
	}
	for _, m := range modes {
		res := RunFLO(m.opts)
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%.3f\t%.1f\t%d\n",
			m.name, res.SignOpsPerBlock, res.MsgsPerBlock, res.FastFraction, res.RPS*m.opts.Duration.Seconds(), 2 /* f+2 definite depth */)
	}
}

// WorkersCell is one point of the tps-vs-workers scaling sweep.
type WorkersCell struct {
	Workers    int     `json:"workers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	TPS        float64 `json:"tps"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Blocks     uint64  `json:"blocks"`
}

// WorkersSweep runs the multi-worker scaling experiment behind the "workers"
// entry and BENCH_workers.json: ω ∈ {1,2,4,8} at each GOMAXPROCS in
// {1, NumCPU} (deduplicated), n=4, β=100, σ=512 on the single-data-center
// latency model. The ω sweep is fixed (not Scale.Workers) so the artifact is
// comparable across profiles; Scale still sets the measurement windows. On
// the simulated network the scaling is latency-bound pipelining — ω worker
// instances keep ω blocks in flight over the same links — so the tps ratio
// ω=4/ω=1 is meaningful even on a single-core host.
func WorkersSweep(s Scale) []WorkersCell {
	procs := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		procs = append(procs, n)
	}
	var cells []WorkersCell
	for _, gmp := range procs {
		prev := runtime.GOMAXPROCS(gmp)
		for _, workers := range []int{1, 2, 4, 8} {
			res := RunFLO(Options{
				N: 4, Workers: workers, Batch: 100, TxSize: 512,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
			})
			cells = append(cells, WorkersCell{
				Workers:    workers,
				GoMaxProcs: gmp,
				TPS:        res.TPS,
				P50Ms:      res.Latency.Percentile(50).Seconds() * 1000,
				P99Ms:      res.Latency.Percentile(99).Seconds() * 1000,
				Blocks:     res.DefiniteBlocks,
			})
		}
		runtime.GOMAXPROCS(prev)
	}
	return cells
}

// Workers prints the tps-vs-workers scaling sweep (cmd/flbench -exp workers;
// -out additionally writes the cells as BENCH_workers.json).
func Workers(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# workers: tps vs omega, n=4, batch=100, sigma=512, single data-center\n")
	fmt.Fprintf(w, "gomaxprocs\tworkers\ttps\tp50-ms\tp99-ms\tblocks\n")
	for _, c := range WorkersSweep(s) {
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.2f\t%.2f\t%d\n",
			c.GoMaxProcs, c.Workers, c.TPS, c.P50Ms, c.P99Ms, c.Blocks)
	}
}

// StateCell is one point of the state-backend sweep: sustained write tps
// with the backend applying every definite block, plus the point-get and
// range-scan rates two concurrent readers sustained against the replica.
type StateCell struct {
	Backend     string  `json:"backend"` // none | map | durable
	Workers     int     `json:"workers"`
	TPS         float64 `json:"tps"`
	GetsPerSec  float64 `json:"point_gets_per_sec"`
	ScansPerSec float64 `json:"range_scans_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	Blocks      uint64  `json:"blocks"`
}

// StateSweep runs the queryable-state experiment behind the "state" entry
// and BENCH_state.json: backend ∈ {none, map, durable} at ω ∈ {1, 4}, n=4,
// β=100, σ=512, single data-center — the BENCH_workers.json configuration,
// so the "none" rows are directly comparable to the ω-scaling baseline and
// the map/durable rows expose the apply+read overhead. Backed cells run the
// Set-command load over 5000 keys and two concurrent reader loops.
func StateSweep(s Scale) []StateCell {
	var cells []StateCell
	for _, backend := range []string{"none", "map", "durable"} {
		for _, workers := range []int{1, 4} {
			opts := Options{
				N: 4, Workers: workers, Batch: 100, TxSize: 512,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
			}
			if backend != "none" {
				opts.State = backend
				opts.StateReaders = 2
			}
			res := RunFLO(opts)
			cells = append(cells, StateCell{
				Backend:     backend,
				Workers:     workers,
				TPS:         res.TPS,
				GetsPerSec:  res.GetsPerSec,
				ScansPerSec: res.ScansPerSec,
				P50Ms:       res.Latency.Percentile(50).Seconds() * 1000,
				Blocks:      res.DefiniteBlocks,
			})
		}
	}
	return cells
}

// State prints the state-backend sweep (cmd/flbench -exp state; -out
// additionally writes the cells as BENCH_state.json).
func State(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# state: write tps + read rates vs backend, n=4, batch=100, sigma=512, single data-center\n")
	fmt.Fprintf(w, "backend\tworkers\ttps\tgets/s\tscans/s\tp50-ms\tblocks\n")
	for _, c := range StateSweep(s) {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.2f\t%d\n",
			c.Backend, c.Workers, c.TPS, c.GetsPerSec, c.ScansPerSec, c.P50Ms, c.Blocks)
	}
}

// VerifyCell is one point of the verification-mode sweep: saturated
// throughput at the Fig 7 heavy corner under one of the three verification
// modes, plus the batch path's own activity counters.
type VerifyCell struct {
	Mode    string  `json:"mode"`    // sync | pool-nobatch | pool-batch
	Latency string  `json:"latency"` // single-dc | geo-wan
	TPS     float64 `json:"tps"`
	P50Ms   float64 `json:"p50_ms"`
	Blocks  uint64  `json:"blocks"`
	// Batch-path activity over the measured window (zero in the first two
	// modes): combinations run, signatures they resolved, the achieved
	// average batch size, bisections (0 in fault-free runs), and one-off
	// verifications that bypassed or fell off the batch path.
	Batches     uint64  `json:"batches"`
	BatchedSigs uint64  `json:"batched_sigs"`
	AvgBatch    float64 `json:"avg_batch"`
	Bisections  uint64  `json:"bisections"`
	Singles     uint64  `json:"singles"`
}

// VerifySweep runs the verification-mode experiment behind the "verify"
// entry and BENCH_verify.json's sweep section: sync-inline vs pooled without
// the batch path vs the default batched pool, at BenchmarkVerifyPipeline's
// saturated corner (n=4, ω=4, β=200, σ=512, single data-center), plus the
// sync and batched modes again on the §7.5 geo latency model at 0.1 scale —
// the WAN shape the adaptive pacing was tuned under. The pool-batch
// single-dc row is the acceptance cell: it must beat the recorded
// pre-batching pooled throughput by ≥1.3×.
func VerifySweep(s Scale) []VerifyCell {
	type lat struct {
		name  string
		model transport.LatencyModel
	}
	lats := []lat{
		{"single-dc", transport.SingleDC()},
		{"geo-wan", transport.Geo(0.1)},
	}
	modes := []string{"sync", "pool-nobatch", "pool-batch"}
	var cells []VerifyCell
	for _, l := range lats {
		for _, mode := range modes {
			if l.name == "geo-wan" && mode == "pool-nobatch" {
				continue // the middle ablation only matters at the saturated corner
			}
			opts := Options{
				N: 4, Workers: 4, Batch: 200, TxSize: 512,
				Latency: l.model, EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
				SyncVerify:         mode == "sync",
				DisableBatchVerify: mode == "pool-nobatch",
			}
			res := RunFLO(opts)
			cell := VerifyCell{
				Mode:        mode,
				Latency:     l.name,
				TPS:         res.TPS,
				P50Ms:       res.Latency.Percentile(50).Seconds() * 1000,
				Blocks:      res.DefiniteBlocks,
				Batches:     res.VerifyBatches,
				BatchedSigs: res.VerifyBatchedSigs,
				Bisections:  res.VerifyBisections,
				Singles:     res.VerifySingles,
			}
			if cell.Batches > 0 {
				cell.AvgBatch = float64(cell.BatchedSigs) / float64(cell.Batches)
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// Verify prints the verification-mode sweep (cmd/flbench -exp verify; -out
// additionally writes the cells for BENCH_verify.json).
func Verify(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# verify: tps vs verification mode, n=4, workers=4, batch=200, sigma=512\n")
	fmt.Fprintf(w, "latency\tmode\ttps\tp50-ms\tblocks\tbatches\tavg-batch\tbisections\tsingles\n")
	for _, c := range VerifySweep(s) {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.2f\t%d\t%d\t%.1f\t%d\t%d\n",
			c.Latency, c.Mode, c.TPS, c.P50Ms, c.Blocks, c.Batches, c.AvgBatch, c.Bisections, c.Singles)
	}
}

// Experiments maps experiment names to their runners, for cmd/flbench.
var Experiments = map[string]func(io.Writer, Scale){
	"workers": Workers,
	"state":   State,
	"fanout":  Fanout,
	"verify":  Verify,
	"table1":  Table1,
	"fig5":    Fig5,
	"fig6":    Fig6,
	"fig7":    Fig7,
	"fig8":    Fig8,
	"fig9":    Fig9,
	"fig10":   Fig10,
	"fig11":   Fig11,
	"fig12":   Fig12,
	"fig13":   Fig13,
	"fig14":   Fig14,
	"fig15":   Fig15,
	"fig16":   Fig16,
	"fig17":   Fig17,
}

// ExperimentOrder lists experiments in paper order for `-exp all`.
var ExperimentOrder = []string{
	"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
	"workers", "state", "fanout", "verify",
}

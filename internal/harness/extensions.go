package harness

import (
	"fmt"
	"io"

	"repro/internal/transport"
)

// The ext-* experiments measure this reproduction's extensions beyond the
// paper's figures: the §7.2.2 gossip remark, the Conclusions' compression
// recommendation, and §1's conviction-and-removal claim. flbench runs them
// after the paper's own experiments under `-exp all`.

// ExtGossip contrasts clique and gossip body dissemination.
func ExtGossip(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# ext-gossip: clique vs push-gossip body dissemination (sigma=512, beta=100)\n")
	fmt.Fprintf(w, "n\toverlay\tbps\tbytes/block/node\tmsgs/block/node\n")
	for _, n := range s.Ns {
		for _, mode := range []struct {
			name   string
			gossip bool
		}{{"clique", false}, {"gossip3", true}} {
			res := RunFLO(Options{
				N: n, Workers: 1, Batch: 100, TxSize: 512,
				Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
				Warmup: s.Warmup, Duration: s.Duration,
				GossipBodies: mode.gossip, GossipFanout: 3,
			})
			fmt.Fprintf(w, "%d\t%s\t%.0f\t%.0f\t%.1f\n",
				n, mode.name, res.BPS, res.BytesPerBlock, res.MsgsPerBlock)
		}
	}
}

// ExtCompression measures body compression on compressible payloads.
func ExtCompression(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# ext-compression: DEFLATE body frames, compressible 4 KiB transactions (n=4, beta=100)\n")
	fmt.Fprintf(w, "mode\ttps\tbytes/block/node\n")
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"plain", false}, {"compressed", true}} {
		res := RunFLO(Options{
			N: 4, Workers: 1, Batch: 100, TxSize: 4096,
			Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
			Warmup: s.Warmup, Duration: s.Duration,
			CompressibleLoad: true, CompressBodies: mode.compress,
		})
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\n", mode.name, res.TPS, res.BytesPerBlock)
	}
}

// ExtAccountability measures conviction + proposer exclusion under the
// §7.4.2 equivocator.
func ExtAccountability(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# ext-accountability: equivocator with and without on-chain conviction + exclusion (n=4, f=1)\n")
	fmt.Fprintf(w, "mode\ttps\trecoveries/s\tconvictions\n")
	for _, mode := range []struct {
		name    string
		exclude bool
	}{{"exclusion-off", false}, {"exclusion-on", true}} {
		res := RunFLO(Options{
			N: 4, Workers: 1, Batch: 100, TxSize: 512,
			Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
			// Warmup long enough for the conviction to land before the
			// measured window opens.
			Warmup: 2 * s.Warmup, Duration: 2 * s.Duration,
			ByzantineF: 1, ExcludeConvicted: mode.exclude,
		})
		fmt.Fprintf(w, "%s\t%.0f\t%.2f\t%d\n", mode.name, res.TPS, res.RPS, res.Convictions)
	}
}

func init() {
	Experiments["ext-gossip"] = ExtGossip
	Experiments["ext-compression"] = ExtCompression
	Experiments["ext-accountability"] = ExtAccountability
	ExperimentOrder = append(ExperimentOrder, "ext-gossip", "ext-compression", "ext-accountability")
}

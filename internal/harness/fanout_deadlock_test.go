package harness

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// More subscribers than the 64-wide dial semaphore: attach must still
// complete (the slot is released after subscribe, not at consumer exit —
// holding it through the consume loop deadlocked any population > 64).
func TestRunFLOFanoutBeyondDialWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("fan-out rig run")
	}
	res := RunFLO(Options{
		N: 4, Workers: 1, Batch: 50, TxSize: 64,
		Latency: transport.SingleDC(),
		Warmup:  200 * time.Millisecond, Duration: 600 * time.Millisecond,
		Subscribers: 200,
	})
	if res.FanDelivered == 0 || res.FanFramesShared == 0 {
		t.Fatalf("fan-out rig saw no traffic: %+v", res)
	}
}

// Package harness runs measured cluster experiments: it assembles in-process
// clusters of FLO nodes (or HotStuff / PBFT baseline replicas) over the
// simulated network, injects the paper's §7.4 failure scenarios, and reports
// the metrics the evaluation figures plot. It is the engine behind both the
// testing.B benchmarks at the repository root and the cmd/flbench experiment
// runner.
package harness

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flcrypto"
	"repro/internal/flo"
	"repro/internal/metrics"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

// Options parameterizes one cluster run. Field names follow Table 2.
type Options struct {
	// N is the cluster size (Table 2: 4, 7, 10; Fig 10: 100).
	N int
	// Workers is ω.
	Workers int
	// Batch is β (transactions per block).
	Batch int
	// TxSize is σ in bytes.
	TxSize int
	// Latency is the network model (SingleDC, Geo); nil = zero latency.
	Latency transport.LatencyModel
	// EgressBytesPerSec models NIC bandwidth (0 = unlimited).
	EgressBytesPerSec float64
	// Warmup runs before measurement starts; Duration is the measured
	// window.
	Warmup   time.Duration
	Duration time.Duration
	// CrashF crashes nodes n−1, n−2, ... (CrashF of them) after warmup —
	// the §7.4.1 scenario.
	CrashF int
	// ByzantineF turns the last ByzantineF nodes into §7.4.2 split
	// equivocators from the start.
	ByzantineF int
	// EpochLen passes through to core (proposer reshuffling).
	EpochLen uint64
	// InitialTimer seeds the WRB adaptive timer (default 25ms).
	InitialTimer time.Duration
	// MaxPending bounds outstanding undecided blocks (flow control).
	MaxPending int
	// DisablePiggyback ablates the §5.1 piggyback optimization.
	DisablePiggyback bool
	// FDThreshold overrides the benign failure detector's strike threshold
	// (0 = default; a huge value effectively disables the FD).
	FDThreshold int
	// GossipBodies switches body dissemination from the clique overlay to
	// push-gossip with GossipFanout (§7.2.2's alternative).
	GossipBodies bool
	GossipFanout int
	// CompressBodies DEFLATE-frames body payloads (paper Conclusions).
	CompressBodies bool
	// CompressibleLoad makes the saturating workload's payloads
	// compressible text instead of random bytes, modeling real ledger
	// entries (only meaningful with CompressBodies).
	CompressibleLoad bool
	// ExcludeConvicted activates the accountability path: equivocators are
	// convicted on-chain and leave the proposer rotation.
	ExcludeConvicted bool
	// SyncVerify disables the asynchronous verification pipeline (worker
	// pool + verify cache) — the ablation knob for the verification
	// benchmarks. Default false: the pipeline is on, as in deployment.
	SyncVerify bool
	// DisableBatchVerify keeps the verify pool but turns off its
	// multi-scalar batch path, so every async miss runs a one-off
	// ed25519.Verify — the middle ablation between SyncVerify and the
	// default batched pipeline (the "verify" experiment's three modes).
	DisableBatchVerify bool
	// State attaches a managed state backend to every node: "" (none),
	// "map", or "durable" (on a temp dir, removed after the run). With a
	// backend the saturating load emits Set commands over StateKeys keys
	// (default 5000) instead of random bytes, so the backend sees real
	// writes of the same σ.
	State     string
	StateKeys int
	// StateReaders runs that many concurrent read loops against node 0's
	// replica during the measured window. Each loop is paced (one 15-get +
	// 1-scan cycle per millisecond) so reads ride alongside the write load
	// instead of starving consensus of CPU; Result.GetsPerSec / ScansPerSec
	// report the sustained rates.
	StateReaders int
	// Subscribers attaches a client API server to node 0 and that many
	// streaming block subscriptions over in-memory pipes (Server.ServeConn +
	// Attach, so the file-descriptor limit never bounds the count). Every
	// subscriber starts at genesis — replaying through the fan-out hub's
	// shared cohorts, then riding its live tier — and the Fan* Result fields
	// report the hub counters and delivery lag over the measured window.
	Subscribers int
	// SubscriberFilter gives every subscriber a distinct one-byte tx-prefix
	// filter (subscriber i filters on byte i%256), exercising the wire-1.3
	// server-side filter path under fan-out load.
	SubscriberFilter bool
	// SubscriberStall adds one deliberately stalled subscriber (it
	// subscribes, then never drains) on top of Subscribers. The hub must
	// park and demote it to a replay cohort without raising the healthy
	// subscribers' delivery lag.
	SubscriberStall bool
}

func (o *Options) fill() {
	if o.N == 0 {
		o.N = 4
	}
	if o.StateKeys == 0 {
		o.StateKeys = 5000
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Batch == 0 {
		o.Batch = 100
	}
	if o.TxSize == 0 {
		o.TxSize = 512
	}
	if o.Warmup == 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.Duration == 0 {
		o.Duration = time.Second
	}
	if o.InitialTimer == 0 {
		o.InitialTimer = 25 * time.Millisecond
	}
}

// Result carries the measurements a figure plots.
type Result struct {
	// TPS is definite transactions per second, averaged over the correct
	// nodes (the paper's main throughput metric).
	TPS float64
	// BPS is definite blocks per second (Fig 6, 13).
	BPS float64
	// RPS is recoveries per second across the cluster (Fig 12's bars).
	RPS float64
	// Latency is the block-birth→merged-delivery distribution (Fig 8, 15).
	Latency *metrics.Histogram
	// Gaps are the Fig 9 event-to-event averages (A→B, B→C, C→D, D→E).
	Gaps [metrics.EventCount - 1]time.Duration
	// FastFraction is the share of OBBC decisions taken on the fast path.
	FastFraction float64
	// SignOpsPerBlock is the average number of signature creations per
	// definite block at one correct node (Table 1 accounting).
	SignOpsPerBlock float64
	// DefiniteBlocks is the total number of definite blocks measured.
	DefiniteBlocks uint64
	// MsgsPerBlock is the average number of transport messages sent per
	// definite block per node — Table 1's communication-steps accounting
	// (the fault-free optimum is ~n: one vote per node plus the proposer's
	// header and body sends, amortized).
	MsgsPerBlock float64
	// BytesPerBlock is the average egress bytes per definite block per node
	// (the compression ablation's metric).
	BytesPerBlock float64
	// Convictions is the total number of proposer exclusions registered
	// across correct nodes by the end of the run (convictions usually land
	// during warmup, so this is cumulative, not a window delta).
	Convictions uint64
	// EncPoolGets / EncPoolReuses are the encoder scratch-pool activity
	// during the measured window (process-wide deltas of types.PoolStats):
	// how many hot-path encodings ran through the pool and how many of
	// those were served by a recycled buffer instead of an allocation.
	EncPoolGets   uint64
	EncPoolReuses uint64
	// GetsPerSec / ScansPerSec are the state-read rates the StateReaders
	// loops sustained against node 0 during the measured window (0 when no
	// backend or no readers were configured).
	GetsPerSec  float64
	ScansPerSec float64
	// Snapshot-transfer totals, cluster-wide and cumulative over the whole
	// run (rescues are rare whole-run events, not windowed rates): chunks
	// served by donors, chunks and bytes fetched by restoring nodes, resumed
	// transfers, snapshots rejected by verification, and completed installs.
	// A campaign that strands a node asserts SnapInstalls > 0 — the rescue
	// actually ran over the transfer protocol instead of silently
	// range-syncing.
	SnapChunksServed  uint64
	SnapChunksFetched uint64
	SnapBytesFetched  uint64
	SnapResumes       uint64
	SnapRejected      uint64
	SnapInstalls      uint64
	// Fan-out subsystem measurements (Options.Subscribers > 0): node 0's
	// client-API hub counters, cumulative from subscriber attach to window
	// close (a short window can catch the hub fully backpressured and read
	// zero, so these are lifetime totals, not window deltas). The
	// encode-once contract shows up as FanFramesEncoded staying near the
	// number of delivered blocks while FanFramesShared scales with
	// subscribers; FanBytesSent / FanBytesEncoded is the sharing ratio.
	FanFramesEncoded       uint64
	FanFramesShared        uint64
	FanBytesEncoded        uint64
	FanBytesSent           uint64
	FanBlocksFiltered      uint64
	FanCohortReplays       uint64
	FanDemotions           uint64
	FanPromotions          uint64
	FanOverflowDisconnects uint64
	// FanDelivered counts node 0's delivered blocks since attach (the
	// denominator for encodes-per-block); FanDeliveriesPerSec is the total
	// in-window BLOCK-event rate the subscribers absorbed; FanLag is the
	// delivery→receive lag distribution over sampled subscribers.
	FanDelivered        uint64
	FanDeliveriesPerSec float64
	FanLag              *metrics.Histogram
	// Verify-pool batch-path activity, summed over the correct nodes during
	// the measured window (deltas of flcrypto.PoolBatchStats): multi-scalar
	// combinations run, the signatures those combinations resolved
	// (BatchedSigs/Batches is the achieved average batch size), failed
	// combinations that bisected to isolate a forgery, and async misses
	// resolved by one-off verification. All zero under SyncVerify (no pool)
	// or DisableBatchVerify (pool without the batch path).
	VerifyBatches     uint64
	VerifyBatchedSigs uint64
	VerifyBisections  uint64
	VerifySingles     uint64
}

// RunFLO executes one FLO cluster experiment.
func RunFLO(opts Options) Result {
	opts.fill()
	ks := flcrypto.MustGenerateKeySet(opts.N, flcrypto.Ed25519)
	net := transport.NewChanNetwork(transport.ChanConfig{
		N:                 opts.N,
		Latency:           opts.Latency,
		EgressBytesPerSec: opts.EgressBytesPerSec,
	})
	defer net.Close()

	timeline := metrics.NewTimeline()
	latency := metrics.NewHistogram(0)
	var measuring atomic.Bool

	// Managed state backends (Options.State), torn down after the nodes.
	var stateClosers []func()
	defer func() {
		for _, f := range stateClosers {
			f()
		}
	}()
	openState := func(i int) statemachine.StateBackend {
		switch opts.State {
		case "", "none":
			return nil
		case "map":
			return statemachine.NewKV()
		case "durable":
			dir, err := os.MkdirTemp("", "flbench-state")
			if err != nil {
				panic(err)
			}
			d, err := statemachine.OpenDurable(dir)
			if err != nil {
				panic(err)
			}
			stateClosers = append(stateClosers, func() {
				d.Close()
				os.RemoveAll(dir)
			})
			return d
		default:
			panic(fmt.Sprintf("harness: unknown state backend %q", opts.State))
		}
	}

	nodes := make([]*flo.Node, opts.N)
	correct := make([]int, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		byz := i >= opts.N-opts.ByzantineF
		if !byz {
			correct = append(correct, i)
		}
		cfg := flo.Config{
			Endpoint:           net.Endpoint(flcrypto.NodeID(i)),
			Registry:           ks.Registry,
			Priv:               ks.Privs[i],
			Workers:            opts.Workers,
			BatchSize:          opts.Batch,
			Saturate:           opts.TxSize,
			Equivocate:         byz,
			EpochLen:           opts.EpochLen,
			InitialTimer:       opts.InitialTimer,
			MaxPending:         opts.MaxPending,
			DisablePiggyback:   opts.DisablePiggyback,
			FDThreshold:        opts.FDThreshold,
			GossipBodies:       opts.GossipBodies,
			GossipFanout:       opts.GossipFanout,
			CompressBodies:     opts.CompressBodies,
			CompressibleLoad:   opts.CompressibleLoad,
			ExcludeConvicted:   opts.ExcludeConvicted,
			SyncVerify:         opts.SyncVerify,
			DisableBatchVerify: opts.DisableBatchVerify,
			State:              openState(i),
		}
		if cfg.State != nil {
			cfg.KVLoad = opts.StateKeys
		}
		if i == 0 && !byz {
			// Node 0 instruments the timeline and the latency histogram.
			cfg.OnEvent = func(w uint32, round uint64, ev core.Event) {
				timeline.Record(w, round, int(ev))
			}
			cfg.Deliver = func(w uint32, blk types.Block) {
				timeline.Record(w, blk.Signed.Header.Round, 4)
				if !measuring.Load() {
					return
				}
				if birth, ok := timeline.Birth(w, blk.Signed.Header.Round); ok {
					latency.Observe(time.Since(birth))
				}
			}
		} else {
			cfg.OnEvent = func(w uint32, round uint64, ev core.Event) {
				if ev == core.EventBlockProposed {
					timeline.Record(w, round, 0)
				}
			}
		}
		node, err := flo.NewNode(cfg)
		if err != nil {
			panic(err)
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	// State-read load against node 0's replica: each reader alternates 15
	// point gets with one range scan; ops count only inside the window.
	var gets, scans atomic.Uint64
	readersDone := make(chan struct{})
	var readersWG sync.WaitGroup
	if opts.StateReaders > 0 && opts.State != "" && opts.State != "none" {
		for rd := 0; rd < opts.StateReaders; rd++ {
			readersWG.Add(1)
			go func(seed int64) {
				defer readersWG.Done()
				rng := rand.New(rand.NewSource(seed))
				rep := nodes[0].State()
				ticker := time.NewTicker(time.Millisecond)
				defer ticker.Stop()
				for {
					select {
					case <-readersDone:
						return
					case <-ticker.C:
					}
					for i := 0; i < 15; i++ {
						rep.Get(fmt.Sprintf("bench/%08d", rng.Intn(opts.StateKeys)))
						if measuring.Load() {
							gets.Add(1)
						}
					}
					begin := fmt.Sprintf("bench/%08d", rng.Intn(opts.StateKeys))
					rep.Scan(begin, "", 100)
					if measuring.Load() {
						scans.Add(1)
					}
				}
			}(int64(rd) * 7919)
		}
	}
	defer func() {
		close(readersDone)
		readersWG.Wait()
	}()

	// Fan-out load against node 0's client API (Options.Subscribers).
	var rig *fanoutRig
	if opts.Subscribers > 0 {
		rig = attachFanout(nodes[0], opts, &measuring)
		defer rig.stop()
	}

	time.Sleep(opts.Warmup)

	// §7.4.1: crash after warmup, measure after the crash.
	for k := 0; k < opts.CrashF; k++ {
		net.Crash(flcrypto.NodeID(opts.N - 1 - k))
		if len(correct) > 0 && correct[len(correct)-1] == opts.N-1-k {
			correct = correct[:len(correct)-1]
		}
	}

	// Open the measurement window.
	measuring.Store(true)
	bases := make([]snap, opts.N)
	msgBases := make([]uint64, opts.N)
	byteBases := make([]uint64, opts.N)
	verifyBases := make([]flcrypto.PoolBatchStats, opts.N)
	for _, i := range correct {
		bases[i] = snapshot(nodes[i], opts.Workers)
		msgBases[i] = net.MessagesSent(flcrypto.NodeID(i))
		byteBases[i] = net.BytesSent(flcrypto.NodeID(i))
		verifyBases[i] = nodes[i].VerifyPool().BatchStats()
	}
	poolGets0, poolReuses0 := types.PoolStats()
	start := time.Now()
	time.Sleep(opts.Duration)
	elapsed := time.Since(start).Seconds()
	measuring.Store(false)
	poolGets1, poolReuses1 := types.PoolStats()

	var res Result
	res.Latency = latency
	if rig != nil {
		rig.collect(&res, elapsed)
	}
	res.EncPoolGets = poolGets1 - poolGets0
	res.EncPoolReuses = poolReuses1 - poolReuses0
	if elapsed > 0 {
		res.GetsPerSec = float64(gets.Load()) / elapsed
		res.ScansPerSec = float64(scans.Load()) / elapsed
	}
	var txs, blocks, recoveries, sign, fast, fallback, msgs, bytes float64
	for _, i := range correct {
		now := snapshot(nodes[i], opts.Workers)
		b := bases[i]
		txs += float64(now.txs - b.txs)
		blocks += float64(now.blocks - b.blocks)
		recoveries += float64(now.recoveries - b.recoveries)
		sign += float64(now.sign - b.sign)
		fast += float64(now.fast - b.fast)
		fallback += float64(now.fallback - b.fallback)
		msgs += float64(net.MessagesSent(flcrypto.NodeID(i)) - msgBases[i])
		bytes += float64(net.BytesSent(flcrypto.NodeID(i)) - byteBases[i])
		vs := nodes[i].VerifyPool().BatchStats()
		res.VerifyBatches += vs.Batches - verifyBases[i].Batches
		res.VerifyBatchedSigs += vs.BatchedSigs - verifyBases[i].BatchedSigs
		res.VerifyBisections += vs.Bisections - verifyBases[i].Bisections
		res.VerifySingles += vs.Singles - verifyBases[i].Singles
		res.Convictions += now.convictions
		for w := 0; w < opts.Workers; w++ {
			m := nodes[i].Worker(w).Metrics()
			res.SnapChunksServed += m.SnapChunksServed.Load()
			res.SnapChunksFetched += m.SnapChunksFetched.Load()
			res.SnapBytesFetched += m.SnapBytesFetched.Load()
			res.SnapResumes += m.SnapResumes.Load()
			res.SnapRejected += m.SnapRejected.Load()
			res.SnapInstalls += m.SnapInstalls.Load()
		}
	}
	nc := float64(len(correct))
	if nc > 0 && elapsed > 0 {
		// Average per-node definite throughput, like the paper ("results
		// were collected from all nodes and we took the average").
		res.TPS = txs / nc / elapsed
		res.BPS = blocks / nc / elapsed
		res.RPS = recoveries / nc / elapsed
		res.SignOpsPerBlock = safeDiv(sign/nc, blocks/nc)
		res.MsgsPerBlock = safeDiv(msgs/nc, blocks/nc)
		res.BytesPerBlock = safeDiv(bytes/nc, blocks/nc)
		res.DefiniteBlocks = uint64(blocks / nc)
	}
	if fast+fallback > 0 {
		res.FastFraction = fast / (fast + fallback)
	}
	res.Gaps, _ = timeline.Gaps()
	return res
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

type snap struct{ txs, blocks, recoveries, sign, fast, fallback, convictions uint64 }

func snapshot(node *flo.Node, workers int) snap {
	var s snap
	for w := 0; w < workers; w++ {
		m := node.Worker(w).Metrics()
		s.txs += m.DefiniteTxs.Load()
		s.blocks += m.DefiniteBlocks.Load()
		s.recoveries += m.Recoveries.Load()
		s.sign += m.SignOps.Load()
		s.convictions += m.Convictions.Load()
	}
	s.sign += node.Replica().Metrics().SignOps.Load()
	// OBBC fast/fallback counters are inside each worker's service; they
	// are reachable through the node's internals only via metrics on the
	// obbc services, which flo exposes per worker.
	for w := 0; w < workers; w++ {
		om := node.OBBCMetrics(w)
		s.fast += om.FastDecisions.Load()
		s.fallback += om.FallbackDecisions.Load()
	}
	return s
}

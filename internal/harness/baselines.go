package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/hotstuff"
	"repro/internal/metrics"
	"repro/internal/pbft"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/workload"
)

const (
	protoHotStuff transport.ProtoID = 40
	protoPBFT     transport.ProtoID = 41
)

// RunHotStuff measures a chained-HotStuff cluster under the same load model
// and network as RunFLO — the Fig 16 baseline.
func RunHotStuff(opts Options) Result {
	opts.fill()
	ks := flcrypto.MustGenerateKeySet(opts.N, flcrypto.Ed25519)
	net := transport.NewChanNetwork(transport.ChanConfig{
		N:                 opts.N,
		Latency:           opts.Latency,
		EgressBytesPerSec: opts.EgressBytesPerSec,
	})
	defer net.Close()

	latency := metrics.NewHistogram(0)
	var measuring atomic.Bool
	var proposedAt sync.Map // hash -> time.Time (node 0's own proposals)

	replicas := make([]*hotstuff.Replica, opts.N)
	muxes := make([]*transport.Mux, opts.N)
	for i := 0; i < opts.N; i++ {
		mux := transport.NewMux(net.Endpoint(flcrypto.NodeID(i)))
		muxes[i] = mux
		cfg := hotstuff.Config{
			Mux:       mux,
			Proto:     protoHotStuff,
			Registry:  ks.Registry,
			Priv:      ks.Privs[i],
			Pool:      workload.NewSaturatingSource(opts.TxSize, uint64(i), int64(i+1)),
			BatchSize: opts.Batch,
		}
		if i == 0 {
			cfg.OnPropose = func(hash flcrypto.Hash) { proposedAt.Store(hash, time.Now()) }
			cfg.Deliver = func(blk *hotstuff.Block) {
				if !measuring.Load() {
					return
				}
				if t0, ok := proposedAt.Load(blk.Hash()); ok {
					latency.Observe(time.Since(t0.(time.Time)))
				}
			}
		}
		replicas[i] = hotstuff.NewReplica(cfg)
	}
	for i := range replicas {
		muxes[i].Start()
		replicas[i].Start()
	}
	defer func() {
		for i := range replicas {
			replicas[i].Stop()
			muxes[i].Stop()
		}
	}()

	time.Sleep(opts.Warmup)
	measuring.Store(true)
	m0 := replicas[0].Metrics()
	baseTxs, baseBlocks := m0.CommittedTxs.Load(), m0.Committed.Load()
	start := time.Now()
	time.Sleep(opts.Duration)
	elapsed := time.Since(start).Seconds()
	measuring.Store(false)

	var res Result
	res.Latency = latency
	if elapsed > 0 {
		res.TPS = float64(m0.CommittedTxs.Load()-baseTxs) / elapsed
		res.BPS = float64(m0.Committed.Load()-baseBlocks) / elapsed
		res.DefiniteBlocks = m0.Committed.Load() - baseBlocks
		res.SignOpsPerBlock = safeDiv(float64(m0.SignOps.Load()), float64(m0.Committed.Load()))
	}
	return res
}

// RunPBFT measures the PBFT ordering service under client load — the
// BFT-SMaRt stand-in of Fig 17. A driver submits σ-byte transactions,
// keeping a bounded number outstanding (a closed-loop client population).
func RunPBFT(opts Options) Result {
	opts.fill()
	ks := flcrypto.MustGenerateKeySet(opts.N, flcrypto.Ed25519)
	net := transport.NewChanNetwork(transport.ChanConfig{
		N:                 opts.N,
		Latency:           opts.Latency,
		EgressBytesPerSec: opts.EgressBytesPerSec,
	})
	defer net.Close()

	latency := metrics.NewHistogram(0)
	var measuring atomic.Bool
	var submittedAt sync.Map // digest -> time
	var delivered atomic.Uint64

	replicas := make([]*pbft.Replica, opts.N)
	muxes := make([]*transport.Mux, opts.N)
	for i := 0; i < opts.N; i++ {
		mux := transport.NewMux(net.Endpoint(flcrypto.NodeID(i)))
		muxes[i] = mux
		cfg := pbft.Config{
			Mux:       mux,
			Proto:     protoPBFT,
			Registry:  ks.Registry,
			Priv:      ks.Privs[i],
			BatchSize: opts.Batch,
		}
		if i == 0 {
			cfg.Deliver = func(seq uint64, batch [][]byte) {
				delivered.Add(uint64(len(batch)))
				if !measuring.Load() {
					return
				}
				for _, req := range batch {
					if t0, ok := submittedAt.Load(flcrypto.Sum256(req)); ok {
						latency.Observe(time.Since(t0.(time.Time)))
					}
				}
			}
		}
		replicas[i] = pbft.NewReplica(cfg)
	}
	for i := range replicas {
		muxes[i].Start()
		replicas[i].Start()
	}
	defer func() {
		for i := range replicas {
			replicas[i].Stop()
			muxes[i].Stop()
		}
	}()

	// Closed-loop driver: keep a few batches outstanding at node 0.
	// Transactions are packed several to a request, as BFT-SMaRt's real
	// clients do — per-transaction requests would measure the envelope
	// signature cost, not the ordering protocol.
	pack := opts.Batch / 8
	if pack < 1 {
		pack = 1
	}
	stopDriver := make(chan struct{})
	var driverWG sync.WaitGroup
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		gen := workload.NewGenerator(opts.TxSize, 9000, 42)
		var sent uint64
		for {
			select {
			case <-stopDriver:
				return
			default:
			}
			if sent > delivered.Load()+uint64(4*opts.Batch/pack) {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			e := types.NewEncoder(pack * (opts.TxSize + 24))
			for k := 0; k < pack; k++ {
				tx := gen.Next()
				tx.Encode(e)
			}
			req := e.Bytes()
			if measuring.Load() {
				submittedAt.Store(flcrypto.Sum256(req), time.Now())
			}
			if err := replicas[0].Submit(req); err != nil {
				return
			}
			sent++
		}
	}()
	defer func() {
		close(stopDriver)
		driverWG.Wait()
	}()

	time.Sleep(opts.Warmup)
	measuring.Store(true)
	m0 := replicas[0].Metrics()
	baseTxs, baseBlocks := m0.RequestsDelivered.Load(), m0.BatchesDelivered.Load()
	start := time.Now()
	time.Sleep(opts.Duration)
	elapsed := time.Since(start).Seconds()
	measuring.Store(false)

	var res Result
	res.Latency = latency
	if elapsed > 0 {
		res.TPS = float64(m0.RequestsDelivered.Load()-baseTxs) / elapsed * float64(pack)
		res.BPS = float64(m0.BatchesDelivered.Load()-baseBlocks) / elapsed
		res.DefiniteBlocks = m0.BatchesDelivered.Load() - baseBlocks
		res.SignOpsPerBlock = safeDiv(float64(m0.SignOps.Load()), float64(m0.BatchesDelivered.Load()))
	}
	return res
}

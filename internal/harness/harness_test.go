package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
)

func shortOpts() Options {
	return Options{
		N: 4, Workers: 1, Batch: 10, TxSize: 64,
		Warmup: 200 * time.Millisecond, Duration: 400 * time.Millisecond,
		// Generous timer: under `go test -race` everything runs ~10x
		// slower and a tight timer causes legitimate fallbacks.
		InitialTimer: 250 * time.Millisecond,
	}
}

func TestRunFLOProducesThroughput(t *testing.T) {
	res := RunFLO(shortOpts())
	if res.TPS <= 0 {
		t.Fatalf("TPS = %v, want > 0", res.TPS)
	}
	if res.BPS <= 0 {
		t.Fatalf("BPS = %v, want > 0", res.BPS)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	// Under instrumented builds occasional timer expiries cause legitimate
	// fallbacks; the fast path must still dominate.
	if res.FastFraction < 0.5 {
		t.Fatalf("fault-free fast-path fraction = %v, want mostly fast", res.FastFraction)
	}
	// FireLedger's headline property: roughly one signature per block at
	// the proposer, amortized < ~2 per block per node in the happy path.
	if res.SignOpsPerBlock > 3 {
		t.Fatalf("sign ops per block = %v, want small", res.SignOpsPerBlock)
	}
}

func TestRunFLOLatencyModelSlowsItDown(t *testing.T) {
	// Two sub-second measured windows on a shared CPU are noisy; accept the
	// first of three attempts in which the ordering shows. A systematic
	// inversion would fail all three.
	var fastBPS, slowBPS float64
	for attempt := 0; attempt < 3; attempt++ {
		fast := RunFLO(shortOpts())
		slow := shortOpts()
		slow.Latency = transport.Uniform(5*time.Millisecond, time.Millisecond)
		slow.InitialTimer = 50 * time.Millisecond
		slowRes := RunFLO(slow)
		fastBPS, slowBPS = fast.BPS, slowRes.BPS
		if slowBPS < fastBPS {
			return
		}
	}
	t.Fatalf("latency model had no effect: %v bps (5ms links) vs %v bps (zero latency)", slowBPS, fastBPS)
}

func TestRunFLOFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	opts := shortOpts()
	opts.Duration = 800 * time.Millisecond
	opts.Subscribers = 50
	opts.SubscriberStall = true
	res := RunFLO(opts)
	if res.FanDelivered == 0 {
		t.Fatal("no deliveries landed inside the measured window")
	}
	if res.FanFramesShared == 0 || res.FanDeliveriesPerSec <= 0 {
		t.Fatalf("subscribers absorbed nothing: shared=%d deliv/s=%.0f", res.FanFramesShared, res.FanDeliveriesPerSec)
	}
	// Encode-once: the hub must not encode per subscriber. Cohort sweeps may
	// re-encode blocks the ring dropped, so allow a small multiple.
	if res.FanFramesEncoded > 8*res.FanDelivered {
		t.Fatalf("FramesEncoded = %d for %d delivered blocks: encoding scales with subscribers",
			res.FanFramesEncoded, res.FanDelivered)
	}
	if res.FanLag.Count() == 0 {
		t.Fatal("no delivery-lag samples")
	}
	if res.FanOverflowDisconnects != 0 {
		t.Fatalf("a subscriber hit the control-overflow kill switch (%d)", res.FanOverflowDisconnects)
	}
}

func TestRunFLOWithCrash(t *testing.T) {
	opts := shortOpts()
	opts.CrashF = 1
	opts.Duration = 2 * time.Second
	res := RunFLO(opts)
	if res.TPS <= 0 {
		t.Fatalf("no throughput under crash-f: %v", res.TPS)
	}
}

func TestRunFLOWithByzantine(t *testing.T) {
	opts := shortOpts()
	opts.ByzantineF = 1
	opts.InitialTimer = 100 * time.Millisecond
	opts.Warmup = time.Second
	opts.Duration = 6 * time.Second
	res := RunFLO(opts)
	if res.TPS <= 0 {
		t.Fatalf("no throughput under byzantine-f: %v", res.TPS)
	}
}

func TestRunHotStuff(t *testing.T) {
	res := RunHotStuff(shortOpts())
	if res.TPS <= 0 {
		t.Fatalf("HotStuff TPS = %v", res.TPS)
	}
}

func TestRunPBFT(t *testing.T) {
	res := RunPBFT(shortOpts())
	if res.TPS <= 0 {
		t.Fatalf("PBFT TPS = %v", res.TPS)
	}
}

func TestSignatureRateScalesWithSize(t *testing.T) {
	small := SignatureRate(flcrypto.Ed25519, 1, 10, 64, 100*time.Millisecond)
	big := SignatureRate(flcrypto.Ed25519, 1, 1000, 4096, 100*time.Millisecond)
	if small <= 0 || big <= 0 {
		t.Fatalf("rates: %v, %v", small, big)
	}
	// Fig 5's shape: hashing β·σ bytes dominates, so large blocks sign
	// far slower.
	if big >= small {
		t.Fatalf("sps did not fall with block size: small=%v big=%v", small, big)
	}
}

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	var sb strings.Builder
	s := Quick
	s.Duration = 500 * time.Millisecond
	s.Warmup = 200 * time.Millisecond
	Table1(&sb, s)
	out := sb.String()
	for _, mode := range []string{"fault-free", "crash-f", "byzantine-f"} {
		if !strings.Contains(out, mode) {
			t.Fatalf("Table1 output missing %q:\n%s", mode, out)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	// Table 1 + Figs 5–17 (14 paper experiments) + the 4 ext-* extensions
	// + the workers scale-out, state-backend, fan-out, and verify sweeps.
	if len(Experiments) != 22 {
		t.Fatalf("registry has %d experiments, want 22 (Table 1 + Figs 5-17 + 4 ext + workers + state + fanout + verify)", len(Experiments))
	}
	for _, name := range []string{"ext-gossip", "ext-compression", "ext-accountability", "ext-restart", "workers", "state", "fanout", "verify"} {
		if Experiments[name] == nil {
			t.Fatalf("extension experiment %q not registered", name)
		}
	}
	for _, name := range ExperimentOrder {
		if Experiments[name] == nil {
			t.Fatalf("experiment %q in order list but not registered", name)
		}
	}
}

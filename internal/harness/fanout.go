package harness

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clientapi"
	"repro/internal/flo"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/types"
)

// fanSubBase keeps subscriber client identities far away from the
// saturating load's tx client ids (nodeID*1000+worker): the server routes a
// delivered tx's COMMIT receipt to the session registered under its client
// id, and a collision would spray receipts into a subscriber's send queue.
const fanSubBase = uint64(1) << 32

// fanoutRig is the in-run fan-out load: a client API server on node 0 plus
// Options.Subscribers streaming sessions over in-memory pipes, every one
// subscribed from genesis. A delivery-time tap timestamps each merged
// position so sampled subscribers can measure delivery→receive lag.
type fanoutRig struct {
	srv       *clientapi.Server
	cancelTap func()
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	measuring *atomic.Bool
	workers   uint64

	received  atomic.Uint64 // BLOCK events absorbed inside the window
	delivered atomic.Uint64 // node-0 deliveries since attach
	lag       *metrics.Histogram

	wallMu sync.RWMutex
	wall   map[uint64]time.Time // merged pos -> delivery wall clock

	clients []*clientapi.Client
}

// attachFanout wires the rig to node and spawns the subscribers. It returns
// once every subscription is established (so the measured window opens with
// the full population attached); call stop before the node goes down.
func attachFanout(node *flo.Node, opts Options, measuring *atomic.Bool) *fanoutRig {
	r := &fanoutRig{
		measuring: measuring,
		workers:   uint64(node.Workers()),
		lag:       metrics.NewHistogram(0),
		wall:      make(map[uint64]time.Time),
	}
	// The lag tap registers before the server so the timestamp for a
	// position exists by the time the hub's tap (registered by NewServer)
	// fans the block out.
	r.cancelTap = node.SubscribeDeliver(func(w uint32, blk types.Block) {
		pos := (blk.Signed.Header.Round-1)*r.workers + uint64(w)
		now := time.Now()
		r.wallMu.Lock()
		r.wall[pos] = now
		r.wallMu.Unlock()
		r.delivered.Add(1)
	})
	// A small send queue and ring keep the demotion machinery observable
	// within a short measured window: a stalled connection parks after 16
	// frames and falls to a replay cohort once the ring advances 32 past it,
	// so ~50 delivered blocks are enough to watch the whole stall play out —
	// the loaded cells on a 1-CPU box never produce the hundreds of blocks
	// the production-sized defaults would need. Shrinking the queue further
	// is counterproductive: at 8 slots healthy subscribers park on every
	// burst and the demote→cohort→promote churn dominates the lag tail.
	r.srv = clientapi.NewServer(node, clientapi.ServerOptions{
		SendQueueCap: 16,
		Hub:          clientapi.HubConfig{RingCap: 32},
	})

	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.clients = make([]*clientapi.Client, opts.Subscribers, opts.Subscribers+1)

	if opts.SubscriberStall {
		// The stalled subscriber: a 1-slot event buffer it never drains, so
		// its session's read loop wedges, the pipe backs up, and the server
		// queue fills. The hub must park and demote it — never block on it.
		// It attaches before the population so the stall plays out while the
		// cluster is still at full block rate: the ring advances past its
		// parked position within the attach phase, which is what makes the
		// demotion observable even in cells where the loaded hub later slows
		// block production to a crawl.
		c, _, err := r.subscribe(ctx, fanSubBase-1, clientapi.Filter{}, 1)
		if err != nil {
			panic(fmt.Sprintf("harness: stalled fan-out subscriber: %v", err))
		}
		r.clients = append(r.clients, c)
	}

	// Sampled subscribers (at most 64, evenly spread) observe lag; the rest
	// only count, so the histogram mutex never becomes the bottleneck.
	stride := opts.Subscribers/64 + 1

	var attach sync.WaitGroup
	sem := make(chan struct{}, 64)
	for i := 0; i < opts.Subscribers; i++ {
		attach.Add(1)
		sem <- struct{}{}
		r.wg.Add(1)
		go func(i int) {
			defer r.wg.Done()
			var flt clientapi.Filter
			if opts.SubscriberFilter {
				flt = clientapi.BuildFilter(clientapi.WithTxPrefix([]byte{byte(i % 256)}))
			}
			// A 2-slot event buffer per subscriber: each buffered event pins a
			// decoded block body, so at 50k subscribers a deep buffer is tens
			// of gigabytes of in-flight decodes; the consumers below only
			// count, so depth buys nothing.
			c, events, err := r.subscribe(ctx, fanSubBase+uint64(i), flt, 2)
			if err != nil {
				attach.Done()
				<-sem
				panic(fmt.Sprintf("harness: fan-out subscriber %d: %v", i, err))
			}
			r.clients[i] = c
			attach.Done()
			// Release the dial slot now that the session is attached: the
			// semaphore bounds concurrent dials, not consumer lifetimes —
			// holding it through the consume loop would cap the whole
			// population at the semaphore width and deadlock attach.Wait.
			<-sem
			sampled := i%stride == 0
			for ev := range events {
				if ev.Err != nil {
					return // rig teardown or server close
				}
				if !r.measuring.Load() {
					continue
				}
				r.received.Add(1)
				if sampled {
					pos := (ev.Block.Signed.Header.Round-1)*r.workers + uint64(ev.Worker)
					r.wallMu.RLock()
					t, ok := r.wall[pos]
					r.wallMu.RUnlock()
					if ok {
						r.lag.Observe(time.Since(t))
					}
				}
			}
		}(i)
	}
	attach.Wait()
	return r
}

// subscribe opens one piped session against the rig's server and starts the
// block stream at genesis.
func (r *fanoutRig) subscribe(ctx context.Context, id uint64, flt clientapi.Filter, buf int) (*clientapi.Client, <-chan clientapi.BlockEvent, error) {
	sc, cc := net.Pipe()
	if err := r.srv.ServeConn(sc); err != nil {
		return nil, nil, err
	}
	c, err := clientapi.Attach(cc, id, clientapi.DialOptions{Timeout: time.Minute, SubscribeBuffer: buf})
	if err != nil {
		return nil, nil, err
	}
	events, err := c.SubscribeFiltered(ctx, clientapi.Cursor{}, flt)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	return c, events, nil
}

// collect fills the Fan* Result fields. The counters are cumulative over
// the rig's lifetime (attach → window close), not window deltas: the
// encode-once property is a statement about the whole population's traffic,
// and at large populations a short window can catch the hub fully
// backpressured (every send queue full, clients draining backlog) and read
// ~zero activity. The rate and the lag percentiles stay window-scoped.
func (r *fanoutRig) collect(res *Result, elapsed float64) {
	fs := r.srv.Fanout()
	res.FanFramesEncoded = fs.FramesEncoded
	res.FanFramesShared = fs.FramesShared
	res.FanBytesEncoded = fs.BytesEncoded
	res.FanBytesSent = fs.BytesSent
	res.FanBlocksFiltered = fs.BlocksFiltered
	res.FanCohortReplays = fs.CohortReplays
	res.FanDemotions = fs.Demotions
	res.FanPromotions = fs.Promotions
	res.FanOverflowDisconnects = fs.OverflowDisconnects
	res.FanDelivered = r.delivered.Load()
	res.FanLag = r.lag
	if elapsed > 0 {
		res.FanDeliveriesPerSec = float64(r.received.Load()) / elapsed
	}
}

// stop tears the rig down: cancel the streams, wait the consumers out, close
// the sessions and the server, detach the lag tap.
func (r *fanoutRig) stop() {
	r.cancel()
	r.wg.Wait()
	for _, c := range r.clients {
		if c != nil {
			c.Close()
		}
	}
	r.srv.Close()
	r.cancelTap()
}

// FanoutCell is one point of the fan-out sweep: a subscriber population
// (with or without per-subscriber filters) against a sustained write load.
type FanoutCell struct {
	Subs     int  `json:"subs"`
	Filtered bool `json:"filtered"`
	Stalled  bool `json:"stalled"`
	// TPS is the cluster's definite write throughput with the fan-out riding
	// on node 0; DeliveriesPerSec is the total BLOCK-event rate across
	// subscribers; the lag percentiles are delivery→receive over sampled
	// subscribers.
	TPS              float64 `json:"tps"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`
	LagP50Ms         float64 `json:"lag_p50_ms"`
	LagP99Ms         float64 `json:"lag_p99_ms"`
	// The encode-once accounting, cumulative from subscriber attach to
	// window close: EncodesPerBlock ~ 1 however many subscribers;
	// SharingRatio = BytesSent / BytesEncoded ~ the subscriber count on
	// unfiltered cells.
	FramesEncoded       uint64  `json:"frames_encoded"`
	FramesShared        uint64  `json:"frames_shared"`
	BytesEncoded        uint64  `json:"bytes_encoded"`
	BytesSent           uint64  `json:"bytes_sent"`
	EncodesPerBlock     float64 `json:"encodes_per_block"`
	SharingRatio        float64 `json:"sharing_ratio"`
	BlocksFiltered      uint64  `json:"blocks_filtered"`
	CohortReplays       uint64  `json:"cohort_replays"`
	Demotions           uint64  `json:"demotions"`
	Promotions          uint64  `json:"promotions"`
	OverflowDisconnects uint64  `json:"overflow_disconnects"`
}

// FanoutSweep runs the shared fan-out experiment behind the "fanout" entry
// and BENCH_fanout.json: subscribers ∈ {1, 1000, 10000, 50000}, unfiltered
// and filtered, on an n=4, ω=1, β=100, σ=256 single-data-center cluster.
// The population sweep is fixed (not scaled by profile) so the artifact
// always demonstrates the 50k-subscriber cell; Scale sets the measurement
// windows. A stalled/stall-free twin pair runs at 200 subscribers: the
// stalled twin's Demotions must read exactly 1 (the deliberately stalled
// subscriber moved out of the live tier, nobody else), and its lag
// percentiles must match the stall-free twin. The pair sits at 200 — not at
// 10k+ — because a saturated 1-CPU box throttles block production below any
// demotion threshold and drowns the lag comparison in scheduler churn; at
// 200 the box still delivers at full rate, so the twins isolate the stall's
// effect.
func FanoutSweep(s Scale) []FanoutCell {
	type variant struct {
		subs              int
		filtered, stalled bool
	}
	var grid []variant
	for _, subs := range []int{1, 200, 1000, 10000, 50000} {
		if subs == 200 { // the stalled/stall-free twin pair
			grid = append(grid, variant{subs, false, false}, variant{subs, false, true})
			continue
		}
		for _, filtered := range []bool{false, true} {
			grid = append(grid, variant{subs, filtered, false})
		}
	}
	var cells []FanoutCell
	for _, v := range grid {
		fmt.Fprintf(os.Stderr, "# fanout cell: subs=%d filtered=%t stalled=%t\n", v.subs, v.filtered, v.stalled)
		res := RunFLO(Options{
			N: 4, Workers: 1, Batch: 100, TxSize: 256,
			Latency: transport.SingleDC(), EgressBytesPerSec: s.Bandwidth,
			Warmup: s.Warmup, Duration: s.Duration,
			Subscribers:      v.subs,
			SubscriberFilter: v.filtered,
			SubscriberStall:  v.stalled,
		})
		// Return the cell's heap to the OS before the next one attaches
		// its own subscriber population: two 50k cells back to back
		// otherwise ratchet RSS past what one cell ever needs.
		debug.FreeOSMemory()
		cells = append(cells, FanoutCell{
			Subs:                v.subs,
			Filtered:            v.filtered,
			Stalled:             v.stalled,
			TPS:                 res.TPS,
			DeliveriesPerSec:    res.FanDeliveriesPerSec,
			LagP50Ms:            res.FanLag.Percentile(50).Seconds() * 1000,
			LagP99Ms:            res.FanLag.Percentile(99).Seconds() * 1000,
			FramesEncoded:       res.FanFramesEncoded,
			FramesShared:        res.FanFramesShared,
			BytesEncoded:        res.FanBytesEncoded,
			BytesSent:           res.FanBytesSent,
			EncodesPerBlock:     safeDiv(float64(res.FanFramesEncoded), float64(res.FanDelivered)),
			SharingRatio:        safeDiv(float64(res.FanBytesSent), float64(res.FanBytesEncoded)),
			BlocksFiltered:      res.FanBlocksFiltered,
			CohortReplays:       res.FanCohortReplays,
			Demotions:           res.FanDemotions,
			Promotions:          res.FanPromotions,
			OverflowDisconnects: res.FanOverflowDisconnects,
		})
	}
	return cells
}

// Fanout prints the fan-out sweep (cmd/flbench -exp fanout; -out
// additionally writes the cells as BENCH_fanout.json).
func Fanout(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# fanout: shared fan-out hub vs subscriber count, n=4, workers=1, batch=100, sigma=256, single data-center\n")
	fmt.Fprintf(w, "subs\tfiltered\tstalled\ttps\tdeliv/s\tlag-p50-ms\tlag-p99-ms\tenc/blk\tshare-ratio\tdemotions\treplays\toverflow\n")
	for _, c := range FanoutSweep(s) {
		fmt.Fprintf(w, "%d\t%t\t%t\t%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%.1f\t%d\t%d\t%d\n",
			c.Subs, c.Filtered, c.Stalled, c.TPS, c.DeliveriesPerSec, c.LagP50Ms, c.LagP99Ms,
			c.EncodesPerBlock, c.SharingRatio, c.Demotions, c.CohortReplays, c.OverflowDisconnects)
	}
}

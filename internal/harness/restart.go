package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/flo"
	"repro/internal/transport"
)

// RestartOptions parameterizes the kill-and-restart-under-load experiment:
// a cluster runs saturating load, one node is killed, the survivors keep
// finalizing for DowntimeRounds, and the victim restarts from its DataDir —
// measuring how long rejoining takes and how many catch-up requests it
// costs (the streaming range-sync acceptance metric).
type RestartOptions struct {
	// N is the cluster size (default 4).
	N int
	// Batch is β, TxSize is σ.
	Batch  int
	TxSize int
	// CatchUpBatch is the range-sync batch (flo.Config.CatchUpBatch).
	CatchUpBatch int
	// SnapshotEvery enables checkpoint/compaction on every node (0 off).
	SnapshotEvery uint64
	// WarmupRounds finalize before the kill; DowntimeRounds finalize while
	// the victim is down.
	WarmupRounds   uint64
	DowntimeRounds uint64
	// InitialTimer seeds the WRB timer (default 20ms).
	InitialTimer time.Duration
	// DataDir holds per-node state (a temp dir is created when empty).
	DataDir string
	// Timeout bounds each wait phase (default 120s).
	Timeout time.Duration
}

// RestartResult reports one restart run.
type RestartResult struct {
	// KillTip / RestartTarget are the victim's definite tip at the kill
	// and the cluster's definite tip at the restart moment.
	KillTip       uint64
	RestartTarget uint64
	// ReplayBase / ReplayTip delimit the log suffix replayed on restart
	// (ReplayBase > 0 means the log was compacted to a snapshot anchor).
	ReplayBase uint64
	ReplayTip  uint64
	// RejoinTime is restart-to-target catch-up latency.
	RejoinTime time.Duration
	// RangeReqs / RangeBlocks / BlockReqs are the victim's catch-up
	// counters at rejoin.
	RangeReqs   uint64
	RangeBlocks uint64
	BlockReqs   uint64
}

// RunRestart executes one restart-under-load experiment.
func RunRestart(opts RestartOptions) (RestartResult, error) {
	if opts.N == 0 {
		opts.N = 4
	}
	if opts.Batch == 0 {
		opts.Batch = 50
	}
	if opts.TxSize == 0 {
		opts.TxSize = 256
	}
	if opts.CatchUpBatch == 0 {
		opts.CatchUpBatch = 64
	}
	if opts.WarmupRounds == 0 {
		opts.WarmupRounds = 5
	}
	if opts.DowntimeRounds == 0 {
		opts.DowntimeRounds = 50
	}
	if opts.InitialTimer == 0 {
		opts.InitialTimer = 20 * time.Millisecond
	}
	if opts.Timeout == 0 {
		opts.Timeout = 120 * time.Second
	}
	if opts.DataDir == "" {
		dir, err := os.MkdirTemp("", "fl-restart-*")
		if err != nil {
			return RestartResult{}, err
		}
		defer os.RemoveAll(dir)
		opts.DataDir = dir
	}

	ks := flcrypto.MustGenerateKeySet(opts.N, flcrypto.Ed25519)
	net := transport.NewChanNetwork(transport.ChanConfig{N: opts.N})
	defer net.Close()

	mkCfg := func(i int, ep transport.Endpoint) flo.Config {
		return flo.Config{
			Endpoint:      ep,
			Registry:      ks.Registry,
			Priv:          ks.Privs[i],
			Workers:       1,
			BatchSize:     opts.Batch,
			Saturate:      opts.TxSize,
			DataDir:       filepath.Join(opts.DataDir, fmt.Sprintf("node%d", i)),
			CatchUpBatch:  opts.CatchUpBatch,
			SnapshotEvery: opts.SnapshotEvery,
			InitialTimer:  opts.InitialTimer,
		}
	}
	nodes := make([]*flo.Node, opts.N)
	for i := 0; i < opts.N; i++ {
		node, err := flo.NewNode(mkCfg(i, net.Endpoint(flcrypto.NodeID(i))))
		if err != nil {
			return RestartResult{}, err
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		node.Start()
	}
	stopAll := func() {
		for _, node := range nodes {
			if node != nil {
				node.Stop()
			}
		}
	}
	defer stopAll()

	waitDef := func(idx []int, target uint64) error {
		deadline := time.Now().Add(opts.Timeout)
		for {
			done := true
			for _, i := range idx {
				if nodes[i].Worker(0).Chain().Definite() < target {
					done = false
					break
				}
			}
			if done {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("harness: stalled waiting for definite round %d", target)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	all := make([]int, opts.N)
	survivors := make([]int, 0, opts.N-1)
	victim := opts.N - 1
	for i := range all {
		all[i] = i
		if i != victim {
			survivors = append(survivors, i)
		}
	}

	var res RestartResult
	if err := waitDef(all, opts.WarmupRounds); err != nil {
		return res, err
	}

	// Kill the victim mid-saturation.
	res.KillTip = nodes[victim].Worker(0).Chain().Definite()
	net.Crash(flcrypto.NodeID(victim))
	nodes[victim].Stop()
	nodes[victim] = nil

	// Let the survivors finalize DowntimeRounds more.
	if err := waitDef(survivors, res.KillTip+opts.DowntimeRounds); err != nil {
		return res, err
	}
	res.RestartTarget = nodes[survivors[0]].Worker(0).Chain().Definite()

	// Restart from disk and measure the rejoin.
	net.Heal(flcrypto.NodeID(victim))
	ep := net.Reattach(flcrypto.NodeID(victim))
	node, err := flo.NewNode(mkCfg(victim, ep))
	if err != nil {
		return res, err
	}
	nodes[victim] = node
	res.ReplayBase = node.Worker(0).Chain().Base()
	res.ReplayTip = node.Worker(0).Chain().Definite()
	start := time.Now()
	node.Start()
	if err := waitDef([]int{victim}, res.RestartTarget); err != nil {
		return res, err
	}
	res.RejoinTime = time.Since(start)
	m := node.Worker(0).Metrics()
	res.RangeReqs = m.CatchUpRangeReqs.Load()
	res.RangeBlocks = m.CatchUpRangeBlocks.Load()
	res.BlockReqs = m.CatchUpBlockReqs.Load()
	return res, nil
}

// ExtRestart is the restart-under-load experiment: rejoin time and catch-up
// request counts across downtime depths, with and without compaction.
func ExtRestart(w io.Writer, s Scale) {
	fmt.Fprintf(w, "# ext-restart: kill one node under saturating load, restart from disk (n=4, beta=50, sigma=256, catchup-batch=32)\n")
	fmt.Fprintf(w, "downtime_rounds\tsnapshot_every\treplay_base\treplay_tip\trejoin_ms\trange_reqs\trange_blocks\tblock_reqs\n")
	downtimes := []uint64{50, 200}
	if s.Duration >= 5*time.Second { // the full profile digs deeper
		downtimes = []uint64{50, 200, 1000}
	}
	for _, down := range downtimes {
		for _, snap := range []uint64{0, 20} {
			warmup := uint64(5)
			if snap > 0 {
				// Long enough that the victim checkpoints (and compacts)
				// before dying, so the restart exercises anchored replay.
				warmup = 2*snap + 12
			}
			res, err := RunRestart(RestartOptions{
				WarmupRounds:   warmup,
				DowntimeRounds: down,
				CatchUpBatch:   32,
				SnapshotEvery:  snap,
			})
			if err != nil {
				fmt.Fprintf(w, "%d\t%d\terror: %v\n", down, snap, err)
				continue
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1f\t%d\t%d\t%d\n",
				down, snap, res.ReplayBase, res.ReplayTip,
				float64(res.RejoinTime.Microseconds())/1000, res.RangeReqs, res.RangeBlocks, res.BlockReqs)
		}
	}
}

func init() {
	Experiments["ext-restart"] = ExtRestart
	ExperimentOrder = append(ExperimentOrder, "ext-restart")
}

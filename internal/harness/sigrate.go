package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/types"
	"repro/internal/workload"
)

// SignatureRate reproduces the Fig 5 micro-benchmark: ω workers each
// repeatedly build a block of β transactions of σ bytes, hash it, and sign
// the digest alongside the header ("all the block's transactions are hashed
// and the result is signed alongside the block header", §7.1). It returns
// signatures per second (sps) over the given duration.
func SignatureRate(scheme flcrypto.Scheme, workers, batch, txSize int, duration time.Duration) float64 {
	keys := make([]flcrypto.PrivateKey, workers)
	for i := range keys {
		priv, err := flcrypto.GenerateKey(scheme, nil)
		if err != nil {
			panic(err)
		}
		keys[i] = priv
	}
	var total atomic.Uint64
	stop := make(chan struct{})
	var ready, wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		ready.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGenerator(txSize, uint64(w), int64(w))
			// Pre-build the transaction batch once, outside the measured
			// window: the measured cost is hashing β·σ bytes plus one
			// signature, exactly tsign = β·σ·t_hash + C.
			txs := make([]types.Transaction, batch)
			for i := range txs {
				txs[i] = gen.Next()
			}
			body := types.Body{Txs: txs}
			raw := body.Marshal()
			ready.Done()
			var count uint64
			for {
				digest := flcrypto.Sum256(raw) // hash all transactions
				hdr := types.BlockHeader{Round: count, BodyHash: digest, TxCount: uint32(batch)}
				if _, err := keys[w].Sign(hdr.Marshal()); err != nil {
					break
				}
				count++
				select {
				case <-stop:
					total.Add(count)
					return
				default:
				}
			}
			total.Add(count)
		}(w)
	}
	ready.Wait()
	start := time.Now()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(total.Load()) / elapsed
}

package evidence

import (
	"sort"
	"sync"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// Record is one culprit's entry in a Pool.
type Record struct {
	// Culprit is the convicted node.
	Culprit flcrypto.NodeID
	// Proof is the verified equivocation.
	Proof Equivocation
	// OnChain reports whether a conviction transaction for this culprit has
	// reached a definite block.
	OnChain bool
	// ChainRound is the definite round whose block carries the conviction
	// (0 until OnChain). The consensus layer derives the exclusion's
	// effective round from it.
	ChainRound uint64
}

// Pool is one node's evidence ledger for one worker chain. It verifies and
// deduplicates observed equivocations (at most one record per culprit — one
// proof suffices to convict) and tracks which convictions have made it onto
// the chain. All methods are safe for concurrent use.
type Pool struct {
	reg *flcrypto.Registry

	mu        sync.Mutex
	records   map[flcrypto.NodeID]*Record
	onObserve func(Record)
	onChain   func(Record)
}

// NewPool creates an empty pool verifying against reg.
func NewPool(reg *flcrypto.Registry) *Pool {
	return &Pool{reg: reg, records: make(map[flcrypto.NodeID]*Record)}
}

// SetHooks installs observability callbacks: onObserve fires when a new
// culprit's proof is first verified locally, onChain when its conviction
// reaches a definite block. Either may be nil. Callbacks run synchronously
// under the caller's goroutine and must not re-enter the pool.
func (p *Pool) SetHooks(onObserve, onChain func(Record)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onObserve = onObserve
	p.onChain = onChain
}

// Observe verifies and records an equivocation. It reports whether the proof
// was new (first verified offense by this culprit). Invalid proofs are
// dropped and reported as not new.
func (p *Pool) Observe(eq Equivocation) bool {
	if eq.Verify(p.reg) != nil {
		return false
	}
	p.mu.Lock()
	if _, dup := p.records[eq.Culprit()]; dup {
		p.mu.Unlock()
		return false
	}
	rec := &Record{Culprit: eq.Culprit(), Proof: eq}
	p.records[eq.Culprit()] = rec
	cb := p.onObserve
	snap := *rec
	p.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
	return true
}

// ObservePair is Observe on two conflicting signed headers (any order).
func (p *Pool) ObservePair(x, y types.SignedHeader) bool {
	return p.Observe(NewEquivocation(x, y))
}

// MarkOnChain records that a conviction transaction for culprit sits in the
// definite block at round. The first call wins; later sightings of duplicate
// conviction transactions are ignored.
func (p *Pool) MarkOnChain(culprit flcrypto.NodeID, round uint64) {
	p.mu.Lock()
	rec := p.records[culprit]
	if rec == nil || rec.OnChain {
		p.mu.Unlock()
		return
	}
	rec.OnChain = true
	rec.ChainRound = round
	cb := p.onChain
	snap := *rec
	p.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
}

// adoptFromChain records a conviction seen on the chain (possibly a proof
// this node never observed directly, embedded by another node). It reports
// whether the culprit was newly marked on-chain.
func (p *Pool) adoptFromChain(eq Equivocation, round uint64) bool {
	if eq.Verify(p.reg) != nil {
		return false
	}
	p.mu.Lock()
	rec := p.records[eq.Culprit()]
	if rec == nil {
		rec = &Record{Culprit: eq.Culprit(), Proof: eq}
		p.records[eq.Culprit()] = rec
	}
	if rec.OnChain {
		p.mu.Unlock()
		return false
	}
	rec.OnChain = true
	rec.ChainRound = round
	cb := p.onChain
	snap := *rec
	p.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
	return true
}

// IngestBlockTx processes one transaction from a definite block at `round`:
// if it is a valid conviction, the pool records it (adopting proofs this
// node had not seen) and reports the culprit, with true exactly when the
// culprit was newly marked on-chain (duplicates in later blocks are inert).
// The consensus layer calls this for every transaction of every definite
// block, in order.
func (p *Pool) IngestBlockTx(tx types.Transaction, round uint64) (flcrypto.NodeID, bool) {
	eq, ok := ParseConvictionTx(tx)
	if !ok {
		return 0, false
	}
	if eq.Verify(p.reg) != nil {
		return 0, false
	}
	return eq.Culprit(), p.adoptFromChain(eq, round)
}

// PendingTxs returns conviction transactions (at most max) for culprits
// whose proof has not yet been seen on-chain, in ascending culprit order so
// all nodes emit the same bytes. Block proposers prepend these to their
// batches.
func (p *Pool) PendingTxs(max int) []types.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	var culprits []flcrypto.NodeID
	for id, rec := range p.records {
		if !rec.OnChain {
			culprits = append(culprits, id)
		}
	}
	sort.Slice(culprits, func(i, j int) bool { return culprits[i] < culprits[j] })
	if max > 0 && len(culprits) > max {
		culprits = culprits[:max]
	}
	txs := make([]types.Transaction, 0, len(culprits))
	for _, id := range culprits {
		txs = append(txs, ConvictionTx(p.records[id].Proof))
	}
	return txs
}

// Convicted reports whether culprit has a verified record (on-chain or not).
func (p *Pool) Convicted(culprit flcrypto.NodeID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.records[culprit]
	return ok
}

// Records returns a snapshot of all records, ordered by culprit.
func (p *Pool) Records() []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Record, 0, len(p.records))
	for _, rec := range p.records {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Culprit < out[j].Culprit })
	return out
}

package evidence

import (
	"testing"
	"testing/quick"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

func keySet(t testing.TB, n int) *flcrypto.KeySet {
	t.Helper()
	return flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519)
}

// conflictingHeaders signs two different headers by `proposer` for the same
// round.
func conflictingHeaders(t testing.TB, ks *flcrypto.KeySet, proposer int, round uint64) (types.SignedHeader, types.SignedHeader) {
	t.Helper()
	base := types.BlockHeader{
		Instance: 0,
		Round:    round,
		Proposer: flcrypto.NodeID(proposer),
		PrevHash: flcrypto.Sum256([]byte("prev")),
		BodyHash: flcrypto.Sum256([]byte("body-a")),
	}
	a, err := base.Sign(ks.Privs[proposer])
	if err != nil {
		t.Fatal(err)
	}
	base.BodyHash = flcrypto.Sum256([]byte("body-b"))
	b, err := base.Sign(ks.Privs[proposer])
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestEquivocationVerify(t *testing.T) {
	ks := keySet(t, 4)
	a, b := conflictingHeaders(t, ks, 2, 5)
	eq := NewEquivocation(a, b)
	if err := eq.Verify(ks.Registry); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if eq.Culprit() != 2 {
		t.Fatalf("culprit = %d, want 2", eq.Culprit())
	}
	if eq.Round() != 5 || eq.Instance() != 0 {
		t.Fatalf("round/instance = %d/%d", eq.Round(), eq.Instance())
	}
}

func TestEquivocationCanonicalOrder(t *testing.T) {
	ks := keySet(t, 4)
	a, b := conflictingHeaders(t, ks, 1, 3)
	p1 := NewEquivocation(a, b)
	p2 := NewEquivocation(b, a)
	m1, m2 := p1.Marshal(), p2.Marshal()
	if string(m1) != string(m2) {
		t.Fatal("same offense serialized differently depending on header order")
	}
}

func TestEquivocationRejectsIdenticalHeaders(t *testing.T) {
	ks := keySet(t, 4)
	a, _ := conflictingHeaders(t, ks, 0, 1)
	eq := Equivocation{A: a, B: a}
	if err := eq.Verify(ks.Registry); err == nil {
		t.Fatal("identical headers accepted as equivocation")
	}
}

func TestEquivocationRejectsDifferentSlots(t *testing.T) {
	ks := keySet(t, 4)
	a, _ := conflictingHeaders(t, ks, 0, 1)
	b2, _ := conflictingHeaders(t, ks, 0, 2) // different round
	if err := (&Equivocation{A: a, B: b2}).Verify(ks.Registry); err == nil {
		t.Fatal("different rounds accepted")
	}
	c, _ := conflictingHeaders(t, ks, 1, 1) // different proposer
	if err := (&Equivocation{A: a, B: c}).Verify(ks.Registry); err == nil {
		t.Fatal("different proposers accepted")
	}
}

func TestEquivocationRejectsDifferentParents(t *testing.T) {
	// A correct proposer may sign the same round twice on different parents
	// (recovery redo): that pair must NOT convict.
	ks := keySet(t, 4)
	base := types.BlockHeader{
		Instance: 0,
		Round:    5,
		Proposer: 2,
		PrevHash: flcrypto.Sum256([]byte("parent-before-recovery")),
		BodyHash: flcrypto.Sum256([]byte("body-a")),
	}
	a, err := base.Sign(ks.Privs[2])
	if err != nil {
		t.Fatal(err)
	}
	base.PrevHash = flcrypto.Sum256([]byte("parent-after-recovery"))
	base.BodyHash = flcrypto.Sum256([]byte("body-b"))
	b, err := base.Sign(ks.Privs[2])
	if err != nil {
		t.Fatal(err)
	}
	eq := NewEquivocation(a, b)
	if err := eq.Verify(ks.Registry); err == nil {
		t.Fatal("recovery-redo re-proposal convicted an innocent node")
	}
	p := NewPool(ks.Registry)
	if p.Observe(eq) || p.Convicted(2) {
		t.Fatal("pool recorded an innocent re-proposal")
	}
}

func TestEquivocationRejectsForgedSignature(t *testing.T) {
	ks := keySet(t, 4)
	a, b := conflictingHeaders(t, ks, 2, 5)
	eq := NewEquivocation(a, b)
	eq.B.Sig = append(flcrypto.Signature(nil), eq.B.Sig...)
	eq.B.Sig[0] ^= 1
	if err := eq.Verify(ks.Registry); err == nil {
		t.Fatal("forged signature accepted")
	}
}

func TestEquivocationRejectsGenesisRound(t *testing.T) {
	ks := keySet(t, 4)
	base := types.BlockHeader{Instance: 0, Round: 0, Proposer: 1}
	a, _ := base.Sign(ks.Privs[1])
	base.BodyHash = flcrypto.Sum256([]byte("x"))
	b, _ := base.Sign(ks.Privs[1])
	if err := (&Equivocation{A: a, B: b}).Verify(ks.Registry); err == nil {
		t.Fatal("round-0 equivocation accepted")
	}
}

func TestEquivocationRoundTrip(t *testing.T) {
	ks := keySet(t, 4)
	a, b := conflictingHeaders(t, ks, 3, 7)
	eq := NewEquivocation(a, b)
	d := types.NewDecoder(eq.Marshal())
	got := DecodeEquivocation(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(ks.Registry); err != nil {
		t.Fatalf("round-tripped proof invalid: %v", err)
	}
}

func TestEquivocationQuickTamperRejected(t *testing.T) {
	// Property: flipping any byte of a marshaled proof must not yield
	// another proof that verifies and convicts a different culprit — i.e.,
	// proofs cannot be grafted onto innocent nodes.
	ks := keySet(t, 7)
	a, b := conflictingHeaders(t, ks, 4, 9)
	eq := NewEquivocation(a, b)
	enc := eq.Marshal()
	fn := func(pos uint16, bit uint8) bool {
		mut := append([]byte(nil), enc...)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		d := types.NewDecoder(mut)
		got := DecodeEquivocation(d)
		if d.Finish() != nil {
			return true
		}
		if got.Verify(ks.Registry) != nil {
			return true
		}
		// A mutation that still verifies must still convict the real
		// culprit (e.g., the flipped bit was in an ignored region — there
		// is none in this codec, but the property is what matters).
		return got.Culprit() == 4
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConvictionTxRoundTrip(t *testing.T) {
	ks := keySet(t, 4)
	a, b := conflictingHeaders(t, ks, 1, 6)
	eq := NewEquivocation(a, b)
	tx := ConvictionTx(eq)
	if tx.Client != SystemClient {
		t.Fatalf("client = %x", tx.Client)
	}
	if tx.Seq != 6 {
		t.Fatalf("seq = %d, want offense round", tx.Seq)
	}
	got, ok := ParseConvictionTx(tx)
	if !ok {
		t.Fatal("own conviction tx not recognized")
	}
	if err := got.Verify(ks.Registry); err != nil {
		t.Fatal(err)
	}
	if got.Culprit() != 1 {
		t.Fatalf("culprit = %d", got.Culprit())
	}
}

func TestParseConvictionTxRejectsNoise(t *testing.T) {
	if _, ok := ParseConvictionTx(types.Transaction{Client: 7, Seq: 1, Payload: []byte("hello")}); ok {
		t.Fatal("application tx parsed as conviction")
	}
	if _, ok := ParseConvictionTx(types.Transaction{Client: SystemClient, Seq: 1, Payload: []byte("short")}); ok {
		t.Fatal("bogus system tx parsed as conviction")
	}
	// Right client, right magic, garbage proof.
	payload := append(append([]byte(nil), txMagic...), []byte("garbage")...)
	if _, ok := ParseConvictionTx(types.Transaction{Client: SystemClient, Payload: payload}); ok {
		t.Fatal("garbage proof parsed")
	}
}

func TestPoolObserveDedupsPerCulprit(t *testing.T) {
	ks := keySet(t, 4)
	p := NewPool(ks.Registry)
	a, b := conflictingHeaders(t, ks, 2, 5)
	if !p.ObservePair(a, b) {
		t.Fatal("first observation not recorded")
	}
	if p.ObservePair(b, a) {
		t.Fatal("same offense recorded twice")
	}
	// A different offense by the same culprit is also deduplicated: one
	// proof per culprit suffices.
	a2, b2 := conflictingHeaders(t, ks, 2, 9)
	if p.ObservePair(a2, b2) {
		t.Fatal("second offense by convicted culprit recorded")
	}
	if !p.Convicted(2) {
		t.Fatal("culprit not convicted")
	}
	if p.Convicted(1) {
		t.Fatal("innocent node convicted")
	}
}

func TestPoolRejectsInvalidProofs(t *testing.T) {
	ks := keySet(t, 4)
	p := NewPool(ks.Registry)
	a, b := conflictingHeaders(t, ks, 2, 5)
	eq := NewEquivocation(a, b)
	eq.A.Sig = append(flcrypto.Signature(nil), eq.A.Sig...)
	eq.A.Sig[3] ^= 0x80
	if p.Observe(eq) {
		t.Fatal("invalid proof recorded")
	}
	if p.Convicted(2) {
		t.Fatal("conviction from invalid proof")
	}
}

func TestPoolPendingAndOnChainLifecycle(t *testing.T) {
	ks := keySet(t, 7)
	p := NewPool(ks.Registry)
	for _, culprit := range []int{5, 3} {
		a, b := conflictingHeaders(t, ks, culprit, uint64(culprit))
		if !p.ObservePair(a, b) {
			t.Fatalf("culprit %d not recorded", culprit)
		}
	}
	txs := p.PendingTxs(0)
	if len(txs) != 2 {
		t.Fatalf("pending = %d, want 2", len(txs))
	}
	// Ascending culprit order for deterministic emission.
	eq0, _ := ParseConvictionTx(txs[0])
	eq1, _ := ParseConvictionTx(txs[1])
	if eq0.Culprit() != 3 || eq1.Culprit() != 5 {
		t.Fatalf("pending order = %d,%d, want 3,5", eq0.Culprit(), eq1.Culprit())
	}
	// max caps the batch.
	if got := p.PendingTxs(1); len(got) != 1 {
		t.Fatalf("capped pending = %d", len(got))
	}
	p.MarkOnChain(3, 42)
	txs = p.PendingTxs(0)
	if len(txs) != 1 {
		t.Fatalf("pending after on-chain = %d", len(txs))
	}
	recs := p.Records()
	if len(recs) != 2 || recs[0].Culprit != 3 || !recs[0].OnChain || recs[0].ChainRound != 42 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[1].OnChain {
		t.Fatal("culprit 5 marked on-chain prematurely")
	}
	// MarkOnChain for an unknown culprit is a no-op.
	p.MarkOnChain(0, 1)
	if p.Convicted(0) {
		t.Fatal("unknown culprit appeared")
	}
}

func TestPoolIngestBlockTxAdoptsForeignProof(t *testing.T) {
	ks := keySet(t, 4)
	// Node X observed the offense and emitted the tx; this pool only sees
	// the block.
	a, b := conflictingHeaders(t, ks, 1, 4)
	tx := ConvictionTx(NewEquivocation(a, b))

	p := NewPool(ks.Registry)
	var chained []Record
	p.SetHooks(nil, func(r Record) { chained = append(chained, r) })
	culprit, ok := p.IngestBlockTx(tx, 10)
	if !ok || culprit != 1 {
		t.Fatalf("ingest = (%d, %v)", culprit, ok)
	}
	if !p.Convicted(1) {
		t.Fatal("foreign proof not adopted")
	}
	if len(p.PendingTxs(0)) != 0 {
		t.Fatal("adopted conviction still pending")
	}
	if len(chained) != 1 || chained[0].ChainRound != 10 {
		t.Fatalf("onChain hook = %+v", chained)
	}
	// A duplicate in a later block is inert: same culprit, not new.
	culprit, fresh := p.IngestBlockTx(tx, 11)
	if culprit != 1 || fresh {
		t.Fatalf("duplicate conviction ingest = (%d, %v)", culprit, fresh)
	}
	if len(chained) != 1 {
		t.Fatal("duplicate conviction re-fired the hook")
	}
}

func TestPoolIngestBlockTxRejectsTamperedProof(t *testing.T) {
	ks := keySet(t, 4)
	a, b := conflictingHeaders(t, ks, 1, 4)
	eq := NewEquivocation(a, b)
	eq.B.Sig = append(flcrypto.Signature(nil), eq.B.Sig...)
	eq.B.Sig[1] ^= 2
	tx := ConvictionTx(eq)
	p := NewPool(ks.Registry)
	if _, ok := p.IngestBlockTx(tx, 10); ok {
		t.Fatal("tampered on-chain proof accepted")
	}
}

func TestPoolObserveHook(t *testing.T) {
	ks := keySet(t, 4)
	p := NewPool(ks.Registry)
	var seen []Record
	p.SetHooks(func(r Record) { seen = append(seen, r) }, nil)
	a, b := conflictingHeaders(t, ks, 2, 5)
	p.ObservePair(a, b)
	p.ObservePair(a, b)
	if len(seen) != 1 || seen[0].Culprit != 2 {
		t.Fatalf("observe hook fired %d times (%+v)", len(seen), seen)
	}
}

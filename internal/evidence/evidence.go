// Package evidence implements the accountability side of FireLedger. The
// paper (§1) argues that "any Byzantine deviation from the protocol results
// in a strong proof of which node was the culprit" and that "once a proof of
// Byzantine behavior is being generated, the corresponding Byzantine node
// will be removed from the system". This package supplies that machinery:
//
//   - Equivocation is the transferable proof itself — two correctly-signed
//     block headers by the same proposer for the same round of the same
//     worker chain with different hashes. Only the proposer's key can create
//     such a pair, so a verified Equivocation convicts its signer offline.
//   - Pool is one node's local evidence ledger: it verifies and deduplicates
//     observed equivocations and turns them into conviction transactions
//     that proposers embed in blocks, putting the proof on the chain itself.
//
// Removal is realized by the consensus layer (internal/core with
// ExcludeConvicted): once a conviction transaction reaches a definite block,
// every node derives the same exclusion — the culprit is skipped by the
// proposer rotation from an agreed round on. Keeping the conviction on-chain
// (rather than acting on locally-observed proofs) is what makes the
// exclusion deterministic across correct nodes and across restarts: the
// chain is the single agreed source, so replaying it reproduces the same
// conviction set.
package evidence

import (
	"errors"
	"fmt"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// Equivocation proves that a proposer signed two different headers for the
// same proposal slot — the same (instance, round, parent block): an offense
// only the key holder can commit. The pair is kept in canonical order (A's
// header hash < B's) so the same offense always serializes to the same
// bytes.
//
// The parent (PrevHash) is part of the slot on purpose: a *correct*
// FireLedger proposer may sign two different headers for the same round —
// its first proposal can be rescinded by the recovery procedure and the
// round redone on an adopted chain — so "same round, different hash" alone
// convicts the innocent. What a correct node never does (the consensus
// layer memoizes its proposals per slot, see core.Instance.buildBlock) is
// sign two different blocks extending the same parent at the same round.
// The §7.4.2 split-equivocator does exactly that, and is caught.
type Equivocation struct {
	A, B types.SignedHeader
}

// NewEquivocation builds a canonical Equivocation from two conflicting
// signed headers (in either order).
func NewEquivocation(x, y types.SignedHeader) Equivocation {
	hx, hy := x.HeaderHash(), y.HeaderHash()
	for i := range hx {
		if hx[i] < hy[i] {
			return Equivocation{A: x, B: y}
		}
		if hx[i] > hy[i] {
			return Equivocation{A: y, B: x}
		}
	}
	return Equivocation{A: x, B: y} // equal hashes: Verify will reject
}

// Culprit returns the node the proof convicts.
func (p *Equivocation) Culprit() flcrypto.NodeID { return p.A.Header.Proposer }

// Instance returns the worker chain the offense happened on.
func (p *Equivocation) Instance() uint32 { return p.A.Header.Instance }

// Round returns the round the offense happened in.
func (p *Equivocation) Round() uint64 { return p.A.Header.Round }

// ErrInvalidEquivocation reports a proof that fails verification.
var ErrInvalidEquivocation = errors.New("evidence: invalid equivocation proof")

// Verify checks the proof: both headers are correctly signed by the same
// proposer, for the same instance and round, and differ.
func (p *Equivocation) Verify(reg *flcrypto.Registry) error {
	a, b := p.A.Header, p.B.Header
	if a.Instance != b.Instance || a.Round != b.Round || a.Proposer != b.Proposer || a.PrevHash != b.PrevHash {
		return fmt.Errorf("%w: headers do not describe the same proposal slot", ErrInvalidEquivocation)
	}
	if a.Round == 0 {
		return fmt.Errorf("%w: genesis cannot be equivocated", ErrInvalidEquivocation)
	}
	if a.Hash() == b.Hash() {
		return fmt.Errorf("%w: headers are identical", ErrInvalidEquivocation)
	}
	if !p.A.Verify(reg) || !p.B.Verify(reg) {
		return fmt.Errorf("%w: bad signature", ErrInvalidEquivocation)
	}
	return nil
}

// Encode appends the proof to e.
func (p *Equivocation) Encode(e *types.Encoder) {
	p.A.Encode(e)
	p.B.Encode(e)
}

// DecodeEquivocation reads a proof from d.
func DecodeEquivocation(d *types.Decoder) Equivocation {
	var p Equivocation
	p.A = types.DecodeSignedHeader(d)
	p.B = types.DecodeSignedHeader(d)
	return p
}

// Marshal returns the standalone encoding.
func (p *Equivocation) Marshal() []byte {
	e := types.NewEncoder(384)
	p.Encode(e)
	return e.Bytes()
}

package evidence

import "repro/internal/types"

// SystemClient is the reserved client identity of conviction transactions.
// Application clients must not use it; the consensus layer recognizes
// transactions with this Client as conviction proofs and interprets their
// payload as a marshaled Equivocation.
const SystemClient uint64 = 0xF1_7E_1E_D6_E5_00_00_01

// txMagic opens every conviction payload, so a random application payload
// that happens to use SystemClient is still rejected by ParseConvictionTx.
var txMagic = []byte("fireledger/conviction/v1")

// ConvictionTx wraps a proof as a transaction a proposer can embed in its
// next block. The Seq field carries the offense round, making (Client, Seq,
// Payload) stable for identical offenses: any two correct nodes that
// observed the same equivocation emit byte-identical transactions.
func ConvictionTx(p Equivocation) types.Transaction {
	body := p.Marshal()
	payload := make([]byte, 0, len(txMagic)+len(body))
	payload = append(payload, txMagic...)
	payload = append(payload, body...)
	return types.Transaction{Client: SystemClient, Seq: p.Round(), Payload: payload}
}

// ParseConvictionTx recognizes and decodes a conviction transaction. It does
// not verify signatures — callers pass the result to Equivocation.Verify.
func ParseConvictionTx(tx types.Transaction) (Equivocation, bool) {
	if tx.Client != SystemClient || len(tx.Payload) < len(txMagic) {
		return Equivocation{}, false
	}
	for i, c := range txMagic {
		if tx.Payload[i] != c {
			return Equivocation{}, false
		}
	}
	d := types.NewDecoder(tx.Payload[len(txMagic):])
	p := DecodeEquivocation(d)
	if d.Finish() != nil {
		return Equivocation{}, false
	}
	return p, true
}

package workload

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/types"
)

func TestPoolLeaseAndCommit(t *testing.T) {
	p := NewPool(time.Hour)
	tx := types.Transaction{Client: 1, Seq: 1, Payload: []byte("a")}
	p.Add(tx)
	batch := p.NextBatch(10)
	if len(batch) != 1 {
		t.Fatalf("leased %d", len(batch))
	}
	// Leased transactions are not handed out twice.
	if again := p.NextBatch(10); len(again) != 0 {
		t.Fatalf("leased tx handed out twice: %d", len(again))
	}
	p.MarkCommitted(batch)
	if p.Committed() != 1 {
		t.Fatalf("committed = %d", p.Committed())
	}
	if p.Pending() != 0 {
		t.Fatalf("pending = %d", p.Pending())
	}
}

func TestPoolLeaseExpiry(t *testing.T) {
	p := NewPool(10 * time.Millisecond)
	p.Add(types.Transaction{Client: 1, Seq: 1})
	if got := p.NextBatch(1); len(got) != 1 {
		t.Fatal("lease failed")
	}
	time.Sleep(20 * time.Millisecond)
	// The lease expired: the transaction returns to the queue so it is not
	// lost when a tentative block is rescinded.
	if got := p.NextBatch(1); len(got) != 1 {
		t.Fatal("expired lease was not reclaimed")
	}
}

func TestPoolRejectsDuplicates(t *testing.T) {
	p := NewPool(time.Hour)
	tx := types.Transaction{Client: 2, Seq: 7, Payload: []byte("dup")}
	p.Add(tx)
	p.Add(tx) // while queued... the queue holds it; second Add allowed only if not leased/committed
	batch := p.NextBatch(10)
	p.MarkCommitted(batch)
	p.Add(tx) // after commit: dropped
	if got := p.NextBatch(10); len(got) != 0 {
		t.Fatalf("committed duplicate re-entered the pool: %d", len(got))
	}
}

func TestPoolBatchBound(t *testing.T) {
	p := NewPool(time.Hour)
	for i := 0; i < 25; i++ {
		p.Add(types.Transaction{Client: 3, Seq: uint64(i)})
	}
	if got := p.NextBatch(10); len(got) != 10 {
		t.Fatalf("batch = %d, want 10", len(got))
	}
	if p.Pending() != 25 {
		t.Fatalf("pending = %d, want 25 (15 queued + 10 leased)", p.Pending())
	}
}

func TestGeneratorSizeAndUniqueness(t *testing.T) {
	g := NewGenerator(512, 9, 1)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		tx := g.Next()
		if len(tx.Payload) != 512 {
			t.Fatalf("payload size %d", len(tx.Payload))
		}
		if tx.Client != 9 {
			t.Fatalf("client = %d", tx.Client)
		}
		txc := tx
		key := txc.ID().String()
		if seen[key] {
			t.Fatal("duplicate transaction generated")
		}
		seen[key] = true
	}
}

func TestGeneratorDeterministicBySeed(t *testing.T) {
	a, b := NewGenerator(64, 1, 7), NewGenerator(64, 1, 7)
	for i := 0; i < 10; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.ID() != tb.ID() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSaturatingSourceAlwaysFull(t *testing.T) {
	s := NewSaturatingSource(128, 5, 3)
	f := func(max uint8) bool {
		m := int(max%32) + 1
		batch := s.NextBatch(m)
		if len(batch) != m {
			return false
		}
		for _, tx := range batch {
			if len(tx.Payload) != 128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	s.MarkCommitted(make([]types.Transaction, 7))
	if s.Committed() != 7 {
		t.Fatalf("committed = %d", s.Committed())
	}
}

// Package workload provides transaction sources for FireLedger: a
// client-facing pool with lease semantics (the TX pool of the paper's Fig 3)
// and synthetic generators reproducing the evaluation's load model — random
// transactions of σ bytes, with every block filled to its maximal size β
// ("we simulate an intensive load by filling every block to its maximal
// size", §7.2).
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/statemachine"
	"repro/internal/types"
)

// Pool is a transaction pool with lease semantics: NextBatch leases
// transactions to a proposer; if the block carrying them never becomes
// definite, the lease expires and the transactions become available again,
// so client submissions are not lost to rescinded tentative blocks.
type Pool struct {
	leaseTimeout time.Duration

	mu        sync.Mutex
	queue     []types.Transaction
	leased    map[flcrypto.Hash]leasedTx
	committed map[flcrypto.Hash]bool
	nCommit   atomic.Uint64
}

type leasedTx struct {
	tx    types.Transaction
	since time.Time
}

// NewPool creates a pool. leaseTimeout guards against transactions leased
// into blocks that never finalize (default 5s).
func NewPool(leaseTimeout time.Duration) *Pool {
	if leaseTimeout == 0 {
		leaseTimeout = 5 * time.Second
	}
	return &Pool{
		leaseTimeout: leaseTimeout,
		leased:       make(map[flcrypto.Hash]leasedTx),
		committed:    make(map[flcrypto.Hash]bool),
	}
}

// Add submits a transaction. Duplicates of committed transactions are
// dropped.
func (p *Pool) Add(tx types.Transaction) {
	id := tx.ID()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.committed[id] {
		return
	}
	if _, inFlight := p.leased[id]; inFlight {
		return
	}
	p.queue = append(p.queue, tx)
}

// NextBatch leases up to max transactions (core.TxSource).
func (p *Pool) NextBatch(max int) []types.Transaction {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	// Reclaim expired leases first.
	for id, l := range p.leased {
		if now.Sub(l.since) > p.leaseTimeout {
			delete(p.leased, id)
			p.queue = append(p.queue, l.tx)
		}
	}
	n := len(p.queue)
	if n > max {
		n = max
	}
	batch := make([]types.Transaction, n)
	copy(batch, p.queue[:n])
	p.queue = p.queue[n:]
	for _, tx := range batch {
		p.leased[tx.ID()] = leasedTx{tx: tx, since: now}
	}
	return batch
}

// MarkCommitted retires transactions that reached a definite block
// (core.TxSource).
func (p *Pool) MarkCommitted(txs []types.Transaction) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, tx := range txs {
		id := tx.ID()
		delete(p.leased, id)
		if !p.committed[id] {
			p.committed[id] = true
			p.nCommit.Add(1)
		}
	}
}

// Pending reports the number of transactions waiting (available + leased).
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) + len(p.leased)
}

// Committed reports how many distinct transactions have been finalized.
func (p *Pool) Committed() uint64 { return p.nCommit.Load() }

// Generator produces random transactions of a fixed payload size — the
// paper's σ-byte random transactions (Table 2).
type Generator struct {
	mu           sync.Mutex
	rng          *rand.Rand
	size         int
	client       uint64
	seq          uint64
	compressible bool
	kvKeys       int
}

// NewGenerator creates a generator for σ = size payload bytes. client tags
// the transactions; seed makes the stream reproducible.
func NewGenerator(size int, client uint64, seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), size: size, client: client}
}

// SetCompressible switches the payload content from random bytes to
// structured text (distinct per transaction but highly redundant), modeling
// real ledger entries for compression experiments.
func (g *Generator) SetCompressible(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.compressible = on
}

// SetKV switches payloads from random bytes to state-machine Set commands
// cycling over a keys-sized keyspace, so the saturating load exercises a
// configured state backend (the state benchmarks). Payloads stay ≈ σ bytes:
// the value is padded to keep the write path comparable to the random load.
func (g *Generator) SetKV(keys int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.kvKeys = keys
}

// kvPayloadOverhead approximates the Set-command framing (op byte + two
// length-prefixed fields + key text) subtracted from σ to size the value.
const kvPayloadOverhead = 32

// ledgerPhrase is the repeating motif of compressible payloads.
var ledgerPhrase = []byte("transfer 100 units from account A to account B memo invoice; ")

// Next returns a fresh transaction.
func (g *Generator) Next() types.Transaction {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	if g.kvKeys > 0 {
		vlen := g.size - kvPayloadOverhead
		if vlen < 8 {
			vlen = 8
		}
		value := make([]byte, vlen)
		g.rng.Read(value)
		key := fmt.Sprintf("bench/%08d", g.seq%uint64(g.kvKeys))
		return types.Transaction{Client: g.client, Seq: g.seq, Payload: statemachine.EncodeSet(key, value)}
	}
	payload := make([]byte, g.size)
	if g.compressible {
		for off := 0; off < len(payload); off += len(ledgerPhrase) {
			copy(payload[off:], ledgerPhrase)
		}
		// A small unique prefix keeps transactions distinct.
		if len(payload) >= 8 {
			for i := 0; i < 8; i++ {
				payload[i] = byte(g.seq >> (8 * i))
			}
		}
	} else {
		g.rng.Read(payload)
	}
	return types.Transaction{Client: g.client, Seq: g.seq, Payload: payload}
}

// SaturatingSource is the §7.2 load model as a core.TxSource: every
// NextBatch returns a full batch of fresh random transactions, so proposers
// always fill their blocks to β — the "intensive load" used throughout the
// paper's throughput measurements. MarkCommitted only counts.
type SaturatingSource struct {
	gen       *Generator
	committed atomic.Uint64
}

// NewSaturatingSource creates a saturating source of σ = size byte
// transactions.
func NewSaturatingSource(size int, client uint64, seed int64) *SaturatingSource {
	return &SaturatingSource{gen: NewGenerator(size, client, seed)}
}

// SetCompressible switches payload content to compressible text (see
// Generator.SetCompressible).
func (s *SaturatingSource) SetCompressible(on bool) { s.gen.SetCompressible(on) }

// SetKV switches payloads to state-machine Set commands (see Generator.SetKV).
func (s *SaturatingSource) SetKV(keys int) { s.gen.SetKV(keys) }

// NextBatch returns max fresh transactions.
func (s *SaturatingSource) NextBatch(max int) []types.Transaction {
	out := make([]types.Transaction, max)
	for i := range out {
		out[i] = s.gen.Next()
	}
	return out
}

// MarkCommitted counts finalized transactions.
func (s *SaturatingSource) MarkCommitted(txs []types.Transaction) {
	s.committed.Add(uint64(len(txs)))
}

// Committed reports the number of finalized transactions.
func (s *SaturatingSource) Committed() uint64 { return s.committed.Load() }

package hotstuff

import "repro/internal/types"

// Thin aliases keeping the test file free of a second types import block.
func newTestEncoder() *types.Encoder         { return types.NewEncoder(0) }
func newTestDecoder(b []byte) *types.Decoder { return types.NewDecoder(b) }

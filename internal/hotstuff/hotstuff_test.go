package hotstuff

import (
	"sync"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
	"repro/internal/workload"
)

const testProto transport.ProtoID = 30

type cluster struct {
	t        *testing.T
	net      *transport.ChanNetwork
	muxes    []*transport.Mux
	replicas []*Replica

	mu   sync.Mutex
	logs [][]flcrypto.Hash // committed block hashes per replica
}

func newCluster(t *testing.T, n int, batch int) *cluster {
	t.Helper()
	ks := flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519)
	c := &cluster{
		t:    t,
		net:  transport.NewChanNetwork(transport.ChanConfig{N: n}),
		logs: make([][]flcrypto.Hash, n),
	}
	for i := 0; i < n; i++ {
		i := i
		mux := transport.NewMux(c.net.Endpoint(flcrypto.NodeID(i)))
		r := NewReplica(Config{
			Mux:         mux,
			Proto:       testProto,
			Registry:    ks.Registry,
			Priv:        ks.Privs[i],
			Pool:        workload.NewSaturatingSource(64, uint64(i), int64(i)),
			BatchSize:   batch,
			ViewTimeout: 250 * time.Millisecond,
			Tick:        10 * time.Millisecond,
			Deliver: func(blk *Block) {
				h := blk.Hash()
				c.mu.Lock()
				c.logs[i] = append(c.logs[i], h)
				c.mu.Unlock()
			},
		})
		mux.Start()
		r.Start()
		c.muxes = append(c.muxes, mux)
		c.replicas = append(c.replicas, r)
	}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			r.Stop()
		}
		for _, m := range c.muxes {
			m.Stop()
		}
		c.net.Close()
	})
	return c
}

func (c *cluster) waitCommitted(who []int, count int, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		c.mu.Lock()
		for _, i := range who {
			if len(c.logs[i]) < count {
				ok = false
				break
			}
		}
		c.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			c.mu.Lock()
			counts := make([]int, len(c.logs))
			for i := range c.logs {
				counts[i] = len(c.logs[i])
			}
			c.mu.Unlock()
			c.t.Fatalf("timed out waiting for %d commits; have %v", count, counts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (c *cluster) checkPrefix(who []int) {
	c.t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, i := range who {
		for _, j := range who {
			a, b := c.logs[i], c.logs[j]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k] != b[k] {
					c.t.Fatalf("commit logs diverge at %d between replicas %d and %d", k, i, j)
				}
			}
		}
	}
}

func allOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestHotStuffCommitsChain(t *testing.T) {
	c := newCluster(t, 4, 10)
	c.waitCommitted(allOf(4), 10, 20*time.Second)
	c.checkPrefix(allOf(4))
	m := c.replicas[0].Metrics()
	if m.CommittedTxs.Load() == 0 {
		t.Fatal("no transactions committed")
	}
}

func TestHotStuffEveryReplicaSignsEveryBlock(t *testing.T) {
	// The property the paper's comparison hinges on (§2): in HotStuff all
	// nodes sign each block, so SignOps grows with commits at every
	// replica, proposer or not.
	c := newCluster(t, 4, 10)
	c.waitCommitted(allOf(4), 8, 20*time.Second)
	for i, r := range c.replicas {
		if r.Metrics().SignOps.Load() < 8 {
			t.Fatalf("replica %d signed only %d times for 8+ commits", i, r.Metrics().SignOps.Load())
		}
	}
}

func TestHotStuffSevenNodes(t *testing.T) {
	c := newCluster(t, 7, 20)
	c.waitCommitted(allOf(7), 10, 30*time.Second)
	c.checkPrefix(allOf(7))
}

func TestHotStuffLeaderCrash(t *testing.T) {
	c := newCluster(t, 4, 10)
	c.waitCommitted(allOf(4), 3, 20*time.Second)
	// Crash the next few views' leader rotation victim: node 2.
	c.net.Crash(2)
	alive := []int{0, 1, 3}
	c.mu.Lock()
	base := len(c.logs[0])
	c.mu.Unlock()
	c.waitCommitted(alive, base+6, 60*time.Second)
	c.checkPrefix(alive)
	if c.replicas[0].Metrics().Timeouts.Load() == 0 {
		t.Fatal("no pacemaker timeouts despite a crashed leader")
	}
}

func TestQCVerifyRejectsForgeries(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	hash := flcrypto.Sum256([]byte("block"))
	qc := QC{View: 3, BlockHash: hash}
	for i := 0; i < 3; i++ {
		sig, err := ks.Privs[i].Sign(voteBody(3, hash))
		if err != nil {
			t.Fatal(err)
		}
		qc.Voters = append(qc.Voters, flcrypto.NodeID(i))
		qc.Sigs = append(qc.Sigs, sig)
	}
	if !qc.verify(ks.Registry, 3) {
		t.Fatal("valid QC rejected")
	}
	// Duplicate voters must not count twice.
	dup := QC{View: 3, BlockHash: hash,
		Voters: []flcrypto.NodeID{0, 0, 0},
		Sigs:   []flcrypto.Signature{qc.Sigs[0], qc.Sigs[0], qc.Sigs[0]}}
	if dup.verify(ks.Registry, 3) {
		t.Fatal("duplicate-voter QC accepted")
	}
	// Wrong view: signatures do not check out.
	wrong := qc
	wrong.View = 4
	if wrong.verify(ks.Registry, 3) {
		t.Fatal("view-shifted QC accepted")
	}
	// Genesis convention.
	genesis := QC{}
	if !genesis.verify(ks.Registry, 3) {
		t.Fatal("genesis QC rejected")
	}
}

func TestQCRoundTrip(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	hash := flcrypto.Sum256([]byte("b"))
	qc := QC{View: 9, BlockHash: hash}
	for i := 0; i < 3; i++ {
		sig, _ := ks.Privs[i].Sign(voteBody(9, hash))
		qc.Voters = append(qc.Voters, flcrypto.NodeID(i))
		qc.Sigs = append(qc.Sigs, sig)
	}
	blk := Block{View: 10, Parent: hash, Justify: qc, Batch: [][]byte{{1, 2}, {3}}}
	e := newTestEncoder()
	blk.encode(e)
	d := newTestDecoder(e.Bytes())
	got := decodeBlock(d)
	if d.Finish() != nil {
		t.Fatal("decode failed")
	}
	if got.Hash() != blk.Hash() {
		t.Fatal("block hash changed across round trip")
	}
	if !got.Justify.verify(ks.Registry, 3) {
		t.Fatal("QC invalid after round trip")
	}
}

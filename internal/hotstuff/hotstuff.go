// Package hotstuff implements chained HotStuff (Yin et al., the paper's
// [74]) as the comparison baseline of Fig 16: a rotating-leader BFT protocol
// in which each view's leader proposes a block extending the highest known
// quorum certificate, replicas send signed votes to the next leader, and a
// block is committed when it heads a three-chain of directly chained
// certified blocks.
//
// The original uses threshold signature aggregation; stdlib-only Go has no
// pairing-based crypto, so a quorum certificate here is the set of n−f
// individual Ed25519 votes. This preserves exactly the property the paper's
// comparison turns on — every replica signs every block in HotStuff, while
// in FireLedger only the proposer signs (§2) — and slightly favors HotStuff
// on CPU (Ed25519 is cheaper than BLS).
package hotstuff

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
	"repro/internal/types"
)

// Message kinds.
const (
	kindProposal = 1
	kindVote     = 2
	kindNewView  = 3
)

// Block is a HotStuff node: a batch of requests chained to a parent and
// justified by a quorum certificate for an ancestor.
type Block struct {
	View    uint64
	Parent  flcrypto.Hash
	Justify QC
	Batch   [][]byte
}

// Hash returns the block's identity.
func (b *Block) Hash() flcrypto.Hash {
	h := flcrypto.NewHasher()
	h.WriteUint64(b.View)
	h.Write(b.Parent[:])
	h.Write(b.Justify.BlockHash[:])
	h.WriteUint64(b.Justify.View)
	h.WriteUint64(uint64(len(b.Batch)))
	for _, req := range b.Batch {
		rh := flcrypto.Sum256(req)
		h.Write(rh[:])
	}
	return h.Sum()
}

func (b *Block) encode(e *types.Encoder) {
	e.Uint64(b.View)
	e.Hash(b.Parent)
	b.Justify.encode(e)
	e.Uint32(uint32(len(b.Batch)))
	for _, req := range b.Batch {
		e.Bytes32(req)
	}
}

func decodeBlock(d *types.Decoder) Block {
	var b Block
	b.View = d.Uint64()
	b.Parent = d.Hash()
	b.Justify = decodeQC(d)
	n := d.Uint32()
	if d.Err() != nil || n > 1<<20 {
		return b
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		b.Batch = append(b.Batch, append([]byte(nil), d.Bytes32()...))
	}
	return b
}

// voteBody is the byte string a vote signs.
func voteBody(view uint64, hash flcrypto.Hash) []byte {
	e := types.NewEncoder(48)
	e.Bytes32([]byte("hotstuff/vote"))
	e.Uint64(view)
	e.Hash(hash)
	return e.Bytes()
}

// QC is a quorum certificate: n−f signed votes on (view, block hash).
type QC struct {
	View      uint64
	BlockHash flcrypto.Hash
	Voters    []flcrypto.NodeID
	Sigs      []flcrypto.Signature
}

func (qc *QC) encode(e *types.Encoder) {
	e.Uint64(qc.View)
	e.Hash(qc.BlockHash)
	e.Uint32(uint32(len(qc.Voters)))
	for i := range qc.Voters {
		e.Int64(int64(qc.Voters[i]))
		e.Bytes32(qc.Sigs[i])
	}
}

func decodeQC(d *types.Decoder) QC {
	var qc QC
	qc.View = d.Uint64()
	qc.BlockHash = d.Hash()
	n := d.Uint32()
	if d.Err() != nil || n > 1<<12 {
		return qc
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		qc.Voters = append(qc.Voters, flcrypto.NodeID(d.Int64()))
		qc.Sigs = append(qc.Sigs, append(flcrypto.Signature(nil), d.Bytes32()...))
	}
	return qc
}

// verify checks the certificate against the registry: n−f distinct valid
// votes. The genesis QC (zero hash, view 0) is valid by convention.
func (qc *QC) verify(reg *flcrypto.Registry, quorum int) bool {
	if qc.View == 0 && qc.BlockHash.IsZero() {
		return true
	}
	if len(qc.Voters) != len(qc.Sigs) {
		return false
	}
	body := voteBody(qc.View, qc.BlockHash)
	seen := make(map[flcrypto.NodeID]bool)
	for i, voter := range qc.Voters {
		if seen[voter] {
			continue
		}
		if !reg.Verify(voter, body, qc.Sigs[i]) {
			continue
		}
		seen[voter] = true
	}
	return len(seen) >= quorum
}

// TxSource matches core.TxSource.
type TxSource interface {
	NextBatch(max int) []types.Transaction
	MarkCommitted(txs []types.Transaction)
}

// Config assembles a replica.
type Config struct {
	Mux      *transport.Mux
	Proto    transport.ProtoID
	Registry *flcrypto.Registry
	Priv     flcrypto.PrivateKey
	// Pool supplies the batches (β transactions of σ bytes).
	Pool TxSource
	// BatchSize is β.
	BatchSize int
	// Deliver receives committed blocks in chain order.
	Deliver func(blk *Block)
	// OnPropose observes this replica's own proposals (for latency
	// measurement: proposal time → Deliver time of the same hash).
	OnPropose func(hash flcrypto.Hash)
	// ViewTimeout is the pacemaker's base timeout (default 400ms).
	ViewTimeout time.Duration
	// Tick is the pacemaker granularity (default 20ms).
	Tick time.Duration
}

// Metrics counts replica activity.
type Metrics struct {
	Committed    atomic.Uint64 // blocks
	CommittedTxs atomic.Uint64
	SignOps      atomic.Uint64
	VerifyOps    atomic.Uint64
	Timeouts     atomic.Uint64
}

type event struct {
	from flcrypto.NodeID
	buf  []byte
}

// Replica is one chained-HotStuff node.
type Replica struct {
	cfg  Config
	id   flcrypto.NodeID
	n, f int

	events  chan event
	stop    chan struct{}
	once    sync.Once
	stopped sync.WaitGroup

	metrics Metrics

	// Event-loop state.
	view     uint64
	highQC   QC
	lockedQC QC
	blocks   map[flcrypto.Hash]*Block
	executed map[flcrypto.Hash]bool
	lastExec flcrypto.Hash // tip of the executed chain
	votes    map[uint64]map[flcrypto.NodeID]flcrypto.Signature
	voteHash map[uint64]flcrypto.Hash
	newViews map[uint64]map[flcrypto.NodeID]bool
	voted    map[uint64]bool
	deadline time.Time
	proposed map[uint64]bool
}

// NewReplica creates a replica; Start runs it.
func NewReplica(cfg Config) *Replica {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 100
	}
	if cfg.ViewTimeout == 0 {
		cfg.ViewTimeout = 400 * time.Millisecond
	}
	if cfg.Tick == 0 {
		cfg.Tick = 20 * time.Millisecond
	}
	r := &Replica{
		cfg:      cfg,
		id:       cfg.Mux.ID(),
		n:        cfg.Mux.N(),
		f:        (cfg.Mux.N() - 1) / 3,
		events:   make(chan event, 4096),
		stop:     make(chan struct{}),
		view:     1,
		blocks:   make(map[flcrypto.Hash]*Block),
		executed: make(map[flcrypto.Hash]bool),
		votes:    make(map[uint64]map[flcrypto.NodeID]flcrypto.Signature),
		voteHash: make(map[uint64]flcrypto.Hash),
		newViews: make(map[uint64]map[flcrypto.NodeID]bool),
		voted:    make(map[uint64]bool),
		proposed: make(map[uint64]bool),
	}
	cfg.Mux.Handle(cfg.Proto, func(from flcrypto.NodeID, buf []byte) {
		select {
		case r.events <- event{from: from, buf: append([]byte(nil), buf...)}:
		case <-r.stop:
		}
	})
	return r
}

// Metrics returns the replica's counters.
func (r *Replica) Metrics() *Metrics { return &r.metrics }

// Start launches the event loop; the leader of view 1 self-starts.
func (r *Replica) Start() {
	r.stopped.Add(1)
	go r.run()
}

// Stop terminates the replica.
func (r *Replica) Stop() {
	r.once.Do(func() { close(r.stop) })
	r.stopped.Wait()
}

func (r *Replica) quorum() int { return r.n - r.f }

func (r *Replica) leaderOf(view uint64) flcrypto.NodeID {
	return flcrypto.NodeID(view % uint64(r.n))
}

func (r *Replica) run() {
	defer r.stopped.Done()
	ticker := time.NewTicker(r.cfg.Tick)
	defer ticker.Stop()
	r.deadline = time.Now().Add(r.cfg.ViewTimeout)
	if r.leaderOf(r.view) == r.id {
		r.propose()
	}
	for {
		select {
		case <-r.stop:
			return
		case ev := <-r.events:
			r.handle(ev)
		case <-ticker.C:
			if time.Now().After(r.deadline) {
				r.onTimeout()
			}
		}
	}
}

func (r *Replica) onTimeout() {
	r.metrics.Timeouts.Add(1)
	r.view++
	r.deadline = time.Now().Add(r.cfg.ViewTimeout)
	// Pacemaker: hand the next leader our high QC.
	e := types.NewEncoder(256)
	e.Uint8(kindNewView)
	e.Uint64(r.view)
	r.highQC.encode(e)
	r.cfg.Mux.Send(r.cfg.Proto, r.leaderOf(r.view), e.Bytes())
}

func (r *Replica) handle(ev event) {
	d := types.NewDecoder(ev.buf)
	switch d.Uint8() {
	case kindProposal:
		blk := decodeBlock(d)
		sig := d.Bytes32()
		if d.Finish() != nil {
			return
		}
		r.onProposal(ev.from, blk, sig)
	case kindVote:
		view := d.Uint64()
		hash := d.Hash()
		sig := append(flcrypto.Signature(nil), d.Bytes32()...)
		if d.Finish() != nil {
			return
		}
		r.onVote(ev.from, view, hash, sig)
	case kindNewView:
		view := d.Uint64()
		qc := decodeQC(d)
		if d.Err() != nil {
			return
		}
		r.onNewView(ev.from, view, qc)
	}
}

// propose builds and broadcasts the leader's block for the current view.
func (r *Replica) propose() {
	if r.proposed[r.view] {
		return
	}
	r.proposed[r.view] = true
	var batch [][]byte
	if r.cfg.Pool != nil {
		for _, tx := range r.cfg.Pool.NextBatch(r.cfg.BatchSize) {
			e := types.NewEncoder(tx.Size())
			tx.Encode(e)
			batch = append(batch, e.Bytes())
		}
	}
	blk := Block{View: r.view, Parent: r.highQC.BlockHash, Justify: r.highQC, Batch: batch}
	hash := blk.Hash()
	r.blocks[hash] = &blk
	if r.cfg.OnPropose != nil {
		r.cfg.OnPropose(hash)
	}
	e := types.NewEncoder(1024)
	e.Uint8(kindProposal)
	blk.encode(e)
	sig, err := r.cfg.Priv.Sign(hash[:])
	if err != nil {
		return
	}
	r.metrics.SignOps.Add(1)
	e.Bytes32(sig)
	r.cfg.Mux.Broadcast(r.cfg.Proto, e.Bytes())
}

func (r *Replica) onProposal(from flcrypto.NodeID, blk Block, sig flcrypto.Signature) {
	if from != r.leaderOf(blk.View) {
		return
	}
	hash := blk.Hash()
	if !r.cfg.Registry.Verify(from, hash[:], sig) {
		return
	}
	r.metrics.VerifyOps.Add(1)
	if !blk.Justify.verify(r.cfg.Registry, r.quorum()) {
		return
	}
	r.metrics.VerifyOps.Add(uint64(len(blk.Justify.Sigs)))
	r.blocks[hash] = &blk

	// Adopt the justify QC.
	r.updateHighQC(blk.Justify)

	// Chained commit rule: a three-chain of directly chained certified
	// blocks commits its tail.
	r.tryCommit(&blk)

	// Safety rule: vote if the block's justify is at least as recent as
	// our lock, or the block extends the locked block.
	if blk.View < r.view || r.voted[blk.View] {
		return
	}
	safe := blk.Justify.View >= r.lockedQC.View || r.extendsLocked(&blk)
	if !safe {
		return
	}
	r.voted[blk.View] = true
	r.view = blk.View
	r.advanceView(blk.View + 1)

	vsig, err := r.cfg.Priv.Sign(voteBody(blk.View, hash))
	if err != nil {
		return
	}
	r.metrics.SignOps.Add(1)
	e := types.NewEncoder(128)
	e.Uint8(kindVote)
	e.Uint64(blk.View)
	e.Hash(hash)
	e.Bytes32(vsig)
	r.cfg.Mux.Send(r.cfg.Proto, r.leaderOf(blk.View+1), e.Bytes())
}

func (r *Replica) extendsLocked(blk *Block) bool {
	if r.lockedQC.BlockHash.IsZero() {
		return true
	}
	cur := blk.Parent
	for i := 0; i < 64; i++ {
		if cur == r.lockedQC.BlockHash {
			return true
		}
		parent, ok := r.blocks[cur]
		if !ok {
			return false
		}
		cur = parent.Parent
	}
	return false
}

func (r *Replica) updateHighQC(qc QC) {
	if qc.View > r.highQC.View {
		r.highQC = qc
	}
	// Two-chain lock: lock on the QC one level below the high QC.
	if b, ok := r.blocks[qc.BlockHash]; ok {
		if b.Justify.View > r.lockedQC.View {
			r.lockedQC = b.Justify
		}
	}
}

// tryCommit applies the three-chain rule to the proposal's justify chain.
func (r *Replica) tryCommit(blk *Block) {
	b2, ok := r.blocks[blk.Justify.BlockHash]
	if !ok {
		return
	}
	b1, ok := r.blocks[b2.Justify.BlockHash]
	if !ok {
		return
	}
	b0, ok := r.blocks[b1.Justify.BlockHash]
	if !ok {
		return
	}
	if b2.Parent != b2.Justify.BlockHash || b1.Parent != b1.Justify.BlockHash {
		return // not directly chained
	}
	r.commitChain(b1.Justify.BlockHash, b0)
}

// commitChain executes the chain up to hash (inclusive), oldest first.
func (r *Replica) commitChain(hash flcrypto.Hash, blk *Block) {
	if r.executed[hash] || hash.IsZero() {
		return
	}
	// Recurse to the parent first.
	if parent, ok := r.blocks[blk.Parent]; ok && !r.executed[blk.Parent] && !blk.Parent.IsZero() {
		r.commitChain(blk.Parent, parent)
	}
	r.executed[hash] = true
	r.lastExec = hash
	r.metrics.Committed.Add(1)
	r.metrics.CommittedTxs.Add(uint64(len(blk.Batch)))
	if r.cfg.Deliver != nil {
		r.cfg.Deliver(blk)
	}
}

func (r *Replica) onVote(from flcrypto.NodeID, view uint64, hash flcrypto.Hash, sig flcrypto.Signature) {
	// Votes for view v elect us leader of view v+1.
	if r.leaderOf(view+1) != r.id {
		return
	}
	if !r.cfg.Registry.Verify(from, voteBody(view, hash), sig) {
		return
	}
	r.metrics.VerifyOps.Add(1)
	set := r.votes[view]
	if set == nil {
		set = make(map[flcrypto.NodeID]flcrypto.Signature)
		r.votes[view] = set
		r.voteHash[view] = hash
	}
	if r.voteHash[view] != hash {
		return // conflicting vote; the leader only aggregates one branch
	}
	if _, dup := set[from]; dup {
		return
	}
	set[from] = sig
	if len(set) >= r.quorum() {
		qc := QC{View: view, BlockHash: hash}
		for voter, s := range set {
			qc.Voters = append(qc.Voters, voter)
			qc.Sigs = append(qc.Sigs, s)
		}
		r.updateHighQC(qc)
		r.advanceView(view + 1)
		if r.view == view+1 {
			r.propose()
		}
	}
}

func (r *Replica) onNewView(from flcrypto.NodeID, view uint64, qc QC) {
	if !qc.verify(r.cfg.Registry, r.quorum()) {
		return
	}
	r.metrics.VerifyOps.Add(uint64(len(qc.Sigs)))
	r.updateHighQC(qc)
	if r.leaderOf(view) != r.id || view < r.view {
		return
	}
	set := r.newViews[view]
	if set == nil {
		set = make(map[flcrypto.NodeID]bool)
		r.newViews[view] = set
	}
	set[from] = true
	// A quorum of timeouts elects this replica leader of the new view.
	if len(set) >= r.quorum() {
		r.advanceView(view)
		if r.view == view {
			r.propose()
		}
	}
}

// advanceView moves the pacemaker forward and prunes stale per-view state.
func (r *Replica) advanceView(view uint64) {
	if view <= r.view {
		return
	}
	r.view = view
	r.deadline = time.Now().Add(r.cfg.ViewTimeout)
	if view > 128 {
		cutoff := view - 128
		for v := range r.votes {
			if v < cutoff {
				delete(r.votes, v)
				delete(r.voteHash, v)
			}
		}
		for v := range r.voted {
			if v < cutoff {
				delete(r.voted, v)
			}
		}
		for v := range r.newViews {
			if v < cutoff {
				delete(r.newViews, v)
			}
		}
		for v := range r.proposed {
			if v < cutoff {
				delete(r.proposed, v)
			}
		}
	}
}

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
)

// ChanConfig configures an in-process simulated network.
type ChanConfig struct {
	// N is the cluster size.
	N int
	// Latency models one-way propagation delay; nil means Zero.
	Latency LatencyModel
	// EgressBytesPerSec models each node's shared NIC egress bandwidth:
	// a broadcast of a B-byte block to n−1 peers occupies the sender's
	// egress for (n−1)·B / rate. Zero disables bandwidth modeling.
	// The paper's VMs have "up to 10 Gbps" links (§7).
	EgressBytesPerSec float64
	// Clock supplies time reads and delivery timers (nil means WallClock).
	// Simulated runs inject a seeded VirtualClock so the delivery schedule
	// is a deterministic function of the send sequence.
	Clock Clock
	// Faults, when non-nil, is consulted once per non-self Send for a
	// per-message fault decision (drop / duplicate / extra delay). The
	// simulation layer (internal/simnet) installs a seeded injector here;
	// SetFaultInjector swaps it at runtime.
	Faults FaultInjector
	// Trace, when non-nil, observes every delivery (including loopback)
	// synchronously at the instant the message enters the target mailbox.
	// Used by the determinism regression tests to capture delivery traces.
	Trace func(TraceEvent)
}

// Fault is one message's injected fate.
type Fault struct {
	// Drop discards the message at send time (indistinguishable, to the
	// protocols, from an arbitrarily slow link).
	Drop bool
	// Duplicate delivers the message twice; the copy draws its own latency.
	Duplicate bool
	// ExtraDelay is added to the latency model's draw. Per-link FIFO order
	// still holds (the link horizon clamps every message at or after its
	// predecessor), so this skews timing without violating the §3.1 no-
	// reorder link contract.
	ExtraDelay time.Duration
}

// FaultInjector decides per-message faults. Implementations must be safe for
// concurrent use; deterministic injectors serialize their RNG internally.
type FaultInjector interface {
	FaultFor(from, to flcrypto.NodeID, size int) Fault
}

// TraceEvent is one delivered message, as observed by ChanConfig.Trace.
type TraceEvent struct {
	At       time.Time
	From, To flcrypto.NodeID
	Payload  []byte // the delivered bytes; observers must not mutate
}

// Network is the restart-capable in-process fabric the cluster harnesses
// run on: endpoints, crash/heal, link filtering, and reattachment. Both
// ChanNetwork and simnet.SimNetwork implement it.
type Network interface {
	Endpoint(id flcrypto.NodeID) Endpoint
	Reattach(id flcrypto.NodeID) Endpoint
	Crash(id flcrypto.NodeID)
	Heal(id flcrypto.NodeID)
	SetLinkFilter(f func(from, to flcrypto.NodeID) bool)
	Close()
}

var _ Network = (*ChanNetwork)(nil)

// ChanNetwork is the in-process network used by tests, examples, and the
// benchmark harness. It plays the role of the paper's AWS fabric and adds
// the fault injection needed for §7.4: crashes, per-link omission, and
// partitions.
type ChanNetwork struct {
	cfg   ChanConfig
	eps   []*chanEndpoint
	now0  time.Time
	clock Clock

	mu        sync.RWMutex
	crashed   map[flcrypto.NodeID]bool
	blockLink func(from, to flcrypto.NodeID) bool
	faults    FaultInjector

	faultDrops atomic.Uint64
	faultDups  atomic.Uint64
}

// NewChanNetwork creates a network of cfg.N endpoints.
func NewChanNetwork(cfg ChanConfig) *ChanNetwork {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("transport: invalid cluster size %d", cfg.N))
	}
	if cfg.Latency == nil {
		cfg.Latency = Zero
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	n := &ChanNetwork{
		cfg:     cfg,
		clock:   cfg.Clock,
		now0:    cfg.Clock.Now(),
		crashed: make(map[flcrypto.NodeID]bool),
		faults:  cfg.Faults,
	}
	n.eps = make([]*chanEndpoint, cfg.N)
	for i := range n.eps {
		n.eps[i] = &chanEndpoint{
			net:   n,
			id:    flcrypto.NodeID(i),
			mbox:  newMailbox(),
			links: make([]linkQueue, cfg.N),
		}
	}
	return n
}

// Endpoint returns node id's attachment. It panics on out-of-range ids;
// membership is static in a permissioned deployment.
func (n *ChanNetwork) Endpoint(id flcrypto.NodeID) Endpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eps[id]
}

// endpoint resolves id's current attachment at delivery time, so senders
// never hold a reference to a pre-restart endpoint.
func (n *ChanNetwork) endpoint(id flcrypto.NodeID) *chanEndpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eps[id]
}

// Reattach replaces id's endpoint with a fresh one — the restart path for
// in-process experiments: a node that was stopped (its endpoint closed)
// comes back with an empty mailbox, like a rebooted process re-binding its
// socket. The old endpoint stays closed; messages still in flight toward it
// are delivered to the new mailbox (the link resolves the target at
// delivery time), which models packets arriving just after the reboot.
func (n *ChanNetwork) Reattach(id flcrypto.NodeID) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &chanEndpoint{
		net:   n,
		id:    id,
		mbox:  newMailbox(),
		links: make([]linkQueue, n.cfg.N),
	}
	n.eps[id] = ep
	return ep
}

// Crash makes id silent: nothing it sends is delivered anymore and nothing
// reaches it. This models the fail-stop crashes of §7.4.1.
func (n *ChanNetwork) Crash(id flcrypto.NodeID) {
	n.mu.Lock()
	n.crashed[id] = true
	n.mu.Unlock()
}

// Heal undoes Crash for id.
func (n *ChanNetwork) Heal(id flcrypto.NodeID) {
	n.mu.Lock()
	delete(n.crashed, id)
	n.mu.Unlock()
}

// SetLinkFilter installs a predicate that blocks (from→to) links when it
// returns true. Used to inject omission failures and partitions. Passing nil
// removes the filter.
func (n *ChanNetwork) SetLinkFilter(f func(from, to flcrypto.NodeID) bool) {
	n.mu.Lock()
	n.blockLink = f
	n.mu.Unlock()
}

// SetFaultInjector installs (or, with nil, removes) the per-message fault
// injector at runtime. The simulation layer swaps injectors between fault
// epochs.
func (n *ChanNetwork) SetFaultInjector(f FaultInjector) {
	n.mu.Lock()
	n.faults = f
	n.mu.Unlock()
}

func (n *ChanNetwork) faultFor(from, to flcrypto.NodeID, size int) Fault {
	n.mu.RLock()
	f := n.faults
	n.mu.RUnlock()
	if f == nil {
		return Fault{}
	}
	return f.FaultFor(from, to, size)
}

// FaultDrops reports how many messages the fault injector has discarded.
func (n *ChanNetwork) FaultDrops() uint64 { return n.faultDrops.Load() }

// FaultDups reports how many duplicate deliveries the injector has minted.
func (n *ChanNetwork) FaultDups() uint64 { return n.faultDups.Load() }

func (n *ChanNetwork) linkBlocked(from, to flcrypto.NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed[from] || n.crashed[to] {
		return true
	}
	return n.blockLink != nil && n.blockLink(from, to)
}

// BytesSent reports the cumulative payload bytes node id has sent (excluding
// self-delivery), for bandwidth accounting in experiments. The counter
// resets when the node is Reattached.
func (n *ChanNetwork) BytesSent(id flcrypto.NodeID) uint64 {
	return atomic.LoadUint64(&n.endpoint(id).bytesSent)
}

// MessagesSent reports the cumulative message count node id has sent
// (excluding self-delivery). The counter resets when the node is Reattached.
func (n *ChanNetwork) MessagesSent(id flcrypto.NodeID) uint64 {
	return atomic.LoadUint64(&n.endpoint(id).msgsSent)
}

// Close shuts down every endpoint.
func (n *ChanNetwork) Close() {
	n.mu.RLock()
	eps := append([]*chanEndpoint(nil), n.eps...)
	n.mu.RUnlock()
	for _, ep := range eps {
		ep.Close()
	}
}

type chanEndpoint struct {
	net  *ChanNetwork
	id   flcrypto.NodeID
	mbox *mailbox

	closed atomic.Bool

	// egress is the time the node's NIC becomes free, for bandwidth
	// modeling; links[j] holds the FIFO queue of id→j messages awaiting
	// their delivery timers.
	mu     sync.Mutex
	egress time.Time
	links  []linkQueue

	bytesSent uint64
	msgsSent  uint64
}

// linkQueue keeps one ordered pair's in-flight messages. Delivery timers
// each release the queue *head*, not "their" message, so FIFO order holds
// even when the runtime fires timer callbacks out of deadline order.
type linkQueue struct {
	mu    sync.Mutex
	queue []Message
	last  time.Time // monotone delivery horizon for the link
}

func (e *chanEndpoint) ID() flcrypto.NodeID { return e.id }
func (e *chanEndpoint) N() int              { return e.net.cfg.N }

func (e *chanEndpoint) Recv() <-chan Message { return e.mbox.out }

func (e *chanEndpoint) Close() error {
	if e.closed.Swap(true) {
		return ErrClosed
	}
	e.mbox.close()
	return nil
}

func (e *chanEndpoint) Send(to flcrypto.NodeID, payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if int(to) < 0 || int(to) >= e.net.cfg.N {
		return fmt.Errorf("transport: send to unknown node %d", to)
	}
	if to == e.id {
		// Loopback: immediate, no NIC cost.
		if tr := e.net.cfg.Trace; tr != nil {
			tr(TraceEvent{At: e.net.clock.Now(), From: e.id, To: e.id, Payload: payload})
		}
		e.mbox.put(Message{From: e.id, Payload: payload})
		return nil
	}
	if e.net.linkBlocked(e.id, to) {
		// Blocked links silently drop: from the protocol's point of view
		// this is indistinguishable from an arbitrarily slow link, which
		// is exactly the asynchronous-period behavior being modeled.
		return nil
	}
	fault := e.net.faultFor(e.id, to, len(payload))
	if fault.Drop {
		e.net.faultDrops.Add(1)
		return nil
	}
	atomic.AddUint64(&e.bytesSent, uint64(len(payload)))
	atomic.AddUint64(&e.msgsSent, 1)

	now := e.net.clock.Now()
	e.mu.Lock()
	sendDone := now
	if rate := e.net.cfg.EgressBytesPerSec; rate > 0 {
		if e.egress.Before(now) {
			e.egress = now
		}
		e.egress = e.egress.Add(time.Duration(float64(len(payload)) / rate * float64(time.Second)))
		sendDone = e.egress
	}
	e.mu.Unlock()
	e.enqueue(to, payload, sendDone, fault.ExtraDelay)
	if fault.Duplicate {
		// The copy draws its own latency, so it trails (or lands with) the
		// original under the link's FIFO horizon.
		e.net.faultDups.Add(1)
		e.enqueue(to, payload, sendDone, fault.ExtraDelay)
	}
	return nil
}

// enqueue schedules one delivery of payload on the id→to link at
// sendDone + latency draw + extraDelay, clamped to the link's FIFO horizon.
func (e *chanEndpoint) enqueue(to flcrypto.NodeID, payload []byte, sendDone time.Time, extraDelay time.Duration) {
	deliverAt := sendDone.Add(e.net.cfg.Latency.Delay(e.id, to) + extraDelay)

	lq := &e.links[to]
	lq.mu.Lock()
	if deliverAt.Before(lq.last) {
		deliverAt = lq.last // a message never overtakes its predecessor's horizon
	}
	lq.last = deliverAt
	lq.queue = append(lq.queue, Message{From: e.id, Payload: payload})
	lq.mu.Unlock()

	delay := deliverAt.Sub(e.net.clock.Now())
	if _, virtual := e.net.clock.(*VirtualClock); delay <= 50*time.Microsecond && !virtual {
		// Wall-clock fast path: a due message skips the timer. Virtual
		// clocks always go through AfterFunc so delivery order is a pure
		// function of (deadline, registration) even for zero-latency links.
		e.deliverHead(to, lq)
		return
	}
	e.net.clock.AfterFunc(delay, func() { e.deliverHead(to, lq) })
}

// deliverHead releases the oldest queued message on the link. Every send
// schedules exactly one deliverHead, so counts match; taking the head keeps
// the link FIFO regardless of timer callback scheduling order.
func (e *chanEndpoint) deliverHead(to flcrypto.NodeID, lq *linkQueue) {
	lq.mu.Lock()
	if len(lq.queue) == 0 {
		lq.mu.Unlock()
		return
	}
	msg := lq.queue[0]
	lq.queue = lq.queue[1:]
	lq.mu.Unlock()
	// Re-check fault state at delivery time: messages in flight when a
	// crash or partition is injected are dropped, like packets on a cut
	// cable.
	if e.net.linkBlocked(msg.From, to) {
		return
	}
	if tr := e.net.cfg.Trace; tr != nil {
		tr(TraceEvent{At: e.net.clock.Now(), From: msg.From, To: to, Payload: msg.Payload})
	}
	// Resolve the target at delivery time: a Reattach between send and
	// delivery routes the message to the restarted node's fresh mailbox.
	e.net.endpoint(to).mbox.put(msg)
}

// Broadcast shares one payload slice across all n deliveries — no per-peer
// copy. Senders hand ownership of the slice to the transport and must not
// mutate it afterwards; receivers treat inbound payloads as read-only.
func (e *chanEndpoint) Broadcast(payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	for i := 0; i < e.net.cfg.N; i++ {
		if err := e.Send(flcrypto.NodeID(i), payload); err != nil {
			return err
		}
	}
	return nil
}

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
)

// ChanConfig configures an in-process simulated network.
type ChanConfig struct {
	// N is the cluster size.
	N int
	// Latency models one-way propagation delay; nil means Zero.
	Latency LatencyModel
	// EgressBytesPerSec models each node's shared NIC egress bandwidth:
	// a broadcast of a B-byte block to n−1 peers occupies the sender's
	// egress for (n−1)·B / rate. Zero disables bandwidth modeling.
	// The paper's VMs have "up to 10 Gbps" links (§7).
	EgressBytesPerSec float64
}

// ChanNetwork is the in-process network used by tests, examples, and the
// benchmark harness. It plays the role of the paper's AWS fabric and adds
// the fault injection needed for §7.4: crashes, per-link omission, and
// partitions.
type ChanNetwork struct {
	cfg  ChanConfig
	eps  []*chanEndpoint
	now0 time.Time

	mu        sync.RWMutex
	crashed   map[flcrypto.NodeID]bool
	blockLink func(from, to flcrypto.NodeID) bool
}

// NewChanNetwork creates a network of cfg.N endpoints.
func NewChanNetwork(cfg ChanConfig) *ChanNetwork {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("transport: invalid cluster size %d", cfg.N))
	}
	if cfg.Latency == nil {
		cfg.Latency = Zero
	}
	n := &ChanNetwork{
		cfg:     cfg,
		now0:    time.Now(),
		crashed: make(map[flcrypto.NodeID]bool),
	}
	n.eps = make([]*chanEndpoint, cfg.N)
	for i := range n.eps {
		n.eps[i] = &chanEndpoint{
			net:   n,
			id:    flcrypto.NodeID(i),
			mbox:  newMailbox(),
			links: make([]linkQueue, cfg.N),
		}
	}
	return n
}

// Endpoint returns node id's attachment. It panics on out-of-range ids;
// membership is static in a permissioned deployment.
func (n *ChanNetwork) Endpoint(id flcrypto.NodeID) Endpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eps[id]
}

// endpoint resolves id's current attachment at delivery time, so senders
// never hold a reference to a pre-restart endpoint.
func (n *ChanNetwork) endpoint(id flcrypto.NodeID) *chanEndpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eps[id]
}

// Reattach replaces id's endpoint with a fresh one — the restart path for
// in-process experiments: a node that was stopped (its endpoint closed)
// comes back with an empty mailbox, like a rebooted process re-binding its
// socket. The old endpoint stays closed; messages still in flight toward it
// are delivered to the new mailbox (the link resolves the target at
// delivery time), which models packets arriving just after the reboot.
func (n *ChanNetwork) Reattach(id flcrypto.NodeID) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &chanEndpoint{
		net:   n,
		id:    id,
		mbox:  newMailbox(),
		links: make([]linkQueue, n.cfg.N),
	}
	n.eps[id] = ep
	return ep
}

// Crash makes id silent: nothing it sends is delivered anymore and nothing
// reaches it. This models the fail-stop crashes of §7.4.1.
func (n *ChanNetwork) Crash(id flcrypto.NodeID) {
	n.mu.Lock()
	n.crashed[id] = true
	n.mu.Unlock()
}

// Heal undoes Crash for id.
func (n *ChanNetwork) Heal(id flcrypto.NodeID) {
	n.mu.Lock()
	delete(n.crashed, id)
	n.mu.Unlock()
}

// SetLinkFilter installs a predicate that blocks (from→to) links when it
// returns true. Used to inject omission failures and partitions. Passing nil
// removes the filter.
func (n *ChanNetwork) SetLinkFilter(f func(from, to flcrypto.NodeID) bool) {
	n.mu.Lock()
	n.blockLink = f
	n.mu.Unlock()
}

func (n *ChanNetwork) linkBlocked(from, to flcrypto.NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed[from] || n.crashed[to] {
		return true
	}
	return n.blockLink != nil && n.blockLink(from, to)
}

// BytesSent reports the cumulative payload bytes node id has sent (excluding
// self-delivery), for bandwidth accounting in experiments. The counter
// resets when the node is Reattached.
func (n *ChanNetwork) BytesSent(id flcrypto.NodeID) uint64 {
	return atomic.LoadUint64(&n.endpoint(id).bytesSent)
}

// MessagesSent reports the cumulative message count node id has sent
// (excluding self-delivery). The counter resets when the node is Reattached.
func (n *ChanNetwork) MessagesSent(id flcrypto.NodeID) uint64 {
	return atomic.LoadUint64(&n.endpoint(id).msgsSent)
}

// Close shuts down every endpoint.
func (n *ChanNetwork) Close() {
	n.mu.RLock()
	eps := append([]*chanEndpoint(nil), n.eps...)
	n.mu.RUnlock()
	for _, ep := range eps {
		ep.Close()
	}
}

type chanEndpoint struct {
	net  *ChanNetwork
	id   flcrypto.NodeID
	mbox *mailbox

	closed atomic.Bool

	// egress is the time the node's NIC becomes free, for bandwidth
	// modeling; links[j] holds the FIFO queue of id→j messages awaiting
	// their delivery timers.
	mu     sync.Mutex
	egress time.Time
	links  []linkQueue

	bytesSent uint64
	msgsSent  uint64
}

// linkQueue keeps one ordered pair's in-flight messages. Delivery timers
// each release the queue *head*, not "their" message, so FIFO order holds
// even when the runtime fires timer callbacks out of deadline order.
type linkQueue struct {
	mu    sync.Mutex
	queue []Message
	last  time.Time // monotone delivery horizon for the link
}

func (e *chanEndpoint) ID() flcrypto.NodeID { return e.id }
func (e *chanEndpoint) N() int              { return e.net.cfg.N }

func (e *chanEndpoint) Recv() <-chan Message { return e.mbox.out }

func (e *chanEndpoint) Close() error {
	if e.closed.Swap(true) {
		return ErrClosed
	}
	e.mbox.close()
	return nil
}

func (e *chanEndpoint) Send(to flcrypto.NodeID, payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if int(to) < 0 || int(to) >= e.net.cfg.N {
		return fmt.Errorf("transport: send to unknown node %d", to)
	}
	if to == e.id {
		// Loopback: immediate, no NIC cost.
		e.mbox.put(Message{From: e.id, Payload: payload})
		return nil
	}
	if e.net.linkBlocked(e.id, to) {
		// Blocked links silently drop: from the protocol's point of view
		// this is indistinguishable from an arbitrarily slow link, which
		// is exactly the asynchronous-period behavior being modeled.
		return nil
	}
	atomic.AddUint64(&e.bytesSent, uint64(len(payload)))
	atomic.AddUint64(&e.msgsSent, 1)

	now := time.Now()
	e.mu.Lock()
	sendDone := now
	if rate := e.net.cfg.EgressBytesPerSec; rate > 0 {
		if e.egress.Before(now) {
			e.egress = now
		}
		e.egress = e.egress.Add(time.Duration(float64(len(payload)) / rate * float64(time.Second)))
		sendDone = e.egress
	}
	e.mu.Unlock()
	deliverAt := sendDone.Add(e.net.cfg.Latency.Delay(e.id, to))

	lq := &e.links[to]
	lq.mu.Lock()
	if deliverAt.Before(lq.last) {
		deliverAt = lq.last // a message never overtakes its predecessor's horizon
	}
	lq.last = deliverAt
	lq.queue = append(lq.queue, Message{From: e.id, Payload: payload})
	lq.mu.Unlock()

	delay := time.Until(deliverAt)
	if delay <= 50*time.Microsecond {
		e.deliverHead(to, lq)
		return nil
	}
	time.AfterFunc(delay, func() { e.deliverHead(to, lq) })
	return nil
}

// deliverHead releases the oldest queued message on the link. Every send
// schedules exactly one deliverHead, so counts match; taking the head keeps
// the link FIFO regardless of timer callback scheduling order.
func (e *chanEndpoint) deliverHead(to flcrypto.NodeID, lq *linkQueue) {
	lq.mu.Lock()
	if len(lq.queue) == 0 {
		lq.mu.Unlock()
		return
	}
	msg := lq.queue[0]
	lq.queue = lq.queue[1:]
	lq.mu.Unlock()
	// Re-check fault state at delivery time: messages in flight when a
	// crash or partition is injected are dropped, like packets on a cut
	// cable.
	if e.net.linkBlocked(msg.From, to) {
		return
	}
	// Resolve the target at delivery time: a Reattach between send and
	// delivery routes the message to the restarted node's fresh mailbox.
	e.net.endpoint(to).mbox.put(msg)
}

// Broadcast shares one payload slice across all n deliveries — no per-peer
// copy. Senders hand ownership of the slice to the transport and must not
// mutate it afterwards; receivers treat inbound payloads as read-only.
func (e *chanEndpoint) Broadcast(payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	for i := 0; i < e.net.cfg.N; i++ {
		if err := e.Send(flcrypto.NodeID(i), payload); err != nil {
			return err
		}
	}
	return nil
}

// Package transport provides the reliable fully-connected message layer the
// paper assumes (§3.1): every pair of nodes is connected by a link that does
// not lose, modify, duplicate, or reorder messages.
//
// Two implementations are provided:
//
//   - ChanNetwork: an in-process network with a configurable per-pair latency
//     model and per-node egress bandwidth. It stands in for the paper's AWS
//     deployments (single data-center and the 10-region geo setting) and adds
//     fault injection (crash, omission, partition) for the §7.4 experiments.
//   - TCPNetwork: a real TCP clique with length-prefixed framing, for
//     multi-process runs (cmd/fireledger).
package transport

import (
	"errors"
	"sync"

	"repro/internal/flcrypto"
)

// Message is a payload received from a peer. From is the link-level sender
// identity; protocols must not trust it for anything signatures should
// protect, but links themselves are authenticated (nodes cannot impersonate
// each other at the link level, per §3.1).
type Message struct {
	From    flcrypto.NodeID
	Payload []byte
}

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// ID returns the local node's identity.
	ID() flcrypto.NodeID
	// N returns the cluster size.
	N() int
	// Send enqueues payload for delivery to node `to`. It never blocks on
	// the network; reliability is the transport's job. Sending to self
	// delivers locally.
	Send(to flcrypto.NodeID, payload []byte) error
	// Broadcast sends payload to every node, including self.
	Broadcast(payload []byte) error
	// Recv returns the stream of inbound messages (including self-sends).
	Recv() <-chan Message
	// Close detaches the endpoint. Recv is closed after in-flight
	// deliveries drain.
	Close() error
}

// mailbox is an unbounded FIFO of messages feeding a Recv channel. Unbounded
// buffering is what makes links "reliable" in-process: a slow consumer delays
// messages but never drops them.
type mailbox struct {
	mu     sync.Mutex
	queue  []Message
	wake   chan struct{}
	out    chan Message
	closed bool
	done   chan struct{}
}

func newMailbox() *mailbox {
	m := &mailbox{
		wake: make(chan struct{}, 1),
		out:  make(chan Message, 256),
		done: make(chan struct{}),
	}
	go m.pump()
	return m
}

func (m *mailbox) put(msg Message) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *mailbox) pump() {
	defer close(m.out)
	for {
		m.mu.Lock()
		for len(m.queue) == 0 {
			closed := m.closed
			m.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-m.wake:
			case <-m.done:
			}
			m.mu.Lock()
		}
		batch := m.queue
		m.queue = nil
		m.mu.Unlock()
		for _, msg := range batch {
			select {
			case m.out <- msg:
			case <-m.done:
				// Drain remaining messages best-effort then exit.
				return
			}
		}
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
}

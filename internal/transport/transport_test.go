package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/flcrypto"
)

func TestChanSendReceive(t *testing.T) {
	net := NewChanNetwork(ChanConfig{N: 3})
	defer net.Close()
	a, b := net.Endpoint(0), net.Endpoint(1)
	if err := a.Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, b)
	if msg.From != 0 || string(msg.Payload) != "hello" {
		t.Fatalf("got %+v", msg)
	}
}

func recvOne(t *testing.T, ep Endpoint) Message {
	t.Helper()
	select {
	case msg := <-ep.Recv():
		return msg
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func TestChanSelfDelivery(t *testing.T) {
	net := NewChanNetwork(ChanConfig{N: 2})
	defer net.Close()
	a := net.Endpoint(0)
	if err := a.Send(0, []byte("me")); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, a)
	if msg.From != 0 || string(msg.Payload) != "me" {
		t.Fatalf("got %+v", msg)
	}
}

func TestChanBroadcastReachesAll(t *testing.T) {
	const n = 5
	net := NewChanNetwork(ChanConfig{N: n})
	defer net.Close()
	if err := net.Endpoint(2).Broadcast([]byte("b")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		msg := recvOne(t, net.Endpoint(flcrypto.NodeID(i)))
		if msg.From != 2 || string(msg.Payload) != "b" {
			t.Fatalf("node %d got %+v", i, msg)
		}
	}
}

func TestChanFIFOPerLink(t *testing.T) {
	// Jittered latency must not reorder a link: the model assumes reliable
	// FIFO channels (§3.1).
	net := NewChanNetwork(ChanConfig{N: 2, Latency: Uniform(time.Millisecond, 3*time.Millisecond)})
	defer net.Close()
	a, b := net.Endpoint(0), net.Endpoint(1)
	const k = 200
	for i := 0; i < k; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		msg := recvOne(t, b)
		if msg.Payload[0] != byte(i) {
			t.Fatalf("message %d arrived out of order (got %d)", i, msg.Payload[0])
		}
	}
}

func TestChanLatencyApplied(t *testing.T) {
	const d = 30 * time.Millisecond
	net := NewChanNetwork(ChanConfig{N: 2, Latency: Uniform(d, 0)})
	defer net.Close()
	start := time.Now()
	if err := net.Endpoint(0).Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, net.Endpoint(1))
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("message arrived after %v, want >= %v", elapsed, d)
	}
}

func TestChanCrashSilencesNode(t *testing.T) {
	net := NewChanNetwork(ChanConfig{N: 3})
	defer net.Close()
	net.Crash(1)
	if err := net.Endpoint(0).Send(1, []byte("to crashed")); err != nil {
		t.Fatal(err)
	}
	if err := net.Endpoint(1).Send(0, []byte("from crashed")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-net.Endpoint(0).Recv():
		t.Fatalf("received %+v from crashed node", msg)
	case msg := <-net.Endpoint(1).Recv():
		t.Fatalf("crashed node received %+v", msg)
	case <-time.After(50 * time.Millisecond):
	}
	// Healing restores connectivity.
	net.Heal(1)
	if err := net.Endpoint(0).Send(1, []byte("again")); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, net.Endpoint(1))
	if string(msg.Payload) != "again" {
		t.Fatalf("got %+v", msg)
	}
}

func TestChanLinkFilter(t *testing.T) {
	net := NewChanNetwork(ChanConfig{N: 2})
	defer net.Close()
	net.SetLinkFilter(func(from, to flcrypto.NodeID) bool { return from == 0 && to == 1 })
	if err := net.Endpoint(0).Send(1, []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	if err := net.Endpoint(1).Send(0, []byte("open")); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, net.Endpoint(0))
	if string(msg.Payload) != "open" {
		t.Fatalf("got %+v", msg)
	}
	select {
	case msg := <-net.Endpoint(1).Recv():
		t.Fatalf("filtered link delivered %+v", msg)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestChanClosedEndpointErrors(t *testing.T) {
	net := NewChanNetwork(ChanConfig{N: 2})
	a := net.Endpoint(0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); err != ErrClosed {
		t.Fatalf("Send after close: %v, want ErrClosed", err)
	}
	if err := a.Broadcast([]byte("x")); err != ErrClosed {
		t.Fatalf("Broadcast after close: %v, want ErrClosed", err)
	}
}

func TestChanStats(t *testing.T) {
	net := NewChanNetwork(ChanConfig{N: 3})
	defer net.Close()
	payload := make([]byte, 100)
	if err := net.Endpoint(0).Broadcast(payload); err != nil {
		t.Fatal(err)
	}
	// Self-delivery is free; two peers get 100 bytes each.
	if got := net.BytesSent(0); got != 200 {
		t.Fatalf("BytesSent = %d, want 200", got)
	}
	if got := net.MessagesSent(0); got != 2 {
		t.Fatalf("MessagesSent = %d, want 2", got)
	}
}

func TestChanEgressBandwidth(t *testing.T) {
	// 1 MiB payload over a 100 MiB/s NIC should take ~10ms to serialize.
	net := NewChanNetwork(ChanConfig{N: 2, EgressBytesPerSec: 100 << 20})
	defer net.Close()
	payload := make([]byte, 1<<20)
	start := time.Now()
	if err := net.Endpoint(0).Send(1, payload); err != nil {
		t.Fatal(err)
	}
	recvOne(t, net.Endpoint(1))
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("bandwidth not applied: delivery after %v", elapsed)
	}
}

func TestChanConcurrentSenders(t *testing.T) {
	const n = 8
	net := NewChanNetwork(ChanConfig{N: n})
	defer net.Close()
	const per = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id flcrypto.NodeID) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := net.Endpoint(id).Send(0, []byte{byte(id)}); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}(flcrypto.NodeID(i))
	}
	wg.Wait()
	counts := make(map[byte]int)
	for i := 0; i < n*per; i++ {
		msg := recvOne(t, net.Endpoint(0))
		counts[msg.Payload[0]]++
	}
	for i := 0; i < n; i++ {
		if counts[byte(i)] != per {
			t.Fatalf("node %d delivered %d/%d", i, counts[byte(i)], per)
		}
	}
}

func TestMuxRoutesByProto(t *testing.T) {
	net := NewChanNetwork(ChanConfig{N: 2})
	defer net.Close()
	muxA, muxB := NewMux(net.Endpoint(0)), NewMux(net.Endpoint(1))
	gotA := make(chan string, 4)
	gotB := make(chan string, 4)
	muxB.Handle(1, func(from flcrypto.NodeID, p []byte) { gotA <- "p1:" + string(p) })
	muxB.Handle(2, func(from flcrypto.NodeID, p []byte) { gotB <- "p2:" + string(p) })
	muxA.Start()
	muxB.Start()
	defer muxA.Stop()
	defer muxB.Stop()

	if err := muxA.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := muxA.Send(2, 1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got := <-gotA; got != "p1:x" {
		t.Fatalf("proto 1 handler got %q", got)
	}
	if got := <-gotB; got != "p2:y" {
		t.Fatalf("proto 2 handler got %q", got)
	}
	// Unregistered protocol: silently dropped, no crash.
	if err := muxA.Send(9, 1, []byte("z")); err != nil {
		t.Fatal(err)
	}
}

func TestGeoModelStructure(t *testing.T) {
	m := Geo(1)
	// Frankfurt(2) ↔ Paris(3) must be far faster than São Paulo(4) ↔ Singapore(6).
	close := m.Delay(2, 3)
	far := m.Delay(4, 6)
	if close >= far {
		t.Fatalf("geo model lost structure: Fra-Par %v >= SaP-Sin %v", close, far)
	}
	if m.Delay(0, 0) <= 0 {
		t.Fatal("self-region delay should still be positive (same-DC hop)")
	}
	// Scaling compresses delays.
	if Geo(0.1).Delay(4, 6) >= far {
		t.Fatal("scale did not compress delays")
	}
}

func TestGeoModelWrapsBeyondTenNodes(t *testing.T) {
	m := Geo(1)
	// Node 12 is in region 2: delay(12, 3) should be in the same ballpark
	// as delay(2, 3).
	a, b := m.Delay(12, 3), m.Delay(2, 3)
	ratio := float64(a) / float64(b)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("region wrap broken: %v vs %v", a, b)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	// Bind with :0 then rewire real addresses: start node 0, learn its
	// port, start node 1 with the full table, then node 0's table is fixed
	// lazily via a fresh endpoint. Simpler: pre-reserve two ports.
	ep0, ep1 := startTCPPair(t, addrs)
	defer ep0.Close()
	defer ep1.Close()

	if err := ep0.Send(1, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, ep1)
	if msg.From != 0 || string(msg.Payload) != "over tcp" {
		t.Fatalf("got %+v", msg)
	}
	// And the reverse direction.
	if err := ep1.Broadcast([]byte("back")); err != nil {
		t.Fatal(err)
	}
	msg = recvOne(t, ep0)
	if msg.From != 1 || string(msg.Payload) != "back" {
		t.Fatalf("got %+v", msg)
	}
	// Self-delivery on broadcast.
	msg = recvOne(t, ep1)
	if msg.From != 1 {
		t.Fatalf("got %+v", msg)
	}
}

// startTCPPair starts two TCP endpoints on loopback with dynamically
// assigned ports.
func startTCPPair(t *testing.T, _ []string) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	// Reserve ports by binding listeners, reading addresses, and closing.
	ports := make([]string, 2)
	for i := range ports {
		ln, err := newLoopbackListener()
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().String()
		ln.Close()
	}
	ep0, err := NewTCPEndpoint(TCPConfig{ID: 0, Addrs: ports})
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := NewTCPEndpoint(TCPConfig{ID: 1, Addrs: ports})
	if err != nil {
		ep0.Close()
		t.Fatal(err)
	}
	return ep0, ep1
}

func TestTCPLargeFrame(t *testing.T) {
	ep0, ep1 := startTCPPair(t, nil)
	defer ep0.Close()
	defer ep1.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := ep0.Send(1, payload); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, ep1)
	if len(msg.Payload) != len(payload) {
		t.Fatalf("length %d, want %d", len(msg.Payload), len(payload))
	}
	for i := range payload {
		if msg.Payload[i] != payload[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	ep0, ep1 := startTCPPair(t, nil)
	defer ep0.Close()
	defer ep1.Close()
	const k = 500
	for i := 0; i < k; i++ {
		if err := ep0.Send(1, []byte(fmt.Sprintf("%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		msg := recvOne(t, ep1)
		if string(msg.Payload) != fmt.Sprintf("%04d", i) {
			t.Fatalf("message %d: got %q", i, msg.Payload)
		}
	}
}

package transport

import (
	"testing"
	"time"
)

// TestTCPSendQueueBound is the regression test for unbounded per-peer
// outbound queues: sends toward a dead peer must cap the queue at
// SendQueueCap with a drop-oldest policy and count the drops, instead of
// accumulating memory forever.
func TestTCPSendQueueBound(t *testing.T) {
	ep, err := NewTCPEndpoint(TCPConfig{
		ID: 0,
		// Peer 1's address points at a port nothing listens on, so its
		// writer can never drain the queue.
		Addrs:         []string{"127.0.0.1:0", "127.0.0.1:9"},
		SendQueueCap:  8,
		DialTimeout:   50 * time.Millisecond,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	const sends = 200
	payload := make([]byte, 128)
	for i := 0; i < sends; i++ {
		payload[0] = byte(i)
		if err := ep.Send(1, append([]byte(nil), payload...)); err != nil {
			t.Fatal(err)
		}
	}

	p := ep.peers[1]
	p.mu.Lock()
	qlen := len(p.queue)
	var newest byte
	if qlen > 0 {
		newest = p.queue[qlen-1][0]
	}
	p.mu.Unlock()
	if qlen > 8 {
		t.Fatalf("queue grew to %d entries past the cap of 8", qlen)
	}
	// Drop-oldest: the newest frame must survive.
	if qlen > 0 && newest != byte(sends-1) {
		t.Fatalf("newest queued frame is %d, want %d (drop-oldest violated)", newest, sends-1)
	}
	// The writer may have briefly taken a batch out of the queue, so allow
	// a little slack below the exact count.
	if drops := ep.SendDrops(1); drops < sends-2*8 {
		t.Fatalf("only %d drops counted for %d sends against a cap of 8", drops, sends)
	}
	if ep.TotalSendDrops() != ep.SendDrops(1) {
		t.Fatal("aggregate drop counter disagrees with the single dead peer's")
	}
	// Self-sends are unaffected by peer queues.
	if err := ep.Send(0, []byte("self")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-ep.Recv():
		if string(msg.Payload) != "self" {
			t.Fatalf("unexpected self payload %q", msg.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("self-send not delivered")
	}
}

package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/flcrypto"
)

// LatencyModel yields the one-way propagation delay for a message from one
// node to another. Implementations may be stochastic; they must be safe for
// concurrent use.
type LatencyModel interface {
	Delay(from, to flcrypto.NodeID) time.Duration
}

// LatencyFunc adapts a function to LatencyModel.
type LatencyFunc func(from, to flcrypto.NodeID) time.Duration

// Delay implements LatencyModel.
func (f LatencyFunc) Delay(from, to flcrypto.NodeID) time.Duration { return f(from, to) }

// Zero is a latency model with no propagation delay, for unit tests that
// exercise logic rather than timing.
var Zero = LatencyFunc(func(_, _ flcrypto.NodeID) time.Duration { return 0 })

// Uniform returns a model drawing delays uniformly from [base, base+jitter).
// With jitter 0 it is constant.
func Uniform(base, jitter time.Duration) LatencyModel {
	return UniformSeeded(base, jitter, 1)
}

// UniformSeeded is Uniform with an explicit RNG seed, so a simulated run's
// jitter draws are a pure function of (seed, draw order) — the injected-rand
// half of making simulations replayable (internal/simnet).
func UniformSeeded(base, jitter time.Duration, seed int64) LatencyModel {
	return &uniformModel{base: base, jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

type uniformModel struct {
	mu     sync.Mutex
	base   time.Duration
	jitter time.Duration
	rng    *rand.Rand
}

func (u *uniformModel) Delay(_, _ flcrypto.NodeID) time.Duration {
	if u.jitter <= 0 {
		return u.base
	}
	u.mu.Lock()
	d := u.base + time.Duration(u.rng.Int63n(int64(u.jitter)))
	u.mu.Unlock()
	return d
}

// SingleDC models intra-data-center latency: ~250µs ± 100µs one way, matching
// AWS same-AZ VM-to-VM round trips of roughly 0.5ms (§7.2's m5.xlarge setting).
func SingleDC() LatencyModel { return Uniform(200*time.Microsecond, 100*time.Microsecond) }

// GeoRegions are the ten AWS regions of the paper's §7.5 deployment, in the
// paper's placement order: node i runs in GeoRegions[i mod 10].
var GeoRegions = []string{
	"Tokyo", "Canada-Central", "Frankfurt", "Paris", "Sao-Paulo",
	"Oregon", "Singapore", "Sydney", "Ireland", "Ohio",
}

// geoRTTms holds approximate public inter-region RTT medians in milliseconds
// (upper triangle, symmetric). Sources: published AWS inter-region latency
// tables; exact values matter less than their relative structure (intra-
// continent ≈ tens of ms, antipodal ≈ 200-300ms).
var geoRTTms = [10][10]float64{
	//          Tok  CaC  Fra  Par  SaP  Ore  Sin  Syd  Ire  Ohi
	/*Tokyo*/ {2, 156, 236, 222, 270, 97, 69, 104, 212, 156},
	/*CaC*/ {156, 2, 92, 87, 125, 60, 216, 197, 67, 25},
	/*Fra*/ {236, 92, 2, 8, 203, 159, 147, 283, 25, 100},
	/*Par*/ {222, 87, 8, 2, 196, 141, 158, 280, 18, 95},
	/*SaP*/ {270, 125, 203, 196, 2, 177, 328, 310, 186, 125},
	/*Ore*/ {97, 60, 159, 141, 177, 2, 161, 139, 124, 52},
	/*Sin*/ {69, 216, 147, 158, 328, 161, 2, 92, 174, 200},
	/*Syd*/ {104, 197, 283, 280, 310, 139, 92, 2, 258, 186},
	/*Ire*/ {212, 67, 25, 18, 186, 124, 174, 258, 2, 75},
	/*Ohi*/ {156, 25, 100, 95, 125, 52, 200, 186, 75, 2},
}

// Geo returns the §7.5 multi-data-center latency model: node i is placed in
// region i mod 10 and one-way delay is half the region-pair RTT with ±10%
// jitter. scale compresses or stretches all delays (scale 1 = real RTTs;
// benchmarks use smaller scales to keep wall-clock runs short while
// preserving the latency *structure*).
func Geo(scale float64) LatencyModel {
	return GeoSeeded(scale, 2)
}

// GeoSeeded is Geo with an explicit RNG seed (see UniformSeeded).
func GeoSeeded(scale float64, seed int64) LatencyModel {
	if scale <= 0 {
		scale = 1
	}
	return &geoModel{scale: scale, rng: rand.New(rand.NewSource(seed))}
}

type geoModel struct {
	mu    sync.Mutex
	scale float64
	rng   *rand.Rand
}

func (g *geoModel) Delay(from, to flcrypto.NodeID) time.Duration {
	rtt := geoRTTms[int(from)%10][int(to)%10]
	oneWay := rtt / 2 * g.scale
	g.mu.Lock()
	jitter := 1 + (g.rng.Float64()-0.5)*0.2
	g.mu.Unlock()
	return time.Duration(oneWay * jitter * float64(time.Millisecond))
}

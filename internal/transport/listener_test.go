package transport

import "net"

// newLoopbackListener binds an ephemeral loopback port, used by tests to
// reserve addresses before starting TCP endpoints.
func newLoopbackListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

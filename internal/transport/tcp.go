package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/metrics"
)

// MaxFrame bounds a single TCP frame. Blocks of 1000 × 4KiB transactions fit
// comfortably; anything larger is a protocol error or an attack.
const MaxFrame = 64 << 20 // 64 MiB

// TCPConfig configures one node's attachment to a TCP clique.
type TCPConfig struct {
	// ID is the local node.
	ID flcrypto.NodeID
	// Addrs maps node id → host:port for every cluster member, so Addrs
	// doubles as the membership list.
	Addrs []string
	// DialTimeout bounds each connection attempt (default 3s).
	DialTimeout time.Duration
	// RetryInterval is the pause between reconnection attempts (default 500ms).
	RetryInterval time.Duration
	// SendQueueCap bounds each peer's outbound queue in frames (default
	// 4096). When a peer is dead or too slow to drain its queue, the oldest
	// frames are dropped and counted — mirroring the mux mailbox design —
	// so one unreachable peer cannot accumulate unbounded memory. Every
	// protocol layer tolerates the loss: consensus messages are re-pulled
	// or re-broadcast, and bodies/blocks have explicit pull fallbacks.
	SendQueueCap int
}

// TCPEndpoint implements Endpoint over a TCP clique: for each ordered pair
// (i→j) node i maintains one outbound connection to j, identified by a
// 4-byte hello frame carrying i's id. Outbound messages queue in a bounded
// per-peer buffer (SendQueueCap, drop-oldest on overflow) and a writer
// goroutine drains it, reconnecting with backoff on failure — the
// retransmission construction of §3.1 that turns fair-lossy links into
// reliable ones, with the bound keeping a dead or slow peer from
// accumulating unbounded memory under saturating load.
type TCPEndpoint struct {
	cfg  TCPConfig
	ln   net.Listener
	mbox *mailbox

	// flushes records the coalesced write batches: each writer drains its
	// whole queue and pushes it through one vectored write, so the mean
	// batch size is the syscall amortization factor under load.
	flushes metrics.BatchStats

	mu     sync.Mutex
	peers  []*tcpPeer
	conns  map[net.Conn]bool // accepted connections, closed on shutdown
	closed bool
	wg     sync.WaitGroup
	done   chan struct{}
}

type tcpPeer struct {
	ep   *TCPEndpoint
	id   flcrypto.NodeID
	addr string

	mu      sync.Mutex
	queue   [][]byte
	wake    chan struct{}
	dropped atomic.Uint64
}

// trimLocked enforces the per-peer queue bound, dropping the oldest frames.
// Callers hold p.mu.
func (p *tcpPeer) trimLocked() {
	if over := len(p.queue) - p.ep.cfg.SendQueueCap; over > 0 {
		p.dropped.Add(uint64(over))
		p.queue = p.queue[over:]
	}
}

// NewTCPEndpoint binds cfg.Addrs[cfg.ID] and starts the accept loop and one
// writer per peer. It returns once the listener is up; peer connections are
// established lazily and retried forever, so cluster members may start in
// any order.
func NewTCPEndpoint(cfg TCPConfig) (*TCPEndpoint, error) {
	if int(cfg.ID) < 0 || int(cfg.ID) >= len(cfg.Addrs) {
		return nil, fmt.Errorf("transport: id %d out of range for %d addrs", cfg.ID, len(cfg.Addrs))
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.RetryInterval == 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	if cfg.SendQueueCap == 0 {
		cfg.SendQueueCap = 4096
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.ID])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.ID], err)
	}
	ep := &TCPEndpoint{
		cfg:   cfg,
		ln:    ln,
		mbox:  newMailbox(),
		conns: make(map[net.Conn]bool),
		done:  make(chan struct{}),
	}
	ep.peers = make([]*tcpPeer, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		if flcrypto.NodeID(i) == cfg.ID {
			continue
		}
		p := &tcpPeer{ep: ep, id: flcrypto.NodeID(i), addr: addr, wake: make(chan struct{}, 1)}
		ep.peers[i] = p
		ep.wg.Add(1)
		go p.writeLoop()
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() flcrypto.NodeID { return e.cfg.ID }

// N implements Endpoint.
func (e *TCPEndpoint) N() int { return len(e.cfg.Addrs) }

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() <-chan Message { return e.mbox.out }

// Addr returns the bound listen address (useful with ":0" configs in tests).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// SendDrops reports how many outbound frames to peer `to` have been dropped
// by the bounded send queue (0 for self or unknown peers).
func (e *TCPEndpoint) SendDrops(to flcrypto.NodeID) uint64 {
	if int(to) < 0 || int(to) >= len(e.peers) || e.peers[to] == nil {
		return 0
	}
	return e.peers[to].dropped.Load()
}

// TotalSendDrops sums SendDrops over all peers.
func (e *TCPEndpoint) TotalSendDrops() uint64 {
	var total uint64
	for _, p := range e.peers {
		if p != nil {
			total += p.dropped.Load()
		}
	}
	return total
}

// FlushStats reports the coalesced-write batches across all peer writers:
// how many vectored flushes ran, how many frames they carried, and the
// largest single flush.
func (e *TCPEndpoint) FlushStats() metrics.BatchSnapshot {
	return e.flushes.Snapshot()
}

// Send implements Endpoint.
func (e *TCPEndpoint) Send(to flcrypto.NodeID, payload []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if int(to) < 0 || int(to) >= len(e.cfg.Addrs) {
		return fmt.Errorf("transport: send to unknown node %d", to)
	}
	if to == e.cfg.ID {
		e.mbox.put(Message{From: e.cfg.ID, Payload: payload})
		return nil
	}
	p := e.peers[to]
	p.mu.Lock()
	p.queue = append(p.queue, payload)
	p.trimLocked()
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return nil
}

// Broadcast implements Endpoint. One payload slice is shared across every
// peer queue and the local mailbox — no per-peer copy; queues and readers
// only ever read it (senders hand ownership of the slice to the endpoint).
// The closed check and per-peer bounds checks are hoisted out of the loop,
// so a broadcast costs one endpoint lock plus one queue lock per peer.
func (e *TCPEndpoint) Broadcast(payload []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	e.mbox.put(Message{From: e.cfg.ID, Payload: payload})
	for _, p := range e.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.queue = append(p.queue, payload)
		p.trimLocked()
		p.mu.Unlock()
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	close(e.done)
	e.ln.Close()
	// Unblock reader goroutines parked in ReadFull on live connections;
	// without this, Close deadlocks until the *peer* shuts down.
	for _, c := range conns {
		c.Close()
	}
	e.mbox.close()
	e.wg.Wait()
	return nil
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.done:
				return
			default:
				continue
			}
		}
		e.wg.Add(1)
		go e.readConn(conn)
	}
}

func (e *TCPEndpoint) readConn(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.conns[conn] = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := flcrypto.NodeID(binary.BigEndian.Uint32(hello[:]))
	if int(from) < 0 || int(from) >= len(e.cfg.Addrs) || from == e.cfg.ID {
		return
	}
	for {
		select {
		case <-e.done:
			return
		default:
		}
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			return // protocol violation; drop the connection
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		e.mbox.put(Message{From: from, Payload: payload})
	}
}

func (p *tcpPeer) writeLoop() {
	defer p.ep.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		// Wait for work. After a wake, loop back to re-check the queue
		// instead of assuming the token maps to a pending message: a wake
		// token can be stale (its message was drained by a previous batch),
		// and conversely a message enqueued between the last drain and this
		// check rides on a token consumed here. Re-checking closes the
		// window where such a message would sit in the queue until the
		// *next* wake.
		p.mu.Lock()
		empty := len(p.queue) == 0
		p.mu.Unlock()
		if empty {
			select {
			case <-p.ep.done:
				return
			case <-p.wake:
			}
			continue
		}
		select {
		case <-p.ep.done:
			return
		default:
		}
		if conn == nil {
			c, err := p.dial()
			if err != nil {
				select {
				case <-p.ep.done:
					return
				case <-time.After(p.ep.cfg.RetryInterval):
				}
				continue
			}
			conn = c
		}
		p.mu.Lock()
		batch := p.queue
		p.queue = nil
		p.mu.Unlock()
		if err := p.flush(conn, batch); err != nil {
			conn.Close()
			conn = nil
		}
	}
}

// flush writes a whole drained batch through one vectored write
// (net.Buffers → writev): one syscall per batch instead of two per frame,
// with the 4-byte length prefixes carved from a single backing array. On
// error the frames that were not fully written are requeued ahead of any
// newly enqueued messages; the frame cut mid-write may arrive twice after
// reconnect in rare cases, which upper layers tolerate (all protocol
// messages are idempotent by construction).
func (p *tcpPeer) flush(conn net.Conn, batch [][]byte) error {
	hdrs := make([]byte, 4*len(batch))
	bufs := make(net.Buffers, 0, 2*len(batch))
	for i, payload := range batch {
		h := hdrs[4*i : 4*i+4 : 4*i+4]
		binary.BigEndian.PutUint32(h, uint32(len(payload)))
		bufs = append(bufs, h, payload)
	}
	n, err := bufs.WriteTo(conn)
	if err == nil {
		p.ep.flushes.Observe(len(batch))
		return nil
	}
	// Requeue from the first frame that was not written in full.
	i := 0
	for i < len(batch) && n >= int64(4+len(batch[i])) {
		n -= int64(4 + len(batch[i]))
		i++
	}
	p.mu.Lock()
	p.queue = append(batch[i:], p.queue...)
	p.trimLocked()
	p.mu.Unlock()
	return err
}

func (p *tcpPeer) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", p.addr, p.ep.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(p.ep.cfg.ID))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

package transport

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/flcrypto"
)

// scriptInjector is a deterministic test fault injector: decisions are a
// pure function of (seed, call order). Single-goroutine tests need no lock.
type scriptInjector struct {
	rng *rand.Rand
}

func (s *scriptInjector) FaultFor(_, _ flcrypto.NodeID, _ int) Fault {
	var f Fault
	switch s.rng.Intn(10) {
	case 0:
		f.Drop = true
	case 1:
		f.Duplicate = true
	case 2:
		f.ExtraDelay = time.Duration(s.rng.Intn(3000)) * time.Microsecond
	}
	return f
}

// traceRun drives a fixed send script over a virtual-clock ChanNetwork and
// returns the serialized delivery trace.
func traceRun(seed int64) []byte {
	clock := NewVirtualClock(time.Unix(0, 0))
	var buf bytes.Buffer
	net := NewChanNetwork(ChanConfig{
		N:       4,
		Latency: UniformSeeded(200*time.Microsecond, 400*time.Microsecond, seed),
		Clock:   clock,
		Faults:  &scriptInjector{rng: rand.New(rand.NewSource(seed + 1))},
		Trace: func(ev TraceEvent) {
			sum := sha256.Sum256(ev.Payload)
			fmt.Fprintf(&buf, "%d %d->%d %x\n", ev.At.UnixNano(), ev.From, ev.To, sum[:8])
		},
	})
	defer net.Close()

	script := rand.New(rand.NewSource(seed + 2))
	for i := 0; i < 400; i++ {
		from := flcrypto.NodeID(script.Intn(4))
		payload := make([]byte, 1+script.Intn(64))
		script.Read(payload)
		if script.Intn(4) == 0 {
			net.Endpoint(from).Broadcast(payload)
		} else {
			net.Endpoint(from).Send(flcrypto.NodeID(script.Intn(4)), payload)
		}
		if script.Intn(8) == 0 {
			clock.Advance(time.Duration(script.Intn(2000)) * time.Microsecond)
		}
	}
	clock.Advance(time.Second) // flush every pending delivery timer
	return buf.Bytes()
}

// TestChanNetworkDeterministicTrace is the seed-replay contract of the
// simulation layer: with an injected virtual clock and seeded rand, two runs
// of the same send script produce byte-identical delivery traces — latency
// draws, fault decisions (drops, duplicates, extra delays), and delivery
// timestamps included.
func TestChanNetworkDeterministicTrace(t *testing.T) {
	first := traceRun(7)
	if len(first) == 0 {
		t.Fatal("empty delivery trace")
	}
	for i := 0; i < 3; i++ {
		if again := traceRun(7); !bytes.Equal(first, again) {
			t.Fatalf("same seed diverged on rerun %d:\n--- first\n%s\n--- rerun\n%s", i, first, again)
		}
	}
	if other := traceRun(8); bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical traces; seed is not reaching the schedule")
	}
}

// TestVirtualClockOrdering pins the virtual clock's timer semantics: inline
// firing during Advance in (deadline, registration) order, stop semantics,
// and timers scheduled by callbacks inside the advanced window firing in the
// same Advance.
func TestVirtualClockOrdering(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	var fired []string
	clock.AfterFunc(20*time.Millisecond, func() { fired = append(fired, "b") })
	clock.AfterFunc(10*time.Millisecond, func() {
		fired = append(fired, "a")
		// Scheduled mid-Advance, lands inside the window: fires this Advance.
		clock.AfterFunc(5*time.Millisecond, func() { fired = append(fired, "a+") })
	})
	clock.AfterFunc(10*time.Millisecond, func() { fired = append(fired, "a2") })
	stop := clock.AfterFunc(15*time.Millisecond, func() { fired = append(fired, "cancelled") })
	if !stop() {
		t.Fatal("stop of pending timer reported already-fired")
	}
	clock.AfterFunc(40*time.Millisecond, func() { fired = append(fired, "late") })

	clock.Advance(30 * time.Millisecond)
	want := "a,a2,a+,b"
	if got := fmt.Sprint(fired); got != fmt.Sprint([]string{"a", "a2", "a+", "b"}) {
		t.Fatalf("firing order = %v, want %s", fired, want)
	}
	if clock.PendingTimers() != 1 {
		t.Fatalf("pending timers = %d, want 1 (the 40ms timer)", clock.PendingTimers())
	}
	if got := clock.Now(); got != time.Unix(0, 0).Add(30*time.Millisecond) {
		t.Fatalf("virtual now = %v", got)
	}
	clock.Advance(10 * time.Millisecond)
	if fired[len(fired)-1] != "late" {
		t.Fatalf("40ms timer never fired: %v", fired)
	}
}

package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/flcrypto"
)

// TestTCPCoalescedFlush checks that a backlog accumulated while the peer is
// unreachable is delivered completely and in order once the peer comes up,
// and that the writer actually coalesces: the whole backlog must leave in
// far fewer vectored flushes than frames.
func TestTCPCoalescedFlush(t *testing.T) {
	ports := make([]string, 2)
	for i := range ports {
		ln, err := newLoopbackListener()
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().String()
		ln.Close()
	}
	ep0, err := NewTCPEndpoint(TCPConfig{
		ID: 0, Addrs: ports,
		DialTimeout:   100 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()

	// Peer 1 is down: the backlog piles up in the send queue (the writer is
	// parked in dial-retry).
	const k = 300
	for i := 0; i < k; i++ {
		if err := ep0.Send(1, []byte(fmt.Sprintf("%04d", i))); err != nil {
			t.Fatal(err)
		}
	}

	ep1, err := NewTCPEndpoint(TCPConfig{ID: 1, Addrs: ports})
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()

	for i := 0; i < k; i++ {
		msg := recvOne(t, ep1)
		if string(msg.Payload) != fmt.Sprintf("%04d", i) {
			t.Fatalf("message %d: got %q", i, msg.Payload)
		}
	}

	stats := ep0.FlushStats()
	if stats.Items < k {
		t.Fatalf("flush stats cover %d frames, want >= %d", stats.Items, k)
	}
	if stats.Batches >= k {
		t.Fatalf("%d flushes for %d frames: no coalescing happened", stats.Batches, k)
	}
	if stats.Max < 2 {
		t.Fatalf("largest flush carried %d frames, want a real batch", stats.Max)
	}
}

// TestTCPWriteLoopNoStrandedMessage is the regression test for the
// writer-wake race: a message enqueued between the writer's queue drain and
// its next wake-channel wait must be picked up by the re-check, not sit in
// the queue until a *later* message's wake. The test drives many
// one-message-at-a-time cycles — with the race present, a cycle's message
// can be stranded indefinitely (there is no follow-up traffic to flush it
// out) and the receive below times out.
func TestTCPWriteLoopNoStrandedMessage(t *testing.T) {
	ep0, ep1 := startTCPPair(t, nil)
	defer ep0.Close()
	defer ep1.Close()

	// Warm the connection so each subsequent cycle exercises only the
	// drain/wake handoff.
	if err := ep0.Send(1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, ep1)

	for i := 0; i < 500; i++ {
		if err := ep0.Send(1, []byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
		select {
		case msg := <-ep1.Recv():
			if string(msg.Payload) != fmt.Sprintf("m%04d", i) {
				t.Fatalf("cycle %d: got %q", i, msg.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("cycle %d: message stranded in the send queue", i)
		}
	}
}

// TestTCPBroadcastSharesPayload documents the broadcast ownership contract:
// one payload slice is enqueued for every peer without copying, so the
// bytes a peer receives are identical even when the broadcast fans out
// widely — and the sender must not mutate the slice after handing it over.
func TestTCPBroadcastSharesPayload(t *testing.T) {
	ports := make([]string, 3)
	for i := range ports {
		ln, err := newLoopbackListener()
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().String()
		ln.Close()
	}
	eps := make([]*TCPEndpoint, 3)
	for i := range eps {
		ep, err := NewTCPEndpoint(TCPConfig{ID: flcrypto.NodeID(i), Addrs: ports})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
	}
	payload := []byte("shared-broadcast-payload")
	if err := eps[0].Broadcast(payload); err != nil {
		t.Fatal(err)
	}
	for i, ep := range eps {
		msg := recvOne(t, ep)
		if msg.From != 0 || string(msg.Payload) != string(payload) {
			t.Fatalf("node %d: got %+v", i, msg)
		}
	}
}

package transport

import (
	"sync"
	"sync/atomic"

	"repro/internal/flcrypto"
)

// ProtoID tags each message with the protocol layer it belongs to, so one
// endpoint per node can serve WRB, OBBC, PBFT, reliable broadcast, the
// FireLedger data path, and the baselines simultaneously.
type ProtoID uint8

// Handler consumes a demultiplexed message. Each registered protocol owns a
// bounded mailbox drained by a dedicated goroutine, so a handler may do real
// work (decode, verify, take protocol locks) without stalling the endpoint
// reader or the other protocols; messages of one protocol are still handed
// to its handler in arrival order.
type Handler func(from flcrypto.NodeID, payload []byte)

// OverflowPolicy selects what the mux does when a protocol's mailbox is
// full.
type OverflowPolicy int

const (
	// Backpressure makes the reader wait for mailbox space. The protocol
	// never loses a message, at the price of slowing the whole endpoint
	// down when it falls behind — the right choice for control protocols.
	Backpressure OverflowPolicy = iota
	// DropNewest discards the incoming message. The right choice for
	// traffic with a pull/retry fallback (body dissemination, gossip): a
	// Byzantine flood on such a protocol costs it its own messages and
	// nothing else.
	DropNewest
)

// DefaultMailboxCapacity is the mailbox bound used by Handle.
const DefaultMailboxCapacity = 1024

// MailboxConfig tunes one protocol's mailbox.
type MailboxConfig struct {
	// Capacity bounds the mailbox (default DefaultMailboxCapacity).
	Capacity int
	// Policy is the overflow behavior (default Backpressure).
	Policy OverflowPolicy
}

// protoMailbox is one protocol's bounded queue plus its drainer goroutine.
type protoMailbox struct {
	handler Handler
	ch      chan Message
	policy  OverflowPolicy
	stop    chan struct{} // closed to terminate the drainer
	done    chan struct{} // closed by the drainer on exit

	enqueued atomic.Uint64
	dropped  atomic.Uint64
}

func (b *protoMailbox) enqueue(msg Message, muxDone <-chan struct{}) {
	if b.policy == DropNewest {
		select {
		case b.ch <- msg:
			b.enqueued.Add(1)
		default:
			b.dropped.Add(1)
		}
		return
	}
	select {
	case b.ch <- msg:
		b.enqueued.Add(1)
	case <-b.stop:
	case <-muxDone:
	}
}

func (b *protoMailbox) drain() {
	defer close(b.done)
	for {
		select {
		case msg := <-b.ch:
			b.handler(msg.From, msg.Payload)
		case <-b.stop:
			return
		}
	}
}

func (b *protoMailbox) terminate() {
	close(b.stop)
	<-b.done
}

// Mux demultiplexes an Endpoint's inbound stream by ProtoID into per-proto
// mailboxes and prepends the tag on the way out. The envelope is one byte:
// [proto][payload...].
type Mux struct {
	ep Endpoint

	mu      sync.RWMutex
	boxes   map[ProtoID]*protoMailbox
	stopped bool // set by Stop; late registrations are refused

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool
	done      chan struct{}
	readDone  chan struct{}
}

// NewMux wraps ep. Call Handle for each protocol, then Start.
func NewMux(ep Endpoint) *Mux {
	return &Mux{
		ep:       ep,
		boxes:    make(map[ProtoID]*protoMailbox),
		done:     make(chan struct{}),
		readDone: make(chan struct{}),
	}
}

// Endpoint returns the underlying endpoint.
func (m *Mux) Endpoint() Endpoint { return m.ep }

// ID returns the local node id.
func (m *Mux) ID() flcrypto.NodeID { return m.ep.ID() }

// N returns the cluster size.
func (m *Mux) N() int { return m.ep.N() }

// Handle registers h for proto with the default mailbox (Backpressure,
// DefaultMailboxCapacity). Registering after Start is allowed; messages for
// unregistered protocols are dropped.
func (m *Mux) Handle(proto ProtoID, h Handler) {
	m.HandleWith(proto, h, MailboxConfig{})
}

// HandleWith registers h for proto with an explicit mailbox configuration.
// Re-registering a protocol replaces its handler; the previous mailbox is
// terminated first (queued messages for it are discarded).
func (m *Mux) HandleWith(proto ProtoID, h Handler, cfg MailboxConfig) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultMailboxCapacity
	}
	box := &protoMailbox{
		handler: h,
		ch:      make(chan Message, cfg.Capacity),
		policy:  cfg.Policy,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return // a post-Stop registration would leak its drainer
	}
	prev := m.boxes[proto]
	m.boxes[proto] = box
	m.mu.Unlock()
	if prev != nil {
		prev.terminate()
	}
	go box.drain()
}

// Unhandle deregisters proto and terminates its mailbox goroutine. Messages
// already queued for it are discarded.
func (m *Mux) Unhandle(proto ProtoID) {
	m.mu.Lock()
	box := m.boxes[proto]
	delete(m.boxes, proto)
	m.mu.Unlock()
	if box != nil {
		box.terminate()
	}
}

// Dropped reports how many messages proto's mailbox has discarded under the
// DropNewest policy.
func (m *Mux) Dropped(proto ProtoID) uint64 {
	m.mu.RLock()
	box := m.boxes[proto]
	m.mu.RUnlock()
	if box == nil {
		return 0
	}
	return box.dropped.Load()
}

// Enqueued reports how many messages have been queued for proto's handler.
func (m *Mux) Enqueued(proto ProtoID) uint64 {
	m.mu.RLock()
	box := m.boxes[proto]
	m.mu.RUnlock()
	if box == nil {
		return 0
	}
	return box.enqueued.Load()
}

// Start launches the read loop.
func (m *Mux) Start() {
	m.startOnce.Do(func() {
		m.started.Store(true)
		go m.readLoop()
	})
}

// Stop terminates the read loop, closes the endpoint, and waits for every
// mailbox drainer to exit, so no handler runs after Stop returns.
func (m *Mux) Stop() {
	m.stopOnce.Do(func() {
		close(m.done)
		m.ep.Close()
		if m.started.Load() {
			<-m.readDone
		}
		m.mu.Lock()
		m.stopped = true
		boxes := make([]*protoMailbox, 0, len(m.boxes))
		for proto, box := range m.boxes {
			boxes = append(boxes, box)
			delete(m.boxes, proto)
		}
		m.mu.Unlock()
		for _, box := range boxes {
			box.terminate()
		}
	})
}

func (m *Mux) readLoop() {
	defer close(m.readDone)
	for {
		select {
		case <-m.done:
			return
		case msg, ok := <-m.ep.Recv():
			if !ok {
				return
			}
			if len(msg.Payload) < 1 {
				continue
			}
			proto := ProtoID(msg.Payload[0])
			m.mu.RLock()
			box := m.boxes[proto]
			m.mu.RUnlock()
			if box != nil {
				box.enqueue(Message{From: msg.From, Payload: msg.Payload[1:]}, m.done)
			}
		}
	}
}

func envelope(proto ProtoID, payload []byte) []byte {
	buf := make([]byte, 1+len(payload))
	buf[0] = byte(proto)
	copy(buf[1:], payload)
	return buf
}

// Send sends payload tagged with proto to node `to`.
func (m *Mux) Send(proto ProtoID, to flcrypto.NodeID, payload []byte) error {
	return m.ep.Send(to, envelope(proto, payload))
}

// Broadcast sends payload tagged with proto to all nodes including self.
func (m *Mux) Broadcast(proto ProtoID, payload []byte) error {
	return m.ep.Broadcast(envelope(proto, payload))
}

package transport

import (
	"sync"

	"repro/internal/flcrypto"
)

// ProtoID tags each message with the protocol layer it belongs to, so one
// endpoint per node can serve WRB, OBBC, PBFT, reliable broadcast, the
// FireLedger data path, and the baselines simultaneously.
type ProtoID uint8

// Handler consumes a demultiplexed message. Handlers run on the mux's read
// goroutine and must hand work off quickly (protocol components own their
// own mailboxes and event loops).
type Handler func(from flcrypto.NodeID, payload []byte)

// Mux demultiplexes an Endpoint's inbound stream by ProtoID and prepends the
// tag on the way out. The envelope is one byte: [proto][payload...].
type Mux struct {
	ep Endpoint

	mu       sync.RWMutex
	handlers map[ProtoID]Handler

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
}

// NewMux wraps ep. Call Handle for each protocol, then Start.
func NewMux(ep Endpoint) *Mux {
	return &Mux{ep: ep, handlers: make(map[ProtoID]Handler), done: make(chan struct{})}
}

// Endpoint returns the underlying endpoint.
func (m *Mux) Endpoint() Endpoint { return m.ep }

// ID returns the local node id.
func (m *Mux) ID() flcrypto.NodeID { return m.ep.ID() }

// N returns the cluster size.
func (m *Mux) N() int { return m.ep.N() }

// Handle registers h for proto. Registering after Start is allowed; messages
// for unregistered protocols are dropped.
func (m *Mux) Handle(proto ProtoID, h Handler) {
	m.mu.Lock()
	m.handlers[proto] = h
	m.mu.Unlock()
}

// Start launches the read loop.
func (m *Mux) Start() {
	m.startOnce.Do(func() { go m.readLoop() })
}

// Stop terminates the read loop and closes the endpoint.
func (m *Mux) Stop() {
	m.stopOnce.Do(func() {
		close(m.done)
		m.ep.Close()
	})
}

func (m *Mux) readLoop() {
	for {
		select {
		case <-m.done:
			return
		case msg, ok := <-m.ep.Recv():
			if !ok {
				return
			}
			if len(msg.Payload) < 1 {
				continue
			}
			proto := ProtoID(msg.Payload[0])
			m.mu.RLock()
			h := m.handlers[proto]
			m.mu.RUnlock()
			if h != nil {
				h(msg.From, msg.Payload[1:])
			}
		}
	}
}

func envelope(proto ProtoID, payload []byte) []byte {
	buf := make([]byte, 1+len(payload))
	buf[0] = byte(proto)
	copy(buf[1:], payload)
	return buf
}

// Send sends payload tagged with proto to node `to`.
func (m *Mux) Send(proto ProtoID, to flcrypto.NodeID, payload []byte) error {
	return m.ep.Send(to, envelope(proto, payload))
}

// Broadcast sends payload tagged with proto to all nodes including self.
func (m *Mux) Broadcast(proto ProtoID, payload []byte) error {
	return m.ep.Broadcast(envelope(proto, payload))
}

package transport

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts the two time operations the in-process network performs —
// reading the current instant and scheduling a callback — so simulated runs
// can substitute a virtual clock and become time-deterministic. The wall
// clock is the default everywhere; tests and the simulation harness
// (internal/simnet) inject their own.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// AfterFunc runs f once d has elapsed, on an unspecified goroutine
	// (the wall clock) or inline during Advance (the virtual clock). The
	// returned stop function cancels a not-yet-fired timer.
	AfterFunc(d time.Duration, f func()) (stop func() bool)
}

// WallClock is the real-time Clock used outside simulations.
var WallClock Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) AfterFunc(d time.Duration, f func()) func() bool {
	t := time.AfterFunc(d, f)
	return t.Stop
}

// VirtualClock is a manually-advanced Clock: Now returns a virtual instant
// that moves only through Advance, and AfterFunc callbacks fire inline
// during Advance in deterministic (deadline, registration) order. Two runs
// that perform the same sequence of clock operations therefore observe
// byte-identical timer schedules — the property the simnet determinism
// regression tests pin down.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers vtimerHeap
}

// NewVirtualClock starts a virtual clock at `start` (a fixed epoch keeps
// traces byte-comparable across runs).
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual instant.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules f at now+d. A non-positive d fires on the next
// Advance, never inline — callers hold their own locks.
func (c *VirtualClock) AfterFunc(d time.Duration, f func()) (stop func() bool) {
	c.mu.Lock()
	t := &vtimer{at: c.now.Add(d), seq: c.seq, f: f}
	c.seq++
	heap.Push(&c.timers, t)
	c.mu.Unlock()
	return func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		if t.fired || t.index < 0 {
			return false
		}
		heap.Remove(&c.timers, t.index)
		return true
	}
}

// Advance moves virtual time forward by d, firing every timer whose deadline
// falls inside the window, in (deadline, registration) order. Callbacks run
// inline on the caller's goroutine with the clock unlocked, so they may
// re-read Now and schedule further timers; a timer scheduled inside the
// window by a callback fires during the same Advance.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		if len(c.timers) == 0 || c.timers[0].at.After(target) {
			break
		}
		t := heap.Pop(&c.timers).(*vtimer)
		t.fired = true
		if t.at.After(c.now) {
			c.now = t.at
		}
		c.mu.Unlock()
		t.f()
		c.mu.Lock()
	}
	c.now = target
	c.mu.Unlock()
}

// PendingTimers reports how many timers are waiting to fire.
func (c *VirtualClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

type vtimer struct {
	at    time.Time
	seq   uint64
	f     func()
	index int
	fired bool
}

type vtimerHeap []*vtimer

func (h vtimerHeap) Len() int { return len(h) }
func (h vtimerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h vtimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *vtimerHeap) Push(x any) {
	t := x.(*vtimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *vtimerHeap) Pop() any {
	old := *h
	t := old[len(old)-1]
	old[len(old)-1] = nil
	t.index = -1
	*h = old[:len(old)-1]
	return t
}

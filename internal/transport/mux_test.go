package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flcrypto"
)

// muxPair returns started muxes for a fresh 2-node network; the caller
// registers handlers on b before sending from a.
func muxPair(t *testing.T) (*ChanNetwork, *Mux, *Mux) {
	t.Helper()
	net := NewChanNetwork(ChanConfig{N: 2})
	t.Cleanup(net.Close)
	a, b := NewMux(net.Endpoint(0)), NewMux(net.Endpoint(1))
	t.Cleanup(a.Stop)
	t.Cleanup(b.Stop)
	return net, a, b
}

func TestMuxMailboxPreservesOrderPerProto(t *testing.T) {
	_, a, b := muxPair(t)
	got := make(chan byte, 256)
	b.Handle(1, func(_ flcrypto.NodeID, p []byte) { got <- p[0] })
	a.Start()
	b.Start()
	const k = 200
	for i := 0; i < k; i++ {
		if err := a.Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		select {
		case v := <-got:
			if v != byte(i) {
				t.Fatalf("message %d delivered out of order (got %d)", i, v)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at message %d", i)
		}
	}
}

func TestMuxBackpressureNeverDrops(t *testing.T) {
	// A slow handler on a Backpressure mailbox with a tiny capacity: the
	// sender outpaces it massively, yet every message must eventually be
	// handled, in order.
	_, a, b := muxPair(t)
	release := make(chan struct{})
	var handled atomic.Uint64
	b.HandleWith(1, func(_ flcrypto.NodeID, p []byte) {
		<-release
		handled.Add(1)
	}, MailboxConfig{Capacity: 4, Policy: Backpressure})
	a.Start()
	b.Start()

	const k = 100
	for i := 0; i < k; i++ {
		if err := a.Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Stalled handler: nothing handled, nothing dropped.
	time.Sleep(50 * time.Millisecond)
	if n := handled.Load(); n != 0 {
		t.Fatalf("handled %d messages while stalled", n)
	}
	if d := b.Dropped(1); d != 0 {
		t.Fatalf("Backpressure mailbox dropped %d messages", d)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for handled.Load() < k {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d messages handled after release", handled.Load(), k)
		}
		time.Sleep(time.Millisecond)
	}
	if d := b.Dropped(1); d != 0 {
		t.Fatalf("Backpressure mailbox dropped %d messages", d)
	}
}

func TestMuxDropPolicyShedsOverflow(t *testing.T) {
	_, a, b := muxPair(t)
	release := make(chan struct{})
	var handled atomic.Uint64
	b.HandleWith(1, func(_ flcrypto.NodeID, p []byte) {
		<-release
		handled.Add(1)
	}, MailboxConfig{Capacity: 8, Policy: DropNewest})
	a.Start()
	b.Start()

	const k = 200
	for i := 0; i < k; i++ {
		if err := a.Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the flood has hit the full mailbox: enqueued+dropped
	// accounts for every sent message.
	deadline := time.Now().Add(5 * time.Second)
	for b.Enqueued(1)+b.Dropped(1) < k {
		if time.Now().After(deadline) {
			t.Fatalf("flood not absorbed: enqueued=%d dropped=%d", b.Enqueued(1), b.Dropped(1))
		}
		time.Sleep(time.Millisecond)
	}
	if d := b.Dropped(1); d == 0 {
		t.Fatal("expected drops from a stalled DropNewest mailbox")
	}
	close(release)
	// Everything that was enqueued is delivered; the drops are gone.
	deadline = time.Now().Add(5 * time.Second)
	for handled.Load() < b.Enqueued(1) {
		if time.Now().After(deadline) {
			t.Fatalf("handled %d < enqueued %d", handled.Load(), b.Enqueued(1))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMuxFloodedProtoDoesNotStarveOthers(t *testing.T) {
	// The isolation property the refactor is for: a flood on a DropNewest
	// protocol whose handler is wedged must not delay another protocol's
	// delivery.
	_, a, b := muxPair(t)
	wedge := make(chan struct{})
	b.HandleWith(1, func(_ flcrypto.NodeID, _ []byte) { <-wedge }, MailboxConfig{Capacity: 4, Policy: DropNewest})
	defer close(wedge)
	got := make(chan []byte, 1)
	b.Handle(2, func(_ flcrypto.NodeID, p []byte) { got <- p })
	a.Start()
	b.Start()

	for i := 0; i < 500; i++ {
		if err := a.Send(1, 1, []byte("flood")); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Send(2, 1, []byte("control")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "control" {
			t.Fatalf("got %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("control-plane message starved by flooded protocol")
	}
}

func TestMuxUnhandleStopsDelivery(t *testing.T) {
	_, a, b := muxPair(t)
	got := make(chan struct{}, 16)
	b.Handle(1, func(_ flcrypto.NodeID, _ []byte) { got <- struct{}{} })
	a.Start()
	b.Start()
	if err := a.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("registered handler never ran")
	}
	b.Unhandle(1)
	if err := a.Send(1, 1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("handler ran after Unhandle")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMuxStopTerminatesMailboxes(t *testing.T) {
	net := NewChanNetwork(ChanConfig{N: 2})
	defer net.Close()
	m := NewMux(net.Endpoint(0))
	running := make(chan struct{}, 1)
	m.Handle(1, func(_ flcrypto.NodeID, _ []byte) { running <- struct{}{} })
	m.Start()
	if err := m.Send(1, 0, []byte("self")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-running:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never ran")
	}
	m.Stop() // must return promptly and leave no drainer behind
}

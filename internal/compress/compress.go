// Package compress wraps stdlib DEFLATE in a self-describing frame for
// block-body transfer. The paper's conclusion recommends it outright: "one
// should consider compressing the data for large transactions" — for large σ
// the raw transaction bytes dominate the network, so shrinking them is worth
// CPU (the trade the BenchmarkAblationCompression harness measures).
//
// A frame is [tag][payload]: tag 0 stores the data verbatim (used when the
// data is small or incompressible — compression never makes a frame larger
// than data+1), tag 1 holds the DEFLATE stream of the data. Unframe enforces
// a caller-supplied expansion bound so a malicious frame cannot balloon
// memory.
package compress

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
)

// Frame tags.
const (
	tagStored  = 0
	tagDeflate = 1
)

// MinSize is the default threshold below which data is stored verbatim —
// DEFLATE overhead swamps any gain on tiny payloads.
const MinSize = 256

// ErrFrameCorrupt reports a frame that cannot be decoded.
var ErrFrameCorrupt = errors.New("compress: corrupt frame")

// ErrFrameTooLarge reports a frame whose decompressed size exceeds the
// caller's bound.
var ErrFrameTooLarge = errors.New("compress: frame exceeds size bound")

// Frame encodes data as a frame, compressing when the payload is at least
// minSize bytes (pass 0 for MinSize) and compression actually shrinks it.
// The result is always decodable by Unframe; in the worst case it is data
// plus one tag byte.
func Frame(data []byte, minSize int) []byte {
	if minSize <= 0 {
		minSize = MinSize
	}
	if len(data) >= minSize {
		var buf bytes.Buffer
		buf.WriteByte(tagDeflate)
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err == nil {
			if _, err = w.Write(data); err == nil && w.Close() == nil && buf.Len() < 1+len(data) {
				return buf.Bytes()
			}
		}
	}
	out := make([]byte, 1+len(data))
	out[0] = tagStored
	copy(out[1:], data)
	return out
}

// Unframe decodes a frame produced by Frame. maxLen bounds the decoded size
// (0 means 64 MiB); frames that would exceed it fail with ErrFrameTooLarge.
func Unframe(frame []byte, maxLen int) ([]byte, error) {
	if maxLen <= 0 {
		maxLen = 64 << 20
	}
	if len(frame) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrFrameCorrupt)
	}
	switch frame[0] {
	case tagStored:
		data := frame[1:]
		if len(data) > maxLen {
			return nil, ErrFrameTooLarge
		}
		return append([]byte(nil), data...), nil
	case tagDeflate:
		r := flate.NewReader(bytes.NewReader(frame[1:]))
		defer r.Close()
		// Read one byte past the bound to detect overflow.
		data, err := io.ReadAll(io.LimitReader(r, int64(maxLen)+1))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
		}
		if len(data) > maxLen {
			return nil, ErrFrameTooLarge
		}
		return data, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrFrameCorrupt, frame[0])
	}
}

// Ratio reports the frame's size as a fraction of the original data size
// (1.0+ means compression did not help and the frame stored verbatim).
func Ratio(dataLen, frameLen int) float64 {
	if dataLen == 0 {
		return 1
	}
	return float64(frameLen) / float64(dataLen)
}

package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrameRoundTripCompressible(t *testing.T) {
	data := bytes.Repeat([]byte("transaction payload "), 200)
	frame := Frame(data, 0)
	if frame[0] != tagDeflate {
		t.Fatalf("compressible data stored verbatim (tag %d)", frame[0])
	}
	if len(frame) >= len(data) {
		t.Fatalf("frame (%d) not smaller than data (%d)", len(frame), len(data))
	}
	got, err := Unframe(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
}

func TestFrameStoresIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4096)
	rng.Read(data)
	frame := Frame(data, 0)
	if len(frame) > len(data)+1 {
		t.Fatalf("frame expanded data: %d > %d+1", len(frame), len(data))
	}
	got, err := Unframe(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
}

func TestFrameSmallDataStoredVerbatim(t *testing.T) {
	data := []byte("tiny")
	frame := Frame(data, 0)
	if frame[0] != tagStored {
		t.Fatalf("sub-threshold data compressed (tag %d)", frame[0])
	}
	if len(frame) != len(data)+1 {
		t.Fatalf("stored frame length %d", len(frame))
	}
}

func TestFrameEmptyData(t *testing.T) {
	frame := Frame(nil, 0)
	got, err := Unframe(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty round trip yielded %d bytes", len(got))
	}
}

func TestUnframeRejectsGarbage(t *testing.T) {
	if _, err := Unframe(nil, 0); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := Unframe([]byte{7, 1, 2}, 0); err == nil {
		t.Fatal("unknown tag accepted")
	}
	if _, err := Unframe([]byte{tagDeflate, 0xff, 0xff, 0xff}, 0); err == nil {
		t.Fatal("corrupt deflate stream accepted")
	}
}

func TestUnframeEnforcesBound(t *testing.T) {
	data := bytes.Repeat([]byte{'a'}, 10_000) // compresses very well
	frame := Frame(data, 0)
	if _, err := Unframe(frame, 100); err != ErrFrameTooLarge {
		t.Fatalf("decompression bomb not capped: %v", err)
	}
	// Stored frames respect the bound too.
	stored := Frame(bytes.Repeat([]byte{'b'}, 50), 1000)
	if _, err := Unframe(stored, 10); err != ErrFrameTooLarge {
		t.Fatalf("stored frame exceeded bound: %v", err)
	}
	if got, err := Unframe(frame, len(data)); err != nil || len(got) != len(data) {
		t.Fatalf("exact bound rejected: %v", err)
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	fn := func(data []byte, small bool) bool {
		minSize := 0
		if small {
			minSize = 1 // force the compression attempt on everything
		}
		frame := Frame(data, minSize)
		if len(frame) > len(data)+1 {
			return false // never expands beyond the tag byte
		}
		got, err := Unframe(frame, 0)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 5) != 1 {
		t.Fatal("zero-length ratio")
	}
	if r := Ratio(100, 50); r != 0.5 {
		t.Fatalf("ratio = %v", r)
	}
}

func BenchmarkFrameCompressible4K(b *testing.B) {
	data := bytes.Repeat([]byte("ledger entry: pay 100 to account 42; "), 110) // ~4 KiB
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Frame(data, 0)
	}
}

func BenchmarkUnframe4K(b *testing.B) {
	data := bytes.Repeat([]byte("ledger entry: pay 100 to account 42; "), 110)
	frame := Frame(data, 0)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unframe(frame, 0); err != nil {
			b.Fatal(err)
		}
	}
}

package pbft

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
)

const testProto transport.ProtoID = 3

type testCluster struct {
	t        *testing.T
	net      *transport.ChanNetwork
	muxes    []*transport.Mux
	replicas []*Replica

	mu        sync.Mutex
	delivered [][]string // per replica, flattened request log in delivery order
}

func newTestCluster(t *testing.T, n int, tweak func(*Config)) *testCluster {
	t.Helper()
	ks := flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519)
	c := &testCluster{
		t:         t,
		net:       transport.NewChanNetwork(transport.ChanConfig{N: n}),
		delivered: make([][]string, n),
	}
	for i := 0; i < n; i++ {
		i := i
		mux := transport.NewMux(c.net.Endpoint(flcrypto.NodeID(i)))
		cfg := Config{
			Mux:         mux,
			Proto:       testProto,
			Registry:    ks.Registry,
			Priv:        ks.Privs[i],
			ViewTimeout: 250 * time.Millisecond,
			Tick:        10 * time.Millisecond,
			Deliver: func(seq uint64, batch [][]byte) {
				c.mu.Lock()
				for _, req := range batch {
					c.delivered[i] = append(c.delivered[i], string(req))
				}
				c.mu.Unlock()
			},
		}
		if tweak != nil {
			tweak(&cfg)
		}
		r := NewReplica(cfg)
		c.muxes = append(c.muxes, mux)
		c.replicas = append(c.replicas, r)
		mux.Start()
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			r.Stop()
		}
		for _, m := range c.muxes {
			m.Stop()
		}
		c.net.Close()
	})
	return c
}

// waitDelivered blocks until every replica in `who` has delivered at least
// `count` requests, or the deadline passes.
func (c *testCluster) waitDelivered(who []int, count int, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		done := true
		c.mu.Lock()
		for _, i := range who {
			if len(c.delivered[i]) < count {
				done = false
				break
			}
		}
		c.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			c.mu.Lock()
			counts := make([]int, len(c.delivered))
			for i := range c.delivered {
				counts[i] = len(c.delivered[i])
			}
			c.mu.Unlock()
			c.t.Fatalf("timed out waiting for %d deliveries; have %v", count, counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkPrefixAgreement verifies the delivered logs are prefix-comparable.
func (c *testCluster) checkPrefixAgreement(who []int) {
	c.t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, i := range who {
		for _, j := range who {
			a, b := c.delivered[i], c.delivered[j]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k] != b[k] {
					c.t.Fatalf("order divergence at %d: replica %d=%q, replica %d=%q", k, i, a[k], j, b[k])
				}
			}
		}
	}
}

func all(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestPBFTBasicOrdering(t *testing.T) {
	c := newTestCluster(t, 4, nil)
	for k := 0; k < 10; k++ {
		if err := c.replicas[0].Submit([]byte(fmt.Sprintf("req-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	c.waitDelivered(all(4), 10, 5*time.Second)
	c.checkPrefixAgreement(all(4))
}

func TestPBFTConcurrentSubmitters(t *testing.T) {
	const n = 4
	c := newTestCluster(t, n, nil)
	const per = 25
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := c.replicas[i].Submit([]byte(fmt.Sprintf("n%d-req%d", i, k))); err != nil {
					t.Errorf("submit: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	c.waitDelivered(all(n), n*per, 10*time.Second)
	c.checkPrefixAgreement(all(n))
	// Exactly-once delivery.
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		seen := make(map[string]bool)
		for _, req := range c.delivered[i] {
			if seen[req] {
				t.Fatalf("replica %d delivered %q twice", i, req)
			}
			seen[req] = true
		}
		if len(seen) != n*per {
			t.Fatalf("replica %d delivered %d unique requests, want %d", i, len(seen), n*per)
		}
	}
}

func TestPBFTDuplicateSubmitDeliveredOnce(t *testing.T) {
	c := newTestCluster(t, 4, nil)
	req := []byte("same request")
	for k := 0; k < 3; k++ {
		if err := c.replicas[1].Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.replicas[2].Submit([]byte("marker")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered(all(4), 2, 5*time.Second)
	time.Sleep(200 * time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	count := 0
	for _, r := range c.delivered[0] {
		if r == "same request" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate request delivered %d times", count)
	}
}

func TestPBFTLeaderCrashViewChange(t *testing.T) {
	const n = 4
	c := newTestCluster(t, n, nil)
	// Warm up under leader 0.
	if err := c.replicas[1].Submit([]byte("before crash")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered(all(n), 1, 5*time.Second)

	// Crash the leader of view 0 (node 0). Remaining replicas must rotate
	// to view 1 and keep ordering.
	c.net.Crash(0)
	rest := []int{1, 2, 3}
	for k := 0; k < 5; k++ {
		if err := c.replicas[1].Submit([]byte(fmt.Sprintf("after-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	c.waitDelivered(rest, 6, 15*time.Second)
	c.checkPrefixAgreement(rest)
	if vc := c.replicas[1].Metrics().ViewChanges.Load(); vc == 0 {
		t.Fatal("no view change recorded despite leader crash")
	}
}

func TestPBFTSuccessiveLeaderCrashes(t *testing.T) {
	// n=7 tolerates f=2: crash leaders of views 0 and 1; the cluster must
	// settle on view 2.
	const n = 7
	c := newTestCluster(t, n, nil)
	if err := c.replicas[3].Submit([]byte("warmup")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered(all(n), 1, 5*time.Second)
	c.net.Crash(0)
	c.net.Crash(1)
	rest := []int{2, 3, 4, 5, 6}
	for k := 0; k < 3; k++ {
		if err := c.replicas[4].Submit([]byte(fmt.Sprintf("x-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	c.waitDelivered(rest, 4, 30*time.Second)
	c.checkPrefixAgreement(rest)
}

func TestPBFTLaggingReplicaCatchesUp(t *testing.T) {
	const n = 4
	c := newTestCluster(t, n, nil)
	// Isolate replica 3 (it can talk to no one), commit traffic, then heal.
	c.net.SetLinkFilter(func(from, to flcrypto.NodeID) bool {
		return from == 3 || to == 3
	})
	for k := 0; k < 8; k++ {
		if err := c.replicas[0].Submit([]byte(fmt.Sprintf("iso-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	c.waitDelivered([]int{0, 1, 2}, 8, 10*time.Second)
	c.net.SetLinkFilter(nil)
	// New traffic makes replica 3 notice it is behind and fetch.
	if err := c.replicas[0].Submit([]byte("post-heal")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered(all(n), 9, 20*time.Second)
	c.checkPrefixAgreement(all(n))
}

func TestPBFTBatching(t *testing.T) {
	c := newTestCluster(t, 4, func(cfg *Config) { cfg.BatchSize = 100 })
	const k = 300
	for i := 0; i < k; i++ {
		if err := c.replicas[0].Submit([]byte(fmt.Sprintf("b-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.waitDelivered(all(4), k, 15*time.Second)
	c.checkPrefixAgreement(all(4))
	// Batching must actually batch: far fewer batches than requests.
	if batches := c.replicas[0].Metrics().BatchesDelivered.Load(); batches >= k {
		t.Fatalf("no batching: %d batches for %d requests", batches, k)
	}
}

func TestPBFTMetricsCounters(t *testing.T) {
	c := newTestCluster(t, 4, nil)
	if err := c.replicas[0].Submit([]byte("counted")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered(all(4), 1, 5*time.Second)
	m := c.replicas[1].Metrics()
	if m.RequestsDelivered.Load() != 1 {
		t.Fatalf("RequestsDelivered = %d", m.RequestsDelivered.Load())
	}
	if m.SignOps.Load() == 0 || m.VerifyOps.Load() == 0 {
		t.Fatal("signature counters not incremented")
	}
}

func TestPBFTLogGCBoundsMemory(t *testing.T) {
	// The executed-entry log is the checkpoint mechanism's stand-in: after
	// KeepWindow executed sequences, older entries must be discarded, so a
	// long-running replica's memory stays bounded.
	c := newTestCluster(t, 4, func(cfg *Config) {
		cfg.KeepWindow = 16
		cfg.BatchSize = 1
	})
	// Submit in chunks, waiting for the whole cluster between them: a
	// replica can never fall further behind than one chunk, which keeps it
	// inside every peer's KeepWindow (lag beyond the window is
	// unrecoverable by design — see Config.KeepWindow).
	const total = 120
	const chunk = 12
	for base := 0; base < total; base += chunk {
		for i := base; i < base+chunk; i++ {
			if err := c.replicas[0].Submit([]byte(fmt.Sprintf("req-%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		c.waitDelivered(all(4), base+chunk, 60*time.Second)
	}
	for i, r := range c.replicas {
		size := r.Metrics().EntriesRetained.Load()
		// Entries in flight plus the keep window; generous slack for the
		// proposal window.
		if size > 16+uint64(r.cfg.Window)+8 {
			t.Fatalf("replica %d retains %d entries after GC (keep 16, window %d)", i, size, r.cfg.Window)
		}
	}
	c.checkPrefixAgreement(all(4))
}

package pbft

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
	"repro/internal/types"
)

// byzCluster runs replicas 1..n-1 honestly while the test drives node 0's
// endpoint by hand, signing with node 0's real key — a fully-equipped
// Byzantine leader.
type byzCluster struct {
	t        *testing.T
	ks       *flcrypto.KeySet
	net      *transport.ChanNetwork
	evilMux  *transport.Mux
	replicas []*Replica // index 1..n-1; [0] is nil
	logs     *testCluster
}

func newByzCluster(t *testing.T, n int) (*byzCluster, *testCluster) {
	t.Helper()
	ks := flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519)
	c := &testCluster{
		t:         t,
		net:       transport.NewChanNetwork(transport.ChanConfig{N: n}),
		delivered: make([][]string, n),
	}
	bz := &byzCluster{t: t, ks: ks, net: c.net, logs: c}
	for i := 0; i < n; i++ {
		i := i
		mux := transport.NewMux(c.net.Endpoint(flcrypto.NodeID(i)))
		c.muxes = append(c.muxes, mux)
		if i == 0 {
			bz.evilMux = mux
			mux.Start()
			c.replicas = append(c.replicas, nil)
			continue
		}
		r := NewReplica(Config{
			Mux:         mux,
			Proto:       testProto,
			Registry:    ks.Registry,
			Priv:        ks.Privs[i],
			ViewTimeout: 250 * time.Millisecond,
			Tick:        10 * time.Millisecond,
			Deliver: func(seq uint64, batch [][]byte) {
				c.mu.Lock()
				for _, req := range batch {
					c.delivered[i] = append(c.delivered[i], string(req))
				}
				c.mu.Unlock()
			},
		})
		c.replicas = append(c.replicas, r)
		mux.Start()
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			if r != nil {
				r.Stop()
			}
		}
		for _, m := range c.muxes {
			m.Stop()
		}
		c.net.Close()
	})
	return bz, c
}

// sign wraps body in the wire envelope signed with node 0's key.
func (bz *byzCluster) sign(body []byte) []byte {
	sig, err := bz.ks.Privs[0].Sign(body)
	if err != nil {
		bz.t.Fatal(err)
	}
	e := types.NewEncoder(len(body) + len(sig) + 8)
	e.Bytes32(body)
	e.Bytes32(sig)
	return e.Bytes()
}

func (bz *byzCluster) prePrepareBody(view, seq uint64, batch [][]byte) []byte {
	pp := prePrepare{View: view, Seq: seq, Batch: batch}
	return encodeBody(kindPrePrepare, func(e *types.Encoder) { pp.encode(e) })
}

func TestPBFTEquivocatingLeaderCannotFork(t *testing.T) {
	// The Byzantine leader of view 0 sends conflicting pre-prepares for
	// seq 1: batch A to replicas 1,2 and batch B to replica 3. At most one
	// can gather a commit quorum (3 of 4), and after the inevitable view
	// change the logs of all correct replicas must still be
	// prefix-consistent.
	bz, c := newByzCluster(t, 4)
	reqA := []byte("batch-A")
	reqB := []byte("batch-B")
	ppA := bz.sign(bz.prePrepareBody(0, 1, [][]byte{reqA}))
	ppB := bz.sign(bz.prePrepareBody(0, 1, [][]byte{reqB}))
	if err := bz.evilMux.Send(testProto, 1, ppA); err != nil {
		t.Fatal(err)
	}
	if err := bz.evilMux.Send(testProto, 2, ppA); err != nil {
		t.Fatal(err)
	}
	if err := bz.evilMux.Send(testProto, 3, ppB); err != nil {
		t.Fatal(err)
	}
	// Submit an honest request so the cluster keeps having work; the view
	// change away from the silent/equivocating leader must restore
	// liveness.
	if err := c.replicas[1].Submit([]byte("honest")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered([]int{1, 2, 3}, 1, 30*time.Second)
	c.checkPrefixAgreement([]int{1, 2, 3})
	// No replica may ever deliver both conflicting batches out of thin
	// air; if one was ordered (possible, both are "valid" requests), all
	// replicas agree on which.
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, i := range []int{1, 2, 3} {
		for _, j := range []int{1, 2, 3} {
			a, b := c.delivered[i], c.delivered[j]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k] != b[k] {
					t.Fatalf("forked logs: replica %d has %q, replica %d has %q at %d", i, a[k], j, b[k], k)
				}
			}
		}
	}
}

func TestPBFTForgedSignaturesIgnored(t *testing.T) {
	// Envelopes with broken signatures must be dropped wholesale.
	bz, c := newByzCluster(t, 4)
	body := bz.prePrepareBody(0, 1, [][]byte{[]byte("evil")})
	sig, _ := bz.ks.Privs[0].Sign(body)
	sig[0] ^= 0xff // corrupt
	e := types.NewEncoder(0)
	e.Bytes32(body)
	e.Bytes32(sig)
	if err := bz.evilMux.Broadcast(testProto, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	// The cluster still works (view change away from silent leader 0).
	if err := c.replicas[2].Submit([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered([]int{1, 2, 3}, 1, 30*time.Second)
	for _, i := range []int{1, 2, 3} {
		c.mu.Lock()
		for _, req := range c.delivered[i] {
			if req == "evil" {
				c.mu.Unlock()
				t.Fatal("forged pre-prepare was executed")
			}
		}
		c.mu.Unlock()
	}
}

func TestPBFTGarbageFramesIgnored(t *testing.T) {
	bz, c := newByzCluster(t, 4)
	for _, frame := range [][]byte{nil, {1}, {0xff, 0xff, 0xff}, make([]byte, 64)} {
		if err := bz.evilMux.Broadcast(testProto, frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.replicas[1].Submit([]byte("after garbage")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered([]int{1, 2, 3}, 1, 30*time.Second)
	c.checkPrefixAgreement([]int{1, 2, 3})
}

func TestPBFTBogusViewChangeCannotHijack(t *testing.T) {
	// A Byzantine node announces a view change with a fabricated prepared
	// certificate (not enough prepares). Correct replicas must not adopt a
	// batch on its say-so.
	bz, c := newByzCluster(t, 4)
	// Craft a cert with a real pre-prepare but zero prepares.
	ppBody := bz.prePrepareBody(0, 1, [][]byte{[]byte("hijack")})
	ppSig, _ := bz.ks.Privs[0].Sign(ppBody)
	cert := preparedCert{PrePrepare: signedRaw{From: 0, Body: ppBody, Sig: ppSig}}
	vc := viewChange{NewView: 1, LastExec: 0, Certs: []preparedCert{cert}}
	vcBody := encodeBody(kindViewChange, func(e *types.Encoder) { vc.encode(e) })
	if err := bz.evilMux.Broadcast(testProto, bz.sign(vcBody)); err != nil {
		t.Fatal(err)
	}
	if err := c.replicas[1].Submit([]byte("normal work")); err != nil {
		t.Fatal(err)
	}
	c.waitDelivered([]int{1, 2, 3}, 1, 30*time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, i := range []int{1, 2, 3} {
		for _, req := range c.delivered[i] {
			if req == "hijack" {
				t.Fatalf("uncertified batch executed at replica %d", i)
			}
		}
	}
}

func TestPBFTHighThroughputManyRequests(t *testing.T) {
	// Soak: 1000 requests through a 4-replica cluster, exactly-once, in
	// one order.
	c := newTestCluster(t, 4, func(cfg *Config) { cfg.BatchSize = 64 })
	const k = 1000
	for i := 0; i < k; i++ {
		if err := c.replicas[i%4].Submit([]byte(fmt.Sprintf("req-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.waitDelivered(all(4), k, 60*time.Second)
	c.checkPrefixAgreement(all(4))
}

// Package pbft implements Practical Byzantine Fault Tolerance state-machine
// replication: a leader-based, three-phase (pre-prepare / prepare / commit)
// atomic broadcast with view changes and state transfer.
//
// In this repository PBFT plays two roles, mirroring how the paper uses
// BFT-SMaRt (§6.1.2): it is FireLedger's recovery-path ordering service (the
// Atomic Broadcast of Algorithm 3 and the fallback consensus behind OBBC),
// and it is the "previous state of the art" baseline of Fig 17. BFT-SMaRt is
// itself a PBFT-family engine, so the substitution preserves the three-phase
// quadratic communication pattern the comparison depends on.
package pbft

import (
	"repro/internal/flcrypto"
	"repro/internal/types"
)

// Message kinds on the wire.
const (
	kindRequest    = 1
	kindPrePrepare = 2
	kindPrepare    = 3
	kindCommit     = 4
	kindViewChange = 5
	kindNewView    = 6
	kindFetch      = 7
	kindFetchResp  = 8
)

// prePrepare is the leader's proposal binding (view, seq) to a batch.
type prePrepare struct {
	View  uint64
	Seq   uint64
	Batch [][]byte
}

func (m *prePrepare) digest() flcrypto.Hash {
	h := flcrypto.NewHasher()
	h.WriteUint64(m.View)
	h.WriteUint64(m.Seq)
	h.WriteUint64(uint64(len(m.Batch)))
	for _, req := range m.Batch {
		rh := flcrypto.Sum256(req)
		h.Write(rh[:])
	}
	return h.Sum()
}

// batchDigest identifies the batch content independent of view, so a batch
// re-proposed in a later view keeps its identity.
func batchDigest(batch [][]byte) flcrypto.Hash {
	h := flcrypto.NewHasher()
	h.WriteUint64(uint64(len(batch)))
	for _, req := range batch {
		rh := flcrypto.Sum256(req)
		h.Write(rh[:])
	}
	return h.Sum()
}

func (m *prePrepare) encode(e *types.Encoder) {
	e.Uint64(m.View)
	e.Uint64(m.Seq)
	e.Uint32(uint32(len(m.Batch)))
	for _, req := range m.Batch {
		e.Bytes32(req)
	}
}

func decodePrePrepare(d *types.Decoder) prePrepare {
	var m prePrepare
	m.View = d.Uint64()
	m.Seq = d.Uint64()
	n := d.Uint32()
	if d.Err() != nil || n > 1<<20 {
		return m
	}
	m.Batch = make([][]byte, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Batch = append(m.Batch, append([]byte(nil), d.Bytes32()...))
	}
	return m
}

// vote is a prepare or commit: an endorsement of digest at (view, seq).
type vote struct {
	View   uint64
	Seq    uint64
	Digest flcrypto.Hash
}

func (m *vote) encode(e *types.Encoder) {
	e.Uint64(m.View)
	e.Uint64(m.Seq)
	e.Hash(m.Digest)
}

func decodeVote(d *types.Decoder) vote {
	return vote{View: d.Uint64(), Seq: d.Uint64(), Digest: d.Hash()}
}

// signedRaw is a raw signed message as received, kept verbatim so it can be
// embedded in certificates (view changes carry other replicas' signed
// prepares).
type signedRaw struct {
	From flcrypto.NodeID
	Body []byte // kind byte + message encoding
	Sig  flcrypto.Signature
}

func (m *signedRaw) encode(e *types.Encoder) {
	e.Int64(int64(m.From))
	e.Bytes32(m.Body)
	e.Bytes32(m.Sig)
}

func decodeSignedRaw(d *types.Decoder) signedRaw {
	var m signedRaw
	m.From = flcrypto.NodeID(d.Int64())
	m.Body = append([]byte(nil), d.Bytes32()...)
	m.Sig = append(flcrypto.Signature(nil), d.Bytes32()...)
	return m
}

// preparedCert proves that a batch was prepared at some replica: the
// leader's signed pre-prepare plus 2f signed prepares on its digest.
type preparedCert struct {
	PrePrepare signedRaw
	Prepares   []signedRaw
}

func (c *preparedCert) encode(e *types.Encoder) {
	c.PrePrepare.encode(e)
	e.Uint32(uint32(len(c.Prepares)))
	for i := range c.Prepares {
		c.Prepares[i].encode(e)
	}
}

func decodePreparedCert(d *types.Decoder) preparedCert {
	var c preparedCert
	c.PrePrepare = decodeSignedRaw(d)
	n := d.Uint32()
	if d.Err() != nil || n > 1<<16 {
		return c
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		c.Prepares = append(c.Prepares, decodeSignedRaw(d))
	}
	return c
}

// viewChange announces a replica's vote to move to NewView, carrying its
// prepared certificates so the new leader cannot drop prepared batches.
type viewChange struct {
	NewView  uint64
	LastExec uint64
	Certs    []preparedCert
}

func (m *viewChange) encode(e *types.Encoder) {
	e.Uint64(m.NewView)
	e.Uint64(m.LastExec)
	e.Uint32(uint32(len(m.Certs)))
	for i := range m.Certs {
		m.Certs[i].encode(e)
	}
}

func decodeViewChange(d *types.Decoder) viewChange {
	var m viewChange
	m.NewView = d.Uint64()
	m.LastExec = d.Uint64()
	n := d.Uint32()
	if d.Err() != nil || n > 1<<16 {
		return m
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Certs = append(m.Certs, decodePreparedCert(d))
	}
	return m
}

// newView is the new leader's installation message: the quorum of view
// changes justifying it and the pre-prepares that carry prepared batches
// into the new view.
type newView struct {
	View        uint64
	ViewChanges []signedRaw
	PrePrepares []signedRaw
}

func (m *newView) encode(e *types.Encoder) {
	e.Uint64(m.View)
	e.Uint32(uint32(len(m.ViewChanges)))
	for i := range m.ViewChanges {
		m.ViewChanges[i].encode(e)
	}
	e.Uint32(uint32(len(m.PrePrepares)))
	for i := range m.PrePrepares {
		m.PrePrepares[i].encode(e)
	}
}

func decodeNewView(d *types.Decoder) newView {
	var m newView
	m.View = d.Uint64()
	n := d.Uint32()
	if d.Err() != nil || n > 1<<16 {
		return m
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.ViewChanges = append(m.ViewChanges, decodeSignedRaw(d))
	}
	n = d.Uint32()
	if d.Err() != nil || n > 1<<20 {
		return m
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.PrePrepares = append(m.PrePrepares, decodeSignedRaw(d))
	}
	return m
}

// fetchResp carries a committed batch to a lagging replica: the pre-prepare
// that proposed it and 2f+1 signed commits proving it was decided.
type fetchResp struct {
	Seq        uint64
	PrePrepare signedRaw
	Commits    []signedRaw
}

func (m *fetchResp) encode(e *types.Encoder) {
	e.Uint64(m.Seq)
	m.PrePrepare.encode(e)
	e.Uint32(uint32(len(m.Commits)))
	for i := range m.Commits {
		m.Commits[i].encode(e)
	}
}

func decodeFetchResp(d *types.Decoder) fetchResp {
	var m fetchResp
	m.Seq = d.Uint64()
	m.PrePrepare = decodeSignedRaw(d)
	n := d.Uint32()
	if d.Err() != nil || n > 1<<16 {
		return m
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Commits = append(m.Commits, decodeSignedRaw(d))
	}
	return m
}

package pbft

import (
	"sort"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// startViewChange abandons the current view and votes for target.
func (r *Replica) startViewChange(target uint64) {
	if target <= r.view || (r.inVC && target <= r.vcTarget) {
		return
	}
	r.inVC = true
	r.vcTarget = target
	r.vcFails++
	r.deadline = time.Now().Add(r.timeout()) // bound the view change itself

	vc := viewChange{NewView: target, LastExec: r.lastExec}
	for _, en := range r.sortedEntries() {
		if en.seq <= r.lastExec || en.pp == nil || !r.preparedQuorum(en) {
			continue
		}
		cert := preparedCert{PrePrepare: *en.pp}
		set := en.prepares[voteKey{view: en.view, digest: en.digest}]
		for from, raw := range set {
			if from == r.leaderOf(en.view) {
				continue
			}
			cert.Prepares = append(cert.Prepares, raw)
			if len(cert.Prepares) == 2*r.f {
				break
			}
		}
		vc.Certs = append(vc.Certs, cert)
	}
	r.signAndBroadcast(encodeBody(kindViewChange, func(e *types.Encoder) { vc.encode(e) }))
}

func (r *Replica) sortedEntries() []*entry {
	out := make([]*entry, 0, len(r.entries))
	for _, en := range r.entries {
		out = append(out, en)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func (r *Replica) onViewChange(raw signedRaw, vc viewChange) {
	if vc.NewView <= r.view {
		return
	}
	set := r.vcs[vc.NewView]
	if set == nil {
		set = make(map[flcrypto.NodeID]signedRaw)
		r.vcs[vc.NewView] = set
	}
	set[raw.From] = raw

	// Join a view change that f+1 others already voted for: at least one
	// correct replica timed out, so the suspicion is credible.
	if !r.inVC || r.vcTarget < vc.NewView {
		if len(set) >= r.f+1 && (!r.inVC || vc.NewView > r.vcTarget) {
			r.startViewChange(vc.NewView)
		}
	}

	// The designated leader of the new view assembles NEW-VIEW at quorum.
	if r.leaderOf(vc.NewView) == r.id && len(set) >= 2*r.f+1 {
		r.buildNewView(vc.NewView)
	}
}

// validateCert checks a prepared certificate: a pre-prepare signed by the
// leader of its view plus 2f distinct non-leader prepares on its digest.
// It returns the decoded pre-prepare and true on success.
func (r *Replica) validateCert(c *preparedCert) (prePrepare, bool) {
	if len(c.PrePrepare.Body) == 0 || c.PrePrepare.Body[0] != kindPrePrepare {
		return prePrepare{}, false
	}
	if !r.verifyRaw(&c.PrePrepare) {
		return prePrepare{}, false
	}
	r.metrics.VerifyOps.Add(1)
	d := types.NewDecoder(c.PrePrepare.Body[1:])
	pp := decodePrePrepare(d)
	if d.Err() != nil {
		return prePrepare{}, false
	}
	if c.PrePrepare.From != r.leaderOf(pp.View) {
		return prePrepare{}, false
	}
	digest := batchDigest(pp.Batch)
	seen := make(map[flcrypto.NodeID]bool)
	for i := range c.Prepares {
		p := &c.Prepares[i]
		if len(p.Body) == 0 || p.Body[0] != kindPrepare {
			continue
		}
		if p.From == r.leaderOf(pp.View) || seen[p.From] {
			continue
		}
		if !r.verifyRaw(p) {
			continue
		}
		r.metrics.VerifyOps.Add(1)
		pd := types.NewDecoder(p.Body[1:])
		v := decodeVote(pd)
		if pd.Finish() != nil || v.View != pp.View || v.Seq != pp.Seq || v.Digest != digest {
			continue
		}
		seen[p.From] = true
	}
	return pp, len(seen) >= 2*r.f
}

// computeNewViewPlan derives, from a quorum of view changes, the pre-prepare
// assignments the new view must start with: for every sequence number above
// the quorum's minimum LastExec up to the highest certified one, the batch
// from the highest-view valid certificate, or an empty no-op batch if no
// certificate covers it. Both the new leader (to build NEW-VIEW) and the
// backups (to validate it) run this same function, so they agree.
func (r *Replica) computeNewViewPlan(vcRaws []signedRaw) (low uint64, plan map[uint64][][]byte, high uint64, ok bool) {
	low = ^uint64(0)
	plan = make(map[uint64][][]byte)
	bestView := make(map[uint64]uint64)
	for i := range vcRaws {
		raw := &vcRaws[i]
		if len(raw.Body) == 0 || raw.Body[0] != kindViewChange {
			return 0, nil, 0, false
		}
		d := types.NewDecoder(raw.Body[1:])
		vc := decodeViewChange(d)
		if d.Err() != nil {
			return 0, nil, 0, false
		}
		if vc.LastExec < low {
			low = vc.LastExec
		}
		for j := range vc.Certs {
			pp, valid := r.validateCert(&vc.Certs[j])
			if !valid {
				continue
			}
			if old, exists := bestView[pp.Seq]; !exists || pp.View > old {
				bestView[pp.Seq] = pp.View
				plan[pp.Seq] = pp.Batch
				if pp.Seq > high {
					high = pp.Seq
				}
			}
		}
	}
	if low == ^uint64(0) {
		low = 0
	}
	if high < low {
		high = low
	}
	return low, plan, high, true
}

// buildNewView is executed by the leader of `target` once it holds a view
// change quorum.
func (r *Replica) buildNewView(target uint64) {
	set := r.vcs[target]
	var raws []signedRaw
	seen := make(map[flcrypto.NodeID]bool)
	for from, raw := range set {
		if seen[from] {
			continue
		}
		seen[from] = true
		raws = append(raws, raw)
		if len(raws) == 2*r.f+1 {
			break
		}
	}
	if len(raws) < 2*r.f+1 {
		return
	}
	low, plan, high, ok := r.computeNewViewPlan(raws)
	if !ok {
		return
	}
	nv := newView{View: target, ViewChanges: raws}
	for seq := low + 1; seq <= high; seq++ {
		batch := plan[seq] // nil -> no-op batch
		pp := prePrepare{View: target, Seq: seq, Batch: batch}
		body := encodeBody(kindPrePrepare, func(e *types.Encoder) { pp.encode(e) })
		raw, err := r.signedRawFor(body)
		if err != nil {
			return
		}
		nv.PrePrepares = append(nv.PrePrepares, raw)
	}
	r.signAndBroadcast(encodeBody(kindNewView, func(e *types.Encoder) { nv.encode(e) }))
	// Install locally when the broadcast loops back through onNewView.
}

func (r *Replica) onNewView(raw signedRaw, nv newView) {
	if nv.View < r.view || (nv.View == r.view && !r.inVC) {
		return
	}
	if raw.From != r.leaderOf(nv.View) {
		return
	}
	// Validate the view-change quorum.
	seen := make(map[flcrypto.NodeID]bool)
	for i := range nv.ViewChanges {
		vcr := &nv.ViewChanges[i]
		if len(vcr.Body) == 0 || vcr.Body[0] != kindViewChange || seen[vcr.From] {
			continue
		}
		if !r.verifyRaw(vcr) {
			continue
		}
		r.metrics.VerifyOps.Add(1)
		d := types.NewDecoder(vcr.Body[1:])
		vc := decodeViewChange(d)
		if d.Err() != nil || vc.NewView != nv.View {
			continue
		}
		seen[vcr.From] = true
	}
	if len(seen) < 2*r.f+1 {
		return
	}
	// Recompute the plan and check the leader followed it.
	low, plan, high, ok := r.computeNewViewPlan(nv.ViewChanges)
	if !ok {
		return
	}
	expected := int(high - low)
	if expected < 0 || len(nv.PrePrepares) != expected {
		return
	}
	decoded := make([]prePrepare, 0, len(nv.PrePrepares))
	for i := range nv.PrePrepares {
		ppr := &nv.PrePrepares[i]
		if len(ppr.Body) == 0 || ppr.Body[0] != kindPrePrepare {
			return
		}
		if ppr.From != r.leaderOf(nv.View) || !r.verifyRaw(ppr) {
			return
		}
		r.metrics.VerifyOps.Add(1)
		d := types.NewDecoder(ppr.Body[1:])
		pp := decodePrePrepare(d)
		if d.Err() != nil || pp.View != nv.View {
			return
		}
		wantSeq := low + 1 + uint64(i)
		if pp.Seq != wantSeq {
			return
		}
		if batchDigest(pp.Batch) != batchDigest(plan[pp.Seq]) {
			return
		}
		decoded = append(decoded, pp)
	}

	// Install the new view.
	r.view = nv.View
	r.inVC = false
	r.vcTarget = 0
	r.metrics.ViewChanges.Add(1)
	for v := range r.vcs {
		if v <= nv.View {
			delete(r.vcs, v)
		}
	}
	// Reset in-flight entries from older views that were not carried over:
	// their pre-prepares are void in the new view.
	for seq, en := range r.entries {
		if seq > r.lastExec && !en.executed && en.view < nv.View {
			delete(r.entries, seq)
		}
	}
	r.assigned = make(map[flcrypto.Hash]uint64)
	// Process the carried-over pre-prepares through the normal path.
	for i := range decoded {
		r.onPrePrepare(nv.PrePrepares[i], decoded[i])
	}
	r.nextSeq = high + 1
	if r.nextSeq <= r.lastExec {
		r.nextSeq = r.lastExec + 1
	}
	r.deadline = time.Time{}
	r.armTimer()
	r.tryPropose()
}

package pbft

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
	"repro/internal/types"
)

// DeliverFunc receives executed batches in sequence order. It runs on the
// replica's event loop and must not block; duplicate requests (possible
// across view changes) are filtered before delivery.
type DeliverFunc func(seq uint64, batch [][]byte)

// Config configures a Replica.
type Config struct {
	// Mux is the node's transport multiplexer.
	Mux *transport.Mux
	// Proto is the protocol tag this replica claims on the mux.
	Proto transport.ProtoID
	// Registry holds every replica's verification key.
	Registry *flcrypto.Registry
	// Priv is this replica's signing key.
	Priv flcrypto.PrivateKey
	// VerifyPool, when non-nil, moves inbound-envelope verification off the
	// event loop onto the transport mailbox goroutine (the event loop then
	// runs crypto-free) and routes it — and certificate checks — through the
	// pool's dedup cache. Nil preserves the fully synchronous path: every
	// signature verified on the event loop.
	VerifyPool *flcrypto.VerifyPool
	// Deliver receives executed batches.
	Deliver DeliverFunc
	// BatchSize caps requests per pre-prepare (default 256).
	BatchSize int
	// Window caps outstanding (proposed, unexecuted) sequence numbers
	// (default 64).
	Window int
	// ViewTimeout is the base leader-failure timeout; it doubles on each
	// consecutive failed view (default 400ms).
	ViewTimeout time.Duration
	// Tick is the housekeeping granularity (default 20ms).
	Tick time.Duration
	// KeepWindow is how many executed entries are retained to serve state
	// transfer (default 1024). It is also the maximum lag a replica can
	// recover from: entries older than lastExec−KeepWindow are gone
	// cluster-wide, so a replica that falls further behind than every
	// peer's window cannot be re-filled by fetch alone (full PBFT closes
	// this with application-state snapshots; FireLedger's own catch-up path
	// serves that role at the chain layer).
	KeepWindow uint64
}

func (c *Config) fillDefaults() {
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.Window == 0 {
		c.Window = 64
	}
	if c.ViewTimeout == 0 {
		c.ViewTimeout = 400 * time.Millisecond
	}
	if c.Tick == 0 {
		c.Tick = 20 * time.Millisecond
	}
	if c.KeepWindow == 0 {
		c.KeepWindow = 1024
	}
}

// Metrics exposes counters for the evaluation harness.
type Metrics struct {
	// BatchesDelivered counts executed batches.
	BatchesDelivered atomic.Uint64
	// RequestsDelivered counts executed (deduplicated) requests.
	RequestsDelivered atomic.Uint64
	// ViewChanges counts installed views beyond the initial one.
	ViewChanges atomic.Uint64
	// SignOps counts signature creations, for the Table 1 accounting.
	SignOps atomic.Uint64
	// VerifyOps counts signature verifications.
	VerifyOps atomic.Uint64
	// EntriesRetained gauges the protocol log size after the latest GC —
	// the bounded-memory guarantee of the checkpoint window.
	EntriesRetained atomic.Uint64
}

type voteKey struct {
	view   uint64
	digest flcrypto.Hash
}

// entry is the per-sequence-number consensus slot.
type entry struct {
	seq      uint64
	view     uint64 // view of the accepted pre-prepare
	digest   flcrypto.Hash
	batch    [][]byte
	pp       *signedRaw // accepted pre-prepare, verbatim, for certificates
	prepares map[voteKey]map[flcrypto.NodeID]signedRaw
	commits  map[voteKey]map[flcrypto.NodeID]signedRaw
	sentPrep bool
	sentComm bool
	executed bool
}

func newEntry(seq uint64) *entry {
	return &entry{
		seq:      seq,
		prepares: make(map[voteKey]map[flcrypto.NodeID]signedRaw),
		commits:  make(map[voteKey]map[flcrypto.NodeID]signedRaw),
	}
}

type event struct {
	from flcrypto.NodeID
	body []byte
	sig  flcrypto.Signature
	// verified marks envelopes already checked by the verify pool on the
	// inbound path, so the event loop does not re-verify them.
	verified bool
}

// Replica is one PBFT node. Create with NewReplica, then Start. All protocol
// state is owned by a single event-loop goroutine.
type Replica struct {
	cfg  Config
	id   flcrypto.NodeID
	n, f int

	events  chan event
	submits chan []byte
	stop    chan struct{}
	stopped sync.WaitGroup

	metrics Metrics

	// Event-loop-owned state below.
	view     uint64
	inVC     bool
	vcTarget uint64
	vcs      map[uint64]map[flcrypto.NodeID]signedRaw // view -> sender -> VIEW-CHANGE
	vcFails  uint                                     // consecutive failed view changes (timeout doubling)

	entries  map[uint64]*entry
	nextSeq  uint64 // leader: next sequence to assign
	lastExec uint64

	pool      map[flcrypto.Hash][]byte // pending requests by digest
	poolOrder []flcrypto.Hash
	assigned  map[flcrypto.Hash]uint64 // request digest -> in-flight seq
	reqSeen   map[flcrypto.Hash]bool   // executed requests (dedup)

	maxCommittedSeen uint64
	deadline         time.Time // leader-failure deadline; zero when idle
	lastFetch        time.Time
}

// NewReplica creates a replica attached to cfg.Mux. Call Start to run it.
func NewReplica(cfg Config) *Replica {
	cfg.fillDefaults()
	r := &Replica{
		cfg:      cfg,
		id:       cfg.Mux.ID(),
		n:        cfg.Mux.N(),
		f:        (cfg.Mux.N() - 1) / 3,
		events:   make(chan event, 4096),
		submits:  make(chan []byte, 4096),
		stop:     make(chan struct{}),
		vcs:      make(map[uint64]map[flcrypto.NodeID]signedRaw),
		entries:  make(map[uint64]*entry),
		nextSeq:  1,
		pool:     make(map[flcrypto.Hash][]byte),
		assigned: make(map[flcrypto.Hash]uint64),
		reqSeen:  make(map[flcrypto.Hash]bool),
	}
	cfg.Mux.Handle(cfg.Proto, r.onWire)
	return r
}

// ID returns the replica's node id.
func (r *Replica) ID() flcrypto.NodeID { return r.id }

// Metrics returns the replica's counters.
func (r *Replica) Metrics() *Metrics { return &r.metrics }

// Start launches the event loop.
func (r *Replica) Start() {
	r.stopped.Add(1)
	go r.run()
}

// Stop terminates the event loop.
func (r *Replica) Stop() {
	close(r.stop)
	r.stopped.Wait()
}

// Submit atomic-broadcasts a request: it will eventually be delivered, in
// the same order, at every correct replica (under partial synchrony).
func (r *Replica) Submit(req []byte) error {
	body := make([]byte, 1+len(req))
	body[0] = kindRequest
	copy(body[1:], req)
	return r.signAndBroadcast(body)
}

// onWire runs on the replica's transport mailbox goroutine: decode the
// envelope and queue it for the event loop. With a verify pool the signature
// check happens here — synchronously on the mailbox goroutine, through the
// pool's cache — so the event loop runs crypto-free and only valid envelopes
// reach it. Verification stays on the single mailbox goroutine (rather than
// fanning out to pool workers) deliberately: it preserves the mux's
// per-protocol FIFO, which the view-change sequences lean on (a NEW-VIEW
// overtaken by its own follow-up pre-prepares would drop them); when the
// mailbox falls behind, the backpressure lands there, never on the socket
// reader.
func (r *Replica) onWire(from flcrypto.NodeID, buf []byte) {
	d := types.NewDecoder(buf)
	body := append([]byte(nil), d.Bytes32()...)
	sig := append(flcrypto.Signature(nil), d.Bytes32()...)
	if d.Finish() != nil || len(body) == 0 {
		return
	}
	verified := false
	if r.cfg.VerifyPool != nil {
		if !r.cfg.VerifyPool.VerifyNode(r.cfg.Registry, from, body, sig) {
			return
		}
		r.metrics.VerifyOps.Add(1)
		verified = true
	}
	select {
	case r.events <- event{from: from, body: body, sig: sig, verified: verified}:
	case <-r.stop:
	}
}

func (r *Replica) signAndBroadcast(body []byte) error {
	sig, err := r.cfg.Priv.Sign(body)
	if err != nil {
		return fmt.Errorf("pbft: sign: %w", err)
	}
	r.metrics.SignOps.Add(1)
	e := types.NewEncoder(8 + len(body) + len(sig))
	e.Bytes32(body)
	e.Bytes32(sig)
	return r.cfg.Mux.Broadcast(r.cfg.Proto, e.Bytes())
}

// verifyRaw checks an embedded signed message (certificate element) through
// the verify pool's cache when one is configured — view changes and fetch
// responses re-present prepares/commits the replica usually verified when
// they first arrived — falling back to direct registry verification.
func (r *Replica) verifyRaw(m *signedRaw) bool {
	return r.cfg.VerifyPool.VerifyNode(r.cfg.Registry, m.From, m.Body, m.Sig)
}

func (r *Replica) signedRawFor(body []byte) (signedRaw, error) {
	sig, err := r.cfg.Priv.Sign(body)
	if err != nil {
		return signedRaw{}, err
	}
	r.metrics.SignOps.Add(1)
	return signedRaw{From: r.id, Body: body, Sig: sig}, nil
}

func (r *Replica) leaderOf(view uint64) flcrypto.NodeID {
	return flcrypto.NodeID(view % uint64(r.n))
}

func (r *Replica) run() {
	defer r.stopped.Done()
	ticker := time.NewTicker(r.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case ev := <-r.events:
			r.handle(ev)
		case <-ticker.C:
			r.onTick()
		}
	}
}

func (r *Replica) handle(ev event) {
	if !ev.verified {
		if !r.cfg.Registry.Verify(ev.from, ev.body, ev.sig) {
			return
		}
		r.metrics.VerifyOps.Add(1)
	}
	raw := signedRaw{From: ev.from, Body: ev.body, Sig: ev.sig}
	kind := ev.body[0]
	d := types.NewDecoder(ev.body[1:])
	switch kind {
	case kindRequest:
		r.onRequest(ev.body[1:])
	case kindPrePrepare:
		pp := decodePrePrepare(d)
		if d.Err() == nil {
			r.onPrePrepare(raw, pp)
		}
	case kindPrepare:
		v := decodeVote(d)
		if d.Finish() == nil {
			r.onVote(raw, v, true)
		}
	case kindCommit:
		v := decodeVote(d)
		if d.Finish() == nil {
			r.onVote(raw, v, false)
		}
	case kindViewChange:
		vc := decodeViewChange(d)
		if d.Err() == nil {
			r.onViewChange(raw, vc)
		}
	case kindNewView:
		nv := decodeNewView(d)
		if d.Err() == nil {
			r.onNewView(raw, nv)
		}
	case kindFetch:
		seq := d.Uint64()
		if d.Finish() == nil {
			r.onFetch(ev.from, seq)
		}
	case kindFetchResp:
		fr := decodeFetchResp(d)
		if d.Err() == nil {
			r.onFetchResp(fr)
		}
	}
}

// --- Normal case ---

func (r *Replica) onRequest(req []byte) {
	digest := flcrypto.Sum256(req)
	if r.reqSeen[digest] {
		return
	}
	if _, ok := r.pool[digest]; ok {
		return
	}
	r.pool[digest] = append([]byte(nil), req...)
	r.poolOrder = append(r.poolOrder, digest)
	r.armTimer()
	r.tryPropose()
}

// tryPropose lets the current leader assign pending requests to sequence
// numbers, respecting the outstanding window.
func (r *Replica) tryPropose() {
	if r.inVC || r.leaderOf(r.view) != r.id {
		return
	}
	for {
		if r.nextSeq > r.lastExec+uint64(r.cfg.Window) {
			return
		}
		batch := r.takeBatch()
		if len(batch) == 0 {
			return
		}
		pp := prePrepare{View: r.view, Seq: r.nextSeq, Batch: batch}
		r.nextSeq++
		body := encodeBody(kindPrePrepare, func(e *types.Encoder) { pp.encode(e) })
		if err := r.signAndBroadcast(body); err != nil {
			return
		}
		// Local processing happens when the broadcast loops back.
	}
}

func encodeBody(kind uint8, enc func(*types.Encoder)) []byte {
	e := types.NewEncoder(64)
	e.Uint8(kind)
	enc(e)
	return e.Bytes()
}

// takeBatch collects up to BatchSize unassigned pending requests.
func (r *Replica) takeBatch() [][]byte {
	var batch [][]byte
	var kept []flcrypto.Hash
	for i, digest := range r.poolOrder {
		if len(batch) >= r.cfg.BatchSize {
			kept = append(kept, r.poolOrder[i:]...)
			break
		}
		req, ok := r.pool[digest]
		if !ok || r.reqSeen[digest] {
			continue
		}
		if _, busy := r.assigned[digest]; busy {
			kept = append(kept, digest)
			continue
		}
		batch = append(batch, req)
		r.assigned[digest] = r.nextSeq
		kept = append(kept, digest)
	}
	r.poolOrder = kept
	return batch
}

func (r *Replica) entry(seq uint64) *entry {
	en := r.entries[seq]
	if en == nil {
		en = newEntry(seq)
		r.entries[seq] = en
	}
	return en
}

func (r *Replica) onPrePrepare(raw signedRaw, pp prePrepare) {
	if pp.View != r.view || r.inVC {
		return
	}
	if raw.From != r.leaderOf(pp.View) {
		return
	}
	if pp.Seq <= r.lastExec || pp.Seq > r.lastExec+2*uint64(r.cfg.Window) {
		return
	}
	en := r.entry(pp.Seq)
	if en.pp != nil && en.view == pp.View {
		return // already accepted a pre-prepare for this (view, seq)
	}
	r.acceptPrePrepare(en, raw, pp)
	// Broadcast PREPARE.
	v := vote{View: pp.View, Seq: pp.Seq, Digest: en.digest}
	if !en.sentPrep {
		en.sentPrep = true
		r.signAndBroadcast(encodeBody(kindPrepare, func(e *types.Encoder) { v.encode(e) }))
	}
	r.checkQuorums(en)
}

func (r *Replica) acceptPrePrepare(en *entry, raw signedRaw, pp prePrepare) {
	en.view = pp.View
	en.digest = batchDigest(pp.Batch)
	en.batch = pp.Batch
	cp := raw
	en.pp = &cp
	en.sentPrep = false
	en.sentComm = false
	for _, req := range pp.Batch {
		r.assigned[flcrypto.Sum256(req)] = pp.Seq
	}
	r.armTimer()
}

func (r *Replica) onVote(raw signedRaw, v vote, isPrepare bool) {
	if v.Seq <= r.lastExec && !isPrepare {
		// Late commits can still matter for fetch serving, but executed
		// entries already have their quorum; ignore.
		return
	}
	if v.Seq > r.lastExec+4*uint64(r.cfg.Window) {
		return
	}
	en := r.entry(v.Seq)
	key := voteKey{view: v.View, digest: v.Digest}
	var m map[voteKey]map[flcrypto.NodeID]signedRaw
	if isPrepare {
		m = en.prepares
	} else {
		m = en.commits
	}
	set := m[key]
	if set == nil {
		set = make(map[flcrypto.NodeID]signedRaw)
		m[key] = set
	}
	if _, dup := set[raw.From]; dup {
		return
	}
	set[raw.From] = raw
	r.checkQuorums(en)
}

// prepared reports whether en has a prepare quorum for its accepted
// pre-prepare: the pre-prepare itself plus 2f prepares from non-leader
// replicas (own prepare included via loopback).
func (r *Replica) preparedQuorum(en *entry) bool {
	if en.pp == nil {
		return false
	}
	set := en.prepares[voteKey{view: en.view, digest: en.digest}]
	count := 0
	for from := range set {
		if from != r.leaderOf(en.view) {
			count++
		}
	}
	return count >= 2*r.f
}

func (r *Replica) commitQuorum(en *entry) (map[flcrypto.NodeID]signedRaw, bool) {
	if en.pp == nil {
		return nil, false
	}
	set := en.commits[voteKey{view: en.view, digest: en.digest}]
	if len(set) >= 2*r.f+1 {
		return set, true
	}
	return nil, false
}

func (r *Replica) checkQuorums(en *entry) {
	if en.pp != nil && !en.sentComm && r.preparedQuorum(en) {
		en.sentComm = true
		v := vote{View: en.view, Seq: en.seq, Digest: en.digest}
		r.signAndBroadcast(encodeBody(kindCommit, func(e *types.Encoder) { v.encode(e) }))
	}
	if _, ok := r.commitQuorum(en); ok {
		if en.seq > r.maxCommittedSeen {
			r.maxCommittedSeen = en.seq
		}
		r.execute()
	}
}

// execute applies committed entries strictly in sequence order.
func (r *Replica) execute() {
	for {
		en := r.entries[r.lastExec+1]
		if en == nil || en.executed {
			if en != nil && en.executed {
				r.lastExec++
				continue
			}
			return
		}
		if _, ok := r.commitQuorum(en); !ok {
			return
		}
		en.executed = true
		r.lastExec = en.seq
		var deliverable [][]byte
		for _, req := range en.batch {
			digest := flcrypto.Sum256(req)
			if r.reqSeen[digest] {
				continue
			}
			r.reqSeen[digest] = true
			delete(r.pool, digest)
			delete(r.assigned, digest)
			deliverable = append(deliverable, req)
		}
		r.metrics.BatchesDelivered.Add(1)
		r.metrics.RequestsDelivered.Add(uint64(len(deliverable)))
		if r.cfg.Deliver != nil {
			r.cfg.Deliver(en.seq, deliverable)
		}
		r.gc()
		r.resetTimerIfIdle()
		r.tryPropose()
	}
}

func (r *Replica) gc() {
	defer r.metrics.EntriesRetained.Store(uint64(len(r.entries)))
	if r.lastExec < r.cfg.KeepWindow {
		return
	}
	cutoff := r.lastExec - r.cfg.KeepWindow
	for seq := range r.entries {
		if seq <= cutoff {
			delete(r.entries, seq)
		}
	}
}

// --- Timers, fetching ---

// armTimer starts the leader-failure countdown if work is outstanding.
func (r *Replica) armTimer() {
	if r.deadline.IsZero() && !r.inVC {
		r.deadline = time.Now().Add(r.timeout())
	}
}

func (r *Replica) timeout() time.Duration {
	d := r.cfg.ViewTimeout << r.vcFails
	if max := 30 * time.Second; d > max {
		d = max
	}
	return d
}

// resetTimerIfIdle clears or re-arms the countdown after progress.
func (r *Replica) resetTimerIfIdle() {
	if len(r.pool) == 0 && r.lastExec >= r.maxCommittedSeen {
		r.deadline = time.Time{}
		r.vcFails = 0
		return
	}
	// Progress was made; push the deadline out.
	r.deadline = time.Now().Add(r.timeout())
}

func (r *Replica) onTick() {
	now := time.Now()
	if !r.deadline.IsZero() && now.After(r.deadline) {
		// Escalate past an in-progress view change whose new leader is
		// itself unresponsive.
		next := r.view + 1
		if r.inVC && r.vcTarget >= next {
			next = r.vcTarget + 1
		}
		r.startViewChange(next)
	}
	// State transfer: stuck behind a known commit. The fetch fires whether
	// the pre-prepare is missing or only the commit certificate is (either
	// way the response carries both) — a replica that received a
	// pre-prepare but lost the commits would otherwise starve forever.
	if r.maxCommittedSeen > r.lastExec && now.Sub(r.lastFetch) > 200*time.Millisecond {
		r.fetchNext()
	}
}

// fetchNext requests the full commit certificate for the next unexecuted
// sequence from the peers.
func (r *Replica) fetchNext() {
	r.lastFetch = time.Now()
	seq := r.lastExec + 1
	r.signAndBroadcast(encodeBody(kindFetch, func(e *types.Encoder) { e.Uint64(seq) }))
}

func (r *Replica) onFetch(from flcrypto.NodeID, seq uint64) {
	en := r.entries[seq]
	if en == nil || en.pp == nil {
		return
	}
	commits, ok := r.commitQuorum(en)
	if !ok {
		return
	}
	fr := fetchResp{Seq: seq, PrePrepare: *en.pp}
	for _, c := range commits {
		fr.Commits = append(fr.Commits, c)
	}
	body := encodeBody(kindFetchResp, func(e *types.Encoder) { fr.encode(e) })
	sig, err := r.cfg.Priv.Sign(body)
	if err != nil {
		return
	}
	r.metrics.SignOps.Add(1)
	e := types.NewEncoder(8 + len(body) + len(sig))
	e.Bytes32(body)
	e.Bytes32(sig)
	r.cfg.Mux.Send(r.cfg.Proto, from, e.Bytes())
}

func (r *Replica) onFetchResp(fr fetchResp) {
	if fr.Seq != r.lastExec+1 {
		return
	}
	// Verify the pre-prepare and the commit certificate.
	if len(fr.PrePrepare.Body) == 0 || fr.PrePrepare.Body[0] != kindPrePrepare {
		return
	}
	if !r.verifyRaw(&fr.PrePrepare) {
		return
	}
	r.metrics.VerifyOps.Add(1)
	d := types.NewDecoder(fr.PrePrepare.Body[1:])
	pp := decodePrePrepare(d)
	if d.Err() != nil || pp.Seq != fr.Seq {
		return
	}
	if fr.PrePrepare.From != r.leaderOf(pp.View) {
		return
	}
	digest := batchDigest(pp.Batch)
	seen := make(map[flcrypto.NodeID]bool)
	for _, c := range fr.Commits {
		if len(c.Body) == 0 || c.Body[0] != kindCommit || !r.verifyRaw(&c) {
			continue
		}
		r.metrics.VerifyOps.Add(1)
		cd := types.NewDecoder(c.Body[1:])
		v := decodeVote(cd)
		if cd.Finish() != nil || v.Seq != fr.Seq || v.Digest != digest {
			continue
		}
		seen[c.From] = true
	}
	if len(seen) < 2*r.f+1 {
		return
	}
	// Adopt: install the entry as committed and execute.
	en := r.entry(fr.Seq)
	en.view = pp.View
	en.digest = digest
	en.batch = pp.Batch
	cp := fr.PrePrepare
	en.pp = &cp
	key := voteKey{view: pp.View, digest: digest}
	set := en.commits[key]
	if set == nil {
		set = make(map[flcrypto.NodeID]signedRaw)
		en.commits[key] = set
	}
	for _, c := range fr.Commits {
		cd := types.NewDecoder(c.Body[1:])
		v := decodeVote(cd)
		if cd.Finish() == nil && v.Digest == digest && v.View == pp.View {
			set[c.From] = c
		}
	}
	if len(set) >= 2*r.f+1 {
		r.execute()
		// Chain the catch-up: fetching one certificate per housekeeping
		// tick would pace recovery at 5 entries/s; fetching the next one
		// as soon as this one executes paces it at the network RTT.
		if r.maxCommittedSeen > r.lastExec {
			r.fetchNext()
		}
	} else {
		// Commits were from a different view than the pre-prepare (possible
		// after fetch from a replica that committed post view change);
		// accept them under their own key.
		en.commits[key] = set
		for _, c := range fr.Commits {
			cd := types.NewDecoder(c.Body[1:])
			v := decodeVote(cd)
			if cd.Finish() != nil || v.Digest != digest {
				continue
			}
			k2 := voteKey{view: v.View, digest: digest}
			s2 := en.commits[k2]
			if s2 == nil {
				s2 = make(map[flcrypto.NodeID]signedRaw)
				en.commits[k2] = s2
			}
			s2[c.From] = c
			if len(s2) >= 2*r.f+1 {
				en.view = v.View
				r.execute()
				if r.maxCommittedSeen > r.lastExec {
					r.fetchNext()
				}
				return
			}
		}
	}
}

// Package wrb implements the Weak Reliable Broadcast abstraction of paper
// §4 (Algorithm 1). WRB agrees on the sender's identity and on *whether* a
// message is delivered at all, rather than on its content: nodes vote
// through OBBC on delivering the expected proposer's header, and if delivery
// is decided but a node lacks the message, it pulls it from a node that
// voted for it.
//
// Per §6.1.1, what travels through WRB is the block *header* (the signed
// (m, sig_k(m)) of Algorithm 1); block bodies are disseminated on the data
// path, and the caller's accept predicate lets a node vote against a header
// whose body it has not received. The delivery timer is tuned with the
// exponential moving average of recent message delays (§6.1.1).
package wrb

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/obbc"
	"repro/internal/transport"
	"repro/internal/types"
)

// Key aliases the OBBC instance key: one delivery attempt of one proposer's
// header in one round of one worker.
type Key = obbc.Key

// Wire message kinds. The pull phase (Algorithm 1 lines 22–26) transfers
// the *message* (m, sig_k(m)) — with the §6.1.1 header/body separation that
// is the evidence format: the signed header plus, when a body store is
// installed, the body. A peer answers a pull only when it can supply the
// whole message, which is what makes the post-decision pull terminate
// (at least one correct node voted 1, so it has header and body).
const (
	kindPush    = 1 // WRB-broadcast push phase
	kindReqMsg  = 2 // pull request (Algorithm 1 line 22)
	kindRespMsg = 3 // pull response (line 26): key + evidence-format message
)

// ErrAborted is returned by Deliver when the caller aborts the round (the
// node diverted into the recovery procedure).
var ErrAborted = errors.New("wrb: delivery aborted")

// Config wires a Service.
type Config struct {
	// Mux and Proto carry push/pull messages.
	Mux   *transport.Mux
	Proto transport.ProtoID
	// OBBC votes on delivery. The service installs itself as the OBBC
	// evidence provider and piggyback sink via Bind.
	OBBC *obbc.Service
	// Registry validates header signatures.
	Registry *flcrypto.Registry
	// VerifyPool, when non-nil, runs header signature checks through the
	// node's shared verification pool: pushes and piggybacks verify on pool
	// workers instead of the transport mailbox goroutine, and the pool's
	// cache collapses the n−1 echoed copies of each signed header into one
	// crypto operation. Nil verifies synchronously (deterministic tests).
	VerifyPool *flcrypto.VerifyPool
	// InitialTimer is the starting τ of Algorithm 1 (default 50ms).
	InitialTimer time.Duration
	// MinTimer / MaxTimer clamp the adaptive timer (defaults 5ms / 10s).
	MinTimer time.Duration
	MaxTimer time.Duration
	// EMASpan is the N of the §6.1.1 moving average (default 16).
	EMASpan int
	// Margin multiplies the EMA when setting the delivery deadline
	// (default 4): the EMA tracks the typical readiness delay, and the
	// margin absorbs scheduling jitter so transient slowness does not
	// trigger spurious non-delivery votes.
	Margin int
}

func (c *Config) fillDefaults() {
	if c.InitialTimer == 0 {
		c.InitialTimer = 50 * time.Millisecond
	}
	if c.MinTimer == 0 {
		c.MinTimer = 5 * time.Millisecond
	}
	if c.MaxTimer == 0 {
		c.MaxTimer = 10 * time.Second
	}
	if c.EMASpan == 0 {
		c.EMASpan = 16
	}
	if c.Margin == 0 {
		c.Margin = 4
	}
}

// slot holds the (at most one) header stashed for a key, plus a broadcast
// channel waiters use to observe updates.
type slot struct {
	hdr     *types.SignedHeader
	arrived time.Time
	update  chan struct{}
	// waitStart is when the local delivery attempt for this key began
	// waiting (zero if the header arrived before any waiter). A header
	// stashed after the deadline measured from here is a late arrival,
	// the one delay signal in-window sampling never sees (see stashAt).
	waitStart time.Time
}

// timerState implements the §6.1.1 EMA tuning:
//
//	timer_r = 2/(N+1)·d_{r−1} + timer_{r−2}·(1−2/(N+1))
type timerState struct {
	cur  time.Duration // timer_{r−1}
	prev time.Duration // timer_{r−2}
}

// Service is one node's WRB endpoint.
type Service struct {
	cfg Config
	id  flcrypto.NodeID

	mu     sync.Mutex
	slots  map[Key]*slot
	timers map[uint32]*timerState

	// dropGen counts DropFrom invocations (bumped under mu). Asynchronously
	// verified headers capture it at arrival and are discarded if a
	// recovery's DropFrom ran in between — otherwise a pre-recovery header
	// still queued in the verify pool could repopulate a slot the recovery
	// just cleared and shadow the redone round's real header.
	dropGen atomic.Uint64

	// Body store hooks (SetBodyStore); nil in header-only deployments.
	getBody func(flcrypto.Hash) ([]byte, bool)
	putBody func([]byte) bool

	// onEquivocation (SetOnEquivocation) observes conflicting headers.
	onEquivocation func(a, b types.SignedHeader)
}

// New creates a WRB service. Wiring order with OBBC: create the WRB service
// first (cfg.OBBC may be nil), create the OBBC service with ValidEvidence,
// Evidence, and OnPgd pointing at the WRB service's methods, then call
// BindOBBC.
func New(cfg Config) *Service {
	cfg.fillDefaults()
	s := &Service{
		cfg:    cfg,
		id:     cfg.Mux.ID(),
		slots:  make(map[Key]*slot),
		timers: make(map[uint32]*timerState),
	}
	cfg.Mux.Handle(cfg.Proto, s.onWire)
	return s
}

// BindOBBC completes the two-phase wiring described at New.
func (s *Service) BindOBBC(o *obbc.Service) { s.cfg.OBBC = o }

// SetBodyStore installs the block-body accessors the §6.1.1 header/body
// separation needs on OBBC's evidence path. get returns the encoded body for
// a body hash when it is locally available; put ingests an encoded body
// received inside an evidence message and reports whether it was accepted.
//
// In Algorithm 4, evidence(1) is (m, sig_k(m)) — it contains the message
// itself, which is what lets a node that adopts v=1 from received evidence
// complete its delivery. With headers and bodies separated, the header alone
// does not play that role: a node that has the header but not the body votes
// 0 and must not vouch for deliverability. With a body store installed,
// EvidenceFor therefore serves evidence only when the body is available
// (header‖body), and ValidEvidence requires the body and ingests it — so
// adopting 1 always leaves the adopter in possession of the full block,
// restoring the pull phase's termination guarantee. Without a body store the
// service runs in header-only mode (the message is the header).
func (s *Service) SetBodyStore(get func(flcrypto.Hash) ([]byte, bool), put func([]byte) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.getBody = get
	s.putBody = put
}

// Evidence wire flags: header-only or header followed by the encoded body.
const (
	evHeaderOnly = 0
	evWithBody   = 1
)

// EvidenceFor returns the encoded evidence(1) for key, or nil — the OBBC
// Evidence callback (Appendix A.5: evidence(1) = (m, sig_proposer(m))). With
// a body store installed the evidence is header‖body, and nil when the body
// is not locally available (this node could not have voted 1, assertion
// OB2–OB3).
func (s *Service) EvidenceFor(key Key) []byte {
	s.mu.Lock()
	hdr := (*types.SignedHeader)(nil)
	if sl := s.slots[key]; sl != nil {
		hdr = sl.hdr
	}
	get := s.getBody
	s.mu.Unlock()
	if hdr == nil {
		return nil
	}
	if get == nil {
		e := types.NewEncoder(192)
		hdr.Encode(e)
		e.Uint8(evHeaderOnly)
		return e.Bytes()
	}
	body, ok := get(hdr.Header.BodyHash)
	if !ok {
		return nil
	}
	e := types.NewEncoder(192 + len(body))
	hdr.Encode(e)
	e.Uint8(evWithBody)
	e.Bytes32(body)
	return e.Bytes()
}

// ValidEvidence reports whether ev is a valid evidence(1) for key: a header
// correctly signed by key's proposer for key's round, carrying — when a body
// store is installed — the matching body, which is ingested as a side
// effect. The OBBC ValidEvidence callback.
func (s *Service) ValidEvidence(key Key, ev []byte) bool {
	d := types.NewDecoder(ev)
	hdr := types.DecodeSignedHeader(d)
	flag := d.Uint8()
	var body []byte
	if flag == evWithBody {
		body = d.Bytes32()
	}
	if d.Finish() != nil || flag > evWithBody {
		return false
	}
	if !hdr.VerifyPooled(s.cfg.Registry, s.cfg.VerifyPool) || !s.matches(hdr, key) {
		return false
	}
	s.mu.Lock()
	put := s.putBody
	s.mu.Unlock()
	if put == nil {
		s.stash(hdr)
		return true // header-only mode: the header is the message
	}
	if flag != evWithBody {
		return false // body store present: evidence must carry the body
	}
	if flcrypto.Sum256(body) != hdr.Header.BodyHash {
		return false
	}
	if !put(body) {
		return false
	}
	// The evidence carries the full message: keep the header too, so the
	// post-decision pull resolves locally.
	s.stash(hdr)
	return true
}

// OnPgd ingests a piggybacked header from an OBBC vote (§5.1): the next
// round's proposer attaches its header to its current-round vote. The
// signature check is handed to the verify pool when one is configured, so
// the OBBC mailbox goroutine never runs crypto.
func (s *Service) OnPgd(from flcrypto.NodeID, _ Key, pgd []byte) {
	d := types.NewDecoder(pgd)
	hdr := types.DecodeSignedHeader(d)
	if d.Finish() != nil || hdr.Header.Proposer != from {
		return
	}
	s.stashVerified(hdr)
}

// stashVerified checks hdr's proposer signature and stashes it. With a
// verify pool the check runs asynchronously on a pool worker (repeat copies
// of the same header resolve from the cache); a nil pool runs it — and the
// stash — inline on the caller.
func (s *Service) stashVerified(hdr types.SignedHeader) {
	gen := s.dropGen.Load()
	s.cfg.VerifyPool.VerifyAsyncNode(s.cfg.Registry, hdr.Header.Proposer, hdr.HeaderBytes(), hdr.Sig, func(ok bool) {
		if ok {
			s.stashAt(hdr, &gen)
		}
	})
}

func (s *Service) matches(hdr types.SignedHeader, key Key) bool {
	h := hdr.Header
	return h.Instance == key.Instance && h.Round == key.Round && h.Proposer == key.Proposer
}

func (s *Service) slot(key Key) *slot {
	sl := s.slots[key]
	if sl == nil {
		sl = &slot{update: make(chan struct{})}
		s.slots[key] = sl
	}
	return sl
}

// SetOnEquivocation installs an observer for conflicting headers: two
// different correctly-signed headers by the same proposer for the same
// (instance, round). Such a pair is a transferable proof of Byzantine
// behavior (see internal/evidence); the consensus layer feeds it to its
// evidence pool. The callback runs on a transport mailbox or verify-pool
// goroutine and must not block.
func (s *Service) SetOnEquivocation(fn func(a, b types.SignedHeader)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onEquivocation = fn
}

// stash stores a verified header under its own key and wakes waiters.
func (s *Service) stash(hdr types.SignedHeader) { s.stashAt(hdr, nil) }

// stashAt is stash guarded by a DropFrom generation: when gen is non-nil and
// a DropFrom ran since it was captured, the header is stale (verified before
// a recovery cleared its rounds) and is discarded. DropFrom bumps the
// generation while holding mu, so the check here cannot race it.
func (s *Service) stashAt(hdr types.SignedHeader, gen *uint64) {
	key := Key{Instance: hdr.Header.Instance, Round: hdr.Header.Round, Proposer: hdr.Header.Proposer}
	s.mu.Lock()
	if gen != nil && *gen != s.dropGen.Load() {
		s.mu.Unlock()
		return
	}
	sl := s.slot(key)
	if sl.hdr != nil {
		prev := *sl.hdr
		onEq := s.onEquivocation
		s.mu.Unlock()
		// First one wins for delivery purposes (chain validation catches a
		// bad winner), but a *different* second header is an equivocation
		// proof worth reporting.
		if onEq != nil && prev.HeaderHash() != hdr.HeaderHash() {
			onEq(prev, hdr)
		}
		return
	}
	cp := hdr
	sl.hdr = &cp
	sl.arrived = time.Now()
	// A header that lands after the local attempt's deadline is the only
	// delay sample that ever reflects a proposer slower than the current
	// timer: in-window deliveries by the fast majority keep the EMA at
	// their latency, so without this a systematically slower (but live)
	// peer would miss every window forever. A dead proposer stashes
	// nothing, so it cannot inflate the timer this way — stopping waits
	// for it stays the failure detector's job.
	var late time.Duration
	if !sl.waitStart.IsZero() {
		deadline := s.timer(key.Instance).cur * time.Duration(s.cfg.Margin)
		if d := sl.arrived.Sub(sl.waitStart); d > deadline {
			late = d
		}
	}
	close(sl.update)
	sl.update = make(chan struct{})
	s.mu.Unlock()
	if late > 0 {
		s.observeDelay(key.Instance, late)
	}
}

// Kick wakes Deliver waiters for key so they re-evaluate their accept
// predicate (the core calls this when a block body arrives).
func (s *Service) Kick(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slot(key)
	close(sl.update)
	sl.update = make(chan struct{})
}

// DropFrom discards stashed headers of `instance` at rounds ≥ fromRound
// (recovery is about to redo those rounds; pre-recovery headers may not link
// to the adopted chain).
func (s *Service) DropFrom(instance uint32, fromRound uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropGen.Add(1)
	for key := range s.slots {
		if key.Instance == instance && key.Round >= fromRound {
			delete(s.slots, key)
		}
	}
}

// GC drops slots of `instance` with round < olderThan.
func (s *Service) GC(instance uint32, olderThan uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.slots {
		if key.Instance == instance && key.Round < olderThan {
			delete(s.slots, key)
		}
	}
}

// --- Wire handling ---

func (s *Service) onWire(from flcrypto.NodeID, buf []byte) {
	d := types.NewDecoder(buf)
	kind := d.Uint8()
	switch kind {
	case kindPush:
		hdr := types.DecodeSignedHeader(d)
		if d.Finish() != nil || hdr.Header.Proposer != from {
			return
		}
		s.stashVerified(hdr)
	case kindReqMsg:
		key := Key{Instance: d.Uint32(), Round: d.Uint64(), Proposer: flcrypto.NodeID(d.Int64())}
		if d.Finish() != nil {
			return
		}
		// Answer only when the full message is available here (lines 25–26:
		// "∧ a valid (m, sig_k(m)) has been received").
		ev := s.EvidenceFor(key)
		if ev == nil {
			return
		}
		e := types.GetEncoder(64 + len(ev))
		e.Uint8(kindRespMsg)
		keyEncode(e, key)
		e.Bytes32(ev)
		s.cfg.Mux.Send(s.cfg.Proto, from, e.Bytes())
		e.Release()
	case kindRespMsg:
		key := Key{Instance: d.Uint32(), Round: d.Uint64(), Proposer: flcrypto.NodeID(d.Int64())}
		ev := append([]byte(nil), d.Bytes32()...)
		if d.Finish() != nil {
			return
		}
		// ValidEvidence verifies the signature and key match, ingests the
		// body when present, and stashes the header.
		s.ValidEvidence(key, ev)
	}
}

// keyEncode appends a key's fields (the wrb-side mirror of obbc's encoding).
func keyEncode(e *types.Encoder, key Key) {
	e.Uint32(key.Instance)
	e.Uint64(key.Round)
	e.Int64(int64(key.Proposer))
}

// Broadcast is WRB-broadcast(m): push the signed header to everyone
// (Algorithm 1 line 3). The header must already be signed by this node.
func (s *Service) Broadcast(hdr types.SignedHeader) error {
	e := types.GetEncoder(160)
	e.Uint8(kindPush)
	hdr.Encode(e)
	err := s.cfg.Mux.Broadcast(s.cfg.Proto, e.Bytes())
	e.Release()
	return err
}

// PushTo sends a push to a single node. Correct nodes have no use for it —
// it exists so the harness can realize the §7.4.2 Byzantine proposer that
// distributes different block versions to different parts of the cluster.
func (s *Service) PushTo(to flcrypto.NodeID, hdr types.SignedHeader) error {
	e := types.GetEncoder(160)
	e.Uint8(kindPush)
	hdr.Encode(e)
	err := s.cfg.Mux.Send(s.cfg.Proto, to, e.Bytes())
	e.Release()
	return err
}

// timer returns the instance's adaptive timer state.
func (s *Service) timer(instance uint32) *timerState {
	ts := s.timers[instance]
	if ts == nil {
		ts = &timerState{cur: s.cfg.InitialTimer, prev: s.cfg.InitialTimer}
		s.timers[instance] = ts
	}
	return ts
}

func (s *Service) clamp(d time.Duration) time.Duration {
	if d < s.cfg.MinTimer {
		return s.cfg.MinTimer
	}
	if d > s.cfg.MaxTimer {
		return s.cfg.MaxTimer
	}
	return d
}

// observeDelay folds a measured delivery delay into the EMA (line 19's
// "adjust timer").
func (s *Service) observeDelay(instance uint32, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.timer(instance)
	alpha := 2.0 / float64(s.cfg.EMASpan+1)
	next := time.Duration(alpha*float64(d) + (1-alpha)*float64(ts.prev))
	ts.prev = ts.cur
	ts.cur = s.clamp(next)
}

// onTimeout doubles the timer (line 14's "increase timer"). prev keeps the
// pre-doubling value on purpose: the doubled deadline covers the immediate
// rotation, but a proposer that is actually dead must not ratchet the
// shared timer toward MaxTimer while the failure detector still needs two
// strikes to stop waiting for it — every wasted full-window wait would
// double it again and the cluster would crawl. A proposer that is merely
// slow is learned from its late header arrivals instead (see stashAt),
// which a dead node never produces.
func (s *Service) onTimeout(instance uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.timer(instance)
	ts.prev = ts.cur
	ts.cur = s.clamp(ts.cur * 2)
}

// CurrentTimer reports the instance's current delivery deadline: the EMA
// value times the safety margin.
func (s *Service) CurrentTimer(instance uint32) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timer(instance).cur * time.Duration(s.cfg.Margin)
}

// Deliver is WRB-deliver(k, pgd) with k = key.Proposer (Algorithm 1 plus the
// §5.1 piggyback and §6.1.1 separation):
//
//   - wait up to the adaptive timer for a header signed by k that also
//     satisfies accept (body availability);
//   - vote through OBBC, attaching pgdFn's result to the vote. pgdFn (may
//     be nil) is evaluated at vote time with the header about to be voted
//     on (nil when voting 0): the next round's proposer uses it to build
//     its block on the just-received header and piggyback it;
//   - on decision 0 return (nil, nil); on decision 1 return the header,
//     pulling it from peers if necessary.
//
// abort (may be nil) diverts the call; the caller must also abort the OBBC
// instance so a Propose in flight unblocks.
func (s *Service) Deliver(key Key, pgdFn func(*types.SignedHeader) []byte, accept func(types.SignedHeader) bool, abort <-chan struct{}) (*types.SignedHeader, error) {
	return s.DeliverWithWait(key, pgdFn, accept, abort, s.CurrentTimer(key.Instance))
}

// DeliverWithWait is Deliver with an explicit wait budget instead of the
// adaptive timer. The benign failure detector of §6.1.1 passes 0 for
// suspected proposers: the node does not wait for their message and votes
// immediately on whatever it has.
func (s *Service) DeliverWithWait(key Key, pgdFn func(*types.SignedHeader) []byte, accept func(types.SignedHeader) bool, abort <-chan struct{}, wait time.Duration) (*types.SignedHeader, error) {
	start := time.Now()
	deadline := start.Add(wait)
	s.mu.Lock()
	if sl := s.slot(key); sl.waitStart.IsZero() {
		sl.waitStart = start
	}
	s.mu.Unlock()

	hdr := s.awaitHeader(key, accept, deadline, abort)
	ready := time.Now()
	if hdr == nil {
		select {
		case <-abort:
			return nil, ErrAborted
		default:
		}
	}

	var pgd []byte
	if pgdFn != nil {
		pgd = pgdFn(hdr)
	}
	var decision byte
	var err error
	if hdr != nil {
		ev := s.EvidenceFor(key)
		if ev == nil {
			// The body was evicted between accept and vote; degrade to
			// header-only evidence (it is never served to peers).
			e := types.NewEncoder(192)
			hdr.Encode(e)
			e.Uint8(evHeaderOnly)
			ev = e.Bytes()
		}
		decision, err = s.cfg.OBBC.Propose(key, 1, ev, pgd)
	} else {
		decision, err = s.cfg.OBBC.Propose(key, 0, nil, pgd)
	}
	if err != nil {
		if errors.Is(err, obbc.ErrAborted) {
			return nil, ErrAborted
		}
		return nil, err
	}

	if decision == 0 {
		// Only a wait we actually sat out is a timeout; a zero-wait vote
		// against a suspected proposer proves nothing about the deadline
		// and must not inflate the shared timer.
		if wait > 0 {
			s.onTimeout(key.Instance)
		}
		return nil, nil
	}
	if hdr != nil {
		// The observed delay is the time from the start of this delivery
		// attempt until the header (and its body, via accept) was ready —
		// what the next round's deadline must cover.
		d := ready.Sub(start)
		if d < 0 {
			d = 0
		}
		s.observeDelay(key.Instance, d)
		return hdr, nil
	}
	// Decision is 1 but we lack the header: pull phase (lines 22–24). At
	// least one correct node voted 1, so it has the header and will answer.
	// (The header's lateness is sampled into the EMA by stashAt when the
	// pull response lands, so the next deadline accounts for it.)
	return s.pull(key, accept, abort)
}

// awaitHeader waits until a stashed header for key satisfies accept, the
// deadline passes, or abort fires.
func (s *Service) awaitHeader(key Key, accept func(types.SignedHeader) bool, deadline time.Time, abort <-chan struct{}) *types.SignedHeader {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		s.mu.Lock()
		sl := s.slot(key)
		hdr := sl.hdr
		ch := sl.update
		s.mu.Unlock()
		if hdr != nil && (accept == nil || accept(*hdr)) {
			return hdr
		}
		select {
		case <-ch:
		case <-timer.C:
			return nil
		case <-abort:
			return nil
		}
	}
}

// pull broadcasts requests for key's header until one arrives (line 23's
// wait; re-broadcast makes it robust to a responder crashing mid-answer).
func (s *Service) pull(key Key, accept func(types.SignedHeader) bool, abort <-chan struct{}) (*types.SignedHeader, error) {
	req := types.GetEncoder(32)
	defer req.Release()
	req.Uint8(kindReqMsg)
	keyEncode(req, key)
	interval := 20 * time.Millisecond
	for {
		if err := s.cfg.Mux.Broadcast(s.cfg.Proto, req.Bytes()); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(interval)
		if hdr := s.awaitHeader(key, accept, deadline, abort); hdr != nil {
			return hdr, nil
		}
		select {
		case <-abort:
			return nil, ErrAborted
		default:
		}
		if interval < time.Second {
			interval *= 2
		}
	}
}

package wrb

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// TestWRBPropertiesUnderRandomOmission drops a random subset of push links
// each round and checks WRB's contract over many rounds: deliveries are
// all-or-nothing across nodes (WRB-Agreement), any delivered header is the
// proposer's (WRB-Validity), and no Deliver call hangs (WRB-Termination).
func TestWRBPropertiesUnderRandomOmission(t *testing.T) {
	const n = 4
	f := newFixture(t, n, nil)
	rng := rand.New(rand.NewSource(7))

	for round := uint64(1); round <= 12; round++ {
		proposer := int(round) % n
		hdr := f.header(proposer, round)

		// Drop the push toward a random subset of nodes (possibly all or
		// none); pulls and votes stay connected so the round terminates.
		blocked := make(map[flcrypto.NodeID]bool)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				blocked[flcrypto.NodeID(i)] = true
			}
		}
		f.net.SetLinkFilter(func(from, to flcrypto.NodeID) bool {
			return from == flcrypto.NodeID(proposer) && blocked[to]
		})
		if err := f.wrbs[proposer].Broadcast(hdr); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		f.net.SetLinkFilter(nil)

		key := Key{Instance: 0, Round: round, Proposer: flcrypto.NodeID(proposer)}
		results := make([]*types.SignedHeader, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], _ = f.wrbs[i].Deliver(key, nil, nil, nil)
			}(i)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("round %d: WRB-Termination violated (Deliver hung)", round)
		}

		nils := 0
		for i, r := range results {
			if r == nil {
				nils++
				continue
			}
			if r.Header.Hash() != hdr.Header.Hash() {
				t.Fatalf("round %d node %d: WRB-Validity violated (foreign header delivered)", round, i)
			}
		}
		if nils != 0 && nils != n {
			t.Fatalf("round %d: WRB-Agreement violated (%d/%d nil)", round, nils, n)
		}
	}
}

// TestWRBNonTriviality: a correct node that keeps re-broadcasting its
// message eventually gets it delivered, even after rounds of omission
// (the ◊Synch argument of Lemma 4.3.4 — here synchrony returns when the
// filter is lifted).
func TestWRBNonTriviality(t *testing.T) {
	const n = 4
	f := newFixture(t, n, nil)
	hdr := f.header(1, 1)
	key := Key{Instance: 0, Round: 1, Proposer: 1}

	// Total omission of the proposer's pushes at first.
	f.net.SetLinkFilter(func(from, to flcrypto.NodeID) bool {
		return from == 1 && to != 1
	})
	if err := f.wrbs[1].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}

	// All nodes attempt delivery; attempt 1 very likely agrees on nil.
	deliver := func() (nils int) {
		results := make([]*types.SignedHeader, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], _ = f.wrbs[i].Deliver(key, nil, nil, nil)
			}(i)
		}
		wg.Wait()
		for _, r := range results {
			if r == nil {
				nils++
			}
		}
		return nils
	}
	first := deliver()

	// Synchrony returns; the proposer re-broadcasts (Algorithm 2's full
	// mode). If the first attempt delivered already, nothing more to show.
	if first == 0 {
		return
	}
	if first != n {
		t.Fatalf("agreement violated on first attempt: %d/%d nil", first, n)
	}
	f.net.SetLinkFilter(nil)
	// The redo uses a fresh attempt under the same round but the protocol
	// keys attempts by proposer; here the same proposer retries, so clear
	// the decided instance state as the recovery path would.
	f.obbcs[0].DropFrom(0, 1)
	f.obbcs[1].DropFrom(0, 1)
	f.obbcs[2].DropFrom(0, 1)
	f.obbcs[3].DropFrom(0, 1)
	for i := 0; i < n; i++ {
		f.wrbs[i].DropFrom(0, 1)
	}
	if err := f.wrbs[1].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if again := deliver(); again != 0 {
		t.Fatalf("after synchrony returned, %d/%d still delivered nil", again, n)
	}
}

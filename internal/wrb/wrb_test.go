package wrb

import (
	"sync"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/obbc"
	"repro/internal/transport"
	"repro/internal/types"
)

const (
	protoWRB  transport.ProtoID = 20
	protoOBBC transport.ProtoID = 21
)

// orderer mocks the PBFT atomic broadcast for the OBBC fallback.
type orderer struct {
	mu       sync.Mutex
	services []*obbc.Service
}

func (o *orderer) submit(req []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.services {
		s.HandleOrdered(req)
	}
	return nil
}

type fixture struct {
	t     *testing.T
	ks    *flcrypto.KeySet
	net   *transport.ChanNetwork
	muxes []*transport.Mux
	wrbs  []*Service
	obbcs []*obbc.Service
}

func newFixture(t *testing.T, n int, latency transport.LatencyModel) *fixture {
	t.Helper()
	f := &fixture{
		t:   t,
		ks:  flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519),
		net: transport.NewChanNetwork(transport.ChanConfig{N: n, Latency: latency}),
	}
	ord := &orderer{}
	for i := 0; i < n; i++ {
		mux := transport.NewMux(f.net.Endpoint(flcrypto.NodeID(i)))
		w := New(Config{
			Mux:          mux,
			Proto:        protoWRB,
			Registry:     f.ks.Registry,
			InitialTimer: 100 * time.Millisecond,
		})
		o := obbc.New(obbc.Config{
			Mux:           mux,
			Proto:         protoOBBC,
			Registry:      f.ks.Registry,
			Priv:          f.ks.Privs[i],
			SubmitAB:      ord.submit,
			ValidEvidence: w.ValidEvidence,
			Evidence:      w.EvidenceFor,
			OnPgd:         w.OnPgd,
		})
		w.BindOBBC(o)
		ord.services = append(ord.services, o)
		mux.Start()
		f.muxes = append(f.muxes, mux)
		f.wrbs = append(f.wrbs, w)
		f.obbcs = append(f.obbcs, o)
	}
	t.Cleanup(func() {
		for _, o := range f.obbcs {
			o.Stop()
		}
		for _, m := range f.muxes {
			m.Stop()
		}
		f.net.Close()
	})
	return f
}

func (f *fixture) header(proposer int, round uint64) types.SignedHeader {
	f.t.Helper()
	hdr := types.BlockHeader{
		Instance: 0,
		Round:    round,
		Proposer: flcrypto.NodeID(proposer),
		PrevHash: flcrypto.Sum256([]byte("prev")),
		BodyHash: flcrypto.Sum256([]byte("body")),
	}
	signed, err := hdr.Sign(f.ks.Privs[proposer])
	if err != nil {
		f.t.Fatal(err)
	}
	return signed
}

// deliverAll runs Deliver at every node for the key and returns the results.
func (f *fixture) deliverAll(key Key) []*types.SignedHeader {
	f.t.Helper()
	n := len(f.wrbs)
	out := make([]*types.SignedHeader, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = f.wrbs[i].Deliver(key, nil, nil, nil)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		f.t.Fatal("Deliver did not terminate")
	}
	for i, err := range errs {
		if err != nil {
			f.t.Fatalf("node %d: %v", i, err)
		}
	}
	return out
}

func TestWRBDeliverHappyPath(t *testing.T) {
	f := newFixture(t, 4, nil)
	hdr := f.header(0, 1)
	if err := f.wrbs[0].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	results := f.deliverAll(key)
	for i, r := range results {
		if r == nil {
			t.Fatalf("node %d delivered nil", i)
		}
		if r.Header.Hash() != hdr.Header.Hash() {
			t.Fatalf("node %d delivered a different header", i)
		}
	}
	// Happy path must be fast-path OBBC everywhere.
	fast := uint64(0)
	for _, o := range f.obbcs {
		fast += o.Metrics().FastDecisions.Load()
	}
	if fast != 4 {
		t.Fatalf("fast decisions = %d, want 4", fast)
	}
}

func TestWRBDeliverNilOnSilentProposer(t *testing.T) {
	// Nothing is broadcast: every node times out, votes 0, and WRB agrees
	// on nil (WRB-Agreement's all-or-nothing).
	f := newFixture(t, 4, nil)
	key := Key{Instance: 0, Round: 1, Proposer: 2}
	results := f.deliverAll(key)
	for i, r := range results {
		if r != nil {
			t.Fatalf("node %d delivered %v for a silent proposer", i, r.Header)
		}
	}
	// Line 14: the timer must have grown.
	if f.wrbs[0].CurrentTimer(0) <= 100*time.Millisecond {
		t.Fatalf("timer did not increase: %v", f.wrbs[0].CurrentTimer(0))
	}
}

func TestWRBPullPhase(t *testing.T) {
	// The proposer's push reaches only nodes 0-2 (link to 3 is cut); the
	// delivery decision is 1, so node 3 must pull the header (lines 22-24).
	f := newFixture(t, 4, nil)
	f.net.SetLinkFilter(func(from, to flcrypto.NodeID) bool {
		return from == 0 && to == 3 // node 3 misses the push
	})
	hdr := f.header(0, 1)
	if err := f.wrbs[0].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the push land at 0-2
	f.net.SetLinkFilter(nil)          // pull responses must flow
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	results := f.deliverAll(key)
	for i, r := range results {
		if r == nil || r.Header.Hash() != hdr.Header.Hash() {
			t.Fatalf("node %d: wrong delivery %v", i, r)
		}
	}
}

func TestWRBAgreementAllOrNothing(t *testing.T) {
	// Push reaches only one node. Whatever OBBC decides, all nodes must
	// return the same nil-ness (WRB-Agreement).
	f := newFixture(t, 4, nil)
	f.net.SetLinkFilter(func(from, to flcrypto.NodeID) bool {
		return from == 1 && to != 1 && to != 2 // only node 2 (and self) get the push
	})
	hdr := f.header(1, 5)
	if err := f.wrbs[1].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	f.net.SetLinkFilter(nil)
	key := Key{Instance: 0, Round: 5, Proposer: 1}
	results := f.deliverAll(key)
	nils := 0
	for _, r := range results {
		if r == nil {
			nils++
		}
	}
	if nils != 0 && nils != len(results) {
		t.Fatalf("WRB-Agreement violated: %d/%d nil deliveries", nils, len(results))
	}
	for _, r := range results {
		if r != nil && r.Header.Hash() != hdr.Header.Hash() {
			t.Fatal("delivered header differs from broadcast one")
		}
	}
}

func TestWRBRejectsForgedHeader(t *testing.T) {
	// A header signed by the wrong key must never be stashed or delivered.
	f := newFixture(t, 4, nil)
	hdr := types.BlockHeader{Instance: 0, Round: 1, Proposer: 0}
	forged, err := hdr.Sign(f.ks.Privs[1]) // signed by node 1, claims proposer 0
	if err != nil {
		t.Fatal(err)
	}
	e := types.NewEncoder(160)
	e.Uint8(kindPush)
	forged.Encode(e)
	if err := f.muxes[1].Broadcast(protoWRB, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if ev := f.wrbs[2].EvidenceFor(Key{Instance: 0, Round: 1, Proposer: 0}); ev != nil {
		t.Fatal("forged header was stashed")
	}
}

func TestWRBPiggybackFeedsNextRound(t *testing.T) {
	// Round 1 is delivered normally; node 1 piggybacks its round-2 header
	// on its round-1 vote. Round 2's delivery must then find the header
	// without any push.
	f := newFixture(t, 4, nil)
	h1 := f.header(0, 1)
	h2 := f.header(1, 2)
	if err := f.wrbs[0].Broadcast(h1); err != nil {
		t.Fatal(err)
	}
	key1 := Key{Instance: 0, Round: 1, Proposer: 0}
	e := types.NewEncoder(160)
	h2.Encode(e)
	pgd := e.Bytes()

	n := len(f.wrbs)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pgdFn func(*types.SignedHeader) []byte
			if i == 1 { // node 1 is round 2's proposer
				pgdFn = func(*types.SignedHeader) []byte { return pgd }
			}
			if _, err := f.wrbs[i].Deliver(key1, pgdFn, nil, nil); err != nil {
				t.Errorf("node %d round 1: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// Round 2: no push happened; the piggyback must be in every stash.
	key2 := Key{Instance: 0, Round: 2, Proposer: 1}
	results := f.deliverAll(key2)
	for i, r := range results {
		if r == nil || r.Header.Hash() != h2.Header.Hash() {
			t.Fatalf("node %d: piggybacked header not delivered: %v", i, r)
		}
	}
}

func TestWRBAcceptPredicateBlocksVote(t *testing.T) {
	// The withholding attack of the header/body separation: every node sees
	// the (valid, signed) header but no node anywhere has the body. With the
	// body store installed, no node can serve evidence(1), so the decision
	// must be 0 / nil everywhere — the round rotates instead of stalling.
	f := newFixture(t, 4, nil)
	for _, w := range f.wrbs {
		w.SetBodyStore(
			func(flcrypto.Hash) ([]byte, bool) { return nil, false },
			func([]byte) bool { return true },
		)
	}
	hdr := f.header(0, 1)
	if err := f.wrbs[0].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	n := len(f.wrbs)
	results := make([]*types.SignedHeader, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = f.wrbs[i].Deliver(key, nil,
				func(types.SignedHeader) bool { return false }, nil)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != nil {
			t.Fatalf("node %d delivered a header whose body it rejected", i)
		}
	}
}

// bodyStore is a tiny in-memory body store for evidence-path tests.
type bodyStore struct {
	mu     sync.Mutex
	bodies map[flcrypto.Hash][]byte
	puts   int
}

func newBodyStore() *bodyStore {
	return &bodyStore{bodies: make(map[flcrypto.Hash][]byte)}
}

func (bs *bodyStore) get(h flcrypto.Hash) ([]byte, bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.bodies[h]
	return b, ok
}

func (bs *bodyStore) put(enc []byte) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.bodies[flcrypto.Sum256(enc)] = append([]byte(nil), enc...)
	bs.puts++
	return true
}

func (bs *bodyStore) add(enc []byte) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.bodies[flcrypto.Sum256(enc)] = append([]byte(nil), enc...)
}

func (bs *bodyStore) putCount() int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.puts
}

// headerWithBody builds a signed header whose BodyHash commits to enc.
func (f *fixture) headerWithBody(proposer int, round uint64, enc []byte) types.SignedHeader {
	f.t.Helper()
	hdr := types.BlockHeader{
		Instance: 0,
		Round:    round,
		Proposer: flcrypto.NodeID(proposer),
		PrevHash: flcrypto.Sum256([]byte("prev")),
		BodyHash: flcrypto.Sum256(enc),
	}
	signed, err := hdr.Sign(f.ks.Privs[proposer])
	if err != nil {
		f.t.Fatal(err)
	}
	return signed
}

func TestWRBEvidenceCarriesBody(t *testing.T) {
	// Only the proposer and one other node hold the body; the other two vote
	// 0. The fallback's evidence exchange must hand them header AND body, so
	// everyone delivers (Algorithm 4: evidence(1) contains the message m).
	f := newFixture(t, 4, nil)
	bodyEnc := []byte("the block body bytes")
	stores := make([]*bodyStore, 4)
	for i, w := range f.wrbs {
		stores[i] = newBodyStore()
		w.SetBodyStore(stores[i].get, stores[i].put)
	}
	stores[0].add(bodyEnc)
	stores[1].add(bodyEnc)
	hdr := f.headerWithBody(0, 1, bodyEnc)
	if err := f.wrbs[0].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	accept := func(i int) func(types.SignedHeader) bool {
		return func(h types.SignedHeader) bool {
			_, ok := stores[i].get(h.Header.BodyHash)
			return ok
		}
	}
	n := len(f.wrbs)
	results := make([]*types.SignedHeader, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = f.wrbs[i].Deliver(key, nil, accept(i), nil)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil {
			t.Fatalf("node %d did not deliver", i)
		}
		if r.Header.Hash() != hdr.Header.Hash() {
			t.Fatalf("node %d delivered a different header", i)
		}
		if _, ok := stores[i].get(hdr.Header.BodyHash); !ok {
			t.Fatalf("node %d delivered without obtaining the body", i)
		}
	}
	if stores[2].putCount() == 0 && stores[3].putCount() == 0 {
		t.Fatal("no body traveled on the evidence path")
	}
}

func TestWRBEvidenceForRequiresBody(t *testing.T) {
	f := newFixture(t, 4, nil)
	bs := newBodyStore()
	f.wrbs[1].SetBodyStore(bs.get, bs.put)
	bodyEnc := []byte("body")
	hdr := f.headerWithBody(0, 1, bodyEnc)
	if err := f.wrbs[0].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	time.Sleep(50 * time.Millisecond) // let the push land
	// Header stashed but body missing: no evidence.
	if ev := f.wrbs[1].EvidenceFor(key); ev != nil {
		t.Fatal("EvidenceFor vouched for a header without its body")
	}
	bs.add(bodyEnc)
	var ev []byte
	deadline := time.Now().Add(2 * time.Second)
	for ev = f.wrbs[1].EvidenceFor(key); ev == nil && time.Now().Before(deadline); ev = f.wrbs[1].EvidenceFor(key) {
		time.Sleep(5 * time.Millisecond)
	}
	if ev == nil {
		t.Fatal("EvidenceFor returned nil despite header+body present")
	}
	// The produced evidence must validate at a peer with a body store, and
	// ingest the body there.
	peer := newBodyStore()
	f.wrbs[2].SetBodyStore(peer.get, peer.put)
	if !f.wrbs[2].ValidEvidence(key, ev) {
		t.Fatal("peer rejected valid header+body evidence")
	}
	if _, ok := peer.get(hdr.Header.BodyHash); !ok {
		t.Fatal("ValidEvidence did not ingest the body")
	}
}

func TestWRBValidEvidenceRejectsHeaderOnlyWhenBodyStoreSet(t *testing.T) {
	f := newFixture(t, 4, nil)
	bs := newBodyStore()
	f.wrbs[1].SetBodyStore(bs.get, bs.put)
	hdr := f.header(0, 1)
	e := types.NewEncoder(192)
	hdr.Encode(e)
	e.Uint8(0) // header-only flag
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	if f.wrbs[1].ValidEvidence(key, e.Bytes()) {
		t.Fatal("accepted header-only evidence despite body store")
	}
	// Header-only mode (no body store) accepts the same evidence.
	if !f.wrbs[2].ValidEvidence(key, e.Bytes()) {
		t.Fatal("header-only mode rejected a valid header")
	}
}

func TestWRBValidEvidenceRejectsMismatchedBody(t *testing.T) {
	f := newFixture(t, 4, nil)
	bs := newBodyStore()
	f.wrbs[1].SetBodyStore(bs.get, bs.put)
	bodyEnc := []byte("real body")
	hdr := f.headerWithBody(0, 1, bodyEnc)
	e := types.NewEncoder(256)
	hdr.Encode(e)
	e.Uint8(1)
	e.Bytes32([]byte("a different body")) // hash will not match
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	if f.wrbs[1].ValidEvidence(key, e.Bytes()) {
		t.Fatal("accepted evidence whose body does not match the header")
	}
	if bs.putCount() != 0 {
		t.Fatal("mismatched body was ingested")
	}
}

func TestWRBKickReevaluatesAccept(t *testing.T) {
	// accept is false until the "body" arrives; Kick must wake the waiter
	// before the timer expires.
	f := newFixture(t, 4, nil)
	hdr := f.header(0, 1)
	if err := f.wrbs[0].Broadcast(hdr); err != nil {
		t.Fatal(err)
	}
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	var haveBody sync.Map
	n := len(f.wrbs)
	results := make([]*types.SignedHeader, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = f.wrbs[i].Deliver(key, nil, func(types.SignedHeader) bool {
				_, ok := haveBody.Load(i)
				return ok
			}, nil)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < n; i++ {
		haveBody.Store(i, true)
		f.wrbs[i].Kick(key)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil {
			t.Fatalf("node %d: Kick did not lead to delivery", i)
		}
	}
}

func TestWRBAbort(t *testing.T) {
	f := newFixture(t, 4, nil)
	key := Key{Instance: 0, Round: 9, Proposer: 0}
	abort := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := f.wrbs[0].Deliver(key, nil, nil, abort)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(abort)
	f.obbcs[0].Abort(key)
	select {
	case err := <-errCh:
		if err != ErrAborted {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not unblock Deliver")
	}
}

func TestWRBTimerEMAAdapts(t *testing.T) {
	// After fast deliveries the timer should shrink toward the observed
	// (near-zero) delays from its 100ms start. With EMASpan 16 each round
	// folds in α = 2/17 of the new delay (into alternating slots, §6.1.1's
	// timer_{r−2} recurrence), so 40 rounds contract cur by (1−α)^20 ≈ 0.08.
	f := newFixture(t, 4, nil)
	for r := uint64(1); r <= 40; r++ {
		hdr := f.header(0, r)
		if err := f.wrbs[0].Broadcast(hdr); err != nil {
			t.Fatal(err)
		}
		f.deliverAll(Key{Instance: 0, Round: r, Proposer: 0})
	}
	if got := f.wrbs[1].CurrentTimer(0); got >= 100*time.Millisecond {
		t.Fatalf("timer did not adapt downward: %v", got)
	}
	// And never below the floor.
	if got := f.wrbs[1].CurrentTimer(0); got < 2*time.Millisecond {
		t.Fatalf("timer fell below MinTimer: %v", got)
	}
}

func TestWRBGC(t *testing.T) {
	f := newFixture(t, 4, nil)
	for r := uint64(1); r <= 5; r++ {
		hdr := f.header(0, r)
		if err := f.wrbs[0].Broadcast(hdr); err != nil {
			t.Fatal(err)
		}
		f.deliverAll(Key{Instance: 0, Round: r, Proposer: 0})
	}
	w := f.wrbs[0]
	w.mu.Lock()
	before := len(w.slots)
	w.mu.Unlock()
	w.GC(0, 5)
	w.mu.Lock()
	after := len(w.slots)
	w.mu.Unlock()
	if after >= before {
		t.Fatalf("GC did not shrink slots: %d -> %d", before, after)
	}
}

func TestWRBOnEquivocationObserver(t *testing.T) {
	f := newFixture(t, 4, nil)
	var mu sync.Mutex
	var pairs [][2]types.SignedHeader
	f.wrbs[1].SetOnEquivocation(func(a, b types.SignedHeader) {
		mu.Lock()
		pairs = append(pairs, [2]types.SignedHeader{a, b})
		mu.Unlock()
	})
	// Node 0 pushes two different headers for the same round (equivocation).
	hdrA := f.headerWithBody(0, 1, []byte("version A"))
	hdrB := f.headerWithBody(0, 1, []byte("version B"))
	if err := f.wrbs[0].Broadcast(hdrA); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Wait for A to stash at node 1 before pushing B, so the conflict
		// is observed deterministically.
		if ev := f.wrbs[1].EvidenceFor(Key{Instance: 0, Round: 1, Proposer: 0}); ev != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first header never stashed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := f.wrbs[0].PushTo(1, hdrB); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(pairs)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("equivocation not observed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	a, b := pairs[0][0], pairs[0][1]
	if a.Header.Proposer != 0 || b.Header.Proposer != 0 || a.Header.Round != 1 || b.Header.Round != 1 {
		t.Fatalf("observed pair describes the wrong slot: %+v / %+v", a.Header, b.Header)
	}
	if a.Header.Hash() == b.Header.Hash() {
		t.Fatal("observed pair is not conflicting")
	}
	// Re-pushing an identical header must NOT fire the observer.
	before := len(pairs)
	if err := f.wrbs[0].PushTo(1, hdrA); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if len(pairs) != before {
		t.Fatal("duplicate identical header reported as equivocation")
	}
}

package types

import (
	"bytes"
	"testing"

	"repro/internal/flcrypto"
)

func hotpathBlock(t *testing.T, txs int) Block {
	t.Helper()
	priv, err := flcrypto.GenerateKey(flcrypto.Ed25519, flcrypto.NewDeterministicReader("hotpath-test"))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Transaction, txs)
	for i := range batch {
		batch[i] = Transaction{Client: uint64(i), Seq: uint64(i) * 7, Payload: []byte{byte(i), 1, 2, 3}}
	}
	blk, err := NewBlock(3, 9, 1, flcrypto.Hash{31: 1}, batch, priv)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

// TestRoundTripByteIdentity is the guard on the memoized-encoding fast
// path: decode→re-encode must reproduce the original wire bytes exactly,
// for Block, SignedHeader, and Body, and both the memoized re-encode and a
// fresh field-wise re-encode of the decoded value must agree. If this ever
// breaks, a decoded block persisted to the store or served to a range-sync
// peer would differ from what was signed.
func TestRoundTripByteIdentity(t *testing.T) {
	for _, txs := range []int{0, 1, 17} {
		blk := hotpathBlock(t, txs)

		// Block.
		e := NewEncoder(0)
		blk.Encode(e)
		wire := append([]byte(nil), e.Bytes()...)
		d := NewDecoder(wire)
		got := DecodeBlock(d)
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
		re := NewEncoder(0)
		got.Encode(re)
		if !bytes.Equal(re.Bytes(), wire) {
			t.Fatalf("txs=%d: block decode->re-encode differs from wire", txs)
		}
		// Field-wise re-encode (memo bypassed via fresh values) must agree
		// with the memoized fast path.
		fresh := Block{
			Signed: SignedHeader{Header: got.Signed.Header, Sig: got.Signed.Sig},
			Body:   Body{Txs: got.Body.Txs},
		}
		fe := NewEncoder(0)
		fresh.Encode(fe)
		if !bytes.Equal(fe.Bytes(), wire) {
			t.Fatalf("txs=%d: field-wise re-encode differs from memoized wire bytes", txs)
		}

		// SignedHeader alone.
		se := NewEncoder(0)
		blk.Signed.Encode(se)
		sWire := append([]byte(nil), se.Bytes()...)
		sd := NewDecoder(sWire)
		sGot := DecodeSignedHeader(sd)
		if err := sd.Finish(); err != nil {
			t.Fatal(err)
		}
		sre := NewEncoder(0)
		sGot.Encode(sre)
		if !bytes.Equal(sre.Bytes(), sWire) {
			t.Fatalf("txs=%d: signed header round trip differs", txs)
		}
		if !bytes.Equal(sGot.HeaderBytes(), blk.Signed.HeaderBytes()) {
			t.Fatalf("txs=%d: canonical header bytes differ across decode", txs)
		}
		if sGot.HeaderHash() != blk.Signed.HeaderHash() || sGot.HeaderHash() != sGot.Header.Hash() {
			t.Fatalf("txs=%d: memoized header hash disagrees with fresh hash", txs)
		}

		// Body alone.
		be := NewEncoder(0)
		blk.Body.Encode(be)
		bWire := append([]byte(nil), be.Bytes()...)
		bd := NewDecoder(bWire)
		bGot := DecodeBody(bd)
		if err := bd.Finish(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bGot.Marshal(), bWire) {
			t.Fatalf("txs=%d: body marshal differs from wire", txs)
		}
		if bGot.Hash() != blk.Body.Hash() {
			t.Fatalf("txs=%d: body hash differs across decode", txs)
		}
	}
}

// TestImmutabilityContract documents the encode-once contract: once a value
// has been signed, decoded, or hashed, its canonical encoding and digest
// are frozen — mutating the fields afterwards does NOT update them. Code
// that needs a variant must build a fresh value (as proposeEquivocating
// does). This test pins the contract so a future change to the memoization
// is made deliberately.
func TestImmutabilityContract(t *testing.T) {
	blk := hotpathBlock(t, 3)

	// Hash the body, then mutate a transaction in place: the memoized hash
	// must remain the pre-mutation one (stale by design).
	before := blk.Body.Hash()
	blk.Body.Txs[0].Seq = 999999
	if blk.Body.Hash() != before {
		t.Fatal("body hash tracked a post-hash mutation; the memo should be frozen")
	}
	// A fresh value over the same (mutated) transactions re-computes.
	fresh := Body{Txs: blk.Body.Txs}
	if fresh.Hash() == before {
		t.Fatal("fresh body value did not re-hash the mutated transactions")
	}

	// Same for the signed header: the canonical bytes are the signed ones.
	sh := blk.Signed
	hdrBytes := append([]byte(nil), sh.HeaderBytes()...)
	sh.Header.Round = 77777
	if !bytes.Equal(sh.HeaderBytes(), hdrBytes) {
		t.Fatal("header bytes tracked a post-sign mutation; the memo should be frozen")
	}
	freshSH := SignedHeader{Header: sh.Header, Sig: sh.Sig}
	if bytes.Equal(freshSH.HeaderBytes(), hdrBytes) {
		t.Fatal("fresh signed header did not re-encode the mutated header")
	}
}

// TestEmptyBodyHash pins the precomputed empty-body sentinel to the real
// encoding's digest.
func TestEmptyBodyHash(t *testing.T) {
	empty := Body{}
	e := NewEncoder(4)
	empty.encodeInto(e)
	if want := flcrypto.Sum256(e.Bytes()); EmptyBodyHash() != want {
		t.Fatalf("EmptyBodyHash %x, want %x", EmptyBodyHash(), want)
	}
	if empty.Hash() != EmptyBodyHash() {
		t.Fatal("Body{}.Hash does not use the sentinel value")
	}
	withTx := Body{Txs: []Transaction{{Client: 1}}}
	if withTx.Hash() == EmptyBodyHash() {
		t.Fatal("non-empty body collides with the empty sentinel")
	}
}

// TestEncoderPoolReuse checks the pooled-scratch cycle recycles buffers and
// counts its activity.
func TestEncoderPoolReuse(t *testing.T) {
	gets0, _ := PoolStats()
	for i := 0; i < 64; i++ {
		e := GetEncoder(128)
		e.Uint64(uint64(i))
		if len(e.Bytes()) != 8 {
			t.Fatal("pooled encoder did not reset")
		}
		e.Release()
	}
	gets1, reuses1 := PoolStats()
	if gets1-gets0 < 64 {
		t.Fatalf("pool gets %d, want >= 64", gets1-gets0)
	}
	if reuses1 == 0 {
		t.Fatal("no pooled buffer was ever reused")
	}
}

package types

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/flcrypto"
)

func testKey(t testing.TB) flcrypto.PrivateKey {
	t.Helper()
	priv, err := flcrypto.GenerateKey(flcrypto.Ed25519, nil)
	if err != nil {
		t.Fatal(err)
	}
	return priv
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := Transaction{Client: 7, Seq: 42, Payload: []byte("transfer 10 coins")}
	e := NewEncoder(tx.Size())
	tx.Encode(e)
	if got := len(e.Bytes()); got != tx.Size() {
		t.Fatalf("encoded size %d, Size() says %d", got, tx.Size())
	}
	d := NewDecoder(e.Bytes())
	got := DecodeTransaction(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.Client != tx.Client || got.Seq != tx.Seq || !bytes.Equal(got.Payload, tx.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tx)
	}
	if got.ID() != tx.ID() {
		t.Fatal("IDs differ after round trip")
	}
}

func TestTransactionRoundTripQuick(t *testing.T) {
	f := func(client, seq uint64, payload []byte) bool {
		tx := Transaction{Client: client, Seq: seq, Payload: payload}
		e := NewEncoder(tx.Size())
		tx.Encode(e)
		d := NewDecoder(e.Bytes())
		got := DecodeTransaction(d)
		return d.Finish() == nil &&
			got.Client == tx.Client && got.Seq == tx.Seq &&
			bytes.Equal(got.Payload, tx.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(inst uint32, round uint64, proposer int16, prev, body [32]byte, txc uint32) bool {
		h := BlockHeader{
			Instance: inst, Round: round, Proposer: flcrypto.NodeID(proposer),
			PrevHash: prev, BodyHash: body, TxCount: txc,
		}
		d := NewDecoder(h.Marshal())
		got := DecodeBlockHeader(d)
		return d.Finish() == nil && got == h && got.Hash() == h.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderHashBindsAllFields(t *testing.T) {
	base := BlockHeader{Instance: 1, Round: 5, Proposer: 2,
		PrevHash: flcrypto.Sum256([]byte("p")), BodyHash: flcrypto.Sum256([]byte("b")), TxCount: 9}
	mutants := []BlockHeader{base, base, base, base, base, base}
	mutants[0].Instance++
	mutants[1].Round++
	mutants[2].Proposer++
	mutants[3].PrevHash[0] ^= 1
	mutants[4].BodyHash[0] ^= 1
	mutants[5].TxCount++
	for i, m := range mutants {
		if m.Hash() == base.Hash() {
			t.Errorf("mutant %d has same hash as base", i)
		}
	}
}

func TestSignedHeaderVerify(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	hdr := BlockHeader{Instance: 0, Round: 1, Proposer: 2}
	signed, err := hdr.Sign(ks.Privs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !signed.Verify(ks.Registry) {
		t.Fatal("valid signed header rejected")
	}
	// Claiming a different proposer must fail: impersonation is impossible.
	// The forgeries are built as fresh values (not mutated copies): a
	// signed/decoded value is frozen — its canonical encoding is memoized —
	// so this is how a tampered header actually reaches a verifier (the
	// receiver decodes the attacker's re-encoded bytes fresh).
	forged := SignedHeader{Header: signed.Header, Sig: signed.Sig}
	forged.Header.Proposer = 1
	if forged.Verify(ks.Registry) {
		t.Fatal("forged proposer accepted")
	}
	// Mutating content must fail.
	tampered := SignedHeader{Header: signed.Header, Sig: signed.Sig}
	tampered.Header.Round = 9
	if tampered.Verify(ks.Registry) {
		t.Fatal("tampered header accepted")
	}
	// Wire-level tampering must fail: whatever bytes arrive are what the
	// decoder memoizes and the verifier checks.
	e := NewEncoder(0)
	signed.Encode(e)
	wire := append([]byte(nil), e.Bytes()...)
	wire[10] ^= 1 // flip a bit inside the round field
	got := DecodeSignedHeader(NewDecoder(wire))
	if got.Verify(ks.Registry) {
		t.Fatal("wire-tampered header accepted")
	}
}

func TestSignedHeaderRoundTrip(t *testing.T) {
	priv := testKey(t)
	hdr := BlockHeader{Round: 3, Proposer: 0, TxCount: 1}
	signed, err := hdr.Sign(priv)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(0)
	signed.Encode(e)
	d := NewDecoder(e.Bytes())
	got := DecodeSignedHeader(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.Header != signed.Header || !bytes.Equal(got.Sig, signed.Sig) {
		t.Fatal("signed header round trip mismatch")
	}
}

func TestBlockAssemblyAndCheck(t *testing.T) {
	priv := testKey(t)
	txs := []Transaction{
		{Client: 1, Seq: 1, Payload: []byte("a")},
		{Client: 2, Seq: 1, Payload: []byte("bb")},
	}
	blk, err := NewBlock(0, 1, 0, flcrypto.ZeroHash, txs, priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := blk.CheckBody(); err != nil {
		t.Fatalf("CheckBody on fresh block: %v", err)
	}
	if blk.Header().TxCount != 2 {
		t.Fatalf("TxCount = %d", blk.Header().TxCount)
	}
	// Swapping the body for a different one must be detected: this is the
	// binding the header/block separation optimization (§6.1.1) relies on.
	evil := blk
	evil.Body = Body{Txs: []Transaction{{Client: 9, Seq: 9, Payload: []byte("evil")}}}
	if err := evil.CheckBody(); err == nil {
		t.Fatal("body substitution not detected")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	priv := testKey(t)
	blk, err := NewBlock(3, 17, 1, flcrypto.Sum256([]byte("prev")),
		[]Transaction{{Client: 5, Seq: 8, Payload: bytes.Repeat([]byte{0xAB}, 512)}}, priv)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(0)
	blk.Encode(e)
	d := NewDecoder(e.Bytes())
	got := DecodeBlock(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.Hash() != blk.Hash() {
		t.Fatal("block hash changed across round trip")
	}
	if err := got.CheckBody(); err != nil {
		t.Fatal(err)
	}
}

func TestBodyRoundTripQuick(t *testing.T) {
	f := func(payloads [][]byte) bool {
		body := Body{}
		for i, p := range payloads {
			body.Txs = append(body.Txs, Transaction{Client: uint64(i), Seq: 1, Payload: p})
		}
		d := NewDecoder(body.Marshal())
		got := DecodeBody(d)
		if d.Finish() != nil || len(got.Txs) != len(body.Txs) {
			return false
		}
		return got.Hash() == body.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderTruncation(t *testing.T) {
	priv := testKey(t)
	blk, err := NewBlock(0, 1, 0, flcrypto.ZeroHash,
		[]Transaction{{Payload: []byte("x")}}, priv)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder(0)
	blk.Encode(e)
	full := e.Bytes()
	// Every strict prefix must fail to decode cleanly (either decode error
	// or trailing-byte error); none may panic.
	for i := 0; i < len(full); i++ {
		d := NewDecoder(full[:i])
		DecodeBlock(d)
		if d.Finish() == nil {
			t.Fatalf("prefix of length %d decoded cleanly", i)
		}
	}
}

func TestDecoderRejectsHugeLengthPrefix(t *testing.T) {
	e := NewEncoder(0)
	e.Uint32(1 << 30) // absurd length, no data
	d := NewDecoder(e.Bytes())
	if b := d.Bytes32(); b != nil {
		t.Fatal("huge length prefix yielded data")
	}
	if d.Err() != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", d.Err())
	}
}

func TestGenesisHeaderStable(t *testing.T) {
	if GenesisHeader(2).Hash() != GenesisHeader(2).Hash() {
		t.Fatal("genesis hash not deterministic")
	}
	if GenesisHeader(1).Hash() == GenesisHeader(2).Hash() {
		t.Fatal("different instances share a genesis hash")
	}
}

func TestEncoderPrimitivesRoundTripQuick(t *testing.T) {
	f := func(a uint8, b uint32, c uint64, d int64, e bool, raw []byte) bool {
		enc := NewEncoder(0)
		enc.Uint8(a)
		enc.Uint32(b)
		enc.Uint64(c)
		enc.Int64(d)
		enc.Bool(e)
		enc.Bytes32(raw)
		dec := NewDecoder(enc.Bytes())
		okA := dec.Uint8() == a
		okB := dec.Uint32() == b
		okC := dec.Uint64() == c
		okD := dec.Int64() == d
		okE := dec.Bool() == e
		okRaw := bytes.Equal(dec.Bytes32(), raw)
		return okA && okB && okC && okD && okE && okRaw && dec.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

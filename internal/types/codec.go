// Package types defines FireLedger's wire-level data model: transactions,
// block headers, blocks, and the signed envelopes the protocols exchange,
// together with a deterministic binary codec. Determinism matters because
// hashes and signatures are computed over encodings; two correct nodes must
// produce byte-identical encodings of the same value (§3.1, §5.2).
package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/flcrypto"
	"repro/internal/metrics"
)

// ErrTruncated reports a decode that ran off the end of the buffer.
var ErrTruncated = errors.New("types: truncated encoding")

// ErrTooLarge reports a length prefix exceeding the decoder's sanity limit.
var ErrTooLarge = errors.New("types: length prefix exceeds limit")

// MaxFieldLen caps any single length-prefixed field. It is a defensive bound
// against malicious length prefixes: a Byzantine node must not be able to
// make a correct node allocate gigabytes from a short message.
const MaxFieldLen = 1 << 28 // 256 MiB

// Encoder appends deterministic big-endian encodings to a byte slice.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity hint n.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// encPool recycles Encoder scratch buffers across the hot paths: every
// protocol round encodes a dozen-plus small control messages plus the block
// frames, and without pooling each of them is a fresh allocation. Buffers
// above maxPooledCap are dropped on Release so one giant block does not pin
// memory forever.
var encPool = sync.Pool{New: func() any { return new(Encoder) }}

const maxPooledCap = 1 << 20

// Pool instrumentation: gets, and how many of those were served by a
// recycled buffer large enough for the request (the reuse the pool exists
// for).
var poolGets, poolReuses metrics.Counter

// GetEncoder returns a pooled encoder with at least n bytes of capacity.
// The caller must Release it when the encoded bytes have been fully
// consumed — and must not let Bytes() escape past Release: the buffer is
// recycled. Sends through a transport.Mux are safe (the mux copies the
// payload into its wire envelope before queueing); retained values
// (memoized encodings, mailbox payloads) are not.
func GetEncoder(n int) *Encoder {
	e := encPool.Get().(*Encoder)
	poolGets.Add(1)
	if cap(e.buf) < n {
		e.buf = make([]byte, 0, n)
	} else {
		poolReuses.Add(1)
		e.buf = e.buf[:0]
	}
	return e
}

// Release recycles e's buffer. The encoder and any slice obtained from
// Bytes() must not be used afterwards.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledCap {
		e.buf = nil
	}
	encPool.Put(e)
}

// PoolStats reports the encoder pool's activity: total GetEncoder calls and
// how many were satisfied by a recycled buffer.
func PoolStats() (gets, reuses uint64) { return poolGets.Load(), poolReuses.Load() }

// Bytes returns the encoded buffer. The encoder must not be reused after
// (except through the Get/Release pool cycle).
func (e *Encoder) Bytes() []byte { return e.buf }

// Raw appends pre-encoded bytes verbatim — the fast path for memoized
// canonical encodings.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Uint32 appends a big-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a big-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends a big-endian int64 (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Hash appends a 32-byte hash.
func (e *Encoder) Hash(h flcrypto.Hash) { e.buf = append(e.buf, h[:]...) }

// Bytes32 appends a length-prefixed byte slice (uint32 length).
func (e *Encoder) Bytes32(b []byte) {
	if len(b) > math.MaxUint32 {
		panic("types: field too large to encode")
	}
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder consumes deterministic encodings produced by Encoder.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder wraps buf for reading.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Fail poisons the decoder with err (keeping an earlier error if one is
// already set), so message-level validation — bounds checks on element
// counts, semantic limits — rejects a frame through the same path as
// structural decode errors: every later read returns zero values and
// Finish reports the failure.
func (d *Decoder) Fail(err error) {
	if d.err == nil && err != nil {
		d.err = err
	}
}

// Len returns the number of unread bytes.
func (d *Decoder) Len() int { return len(d.buf) }

// Finish returns an error if decoding failed or left trailing bytes.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("types: %d trailing bytes after decode", len(d.buf))
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = ErrTruncated
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a big-endian int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool reads a boolean byte; any nonzero value is true.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Hash reads a 32-byte hash.
func (d *Decoder) Hash() flcrypto.Hash {
	var h flcrypto.Hash
	b := d.take(len(h))
	if b != nil {
		copy(h[:], b)
	}
	return h
}

// Bytes32 reads a length-prefixed byte slice. The returned slice aliases the
// decoder's buffer; callers that retain it across buffer reuse must copy.
func (d *Decoder) Bytes32() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > MaxFieldLen {
		d.err = ErrTooLarge
		return nil
	}
	return d.take(int(n))
}

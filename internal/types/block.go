package types

import (
	"errors"
	"fmt"

	"repro/internal/flcrypto"
)

// Transaction is a client-submitted operation. In the paper's evaluation
// transactions are opaque random payloads of σ bytes (Table 2); applications
// (examples/payments, examples/kvstore) put structured data in Payload and
// interpret it in their validity predicate and state machine.
type Transaction struct {
	// Client identifies the submitting client (free-form).
	Client uint64
	// Seq is the client-local sequence number, giving each transaction a
	// unique identity together with Client.
	Seq uint64
	// Payload is the operation body; its length is the σ of the paper.
	Payload []byte
}

// Encode appends the transaction to e.
func (t *Transaction) Encode(e *Encoder) {
	e.Uint64(t.Client)
	e.Uint64(t.Seq)
	e.Bytes32(t.Payload)
}

// DecodeTransaction reads a transaction from d.
func DecodeTransaction(d *Decoder) Transaction {
	var t Transaction
	t.Client = d.Uint64()
	t.Seq = d.Uint64()
	t.Payload = append([]byte(nil), d.Bytes32()...)
	return t
}

// Size returns the encoded size in bytes.
func (t *Transaction) Size() int { return 8 + 8 + 4 + len(t.Payload) }

// ID returns the transaction's content hash.
func (t *Transaction) ID() flcrypto.Hash {
	e := NewEncoder(t.Size())
	t.Encode(e)
	return flcrypto.Sum256(e.Bytes())
}

// BlockHeader is the consensus-path view of a block (§6.1.1 separates headers
// from block bodies: only headers flow through WRB/OBBC; bodies are
// disseminated asynchronously). The header carries the authentication data
// linking the chain: PrevHash commits to the entire prefix.
type BlockHeader struct {
	// Instance is the FLO worker index this chain belongs to (§6.2).
	Instance uint32
	// Round is the chain height / protocol round r of Algorithm 2.
	Round uint64
	// Proposer is the node that created the block.
	Proposer flcrypto.NodeID
	// PrevHash is the hash of the predecessor block's header.
	PrevHash flcrypto.Hash
	// BodyHash commits to the block body (the transaction batch), so a
	// header uniquely identifies its body.
	BodyHash flcrypto.Hash
	// TxCount is the number of transactions in the body; carried in the
	// header so empty blocks are recognizable without fetching the body.
	TxCount uint32
}

// Encode appends the header to e.
func (h BlockHeader) Encode(e *Encoder) {
	e.Uint32(h.Instance)
	e.Uint64(h.Round)
	e.Int64(int64(h.Proposer))
	e.Hash(h.PrevHash)
	e.Hash(h.BodyHash)
	e.Uint32(h.TxCount)
}

// DecodeBlockHeader reads a header from d.
func DecodeBlockHeader(d *Decoder) BlockHeader {
	var h BlockHeader
	h.Instance = d.Uint32()
	h.Round = d.Uint64()
	h.Proposer = flcrypto.NodeID(d.Int64())
	h.PrevHash = d.Hash()
	h.BodyHash = d.Hash()
	h.TxCount = d.Uint32()
	return h
}

// Marshal returns the standalone encoding of the header; this is the byte
// string nodes sign and hash.
func (h BlockHeader) Marshal() []byte {
	e := NewEncoder(4 + 8 + 8 + 32 + 32 + 4)
	h.Encode(e)
	return e.Bytes()
}

// Hash returns the header's digest, which serves as the block's identity and
// as the next block's PrevHash.
func (h BlockHeader) Hash() flcrypto.Hash {
	return flcrypto.Sum256(h.Marshal())
}

// SignedHeader is a header together with its proposer's signature — the
// (m, sig_k(m)) pairs of Algorithm 1 and the evidence of OBBC (Appendix A.5).
type SignedHeader struct {
	Header BlockHeader
	Sig    flcrypto.Signature
}

// Encode appends the signed header to e.
func (s *SignedHeader) Encode(e *Encoder) {
	s.Header.Encode(e)
	e.Bytes32(s.Sig)
}

// DecodeSignedHeader reads a signed header from d.
func DecodeSignedHeader(d *Decoder) SignedHeader {
	var s SignedHeader
	s.Header = DecodeBlockHeader(d)
	s.Sig = append(flcrypto.Signature(nil), d.Bytes32()...)
	return s
}

// Verify checks the proposer's signature against the registry.
func (s *SignedHeader) Verify(reg *flcrypto.Registry) bool {
	return s.VerifyPooled(reg, nil)
}

// VerifyPooled is Verify through a verification pool's cache; WRB piggyback
// echoes, OBBC evidence responses, and recovery versions all re-present the
// same signed header, so consensus-path callers route through the shared
// pool. A nil pool verifies synchronously and uncached.
func (s *SignedHeader) VerifyPooled(reg *flcrypto.Registry, pool *flcrypto.VerifyPool) bool {
	return pool.VerifyNode(reg, s.Header.Proposer, s.Header.Marshal(), s.Sig)
}

// Sign produces a SignedHeader using the proposer's private key.
func (h BlockHeader) Sign(priv flcrypto.PrivateKey) (SignedHeader, error) {
	sig, err := priv.Sign(h.Marshal())
	if err != nil {
		return SignedHeader{}, fmt.Errorf("types: sign header: %w", err)
	}
	return SignedHeader{Header: h, Sig: sig}, nil
}

// Body is a block's transaction batch, disseminated on the data path.
type Body struct {
	Txs []Transaction
}

// Encode appends the body to e.
func (b *Body) Encode(e *Encoder) {
	e.Uint32(uint32(len(b.Txs)))
	for i := range b.Txs {
		b.Txs[i].Encode(e)
	}
}

// DecodeBody reads a body from d.
func DecodeBody(d *Decoder) Body {
	n := d.Uint32()
	if d.Err() != nil {
		return Body{}
	}
	if n > MaxFieldLen/8 {
		return Body{} // defensive: bogus count; Finish will flag trailing/truncation
	}
	body := Body{Txs: make([]Transaction, 0, n)}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		body.Txs = append(body.Txs, DecodeTransaction(d))
	}
	return body
}

// Size returns the encoded size of the body in bytes.
func (b *Body) Size() int {
	n := 4
	for i := range b.Txs {
		n += b.Txs[i].Size()
	}
	return n
}

// Marshal returns the standalone encoding of the body.
func (b *Body) Marshal() []byte {
	e := NewEncoder(b.Size())
	b.Encode(e)
	return e.Bytes()
}

// Hash returns the digest a header's BodyHash must match.
func (b *Body) Hash() flcrypto.Hash { return flcrypto.Sum256(b.Marshal()) }

// Block pairs a signed header with its body. Only fully assembled blocks are
// appended to the chain.
type Block struct {
	Signed SignedHeader
	Body   Body
}

// Header returns the block's header.
func (b *Block) Header() *BlockHeader { return &b.Signed.Header }

// Hash returns the block's identity (its header hash).
func (b *Block) Hash() flcrypto.Hash { return b.Signed.Header.Hash() }

// Encode appends the full block to e.
func (b *Block) Encode(e *Encoder) {
	b.Signed.Encode(e)
	b.Body.Encode(e)
}

// DecodeBlock reads a block from d.
func DecodeBlock(d *Decoder) Block {
	var b Block
	b.Signed = DecodeSignedHeader(d)
	b.Body = DecodeBody(d)
	return b
}

// ErrBodyMismatch reports a body whose hash does not match its header.
var ErrBodyMismatch = errors.New("types: body hash does not match header")

// CheckBody verifies internal consistency between header and body.
func (b *Block) CheckBody() error {
	if b.Body.Hash() != b.Signed.Header.BodyHash {
		return ErrBodyMismatch
	}
	if uint32(len(b.Body.Txs)) != b.Signed.Header.TxCount {
		return fmt.Errorf("types: header declares %d txs, body has %d",
			b.Signed.Header.TxCount, len(b.Body.Txs))
	}
	return nil
}

// NewBlock assembles and signs a block extending prev (identified by its
// header hash) with the given batch.
func NewBlock(instance uint32, round uint64, proposer flcrypto.NodeID,
	prevHash flcrypto.Hash, txs []Transaction, priv flcrypto.PrivateKey) (Block, error) {
	body := Body{Txs: txs}
	hdr := BlockHeader{
		Instance: instance,
		Round:    round,
		Proposer: proposer,
		PrevHash: prevHash,
		BodyHash: body.Hash(),
		TxCount:  uint32(len(txs)),
	}
	signed, err := hdr.Sign(priv)
	if err != nil {
		return Block{}, err
	}
	return Block{Signed: signed, Body: body}, nil
}

// GenesisHeader returns the implicit round-0 predecessor of instance's chain.
// It is identical at all correct nodes, so round-1 headers chain to a common
// root without any communication.
func GenesisHeader(instance uint32) BlockHeader {
	return BlockHeader{Instance: instance, Round: 0, Proposer: -1}
}

package types

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/flcrypto"
)

// Transaction is a client-submitted operation. In the paper's evaluation
// transactions are opaque random payloads of σ bytes (Table 2); applications
// (examples/payments, examples/kvstore) put structured data in Payload and
// interpret it in their validity predicate and state machine.
type Transaction struct {
	// Client identifies the submitting client (free-form).
	Client uint64
	// Seq is the client-local sequence number, giving each transaction a
	// unique identity together with Client.
	Seq uint64
	// Payload is the operation body; its length is the σ of the paper.
	Payload []byte
}

// Encode appends the transaction to e.
func (t *Transaction) Encode(e *Encoder) {
	e.Uint64(t.Client)
	e.Uint64(t.Seq)
	e.Bytes32(t.Payload)
}

// DecodeTransaction reads a transaction from d. The payload is copied, so
// the result is safe to retain regardless of the buffer's lifetime.
func DecodeTransaction(d *Decoder) Transaction {
	var t Transaction
	t.Client = d.Uint64()
	t.Seq = d.Uint64()
	t.Payload = append([]byte(nil), d.Bytes32()...)
	return t
}

// decodeTransactionShared is DecodeTransaction without the payload copy:
// Payload aliases the decoder's buffer. DecodeBody uses it — a decoded body
// already retains its wire slice for the encode-once fast path, so aliasing
// the per-transaction payloads adds zero extra retention and saves one
// allocation per transaction.
func decodeTransactionShared(d *Decoder) Transaction {
	var t Transaction
	t.Client = d.Uint64()
	t.Seq = d.Uint64()
	t.Payload = d.Bytes32()
	return t
}

// Size returns the encoded size in bytes.
func (t *Transaction) Size() int { return 8 + 8 + 4 + len(t.Payload) }

// ID returns the transaction's content hash.
func (t *Transaction) ID() flcrypto.Hash {
	e := GetEncoder(t.Size())
	t.Encode(e)
	h := flcrypto.Sum256(e.Bytes())
	e.Release()
	return h
}

// encMemo caches a value's canonical encoding and digest so they are
// computed at most once per constructed value (the encode-once/hash-once
// invariant). Copies of the owning struct share the memo through the
// pointer. The encoding slice is published through an atomic pointer so
// encode fast paths can peek without locking; mu serializes the one-time
// computations.
//
// A memo is only sound while the owning value is immutable: mutating a
// Body's transactions or a SignedHeader's header after the memo was
// populated leaves it stale. Decoded and signed values must therefore be
// treated as frozen — derive a fresh value instead of mutating in place
// (see the immutability test in block_test.go and README "Hot path &
// persistence").
type encMemo struct {
	mu       sync.Mutex
	enc      atomic.Pointer[[]byte]
	hashDone atomic.Bool
	hash     flcrypto.Hash
}

// seededMemo returns a memo pre-populated with the canonical encoding enc.
func seededMemo(enc []byte) *encMemo {
	m := &encMemo{}
	m.enc.Store(&enc)
	return m
}

// bytes returns the memoized encoding, computing it with f on first use.
// f must not consult the memo (it runs under m.mu).
func (m *encMemo) bytes(f func() []byte) []byte {
	if p := m.enc.Load(); p != nil {
		return *p
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.enc.Load(); p != nil {
		return *p
	}
	b := f()
	m.enc.Store(&b)
	return b
}

// peek returns the encoding if it is already memoized, nil otherwise.
func (m *encMemo) peek() []byte {
	if p := m.enc.Load(); p != nil {
		return *p
	}
	return nil
}

// digest returns the memoized SHA-256 of the encoding, computing encoding
// and digest on first use.
func (m *encMemo) digest(f func() []byte) flcrypto.Hash {
	if m.hashDone.Load() {
		return m.hash
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hashDone.Load() {
		return m.hash
	}
	p := m.enc.Load()
	if p == nil {
		b := f()
		m.enc.Store(&b)
		p = &b
	}
	m.hash = flcrypto.Sum256(*p)
	m.hashDone.Store(true)
	return m.hash
}

// seedDigest installs a known digest (used by constructors that already
// computed it).
func (m *encMemo) seedDigest(h flcrypto.Hash) {
	m.mu.Lock()
	m.hash = h
	m.hashDone.Store(true)
	m.mu.Unlock()
}

// BlockHeader is the consensus-path view of a block (§6.1.1 separates headers
// from block bodies: only headers flow through WRB/OBBC; bodies are
// disseminated asynchronously). The header carries the authentication data
// linking the chain: PrevHash commits to the entire prefix.
//
// BlockHeader is a plain comparable value with no caching state; the
// encode-once/hash-once memos live on SignedHeader (HeaderBytes/HeaderHash)
// and Body, which every hot path holds.
type BlockHeader struct {
	// Instance is the FLO worker index this chain belongs to (§6.2).
	Instance uint32
	// Round is the chain height / protocol round r of Algorithm 2.
	Round uint64
	// Proposer is the node that created the block.
	Proposer flcrypto.NodeID
	// PrevHash is the hash of the predecessor block's header.
	PrevHash flcrypto.Hash
	// BodyHash commits to the block body (the transaction batch), so a
	// header uniquely identifies its body.
	BodyHash flcrypto.Hash
	// TxCount is the number of transactions in the body; carried in the
	// header so empty blocks are recognizable without fetching the body.
	TxCount uint32
}

// headerWireSize is the fixed encoded size of a BlockHeader.
const headerWireSize = 4 + 8 + 8 + 32 + 32 + 4

// Encode appends the header to e.
func (h BlockHeader) Encode(e *Encoder) {
	e.Uint32(h.Instance)
	e.Uint64(h.Round)
	e.Int64(int64(h.Proposer))
	e.Hash(h.PrevHash)
	e.Hash(h.BodyHash)
	e.Uint32(h.TxCount)
}

// DecodeBlockHeader reads a header from d.
func DecodeBlockHeader(d *Decoder) BlockHeader {
	var h BlockHeader
	h.Instance = d.Uint32()
	h.Round = d.Uint64()
	h.Proposer = flcrypto.NodeID(d.Int64())
	h.PrevHash = d.Hash()
	h.BodyHash = d.Hash()
	h.TxCount = d.Uint32()
	return h
}

// Marshal returns the standalone encoding of the header; this is the byte
// string nodes sign and hash. Callers that hold a SignedHeader should use
// HeaderBytes instead, which memoizes.
func (h BlockHeader) Marshal() []byte {
	e := NewEncoder(headerWireSize)
	h.Encode(e)
	return e.Bytes()
}

// Hash returns the header's digest, which serves as the block's identity and
// as the next block's PrevHash. Callers that hold a SignedHeader or Block
// should use HeaderHash/Block.Hash instead, which memoize.
func (h BlockHeader) Hash() flcrypto.Hash {
	e := GetEncoder(headerWireSize)
	h.Encode(e)
	sum := flcrypto.Sum256(e.Bytes())
	e.Release()
	return sum
}

// SignedHeader is a header together with its proposer's signature — the
// (m, sig_k(m)) pairs of Algorithm 1 and the evidence of OBBC (Appendix A.5).
type SignedHeader struct {
	Header BlockHeader
	Sig    flcrypto.Signature

	// memo caches the canonical header encoding (the signed bytes) and its
	// hash. Decode retains the wire slice; Sign retains the bytes it signed.
	// Values built by struct literal carry a nil memo and compute per call.
	// Copies share the memo; the Header must not be mutated once the value
	// is signed, decoded, or hashed.
	memo *encMemo
}

// HeaderBytes returns the canonical encoding of the header — the bytes the
// proposer signed — computing it at most once per constructed value. The
// returned slice must not be modified.
func (s *SignedHeader) HeaderBytes() []byte {
	if m := s.memo; m != nil {
		return m.bytes(s.Header.Marshal)
	}
	return s.Header.Marshal()
}

// HeaderHash returns the header's digest, computed at most once per
// constructed value. It equals Header.Hash().
func (s *SignedHeader) HeaderHash() flcrypto.Hash {
	if m := s.memo; m != nil {
		return m.digest(s.Header.Marshal)
	}
	return s.Header.Hash()
}

// Encode appends the signed header to e.
func (s *SignedHeader) Encode(e *Encoder) {
	if m := s.memo; m != nil {
		e.Raw(m.bytes(s.Header.Marshal))
	} else {
		s.Header.Encode(e)
	}
	e.Bytes32(s.Sig)
}

// DecodeSignedHeader reads a signed header from d. The header's wire bytes
// are retained as its canonical encoding (encode-once), so re-encoding and
// signature verification skip the marshal.
func DecodeSignedHeader(d *Decoder) SignedHeader {
	start := d.buf
	var s SignedHeader
	s.Header = DecodeBlockHeader(d)
	if d.err == nil {
		s.memo = seededMemo(start[:headerWireSize:headerWireSize])
	}
	s.Sig = append(flcrypto.Signature(nil), d.Bytes32()...)
	return s
}

// Verify checks the proposer's signature against the registry.
func (s *SignedHeader) Verify(reg *flcrypto.Registry) bool {
	return s.VerifyPooled(reg, nil)
}

// VerifyPooled is Verify through a verification pool's cache; WRB piggyback
// echoes, OBBC evidence responses, and recovery versions all re-present the
// same signed header, so consensus-path callers route through the shared
// pool. A nil pool verifies synchronously and uncached.
func (s *SignedHeader) VerifyPooled(reg *flcrypto.Registry, pool *flcrypto.VerifyPool) bool {
	return pool.VerifyNode(reg, s.Header.Proposer, s.HeaderBytes(), s.Sig)
}

// Sign produces a SignedHeader using the proposer's private key. The signed
// bytes are retained as the header's canonical encoding.
func (h BlockHeader) Sign(priv flcrypto.PrivateKey) (SignedHeader, error) {
	msg := h.Marshal()
	sig, err := priv.Sign(msg)
	if err != nil {
		return SignedHeader{}, fmt.Errorf("types: sign header: %w", err)
	}
	return SignedHeader{Header: h, Sig: sig, memo: seededMemo(msg)}, nil
}

// Body is a block's transaction batch, disseminated on the data path.
type Body struct {
	Txs []Transaction

	// memo caches the canonical body encoding and its hash — the body is
	// the largest repeatedly-encoded object on the hot path (broadcast
	// framing, body-hash checks, store appends, range sync all consume the
	// same bytes). Decode retains the wire slice; NewBlock seeds it from
	// the encoding used for BodyHash. Literal-constructed bodies carry a
	// nil memo and compute per call. Txs must not be mutated once the body
	// is hashed, marshaled, or decoded.
	memo *encMemo
}

// Encode appends the body to e.
func (b *Body) Encode(e *Encoder) {
	if m := b.memo; m != nil {
		e.Raw(m.bytes(b.encodeFresh))
		return
	}
	b.encodeInto(e)
}

// encodeInto appends the field-wise encoding, bypassing the memo.
func (b *Body) encodeInto(e *Encoder) {
	e.Uint32(uint32(len(b.Txs)))
	for i := range b.Txs {
		b.Txs[i].Encode(e)
	}
}

// encodeFresh computes the standalone encoding without consulting the memo.
func (b *Body) encodeFresh() []byte {
	e := NewEncoder(b.Size())
	b.encodeInto(e)
	return e.Bytes()
}

// DecodeBody reads a body from d. The body's wire bytes are retained as its
// canonical encoding, and transaction payloads alias the buffer — callers
// must treat the buffer as frozen once decoded (every transport and store
// path hands DecodeBody a buffer owned by the decoded message).
func DecodeBody(d *Decoder) Body {
	start := d.buf
	n := d.Uint32()
	if d.Err() != nil {
		return Body{}
	}
	if n > MaxFieldLen/8 {
		return Body{} // defensive: bogus count; Finish will flag trailing/truncation
	}
	body := Body{Txs: make([]Transaction, 0, n)}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		body.Txs = append(body.Txs, decodeTransactionShared(d))
	}
	if d.Err() == nil {
		consumed := len(start) - len(d.buf)
		body.memo = seededMemo(start[:consumed:consumed])
	}
	return body
}

// Size returns the encoded size of the body in bytes.
func (b *Body) Size() int {
	n := 4
	for i := range b.Txs {
		n += b.Txs[i].Size()
	}
	return n
}

// Marshal returns the standalone encoding of the body, computed at most
// once per constructed value. The returned slice must not be modified.
func (b *Body) Marshal() []byte {
	if m := b.memo; m != nil {
		return m.bytes(b.encodeFresh)
	}
	return b.encodeFresh()
}

// emptyBodyHash is the digest of the zero-transaction body — consulted on
// every body fetch of an empty block, so it is computed exactly once per
// process instead of re-marshaling an empty sentinel at each call site.
var (
	emptyBodyHashOnce sync.Once
	emptyBodyHashVal  flcrypto.Hash
)

// EmptyBodyHash returns the hash of the empty body (Body{}).
func EmptyBodyHash() flcrypto.Hash {
	emptyBodyHashOnce.Do(func() {
		var enc [4]byte // uint32(0) transaction count
		emptyBodyHashVal = flcrypto.Sum256(enc[:])
	})
	return emptyBodyHashVal
}

// Hash returns the digest a header's BodyHash must match.
func (b *Body) Hash() flcrypto.Hash {
	if len(b.Txs) == 0 {
		return EmptyBodyHash()
	}
	if m := b.memo; m != nil {
		return m.digest(b.encodeFresh)
	}
	e := GetEncoder(b.Size())
	b.encodeInto(e)
	sum := flcrypto.Sum256(e.Bytes())
	e.Release()
	return sum
}

// Block pairs a signed header with its body. Only fully assembled blocks are
// appended to the chain.
type Block struct {
	Signed SignedHeader
	Body   Body
}

// Header returns the block's header.
func (b *Block) Header() *BlockHeader { return &b.Signed.Header }

// Hash returns the block's identity (its header hash), memoized.
func (b *Block) Hash() flcrypto.Hash { return b.Signed.HeaderHash() }

// Encode appends the full block to e.
func (b *Block) Encode(e *Encoder) {
	b.Signed.Encode(e)
	b.Body.Encode(e)
}

// DecodeBlock reads a block from d.
func DecodeBlock(d *Decoder) Block {
	var b Block
	b.Signed = DecodeSignedHeader(d)
	b.Body = DecodeBody(d)
	return b
}

// ErrBodyMismatch reports a body whose hash does not match its header.
var ErrBodyMismatch = errors.New("types: body hash does not match header")

// CheckBody verifies internal consistency between header and body.
func (b *Block) CheckBody() error {
	if b.Body.Hash() != b.Signed.Header.BodyHash {
		return ErrBodyMismatch
	}
	if uint32(len(b.Body.Txs)) != b.Signed.Header.TxCount {
		return fmt.Errorf("types: header declares %d txs, body has %d",
			b.Signed.Header.TxCount, len(b.Body.Txs))
	}
	return nil
}

// NewBlock assembles and signs a block extending prev (identified by its
// header hash) with the given batch. The body encoding computed for
// BodyHash is retained, so disseminating and persisting the block never
// re-encodes the transaction list.
func NewBlock(instance uint32, round uint64, proposer flcrypto.NodeID,
	prevHash flcrypto.Hash, txs []Transaction, priv flcrypto.PrivateKey) (Block, error) {
	body := Body{Txs: txs}
	var bodyHash flcrypto.Hash
	if len(txs) == 0 {
		bodyHash = EmptyBodyHash()
	} else {
		enc := body.encodeFresh()
		bodyHash = flcrypto.Sum256(enc)
		body.memo = seededMemo(enc)
		body.memo.seedDigest(bodyHash)
	}
	hdr := BlockHeader{
		Instance: instance,
		Round:    round,
		Proposer: proposer,
		PrevHash: prevHash,
		BodyHash: bodyHash,
		TxCount:  uint32(len(txs)),
	}
	signed, err := hdr.Sign(priv)
	if err != nil {
		return Block{}, err
	}
	return Block{Signed: signed, Body: body}, nil
}

// GenesisHeader returns the implicit round-0 predecessor of instance's chain.
// It is identical at all correct nodes, so round-1 headers chain to a common
// root without any communication.
func GenesisHeader(instance uint32) BlockHeader {
	return BlockHeader{Instance: instance, Round: 0, Proposer: -1}
}

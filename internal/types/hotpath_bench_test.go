package types

import (
	"testing"

	"repro/internal/flcrypto"
)

// Hot-path micro-benchmarks behind BENCH_hotpath.json (see the repository
// root). They measure the per-call cost of the operations the consensus and
// data paths repeat most: hashing a header, marshaling a body, encoding a
// full block, and hashing a transaction. Before the encode-once/hash-once
// refactor every call re-encoded and re-hashed from scratch; after it, the
// canonical bytes and digests of decoded or freshly built values are
// computed once and shared.
//
// Run with: go test -run '^$' -bench 'BenchmarkHeaderHash|BenchmarkBodyMarshal|BenchmarkBlockEncode|BenchmarkTxID' -benchmem ./internal/types

func benchBlock(b *testing.B, txs, txSize int) Block {
	b.Helper()
	priv, err := flcrypto.GenerateKey(flcrypto.Ed25519, flcrypto.NewDeterministicReader("hotpath-bench"))
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]Transaction, txs)
	for i := range batch {
		batch[i] = Transaction{Client: uint64(i), Seq: uint64(i), Payload: make([]byte, txSize)}
	}
	blk, err := NewBlock(0, 1, 0, flcrypto.Hash{}, batch, priv)
	if err != nil {
		b.Fatal(err)
	}
	return blk
}

// BenchmarkHeaderHash measures repeated header hashing the way the chain,
// store replay, and equivocation checks perform it: the same signed header
// hashed over and over.
func BenchmarkHeaderHash(b *testing.B) {
	blk := benchBlock(b, 1, 64)
	b.ReportAllocs()
	b.ResetTimer()
	var h flcrypto.Hash
	for i := 0; i < b.N; i++ {
		h = blk.Hash()
	}
	_ = h
}

// BenchmarkHeaderHashFresh measures hashing a header that was never decoded
// or signed through the memoizing constructors — the literal-construction
// fallback path (pooled scratch, no memo).
func BenchmarkHeaderHashFresh(b *testing.B) {
	hdr := BlockHeader{Instance: 1, Round: 42, Proposer: 2, TxCount: 100}
	b.ReportAllocs()
	b.ResetTimer()
	var h flcrypto.Hash
	for i := 0; i < b.N; i++ {
		h = hdr.Hash()
	}
	_ = h
}

// BenchmarkBodyMarshal measures repeated body marshaling the way the data
// path consumes it: broadcast framing, body-hash checks, store appends, and
// range-sync all re-encode the same body.
func BenchmarkBodyMarshal(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		txs    int
		txSize int
	}{
		{"beta100/sigma512", 100, 512},
		{"beta1000/sigma512", 1000, 512},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			blk := benchBlock(b, cfg.txs, cfg.txSize)
			b.SetBytes(int64(blk.Body.Size()))
			b.ReportAllocs()
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				n = len(blk.Body.Marshal())
			}
			_ = n
		})
	}
}

// BenchmarkBodyHash measures repeated body hashing (CheckBody on every
// arriving copy of a block).
func BenchmarkBodyHash(b *testing.B) {
	blk := benchBlock(b, 100, 512)
	b.ReportAllocs()
	b.ResetTimer()
	var h flcrypto.Hash
	for i := 0; i < b.N; i++ {
		h = blk.Body.Hash()
	}
	_ = h
}

// BenchmarkBlockEncode measures encoding a full block into a caller-owned
// encoder — the store-append and range-sync serve path.
func BenchmarkBlockEncode(b *testing.B) {
	blk := benchBlock(b, 100, 512)
	size := 256 + blk.Body.Size()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(size)
		blk.Encode(e)
		if len(e.Bytes()) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkTxID measures transaction content hashing (client dedup paths).
func BenchmarkTxID(b *testing.B) {
	tx := Transaction{Client: 7, Seq: 9, Payload: make([]byte, 512)}
	b.ReportAllocs()
	b.ResetTimer()
	var h flcrypto.Hash
	for i := 0; i < b.N; i++ {
		h = tx.ID()
	}
	_ = h
}

// BenchmarkDecodeBlock measures the decode path (arrival of a block on the
// range-sync or store-replay path), including whatever the decoder retains
// for later re-encoding.
func BenchmarkDecodeBlock(b *testing.B) {
	blk := benchBlock(b, 100, 512)
	e := NewEncoder(256 + blk.Body.Size())
	blk.Encode(e)
	wire := e.Bytes()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(wire)
		got := DecodeBlock(d)
		if d.Finish() != nil || got.Signed.Header.Round != 1 {
			b.Fatal("bad decode")
		}
	}
}

package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

func testKeySet(t testing.TB, n int) *flcrypto.KeySet {
	t.Helper()
	return flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519)
}

// buildChain appends `rounds` blocks proposed round-robin by n nodes.
func buildChain(t *testing.T, ks *flcrypto.KeySet, instance uint32, rounds int) *Chain {
	t.Helper()
	c := NewChain(instance)
	n := ks.Registry.N()
	for r := 1; r <= rounds; r++ {
		proposer := (r - 1) % n
		blk, err := types.NewBlock(instance, uint64(r), flcrypto.NodeID(proposer),
			c.TipHash(), []types.Transaction{{Client: uint64(r), Seq: 1, Payload: []byte{byte(r)}}},
			ks.Privs[proposer])
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Append(blk); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestChainAppendAndAudit(t *testing.T) {
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 10)
	if c.Tip() != 10 {
		t.Fatalf("tip = %d", c.Tip())
	}
	if err := c.Audit(ks.Registry); err != nil {
		t.Fatal(err)
	}
}

func TestChainAppendRejectsBadLink(t *testing.T) {
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 3)
	// Wrong round.
	blk, _ := types.NewBlock(0, 7, 0, c.TipHash(), nil, ks.Privs[0])
	if err := c.Append(blk); err == nil {
		t.Fatal("wrong-round block accepted")
	}
	// Wrong prev hash.
	blk, _ = types.NewBlock(0, 4, 0, flcrypto.Sum256([]byte("bogus")), nil, ks.Privs[0])
	if err := c.Append(blk); err == nil {
		t.Fatal("unlinked block accepted")
	}
	// Wrong instance.
	blk, _ = types.NewBlock(9, 4, 0, c.TipHash(), nil, ks.Privs[0])
	if err := c.Append(blk); err == nil {
		t.Fatal("wrong-instance block accepted")
	}
}

func TestChainDefiniteMonotone(t *testing.T) {
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 10)
	newly := c.MarkDefinite(4)
	if len(newly) != 4 {
		t.Fatalf("newly definite = %v", newly)
	}
	if got := c.MarkDefinite(2); got != nil {
		t.Fatalf("definite moved backwards: %v", got)
	}
	if c.Definite() != 4 {
		t.Fatalf("definite = %d", c.Definite())
	}
	// Beyond the tip clamps.
	c.MarkDefinite(99)
	if c.Definite() != 10 {
		t.Fatalf("definite clamped to %d, want 10", c.Definite())
	}
}

func TestChainReplaceSuffix(t *testing.T) {
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 6)
	c.MarkDefinite(2)

	// Build an alternative suffix for rounds 4..7 extending round 3.
	anchor, _ := c.HeaderAt(3)
	prev := anchor.Hash()
	var alt []types.Block
	for r := uint64(4); r <= 7; r++ {
		proposer := int(r+1) % 4
		blk, err := types.NewBlock(0, r, flcrypto.NodeID(proposer), prev,
			[]types.Transaction{{Client: 99, Seq: r}}, ks.Privs[proposer])
		if err != nil {
			t.Fatal(err)
		}
		alt = append(alt, blk)
		prev = blk.Hash()
	}
	if err := c.ReplaceSuffix(4, alt); err != nil {
		t.Fatal(err)
	}
	if c.Tip() != 7 {
		t.Fatalf("tip after recovery = %d", c.Tip())
	}
	hdr, _ := c.HeaderAt(5)
	if hdr.Proposer != flcrypto.NodeID(6%4) {
		t.Fatal("suffix not replaced")
	}
	// Replacing definite rounds must be refused.
	if err := c.ReplaceSuffix(2, nil); err == nil {
		t.Fatal("definite round replaced")
	}
	// Non-chaining versions must be refused.
	bad, _ := types.NewBlock(0, 8, 1, flcrypto.Sum256([]byte("x")), nil, ks.Privs[1])
	if err := c.ReplaceSuffix(8, []types.Block{bad}); err == nil {
		t.Fatal("non-chaining suffix accepted")
	}
}

func TestChainAuditCatchesProposerRepetition(t *testing.T) {
	ks := testKeySet(t, 4) // f = 1: adjacent blocks must differ in proposer
	c := NewChain(0)
	for r := uint64(1); r <= 2; r++ {
		blk, err := types.NewBlock(0, r, 2, c.TipHash(), nil, ks.Privs[2])
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Append(blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Audit(ks.Registry); err == nil {
		t.Fatal("audit missed proposer repetition within f+1 window")
	}
}

func TestProofVerify(t *testing.T) {
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 3)
	prev, _ := c.SignedAt(2)

	// A header at round 3 that does not extend round 2: valid proof.
	evil := types.BlockHeader{Instance: 0, Round: 3, Proposer: 2,
		PrevHash: flcrypto.Sum256([]byte("fork")), BodyHash: (&types.Body{}).Hash()}
	evilSigned, err := evil.Sign(ks.Privs[2])
	if err != nil {
		t.Fatal(err)
	}
	proof := Proof{Curr: evilSigned, Prev: prev}
	if err := proof.Verify(ks.Registry); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if proof.Round() != 3 {
		t.Fatalf("proof round = %d", proof.Round())
	}

	// The real round-3 header links fine: no proof.
	good, _ := c.SignedAt(3)
	noProof := Proof{Curr: good, Prev: prev}
	if err := noProof.Verify(ks.Registry); err == nil {
		t.Fatal("consistent pair accepted as proof")
	}

	// Forged signature: rejected.
	forged := proof
	forged.Curr.Sig = append(flcrypto.Signature(nil), forged.Curr.Sig...)
	forged.Curr.Sig[0] ^= 1
	if err := forged.Verify(ks.Registry); err == nil {
		t.Fatal("forged proof accepted")
	}

	// Non-consecutive rounds: rejected.
	prev1, _ := c.SignedAt(1)
	gap := Proof{Curr: evilSigned, Prev: prev1}
	if err := gap.Verify(ks.Registry); err == nil {
		t.Fatal("non-consecutive proof accepted")
	}
}

func TestProofRoundTrip(t *testing.T) {
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 3)
	prev, _ := c.SignedAt(2)
	evil := types.BlockHeader{Instance: 0, Round: 3, Proposer: 2,
		PrevHash: flcrypto.Sum256([]byte("fork"))}
	evilSigned, _ := evil.Sign(ks.Privs[2])
	proof := Proof{Curr: evilSigned, Prev: prev}
	d := types.NewDecoder(proof.Marshal())
	got := DecodeProof(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(ks.Registry); err != nil {
		t.Fatalf("round-tripped proof invalid: %v", err)
	}
}

func TestScheduleRoundRobin(t *testing.T) {
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 5) // proposers 0,1,2,3,0
	s := newSchedule(4, 1, 0)
	// Round 6 attempt 0: next after round 5's proposer (node 0) is node 1.
	p, skipped := s.proposerFor(c, 6, 0)
	if p != 1 || skipped {
		t.Fatalf("proposer = %d (skipped=%v), want 1", p, skipped)
	}
	// Attempt 1 rotates once more.
	p, _ = s.proposerFor(c, 6, 1)
	if p != 2 {
		t.Fatalf("attempt-1 proposer = %d, want 2", p)
	}
}

func TestScheduleSkipsRecentProposer(t *testing.T) {
	// f=1, n=4: the proposer of round r−1 cannot propose round r. Walk far
	// enough attempts to force a wrap onto the skip set.
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 4) // round 4 proposed by node 3
	s := newSchedule(4, 1, 0)
	for a := 0; a < 8; a++ {
		p, _ := s.proposerFor(c, 5, a)
		if p == 3 {
			t.Fatalf("attempt %d chose round 4's proposer again", a)
		}
	}
}

func TestScheduleDeterministicAcrossCalls(t *testing.T) {
	ks := testKeySet(t, 7)
	c := buildChain(t, ks, 0, 9)
	s1 := newSchedule(7, 2, 5)
	s2 := newSchedule(7, 2, 5)
	f := func(round uint16, attempt uint8) bool {
		r := uint64(round%9) + 1
		a := int(attempt % 16)
		p1, _ := s1.proposerFor(c, r, a)
		p2, _ := s2.proposerFor(c, r, a)
		return p1 == p2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleReshuffleChangesOrder(t *testing.T) {
	ks := testKeySet(t, 10)
	c := buildChain(t, ks, 0, 40)
	s := newSchedule(10, 3, 10)
	// Epoch 3 (rounds 31-40) must generally differ from the identity
	// rotation used in epoch 0; compare the order arrays directly.
	o0 := append([]flcrypto.NodeID(nil), s.orderFor(c, 5)...)
	o3 := s.orderFor(c, 35)
	same := true
	for i := range o0 {
		if o0[i] != o3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reshuffle produced the identity permutation (astronomically unlikely)")
	}
}

func TestFailureDetector(t *testing.T) {
	fd := newFailureDetector(1, 2)
	if fd.isSuspected(3) {
		t.Fatal("fresh FD suspects node")
	}
	fd.onTimeout(3)
	if fd.isSuspected(3) {
		t.Fatal("suspected after a single strike (threshold 2)")
	}
	fd.onTimeout(3)
	if !fd.isSuspected(3) {
		t.Fatal("not suspected after reaching threshold")
	}
	// Cap at f=1 suspects.
	fd.onTimeout(2)
	fd.onTimeout(2)
	if fd.isSuspected(2) {
		t.Fatal("FD exceeded its f-suspect budget")
	}
	// Delivery clears.
	fd.onDelivered(3)
	if fd.isSuspected(3) {
		t.Fatal("suspicion survived delivery")
	}
	// Invalidation clears everything.
	fd.onTimeout(1)
	fd.onTimeout(1)
	fd.invalidate()
	if fd.isSuspected(1) {
		t.Fatal("suspicion survived invalidation")
	}
}

func TestVersionMsgRoundTrip(t *testing.T) {
	ks := testKeySet(t, 4)
	c := buildChain(t, ks, 0, 5)
	v := versionMsg{Instance: 0, RecRound: 5, From: 2, Blocks: c.Suffix(3)}
	sig, err := ks.Privs[2].Sign(versionSigBody(v.Instance, v.RecRound, v.From, v.Blocks))
	if err != nil {
		t.Fatal(err)
	}
	v.Sig = sig
	e := types.NewEncoder(1024)
	v.encode(e)
	if e.Bytes()[0] != RecoveryTag {
		t.Fatal("version not tagged")
	}
	d := types.NewDecoder(e.Bytes()[1:])
	got := decodeVersionMsg(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.RecRound != 5 || got.From != 2 || len(got.Blocks) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !ks.Registry.Verify(got.From, versionSigBody(got.Instance, got.RecRound, got.From, got.Blocks), got.Sig) {
		t.Fatal("signature broken by round trip")
	}
}

func TestScheduleConvictExcludes(t *testing.T) {
	ks := testKeySet(t, 7) // f = 2
	c := buildChain(t, ks, 0, 9)
	s := newSchedule(7, 2, 0)
	if !s.convict(3, 12) {
		t.Fatal("first conviction rejected")
	}
	if s.convict(3, 15) {
		t.Fatal("duplicate conviction accepted")
	}
	// Before the effective round node 3 may still propose.
	if s.excluded(3, 11) {
		t.Fatal("exclusion applied before the effective round")
	}
	if !s.excluded(3, 12) || !s.excluded(3, 100) {
		t.Fatal("exclusion not applied from the effective round on")
	}
	// proposerFor never returns a convicted node at excluded rounds. Rounds
	// in buildChain only reach 9, so extend judgment to a later round by
	// consulting many attempts of round 9 (not excluded) vs... the map is
	// keyed by round, so test attempts directly at an excluded round: use
	// the chain's round 9 but an eff of 9.
	s2 := newSchedule(7, 2, 0)
	s2.convict(1, 9)
	for a := 0; a < 12; a++ {
		p, _ := s2.proposerFor(c, 9, a)
		if p == 1 {
			t.Fatalf("attempt %d chose the excluded node", a)
		}
	}
}

func TestScheduleConvictCapAtF(t *testing.T) {
	s := newSchedule(7, 2, 0) // f = 2
	if !s.convict(1, 5) || !s.convict(2, 5) {
		t.Fatal("convictions within the f budget rejected")
	}
	if s.convict(3, 5) {
		t.Fatal("conviction beyond the f budget accepted")
	}
	if s.excluded(3, 10) {
		t.Fatal("over-budget conviction took effect")
	}
	conv := s.convictions()
	if len(conv) != 2 || conv[1] != 5 || conv[2] != 5 {
		t.Fatalf("convictions snapshot = %v", conv)
	}
}

func TestScheduleExclusionKeepsLiveness(t *testing.T) {
	// With f convicted nodes and the last-f-proposers skip set active, the
	// walk must still terminate and yield f+1 distinct eligible proposers.
	ks := testKeySet(t, 7)
	c := buildChain(t, ks, 0, 9)
	s := newSchedule(7, 2, 0)
	s.convict(5, 1)
	s.convict(6, 1)
	seen := make(map[flcrypto.NodeID]bool)
	for a := 0; a < 20; a++ {
		p, _ := s.proposerFor(c, 10, a)
		if p == 5 || p == 6 {
			t.Fatalf("excluded node proposed at attempt %d", a)
		}
		seen[p] = true
	}
	if len(seen) < 3 { // n−2f = 3 for n=7, f=2
		t.Fatalf("only %d eligible proposers seen, want ≥ 3", len(seen))
	}
}

func TestBuildBlockMemoizesPerSlot(t *testing.T) {
	// A correct node signs each (round, parent) slot at most once: redoing a
	// slot must re-propose the identical block, never a fresh batch — the
	// property that makes the equivocation conviction predicate sound.
	ks := testKeySet(t, 4)
	in := &Instance{
		cfg: Config{Instance: 0, Registry: ks.Registry, Priv: ks.Privs[0], BatchSize: 4,
			Pool: &countingSource{}},
		id: 0, n: 4, f: 1,
	}
	prev := flcrypto.Sum256([]byte("parent"))
	a, err := in.buildBlock(5, prev)
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.buildBlock(5, prev)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("same slot produced two different signed blocks")
	}
	if got := in.metrics.SignOps.Load(); got != 1 {
		t.Fatalf("slot signed %d times, want 1", got)
	}
	// A different parent is a different slot.
	c, err := in.buildBlock(5, flcrypto.Sum256([]byte("other-parent")))
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash() == a.Hash() {
		t.Fatal("different parents yielded the same block (suspicious)")
	}
	// Pruning below the definite boundary clears the cache.
	in.pruneProposals(5)
	in.propMu.Lock()
	size := len(in.propCache)
	in.propMu.Unlock()
	if size != 0 {
		t.Fatalf("cache holds %d pruned slots", size)
	}
}

// countingSource hands out distinct transactions so repeated builds would
// differ if memoization broke.
type countingSource struct {
	mu sync.Mutex
	n  uint64
}

func (s *countingSource) NextBatch(max int) []types.Transaction {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]types.Transaction, max)
	for i := range out {
		s.n++
		out[i] = types.Transaction{Client: 1, Seq: s.n, Payload: []byte{byte(s.n)}}
	}
	return out
}

func (s *countingSource) MarkCommitted([]types.Transaction) {}

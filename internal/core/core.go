package core

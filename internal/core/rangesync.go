package core

import (
	"sync"
	"time"

	"repro/internal/flcrypto"
)

// rangeRetryTimeout is the per-stream patience: if an active range request
// produces no batch for this long, the syncer retargets to the next peer.
const rangeRetryTimeout = 250 * time.Millisecond

// rangeSyncer drives streaming catch-up for one worker instance: when the
// node learns it is at least one batch of rounds behind the cluster's
// definite frontier (a restart, a recovery, or a slow worker), it abandons
// the one-broadcast-per-round pull and instead asks a single chosen peer for
// the whole missing range. The peer streams bounded, size-capped batches;
// arriving blocks are verified through the shared verify pool and buffered
// for the round loop to adopt as contiguous segments. A stalled stream
// retargets to the next peer; a finished stream resumes from the new
// frontier until the node has caught up.
type rangeSyncer struct {
	dp      *dataPath
	self    flcrypto.NodeID
	n       int
	batch   int
	stop    <-chan struct{}
	metrics *Metrics

	mu      sync.Mutex
	running bool
	// target is the exclusive upper bound of rounds believed to exist as
	// definite blocks somewhere in the cluster. It only grows; when it
	// turns out to be unreachable (every peer stalls), the loop exits and
	// the per-round path takes over.
	target uint64
	// reqID numbers requests; streamID/streamDone track the active stream.
	reqID      uint64
	streamID   uint64
	streamDone bool
	// progress is closed (and replaced) whenever a batch arrives.
	progress chan struct{}
	// firstAvailMax is the highest first-available round any range server
	// reported — the strandedness evidence: a server whose first retained
	// round is above our frontier has compacted away the rounds we need,
	// and if a whole peer cycle stalls that way, only snapshot transfer can
	// help (see trySnapshot).
	firstAvailMax uint64
}

func newRangeSyncer(dp *dataPath, self flcrypto.NodeID, n int, stop <-chan struct{}, metrics *Metrics) *rangeSyncer {
	return &rangeSyncer{
		dp:       dp,
		self:     self,
		n:        n,
		batch:    dp.opts.catchUpBatch,
		stop:     stop,
		metrics:  metrics,
		progress: make(chan struct{}),
	}
}

// active reports whether a sync loop is running (the round loop suppresses
// its per-round chase broadcasts while it is).
func (rs *rangeSyncer) active() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.running
}

// noteBehind records evidence that definite rounds through `tip` exist
// elsewhere, and starts the sync loop once the gap reaches one batch.
func (rs *rangeSyncer) noteBehind(tip uint64) {
	if tip == 0 {
		return
	}
	rs.mu.Lock()
	if tip+1 > rs.target {
		rs.target = tip + 1
	}
	start := false
	if !rs.running {
		local := rs.dp.chain.Tip()
		if rs.target > local+1 && rs.target-local-1 >= uint64(rs.batch) {
			rs.running = true
			start = true
		}
	}
	rs.mu.Unlock()
	if start {
		go rs.run()
	}
}

// onBatch ingests one range-response batch's bookkeeping (the blocks
// themselves were already verified and buffered by the data path).
func (rs *rangeSyncer) onBatch(reqID, serverDef, firstAvail uint64, more bool, stored int) {
	rs.mu.Lock()
	if serverDef+1 > rs.target {
		rs.target = serverDef + 1
	}
	if reqID == rs.streamID && !more {
		rs.streamDone = true
	}
	if firstAvail > rs.firstAvailMax {
		// A peer that compacted past our frontier sends no useful blocks;
		// the stall path rotates away from it, and this evidence is what
		// later distinguishes "stranded below everyone's retained history"
		// (→ snapshot transfer) from an ordinary dead-peer stall.
		rs.firstAvailMax = firstAvail
	}
	close(rs.progress)
	rs.progress = make(chan struct{})
	rs.mu.Unlock()
}

// trySnapshot switches to snapshot-transfer mode when the stall is explained
// by strandedness: some server's first available round lies beyond the round
// we need, i.e. at least one peer — and, given the full-cycle stall, in
// effect every peer — has compacted our next round away. Returns true once a
// checkpoint was installed (the frontier jumped past the hole).
func (rs *rangeSyncer) trySnapshot(next uint64) bool {
	ss := rs.dp.snaps
	if ss == nil {
		return false
	}
	rs.mu.Lock()
	evidence := rs.firstAvailMax
	rs.mu.Unlock()
	if evidence <= next {
		return false
	}
	return ss.transfer()
}

// nextPeer cycles through the cluster, skipping self.
func (rs *rangeSyncer) nextPeer(p flcrypto.NodeID) flcrypto.NodeID {
	for {
		p = flcrypto.NodeID((int(p) + 1) % rs.n)
		if p != rs.self {
			return p
		}
	}
}

// run is the sync loop. It exits when the frontier reaches the target or
// when a full cycle of peers yields no progress.
func (rs *rangeSyncer) run() {
	defer func() {
		rs.mu.Lock()
		rs.running = false
		rs.mu.Unlock()
	}()
	peer := rs.nextPeer(rs.self)
	stalls := 0
	for {
		select {
		case <-rs.stop:
			return
		default:
		}
		next := rs.dp.frontier()
		rs.mu.Lock()
		tgt := rs.target
		rs.mu.Unlock()
		if next >= tgt {
			return // caught up (the round loop adopts the buffered tail)
		}
		if stalls >= rs.n-1 {
			// A full peer cycle served nothing. If servers reported first
			// available rounds above our frontier, the rounds we need are
			// compacted away cluster-wide — the stranded case — and the only
			// way back is a snapshot transfer; afterwards the loop resumes
			// range-syncing the retained tail above the installed base.
			if rs.trySnapshot(next) {
				stalls = 0
				continue
			}
			return // no peer can serve the remainder; per-round path takes over
		}
		// Flow control: wait for the round loop to drain the buffered
		// backlog before requesting further ranges.
		if uint64(rs.dp.fetchedLen()) >= rs.dp.fetchWindow() {
			select {
			case <-rs.dp.updateChan():
			case <-time.After(rangeRetryTimeout):
			case <-rs.stop:
				return
			}
			continue
		}

		rs.mu.Lock()
		rs.reqID++
		id := rs.reqID
		rs.streamID = id
		rs.streamDone = false
		ch := rs.progress
		rs.mu.Unlock()
		// Clamp the request to what the fetched buffer can admit: the
		// server would happily stream 8×batch blocks, but storeFetched
		// only accepts fetchWindow rounds above the tip, and everything
		// past that would be verified and then dropped — wasted bandwidth
		// and duplicate pool work. The resume loop covers the remainder.
		reqTo := next + rs.dp.fetchWindow() + 1
		if tgt < reqTo {
			reqTo = tgt
		}
		rs.metrics.CatchUpRangeReqs.Add(1)
		rs.dp.sendRangeReq(peer, id, next, reqTo)

		// Consume the stream: each batch renews the patience timer.
		streamOK := true
		for {
			timer := time.NewTimer(rangeRetryTimeout)
			select {
			case <-rs.stop:
				timer.Stop()
				return
			case <-ch:
				timer.Stop()
				rs.mu.Lock()
				done := rs.streamDone
				ch = rs.progress
				rs.mu.Unlock()
				if !done {
					continue
				}
			case <-timer.C:
				streamOK = false
			}
			break
		}
		if rs.dp.frontier() > next {
			stalls = 0
			if streamOK {
				continue // productive peer: resume from the new frontier
			}
		} else {
			stalls++
		}
		peer = rs.nextPeer(peer)
	}
}

package core

import (
	"testing"

	"repro/internal/flcrypto"
	"repro/internal/obbc"
	"repro/internal/rbroadcast"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wrb"
)

// newBareInstance builds an Instance with live (but unstarted) services, for
// unit-testing internal recovery logic against a pre-built chain.
func newBareInstance(t *testing.T, ks *flcrypto.KeySet, chainRounds int) *Instance {
	t.Helper()
	net := transport.NewChanNetwork(transport.ChanConfig{N: ks.Registry.N()})
	t.Cleanup(net.Close)
	mux := transport.NewMux(net.Endpoint(0))
	w := wrb.New(wrb.Config{Mux: mux, Proto: 1, Registry: ks.Registry})
	o := obbc.New(obbc.Config{Mux: mux, Proto: 2, Registry: ks.Registry, Priv: ks.Privs[0]})
	w.BindOBBC(o)
	in := New(Config{
		Mux:       mux,
		Registry:  ks.Registry,
		Priv:      ks.Privs[0],
		WRB:       w,
		OBBC:      o,
		DataProto: 3,
		SubmitAB:  func([]byte) error { return nil },
	})
	in.BindRB(rbroadcast.New(mux, 4, func(flcrypto.NodeID, uint64, []byte) {}))
	// Pre-populate the chain.
	src := buildChain(t, ks, 0, chainRounds)
	for r := uint64(1); r <= src.Tip(); r++ {
		blk, _ := src.BlockAt(r)
		if err := in.chain.Append(blk); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

// makeVersion builds a version whose blocks extend the instance's block at
// round start−1 with fresh content.
func makeVersion(t *testing.T, ks *flcrypto.KeySet, in *Instance, recRound uint64, length int) versionMsg {
	t.Helper()
	start := in.rec.startRound(recRound)
	var prev flcrypto.Hash
	if start == 1 {
		prev = types.GenesisHeader(0).Hash()
	} else {
		hdr, ok := in.chain.HeaderAt(start - 1)
		if !ok {
			t.Fatalf("missing anchor at %d", start-1)
		}
		prev = hdr.Hash()
	}
	n := ks.Registry.N()
	var blocks []types.Block
	for i := 0; i < length; i++ {
		round := start + uint64(i)
		proposer := int(round+1) % n
		blk, err := types.NewBlock(0, round, flcrypto.NodeID(proposer), prev,
			[]types.Transaction{{Client: 77, Seq: round}}, ks.Privs[proposer])
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk)
		prev = blk.Hash()
	}
	return versionMsg{Instance: 0, RecRound: recRound, From: 1, Blocks: blocks}
}

func TestValidVersionAcceptsGoodAndEmpty(t *testing.T) {
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	const recRound = 6 // f=1 => versions start at round 4
	v := makeVersion(t, ks, in, recRound, 3)
	if !in.rec.validVersion(&v, recRound) {
		t.Fatal("well-formed version rejected")
	}
	empty := versionMsg{Instance: 0, RecRound: recRound, From: 2}
	if !in.rec.validVersion(&empty, recRound) {
		t.Fatal("empty version rejected (Algorithm 3 line 4 allows it)")
	}
}

func TestValidVersionRejectsWrongStart(t *testing.T) {
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	v := makeVersion(t, ks, in, 6, 3)
	v.Blocks = v.Blocks[1:] // now starts at round 5 instead of 4
	if in.rec.validVersion(&v, 6) {
		t.Fatal("version with wrong start round accepted")
	}
}

func TestValidVersionRejectsBrokenChain(t *testing.T) {
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	v := makeVersion(t, ks, in, 6, 3)
	// Re-sign block 1 with a different prev hash: the internal link breaks.
	hdr := v.Blocks[1].Signed.Header
	hdr.PrevHash = flcrypto.Sum256([]byte("severed"))
	signed, err := hdr.Sign(ks.Privs[int(hdr.Proposer)])
	if err != nil {
		t.Fatal(err)
	}
	v.Blocks[1].Signed = signed
	if in.rec.validVersion(&v, 6) {
		t.Fatal("version with broken hash chain accepted")
	}
}

func TestValidVersionRejectsBadSignature(t *testing.T) {
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	v := makeVersion(t, ks, in, 6, 3)
	v.Blocks[2].Signed.Sig = append(flcrypto.Signature(nil), v.Blocks[2].Signed.Sig...)
	v.Blocks[2].Signed.Sig[0] ^= 1
	if in.rec.validVersion(&v, 6) {
		t.Fatal("version with forged block signature accepted")
	}
}

func TestValidVersionRejectsProposerRepetition(t *testing.T) {
	// Lemma 5.3.2's diversity rule: two consecutive blocks (f=1) by the
	// same proposer invalidate a version even if hashes chain.
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	start := in.rec.startRound(6)
	anchor, _ := in.chain.HeaderAt(start - 1)
	prev := anchor.Hash()
	var blocks []types.Block
	for i := 0; i < 2; i++ {
		blk, err := types.NewBlock(0, start+uint64(i), 2, prev, nil, ks.Privs[2])
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk)
		prev = blk.Hash()
	}
	v := versionMsg{Instance: 0, RecRound: 6, From: 1, Blocks: blocks}
	if in.rec.validVersion(&v, 6) {
		t.Fatal("version with repeated proposer within f+1 window accepted")
	}
}

func TestValidVersionRejectsBodyMismatch(t *testing.T) {
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	v := makeVersion(t, ks, in, 6, 2)
	v.Blocks[0].Body.Txs = append(v.Blocks[0].Body.Txs, types.Transaction{Client: 666})
	if in.rec.validVersion(&v, 6) {
		t.Fatal("version with body/header mismatch accepted")
	}
}

func TestValidVersionRejectsWrongInstance(t *testing.T) {
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	start := in.rec.startRound(6)
	anchor, _ := in.chain.HeaderAt(start - 1)
	blk, err := types.NewBlock(9 /* other worker */, start, 1, anchor.Hash(), nil, ks.Privs[1])
	if err != nil {
		t.Fatal(err)
	}
	v := versionMsg{Instance: 0, RecRound: 6, From: 1, Blocks: []types.Block{blk}}
	if in.rec.validVersion(&v, 6) {
		t.Fatal("version holding another instance's block accepted")
	}
}

func TestRecoveryHandleOrderedFiltersAndDedupes(t *testing.T) {
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	v := makeVersion(t, ks, in, 6, 2)
	sig, err := ks.Privs[1].Sign(versionSigBody(v.Instance, v.RecRound, v.From, v.Blocks))
	if err != nil {
		t.Fatal(err)
	}
	v.Sig = sig
	e := types.NewEncoder(0)
	v.encode(e)
	req := e.Bytes()

	if !in.HandleOrdered(req) {
		t.Fatal("valid version not consumed")
	}
	in.HandleOrdered(req) // duplicate sender: ignored
	in.rec.mu.Lock()
	got := len(in.rec.state(6).versions)
	in.rec.mu.Unlock()
	if got != 1 {
		t.Fatalf("stored %d versions, want 1 (dedup by sender)", got)
	}

	// A version with a forged sender signature never enters the state.
	forged := v
	forged.From = 2 // signature was made by node 1
	e2 := types.NewEncoder(0)
	forged.encode(e2)
	in.HandleOrdered(e2.Bytes())
	in.rec.mu.Lock()
	got = len(in.rec.state(6).versions)
	in.rec.mu.Unlock()
	if got != 1 {
		t.Fatal("forged-attribution version accepted")
	}

	// Unrelated tags are left for other consumers.
	if in.HandleOrdered([]byte{0x01, 1, 2, 3}) {
		t.Fatal("BBC-tagged request consumed by recovery")
	}
	if in.HandleOrdered(nil) {
		t.Fatal("empty request consumed")
	}
}

func TestVersionTip(t *testing.T) {
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	v := makeVersion(t, ks, in, 6, 3)
	if v.tip() != in.rec.startRound(6)+2 {
		t.Fatalf("tip = %d", v.tip())
	}
	empty := versionMsg{}
	if empty.tip() != 0 {
		t.Fatal("empty version tip should be 0")
	}
}

// TestDecodeVersionMsgOversizedCountPoisons is the regression test for the
// oversized-count handling: a block count beyond the 1<<16 bound must
// poison the decoder so callers reject the frame even when the remaining
// bytes happen to line up with a clean end-of-buffer.
func TestDecodeVersionMsgOversizedCountPoisons(t *testing.T) {
	e := types.NewEncoder(64)
	e.Uint32(0)         // instance
	e.Uint64(5)         // recovery round
	e.Int64(1)          // from
	e.Uint32(1<<16 + 1) // block count beyond the bound — and nothing after
	d := types.NewDecoder(e.Bytes())
	decodeVersionMsg(d)
	if d.Finish() == nil {
		t.Fatal("oversized block count must poison the decoder")
	}

	// And HandleOrdered must reject the whole frame.
	ks := testKeySet(t, 4)
	in := newBareInstance(t, ks, 6)
	full := append([]byte{RecoveryTag}, e.Bytes()...)
	in.HandleOrdered(full)
	in.rec.mu.Lock()
	got := len(in.rec.state(5).versions)
	in.rec.mu.Unlock()
	if got != 0 {
		t.Fatal("oversized version accepted into recovery state")
	}
}

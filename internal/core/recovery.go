package core

import (
	"sync"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// RecoveryTag prefixes recovery versions in the shared atomic-broadcast
// stream (obbc.BBCTag is 0x01).
const RecoveryTag byte = 0x02

// versionWaitTimeout bounds a recovery's wait for n−f versions: peers serve
// versions even for recoveries they already completed, so a longer
// starvation means they are partitioned away or down, and the abandoned
// recovery (safe pre-adoption) is retried by the round loop's next panic.
const versionWaitTimeout = 10 * time.Second

// versionMsg is one node's proposed chain version in a recovery (Algorithm 3
// line 6): the last f+1 blocks in dispute followed by everything newer the
// node knows, or an empty version if the node is behind (line 4). It is
// signed by its sender so the atomic-broadcast layer cannot be used to forge
// attribution.
type versionMsg struct {
	Instance uint32
	RecRound uint64
	From     flcrypto.NodeID
	Blocks   []types.Block
	Sig      flcrypto.Signature
}

func versionSigBody(instance uint32, recRound uint64, from flcrypto.NodeID, blocks []types.Block) []byte {
	h := flcrypto.NewHasher()
	h.Write([]byte("fireledger/recovery"))
	h.WriteUint64(uint64(instance))
	h.WriteUint64(recRound)
	h.WriteUint64(uint64(int64(from)))
	for i := range blocks {
		bh := blocks[i].Hash()
		h.Write(bh[:])
	}
	d := h.Sum()
	return d[:]
}

func (v *versionMsg) encode(e *types.Encoder) {
	e.Uint8(RecoveryTag)
	e.Uint32(v.Instance)
	e.Uint64(v.RecRound)
	e.Int64(int64(v.From))
	e.Uint32(uint32(len(v.Blocks)))
	for i := range v.Blocks {
		v.Blocks[i].Encode(e)
	}
	e.Bytes32(v.Sig)
}

func decodeVersionMsg(d *types.Decoder) versionMsg {
	var v versionMsg
	v.Instance = d.Uint32()
	v.RecRound = d.Uint64()
	v.From = flcrypto.NodeID(d.Int64())
	n := d.Uint32()
	if d.Err() != nil {
		return v
	}
	if n > 1<<16 {
		// Poison the decoder: without an error a partially decoded message
		// would pass the caller's Finish check whenever the trailing bytes
		// happened to line up, and the oversized count itself is a protocol
		// violation that must reject the whole frame.
		d.Fail(types.ErrTooLarge)
		return v
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		v.Blocks = append(v.Blocks, types.DecodeBlock(d))
	}
	v.Sig = append(flcrypto.Signature(nil), d.Bytes32()...)
	return v
}

// tip returns the version's last round (0 for an empty version).
func (v *versionMsg) tip() uint64 {
	if len(v.Blocks) == 0 {
		return 0
	}
	return v.Blocks[len(v.Blocks)-1].Header().Round
}

type recState struct {
	versions []versionMsg // distinct senders, atomic order
	senders  map[flcrypto.NodeID]bool
	update   chan struct{}
	done     bool
}

// recoveryTracker owns Algorithm 3 for one instance.
type recoveryTracker struct {
	in *Instance

	mu      sync.Mutex
	states  map[uint64]*recState
	handled uint64 // highest recovery round completed
	// servedLate dedups version service for proofs at or below handled
	// (see runRecovery's late-proof path).
	servedLate map[uint64]bool
}

func newRecoveryTracker(in *Instance) *recoveryTracker {
	return &recoveryTracker{in: in, states: make(map[uint64]*recState)}
}

func (rt *recoveryTracker) state(r uint64) *recState {
	st := rt.states[r]
	if st == nil {
		st = &recState{senders: make(map[flcrypto.NodeID]bool), update: make(chan struct{})}
		rt.states[r] = st
	}
	return st
}

// HandleOrdered ingests one atomic-broadcast request. It returns true when
// the request was a recovery version for this instance. Must be invoked in
// the agreed total order at every node — the order breaks the Algorithm 3
// line 16 tie ("the first received among...") identically everywhere.
func (rt *recoveryTracker) HandleOrdered(req []byte) bool {
	if len(req) == 0 || req[0] != RecoveryTag {
		return false
	}
	d := types.NewDecoder(req[1:])
	v := decodeVersionMsg(d)
	if d.Finish() != nil {
		return false
	}
	if v.Instance != rt.in.cfg.Instance {
		return false
	}
	if int(v.From) < 0 || int(v.From) >= rt.in.n {
		return true
	}
	if !rt.in.cfg.VerifyPool.VerifyNode(rt.in.cfg.Registry, v.From, versionSigBody(v.Instance, v.RecRound, v.From, v.Blocks), v.Sig) {
		return true
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := rt.state(v.RecRound)
	if st.done || st.senders[v.From] {
		return true
	}
	st.senders[v.From] = true
	st.versions = append(st.versions, v)
	close(st.update)
	st.update = make(chan struct{})
	return true
}

// startRound returns the first round a recovery for r may alter:
// r−(f+1), clamped to 1 (the version of line 6 starts there).
func (rt *recoveryTracker) startRound(r uint64) uint64 {
	f := uint64(rt.in.f)
	if r <= f+1 {
		return 1
	}
	return r - (f + 1)
}

// validVersion checks a received version against the agreed prefix
// (Lemma 5.3.6): it must start at r−(f+1), chain internally with valid
// signatures and bodies, anchor on the agreed block at r−(f+2) (which the
// caller has ensured is present locally), and respect proposer diversity.
// Empty versions are trivially valid.
func (rt *recoveryTracker) validVersion(v *versionMsg, r uint64) bool {
	if len(v.Blocks) == 0 {
		return true
	}
	start := rt.startRound(r)
	first := v.Blocks[0].Header()
	if first.Round != start {
		return false
	}
	// Anchor. HashAt serves round 0 (genesis) and the compaction base, so a
	// restarted-from-snapshot node can still anchor versions adjacent to
	// its snapshot boundary.
	anchor, ok := rt.in.chain.HashAt(start - 1)
	if !ok {
		return false
	}
	prev := anchor
	f := rt.in.f
	for i := range v.Blocks {
		blk := &v.Blocks[i]
		hdr := blk.Header()
		if hdr.Instance != rt.in.cfg.Instance {
			return false
		}
		if hdr.Round != start+uint64(i) {
			return false
		}
		if hdr.PrevHash != prev {
			return false
		}
		if !blk.Signed.VerifyPooled(rt.in.cfg.Registry, rt.in.cfg.VerifyPool) || blk.CheckBody() != nil {
			return false
		}
		// Proposer diversity within the version (Definition 5.3.1).
		for j := i - f; j < i; j++ {
			if j >= 0 && v.Blocks[j].Header().Proposer == hdr.Proposer {
				return false
			}
		}
		prev = blk.Hash()
	}
	return true
}

// harvestEquivocations feeds the evidence pool every equivocation exposed by
// the recovery data: conflicting same-round headers across the collected
// versions and this node's own pre-adoption chain suffix. The versions were
// already signature-checked by validVersion; the pool re-verifies each pair
// before recording it.
func (rt *recoveryTracker) harvestEquivocations(versions []versionMsg, mine []types.Block) {
	pool := rt.in.cfg.Evidence
	if pool == nil {
		return
	}
	// A proposal slot is (round, proposer, parent): only two different
	// headers for the same slot convict (a correct node may re-sign a round
	// on a different parent after a recovery redo; see internal/evidence).
	type slotKey struct {
		round    uint64
		proposer flcrypto.NodeID
		prev     flcrypto.Hash
	}
	seen := make(map[slotKey]types.SignedHeader)
	observe := func(sh types.SignedHeader) {
		key := slotKey{round: sh.Header.Round, proposer: sh.Header.Proposer, prev: sh.Header.PrevHash}
		if first, dup := seen[key]; dup {
			if first.HeaderHash() != sh.HeaderHash() {
				pool.ObservePair(first, sh)
			}
			return
		}
		seen[key] = sh
	}
	for i := range versions {
		for j := range versions[i].Blocks {
			observe(versions[i].Blocks[j].Signed)
		}
	}
	for i := range mine {
		observe(mine[i].Signed)
	}
}

// submitVersion signs and atomically broadcasts this node's version for
// recovery round r (Algorithm 3 lines 3–7).
func (rt *recoveryTracker) submitVersion(r uint64) error {
	in := rt.in
	start := rt.startRound(r)
	var myBlocks []types.Block
	tip := in.chain.Tip()
	if tip+1 >= r { // ri ≥ r−1 in the paper's terms
		myBlocks = in.chain.Suffix(start)
	}
	v := versionMsg{Instance: in.cfg.Instance, RecRound: r, From: in.id, Blocks: myBlocks}
	sig, err := in.cfg.Priv.Sign(versionSigBody(v.Instance, v.RecRound, v.From, v.Blocks))
	if err != nil {
		return err
	}
	in.metrics.SignOps.Add(1)
	v.Sig = sig
	e := types.NewEncoder(1024)
	v.encode(e)
	return in.cfg.SubmitAB(e.Bytes())
}

// runRecovery executes Algorithm 3 for the proof's round. It returns true
// if a recovery actually ran (the caller resets its round state).
func (rt *recoveryTracker) runRecovery(proof Proof) bool {
	r := proof.Round()
	rt.mu.Lock()
	if r <= rt.handled {
		served := rt.servedLate[r]
		if !served {
			if rt.servedLate == nil {
				rt.servedLate = make(map[uint64]bool)
			}
			if len(rt.servedLate) > 128 {
				rt.servedLate = make(map[uint64]bool) // cheap pruning; worst case re-serves once
			}
			rt.servedLate[r] = true
		}
		rt.mu.Unlock()
		if !served {
			// A valid proof for a recovery this node already completed (or
			// superseded by a later one): the round is settled here, but
			// the panicking straggler still needs n−f versions, and peers
			// that silently drop late proofs starve its version wait
			// forever (a permanent stall the simulation harness found —
			// every live peer had "handled" a higher recovery and ignored
			// the proof). Serving a version is cheap, needs no protocol
			// state, and is dedup-limited to once per recovery round.
			_ = rt.submitVersion(r)
		}
		return false
	}
	rt.mu.Unlock()

	in := rt.in
	in.metrics.Recoveries.Add(1)
	start := rt.startRound(r)

	if err := rt.submitVersion(r); err != nil {
		return false
	}

	// Catch up to the anchor if we are behind: blocks below r−(f+1) are
	// agreed (Lemma 5.3.4), so they can be fetched from any correct node.
	if start >= 2 {
		for in.chain.Tip() < start-1 {
			next := in.chain.Tip() + 1
			blk, ok := in.data.fetchBlock(next, in.stop)
			if !ok {
				return false
			}
			if in.chain.Append(blk) != nil {
				return false
			}
		}
	}

	// Lines 9–15: collect n−f valid versions. The wait is bounded: peers
	// serve versions for late proofs (see the handled-path above), so
	// starvation here means they are unreachable or gone — abandoning
	// pre-adoption is safe (no chain or protocol state has changed) and
	// the round loop re-attempts, re-panicking with a fresh proof if the
	// conflict persists.
	waitDeadline := time.Now().Add(versionWaitTimeout)
	need := in.n - in.f
	var winner *versionMsg
	var collected []versionMsg
	for {
		rt.mu.Lock()
		st := rt.state(r)
		valid := make([]versionMsg, 0, len(st.versions))
		for i := range st.versions {
			if rt.validVersion(&st.versions[i], r) {
				valid = append(valid, st.versions[i])
			}
		}
		ch := st.update
		rt.mu.Unlock()
		if len(valid) >= need {
			// Line 16: the first received among the max-tip versions.
			best := valid[0]
			for _, cand := range valid[1:] {
				if cand.tip() > best.tip() {
					best = cand
				}
			}
			winner = &best
			collected = valid
			break
		}
		// Escape hatch for a node recovering a round the cluster has long
		// left behind: peers whose tracker already handled a higher
		// recovery ignore this proof, so the n−f versions never arrive and
		// the worker would park here forever while the true definite chain
		// piles up in the catch-up buffer (a wedge the simulation harness
		// found: an equivocator's conflicting evidence reached a lagging
		// node after a partition heal). Abandoning is safe only in that
		// far-behind shape — peers are not redoing these rounds, so no
		// cross-node state diverges, and the adoption path replaces the
		// affected suffix wholesale. The running range syncer is the
		// discriminator: it only runs when the definite frontier is at
		// least a batch ahead of us. A near-tip recovery among live peers
		// must keep waiting — abandoning it while the others complete (and
		// DropFrom-reset the redone rounds) would leave this node's stale
		// per-round state poisoning the quorum, a stall the harness also
		// caught when this gate was missing.
		if in.data.ranger.active() && in.data.hasFetched(in.chain.Tip()+1) {
			return false
		}
		if time.Now().After(waitDeadline) {
			return false
		}
		wait := time.NewTimer(time.Until(waitDeadline))
		select {
		case <-ch:
		case <-in.data.updateChan():
		case <-wait.C:
		case <-in.stop:
			wait.Stop()
			return false
		}
		wait.Stop()
	}

	// Accountability: the collected versions plus our own pre-adoption
	// suffix expose the equivocation that caused this recovery — any two
	// signed headers for the same round by the same proposer with different
	// hashes convict that proposer (see internal/evidence).
	rt.harvestEquivocations(collected, in.chain.Suffix(start))

	// Lines 17–18: adopt.
	adoptFrom := start
	blocks := winner.Blocks
	if def := in.chain.Definite(); adoptFrom <= def {
		skip := def - adoptFrom + 1
		if uint64(len(blocks)) <= skip {
			blocks = nil
		} else {
			blocks = blocks[skip:]
		}
		adoptFrom = def + 1
	}
	if err := in.chain.ReplaceSuffix(adoptFrom, blocks); err == nil {
		// Definite decisions may have advanced.
		newTip := in.chain.Tip()
		if newTip > uint64(in.f)+2 {
			in.finalizeThrough(newTip - uint64(in.f) - 2)
		}
	}
	// The redone rounds must start from clean per-round protocol state:
	// pre-recovery headers may not link to the adopted chain, and
	// pre-recovery OBBC instances may hold aborted or decided state that
	// would poison the re-vote (peers that re-propose re-broadcast their
	// votes, so dropped quorums re-form).
	in.cfg.WRB.DropFrom(in.cfg.Instance, start)
	in.cfg.OBBC.DropFrom(in.cfg.Instance, start)

	rt.mu.Lock()
	rt.state(r).done = true
	if r > rt.handled {
		rt.handled = r
	}
	// Drop completed recovery states below the handled bound.
	for rr := range rt.states {
		if rr < rt.handled {
			delete(rt.states, rr)
		}
	}
	rt.mu.Unlock()
	in.fd.invalidate()
	return true
}

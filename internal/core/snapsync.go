package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/store"
	"repro/internal/types"
)

// Snapshot transfer: the recovery path of last resort. Log compaction bounds
// every peer's block log to an f+2+SnapshotEvery tail, so a node that falls
// further behind than any peer retains can never range-sync back — the
// rounds it needs exist nowhere as blocks. This file closes that hole: the
// stranded node downloads a peer's freshest checkpoint (the same
// store.Snapshot the peer would restart from), verifies it, installs it as
// its new chain base, and range-syncs only the retained tail above it. No
// node is ever beyond protocol help.
//
// The protocol is pull-based and resumable:
//
//   - Negotiate: broadcast kindReqSnapMeta; every peer advertises its
//     freshest checkpoint (base round/hash, state round, payload length,
//     hash-chain digest, chunk size). The freshest useful advertisement
//     picks the donor.
//   - Stream: pull size-capped chunks one at a time (kindReqSnapChunk →
//     kindRespSnapChunk). Each response carries the cumulative hash-chain
//     value h_i = SHA-256(h_{i-1} ‖ chunk_i); a chunk that does not extend
//     the local chain value is rejected on arrival and the donor rotated.
//     Because the requester asks for one chunk per round trip, a donor
//     serves at most one chunk per RTT per restoring node — the stream is
//     inherently paced and can never starve the donor's hot path.
//   - Resume: the download (buffer + chain value) survives donor rotation;
//     any peer advertising the same (base, digest) serves the next chunk
//     from the last verified offset. A donor that compacted past the pinned
//     base answers "gone", which restarts negotiation (bounded retries).
//   - Verify: the assembled payload must match the advertised digest,
//     decode as a well-formed store.Snapshot for this worker, and carry a
//     base-round header hash that f peers besides the donor attest to
//     (kindReqAnchor/kindRespAnchor) — f+1 matching nodes include at least
//     one honest one, so a fabricated chain anchor cannot be installed.
//     Conflicting attestations are ignored rather than trusted: a lone
//     Byzantine attester must not be able to veto every rescue.
//   - Install: handed to the node assembly (BindSnapshots), which persists
//     the snapshot, truncates the block log, resets the chain base, and
//     restores the application state — after which normal range sync
//     fetches the retained tail.
const (
	// defaultSnapChunkBytes caps one transfer chunk.
	defaultSnapChunkBytes = 256 << 10
	// maxSnapTransferBytes bounds an advertised payload (mirrors the store's
	// own snapshot bound).
	maxSnapTransferBytes = 1 << 30
	// snapMetaTimeout bounds the negotiation and attestation waits.
	snapMetaTimeout = 300 * time.Millisecond
	// snapChunkTimeout is the per-chunk patience before donor rotation.
	snapChunkTimeout = 250 * time.Millisecond
	// snapBackoffFloor/Cap bound the exponential backoff between attempts.
	snapBackoffFloor = 25 * time.Millisecond
	snapBackoffCap   = 2 * time.Second
)

// snapMeta is one peer's checkpoint advertisement.
type snapMeta struct {
	present    bool
	baseRound  uint64
	baseHash   flcrypto.Hash
	stateRound uint64
	totalLen   uint32
	snapHash   flcrypto.Hash // final hash-chain value over all chunks
	chunkSize  uint32
}

// snapResp is one routed wire response (meta, chunk, or attestation).
type snapResp struct {
	from   flcrypto.NodeID
	meta   snapMeta
	gone   bool
	offset uint32
	chain  flcrypto.Hash
	data   []byte
	round  uint64
	ok     bool
	hash   flcrypto.Hash
}

// snapDownload is an in-progress transfer: the pinned advertisement, the
// verified prefix, and the hash-chain value over it. It survives donor
// rotation — that is what makes mid-transfer peer death resume from the
// last verified chunk instead of from scratch.
type snapDownload struct {
	meta  snapMeta
	buf   []byte
	chain flcrypto.Hash
}

// snapServeState caches the donor-side encoding of the latest checkpoint:
// the canonical payload plus the cumulative hash-chain value after each
// chunk, rebuilt only when the served base round moves.
type snapServeState struct {
	meta    snapMeta
	payload []byte
	chunks  []flcrypto.Hash
}

// snapSyncer owns both halves of the snapshot-transfer protocol for one
// worker instance: serving the local checkpoint to stranded peers and
// downloading a remote checkpoint when this node is the stranded one.
type snapSyncer struct {
	dp       *dataPath
	self     flcrypto.NodeID
	instance uint32
	n, f     int
	stop     <-chan struct{}
	metrics  *Metrics

	// provide returns the freshest local checkpoint (donor side); install
	// atomically adopts a verified remote one (requester side). Both are
	// bound post-construction by the node assembly (Instance.BindSnapshots);
	// unbound halves degrade gracefully (no advertisement / no transfer).
	provide func() (store.Snapshot, bool)
	install func(store.Snapshot) error

	mu     sync.Mutex
	reqSeq uint64
	waits  map[uint64]chan snapResp
	// serve is the freshest checkpoint's encoding; servePrev keeps the
	// previous generation servable so a requester that pinned an
	// advertisement can finish streaming it across one local checkpoint
	// advance instead of being told "gone" (at high checkpoint cadence that
	// churn could outrun every transfer attempt).
	serve     *snapServeState
	servePrev *snapServeState
}

func newSnapSyncer(dp *dataPath, self flcrypto.NodeID, instance uint32, n int, stop <-chan struct{}, metrics *Metrics) *snapSyncer {
	return &snapSyncer{
		dp:       dp,
		self:     self,
		instance: instance,
		n:        n,
		f:        (n - 1) / 3,
		stop:     stop,
		metrics:  metrics,
		waits:    make(map[uint64]chan snapResp),
	}
}

// chainStep extends a hash chain by one chunk: h' = SHA-256(h ‖ data).
func chainStep(h flcrypto.Hash, data []byte) flcrypto.Hash {
	hasher := flcrypto.NewHasher()
	hasher.Write(h[:])
	hasher.Write(data)
	return hasher.Sum()
}

// --- request/response plumbing -----------------------------------------

func (ss *snapSyncer) newWait() (uint64, chan snapResp) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.reqSeq++
	id := ss.reqSeq
	ch := make(chan snapResp, ss.n)
	ss.waits[id] = ch
	return id, ch
}

func (ss *snapSyncer) clearWait(id uint64) {
	ss.mu.Lock()
	delete(ss.waits, id)
	ss.mu.Unlock()
}

// deliver routes one wire response to the goroutine waiting on its reqID
// (dropped when nothing waits — a late response after a timeout).
func (ss *snapSyncer) deliver(id uint64, r snapResp) {
	ss.mu.Lock()
	ch := ss.waits[id]
	ss.mu.Unlock()
	if ch != nil {
		select {
		case ch <- r:
		default:
		}
	}
}

// --- donor side ---------------------------------------------------------

// serveState returns the cached encoding of the freshest local checkpoint,
// rebuilding it when the checkpoint has advanced. Nil when this node has no
// checkpoint (or serving is unbound).
func (ss *snapSyncer) serveState() *snapServeState {
	if ss.provide == nil {
		return nil
	}
	snap, ok := ss.provide()
	if !ok {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.serve != nil && ss.serve.meta.baseRound == snap.BaseRound {
		return ss.serve
	}
	payload := store.EncodeSnapshot(snap)
	ss.servePrev = ss.serve
	chunkSize := ss.dp.opts.snapChunkBytes
	st := &snapServeState{payload: payload}
	var h flcrypto.Hash
	for off := 0; off < len(payload); off += chunkSize {
		end := off + chunkSize
		if end > len(payload) {
			end = len(payload)
		}
		h = chainStep(h, payload[off:end])
		st.chunks = append(st.chunks, h)
	}
	st.meta = snapMeta{
		present:    true,
		baseRound:  snap.BaseRound,
		baseHash:   snap.BaseHash,
		stateRound: snap.StateRound,
		totalLen:   uint32(len(payload)),
		snapHash:   h,
		chunkSize:  uint32(chunkSize),
	}
	ss.serve = st
	return st
}

// serveMeta answers a negotiation request with this node's freshest
// checkpoint advertisement (or an explicit "none").
func (ss *snapSyncer) serveMeta(to flcrypto.NodeID, reqID uint64) {
	st := ss.serveState()
	e := types.GetEncoder(128)
	e.Uint8(kindRespSnapMeta)
	e.Uint64(reqID)
	if st == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.Uint64(st.meta.baseRound)
		e.Hash(st.meta.baseHash)
		e.Uint64(st.meta.stateRound)
		e.Uint32(st.meta.totalLen)
		e.Hash(st.meta.snapHash)
		e.Uint32(st.meta.chunkSize)
	}
	ss.dp.mux.Send(ss.dp.proto, to, e.Bytes())
	e.Release()
}

// serveStateFor resolves a pinned base round to a servable encoding: the
// freshest checkpoint, or the immediately previous generation kept for
// downloads in flight across a local checkpoint advance.
func (ss *snapSyncer) serveStateFor(baseRound uint64) *snapServeState {
	st := ss.serveState()
	if st != nil && st.meta.baseRound == baseRound {
		return st
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.servePrev != nil && ss.servePrev.meta.baseRound == baseRound {
		return ss.servePrev
	}
	return nil
}

// serveChunk answers one chunk pull. A request for a base round this node no
// longer serves (the checkpoint advanced at least twice past the requester's
// pinned advertisement) gets an explicit "gone", which restarts negotiation
// on the requester. Serving is size-bounded (one chunk ≤ snapChunkBytes per
// request) and paced by construction: the requester pulls sequentially, so
// a donor sends one chunk per round trip.
func (ss *snapSyncer) serveChunk(to flcrypto.NodeID, reqID, baseRound uint64, offset uint32) {
	st := ss.serveStateFor(baseRound)
	if st == nil {
		e := types.GetEncoder(16)
		e.Uint8(kindRespSnapChunk)
		e.Uint64(reqID)
		e.Bool(true) // gone
		ss.dp.mux.Send(ss.dp.proto, to, e.Bytes())
		e.Release()
		return
	}
	chunkSize := st.meta.chunkSize
	if offset >= st.meta.totalLen || offset%chunkSize != 0 {
		return // malformed pull: ignore
	}
	end := offset + chunkSize
	if end > st.meta.totalLen {
		end = st.meta.totalLen
	}
	e := types.GetEncoder(64 + int(end-offset))
	e.Uint8(kindRespSnapChunk)
	e.Uint64(reqID)
	e.Bool(false)
	e.Uint32(offset)
	e.Hash(st.chunks[offset/chunkSize])
	e.Bytes32(st.payload[offset:end])
	ss.dp.mux.Send(ss.dp.proto, to, e.Bytes())
	e.Release()
	ss.metrics.SnapChunksServed.Add(1)
}

// --- requester side -----------------------------------------------------

// pollMetas broadcasts a negotiation request and collects advertisements
// until every peer answered or the window closes.
func (ss *snapSyncer) pollMetas() map[flcrypto.NodeID]snapMeta {
	id, ch := ss.newWait()
	defer ss.clearWait(id)
	e := types.GetEncoder(16)
	e.Uint8(kindReqSnapMeta)
	e.Uint64(id)
	ss.dp.mux.Broadcast(ss.dp.proto, e.Bytes())
	e.Release()
	out := make(map[flcrypto.NodeID]snapMeta)
	timer := time.NewTimer(snapMetaTimeout)
	defer timer.Stop()
	for len(out) < ss.n-1 {
		select {
		case r := <-ch:
			// Broadcasts self-deliver on every transport; our own "none"
			// advertisement must not fill the n-1 quota and crowd out a
			// real peer's response.
			if r.from == ss.self {
				continue
			}
			out[r.from] = r.meta
		case <-timer.C:
			return out
		case <-ss.stop:
			return out
		}
	}
	return out
}

// fetchChunk pulls the chunk at offset of the pinned checkpoint from donor.
func (ss *snapSyncer) fetchChunk(donor flcrypto.NodeID, baseRound uint64, offset uint32) (snapResp, bool) {
	id, ch := ss.newWait()
	defer ss.clearWait(id)
	e := types.GetEncoder(32)
	e.Uint8(kindReqSnapChunk)
	e.Uint64(id)
	e.Uint64(baseRound)
	e.Uint32(offset)
	ss.dp.mux.Send(ss.dp.proto, donor, e.Bytes())
	e.Release()
	timer := time.NewTimer(snapChunkTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r, true
	case <-timer.C:
		return snapResp{}, false
	case <-ss.stop:
		return snapResp{}, false
	}
}

// fetchChunks streams the remainder of dl from donor, resuming at the last
// verified offset. It returns complete=true when the payload is fully
// assembled; fatal=true when the donor served provably corrupt data (hash
// chain break) and must be quarantined for this transfer.
func (ss *snapSyncer) fetchChunks(donor flcrypto.NodeID, dl *snapDownload) (complete, fatal bool) {
	for uint32(len(dl.buf)) < dl.meta.totalLen {
		select {
		case <-ss.stop:
			return false, false
		default:
		}
		offset := uint32(len(dl.buf))
		// A pull can time out without the donor being at fault: under live
		// load the response shares the data protocol's bounded mailbox with
		// the body flood and may be dropped. Re-pull the same offset a few
		// times before rotating — each retry is one fresh request, so this
		// stays within the one-chunk-per-RTT pacing.
		var resp snapResp
		ok := false
		for tries := 0; tries < 3 && !ok; tries++ {
			select {
			case <-ss.stop:
				return false, false
			default:
			}
			resp, ok = ss.fetchChunk(donor, dl.meta.baseRound, offset)
		}
		if !ok {
			return false, false // timeout: rotate, resume elsewhere
		}
		if resp.gone {
			return false, false // donor compacted past the pinned base: renegotiate
		}
		if resp.offset != offset {
			return false, false // desynchronized response: rotate
		}
		want := chainStep(dl.chain, resp.data)
		if len(resp.data) == 0 ||
			uint32(len(resp.data)) > dl.meta.chunkSize ||
			offset+uint32(len(resp.data)) > dl.meta.totalLen ||
			want != resp.chain {
			// The chunk does not extend the verified chain — bit rot in
			// flight or a lying donor. Never appended; the verified prefix
			// stands and the next donor resumes from it.
			ss.metrics.SnapChunkRejects.Add(1)
			return false, true
		}
		dl.buf = append(dl.buf, resp.data...)
		dl.chain = want
		ss.metrics.SnapChunksFetched.Add(1)
		ss.metrics.SnapBytesFetched.Add(uint64(len(resp.data)))
	}
	return true, false
}

// attestAnchor asks the cluster to vouch for the header hash at the
// snapshot base. Attested once f peers besides the donor report the same
// hash: together with the donor that is f+1 nodes, at least one honest —
// a fabricated anchor cannot gather that. Refuted once f+1 peers report a
// DIFFERENT hash for a round they hold: at least one of them is honest, so
// the donor's anchor is provably wrong. Neither (abstentions from peers
// that compacted past the round, lost responses) is inconclusive: nobody
// vouched, but nobody proved anything either — the caller renegotiates on
// fresher advertisements instead of branding the donor. A lone Byzantine
// attester can therefore delay a rescue but never veto it or frame an
// honest donor.
func (ss *snapSyncer) attestAnchor(donor flcrypto.NodeID, round uint64, want flcrypto.Hash) (attested, refuted bool) {
	if ss.f == 0 {
		return true, false // no Byzantine tolerance configured; the donor is trusted
	}
	id, ch := ss.newWait()
	defer ss.clearWait(id)
	e := types.GetEncoder(32)
	e.Uint8(kindReqAnchor)
	e.Uint64(id)
	e.Uint64(round)
	ss.dp.mux.Broadcast(ss.dp.proto, e.Bytes())
	e.Release()
	timer := time.NewTimer(snapMetaTimeout)
	defer timer.Stop()
	matches, mismatches := 0, 0
	for {
		select {
		case r := <-ch:
			// Self-delivered broadcast responses and the donor's own voice
			// don't count: attestation needs f peers *besides* the parties
			// already invested in this transfer.
			if r.from == ss.self || r.from == donor || r.round != round || !r.ok {
				continue
			}
			if r.hash == want {
				if matches++; matches >= ss.f {
					return true, false
				}
			} else {
				if mismatches++; mismatches >= ss.f+1 {
					return false, true
				}
			}
		case <-timer.C:
			return false, false
		case <-ss.stop:
			return false, false
		}
	}
}

// transfer runs one bounded snapshot-transfer campaign: negotiate, stream,
// verify, install. It returns true once a checkpoint was installed. The
// range syncer calls it when it has both stalled against every peer and
// seen first-available evidence that the rounds it needs are compacted away
// everywhere; on failure the syncer gives up as before and the next tip
// hint retries.
func (ss *snapSyncer) transfer() bool {
	if ss.install == nil {
		return false
	}
	backoff := snapBackoffFloor
	quarantined := make(map[flcrypto.NodeID]bool)
	var dl *snapDownload
	for attempt := 0; attempt < 3*ss.n; attempt++ {
		select {
		case <-ss.stop:
			return false
		default:
		}
		localTip := ss.dp.chain.Tip()
		metas := ss.pollMetas()

		// Donor choice: a peer continuing the pinned download wins (resume);
		// otherwise the freshest useful advertisement. A checkpoint is
		// useful only when its base is beyond the local tip — anything else
		// means blocks for our rounds still exist and range sync handles it.
		var donor flcrypto.NodeID
		var meta snapMeta
		found := false
		if dl != nil {
			for p, m := range metas {
				if !quarantined[p] && m.present && m.baseRound == dl.meta.baseRound && m.snapHash == dl.meta.snapHash {
					donor, meta, found = p, m, true
					break
				}
			}
		}
		if !found {
			for p, m := range metas {
				if quarantined[p] || !m.present || m.baseRound <= localTip {
					continue
				}
				if !found || m.baseRound > meta.baseRound {
					donor, meta, found = p, m, true
				}
			}
			if found && dl != nil {
				// Every live donor moved past the pinned checkpoint:
				// restart negotiation on the fresher one.
				dl = nil
			}
		}
		if !found {
			select {
			case <-time.After(backoff):
			case <-ss.stop:
				return false
			}
			if backoff *= 2; backoff > snapBackoffCap {
				backoff = snapBackoffCap
			}
			continue
		}
		if meta.totalLen == 0 || meta.totalLen > maxSnapTransferBytes || meta.chunkSize == 0 {
			quarantined[donor] = true
			continue
		}
		if dl == nil {
			dl = &snapDownload{meta: meta}
		} else if len(dl.buf) > 0 {
			ss.metrics.SnapResumes.Add(1)
		}

		complete, fatal := ss.fetchChunks(donor, dl)
		if !complete {
			if fatal {
				quarantined[donor] = true
			}
			select {
			case <-time.After(backoff):
			case <-ss.stop:
				return false
			}
			if backoff *= 2; backoff > snapBackoffCap {
				backoff = snapBackoffCap
			}
			continue
		}

		snap, err := ss.verifyAssembled(donor, dl)
		if errors.Is(err, errAnchorInconclusive) {
			// Nobody vouched for the base and nobody refuted it — the
			// cluster likely compacted past it mid-stream. Not the donor's
			// fault; renegotiate on fresher advertisements after a beat.
			dl = nil
			select {
			case <-time.After(backoff):
			case <-ss.stop:
				return false
			}
			if backoff *= 2; backoff > snapBackoffCap {
				backoff = snapBackoffCap
			}
			continue
		}
		if err != nil {
			ss.metrics.SnapRejected.Add(1)
			quarantined[donor] = true
			dl = nil
			continue
		}
		if err := ss.install(snap); err != nil {
			// Installation refused locally (e.g. the chain advanced past the
			// base while we were downloading). Not the donor's fault; retry
			// from fresh advertisements.
			dl = nil
			continue
		}
		ss.metrics.SnapInstalls.Add(1)
		return true
	}
	return false
}

// verifyAssembled checks a completed download end to end: digest over the
// whole payload, structural decode, advertisement consistency, and the f+1
// chain-anchor attestation. Only a snapshot passing all of it may install.
func (ss *snapSyncer) verifyAssembled(donor flcrypto.NodeID, dl *snapDownload) (store.Snapshot, error) {
	if dl.chain != dl.meta.snapHash {
		return store.Snapshot{}, fmt.Errorf("core: snapshot digest mismatch")
	}
	snap, err := store.DecodeSnapshotPayload(dl.buf)
	if err != nil {
		return store.Snapshot{}, err
	}
	if snap.Instance != ss.instance ||
		snap.BaseRound != dl.meta.baseRound ||
		snap.BaseHash != dl.meta.baseHash ||
		snap.StateRound != dl.meta.stateRound {
		return store.Snapshot{}, fmt.Errorf("core: snapshot contradicts its advertisement")
	}
	attested, refuted := ss.attestAnchor(donor, snap.BaseRound, snap.BaseHash)
	if refuted {
		return store.Snapshot{}, fmt.Errorf("core: snapshot anchor refuted by f+1 nodes")
	}
	if !attested {
		return store.Snapshot{}, errAnchorInconclusive
	}
	return snap, nil
}

// errAnchorInconclusive marks a completed download whose chain anchor no
// peer could vouch for or refute — typically because the cluster compacted
// past the base while the stream was in flight. It is not evidence of donor
// misbehavior: the caller renegotiates on fresher advertisements without
// counting a rejection or quarantining anyone.
var errAnchorInconclusive = errors.New("core: snapshot anchor attestation inconclusive")

package core

import (
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
	"repro/internal/types"
)

// newTestDataPath wires a bare data path (no instance, no consensus
// services) onto one node of a chan network, for protocol-level tests.
func newTestDataPath(t *testing.T, net *transport.ChanNetwork, ks *flcrypto.KeySet, id flcrypto.NodeID, chain *Chain, batch int) (*dataPath, *Metrics, chan struct{}) {
	t.Helper()
	mux := transport.NewMux(net.Endpoint(id))
	m := &Metrics{}
	dp := newDataPath(mux, 3, ks.Registry, nil, chain, m, dataOpts{catchUpBatch: batch})
	stop := make(chan struct{})
	dp.ranger = newRangeSyncer(dp, id, ks.Registry.N(), stop, m)
	mux.Start()
	t.Cleanup(mux.Stop)
	return dp, m, stop
}

// TestRangeSyncDeepCatchUp is the acceptance-criterion test: a node more
// than 1000 definite rounds behind must rejoin via range sync with at most
// rounds/CatchUpBatch + O(1) catch-up requests — not one broadcast per
// round — and end with a verified, intact chain.
func TestRangeSyncDeepCatchUp(t *testing.T) {
	const (
		n      = 4
		rounds = 1250
		batch  = 50
	)
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	src := buildChain(t, ks, 0, rounds)
	src.MarkDefinite(uint64(rounds))
	for id := 1; id < n; id++ {
		newTestDataPath(t, net, ks, flcrypto.NodeID(id), src, batch)
	}

	client := NewChain(0)
	dp, m, stop := newTestDataPath(t, net, ks, 0, client, batch)
	defer close(stop)

	// Adoption loop standing in for the instance's round loop.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for client.Tip() < rounds {
			seg := dp.takeSegment(client.Tip()+1, 4*batch)
			if len(seg) == 0 {
				select {
				case <-dp.updateChan():
				case <-time.After(20 * time.Millisecond):
				case <-stop:
					return
				}
				continue
			}
			for i := range seg {
				if err := client.Append(seg[i]); err != nil {
					t.Errorf("adopt round %d: %v", seg[i].Header().Round, err)
					return
				}
			}
			client.MarkDefinite(client.Tip())
		}
	}()

	dp.ranger.noteBehind(rounds)
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("range sync stalled at round %d of %d (reqs=%d)", client.Tip(), rounds, m.CatchUpRangeReqs.Load())
	}

	if err := client.Audit(ks.Registry); err != nil {
		t.Fatalf("synced chain fails audit: %v", err)
	}
	reqs := m.CatchUpRangeReqs.Load()
	maxReqs := uint64(rounds/batch) + 3 // ≤ rounds/CatchUpBatch + O(1)
	if reqs == 0 || reqs > maxReqs {
		t.Fatalf("range sync used %d requests for %d rounds (want 1..%d)", reqs, rounds, maxReqs)
	}
	if br := m.CatchUpBlockReqs.Load(); br > 3 {
		t.Fatalf("range sync fell back to %d per-round block broadcasts", br)
	}
	if got := m.CatchUpRangeBlocks.Load(); got < rounds {
		t.Fatalf("only %d of %d blocks arrived on the range path", got, rounds)
	}
}

// TestRangeSyncRetargetsDeadPeer cuts the first-choice peer off mid-stream:
// the syncer must time out and resume from another peer.
func TestRangeSyncRetargetsDeadPeer(t *testing.T) {
	const (
		n      = 4
		rounds = 120
		batch  = 10
	)
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	src := buildChain(t, ks, 0, rounds)
	src.MarkDefinite(uint64(rounds))
	for id := 2; id < n; id++ {
		newTestDataPath(t, net, ks, flcrypto.NodeID(id), src, batch)
	}
	// Node 1 — the syncer's first choice after self — is unreachable.
	net.Crash(1)

	client := NewChain(0)
	dp, _, stop := newTestDataPath(t, net, ks, 0, client, batch)
	defer close(stop)

	go func() {
		for client.Tip() < rounds {
			seg := dp.takeSegment(client.Tip()+1, 4*batch)
			for i := range seg {
				if client.Append(seg[i]) != nil {
					return
				}
			}
			if len(seg) == 0 {
				select {
				case <-dp.updateChan():
				case <-time.After(20 * time.Millisecond):
				case <-stop:
					return
				}
			}
		}
	}()

	dp.ranger.noteBehind(rounds)
	deadline := time.Now().Add(30 * time.Second)
	for client.Tip() < rounds {
		if time.Now().After(deadline) {
			t.Fatalf("sync stuck at %d of %d after losing the first peer", client.Tip(), rounds)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeRangeFraming exercises the request/response wire format
// directly: batch caps, the more flag, the empty-range terminal response,
// and rejection of unverifiable blocks.
func TestServeRangeFraming(t *testing.T) {
	const n = 4
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	src := buildChain(t, ks, 0, 30)
	src.MarkDefinite(25) // 5 tentative rounds must never be served
	newTestDataPath(t, net, ks, 1, src, 10)

	client := NewChain(0)
	dp, m, stop := newTestDataPath(t, net, ks, 0, client, 10)
	defer close(stop)

	// Full-range request: rounds 1..25 in batches of 10 within one stream.
	dp.sendRangeReq(1, 7, 1, 0)
	waitFor(t, 5*time.Second, func() bool { return dp.fetchedLen() == 25 })
	if got := m.CatchUpRangeBlocks.Load(); got != 25 {
		t.Fatalf("stored %d blocks, want 25 (tentative rounds must not be served)", got)
	}
	// The buffered run is contiguous from round 1.
	if f := dp.frontier(); f != 26 {
		t.Fatalf("frontier %d, want 26", f)
	}

	// Bounded request: [5, 8) — but rounds 1..4 are already buffered, so
	// only dup-filtered entries remain; ask beyond the definite tip and
	// the server must clamp.
	dp2client := dp.takeSegment(1, 25)
	if len(dp2client) != 25 {
		t.Fatalf("takeSegment returned %d blocks, want 25", len(dp2client))
	}
	for i := range dp2client {
		if err := client.Append(dp2client[i]); err != nil {
			t.Fatal(err)
		}
	}
	dp.sendRangeReq(1, 8, 26, 40)
	time.Sleep(200 * time.Millisecond)
	if f := dp.fetchedLen(); f != 0 {
		t.Fatalf("server served %d blocks beyond its definite tip", f)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStoreFetchedWindowBound verifies the catch-up buffer's memory bound:
// rounds beyond the adoption window are refused.
func TestStoreFetchedWindowBound(t *testing.T) {
	ks := testKeySet(t, 4)
	net := transport.NewChanNetwork(transport.ChanConfig{N: 4})
	t.Cleanup(net.Close)

	src := buildChain(t, ks, 0, 300)
	client := NewChain(0)
	dp, _, stop := newTestDataPath(t, net, ks, 0, client, 10) // window = 40
	defer close(stop)

	var blks []types.Block
	for r := uint64(1); r <= 300; r++ {
		blk, _ := src.BlockAt(r)
		blks = append(blks, blk)
	}
	stored := dp.storeFetched(blks)
	if want := int(dp.fetchWindow()); stored != want {
		t.Fatalf("stored %d blocks, want the window bound %d", stored, want)
	}
	if dp.fetchedLen() != int(dp.fetchWindow()) {
		t.Fatalf("buffer holds %d entries, want %d", dp.fetchedLen(), dp.fetchWindow())
	}
}

// TestMaybeRequestBodyPerHashPacing is the regression test for the pull
// limiter: alternating misses between two hashes must not bypass pacing,
// and a new hash must not reset another's window.
func TestMaybeRequestBodyPerHashPacing(t *testing.T) {
	ks := testKeySet(t, 4)
	net := transport.NewChanNetwork(transport.ChanConfig{N: 2})
	t.Cleanup(net.Close)

	client := NewChain(0)
	dp, _, stop := newTestDataPath(t, net, ks, 0, client, 10)
	defer close(stop)

	a := flcrypto.Sum256([]byte("a"))
	b := flcrypto.Sum256([]byte("b"))
	base := net.MessagesSent(0)
	for i := 0; i < 50; i++ {
		dp.maybeRequestBody(a)
		dp.maybeRequestBody(b)
	}
	// One broadcast per hash (N-1 = 1 wire message each), not 100.
	if sent := net.MessagesSent(0) - base; sent != 2 {
		t.Fatalf("alternating hashes sent %d messages inside one pacing window, want 2", sent)
	}
	time.Sleep(2 * pullRetryInterval)
	dp.maybeRequestBody(a)
	if sent := net.MessagesSent(0) - base; sent != 3 {
		t.Fatalf("expired window should re-send (got %d messages, want 3)", sent)
	}
}

package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/evidence"
	"repro/internal/flcrypto"
	"repro/internal/obbc"
	"repro/internal/rbroadcast"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wrb"
)

// TxSource supplies transactions for blocks. The pool semantics follow the
// paper's TX pool (Fig 3): NextBatch leases up to max transactions (a lease
// expires if the block carrying them is never finalized), MarkCommitted
// retires transactions that reached a definite block.
type TxSource interface {
	NextBatch(max int) []types.Transaction
	MarkCommitted(txs []types.Transaction)
}

// Event identifies the per-round lifecycle points of Fig 9's breakdown.
type Event int

// The five events of §7.2.2 (E, FLO delivery, is emitted by the flo layer).
const (
	EventBlockProposed  Event = iota // A: the block body left the proposer
	EventHeaderProposed              // B: the header entered the consensus path
	EventTentative                   // C: tentative decision (appended to chain)
	EventDefinite                    // D: definite decision (depth f+2)
)

// Config assembles one FireLedger worker instance.
type Config struct {
	// Instance is the worker index (§6.2); instance 0 is the only one in a
	// plain FireLedger deployment.
	Instance uint32
	// Mux is the node's transport.
	Mux *transport.Mux
	// Registry and Priv identify the node.
	Registry *flcrypto.Registry
	Priv     flcrypto.PrivateKey
	// VerifyPool, when non-nil, routes the data-path and recovery signature
	// checks through the node's shared verification pool — recovery
	// versions and catch-up blocks re-present headers the node has usually
	// verified already, so they resolve from the cache. Nil verifies
	// synchronously (deterministic tests).
	VerifyPool *flcrypto.VerifyPool
	// WRB, OBBC, RB are the instance's protocol services (wired by the
	// node assembly; see flo.NewNode).
	WRB  *wrb.Service
	OBBC *obbc.Service
	RB   *rbroadcast.Service
	// DataProto is the mux protocol for the body/data path.
	DataProto transport.ProtoID
	// SubmitAB atomic-broadcasts recovery versions (PBFT Submit).
	SubmitAB func([]byte) error
	// Pool supplies transactions; nil means always-empty blocks.
	Pool TxSource
	// BatchSize is the paper's β: transactions per block (default 100).
	BatchSize int
	// OnDecide receives definite blocks in round order.
	OnDecide func(blk types.Block)
	// OnEvent receives Fig 9 lifecycle events (may be nil).
	OnEvent func(round uint64, ev Event)
	// EpochLen reshuffles the proposer permutation every EpochLen rounds
	// (0 disables; see §6.1.1 "Consecutive Byzantine Proposers").
	EpochLen uint64
	// FDThreshold is the timeout-strike count before suspicion (default 2).
	FDThreshold int
	// Equivocate turns this node into the §7.4.2 Byzantine proposer: on
	// its turn it sends different blocks to two random halves of the
	// cluster. A fault-injection facility for experiments.
	Equivocate bool
	// MaxPending bounds how many non-definite rounds may be outstanding
	// before the proposer stops creating new blocks — the paper's basic
	// flow control (§7.2). 0 means no bound.
	MaxPending int
	// Preload installs an already-definite chain prefix before the round
	// loop starts — the restart path: blocks replayed from the persistent
	// store (internal/store) resume the node at its last finalized round.
	Preload []types.Block
	// PreloadBase / PreloadBaseHash anchor Preload after log compaction:
	// Preload[0] is round PreloadBase+1 and extends the block whose header
	// hash is PreloadBaseHash (the snapshot anchor). Zero values mean a
	// full log starting at round 1.
	PreloadBase     uint64
	PreloadBaseHash flcrypto.Hash
	// CatchUpBatch is the block count per streaming catch-up batch and the
	// behind-threshold that switches a lagging node from per-round pulls
	// to range sync (default 64; see rangesync.go).
	CatchUpBatch int
	// SnapChunkBytes caps one snapshot-transfer chunk (default 256 KiB; see
	// snapsync.go). Tests shrink it to force multi-chunk transfers.
	SnapChunkBytes int
	// Persist, when non-nil, receives every definite block before OnDecide
	// (the durability hook; internal/store.BlockLog.Append fits).
	Persist func(types.Block) error
	// PersistProposal, when non-nil, receives every block this node signs
	// for a proposal slot, before the signature can leave the node; the
	// restart path feeds them back through PreloadProposals. Together they
	// extend the one-signature-per-slot invariant across restarts: a
	// rebooted proposer re-proposes its memoized block instead of signing
	// a fresh (different) one — which would be equivocation from the
	// evidence layer's point of view, and which can wedge a peer that
	// already finalized the original block behind a definite conflict.
	PersistProposal func(types.Block) error
	// PreloadProposals seeds the proposal memo on restart
	// (store.OpenProposals' replay fits).
	PreloadProposals []types.Block
	// PruneProposals, when non-nil, learns the definite boundary whenever
	// it advances, so the proposal store can drop slots that can never be
	// re-proposed.
	PruneProposals func(definite uint64)
	// DisablePiggyback turns off the §5.1 optimization that rides the next
	// block on the current round's OBBC vote; the proposer then pushes its
	// header explicitly at the start of its round instead. This is an
	// ablation switch: it converts the amortized one-phase protocol back
	// into the two-phase design of §5.1's strawman.
	DisablePiggyback bool
	// Evidence, when non-nil, activates the accountability path (paper §1:
	// "any Byzantine deviation ... results in a strong proof of which node
	// was the culprit"): equivocations observed through WRB or during
	// recovery are recorded in the pool, and pending conviction
	// transactions are embedded in this node's block proposals.
	Evidence *evidence.Pool
	// ExcludeConvicted additionally removes convicted nodes from the
	// proposer rotation ("the corresponding Byzantine node will be removed
	// from the system", §1). The exclusion is derived from conviction
	// transactions in definite blocks, so it activates at the same round at
	// every correct node; all nodes of a deployment must agree on this
	// setting.
	ExcludeConvicted bool
	// UseGossip disseminates block bodies by push-gossip on GossipProto
	// instead of the clique overlay (§7.2.2's alternative: less origin
	// egress, more hops). The pull-by-hash fallback stays in place, so a
	// missed rumor costs latency only. GossipFanout defaults to 3.
	UseGossip    bool
	GossipProto  transport.ProtoID
	GossipFanout int
	// CompressBodies DEFLATE-frames body payloads (the paper's conclusion
	// recommends compressing large transactions). Receivers auto-detect;
	// only senders need the switch.
	CompressBodies bool
}

// Metrics counts instance activity for the evaluation harness.
type Metrics struct {
	TentativeBlocks atomic.Uint64
	DefiniteBlocks  atomic.Uint64
	DefiniteTxs     atomic.Uint64
	NilRounds       atomic.Uint64
	Recoveries      atomic.Uint64
	SignOps         atomic.Uint64
	// Convictions counts culprits excluded from the rotation (with
	// ExcludeConvicted) or recorded on-chain (without).
	Convictions atomic.Uint64
	// CatchUpRangeReqs counts range-sync requests sent (each covers up to
	// maxBatchesPerReq × CatchUpBatch rounds); CatchUpRangeBlocks counts
	// blocks received and buffered off the range path; CatchUpBlockReqs
	// counts legacy one-round pull broadcasts. Together they make the
	// restart-cost acceptance criterion observable: a node N rounds behind
	// should see ~N/CatchUpBatch range requests, not N block requests.
	CatchUpRangeReqs   atomic.Uint64
	CatchUpRangeBlocks atomic.Uint64
	CatchUpBlockReqs   atomic.Uint64
	// TentativeResyncs counts rollbacks of a divergent tentative suffix in
	// favor of the cluster's definite chain during catch-up (see
	// resyncTentativeSuffix). Found by the simulation harness: a node that
	// tentatively delivered a proposal the partitioned majority later
	// re-decided used to wedge forever once the cluster outran the
	// recovery window.
	TentativeResyncs atomic.Uint64
	// Snapshot-transfer accounting (see snapsync.go). The donor side counts
	// chunks served; the requester side counts chunks/bytes fetched, resumes
	// after donor rotation, chunk-level hash rejections, whole-snapshot
	// rejections (digest/decode/attestation failures), and installs. A
	// campaign asserting that a stranded node actually recovered via
	// transfer — rather than silently range-syncing — checks SnapInstalls.
	SnapChunksServed  atomic.Uint64
	SnapChunksFetched atomic.Uint64
	SnapBytesFetched  atomic.Uint64
	SnapResumes       atomic.Uint64
	SnapChunkRejects  atomic.Uint64
	SnapRejected      atomic.Uint64
	SnapInstalls      atomic.Uint64
}

// Instance is one FireLedger worker: a single-threaded round loop
// (Algorithm 2) over the WRB/OBBC/RB services, plus the recovery procedure
// (Algorithm 3) on the shared atomic broadcast.
type Instance struct {
	cfg   Config
	id    flcrypto.NodeID
	n, f  int
	chain *Chain
	data  *dataPath
	sched *schedule
	fd    *failureDetector

	metrics Metrics

	stop    chan struct{}
	once    sync.Once
	stopped sync.WaitGroup

	// panicCh carries RB-delivered inconsistency proofs to the round loop;
	// panicPending closes the race between queuing a proof and the loop
	// starting its next delivery attempt.
	panicCh      chan Proof
	panicPending atomic.Bool

	// current attempt state, guarded by mu: the wire handlers use it to
	// kick/abort the in-flight delivery.
	mu         sync.Mutex
	currentKey obbc.Key
	abortCh    chan struct{}

	rec *recoveryTracker

	rng *rand.Rand // equivocator's half-picker

	// propMu guards propCache: this node's signed proposals memoized per
	// (round, parent) slot. A slot is signed at most once — re-proposing
	// after an aborted attempt or a recovery redo re-sends the identical
	// block — which is the behavior that makes the evidence layer's
	// same-slot-different-hash conviction predicate sound (a correct node
	// can never be framed; see internal/evidence).
	propMu    sync.Mutex
	propCache map[propKey]types.Block
}

// propKey identifies one proposal slot of this node.
type propKey struct {
	round uint64
	prev  flcrypto.Hash
}

// New creates an instance. Call Start to run the round loop.
func New(cfg Config) *Instance {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 100
	}
	n := cfg.Mux.N()
	in := &Instance{
		cfg:     cfg,
		id:      cfg.Mux.ID(),
		n:       n,
		f:       (n - 1) / 3,
		chain:   NewChainAt(cfg.Instance, cfg.PreloadBase, cfg.PreloadBaseHash),
		stop:    make(chan struct{}),
		panicCh: make(chan Proof, 16),
		abortCh: make(chan struct{}),
		rng:     rand.New(rand.NewSource(int64(cfg.Instance)*1000 + int64(cfg.Mux.ID()))),
	}
	in.sched = newSchedule(n, in.f, cfg.EpochLen)
	in.fd = newFailureDetector(in.f, cfg.FDThreshold)
	in.data = newDataPath(cfg.Mux, cfg.DataProto, cfg.Registry, cfg.VerifyPool, in.chain, &in.metrics, dataOpts{
		gossipProto:    cfg.GossipProto,
		useGossip:      cfg.UseGossip,
		fanout:         cfg.GossipFanout,
		compress:       cfg.CompressBodies,
		catchUpBatch:   cfg.CatchUpBatch,
		snapChunkBytes: cfg.SnapChunkBytes,
	})
	in.data.ranger = newRangeSyncer(in.data, in.id, n, in.stop, &in.metrics)
	in.data.snaps = newSnapSyncer(in.data, in.id, cfg.Instance, n, in.stop, &in.metrics)
	// The OBBC evidence path carries the block body (see wrb.SetBodyStore):
	// a node vouches for a header only when it holds the body, and a node
	// convinced by evidence receives the body with it.
	cfg.WRB.SetBodyStore(
		func(h flcrypto.Hash) ([]byte, bool) {
			body, ok := in.data.get(h)
			if !ok {
				return nil, false
			}
			return body.Marshal(), true
		},
		func(enc []byte) bool {
			d := types.NewDecoder(enc)
			body := types.DecodeBody(d)
			if d.Finish() != nil {
				return false
			}
			in.data.store(body)
			return true
		},
	)
	in.data.onBody = func(flcrypto.Hash) {
		in.mu.Lock()
		key := in.currentKey
		in.mu.Unlock()
		if key.Round != 0 {
			in.cfg.WRB.Kick(key)
		}
	}
	in.rec = newRecoveryTracker(in)
	in.data.onFetched = func(round uint64) {
		// A definite block at or below the round we are stuck on arrived
		// on the catch-up path: abort the attempt so the loop adopts it.
		// (At-or-below, not equal: by the time this fires the loop may be
		// attempting a later round than the batch's lowest entry.)
		in.mu.Lock()
		key := in.currentKey
		in.mu.Unlock()
		if key.Round != 0 && round <= key.Round {
			in.interrupt()
		}
	}
	cfg.OBBC.SetOnVote(func(from flcrypto.NodeID, key obbc.Key) {
		if key.Instance != in.cfg.Instance || from == in.id {
			return
		}
		// A vote is direct liveness evidence: a suspected peer that is
		// verifiably participating again (e.g. back from a partition) must
		// regain a real delivery timer on its turns, or the zero-wait nil
		// rounds it causes would re-suspect it forever (§6.1.1's invalidation
		// rule alone does not fire at low attempt numbers).
		in.fd.onAlive(from)
		if def := in.chain.Definite(); key.Round <= def {
			// The peer is behind (e.g., it restarted). A small gap gets the
			// block handed over directly; a deep gap gets a tip hint so the
			// peer range-syncs instead of being drip-fed one block per vote.
			if def-key.Round >= uint64(in.data.opts.catchUpBatch) {
				in.data.sendTipHint(from)
			} else {
				in.data.sendBlockTo(from, key.Round)
			}
			return
		}
		if key.Round > in.chain.Tip()+1 {
			// Votes for rounds beyond our tip mean we are the ones behind;
			// their definite frontier trails the vote round by at most
			// f+2. (Byzantine votes can at worst trigger range requests
			// that return empty and rotate away.)
			if gap := uint64(in.f) + 3; key.Round > gap {
				in.data.ranger.noteBehind(key.Round - gap)
			}
		}
	})
	// The chain is OBBC's input oracle for instances this node never voted
	// on (state discarded by a recovery's DropFrom, or the round adopted
	// wholesale via catch-up): a materialized block at (round, proposer)
	// means that instance decided 1; a block from a different proposer
	// means the rotation passed it by. Lets the node join a starved
	// fallback with a grounded input (see obbc.Config.ChainInput).
	cfg.OBBC.SetChainInput(func(key obbc.Key) (byte, bool) {
		if key.Instance != cfg.Instance {
			return 0, false
		}
		hdr, ok := in.chain.HeaderAt(key.Round)
		if !ok {
			return 0, false
		}
		if hdr.Proposer == key.Proposer {
			return 1, true
		}
		return 0, true
	})
	if cfg.Evidence != nil {
		// WRB sees two conflicting headers from the same proposer: a
		// ready-made equivocation proof.
		cfg.WRB.SetOnEquivocation(func(a, b types.SignedHeader) {
			if a.Header.Instance != in.cfg.Instance {
				return
			}
			in.cfg.Evidence.ObservePair(a, b)
		})
	}
	for _, blk := range cfg.Preload {
		if err := in.chain.Append(blk); err != nil {
			break
		}
	}
	in.chain.MarkDefinite(in.chain.Tip())
	// Re-seed the proposal memo from the persistent proposal log, dropping
	// slots at definite rounds (they can never be re-proposed).
	for _, blk := range cfg.PreloadProposals {
		hdr := blk.Signed.Header
		if hdr.Instance != cfg.Instance || hdr.Round <= in.chain.Definite() {
			continue
		}
		if in.propCache == nil {
			in.propCache = make(map[propKey]types.Block)
		}
		in.propCache[propKey{round: hdr.Round, prev: hdr.PrevHash}] = blk
	}
	// Replayed blocks re-derive the conviction set: a restarted node ends
	// up with the same proposer exclusions as the rest of the cluster.
	// (Convictions below a compaction base were registered before the
	// snapshot was cut and their exclusions are already reflected in every
	// live node's schedule going forward.)
	for r := in.chain.Base() + 1; r <= in.chain.Tip(); r++ {
		if blk, ok := in.chain.BlockAt(r); ok {
			in.registerConvictions(blk)
		}
	}
	return in
}

// registerConvictions scans a definite block for conviction transactions
// and applies them: the pool records the proof (adopting foreign ones) and,
// with ExcludeConvicted, the culprit leaves the proposer rotation from an
// agreed round on.
//
// The effective round is R+f+3 for a conviction in the block at round R: a
// node computing round X's proposer has tip X−1 and therefore definite
// boundary X−f−3, so every conviction at rounds ≤ X−f−3 — exactly those
// with effective round ≤ X — has been scanned at every correct node by the
// time any of them evaluates round X. Blocks that deep are also beyond the
// recovery procedure's reach, so the derivation never reverses.
func (in *Instance) registerConvictions(blk types.Block) {
	if in.cfg.Evidence == nil && !in.cfg.ExcludeConvicted {
		return
	}
	round := blk.Header().Round
	for i := range blk.Body.Txs {
		tx := &blk.Body.Txs[i]
		if tx.Client != evidence.SystemClient {
			continue
		}
		eq, ok := evidence.ParseConvictionTx(*tx)
		if !ok || eq.Verify(in.cfg.Registry) != nil {
			continue // malformed conviction txs are inert filler
		}
		fresh := false
		if in.cfg.Evidence != nil {
			_, fresh = in.cfg.Evidence.IngestBlockTx(*tx, round)
		}
		if in.cfg.ExcludeConvicted {
			if in.sched.convict(eq.Culprit(), round+uint64(in.f)+3) {
				in.metrics.Convictions.Add(1)
			}
		} else if fresh {
			in.metrics.Convictions.Add(1)
		}
	}
}

// Convictions exposes the schedule's exclusion map (culprit → first
// excluded round) for observability and tests.
func (in *Instance) Convictions() map[flcrypto.NodeID]uint64 {
	return in.sched.convictions()
}

// Chain exposes the instance's blockchain (read access).
func (in *Instance) Chain() *Chain { return in.chain }

// BindRB installs the reliable-broadcast service used for panic proofs when
// it could not be passed in Config (its delivery callback needs the
// instance, so the wiring is circular).
func (in *Instance) BindRB(rb *rbroadcast.Service) { in.cfg.RB = rb }

// BindSnapshots wires the snapshot-transfer protocol to the node assembly
// (the wiring is circular, like BindRB: serving needs the node's checkpoint
// store, installing needs the node's logs and state replica). provide
// returns the freshest local checkpoint for donating to stranded peers;
// install atomically adopts a verified remote checkpoint — it must persist
// the snapshot, truncate the block log, restore application state, and then
// call AdoptSnapshot to re-anchor this instance's live chain. Either hook
// may be nil (that half of the protocol stays inert).
func (in *Instance) BindSnapshots(provide func() (store.Snapshot, bool), install func(store.Snapshot) error) {
	in.data.snaps.provide = provide
	in.data.snaps.install = install
}

// AdoptSnapshot re-anchors the live instance on an installed checkpoint:
// the in-memory chain resets forward to the snapshot base, buffered
// catch-up blocks and memoized proposals at covered rounds are dropped,
// per-round protocol state below the base is collected, and the round loop
// is interrupted so it resumes from the new tip. Callers (the flo install
// path) must have persisted the snapshot and truncated the block log first
// — durability before visibility, the same order finalizeThrough uses.
func (in *Instance) AdoptSnapshot(base uint64, baseHash flcrypto.Hash) error {
	if err := in.chain.ResetForward(base, baseHash); err != nil {
		return err
	}
	in.data.dropFetchedThrough(base)
	in.cfg.WRB.GC(in.cfg.Instance, base)
	in.cfg.OBBC.GC(in.cfg.Instance, base)
	in.pruneProposals(base)
	in.interrupt()
	return nil
}

// CompactTo releases this worker's in-memory blocks at rounds ≤ base and
// the data path's fetch bookkeeping below it. The embedding layer calls it
// after a durable checkpoint anchored at base: from then on the retained
// window — not the process's uptime — bounds what this node can range-serve,
// and peers that fell below it are rescued by snapshot transfer instead.
func (in *Instance) CompactTo(base uint64) error {
	if err := in.chain.CompactTo(base); err != nil {
		return err
	}
	in.data.dropFetchedThrough(base)
	return nil
}

// HandleOrdered routes one atomically-ordered request to this instance's
// recovery tracker. It returns false for requests belonging elsewhere.
func (in *Instance) HandleOrdered(req []byte) bool { return in.rec.HandleOrdered(req) }

// Metrics returns the instance counters.
func (in *Instance) Metrics() *Metrics { return &in.metrics }

// Start launches the round loop.
func (in *Instance) Start() {
	in.stopped.Add(1)
	go in.run()
}

// Stop terminates the round loop and aborts any in-flight delivery.
func (in *Instance) Stop() {
	in.once.Do(func() {
		close(in.stop)
		in.interrupt()
	})
	in.stopped.Wait()
}

// OnPanic is the RB delivery callback (Algorithm 2 lines b12–b14): a valid
// proof diverts every correct node into the recovery procedure. The node
// assembly registers it with the instance's reliable-broadcast service.
func (in *Instance) OnPanic(origin flcrypto.NodeID, seq uint64, payload []byte) {
	d := types.NewDecoder(payload)
	proof := DecodeProof(d)
	if d.Finish() != nil {
		return
	}
	if proof.Curr.Header.Instance != in.cfg.Instance {
		return
	}
	if err := proof.VerifyPooled(in.cfg.Registry, in.cfg.VerifyPool); err != nil {
		return
	}
	select {
	case in.panicCh <- proof:
	default: // a recovery is already queued; one is enough
	}
	in.panicPending.Store(true)
	in.interrupt()
}

// DebugString summarizes live round-loop state for harness diagnostics: the
// attempt the loop is parked on, the buffered catch-up span, and whether the
// range syncer believes it is running.
func (in *Instance) DebugString() string {
	in.mu.Lock()
	key := in.currentKey
	in.mu.Unlock()
	lo, hi, n := in.data.fetchedSpan()
	return fmt.Sprintf("attempt=(round %d, proposer %d) fetched=[%d..%d]#%d rangerActive=%v",
		key.Round, key.Proposer, lo, hi, n, in.data.ranger.active())
}

// interrupt aborts the in-flight WRB delivery so the round loop regains
// control (the paper's panic thread interrupting the main thread, Fig 3).
func (in *Instance) interrupt() {
	in.mu.Lock()
	key := in.currentKey
	ch := in.abortCh
	in.abortCh = make(chan struct{})
	in.mu.Unlock()
	close(ch)
	if key.Round != 0 {
		in.cfg.OBBC.Abort(key)
	}
}

// beginAttempt installs the current delivery key and returns a fresh abort
// channel for this attempt. If a panic slipped in between attempts, the
// channel comes pre-closed so the attempt aborts immediately.
func (in *Instance) beginAttempt(key obbc.Key) <-chan struct{} {
	in.mu.Lock()
	in.currentKey = key
	in.abortCh = make(chan struct{})
	ch := in.abortCh
	in.mu.Unlock()
	if in.panicPending.Load() {
		in.interrupt()
	}
	return ch
}

func (in *Instance) event(round uint64, ev Event) {
	if in.cfg.OnEvent != nil {
		in.cfg.OnEvent(round, ev)
	}
}

// run is Algorithm 2's main loop.
func (in *Instance) run() {
	defer in.stopped.Done()
	attempt := 0
	fullMode := true // line 3
	for {
		select {
		case <-in.stop:
			return
		case proof := <-in.panicCh:
			in.panicPending.Store(false)
			if in.rec.runRecovery(proof) {
				attempt = 0
				fullMode = true
			}
			continue
		default:
		}

		ri := in.chain.Tip() + 1
		// Catch-up fast path: peers already finalized rounds we lack —
		// either a single handoff block or a range-synced stream. Adopt
		// the whole contiguous verified segment atomically (every block in
		// `fetched` was signature- and body-checked on arrival; Append
		// enforces the chain linkage).
		if seg := in.data.takeSegment(ri, 2*in.data.opts.catchUpBatch); len(seg) > 0 {
			adopted := 0
			for i := range seg {
				if in.chain.Append(seg[i]) != nil {
					if i == 0 && in.resyncTentativeSuffix(ri, seg) {
						adopted = -1 // suffix replaced; restart the loop
					}
					break // fork or gap: drop the rest, it will be refetched
				}
				adopted++
				in.metrics.TentativeBlocks.Add(1)
			}
			if adopted < 0 {
				attempt = 0
				fullMode = true
				continue
			}
			if adopted > 0 {
				tip := in.chain.Tip()
				if tip > uint64(in.f)+2 {
					in.finalizeThrough(tip - uint64(in.f) - 2)
				}
				if !in.data.ranger.active() {
					// Chase the next round proactively — but only outside
					// range sync, where per-round broadcasts are exactly
					// the O(rounds) cost the syncer exists to avoid.
					in.data.requestBlock(tip + 1)
				}
				attempt = 0
				fullMode = true
				continue
			}
		}
		proposer, skipped := in.sched.proposerFor(in.chain, ri, attempt)
		if skipped {
			// Lines b1–b3 skipped a recent proposer: the FD suspicion list
			// is invalidated (§6.1.1) so a skipped correct node regains
			// its turn.
			in.fd.invalidate()
		}
		key := obbc.Key{Instance: in.cfg.Instance, Round: ri, Proposer: proposer}
		abort := in.beginAttempt(key)
		if in.data.hasFetched(ri) {
			// A catch-up block for this round landed between the loop-top
			// check and the attempt installation — the window the
			// onFetched interrupt cannot see. Without this re-check the
			// loop would sit out a full delivery timer while adoptable
			// blocks pile up, throttling catch-up to a crawl.
			continue
		}

		// Lines 6–11: in full mode the round's proposer pushes its block
		// explicitly (no piggyback carried it). The equivocator always
		// pushes on its turn (it never piggybacks), as does every proposer
		// when the piggyback ablation is on.
		if proposer == in.id && (fullMode || in.cfg.Equivocate || in.cfg.DisablePiggyback) {
			in.proposeOwn(ri)
		}

		// Lines 12–15: try to deliver, piggybacking our next block if we
		// are the following round's proposer (§5.1). The piggyback closure
		// runs at vote time, when the current header (the next block's
		// parent) is known.
		pgdFn := func(hdr *types.SignedHeader) []byte {
			if hdr == nil || in.cfg.Equivocate || in.cfg.DisablePiggyback {
				return nil
			}
			return in.preparePiggyback(*hdr)
		}
		wait := in.cfg.WRB.CurrentTimer(in.cfg.Instance)
		suspected := in.fd.isSuspected(proposer)
		if suspected {
			wait = 0 // benign FD: do not wait for a suspected node (§6.1.1)
		}
		hdr, err := in.cfg.WRB.DeliverWithWait(key, pgdFn, in.acceptHeader, abort, wait)
		if err != nil {
			if errors.Is(err, wrb.ErrAborted) {
				continue // panic or stop; handled at loop top
			}
			continue
		}

		if hdr == nil {
			// Lines 16–20: agreed non-delivery; rotate the proposer.
			in.metrics.NilRounds.Add(1)
			if !suspected {
				// Only a wait we actually granted counts as a strike: a nil
				// round decided with zero wait is self-inflicted and proves
				// nothing new about the proposer.
				in.fd.onTimeout(proposer)
			}
			fullMode = true
			attempt++
			continue
		}
		in.fd.onDelivered(proposer)

		// Lines b4–b10: validate the chain linkage.
		if !in.validateLink(*hdr, ri) {
			if in.panicAbout(*hdr, ri) {
				// Wait for our own proof to RB-deliver back (it triggers
				// the recovery at the loop top); re-attempting the round
				// before then would just re-deliver the same bad header.
				select {
				case proof := <-in.panicCh:
					in.panicPending.Store(false)
					if in.rec.runRecovery(proof) {
						attempt = 0
						fullMode = true
					}
				case <-in.stop:
					return
				case <-time.After(10 * time.Second):
				}
			} else {
				// No proof can be built (round-1 edge case): all correct
				// nodes saw the same header fail the same check, so they
				// all rotate consistently.
				fullMode = true
				attempt++
			}
			continue
		}

		// Assemble the block (§6.1.1: fetch the body if we voted without it
		// — possible when delivery was decided by others).
		body, ok := in.data.waitBody(hdr.Header, abort)
		if !ok {
			continue
		}
		blk := types.Block{Signed: *hdr, Body: body}
		if blk.CheckBody() != nil {
			// The proposer signed a header whose body hash does not match
			// any real body — indistinguishable from a missing body; the
			// pull loop above only returns matching bodies, so this is
			// unreachable unless the store was evicted mid-flight.
			continue
		}

		// Line 22: append (tentative decision).
		if err := in.chain.Append(blk); err != nil {
			continue
		}
		in.metrics.TentativeBlocks.Add(1)
		in.event(ri, EventTentative)

		// Line b11: definite decision at depth f+2.
		if ri > uint64(in.f)+2 {
			in.finalizeThrough(ri - uint64(in.f) - 2)
		}

		fullMode = false
		attempt = 0
	}
}

// resyncTentativeSuffix resolves a catch-up conflict against the local
// tentative suffix. A verified catch-up block for round ri = tip+1 that does
// not link to our tip means our rounds (definite, tip] diverge from the
// chain the cluster finalized — an honest possibility: inside a partition we
// can WRB-deliver a proposal tentatively while the majority times the
// proposer out, rotates, and decides the round differently. Live, the next
// delivered header triggers a panic and the recovery replaces our suffix
// (Algorithm 3); but once the cluster has outrun the retained protocol
// state, no WRB delivery for our stuck round will ever come, and before this
// fix the node refetched the true chain forever while Append rejected every
// block (a permanent wedge the simulation harness found — seed-replayable).
//
// The resolution mirrors recovery: discard the tentative suffix (never
// definite state — ReplaceSuffix refuses that by construction) and re-adopt
// the cluster's chain from our definite boundary. The refetch-and-adopt runs
// inline on the round loop so a memoized WRB redelivery of the divergent
// proposal cannot re-append it mid-resync; definiteness of the adopted
// blocks still derives only from the depth-(f+2) rule over proposer-signed
// linkage, exactly like every other catch-up adoption. On timeout (no peer
// serves the gap) the truncation stands and the normal paths take over —
// at worst the old tentative blocks are re-delivered by WRB and the next
// conflicting segment retries. seg is the already-verified catch-up segment
// whose first block exposed the conflict; it is re-buffered after the
// truncation so the re-adoption below serves it from memory instead of
// refetching rounds the node just paid to verify. Returns true when it made
// progress (the caller restarts its loop).
func (in *Instance) resyncTentativeSuffix(ri uint64, seg []types.Block) bool {
	def := in.chain.Definite()
	if def >= ri-1 {
		// The conflicting parent is definite. Honest peers can never serve
		// a block conflicting with a definite round (safety), so this is
		// forged catch-up data: drop it, keep the chain.
		return false
	}
	if err := in.chain.ReplaceSuffix(def+1, nil); err != nil {
		return false
	}
	in.metrics.TentativeResyncs.Add(1)
	// The truncation moved the fetch window down to (def, def+window]; the
	// consumed segment's rounds [ri, ...) fall back inside it.
	in.data.storeFetched(seg)
	// Re-adopt from the definite boundary. The truncation moved the fetch
	// window down, so peers' responses for the uncovered rounds are now
	// storable; the range syncer (if alive) refetches on its own, and the
	// explicit per-round requests below cover the case where it already
	// gave up while we were wedged.
	deadline := time.Now().Add(2 * time.Second)
	for in.chain.Tip() < ri && time.Now().Before(deadline) {
		next := in.chain.Tip() + 1
		if seg := in.data.takeSegment(next, 2*in.data.opts.catchUpBatch); len(seg) > 0 {
			for i := range seg {
				if in.chain.Append(seg[i]) != nil {
					break
				}
				in.metrics.TentativeBlocks.Add(1)
			}
			continue
		}
		ch := in.data.updateChan()
		in.data.requestBlock(next)
		select {
		case <-ch:
		case <-time.After(50 * time.Millisecond):
		case <-in.stop:
			return true
		}
	}
	if tip := in.chain.Tip(); tip > uint64(in.f)+2 {
		in.finalizeThrough(tip - uint64(in.f) - 2)
	}
	return true
}

// finalizeThrough marks rounds ≤ r definite and emits them.
func (in *Instance) finalizeThrough(r uint64) {
	for _, round := range in.chain.MarkDefinite(r) {
		blk, ok := in.chain.BlockAt(round)
		if !ok {
			continue
		}
		if in.cfg.Persist != nil {
			// Durability before visibility: a crash after this point
			// replays the block; a crash before it re-decides it.
			if err := in.cfg.Persist(blk); err != nil {
				// Persistence failure is fatal for durability but not for
				// agreement; keep running, the operator sees the error
				// through the store.
				_ = err
			}
		}
		in.metrics.DefiniteBlocks.Add(1)
		in.metrics.DefiniteTxs.Add(uint64(len(blk.Body.Txs)))
		in.registerConvictions(blk)
		in.event(round, EventDefinite)
		if in.cfg.Pool != nil {
			in.cfg.Pool.MarkCommitted(blk.Body.Txs)
		}
		if in.cfg.OnDecide != nil {
			in.cfg.OnDecide(blk)
		}
		in.data.drop(blk.Header().BodyHash)
	}
	// Protocol state below the definite boundary can never be needed again.
	def := in.chain.Definite()
	if def > 0 {
		in.cfg.WRB.GC(in.cfg.Instance, def)
		in.cfg.OBBC.GC(in.cfg.Instance, def)
		in.pruneProposals(def)
	}
}

// acceptHeader is the WRB accept predicate: vote for a header only when its
// body is locally available (§6.1.1). A miss proactively pulls the body, so
// a node that dissemination skipped (possible under gossip, §7.2.2) chases
// the data inside its delivery window instead of timing out.
func (in *Instance) acceptHeader(hdr types.SignedHeader) bool {
	if in.data.have(hdr.Header.BodyHash) {
		return true
	}
	in.data.maybeRequestBody(hdr.Header.BodyHash)
	return false
}

// validateLink checks that hdr extends the local chain at round ri.
func (in *Instance) validateLink(hdr types.SignedHeader, ri uint64) bool {
	h := hdr.Header
	return h.Round == ri && h.PrevHash == in.chain.TipHash()
}

// panicAbout RB-broadcasts the inconsistency proof (lines b6–b7) and reports
// whether a proof could be constructed. The proof loops back through
// OnPanic, which triggers the recovery.
func (in *Instance) panicAbout(hdr types.SignedHeader, ri uint64) bool {
	prev, ok := in.chain.SignedAt(ri - 1)
	if !ok {
		// Round 1 inconsistency: the predecessor is the unsigned genesis,
		// so no two-signature proof exists. The deviation is local-only
		// (the proposer's header does not extend genesis), and WRB
		// agreement means every correct node saw the same header.
		in.metrics.NilRounds.Add(1)
		return false
	}
	proof := Proof{Curr: hdr, Prev: prev}
	if proof.VerifyPooled(in.cfg.Registry, in.cfg.VerifyPool) != nil {
		return false
	}
	in.fd.invalidate() // Byzantine activity detected (§6.1.1)
	_, err := in.cfg.RB.Broadcast(proof.Marshal())
	return err == nil
}

// proposeOwn builds and disseminates this node's block for round ri: body on
// the data path, header through WRB (lines 6–11).
func (in *Instance) proposeOwn(ri uint64) {
	if in.cfg.Equivocate {
		in.proposeEquivocating(ri)
		return
	}
	if in.cfg.MaxPending > 0 && in.chain.Tip()-in.chain.Definite() > uint64(in.cfg.MaxPending) {
		// Flow control: too many undecided blocks outstanding (§7.2).
		return
	}
	blk, err := in.buildBlock(ri, in.chain.TipHash())
	if err != nil {
		return
	}
	in.data.broadcastBody(&blk.Body)
	in.event(ri, EventBlockProposed)
	in.cfg.WRB.Broadcast(blk.Signed)
	in.event(ri, EventHeaderProposed)
}

// preparePiggyback builds this node's block for round parent.Round+1 on top
// of parent, disseminates the body, and returns the encoded signed header to
// ride on the current vote — but only if this node is that round's proposer.
func (in *Instance) preparePiggyback(parent types.SignedHeader) []byte {
	nextRound := parent.Header.Round + 1
	// The next round's proposer is computed as if parent is decided.
	next := in.nextProposerAfter(parent)
	if next != in.id {
		return nil
	}
	if in.cfg.MaxPending > 0 && in.chain.Tip()-in.chain.Definite() > uint64(in.cfg.MaxPending) {
		return nil
	}
	blk, err := in.buildBlock(nextRound, parent.HeaderHash())
	if err != nil {
		return nil
	}
	in.data.broadcastBody(&blk.Body)
	in.event(nextRound, EventBlockProposed)
	e := types.NewEncoder(192)
	blk.Signed.Encode(e)
	in.event(nextRound, EventHeaderProposed)
	return e.Bytes()
}

// nextProposerAfter computes round parent.Round+1's attempt-0 proposer given
// that parent decides its round. It mirrors schedule.proposerFor but with
// the parent header supplying the not-yet-appended round.
func (in *Instance) nextProposerAfter(parent types.SignedHeader) flcrypto.NodeID {
	round := parent.Header.Round + 1
	order := in.sched.orderFor(in.chain, round)
	start := 0
	for i, id := range order {
		if id == parent.Header.Proposer {
			start = i + 1
			break
		}
	}
	skip := map[flcrypto.NodeID]bool{parent.Header.Proposer: true}
	if round >= 2 {
		lo := uint64(1)
		if round > uint64(in.f) {
			lo = round - uint64(in.f)
		}
		for _, p := range in.chain.ProposersOf(lo, round-2) {
			skip[p] = true
		}
	}
	for i := 0; ; i++ {
		cand := order[(start+i)%in.n]
		if !skip[cand] && !in.sched.excluded(cand, round) {
			return cand
		}
	}
}

// buildBlock assembles and signs a block for round ri extending prevHash.
// Pending conviction transactions (at most f — one per possible culprit)
// ride ahead of the client batch, putting observed equivocation proofs on
// the chain at the proposer's next turn.
//
// Each (round, parent) slot is signed at most once: redoing a slot (after
// an aborted attempt or a recovery that reinstalled the same parent)
// re-proposes the memoized block verbatim. Signing two different blocks for
// one slot is exactly the offense the evidence layer convicts, so a correct
// node must never do it.
func (in *Instance) buildBlock(ri uint64, prevHash flcrypto.Hash) (types.Block, error) {
	key := propKey{round: ri, prev: prevHash}
	in.propMu.Lock()
	if blk, ok := in.propCache[key]; ok {
		in.propMu.Unlock()
		return blk, nil
	}
	in.propMu.Unlock()

	var txs []types.Transaction
	if in.cfg.Evidence != nil && !in.cfg.Equivocate {
		txs = in.cfg.Evidence.PendingTxs(in.f)
	}
	if in.cfg.Pool != nil {
		txs = append(txs, in.cfg.Pool.NextBatch(in.cfg.BatchSize)...)
	}
	blk, err := types.NewBlock(in.cfg.Instance, ri, in.id, prevHash, txs, in.cfg.Priv)
	if err != nil {
		return types.Block{}, fmt.Errorf("core: build block: %w", err)
	}
	in.metrics.SignOps.Add(1)

	in.propMu.Lock()
	if prev, ok := in.propCache[key]; ok {
		// A concurrent builder (piggyback vs explicit push) won the slot:
		// discard ours and use the already-signed block.
		blk = prev
		in.propMu.Unlock()
		return blk, nil
	}
	if in.cfg.PersistProposal != nil {
		// Memoize durably before the block becomes publishable — the
		// cache insert below is what makes the signature reachable by
		// concurrent builders, so the persist must precede it (under
		// propMu, which also guarantees only the slot winner is ever
		// persisted). A persist failure refuses the proposal outright:
		// signing without the durable memo would re-open the
		// restart-amnesia equivocation the proposal log exists to close.
		if err := in.cfg.PersistProposal(blk); err != nil {
			in.propMu.Unlock()
			return types.Block{}, fmt.Errorf("core: persist proposal: %w", err)
		}
	}
	if in.propCache == nil {
		in.propCache = make(map[propKey]types.Block)
	}
	in.propCache[key] = blk
	in.propMu.Unlock()
	return blk, nil
}

// pruneProposals drops memoized proposals at definite rounds (they can never
// be re-proposed: recovery cannot reach below the definite boundary).
func (in *Instance) pruneProposals(definite uint64) {
	in.propMu.Lock()
	for key := range in.propCache {
		if key.round <= definite {
			delete(in.propCache, key)
		}
	}
	in.propMu.Unlock()
	if in.cfg.PruneProposals != nil {
		in.cfg.PruneProposals(definite)
	}
}

// proposeEquivocating is the §7.4.2 Byzantine behavior: split the cluster
// into two random halves and send each a different version of the block.
func (in *Instance) proposeEquivocating(ri uint64) {
	prev := in.chain.TipHash()
	blkA, errA := in.buildBlock(ri, prev)
	blkB, errB := in.buildBlock(ri, prev)
	if errA != nil || errB != nil {
		return
	}
	if blkA.Hash() == blkB.Hash() {
		// Identical blocks (empty pool): derive a perturbed version. The
		// original block's body is frozen (its encoding is memoized), so the
		// variant is built as a fresh body over a fresh transaction slice
		// rather than mutated in place.
		txs := append(append([]types.Transaction(nil), blkB.Body.Txs...),
			types.Transaction{Client: ^uint64(0), Seq: ri})
		body := types.Body{Txs: txs}
		hdr := blkB.Signed.Header
		hdr.BodyHash = body.Hash()
		hdr.TxCount = uint32(len(txs))
		signed, err := hdr.Sign(in.cfg.Priv)
		if err != nil {
			return
		}
		blkB = types.Block{Signed: signed, Body: body}
	}
	perm := in.rng.Perm(in.n)
	half := in.n / 2
	for idx, p := range perm {
		to := flcrypto.NodeID(p)
		blk := &blkA
		if idx >= half {
			blk = &blkB
		}
		in.data.sendBodyTo(to, &blk.Body)
		in.cfg.WRB.PushTo(to, blk.Signed)
	}
	in.event(ri, EventBlockProposed)
	in.event(ri, EventHeaderProposed)
}

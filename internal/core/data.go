package core

import (
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/flcrypto"
	"repro/internal/gossip"
	"repro/internal/transport"
	"repro/internal/types"
)

// Wire kinds on the data path (§6.1.1: block bodies travel asynchronously,
// outside the consensus path). Body payloads travel as self-describing
// compress frames, so compression is a per-sender choice the receiver never
// has to be configured for.
const (
	kindBody      = 1 // proactive body dissemination (framed body)
	kindReqBody   = 2 // body pull by hash
	kindRespBody  = 3 // pull response (framed body)
	kindReqBlock  = 4 // definite-block pull by round (recovery catch-up)
	kindRespBlock = 5
)

// dataOpts selects the dissemination and encoding strategy of a data path.
type dataOpts struct {
	// gossipProto, when useGossip is set, carries rumor messages (its own
	// mux tag; see internal/gossip).
	gossipProto transport.ProtoID
	useGossip   bool
	fanout      int
	// compress DEFLATE-frames body payloads at least compress.MinSize long
	// (the paper's conclusion for large σ).
	compress bool
}

// dataPath owns body dissemination, the body store, and block catch-up for
// one worker instance.
type dataPath struct {
	mux   *transport.Mux
	proto transport.ProtoID
	reg   *flcrypto.Registry
	pool  *flcrypto.VerifyPool // nil = synchronous verification
	chain *Chain
	opts  dataOpts
	rumor *gossip.Disseminator // nil on the clique overlay

	// onBody is invoked (on the transport goroutine) when a new body
	// arrives, so the instance can re-kick a pending WRB delivery.
	onBody func(bodyHash flcrypto.Hash)
	// onFetched is invoked when a definite block arrives on the catch-up
	// path, so the instance can divert from a stuck round to adopt it.
	onFetched func(round uint64)

	mu      sync.Mutex
	bodies  map[flcrypto.Hash]types.Body
	fetched map[uint64]types.Block // recovery catch-up responses by round
	update  chan struct{}

	// lastPull rate-limits the proactive pull-on-accept-miss (one request
	// per hash per interval); see maybeRequestBody.
	lastPull     flcrypto.Hash
	lastPullTime time.Time
}

// pullRetryInterval paces proactive body pulls from the accept predicate.
const pullRetryInterval = 5 * time.Millisecond

// maybeRequestBody broadcasts a pull for hash unless one was just sent —
// called from the vote-accept path so a node a gossip rumor missed recovers
// the body before its delivery timer runs out, not after.
func (dp *dataPath) maybeRequestBody(hash flcrypto.Hash) {
	now := time.Now()
	dp.mu.Lock()
	if dp.lastPull == hash && now.Sub(dp.lastPullTime) < pullRetryInterval {
		dp.mu.Unlock()
		return
	}
	dp.lastPull = hash
	dp.lastPullTime = now
	dp.mu.Unlock()
	e := types.NewEncoder(40)
	e.Uint8(kindReqBody)
	e.Hash(hash)
	dp.mux.Broadcast(dp.proto, e.Bytes())
}

// maxStoredBodies bounds the body store; bodies of definite blocks live in
// the chain, so the store only needs to cover in-flight rounds.
const maxStoredBodies = 4096

func newDataPath(mux *transport.Mux, proto transport.ProtoID, reg *flcrypto.Registry, pool *flcrypto.VerifyPool, chain *Chain, opts dataOpts) *dataPath {
	dp := &dataPath{
		mux:    mux,
		proto:  proto,
		reg:    reg,
		pool:   pool,
		chain:  chain,
		opts:   opts,
		bodies: make(map[flcrypto.Hash]types.Body),
		update: make(chan struct{}),
	}
	// Every data-path message has a pull/retry fallback (bodies are
	// re-pullable by hash, catch-up blocks are re-requested in a loop), so
	// the mailbox drops on overflow: a body flood — the cheapest Byzantine
	// flooding vector, since bodies are the largest messages — costs the
	// flooder its own traffic and cannot stall the consensus protocols.
	mux.HandleWith(proto, dp.onWire, transport.MailboxConfig{Policy: transport.DropNewest})
	if opts.useGossip {
		dp.rumor = gossip.New(gossip.Config{
			Mux:     mux,
			Proto:   opts.gossipProto,
			Fanout:  opts.fanout,
			Deliver: dp.ingestFrame,
		})
	}
	return dp
}

// frameBody encodes a body as a self-describing compress frame. With
// compression off the frame stores the bytes verbatim (one tag byte).
func (dp *dataPath) frameBody(body *types.Body) []byte {
	enc := body.Marshal()
	if dp.opts.compress {
		return compress.Frame(enc, 0)
	}
	return compress.Frame(enc, len(enc)+1) // threshold above size: stored
}

// ingestFrame decodes and stores a framed body arriving from dissemination
// (clique push, gossip rumor, or pull response).
func (dp *dataPath) ingestFrame(frame []byte) {
	enc, err := compress.Unframe(frame, 0)
	if err != nil {
		return
	}
	d := types.NewDecoder(enc)
	body := types.DecodeBody(d)
	if d.Finish() != nil {
		return
	}
	dp.store(body)
}

// have reports whether the body for hash is obtainable locally. The empty
// body needs no dissemination.
func (dp *dataPath) have(hash flcrypto.Hash) bool {
	empty := types.Body{}
	if hash == empty.Hash() {
		return true
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	_, ok := dp.bodies[hash]
	return ok
}

// get returns the stored body for hash.
func (dp *dataPath) get(hash flcrypto.Hash) (types.Body, bool) {
	empty := types.Body{}
	if hash == empty.Hash() {
		return empty, true
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	b, ok := dp.bodies[hash]
	return b, ok
}

func (dp *dataPath) store(body types.Body) {
	hash := body.Hash()
	dp.mu.Lock()
	if _, dup := dp.bodies[hash]; dup {
		dp.mu.Unlock()
		return
	}
	if len(dp.bodies) >= maxStoredBodies {
		// Evict an arbitrary entry; losing a body is safe (it can be
		// re-pulled), it only costs latency.
		for k := range dp.bodies {
			delete(dp.bodies, k)
			break
		}
	}
	dp.bodies[hash] = body
	close(dp.update)
	dp.update = make(chan struct{})
	dp.mu.Unlock()
	if dp.onBody != nil {
		dp.onBody(hash)
	}
}

// drop removes bodies that have been absorbed into definite blocks.
func (dp *dataPath) drop(hash flcrypto.Hash) {
	dp.mu.Lock()
	delete(dp.bodies, hash)
	dp.mu.Unlock()
}

// broadcastBody pushes a body to every node ("a node broadcasts a block as
// soon as the block is ready", §6.1.1) — or originates a gossip rumor when
// the gossip overlay is selected (§7.2.2's alternative).
func (dp *dataPath) broadcastBody(body *types.Body) error {
	// The origin keeps its own body first: gossip does not self-deliver,
	// and the proposer must be able to vote for (and serve pulls of) its
	// own block.
	dp.store(*body)
	frame := dp.frameBody(body)
	if dp.rumor != nil {
		return dp.rumor.Broadcast(frame)
	}
	e := types.NewEncoder(8 + len(frame))
	e.Uint8(kindBody)
	e.Bytes32(frame)
	return dp.mux.Broadcast(dp.proto, e.Bytes())
}

// sendBodyTo sends a body to a single node (used by the Byzantine
// equivocator harness behavior, §7.4.2).
func (dp *dataPath) sendBodyTo(to flcrypto.NodeID, body *types.Body) error {
	frame := dp.frameBody(body)
	e := types.NewEncoder(8 + len(frame))
	e.Uint8(kindBody)
	e.Bytes32(frame)
	return dp.mux.Send(dp.proto, to, e.Bytes())
}

func (dp *dataPath) onWire(from flcrypto.NodeID, buf []byte) {
	d := types.NewDecoder(buf)
	switch d.Uint8() {
	case kindBody, kindRespBody:
		frame := d.Bytes32()
		if d.Finish() != nil {
			return
		}
		dp.ingestFrame(frame)
	case kindReqBody:
		hash := d.Hash()
		if d.Finish() != nil {
			return
		}
		if body, ok := dp.get(hash); ok {
			frame := dp.frameBody(&body)
			e := types.NewEncoder(8 + len(frame))
			e.Uint8(kindRespBody)
			e.Bytes32(frame)
			dp.mux.Send(dp.proto, from, e.Bytes())
		}
	case kindReqBlock:
		round := d.Uint64()
		if d.Finish() != nil {
			return
		}
		// Serve only definite blocks: tentative ones may still change.
		if round == 0 || round > dp.chain.Definite() {
			return
		}
		if blk, ok := dp.chain.BlockAt(round); ok {
			e := types.NewEncoder(64 + blk.Body.Size())
			e.Uint8(kindRespBlock)
			blk.Encode(e)
			dp.mux.Send(dp.proto, from, e.Bytes())
		}
	case kindRespBlock:
		blk := types.DecodeBlock(d)
		if d.Finish() != nil {
			return
		}
		if !blk.Signed.VerifyPooled(dp.reg, dp.pool) || blk.CheckBody() != nil {
			return
		}
		dp.mu.Lock()
		if dp.fetched == nil {
			dp.fetched = make(map[uint64]types.Block)
		}
		dp.fetched[blk.Header().Round] = blk
		close(dp.update)
		dp.update = make(chan struct{})
		dp.mu.Unlock()
		if dp.onFetched != nil {
			dp.onFetched(blk.Header().Round)
		}
	}
}

// waitBody blocks until the body referenced by hdr is available, pulling it
// from peers ("p has to retrieve the block from a correct node q that has
// it", §6.1.1). Returns false if aborted.
func (dp *dataPath) waitBody(hdr types.BlockHeader, abort <-chan struct{}) (types.Body, bool) {
	interval := 10 * time.Millisecond
	for {
		dp.mu.Lock()
		body, ok := dp.bodies[hdr.BodyHash]
		ch := dp.update
		dp.mu.Unlock()
		if hdr.TxCount == 0 {
			empty := types.Body{}
			if empty.Hash() == hdr.BodyHash {
				return empty, true
			}
		}
		if ok {
			return body, true
		}
		// Pull.
		e := types.NewEncoder(40)
		e.Uint8(kindReqBody)
		e.Hash(hdr.BodyHash)
		dp.mux.Broadcast(dp.proto, e.Bytes())
		select {
		case <-ch:
		case <-time.After(interval):
			if interval < time.Second {
				interval *= 2
			}
		case <-abort:
			return types.Body{}, false
		}
	}
}

// sendBlockTo pushes the definite block at round to one peer unsolicited —
// the catch-up fast path for a node observed voting on an already-definite
// round.
func (dp *dataPath) sendBlockTo(to flcrypto.NodeID, round uint64) {
	if round == 0 || round > dp.chain.Definite() {
		return
	}
	blk, ok := dp.chain.BlockAt(round)
	if !ok {
		return
	}
	e := types.NewEncoder(64 + blk.Body.Size())
	e.Uint8(kindRespBlock)
	blk.Encode(e)
	dp.mux.Send(dp.proto, to, e.Bytes())
}

// takeFetched pops the catch-up block for round, if one arrived.
func (dp *dataPath) takeFetched(round uint64) (types.Block, bool) {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	blk, ok := dp.fetched[round]
	if ok {
		delete(dp.fetched, round)
	}
	return blk, ok
}

// requestBlock broadcasts one catch-up request for round.
func (dp *dataPath) requestBlock(round uint64) {
	e := types.NewEncoder(16)
	e.Uint8(kindReqBlock)
	e.Uint64(round)
	dp.mux.Broadcast(dp.proto, e.Bytes())
}

// fetchBlock retrieves the definite block at round from peers, for recovery
// catch-up. Returns false if aborted.
func (dp *dataPath) fetchBlock(round uint64, abort <-chan struct{}) (types.Block, bool) {
	interval := 20 * time.Millisecond
	for {
		dp.mu.Lock()
		blk, ok := dp.fetched[round]
		ch := dp.update
		dp.mu.Unlock()
		if ok {
			return blk, true
		}
		e := types.NewEncoder(16)
		e.Uint8(kindReqBlock)
		e.Uint64(round)
		dp.mux.Broadcast(dp.proto, e.Bytes())
		select {
		case <-ch:
		case <-time.After(interval):
			if interval < time.Second {
				interval *= 2
			}
		case <-abort:
			return types.Block{}, false
		}
	}
}

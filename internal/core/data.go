package core

import (
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/flcrypto"
	"repro/internal/gossip"
	"repro/internal/transport"
	"repro/internal/types"
)

// Wire kinds on the data path (§6.1.1: block bodies travel asynchronously,
// outside the consensus path). Body payloads travel as self-describing
// compress frames, so compression is a per-sender choice the receiver never
// has to be configured for.
const (
	kindBody      = 1 // proactive body dissemination (framed body)
	kindReqBody   = 2 // body pull by hash
	kindRespBody  = 3 // pull response (framed body)
	kindReqBlock  = 4 // definite-block pull by round (recovery catch-up)
	kindRespBlock = 5
	kindReqRange  = 6 // streaming catch-up: [from, to) definite rounds from one peer
	kindRespRange = 7 // one size-capped batch of a range stream
	kindTipHint   = 8 // definite-tip announcement pushed to a lagging peer

	// Snapshot transfer (see snapsync.go): the recovery path for a node
	// stranded below every peer's retained history, where range sync cannot
	// help because the rounds it needs have been compacted away everywhere.
	kindReqSnapMeta   = 9  // advertise your freshest checkpoint (reqID)
	kindRespSnapMeta  = 10 // checkpoint advertisement (base, state round, size, hash)
	kindReqSnapChunk  = 11 // one size-capped chunk of a pinned checkpoint
	kindRespSnapChunk = 12 // chunk payload + cumulative hash-chain value
	kindReqAnchor     = 13 // header-hash attestation request for one round
	kindRespAnchor    = 14 // attestation response (hash or abstention)
)

// Range-stream tuning: a batch never exceeds maxRangeBatchBytes of encoded
// blocks (so one response cannot monopolize the wire), and one request is
// answered with at most maxBatchesPerReq batches (so the requester paces the
// stream — it re-requests from its new frontier once a window is consumed,
// which also keeps a crashed requester from being flooded forever).
const (
	maxRangeBatchBytes = 512 << 10
	maxBatchesPerReq   = 8
	// maxRangeRespBlocks hard-bounds a decoded batch regardless of the
	// sender's claimed configuration.
	maxRangeRespBlocks = 4096
)

// dataOpts selects the dissemination and encoding strategy of a data path.
type dataOpts struct {
	// gossipProto, when useGossip is set, carries rumor messages (its own
	// mux tag; see internal/gossip).
	gossipProto transport.ProtoID
	useGossip   bool
	fanout      int
	// compress DEFLATE-frames body payloads at least compress.MinSize long
	// (the paper's conclusion for large σ).
	compress bool
	// catchUpBatch is the block count per range-sync batch (flo.Config's
	// CatchUpBatch; default 64). It doubles as the behind-threshold: a node
	// ≥ one batch behind switches from per-round pulls to range sync.
	catchUpBatch int
	// snapChunkBytes caps one snapshot-transfer chunk (default 256 KiB).
	// Small values force multi-chunk transfers — the fault-injection tests
	// use that to exercise resume.
	snapChunkBytes int
}

// dataPath owns body dissemination, the body store, and block catch-up for
// one worker instance.
type dataPath struct {
	mux   *transport.Mux
	proto transport.ProtoID
	reg   *flcrypto.Registry
	pool  *flcrypto.VerifyPool // nil = synchronous verification
	chain *Chain
	opts  dataOpts
	rumor *gossip.Disseminator // nil on the clique overlay

	// onBody is invoked (on the transport goroutine) when a new body
	// arrives, so the instance can re-kick a pending WRB delivery.
	onBody func(bodyHash flcrypto.Hash)
	// onFetched is invoked when a definite block arrives on the catch-up
	// path, so the instance can divert from a stuck round to adopt it.
	onFetched func(round uint64)

	// metrics is the owning instance's counter block (catch-up request
	// accounting); never nil.
	metrics *Metrics
	// ranger drives streaming range catch-up (see rangesync.go).
	ranger *rangeSyncer
	// snaps drives snapshot transfer for stranded nodes (see snapsync.go);
	// may be nil on bare data paths (protocol-level tests).
	snaps *snapSyncer

	mu     sync.Mutex
	bodies map[flcrypto.Hash]types.Body
	// fetched holds catch-up blocks by round, pending adoption by the round
	// loop. Every insert path verifies signature and body first, so
	// adoption only needs to enforce chain linkage. The map is bounded to a
	// window above the chain tip (see storeFetched): a Byzantine flood of
	// validly-signed far-future blocks costs the flooder its traffic, not
	// this node's memory.
	fetched map[uint64]types.Block
	update  chan struct{}

	// lastPull rate-limits the proactive pull-on-accept-miss per body hash
	// (one request per hash per interval); see maybeRequestBody.
	lastPull map[flcrypto.Hash]time.Time
}

// pullRetryInterval paces proactive body pulls from the accept predicate.
const pullRetryInterval = 5 * time.Millisecond

// maxPullEntries bounds the pacing map; beyond it, expired entries are swept
// and — if everything is fresh — arbitrary entries are evicted (re-sending a
// pull early is harmless, growing without bound is not).
const maxPullEntries = 1024

// maybeRequestBody broadcasts a pull for hash unless one was recently sent
// for that same hash — called from the vote-accept path so a node a gossip
// rumor missed recovers the body before its delivery timer runs out, not
// after. Pacing is per hash: misses alternating between two hashes (e.g. the
// current round's body and a piggybacked next block) must not bypass the
// limiter, and a new hash must not reset another hash's pacing window.
func (dp *dataPath) maybeRequestBody(hash flcrypto.Hash) {
	now := time.Now()
	dp.mu.Lock()
	if t, ok := dp.lastPull[hash]; ok && now.Sub(t) < pullRetryInterval {
		dp.mu.Unlock()
		return
	}
	if len(dp.lastPull) >= maxPullEntries {
		for h, t := range dp.lastPull {
			if now.Sub(t) >= pullRetryInterval {
				delete(dp.lastPull, h)
			}
		}
		for h := range dp.lastPull {
			if len(dp.lastPull) < maxPullEntries {
				break
			}
			delete(dp.lastPull, h)
		}
	}
	dp.lastPull[hash] = now
	dp.mu.Unlock()
	e := types.GetEncoder(40)
	e.Uint8(kindReqBody)
	e.Hash(hash)
	dp.mux.Broadcast(dp.proto, e.Bytes())
	e.Release()
}

// maxStoredBodies bounds the body store; bodies of definite blocks live in
// the chain, so the store only needs to cover in-flight rounds.
const maxStoredBodies = 4096

func newDataPath(mux *transport.Mux, proto transport.ProtoID, reg *flcrypto.Registry, pool *flcrypto.VerifyPool, chain *Chain, metrics *Metrics, opts dataOpts) *dataPath {
	if opts.catchUpBatch <= 0 {
		opts.catchUpBatch = 64
	}
	if opts.snapChunkBytes <= 0 {
		opts.snapChunkBytes = defaultSnapChunkBytes
	}
	dp := &dataPath{
		mux:      mux,
		proto:    proto,
		reg:      reg,
		pool:     pool,
		chain:    chain,
		metrics:  metrics,
		opts:     opts,
		bodies:   make(map[flcrypto.Hash]types.Body),
		fetched:  make(map[uint64]types.Block),
		update:   make(chan struct{}),
		lastPull: make(map[flcrypto.Hash]time.Time),
	}
	// Every data-path message has a pull/retry fallback (bodies are
	// re-pullable by hash, catch-up blocks are re-requested in a loop), so
	// the mailbox drops on overflow: a body flood — the cheapest Byzantine
	// flooding vector, since bodies are the largest messages — costs the
	// flooder its own traffic and cannot stall the consensus protocols.
	mux.HandleWith(proto, dp.onWire, transport.MailboxConfig{Policy: transport.DropNewest})
	if opts.useGossip {
		dp.rumor = gossip.New(gossip.Config{
			Mux:     mux,
			Proto:   opts.gossipProto,
			Fanout:  opts.fanout,
			Deliver: dp.ingestFrame,
		})
	}
	return dp
}

// frameBody encodes a body as a self-describing compress frame. With
// compression off the frame stores the bytes verbatim (one tag byte).
func (dp *dataPath) frameBody(body *types.Body) []byte {
	enc := body.Marshal()
	if dp.opts.compress {
		return compress.Frame(enc, 0)
	}
	return compress.Frame(enc, len(enc)+1) // threshold above size: stored
}

// ingestFrame decodes and stores a framed body arriving from dissemination
// (clique push, gossip rumor, or pull response).
func (dp *dataPath) ingestFrame(frame []byte) {
	enc, err := compress.Unframe(frame, 0)
	if err != nil {
		return
	}
	d := types.NewDecoder(enc)
	body := types.DecodeBody(d)
	if d.Finish() != nil {
		return
	}
	dp.store(body)
}

// have reports whether the body for hash is obtainable locally. The empty
// body needs no dissemination.
func (dp *dataPath) have(hash flcrypto.Hash) bool {
	if hash == types.EmptyBodyHash() {
		return true
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	_, ok := dp.bodies[hash]
	return ok
}

// get returns the stored body for hash.
func (dp *dataPath) get(hash flcrypto.Hash) (types.Body, bool) {
	if hash == types.EmptyBodyHash() {
		return types.Body{}, true
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	b, ok := dp.bodies[hash]
	return b, ok
}

func (dp *dataPath) store(body types.Body) {
	hash := body.Hash()
	dp.mu.Lock()
	if _, dup := dp.bodies[hash]; dup {
		dp.mu.Unlock()
		return
	}
	if len(dp.bodies) >= maxStoredBodies {
		// Evict an arbitrary entry; losing a body is safe (it can be
		// re-pulled), it only costs latency.
		for k := range dp.bodies {
			delete(dp.bodies, k)
			break
		}
	}
	dp.bodies[hash] = body
	close(dp.update)
	dp.update = make(chan struct{})
	dp.mu.Unlock()
	if dp.onBody != nil {
		dp.onBody(hash)
	}
}

// drop removes bodies that have been absorbed into definite blocks.
func (dp *dataPath) drop(hash flcrypto.Hash) {
	dp.mu.Lock()
	delete(dp.bodies, hash)
	dp.mu.Unlock()
}

// broadcastBody pushes a body to every node ("a node broadcasts a block as
// soon as the block is ready", §6.1.1) — or originates a gossip rumor when
// the gossip overlay is selected (§7.2.2's alternative).
func (dp *dataPath) broadcastBody(body *types.Body) error {
	// The origin keeps its own body first: gossip does not self-deliver,
	// and the proposer must be able to vote for (and serve pulls of) its
	// own block.
	dp.store(*body)
	frame := dp.frameBody(body)
	if dp.rumor != nil {
		return dp.rumor.Broadcast(frame)
	}
	e := types.GetEncoder(8 + len(frame))
	e.Uint8(kindBody)
	e.Bytes32(frame)
	err := dp.mux.Broadcast(dp.proto, e.Bytes())
	e.Release()
	return err
}

// sendBodyTo sends a body to a single node (used by the Byzantine
// equivocator harness behavior, §7.4.2).
func (dp *dataPath) sendBodyTo(to flcrypto.NodeID, body *types.Body) error {
	frame := dp.frameBody(body)
	e := types.GetEncoder(8 + len(frame))
	e.Uint8(kindBody)
	e.Bytes32(frame)
	err := dp.mux.Send(dp.proto, to, e.Bytes())
	e.Release()
	return err
}

func (dp *dataPath) onWire(from flcrypto.NodeID, buf []byte) {
	d := types.NewDecoder(buf)
	switch d.Uint8() {
	case kindBody, kindRespBody:
		frame := d.Bytes32()
		if d.Finish() != nil {
			return
		}
		dp.ingestFrame(frame)
	case kindReqBody:
		hash := d.Hash()
		if d.Finish() != nil {
			return
		}
		if body, ok := dp.get(hash); ok {
			frame := dp.frameBody(&body)
			e := types.GetEncoder(8 + len(frame))
			e.Uint8(kindRespBody)
			e.Bytes32(frame)
			dp.mux.Send(dp.proto, from, e.Bytes())
			e.Release()
		}
	case kindReqBlock:
		round := d.Uint64()
		if d.Finish() != nil {
			return
		}
		// Serve only definite blocks: tentative ones may still change.
		if round == 0 || round > dp.chain.Definite() {
			return
		}
		if blk, ok := dp.chain.BlockAt(round); ok {
			e := types.GetEncoder(64 + blk.Body.Size())
			e.Uint8(kindRespBlock)
			blk.Encode(e)
			dp.mux.Send(dp.proto, from, e.Bytes())
			e.Release()
		}
	case kindRespBlock:
		blk := types.DecodeBlock(d)
		if d.Finish() != nil {
			return
		}
		if !blk.Signed.VerifyPooled(dp.reg, dp.pool) || blk.CheckBody() != nil {
			return
		}
		dp.storeFetched([]types.Block{blk})
	case kindReqRange:
		reqID := d.Uint64()
		lo := d.Uint64()
		hi := d.Uint64()
		if d.Finish() != nil {
			return
		}
		dp.serveRange(from, reqID, lo, hi)
	case kindRespRange:
		reqID := d.Uint64()
		serverDef := d.Uint64()
		firstAvail := d.Uint64()
		more := d.Bool()
		count := d.Uint32()
		if count > maxRangeRespBlocks {
			return
		}
		blks := make([]types.Block, 0, count)
		for i := uint32(0); i < count && d.Err() == nil; i++ {
			blks = append(blks, types.DecodeBlock(d))
		}
		if d.Finish() != nil {
			return
		}
		// Pipeline the batch's signature checks through the shared verify
		// pool, then keep only the valid blocks.
		valid := dp.verifyBlocks(blks)
		kept := blks[:0]
		for i := range blks {
			if valid[i] {
				kept = append(kept, blks[i])
			}
		}
		stored := dp.storeFetched(kept)
		dp.metrics.CatchUpRangeBlocks.Add(uint64(stored))
		if dp.ranger != nil {
			dp.ranger.onBatch(reqID, serverDef, firstAvail, more, stored)
		}
	case kindTipHint:
		def := d.Uint64()
		if d.Finish() != nil {
			return
		}
		if dp.ranger != nil {
			dp.ranger.noteBehind(def)
		}
	case kindReqSnapMeta:
		reqID := d.Uint64()
		if d.Finish() != nil {
			return
		}
		if dp.snaps != nil {
			dp.snaps.serveMeta(from, reqID)
		}
	case kindRespSnapMeta:
		reqID := d.Uint64()
		var meta snapMeta
		meta.present = d.Bool()
		if meta.present {
			meta.baseRound = d.Uint64()
			meta.baseHash = d.Hash()
			meta.stateRound = d.Uint64()
			meta.totalLen = d.Uint32()
			meta.snapHash = d.Hash()
			meta.chunkSize = d.Uint32()
		}
		if d.Finish() != nil {
			return
		}
		if dp.snaps != nil {
			dp.snaps.deliver(reqID, snapResp{from: from, meta: meta})
		}
	case kindReqSnapChunk:
		reqID := d.Uint64()
		base := d.Uint64()
		offset := d.Uint32()
		if d.Finish() != nil {
			return
		}
		if dp.snaps != nil {
			dp.snaps.serveChunk(from, reqID, base, offset)
		}
	case kindRespSnapChunk:
		reqID := d.Uint64()
		gone := d.Bool()
		var offset uint32
		var chain flcrypto.Hash
		var data []byte
		if !gone {
			offset = d.Uint32()
			chain = d.Hash()
			data = append([]byte(nil), d.Bytes32()...)
		}
		if d.Finish() != nil {
			return
		}
		if dp.snaps != nil {
			dp.snaps.deliver(reqID, snapResp{from: from, gone: gone, offset: offset, chain: chain, data: data})
		}
	case kindReqAnchor:
		reqID := d.Uint64()
		round := d.Uint64()
		if d.Finish() != nil {
			return
		}
		h, ok := dp.chain.HashAt(round)
		e := types.GetEncoder(64)
		e.Uint8(kindRespAnchor)
		e.Uint64(reqID)
		e.Uint64(round)
		e.Bool(ok)
		e.Hash(h)
		dp.mux.Send(dp.proto, from, e.Bytes())
		e.Release()
	case kindRespAnchor:
		reqID := d.Uint64()
		round := d.Uint64()
		ok := d.Bool()
		h := d.Hash()
		if d.Finish() != nil {
			return
		}
		if dp.snaps != nil {
			dp.snaps.deliver(reqID, snapResp{from: from, round: round, ok: ok, hash: h})
		}
	}
}

// verifyBlocks checks signatures and bodies of a batch, fanning the
// signature work out to the shared verify pool so a large catch-up batch
// verifies across all pool workers instead of serially on the transport
// goroutine.
func (dp *dataPath) verifyBlocks(blks []types.Block) []bool {
	res := make([]bool, len(blks))
	if dp.pool == nil {
		for i := range blks {
			res[i] = blks[i].CheckBody() == nil && blks[i].Signed.Verify(dp.reg)
		}
		return res
	}
	var wg sync.WaitGroup
	for i := range blks {
		if blks[i].CheckBody() != nil {
			continue
		}
		i := i
		sh := blks[i].Signed
		wg.Add(1)
		dp.pool.VerifyAsyncNode(dp.reg, sh.Header.Proposer, sh.HeaderBytes(), sh.Sig, func(ok bool) {
			res[i] = ok
			wg.Done()
		})
	}
	wg.Wait()
	return res
}

// serveRange answers one range-sync request: stream rounds [lo, hi) — a
// zero hi means "everything definite" — to the requester in size- and
// count-capped batches, at most maxBatchesPerReq per request. Each batch
// carries this node's definite tip and first available round so the
// requester can retarget (the tip may have advanced; the prefix may have
// been compacted away).
func (dp *dataPath) serveRange(to flcrypto.NodeID, reqID, lo, hi uint64) {
	def := dp.chain.Definite()
	firstAvail := dp.chain.Base() + 1
	if lo < firstAvail {
		lo = firstAvail
	}
	last := def
	if hi > 0 && hi-1 < last {
		last = hi - 1
	}
	r := lo
	for batches := 0; batches < maxBatchesPerReq; batches++ {
		var blks []types.Block
		bytes := 0
		for r <= last && len(blks) < dp.opts.catchUpBatch && bytes < maxRangeBatchBytes {
			blk, ok := dp.chain.BlockAt(r)
			if !ok {
				last = r - 1
				break
			}
			blks = append(blks, blk)
			bytes += 64 + blk.Body.Size()
			r++
		}
		more := r <= last && batches+1 < maxBatchesPerReq
		e := types.GetEncoder(64 + bytes)
		e.Uint8(kindRespRange)
		e.Uint64(reqID)
		e.Uint64(def)
		e.Uint64(firstAvail)
		e.Bool(more)
		e.Uint32(uint32(len(blks)))
		for i := range blks {
			blks[i].Encode(e)
		}
		dp.mux.Send(dp.proto, to, e.Bytes())
		e.Release()
		if !more {
			return
		}
	}
}

// sendRangeReq asks one peer for definite rounds [from, to).
func (dp *dataPath) sendRangeReq(peer flcrypto.NodeID, reqID, from, to uint64) {
	e := types.GetEncoder(32)
	e.Uint8(kindReqRange)
	e.Uint64(reqID)
	e.Uint64(from)
	e.Uint64(to)
	dp.mux.Send(dp.proto, peer, e.Bytes())
	e.Release()
}

// sendTipHint tells a lagging peer how far this node's definite chain
// reaches, so the peer switches to range sync instead of being drip-fed one
// handoff block per vote.
func (dp *dataPath) sendTipHint(to flcrypto.NodeID) {
	e := types.GetEncoder(16)
	e.Uint8(kindTipHint)
	e.Uint64(dp.chain.Definite())
	dp.mux.Send(dp.proto, to, e.Bytes())
	e.Release()
}

// fetchWindow bounds how far above the chain tip catch-up blocks are
// buffered before adoption.
func (dp *dataPath) fetchWindow() uint64 {
	return uint64(4 * dp.opts.catchUpBatch)
}

// storeFetched inserts verified catch-up blocks whose rounds fall inside
// the adoption window (tip, tip+fetchWindow], reporting how many were
// newly stored. Out-of-window rounds are dropped — they are either already
// adopted or too far ahead to buffer.
func (dp *dataPath) storeFetched(blks []types.Block) int {
	if len(blks) == 0 {
		return 0
	}
	tip := dp.chain.Tip()
	window := dp.fetchWindow()
	stored := 0
	lowest := uint64(0)
	dp.mu.Lock()
	// Sweep rounds the chain has since passed (inserted before an adoption
	// advanced the tip), so the map cannot accumulate stale entries.
	if uint64(len(dp.fetched)) > 2*window {
		for r := range dp.fetched {
			if r <= tip {
				delete(dp.fetched, r)
			}
		}
	}
	for i := range blks {
		round := blks[i].Header().Round
		if round <= tip || round > tip+window {
			continue
		}
		if _, dup := dp.fetched[round]; dup {
			continue
		}
		dp.fetched[round] = blks[i]
		stored++
		if lowest == 0 || round < lowest {
			lowest = round
		}
	}
	if stored > 0 {
		close(dp.update)
		dp.update = make(chan struct{})
	}
	dp.mu.Unlock()
	if stored > 0 && dp.onFetched != nil {
		dp.onFetched(lowest)
	}
	return stored
}

// dropFetchedThrough discards buffered catch-up blocks at rounds ≤ r —
// after a snapshot install they are covered by the new base and would only
// occupy the adoption window until the next sweep.
func (dp *dataPath) dropFetchedThrough(r uint64) {
	dp.mu.Lock()
	for round := range dp.fetched {
		if round <= r {
			delete(dp.fetched, round)
		}
	}
	dp.mu.Unlock()
}

// frontier returns the first round not covered by the chain or the
// contiguous run of fetched blocks above it — the next round a range
// request should ask for.
func (dp *dataPath) frontier() uint64 {
	next := dp.chain.Tip() + 1
	dp.mu.Lock()
	defer dp.mu.Unlock()
	for {
		if _, ok := dp.fetched[next]; !ok {
			return next
		}
		next++
	}
}

// fetchedLen reports the adoption backlog (range-sync flow control).
func (dp *dataPath) fetchedLen() int {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	return len(dp.fetched)
}

// fetchedSpan summarizes the buffered catch-up rounds for diagnostics.
func (dp *dataPath) fetchedSpan() (lo, hi uint64, n int) {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	for r := range dp.fetched {
		if lo == 0 || r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return lo, hi, len(dp.fetched)
}

// updateChan returns the channel closed at the next store/adoption update.
func (dp *dataPath) updateChan() <-chan struct{} {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	return dp.update
}

// hasFetched reports whether a catch-up block for round is buffered.
func (dp *dataPath) hasFetched(round uint64) bool {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	_, ok := dp.fetched[round]
	return ok
}

// waitBody blocks until the body referenced by hdr is available, pulling it
// from peers ("p has to retrieve the block from a correct node q that has
// it", §6.1.1). The catch-up buffer doubles as a source: when the round's
// definite block already arrived there, its body serves the delivery — the
// body store alone cannot, because peers drop bodies once they are absorbed
// into definite blocks, so a node delivering a long-decided round would
// otherwise pull forever.
//
// Returns false if aborted — or if the catch-up buffer holds a *different*
// block for hdr's round. That means the cluster decided the round against
// the delivered header (an equivocator's split proposal whose other variant
// won, or a proposer the majority rotated past): the variant's body will
// never be served — no correct peer retains a body that reached no definite
// block — so pulling for it wedges the round loop forever while the true
// chain piles up in the buffer (a liveness bug the simulation harness found
// under seed replay). Giving up routes the caller back to its loop top,
// where the buffered segment is adopted instead.
func (dp *dataPath) waitBody(hdr types.BlockHeader, abort <-chan struct{}) (types.Body, bool) {
	interval := 10 * time.Millisecond
	for {
		superseded := false
		dp.mu.Lock()
		body, ok := dp.bodies[hdr.BodyHash]
		if !ok {
			if blk, have := dp.fetched[hdr.Round]; have {
				if *blk.Header() == hdr {
					body, ok = blk.Body, true
				} else {
					superseded = true
				}
			}
		}
		ch := dp.update
		dp.mu.Unlock()
		if superseded {
			return types.Body{}, false
		}
		if hdr.TxCount == 0 {
			if types.EmptyBodyHash() == hdr.BodyHash {
				return types.Body{}, true
			}
		}
		if ok {
			return body, true
		}
		// Pull.
		e := types.GetEncoder(40)
		e.Uint8(kindReqBody)
		e.Hash(hdr.BodyHash)
		dp.mux.Broadcast(dp.proto, e.Bytes())
		e.Release()
		select {
		case <-ch:
		case <-time.After(interval):
			if interval < time.Second {
				interval *= 2
			}
		case <-abort:
			return types.Body{}, false
		}
	}
}

// sendBlockTo pushes the definite block at round to one peer unsolicited —
// the catch-up fast path for a node observed voting on an already-definite
// round.
func (dp *dataPath) sendBlockTo(to flcrypto.NodeID, round uint64) {
	if round == 0 || round > dp.chain.Definite() {
		return
	}
	blk, ok := dp.chain.BlockAt(round)
	if !ok {
		return
	}
	e := types.GetEncoder(64 + blk.Body.Size())
	e.Uint8(kindRespBlock)
	blk.Encode(e)
	dp.mux.Send(dp.proto, to, e.Bytes())
	e.Release()
}

// takeSegment pops the contiguous run of catch-up blocks starting at round
// `from` (at most max blocks), so the round loop adopts whole verified
// chain segments atomically instead of one block per iteration.
func (dp *dataPath) takeSegment(from uint64, max int) []types.Block {
	dp.mu.Lock()
	var out []types.Block
	for len(out) < max {
		blk, ok := dp.fetched[from+uint64(len(out))]
		if !ok {
			break
		}
		delete(dp.fetched, from+uint64(len(out)))
		out = append(out, blk)
	}
	if len(out) > 0 {
		// Adoption progress unblocks the range syncer's backlog wait.
		close(dp.update)
		dp.update = make(chan struct{})
	}
	dp.mu.Unlock()
	return out
}

// requestBlock broadcasts one catch-up request for round — the legacy
// single-gap chase; bulk lag goes through the range syncer instead.
func (dp *dataPath) requestBlock(round uint64) {
	dp.metrics.CatchUpBlockReqs.Add(1)
	e := types.GetEncoder(16)
	e.Uint8(kindReqBlock)
	e.Uint64(round)
	dp.mux.Broadcast(dp.proto, e.Bytes())
	e.Release()
}

// fetchBlock retrieves the definite block at round from peers, for recovery
// catch-up. Returns false if aborted.
func (dp *dataPath) fetchBlock(round uint64, abort <-chan struct{}) (types.Block, bool) {
	interval := 20 * time.Millisecond
	for {
		dp.mu.Lock()
		blk, ok := dp.fetched[round]
		ch := dp.update
		dp.mu.Unlock()
		if ok {
			return blk, true
		}
		dp.requestBlock(round)
		select {
		case <-ch:
		case <-time.After(interval):
			if interval < time.Second {
				interval *= 2
			}
		case <-abort:
			return types.Block{}, false
		}
	}
}

package core

import (
	"errors"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// Proof is the cryptographic evidence of chain inconsistency a node
// RB-broadcasts before invoking the recovery procedure (Algorithm 2 lines
// b4–b10): two correctly-signed headers at consecutive rounds whose hash
// link does not hold. Such a pair can only exist if some proposer signed
// inconsistent data, so a valid Proof is a "strong proof of which node was
// the culprit" in the paper's words — and any node can verify it offline.
type Proof struct {
	// Curr is the header of round r that fails to link.
	Curr types.SignedHeader
	// Prev is a correctly-signed header of round r−1 that Curr does not
	// extend.
	Prev types.SignedHeader
}

// Encode appends the proof to e.
func (p *Proof) Encode(e *types.Encoder) {
	p.Curr.Encode(e)
	p.Prev.Encode(e)
}

// DecodeProof reads a proof from d.
func DecodeProof(d *types.Decoder) Proof {
	var p Proof
	p.Curr = types.DecodeSignedHeader(d)
	p.Prev = types.DecodeSignedHeader(d)
	return p
}

// Marshal returns the standalone encoding.
func (p *Proof) Marshal() []byte {
	e := types.NewEncoder(320)
	p.Encode(e)
	return e.Bytes()
}

// ErrInvalidProof reports a proof that fails verification.
var ErrInvalidProof = errors.New("core: invalid inconsistency proof")

// Verify checks the proof: both headers carry valid proposer signatures,
// belong to the same instance, sit at consecutive rounds, and the hash link
// between them is broken.
func (p *Proof) Verify(reg *flcrypto.Registry) error {
	return p.VerifyPooled(reg, nil)
}

// VerifyPooled is Verify with header signatures checked through a verify
// pool's cache (a proof RB-delivers n times cluster-wide and usually names
// headers the node already verified). A nil pool verifies directly.
func (p *Proof) VerifyPooled(reg *flcrypto.Registry, pool *flcrypto.VerifyPool) error {
	ch, ph := p.Curr.Header, p.Prev.Header
	if ch.Instance != ph.Instance {
		return ErrInvalidProof
	}
	if ch.Round != ph.Round+1 || ch.Round < 2 {
		return ErrInvalidProof
	}
	if !p.Curr.VerifyPooled(reg, pool) || !p.Prev.VerifyPooled(reg, pool) {
		return ErrInvalidProof
	}
	if ch.PrevHash == ph.Hash() {
		return ErrInvalidProof // the link holds: nothing is inconsistent
	}
	return nil
}

// Round returns the round the recovery procedure is invoked for.
func (p *Proof) Round() uint64 { return p.Curr.Header.Round }

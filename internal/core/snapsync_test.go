package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/store"
	"repro/internal/transport"
)

// newTestSnapNode wires a bare data path plus snapshot syncer onto one node
// of a chan network, for transfer-protocol fault-injection tests. provide and
// install are bound afterwards by poking dp.snaps directly.
func newTestSnapNode(t *testing.T, net *transport.ChanNetwork, ks *flcrypto.KeySet, id flcrypto.NodeID, chain *Chain, chunkBytes int) (*dataPath, *Metrics, chan struct{}) {
	t.Helper()
	mux := transport.NewMux(net.Endpoint(id))
	m := &Metrics{}
	dp := newDataPath(mux, 3, ks.Registry, nil, chain, m, dataOpts{catchUpBatch: 8, snapChunkBytes: chunkBytes})
	stop := make(chan struct{})
	dp.ranger = newRangeSyncer(dp, id, ks.Registry.N(), stop, m)
	dp.snaps = newSnapSyncer(dp, id, 0, ks.Registry.N(), stop, m)
	mux.Start()
	t.Cleanup(mux.Stop)
	return dp, m, stop
}

// testStateBlob builds a deterministic opaque application payload big enough
// to span several transfer chunks.
func testStateBlob(size int, seed byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i*7) ^ seed
	}
	return b
}

// snapProvider returns a provide hook serving a fixed snapshot.
func snapProvider(s store.Snapshot) func() (store.Snapshot, bool) {
	return func() (store.Snapshot, bool) { return s, true }
}

// TestSnapshotTransferStrandedRejoin is the end-to-end core-level rescue: a
// node whose next needed round was compacted away on every peer must switch
// from range sync to snapshot transfer, install the checkpoint, and then
// range-sync the retained tail — with zero outside intervention.
func TestSnapshotTransferStrandedRejoin(t *testing.T) {
	const (
		n      = 4
		rounds = 40
		base   = 30
		chunk  = 1024
	)
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	full := buildChain(t, ks, 0, rounds)
	baseHash, ok := full.HashAt(base)
	if !ok {
		t.Fatal("no hash at base")
	}
	snap := store.Snapshot{
		Instance:  0,
		BaseRound: base,
		BaseHash:  baseHash,
		State:     testStateBlob(10_000, 1),
	}
	// Donors hold only the compacted tail (31..40); rounds ≤ 30 survive
	// nowhere as blocks.
	for id := 1; id < n; id++ {
		donor := NewChainAt(0, base, baseHash)
		for r := uint64(base + 1); r <= rounds; r++ {
			blk, _ := full.BlockAt(r)
			if err := donor.Append(blk); err != nil {
				t.Fatal(err)
			}
		}
		donor.MarkDefinite(rounds)
		ddp, _, _ := newTestSnapNode(t, net, ks, flcrypto.NodeID(id), donor, chunk)
		ddp.snaps.provide = snapProvider(snap)
	}

	client := NewChain(0)
	dp, m, stop := newTestSnapNode(t, net, ks, 0, client, chunk)
	defer close(stop)
	var installed atomic.Pointer[store.Snapshot]
	dp.snaps.install = func(s store.Snapshot) error {
		if err := client.ResetForward(s.BaseRound, s.BaseHash); err != nil {
			return err
		}
		dp.dropFetchedThrough(s.BaseRound)
		installed.Store(&s)
		return nil
	}

	// Adoption loop standing in for the instance's round loop.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for client.Tip() < rounds {
			seg := dp.takeSegment(client.Tip()+1, 32)
			if len(seg) == 0 {
				select {
				case <-dp.updateChan():
				case <-time.After(10 * time.Millisecond):
				case <-stop:
					return
				}
				continue
			}
			for i := range seg {
				if err := client.Append(seg[i]); err != nil {
					t.Errorf("adopt round %d: %v", seg[i].Header().Round, err)
					return
				}
			}
			client.MarkDefinite(client.Tip())
		}
	}()

	dp.ranger.noteBehind(rounds)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("stranded node stuck at round %d of %d (installs=%d)", client.Tip(), rounds, m.SnapInstalls.Load())
	}

	if got := m.SnapInstalls.Load(); got != 1 {
		t.Fatalf("SnapInstalls = %d, want 1", got)
	}
	s := installed.Load()
	if s == nil || s.BaseRound != base || string(s.State) != string(snap.State) {
		t.Fatalf("installed snapshot does not match the donated checkpoint")
	}
	if client.Base() != base || client.Definite() != rounds {
		t.Fatalf("chain base=%d definite=%d, want base=%d definite=%d", client.Base(), client.Definite(), base, rounds)
	}
	if err := client.Audit(ks.Registry); err != nil {
		t.Fatalf("rescued chain fails audit: %v", err)
	}
	wantChunks := uint64((len(store.EncodeSnapshot(snap)) + chunk - 1) / chunk)
	if got := m.SnapChunksFetched.Load(); got != wantChunks {
		t.Fatalf("fetched %d chunks, want %d (no waste, no re-fetch)", got, wantChunks)
	}
}

// TestSnapshotTransferBitFlipRejected corrupts one in-flight chunk of the
// freshest donor: the hash chain must reject it on arrival, quarantine the
// donor, and complete the transfer from an honest peer — the corrupt
// snapshot is never installed.
func TestSnapshotTransferBitFlipRejected(t *testing.T) {
	const (
		n     = 4
		chunk = 1024
	)
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	full := buildChain(t, ks, 0, 40)
	h30, _ := full.HashAt(30)
	h32, _ := full.HashAt(32)
	honest := store.Snapshot{Instance: 0, BaseRound: 30, BaseHash: h30, State: testStateBlob(8_000, 2)}
	corrupt := store.Snapshot{Instance: 0, BaseRound: 32, BaseHash: h32, State: testStateBlob(8_000, 3)}

	// Node 1 advertises the freshest checkpoint (base 32) — it wins donor
	// selection — but its served payload is bit-flipped after the chunk
	// hashes were computed, simulating in-flight corruption.
	dp1, m1, _ := newTestSnapNode(t, net, ks, 1, full, chunk)
	dp1.snaps.provide = snapProvider(corrupt)
	st := dp1.snaps.serveState()
	st.payload[1500] ^= 0x40 // inside chunk 1

	for id := 2; id < n; id++ {
		ddp, _, _ := newTestSnapNode(t, net, ks, flcrypto.NodeID(id), full, chunk)
		ddp.snaps.provide = snapProvider(honest)
	}

	client := NewChain(0)
	dp, m, stop := newTestSnapNode(t, net, ks, 0, client, chunk)
	defer close(stop)
	var installed atomic.Pointer[store.Snapshot]
	dp.snaps.install = func(s store.Snapshot) error {
		if err := client.ResetForward(s.BaseRound, s.BaseHash); err != nil {
			return err
		}
		installed.Store(&s)
		return nil
	}

	if !dp.snaps.transfer() {
		t.Fatal("transfer failed outright")
	}
	if got := m.SnapChunkRejects.Load(); got == 0 {
		t.Fatal("corrupt chunk was not rejected")
	}
	s := installed.Load()
	if s == nil || s.BaseRound != 30 || string(s.State) != string(honest.State) {
		t.Fatalf("installed snapshot is not the honest checkpoint (base %d)", s.BaseRound)
	}
	if m.SnapInstalls.Load() != 1 {
		t.Fatalf("SnapInstalls = %d, want 1", m.SnapInstalls.Load())
	}
	_ = m1
}

// TestSnapshotTransferDonorCrashResumes kills the serving donor after
// exactly three chunks: the transfer must rotate to the twin donor and
// resume from the verified prefix — every chunk crosses the wire once.
func TestSnapshotTransferDonorCrashResumes(t *testing.T) {
	const (
		n     = 4
		chunk = 512
	)
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	full := buildChain(t, ks, 0, 40)
	h30, _ := full.HashAt(30)
	snap := store.Snapshot{Instance: 0, BaseRound: 30, BaseHash: h30, State: testStateBlob(6_000, 4)}

	// Node 1 dies mid-stream: its provide hook counts invocations (one for
	// the meta poll, one per chunk) and silences the node on what would be
	// the fourth served chunk — that response is dropped, the requester
	// times out and rotates.
	var calls atomic.Uint64
	dp1, _, _ := newTestSnapNode(t, net, ks, 1, full, chunk)
	dp1.snaps.provide = func() (store.Snapshot, bool) {
		if calls.Add(1) == 5 { // 1 meta + 3 chunks served, 4th dropped
			net.Crash(1)
		}
		return snap, true
	}
	// Node 2 is the twin donor: identical checkpoint, same hash chain.
	dp2, m2, _ := newTestSnapNode(t, net, ks, 2, full, chunk)
	dp2.snaps.provide = snapProvider(snap)
	// Node 3 holds no checkpoint; it only attests the chain anchor.
	newTestSnapNode(t, net, ks, 3, full, chunk)

	client := NewChain(0)
	dp, m, stop := newTestSnapNode(t, net, ks, 0, client, chunk)
	defer close(stop)
	dp.snaps.install = func(s store.Snapshot) error {
		return client.ResetForward(s.BaseRound, s.BaseHash)
	}

	// Pin the crashing donor as first choice: poll once while node 2 is
	// still silent... instead, both advertise the same checkpoint, so donor
	// choice is map-order dependent; run the campaign and rely on the twin
	// resume either way — if node 2 was picked first there is no crash, so
	// force node 1 by crashing node 2 for the first negotiation only.
	net.Crash(2)
	go func() {
		// Heal the twin once the doomed donor has started serving.
		waitFor(t, 10*time.Second, func() bool { return calls.Load() >= 2 })
		net.Heal(2)
	}()

	if !dp.snaps.transfer() {
		t.Fatal("transfer failed outright")
	}
	if got := m.SnapResumes.Load(); got == 0 {
		t.Fatal("transfer restarted from scratch instead of resuming the verified prefix")
	}
	wantChunks := uint64((len(store.EncodeSnapshot(snap)) + chunk - 1) / chunk)
	if got := m.SnapChunksFetched.Load(); got != wantChunks {
		t.Fatalf("fetched %d chunks, want exactly %d (verified prefix must not re-transfer)", got, wantChunks)
	}
	if served := m2.SnapChunksServed.Load(); served >= wantChunks {
		t.Fatalf("twin donor served %d of %d chunks — the first donor's progress was discarded", served, wantChunks)
	}
	if client.Base() != 30 {
		t.Fatalf("chain base %d, want 30", client.Base())
	}
}

// TestSnapshotTransferDonorCompacted has the sole donor advance its
// checkpoint TWICE past the requester's pinned advertisement mid-stream. A
// single advance is survivable — the donor keeps the previous generation
// servable (see TestSnapshotTransferDonorAdvancesOnce) — but two advances
// push the pinned base out of the serve history: the donor answers "gone",
// and the requester renegotiates and installs the freshest checkpoint within
// the bounded campaign.
func TestSnapshotTransferDonorCompacted(t *testing.T) {
	const (
		n     = 4
		chunk = 512
	)
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	full := buildChain(t, ks, 0, 40)
	h30, _ := full.HashAt(30)
	h34, _ := full.HashAt(34)
	h38, _ := full.HashAt(38)
	oldSnap := store.Snapshot{Instance: 0, BaseRound: 30, BaseHash: h30, State: testStateBlob(6_000, 5)}
	midSnap := store.Snapshot{Instance: 0, BaseRound: 34, BaseHash: h34, State: testStateBlob(6_000, 9)}
	newSnap := store.Snapshot{Instance: 0, BaseRound: 38, BaseHash: h38, State: testStateBlob(6_000, 6)}

	// The sole donor compacts twice after serving two chunks of the old
	// checkpoint: base 30 leaves the {current, previous} serve pair, so
	// every later pull for it gets an explicit "gone".
	var cur atomic.Pointer[store.Snapshot]
	cur.Store(&oldSnap)
	var calls atomic.Uint64
	dp1, m1, _ := newTestSnapNode(t, net, ks, 1, full, chunk)
	dp1.snaps.provide = func() (store.Snapshot, bool) {
		switch calls.Add(1) {
		case 4: // 1 meta + 2 chunks served, then compact once...
			cur.Store(&midSnap)
		case 5: // ...and again on the very next pull
			cur.Store(&newSnap)
		}
		return *cur.Load(), true
	}
	for id := 2; id < n; id++ {
		newTestSnapNode(t, net, ks, flcrypto.NodeID(id), full, chunk) // attesters only
	}

	client := NewChain(0)
	dp, m, stop := newTestSnapNode(t, net, ks, 0, client, chunk)
	defer close(stop)
	var installed atomic.Pointer[store.Snapshot]
	dp.snaps.install = func(s store.Snapshot) error {
		if err := client.ResetForward(s.BaseRound, s.BaseHash); err != nil {
			return err
		}
		installed.Store(&s)
		return nil
	}

	if !dp.snaps.transfer() {
		t.Fatal("transfer failed outright")
	}
	s := installed.Load()
	if s == nil || s.BaseRound != 38 || string(s.State) != string(newSnap.State) {
		t.Fatal("requester did not renegotiate onto the fresher checkpoint")
	}
	if got := m.SnapRejected.Load(); got != 0 {
		t.Fatalf("%d snapshots rejected — 'gone' must renegotiate, not quarantine", got)
	}
	if m1.SnapChunksServed.Load() == 0 {
		t.Fatal("donor never served")
	}
}

// TestSnapshotTransferDonorAdvancesOnce has the sole donor advance its
// checkpoint once mid-stream. The donor keeps the previous generation
// servable, so the requester must complete the pinned base-30 download from
// it — no "gone", no renegotiation churn — even though the donor's current
// checkpoint is fresher by the time the transfer finishes.
func TestSnapshotTransferDonorAdvancesOnce(t *testing.T) {
	const (
		n     = 4
		chunk = 512
	)
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	full := buildChain(t, ks, 0, 40)
	h30, _ := full.HashAt(30)
	h38, _ := full.HashAt(38)
	oldSnap := store.Snapshot{Instance: 0, BaseRound: 30, BaseHash: h30, State: testStateBlob(6_000, 5)}
	newSnap := store.Snapshot{Instance: 0, BaseRound: 38, BaseHash: h38, State: testStateBlob(6_000, 6)}

	var cur atomic.Pointer[store.Snapshot]
	cur.Store(&oldSnap)
	var calls atomic.Uint64
	dp1, _, _ := newTestSnapNode(t, net, ks, 1, full, chunk)
	dp1.snaps.provide = func() (store.Snapshot, bool) {
		if calls.Add(1) == 4 { // 1 meta + 2 chunks served, then compact once
			cur.Store(&newSnap)
		}
		return *cur.Load(), true
	}
	for id := 2; id < n; id++ {
		newTestSnapNode(t, net, ks, flcrypto.NodeID(id), full, chunk) // attesters only
	}

	client := NewChain(0)
	dp, m, stop := newTestSnapNode(t, net, ks, 0, client, chunk)
	defer close(stop)
	var installed atomic.Pointer[store.Snapshot]
	dp.snaps.install = func(s store.Snapshot) error {
		if err := client.ResetForward(s.BaseRound, s.BaseHash); err != nil {
			return err
		}
		installed.Store(&s)
		return nil
	}

	if !dp.snaps.transfer() {
		t.Fatal("transfer failed outright")
	}
	s := installed.Load()
	if s == nil || s.BaseRound != 30 || string(s.State) != string(oldSnap.State) {
		t.Fatal("requester did not complete the pinned download from the previous generation")
	}
	if got := m.SnapRejected.Load(); got != 0 {
		t.Fatalf("%d snapshots rejected during a clean previous-generation serve", got)
	}
	wantChunks := uint64((len(store.EncodeSnapshot(oldSnap)) + chunk - 1) / chunk)
	if got := m.SnapChunksFetched.Load(); got != wantChunks {
		t.Fatalf("fetched %d chunks, want exactly %d (one advance must not restart the stream)", got, wantChunks)
	}
}

// TestSnapshotTransferFabricatedAnchorRejected gives the freshest donor a
// checkpoint whose chain anchor no honest peer can attest: the f+1
// attestation must reject it (digest and structure are fine — only the
// anchor is a lie), quarantine the donor, and fall through to the honest
// checkpoint.
func TestSnapshotTransferFabricatedAnchorRejected(t *testing.T) {
	const (
		n     = 4
		chunk = 1024
	)
	ks := testKeySet(t, n)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	t.Cleanup(net.Close)

	full := buildChain(t, ks, 0, 40)
	h30, _ := full.HashAt(30)
	honest := store.Snapshot{Instance: 0, BaseRound: 30, BaseHash: h30, State: testStateBlob(5_000, 7)}
	forged := store.Snapshot{Instance: 0, BaseRound: 36, BaseHash: flcrypto.Sum256([]byte("forged")), State: testStateBlob(5_000, 8)}

	dp1, _, _ := newTestSnapNode(t, net, ks, 1, full, chunk)
	dp1.snaps.provide = snapProvider(forged)
	for id := 2; id < n; id++ {
		ddp, _, _ := newTestSnapNode(t, net, ks, flcrypto.NodeID(id), full, chunk)
		ddp.snaps.provide = snapProvider(honest)
	}

	client := NewChain(0)
	dp, m, stop := newTestSnapNode(t, net, ks, 0, client, chunk)
	defer close(stop)
	var installed atomic.Pointer[store.Snapshot]
	dp.snaps.install = func(s store.Snapshot) error {
		if err := client.ResetForward(s.BaseRound, s.BaseHash); err != nil {
			return err
		}
		installed.Store(&s)
		return nil
	}

	if !dp.snaps.transfer() {
		t.Fatal("transfer failed outright")
	}
	if got := m.SnapRejected.Load(); got != 1 {
		t.Fatalf("SnapRejected = %d, want 1 (the forged anchor)", got)
	}
	s := installed.Load()
	if s == nil || s.BaseRound != 30 || s.BaseHash != h30 {
		t.Fatal("forged checkpoint was installed")
	}
}

package core

import (
	"sync"

	"repro/internal/flcrypto"
)

// schedule computes the proposer of each delivery attempt deterministically
// from agreed state, so all correct nodes track the same rotation:
//
//   - the base order is the round-robin of §5, optionally reshuffled every
//     EpochLen rounds into a pseudo-random permutation seeded by a definite
//     block's hash (§6.1.1's defense against consecutive Byzantine
//     proposers; the hash seed substitutes for a VRF);
//   - the proposer of (round r, attempt a) is the (a+1)-th candidate after
//     round r−1's decided proposer in the order, skipping — per Algorithm 2
//     lines b1–b3 — any candidate that proposed one of the last f decided
//     blocks, which yields the Lemma 5.3.2 proposer-diversity invariant.
//
// Because WRB's all-or-nothing agreement makes failed attempts agreed too,
// every correct node evaluates the same (r, a) pairs.
type schedule struct {
	n, f     int
	epochLen uint64

	mu    sync.Mutex
	epoch uint64
	order []flcrypto.NodeID
	// convicted maps a provably-Byzantine node to the first round its
	// exclusion applies to. Entries are derived from conviction transactions
	// in definite blocks only (see Instance.registerConvictions), so every
	// correct node — including one replaying the chain after a restart —
	// computes the same map at the same rounds, keeping the rotation agreed.
	convicted map[flcrypto.NodeID]uint64
}

func newSchedule(n, f int, epochLen uint64) *schedule {
	s := &schedule{n: n, f: f, epochLen: epochLen, convicted: make(map[flcrypto.NodeID]uint64)}
	s.order = make([]flcrypto.NodeID, n)
	for i := range s.order {
		s.order[i] = flcrypto.NodeID(i)
	}
	return s
}

// convict excludes id from the rotation for rounds ≥ eff. At most f nodes
// are ever excluded (more would be outside the fault model and could cost
// liveness); extras are ignored, which is deterministic because convictions
// arrive in definite-chain order at every node.
func (s *schedule) convict(id flcrypto.NodeID, eff uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.convicted[id]; dup {
		return false
	}
	if len(s.convicted) >= s.f {
		return false
	}
	s.convicted[id] = eff
	return true
}

// excluded reports whether id is excluded from proposing in round.
func (s *schedule) excluded(id flcrypto.NodeID, round uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	eff, ok := s.convicted[id]
	return ok && round >= eff
}

// convictions returns a snapshot of the exclusion map.
func (s *schedule) convictions() map[flcrypto.NodeID]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[flcrypto.NodeID]uint64, len(s.convicted))
	for id, eff := range s.convicted {
		out[id] = eff
	}
	return out
}

// orderFor returns the proposer permutation in force at round.
func (s *schedule) orderFor(chain *Chain, round uint64) []flcrypto.NodeID {
	if s.epochLen == 0 {
		return s.order
	}
	epoch := (round - 1) / s.epochLen
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch == s.epoch && s.order != nil {
		return s.order
	}
	// Seed from the definite block at the epoch boundary minus f+2; all
	// correct nodes agree on definite blocks, hence on the permutation.
	seedRound := int64(epoch*s.epochLen) - int64(s.f+2)
	var seed flcrypto.Hash
	if seedRound >= 1 {
		if hdr, ok := chain.HeaderAt(uint64(seedRound)); ok {
			seed = hdr.Hash()
		}
	}
	s.epoch = epoch
	s.order = flcrypto.Permutation(seed, epoch, s.n)
	return s.order
}

// proposerFor returns the proposer of the given round and attempt, and
// whether the lines b1–b3 rule skipped any candidate on the way (which
// invalidates the failure detector's suspicion list, §6.1.1).
func (s *schedule) proposerFor(chain *Chain, round uint64, attempt int) (flcrypto.NodeID, bool) {
	order := s.orderFor(chain, round)
	// Index of the previous round's decided proposer; genesis maps to the
	// slot before order[0].
	start := 0
	if hdr, ok := chain.HeaderAt(round - 1); ok && round >= 2 {
		for i, id := range order {
			if id == hdr.Proposer {
				start = i + 1
				break
			}
		}
	}
	// Skip set: proposers of the last f decided blocks (lines b1–b3).
	skip := make(map[flcrypto.NodeID]bool, s.f)
	if round >= 2 {
		lo := uint64(1)
		if round > uint64(s.f) {
			lo = round - uint64(s.f)
		}
		for _, p := range chain.ProposersOf(lo, round-1) {
			skip[p] = true
		}
	}
	// Walk the order from start and return the attempt-th (0-based)
	// non-skipped candidate. |skip| ≤ f and at most f convicted nodes, so
	// every full lap yields at least n−2f ≥ f+1 candidates and the walk
	// terminates. Skipping a convicted node does not count as a rotation
	// skip (it never regains its turn, so the FD list need not reset).
	seen := 0
	didSkip := false
	for i := 0; ; i++ {
		cand := order[(start+i)%s.n]
		if s.excluded(cand, round) {
			continue
		}
		if skip[cand] {
			didSkip = true
			continue
		}
		if seen == attempt {
			return cand, didSkip
		}
		seen++
	}
}

// failureDetector is the benign FD of §6.1.1: nodes that repeatedly caused
// delivery timeouts are suspected (at most f at a time), and WRB-deliver
// does not wait for a suspected proposer's message. The list is invalidated
// whenever the rotation skips a recent proposer or Byzantine activity is
// detected, preserving liveness as argued in the paper.
type failureDetector struct {
	mu        sync.Mutex
	f         int
	threshold int
	strikes   map[flcrypto.NodeID]int
	suspected map[flcrypto.NodeID]bool
}

func newFailureDetector(f, threshold int) *failureDetector {
	if threshold <= 0 {
		threshold = 2
	}
	return &failureDetector{
		f:         f,
		threshold: threshold,
		strikes:   make(map[flcrypto.NodeID]int),
		suspected: make(map[flcrypto.NodeID]bool),
	}
}

// onTimeout records that p's block failed to arrive in time.
func (fd *failureDetector) onTimeout(p flcrypto.NodeID) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	fd.strikes[p]++
	if fd.strikes[p] >= fd.threshold && len(fd.suspected) < fd.f {
		fd.suspected[p] = true
	}
}

// onDelivered clears p's record after a successful delivery.
func (fd *failureDetector) onDelivered(p flcrypto.NodeID) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	delete(fd.strikes, p)
	delete(fd.suspected, p)
}

// onAlive clears p's suspicion on direct liveness evidence (a vote from p
// reached this node). Without this escape, suspicion is self-sustaining: a
// suspected proposer's rounds are decided with zero wait, every such nil
// round used to strike it again, and a node that merely sat out a partition
// could stay suspected — and its client pool starved — forever, even while
// it demonstrably participates in every round.
func (fd *failureDetector) onAlive(p flcrypto.NodeID) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.suspected[p] {
		delete(fd.suspected, p)
		delete(fd.strikes, p)
	}
}

// isSuspected reports whether p is currently suspected.
func (fd *failureDetector) isSuspected(p flcrypto.NodeID) bool {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.suspected[p]
}

// invalidate clears the suspicion list (rotation skipped a recent proposer,
// or Byzantine activity was detected).
func (fd *failureDetector) invalidate() {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	fd.strikes = make(map[flcrypto.NodeID]int)
	fd.suspected = make(map[flcrypto.NodeID]bool)
}

// Package core implements the FireLedger protocol itself (paper §5,
// Algorithms 2 and 3): a round-based, rotating-proposer blockchain that
// decides a block per communication step in the optimistic case and falls
// back to an atomic-broadcast recovery procedure when the chain's hash links
// expose Byzantine behavior. It realizes the BBFC(f+1) abstraction of §3.3:
// the last f+1 blocks of the local chain are tentative; a block becomes
// definite (final) once it reaches depth f+2.
package core

import (
	"fmt"
	"sync"

	"repro/internal/flcrypto"
	"repro/internal/types"
)

// Chain is the per-worker blockchain: an append-only list of blocks rounds
// base+1..tip, with an implicit genesis header at round 0. The last f+1
// entries are tentative and may be replaced by the recovery procedure;
// everything at depth ≥ f+2 is definite (BBFC-Finality).
//
// A non-zero base is the compaction case: the node restarted from a
// snapshot, rounds ≤ base live only in that snapshot, and the chain holds
// just the post-snapshot suffix. Only the base round's header *hash* is
// retained (it anchors linkage); header and body contents below base are
// gone, so BlockAt/HeaderAt report absence for them.
type Chain struct {
	mu          sync.RWMutex
	instance    uint32
	genesis     types.BlockHeader
	genesisHash flcrypto.Hash // computed once; HashAt(0) is on the catch-up path
	base        uint64        // rounds ≤ base are compacted away; blocks[i] is round base+1+i
	baseHash    flcrypto.Hash // header hash at round base (the genesis hash when base is 0)
	blocks      []types.Block
	definite    uint64 // rounds ≤ definite are final (always ≥ base)
}

// NewChain creates the empty chain of one worker instance.
func NewChain(instance uint32) *Chain {
	return NewChainAt(instance, 0, flcrypto.Hash{})
}

// NewChainAt creates a chain whose first appendable round is base+1,
// anchored on baseHash (the header hash at round base). Rounds ≤ base were
// finalized before a snapshot/compaction cycle and are definite by
// construction. With base 0 the anchor is the genesis header and baseHash is
// ignored.
func NewChainAt(instance uint32, base uint64, baseHash flcrypto.Hash) *Chain {
	c := &Chain{
		instance: instance,
		genesis:  types.GenesisHeader(instance),
		base:     base,
		baseHash: baseHash,
		definite: base,
	}
	c.genesisHash = c.genesis.Hash()
	if base == 0 {
		c.baseHash = c.genesisHash
	}
	return c
}

// Base returns the compaction base: the highest round whose block content is
// no longer held in memory (0 for a full chain).
func (c *Chain) Base() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base
}

// Tip returns the highest appended round (base when empty).
func (c *Chain) Tip() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base + uint64(len(c.blocks))
}

// Definite returns the highest definite (final) round.
func (c *Chain) Definite() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.definite
}

// TipHash returns the hash of the highest block's header (the PrevHash the
// next proposal must carry).
func (c *Chain) TipHash() flcrypto.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tipHashLocked()
}

func (c *Chain) tipHashLocked() flcrypto.Hash {
	if len(c.blocks) == 0 {
		return c.baseHash
	}
	return c.blocks[len(c.blocks)-1].Hash()
}

// HeaderAt returns the header of round r (the genesis header for r = 0) and
// whether it exists. Rounds at or below a non-zero compaction base report
// absence: only their hash survives (see HashAt).
func (c *Chain) HeaderAt(r uint64) (types.BlockHeader, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if r == 0 {
		return c.genesis, true
	}
	if r <= c.base || r > c.base+uint64(len(c.blocks)) {
		return types.BlockHeader{}, false
	}
	return c.blocks[r-c.base-1].Signed.Header, true
}

// HashAt returns the header hash at round r. Unlike HeaderAt it also serves
// the compaction base itself (whose hash is the snapshot anchor), so
// recovery anchoring works on a compacted chain.
func (c *Chain) HashAt(r uint64) (flcrypto.Hash, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if r == 0 {
		return c.genesisHash, true
	}
	if r == c.base {
		return c.baseHash, true
	}
	if r < c.base || r > c.base+uint64(len(c.blocks)) {
		return flcrypto.Hash{}, false
	}
	return c.blocks[r-c.base-1].Hash(), true
}

// BlockAt returns the block of round r, if present.
func (c *Chain) BlockAt(r uint64) (types.Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if r <= c.base || r > c.base+uint64(len(c.blocks)) {
		return types.Block{}, false
	}
	return c.blocks[r-c.base-1], true
}

// SignedAt returns the signed header of round r, if present.
func (c *Chain) SignedAt(r uint64) (types.SignedHeader, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if r <= c.base || r > c.base+uint64(len(c.blocks)) {
		return types.SignedHeader{}, false
	}
	return c.blocks[r-c.base-1].Signed, true
}

// Append adds blk as the next round. It enforces linkage: blk must extend
// the current tip at round tip+1.
func (c *Chain) Append(blk types.Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	hdr := blk.Signed.Header
	want := c.base + uint64(len(c.blocks)) + 1
	if hdr.Round != want {
		return fmt.Errorf("core: append round %d, tip is %d", hdr.Round, want-1)
	}
	if hdr.PrevHash != c.tipHashLocked() {
		return fmt.Errorf("core: append round %d does not link to tip", hdr.Round)
	}
	if hdr.Instance != c.instance {
		return fmt.Errorf("core: append block of instance %d onto instance %d", hdr.Instance, c.instance)
	}
	c.blocks = append(c.blocks, blk)
	return nil
}

// MarkDefinite advances the definite boundary to r (monotonically).
// It returns the rounds that newly became definite.
func (c *Chain) MarkDefinite(r uint64) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tip := c.base + uint64(len(c.blocks)); r > tip {
		r = tip
	}
	var newly []uint64
	for c.definite < r {
		c.definite++
		newly = append(newly, c.definite)
	}
	return newly
}

// CompactTo drops in-memory blocks at rounds ≤ base, re-anchoring the chain
// on base's own header hash. It is the live-node counterpart of the store's
// log checkpoint: without it a long-running node retains every block since
// boot in RAM and can range-serve arbitrarily old history, which both
// unbounds memory and silently masks the stranded-peer case the snapshot
// transfer exists for. Only the definite prefix may compact (tentative
// rounds can still be replaced); base at or below the current compaction
// base is a no-op.
func (c *Chain) CompactTo(base uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if base <= c.base {
		return nil
	}
	if base > c.definite {
		return fmt.Errorf("core: compaction to round %d past definite %d", base, c.definite)
	}
	h := c.blocks[base-c.base-1].Hash()
	kept := make([]types.Block, len(c.blocks)-int(base-c.base))
	copy(kept, c.blocks[base-c.base:])
	c.blocks = kept
	c.base = base
	c.baseHash = h
	return nil
}

// ResetForward re-anchors a live chain on a snapshot-transfer base: every
// in-memory block is discarded, rounds ≤ base become definite by
// construction, and the next appendable round is base+1 linking to baseHash.
// The jump must be strictly forward of the current tip — snapshot transfer
// only ever installs state the local chain has not reached, so a reset can
// never un-finalize anything a caller already observed as definite.
func (c *Chain) ResetForward(base uint64, baseHash flcrypto.Hash) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	tip := c.base + uint64(len(c.blocks))
	if base <= tip {
		return fmt.Errorf("core: snapshot reset to round %d, tip is already %d", base, tip)
	}
	c.base = base
	c.baseHash = baseHash
	c.blocks = nil
	c.definite = base
	return nil
}

// ReplaceSuffix installs version as the new chain content from round `from`
// onward, discarding any existing blocks at rounds ≥ from. The recovery
// procedure (Algorithm 3) calls this after adopting the agreed version.
// Blocks at definite rounds are never replaced: from must exceed the
// definite boundary.
func (c *Chain) ReplaceSuffix(from uint64, version []types.Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if from <= c.definite {
		return fmt.Errorf("core: recovery would replace definite round %d", from)
	}
	tip := c.base + uint64(len(c.blocks))
	if from > tip+1 {
		return fmt.Errorf("core: recovery suffix starts at %d, tip is %d", from, tip)
	}
	c.blocks = c.blocks[:from-c.base-1]
	for _, blk := range version {
		hdr := blk.Signed.Header
		if hdr.Round != c.base+uint64(len(c.blocks))+1 || hdr.PrevHash != c.tipHashLocked() {
			return fmt.Errorf("core: recovery version does not chain at round %d", hdr.Round)
		}
		c.blocks = append(c.blocks, blk)
	}
	return nil
}

// Suffix returns copies of the blocks at rounds [from, tip]. Rounds at or
// below the compaction base cannot be returned; the suffix starts at
// max(from, base+1).
func (c *Chain) Suffix(from uint64) []types.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if from <= c.base {
		from = c.base + 1
	}
	tip := c.base + uint64(len(c.blocks))
	if from > tip {
		return nil
	}
	out := make([]types.Block, tip-from+1)
	copy(out, c.blocks[from-c.base-1:])
	return out
}

// ProposersOf returns the proposers of rounds [from, to] that exist.
func (c *Chain) ProposersOf(from, to uint64) []flcrypto.NodeID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tip := c.base + uint64(len(c.blocks))
	var out []flcrypto.NodeID
	for r := from; r <= to && r >= 1 && r <= tip; r++ {
		if r <= c.base {
			continue
		}
		out = append(out, c.blocks[r-c.base-1].Signed.Header.Proposer)
	}
	return out
}

// Audit verifies the whole chain's internal consistency: hash links, body
// hashes, and the Lemma 5.3.2 proposer-diversity invariant for windows of
// f+1 consecutive blocks. Tests use it as the safety oracle. On a compacted
// chain the audit covers the in-memory suffix, anchored on the snapshot
// hash.
func (c *Chain) Audit(reg *flcrypto.Registry) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	prev := c.baseHash
	f := reg.F()
	for i, blk := range c.blocks {
		hdr := blk.Signed.Header
		if hdr.Round != c.base+uint64(i)+1 {
			return fmt.Errorf("core: audit: block %d has round %d", i, hdr.Round)
		}
		if hdr.PrevHash != prev {
			return fmt.Errorf("core: audit: round %d prev-hash mismatch", hdr.Round)
		}
		if !blk.Signed.Verify(reg) {
			return fmt.Errorf("core: audit: round %d bad signature", hdr.Round)
		}
		if err := blk.CheckBody(); err != nil {
			return fmt.Errorf("core: audit: round %d: %w", hdr.Round, err)
		}
		// Proposer diversity over any f+1 consecutive blocks.
		for j := i - f; j < i; j++ {
			if j >= 0 && c.blocks[j].Signed.Header.Proposer == hdr.Proposer {
				return fmt.Errorf("core: audit: proposer %d repeats within f+1 window at rounds %d and %d",
					hdr.Proposer, c.blocks[j].Signed.Header.Round, hdr.Round)
			}
		}
		prev = blk.Hash()
	}
	return nil
}

package core

import (
	"testing"
)

// TestChainAtBase covers the compacted-chain arithmetic: a chain anchored at
// a snapshot base must append, finalize, audit, and serve lookups exactly
// like the full chain it is a suffix of.
func TestChainAtBase(t *testing.T) {
	ks := testKeySet(t, 4)
	full := buildChain(t, ks, 0, 10)
	full.MarkDefinite(10)

	const base = 6
	baseHash, ok := full.HashAt(base)
	if !ok {
		t.Fatal("full chain misses round 6")
	}
	c := NewChainAt(0, base, baseHash)
	if c.Tip() != base || c.Definite() != base || c.Base() != base {
		t.Fatalf("fresh compacted chain: tip=%d definite=%d base=%d", c.Tip(), c.Definite(), c.Base())
	}
	for r := uint64(base + 1); r <= 10; r++ {
		blk, _ := full.BlockAt(r)
		if err := c.Append(blk); err != nil {
			t.Fatalf("append round %d: %v", r, err)
		}
	}
	if c.Tip() != 10 {
		t.Fatalf("tip %d, want 10", c.Tip())
	}
	if c.TipHash() != full.TipHash() {
		t.Fatal("tip hash diverges from the full chain")
	}
	if err := c.Audit(ks.Registry); err != nil {
		t.Fatalf("audit: %v", err)
	}

	// Lookups: below base absent, base hash available, suffix present.
	if _, ok := c.BlockAt(3); ok {
		t.Fatal("compacted round 3 must be absent")
	}
	if _, ok := c.HeaderAt(base); ok {
		t.Fatal("the base round's header content is gone; only its hash survives")
	}
	if h, ok := c.HashAt(base); !ok || h != baseHash {
		t.Fatal("base hash must be served")
	}
	if _, ok := c.HashAt(base - 1); ok {
		t.Fatal("hashes below base are unknown")
	}
	full7, _ := full.BlockAt(7)
	got7, ok := c.BlockAt(7)
	if !ok || got7.Hash() != full7.Hash() {
		t.Fatal("suffix block mismatch")
	}

	// Suffix clamps to the base.
	if s := c.Suffix(1); len(s) != 4 || s[0].Header().Round != base+1 {
		t.Fatalf("suffix from 1: got %d blocks starting at %d", len(s), s[0].Header().Round)
	}

	// ReplaceSuffix uses base-relative indexing (rounds 9.. are still
	// tentative here: nothing has been marked definite past the base).
	tail := c.Suffix(9)
	if err := c.ReplaceSuffix(9, tail); err != nil {
		t.Fatalf("replace suffix on compacted chain: %v", err)
	}

	// MarkDefinite clamps to the tip.
	c.MarkDefinite(99)
	if c.Definite() != 10 {
		t.Fatalf("definite %d, want 10", c.Definite())
	}
}

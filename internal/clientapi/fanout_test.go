package clientapi

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/store"
	"repro/internal/types"
)

// filterPrefixA marks the payloads the filtered tests subscribe to: rounds
// divisible by 3 carry an 'A'-prefixed transaction, the rest 'B'.
func filterPrefix(r int) byte {
	if r%3 == 0 {
		return 'A'
	}
	return 'B'
}

// buildFilterBlocks produces a linked single-worker chain whose blocks carry
// distinguishable transactions: round r has one tx from client 900+r%2 with
// payload [filterPrefix(r), r].
func buildFilterBlocks(t *testing.T, ks *flcrypto.KeySet, n int) []types.Block {
	t.Helper()
	prev := types.GenesisHeader(0).Hash()
	var out []types.Block
	for r := 1; r <= n; r++ {
		proposer := (r - 1) % ks.Registry.N()
		txs := []types.Transaction{{
			Client:  900 + uint64(r%2),
			Seq:     uint64(r),
			Payload: []byte{filterPrefix(r), byte(r)},
		}}
		blk, err := types.NewBlock(0, uint64(r), flcrypto.NodeID(proposer), prev, txs, ks.Privs[proposer])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, blk)
		prev = blk.Hash()
	}
	return out
}

// TestFilterMatchAndWire pins the 1.3 filter semantics (conjunction on a
// single transaction; the empty filter matches everything) and the SUBSCRIBE
// round trip for every flag combination.
func TestFilterMatchAndWire(t *testing.T) {
	tx := types.Transaction{Client: 7, Seq: 1, Payload: []byte("Axyz")}
	body := &types.Body{Txs: []types.Transaction{tx, {Client: 9, Seq: 2, Payload: []byte("Bxyz")}}}
	cases := []struct {
		name  string
		flt   Filter
		block bool
	}{
		{"empty", Filter{}, true},
		{"client-hit", Filter{HasClient: true, Client: 9}, true},
		{"client-miss", Filter{HasClient: true, Client: 8}, false},
		{"prefix-hit", Filter{TxPrefix: []byte("Ax")}, true},
		{"prefix-miss", Filter{TxPrefix: []byte("C")}, false},
		{"conjunction-same-tx", Filter{HasClient: true, Client: 7, TxPrefix: []byte("A")}, true},
		// Client 9's tx starts with 'B', client 7's with 'A': both conditions
		// hold somewhere in the block but on no single transaction.
		{"conjunction-split", Filter{HasClient: true, Client: 9, TxPrefix: []byte("A")}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.flt.MatchBlock(body); got != tc.block {
				t.Fatalf("MatchBlock = %v, want %v", got, tc.block)
			}
			cur := Cursor{Worker: 2, Round: 77}
			wire := marshalSubscribe(cur, tc.flt)
			gotCur, gotFlt, err := decodeSubscribe(wire[5:])
			if err != nil {
				t.Fatal(err)
			}
			if gotCur != cur {
				t.Fatalf("cursor round trip: %+v", gotCur)
			}
			if gotFlt.HasClient != tc.flt.HasClient || gotFlt.Client != tc.flt.Client ||
				string(gotFlt.TxPrefix) != string(tc.flt.TxPrefix) {
				t.Fatalf("filter round trip: got %+v, want %+v", gotFlt, tc.flt)
			}
		})
	}
}

// TestFilteredResumeAcrossReplayAndLive is the filter-semantics contract of
// the fan-out hub: a prefix-filtered subscription sees exactly the matching
// blocks whether they arrive via cohort replay or the live ring, and a
// subscriber that disconnects mid-stream and resumes at Cursor.Next sees
// exactly the matching suffix — no gaps, no duplicates — across both tiers.
func TestFilteredResumeAcrossReplayAndLive(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	log, _, err := store.Open(filepath.Join(t.TempDir(), "w0.log"), store.Options{Registry: ks.Registry, Instance: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	blocks := buildFilterBlocks(t, ks, 40)
	node := newFakeNode(t, log)
	// Rounds 1..25 are history from before the server existed; 26..40 are
	// delivered live later.
	for _, blk := range blocks[:25] {
		node.deliver(blk)
	}
	srv := NewServer(node, ServerOptions{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	flt := Filter{TxPrefix: []byte{'A'}} // rounds divisible by 3

	recv := func(events <-chan BlockEvent, want uint64, via string) {
		t.Helper()
		select {
		case ev := <-events:
			if ev.Err != nil {
				t.Fatalf("%s: stream error before round %d: %v", via, want, ev.Err)
			}
			if r := ev.Block.Signed.Header.Round; r != want {
				t.Fatalf("%s: got round %d, want %d (filtered gap or duplicate)", via, r, want)
			}
			if ev.Block.Hash() != blocks[want-1].Hash() {
				t.Fatalf("%s: round %d content mismatch", via, want)
			}
		case <-ctx.Done():
			t.Fatalf("%s: timed out waiting for round %d", via, want)
		}
	}

	// First connection: filtered from genesis, replay tier. Take the first
	// five matches (rounds 3..15), then vanish mid-stream.
	c1, err := Dial(srv.Addr(), 1, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev1, err := c1.SubscribeFiltered(ctx, Cursor{}, flt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []uint64{3, 6, 9, 12, 15} {
		recv(ev1, r, "replay before disconnect")
	}
	c1.Close()

	// Resume just past the last received block. Rounds 16..25 are served
	// from shared cohort replay (the hub has seen no live delivery yet),
	// then the subscriber is promoted and rounds 26..40 arrive via the ring.
	c2, err := Dial(srv.Addr(), 2, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ev2, err := c2.SubscribeFiltered(ctx, Cursor{Worker: 0, Round: 16}, flt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []uint64{18, 21, 24} {
		recv(ev2, r, "resumed replay")
	}
	for _, blk := range blocks[25:] {
		node.deliver(blk)
	}
	for _, r := range []uint64{27, 30, 33, 36, 39} {
		recv(ev2, r, "live tail")
	}
	// The suffix is exhausted: nothing else may arrive (a non-matching or
	// duplicate block here means the live tier applied the filter
	// differently than replay).
	select {
	case ev := <-ev2:
		t.Fatalf("unexpected trailing event: err=%v round=%d", ev.Err, ev.Block.Signed.Header.Round)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestHubEncodesOncePerBlock pins the tentpole invariant at small scale,
// where it is exact: with every subscriber in the live tier, each delivered
// block is marshaled exactly once however many subscribers receive it.
func TestHubEncodesOncePerBlock(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	log, _, err := store.Open(filepath.Join(t.TempDir(), "w0.log"), store.Options{Registry: ks.Registry, Instance: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	node := newFakeNode(t, log)
	srv := NewServer(node, ServerOptions{})
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const subs, nblocks = 3, 10
	var chans []<-chan BlockEvent
	for i := 0; i < subs; i++ {
		sc, cc := net.Pipe()
		if err := srv.ServeConn(sc); err != nil {
			t.Fatal(err)
		}
		c, err := Attach(cc, uint64(i+1), DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		events, err := c.Subscribe(ctx, Cursor{})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, events)
	}
	// Wait for all subscribers to reach the live tier (frontier promotion)
	// so every delivery goes through the shared ring.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if srv.Fanout().LiveSubs == subs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscribers never reached the live tier: %+v", srv.Fanout())
		}
		time.Sleep(time.Millisecond)
	}
	for _, blk := range buildFilterBlocks(t, ks, nblocks) {
		node.deliver(blk)
	}
	for i, events := range chans {
		for want := uint64(1); want <= nblocks; want++ {
			select {
			case ev := <-events:
				if ev.Err != nil || ev.Block.Signed.Header.Round != want {
					t.Fatalf("sub %d: err=%v round=%d want %d", i, ev.Err, ev.Block.Signed.Header.Round, want)
				}
			case <-ctx.Done():
				t.Fatalf("sub %d: timed out at round %d", i, want)
			}
		}
	}
	fs := srv.Fanout()
	if fs.FramesEncoded != nblocks {
		t.Fatalf("FramesEncoded = %d, want exactly %d (encode-once violated)", fs.FramesEncoded, nblocks)
	}
	if fs.FramesShared != subs*nblocks {
		t.Fatalf("FramesShared = %d, want %d", fs.FramesShared, subs*nblocks)
	}
	if fs.BytesSent != uint64(subs)*fs.BytesEncoded {
		t.Fatalf("BytesSent = %d, want %d × BytesEncoded(%d)", fs.BytesSent, subs, fs.BytesEncoded)
	}
}

// TestFanoutSoakStalledSubscriber is the 10k-subscriber soak (scaled down
// under -short): every healthy subscriber receives every block while one
// deliberately stalled subscriber — it never reads its connection — is
// parked and then demoted to a replay cohort, provably unable to delay the
// others (the healthy streams complete while it is stuck; delivery never
// blocks).
func TestFanoutSoakStalledSubscriber(t *testing.T) {
	subs := 10000
	if testing.Short() {
		subs = 500
	}
	const nblocks = 60

	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	log, _, err := store.Open(filepath.Join(t.TempDir(), "w0.log"), store.Options{Registry: ks.Registry, Instance: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	node := newFakeNode(t, log)
	// A small ring and send queue make the stall observable within 60
	// blocks: the stalled connection's queue fills at 8 frames, and once the
	// ring advances 16 positions past its cursor it must be demoted.
	srv := NewServer(node, ServerOptions{
		SendQueueCap: 8,
		Hub:          HubConfig{RingCap: 16},
	})
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// The stalled subscriber: raw wire handshake + SUBSCRIBE, then it never
	// reads again. Its server-side write loop blocks on the synchronous
	// pipe; its send queue fills; the hub must park and demote it without
	// anyone else noticing.
	stalledSrv, stalledCli := net.Pipe()
	if err := srv.ServeConn(stalledSrv); err != nil {
		t.Fatal(err)
	}
	go func() {
		stalledCli.Write(marshalHello(helloMsg{Magic: Magic, Version: Version, ClientID: 1}))
		readFrame(stalledCli) // WELCOME — then stop draining forever
		stalledCli.Write(marshalSubscribe(Cursor{}, Filter{}))
	}()

	// Healthy subscribers, attached from a bounded pool of dialers.
	var (
		wg       sync.WaitGroup
		received atomic.Uint64
		failures atomic.Uint64
		firstErr atomic.Value
	)
	// sem bounds concurrent handshakes, not subscriber lifetimes: it is
	// released once the subscription is established, while the subscriber
	// goroutine lives on consuming its stream.
	sem := make(chan struct{}, 64)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(id uint64) {
			defer wg.Done()
			attached := false
			release := func() {
				if !attached {
					attached = true
					<-sem
				}
			}
			defer release()
			fail := func(err error) {
				failures.Add(1)
				firstErr.CompareAndSwap(nil, err)
			}
			sc, cc := net.Pipe()
			if err := srv.ServeConn(sc); err != nil {
				fail(err)
				return
			}
			c, err := Attach(cc, id, DialOptions{Timeout: 2 * time.Minute, SubscribeBuffer: 4})
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			events, err := c.Subscribe(ctx, Cursor{})
			if err != nil {
				fail(err)
				return
			}
			release()
			for want := uint64(1); want <= nblocks; want++ {
				select {
				case ev := <-events:
					if ev.Err != nil || ev.Block.Signed.Header.Round != want {
						fail(fmt.Errorf("sub %d: err=%v round=%d want %d", id, ev.Err, ev.Block.Signed.Header.Round, want))
						return
					}
					received.Add(1)
				case <-ctx.Done():
					fail(fmt.Errorf("sub %d: timed out at round %d", id, want))
					return
				}
			}
			// Subscriber ids start far above the tx client ids that
			// buildFilterBlocks embeds (900/901): a block's COMMIT receipt is
			// routed to the session registered under its tx's client id, and a
			// collision would spray receipt frames into a subscriber's already
			// full send queue until the overflow kill switch fires.
		}(uint64(i + 1_000_000))
	}

	// Drive blocks while subscribers are still attaching: late subscribers
	// catch up through cohort replay or the ring, early ones ride the live
	// tier — both paths under one sustained delivery load.
	blocks := buildFilterBlocks(t, ks, nblocks)
	for i, blk := range blocks {
		node.deliver(blk)
		if i%4 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d healthy subscribers failed; first: %v", n, firstErr.Load())
	}
	if got, want := received.Load(), uint64(subs)*nblocks; got != want {
		t.Fatalf("received %d block events, want %d", got, want)
	}
	fs := srv.Fanout()
	if fs.Demotions == 0 {
		t.Fatalf("stalled subscriber was never demoted to a cohort: %+v", fs)
	}
	if fs.OverflowDisconnects != 0 {
		t.Fatalf("a session hit the control-overflow kill switch: %+v", fs)
	}
	// The sharing ratio at scale: frames encoded must stay within a small
	// multiple of the block count (cohort sweeps may re-encode a block the
	// ring already dropped), not scale with subscribers.
	if fs.FramesEncoded > 8*nblocks {
		t.Fatalf("FramesEncoded = %d for %d blocks: encoding scales with subscribers", fs.FramesEncoded, nblocks)
	}
	if fs.FramesShared < uint64(subs)*nblocks {
		t.Fatalf("FramesShared = %d, want >= %d", fs.FramesShared, uint64(subs)*nblocks)
	}
	t.Logf("fanout soak: subs=%d blocks=%d encoded=%d shared=%d demotions=%d promotions=%d cohortReplays=%d",
		subs, nblocks, fs.FramesEncoded, fs.FramesShared, fs.Demotions, fs.Promotions, fs.CohortReplays)
}

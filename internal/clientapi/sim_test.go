package clientapi

// Client-API behavior under simulated cluster faults (internal/simnet): the
// serving node is partitioned away from its peers mid-session, or crashed
// and restarted from disk, while a remote session keeps submitting and
// streaming. The session contract under test: every acked write resolves
// with exactly one commit receipt (no loss through the partition, no
// duplicate inclusion in the definite stream), and cursor replay across a
// server crash stays gap-free.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/flo"
	"repro/internal/simnet"
)

// simCluster is a 4-node cluster over a seeded SimNetwork with a clientapi
// server fronting node 0.
type simCluster struct {
	net   *simnet.SimNetwork
	nodes []*flo.Node
	srv   *Server
	ks    *flcrypto.KeySet
	dirs  []string
}

func newSimCluster(t *testing.T, seed int64, tweak func(i int, dir string, cfg *flo.Config)) *simCluster {
	t.Helper()
	const n = 4
	c := &simCluster{
		net: simnet.New(simnet.Config{N: n, Seed: seed}),
		ks:  flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519),
	}
	c.dirs = make([]string, n)
	for i := 0; i < n; i++ {
		c.dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("node%d", i))
		cfg := flo.Config{
			Endpoint:     c.net.Endpoint(flcrypto.NodeID(i)),
			Registry:     c.ks.Registry,
			Priv:         c.ks.Privs[i],
			Workers:      1,
			BatchSize:    8,
			InitialTimer: 25 * time.Millisecond,
			ViewTimeout:  250 * time.Millisecond,
		}
		if tweak != nil {
			tweak(i, c.dirs[i], &cfg)
		}
		node, err := flo.NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
	}
	c.srv = NewServer(c.nodes[0], ServerOptions{})
	if err := c.srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for _, node := range c.nodes {
		node.Start()
	}
	t.Cleanup(func() {
		c.srv.Close()
		for _, node := range c.nodes {
			if node != nil {
				node.Stop()
			}
		}
		c.net.Close()
	})
	return c
}

// TestSessionPartitionHealExactlyOneReceipt drives a session through a
// partition that cuts the serving node off from its peers: writes submitted
// before and during the partition are acked (they pool on the node) but
// cannot commit until the links heal. Every acked write must then resolve
// with exactly one receipt, and the definite stream must contain each
// (client, seq) exactly once — no write lost in the pool, none duplicated
// by the re-propose path.
func TestSessionPartitionHealExactlyOneReceipt(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster scenario")
	}
	c := newSimCluster(t, 4242, func(i int, _ string, cfg *flo.Config) {
		// Short leases: a write whose tentative block was dropped during the
		// partition re-pools (and re-proposes) quickly after healing.
		cfg.LeaseTimeout = 800 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cl, err := Dial(c.srv.Addr(), 77, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const before, during = 40, 40
	var pendings []*Pending
	submit := func(k int) {
		t.Helper()
		for j := 0; j < k; j++ {
			p, err := cl.Submit([]byte(fmt.Sprintf("op-%d", len(pendings))))
			if err != nil {
				t.Fatalf("submit %d: %v", len(pendings), err)
			}
			pendings = append(pendings, p)
		}
	}
	submit(before)

	// Cut the serving node off from the cluster (its client port stays up:
	// the TCP session is outside the simulated fabric). Lossy links on the
	// heal add seeded drop/duplication noise to the commit path.
	c.net.Isolate(0)
	submit(during)
	for _, p := range pendings[before:] {
		select {
		case <-p.Acked():
		case <-ctx.Done():
			t.Fatal("write submitted during the partition was never acked")
		}
	}
	time.Sleep(700 * time.Millisecond)
	c.net.SetLinkFaults(0.05, 0.02, 2*time.Millisecond)
	c.net.Partition() // heal
	defer c.net.SetLinkFaults(0, 0, 0)

	// Every acked write resolves with a receipt.
	receipts := make(map[uint64]Receipt, len(pendings))
	for i, p := range pendings {
		r, err := p.Wait(ctx)
		if err != nil {
			// Diagnose before failing: is the write lost from the system,
			// stranded in a tentative block, or committed with its receipt
			// lost? (The nightly campaigns act on this line.)
			var where []string
			for ni, node := range c.nodes {
				ch := node.Worker(0).Chain()
				for rr := ch.Base() + 1; rr <= ch.Tip(); rr++ {
					if blk, ok := ch.BlockAt(rr); ok {
						for _, tx := range blk.Body.Txs {
							if tx.Client == 77 && tx.Seq == p.Tx.Seq {
								kind := "definite"
								if rr > ch.Definite() {
									kind = "tentative"
								}
								where = append(where, fmt.Sprintf("node%d@%d(%s)", ni, rr, kind))
							}
						}
					}
				}
			}
			t.Fatalf("pending %d (seq %d) failed: %v; found in %v (empty = lost); node0 def=%d tip=%d poolPending=%d",
				i, p.Tx.Seq, err, where,
				c.nodes[0].Worker(0).Chain().Definite(), c.nodes[0].Worker(0).Chain().Tip(),
				c.nodes[0].PoolPending())
		}
		if r.Round == 0 {
			t.Fatalf("pending %d resolved with a zero receipt", i)
		}
		if prev, dup := receipts[p.Tx.Seq]; dup {
			t.Fatalf("seq %d received two receipts: %+v and %+v", p.Tx.Seq, prev, r)
		}
		receipts[p.Tx.Seq] = r
	}
	c.net.SetLinkFaults(0, 0, 0)

	// The definite stream contains each sequence at least once, including
	// in the block its receipt names. At-least-once, not exactly-once: a
	// write leased into a tentative block that a partition strands can be
	// re-proposed after its lease expires while the original block still
	// decides later — both inclusions finalize, the session resolves on
	// the first receipt, and duplicate occurrences are the application
	// layer's to absorb (statemachine.Replica is idempotent for exactly
	// this reason). Duplicates are logged for visibility.
	events, err := cl.Subscribe(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]int)
	blocks := make(map[Cursor]flcrypto.Hash)
	maxRound := uint64(0)
	for _, r := range receipts {
		if r.Round > maxRound {
			maxRound = r.Round
		}
	}
	for {
		var ev BlockEvent
		var ok bool
		select {
		case ev, ok = <-events:
		case <-ctx.Done():
			t.Fatalf("timed out scanning the stream (saw %d/%d seqs)", len(seen), len(receipts))
		}
		if !ok || ev.Err != nil {
			t.Fatalf("stream ended early: %v", ev.Err)
		}
		round := ev.Block.Signed.Header.Round
		blocks[Cursor{Worker: ev.Worker, Round: round}] = ev.Block.Hash()
		for _, tx := range ev.Block.Body.Txs {
			if tx.Client == 77 {
				seen[tx.Seq]++
			}
		}
		if round > maxRound {
			break // past every receipt: all inclusions are behind us
		}
	}
	dups := 0
	for seq := range receipts {
		switch n := seen[seq]; {
		case n == 0:
			t.Errorf("seq %d has a receipt but never appears in the definite stream", seq)
		case n > 1:
			dups++
		}
	}
	if dups > 0 {
		t.Logf("%d/%d writes appear more than once in the stream (lease-expiry re-proposal racing a late-deciding block; receipts stayed exactly-once)", dups, len(receipts))
	}
	for seq, n := range seen {
		if _, ours := receipts[seq]; !ours && n > 0 {
			t.Errorf("stream carries unknown seq %d for our client", seq)
		}
	}
	for seq, r := range receipts {
		if h, ok := blocks[Cursor{Worker: r.Worker, Round: r.Round}]; ok && h != r.BlockHash {
			t.Errorf("seq %d receipt names block %x, stream delivered %x at (%d,%d)",
				seq, r.BlockHash[:8], h[:8], r.Worker, r.Round)
		}
	}
}

// TestCursorReplayAcrossServerCrashGapFree crashes the serving node (server
// and node both), restarts it from its DataDir, and resumes the block
// subscription from the last cursor: the replayed stream must continue
// exactly at the cursor with no gap, no duplicate, and the same blocks the
// cluster delivered.
func TestCursorReplayAcrossServerCrashGapFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster scenario")
	}
	c := newSimCluster(t, 777, func(i int, dir string, cfg *flo.Config) {
		cfg.Saturate = 32 // self-generating load keeps the chain moving
		cfg.DataDir = dir
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cl, err := Dial(c.srv.Addr(), 88, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events, err := cl.Subscribe(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		cur  Cursor
		hash flcrypto.Hash
	}
	var got []key
	cursor := Cursor{}
	for len(got) < 12 {
		select {
		case ev, ok := <-events:
			if !ok || ev.Err != nil {
				t.Fatalf("pre-crash stream ended: %v", ev.Err)
			}
			at := Cursor{Worker: ev.Worker, Round: ev.Block.Signed.Header.Round}
			got = append(got, key{cur: at, hash: ev.Block.Hash()})
			cursor = at.Next(cl.Workers())
		case <-ctx.Done():
			t.Fatal("timed out on pre-crash stream")
		}
	}
	cl.Close()

	// Crash the serving node: server down, node down, links dark.
	c.srv.Close()
	c.net.Crash(0)
	c.nodes[0].Stop()

	// The survivors keep finalizing while the server is gone.
	target := c.nodes[1].Worker(0).Chain().Definite() + 8
	deadline := time.Now().Add(60 * time.Second)
	for c.nodes[1].Worker(0).Chain().Definite() < target {
		if time.Now().After(deadline) {
			t.Fatal("survivors stalled while the serving node was down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart from disk on a fresh endpoint, with a fresh server.
	c.net.Heal(0)
	node, err := flo.NewNode(flo.Config{
		Endpoint:     c.net.Reattach(0),
		Registry:     c.ks.Registry,
		Priv:         c.ks.Privs[0],
		Workers:      1,
		BatchSize:    8,
		Saturate:     32,
		DataDir:      c.dirs[0],
		InitialTimer: 25 * time.Millisecond,
		ViewTimeout:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[0] = node
	if node.Worker(0).Chain().Definite() == 0 {
		t.Fatal("restart replayed nothing from disk")
	}
	c.srv = NewServer(node, ServerOptions{})
	if err := c.srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	node.Start()

	// Resume at the saved cursor: the stream must continue contiguously.
	cl2, err := Dial(c.srv.Addr(), 88, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	events2, err := cl2.Subscribe(ctx, cursor)
	if err != nil {
		t.Fatal(err)
	}
	expect := cursor
	for resumed := 0; resumed < 20; resumed++ {
		select {
		case ev, ok := <-events2:
			if !ok || ev.Err != nil {
				t.Fatalf("resumed stream ended after %d blocks: %v", resumed, ev.Err)
			}
			at := Cursor{Worker: ev.Worker, Round: ev.Block.Signed.Header.Round}
			if at != expect {
				t.Fatalf("gap in resumed stream: got (%d,%d), want (%d,%d)",
					at.Worker, at.Round, expect.Worker, expect.Round)
			}
			expect = at.Next(cl2.Workers())
		case <-ctx.Done():
			t.Fatal("timed out on resumed stream")
		}
	}

	// The pre-crash prefix the restarted node replays matches what we saw.
	for _, k := range got {
		hdr, ok := node.Worker(int(k.cur.Worker)).Chain().HeaderAt(k.cur.Round)
		if !ok {
			t.Fatalf("restarted node lost round %d", k.cur.Round)
		}
		if hdr.Hash() != k.hash {
			t.Fatalf("restarted node rewrote round %d", k.cur.Round)
		}
	}
}

package clientapi

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/types"
)

// Pending is an in-flight write: a submitted transaction on its way to a
// definite block. It resolves exactly once — with the commit Receipt when
// the transaction reaches a definite block of the merged order, or with an
// error (submission rejected, session closed). Both the in-process and the
// remote session produce Pendings, so callers are agnostic to the transport.
type Pending struct {
	// Tx is the submitted transaction with its assigned sequence number.
	Tx types.Transaction

	acked    chan struct{}
	ackOnce  sync.Once
	done     chan struct{}
	mu       sync.Mutex
	resolved bool
	receipt  Receipt
	err      error
}

// NewPending creates an unresolved Pending for tx, returning it with its
// ack marker and resolver. Both are idempotent and safe from any goroutine;
// sessions call ack when the node accepts the write and resolve when the
// commit receipt arrives (or the session dies). Resolution implies the ack.
func NewPending(tx types.Transaction) (p *Pending, ack func(), resolve func(Receipt, error)) {
	p = &Pending{Tx: tx, acked: make(chan struct{}), done: make(chan struct{})}
	return p, p.ack, p.resolve
}

func (p *Pending) resolve(r Receipt, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.resolved {
		return
	}
	p.resolved = true
	p.receipt = r
	p.err = err
	p.ack() // a commit implies acceptance even if the ACK frame was lost
	close(p.done)
}

// ack marks the write accepted by the node (the SUBMIT→ACK half of the
// round trip). Idempotent under concurrency (a session's submit path and a
// racing commit may both call it). Sessions call it; resolution implies it.
func (p *Pending) ack() {
	p.ackOnce.Do(func() { close(p.acked) })
}

// Acked returns a channel closed once the node has accepted the write into
// a worker pool (the ACK). Commitment follows later via Done.
func (p *Pending) Acked() <-chan struct{} { return p.acked }

// Done returns a channel closed when the write has resolved (committed or
// failed). After it closes, Wait returns immediately.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the write resolves or ctx ends, returning the commit
// receipt: the worker, round, and block hash of the definite block the
// transaction landed in.
func (p *Pending) Wait(ctx context.Context) (Receipt, error) {
	select {
	case <-p.done:
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.receipt, p.err
	case <-ctx.Done():
		return Receipt{}, fmt.Errorf("clientapi: waiting for tx (client %d, seq %d): %w",
			p.Tx.Client, p.Tx.Seq, ctx.Err())
	}
}

package clientapi

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/statemachine"
	"repro/internal/store"
	"repro/internal/types"
)

// fakeNode implements Node over a real store.BlockLog (single worker): the
// deterministic harness for the cursor-replay engine. Tests drive the
// "cluster" by appending blocks and announcing them to subscribers — so a
// replay-vs-live race never depends on consensus timing.
type fakeNode struct {
	t   *testing.T
	log *store.BlockLog

	mu      sync.Mutex
	subs    map[uint64]func(uint32, types.Block)
	nextSub uint64
	clients map[uint64]bool
	submits []types.Transaction
}

func newFakeNode(t *testing.T, log *store.BlockLog) *fakeNode {
	return &fakeNode{
		t:       t,
		log:     log,
		subs:    make(map[uint64]func(uint32, types.Block)),
		clients: make(map[uint64]bool),
	}
}

func (f *fakeNode) ID() flcrypto.NodeID { return 0 }
func (f *fakeNode) N() int              { return 4 }
func (f *fakeNode) Workers() int        { return 1 }

func (f *fakeNode) Submit(tx types.Transaction) error {
	f.mu.Lock()
	f.submits = append(f.submits, tx)
	f.mu.Unlock()
	return nil
}

func (f *fakeNode) SubscribeDeliver(fn func(uint32, types.Block)) func() {
	f.mu.Lock()
	id := f.nextSub
	f.nextSub++
	f.subs[id] = fn
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		delete(f.subs, id)
		f.mu.Unlock()
	}
}

func (f *fakeNode) ReadDefinite(w uint32, from uint64, max int) ([]types.Block, error) {
	if w != 0 {
		return nil, fmt.Errorf("fake: worker %d out of range", w)
	}
	return f.log.ReadFrom(from, max)
}

func (f *fakeNode) RegisterClient(id uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clients[id] {
		return fmt.Errorf("fake: client %d already registered", id)
	}
	f.clients[id] = true
	return nil
}

func (f *fakeNode) UnregisterClient(id uint64) {
	f.mu.Lock()
	delete(f.clients, id)
	f.mu.Unlock()
}

func (f *fakeNode) DeliveredBlocks() uint64 { return f.log.Tip() }
func (f *fakeNode) DeliveredTxs() uint64    { return 0 }

func (f *fakeNode) PoolPending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.submits)
}

// State reads: the fake mirrors a node without a configured backend.
func (f *fakeNode) StateGet(ctx context.Context, key string, worker uint32, round uint64) ([]byte, bool, error) {
	return nil, false, statemachine.ErrNoState
}

func (f *fakeNode) StateScan(ctx context.Context, begin, end string, max int, worker uint32, round uint64) ([]statemachine.Entry, error) {
	return nil, statemachine.ErrNoState
}

func (f *fakeNode) StateWatch(ctx context.Context, key string, worker uint32, round uint64) (<-chan statemachine.KeyUpdate, func(), error) {
	return nil, nil, statemachine.ErrNoState
}

// deliver appends blk to the log and announces it to subscribers — the
// fake's stand-in for a definite decision plus merged delivery.
func (f *fakeNode) deliver(blk types.Block) {
	if err := f.log.Append(blk); err != nil {
		f.t.Errorf("fake append: %v", err)
	}
	f.mu.Lock()
	subs := make([]func(uint32, types.Block), 0, len(f.subs))
	for _, fn := range f.subs {
		subs = append(subs, fn)
	}
	f.mu.Unlock()
	for _, fn := range subs {
		fn(0, blk)
	}
}

// buildChainBlocks produces a linked single-worker chain of n blocks.
func buildChainBlocks(t *testing.T, ks *flcrypto.KeySet, n int) []types.Block {
	t.Helper()
	prev := types.GenesisHeader(0).Hash()
	var out []types.Block
	for r := 1; r <= n; r++ {
		proposer := (r - 1) % ks.Registry.N()
		blk, err := types.NewBlock(0, uint64(r), flcrypto.NodeID(proposer), prev,
			[]types.Transaction{{Client: 900, Seq: uint64(r), Payload: []byte{byte(r)}}},
			ks.Privs[proposer])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, blk)
		prev = blk.Hash()
	}
	return out
}

// TestStreamReplayAcrossCompaction is the reconnect-replay contract: a
// cursor into the retained tail of a checkpointed (compacted) log replays
// the historical suffix — across the compaction rewrite — and hands over to
// the live tail with no gap and no duplicate.
func TestStreamReplayAcrossCompaction(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	dir := t.TempDir()
	log, _, err := store.Open(filepath.Join(dir, "w0.log"), store.Options{Registry: ks.Registry, Instance: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	blocks := buildChainBlocks(t, ks, 40)
	for _, blk := range blocks[:30] {
		if err := log.Append(blk); err != nil {
			t.Fatal(err)
		}
	}
	// Compact: retain 13 rounds below the tip → base 17; rounds 1..17 are
	// gone from the log, exactly what a client that lingered too long sees.
	if err := log.Checkpoint(filepath.Join(dir, "w0.snap"), 0, 0, nil, 13); err != nil {
		t.Fatal(err)
	}
	if log.Base() != 17 {
		t.Fatalf("base = %d, want 17", log.Base())
	}

	node := newFakeNode(t, log)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	got := make(chan types.Block, 64)
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- Stream(ctx, node, Cursor{Worker: 0, Round: 23}, func(_ uint32, blk types.Block) error {
			got <- blk
			return nil
		})
	}()

	next := uint64(23)
	recv := func(why string) types.Block {
		t.Helper()
		select {
		case blk := <-got:
			if r := blk.Signed.Header.Round; r != next {
				t.Fatalf("%s: got round %d, want %d (gap or duplicate)", why, r, next)
			}
			if blk.Hash() != blocks[next-1].Hash() {
				t.Fatalf("%s: round %d content mismatch", why, next)
			}
			next++
			return blk
		case err := <-streamErr:
			t.Fatalf("%s: stream ended early: %v", why, err)
		case <-ctx.Done():
			t.Fatalf("%s: timed out waiting for round %d", why, next)
		}
		panic("unreachable")
	}

	// Historical suffix 23..30 from the compacted log.
	for next <= 30 {
		recv("replay")
	}
	// Live tail: new blocks delivered while the stream is attached.
	for _, blk := range blocks[30:] {
		node.deliver(blk)
	}
	for next <= 40 {
		recv("live tail")
	}
	cancel()
	if err := <-streamErr; !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stream end: %v", err)
	}
}

// TestStreamCursorBelowRetainedHistory: a cursor at or below the compaction
// base cannot be served and must fail loudly, not stream a gapped history.
func TestStreamCursorBelowRetainedHistory(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	dir := t.TempDir()
	log, _, err := store.Open(filepath.Join(dir, "w0.log"), store.Options{Registry: ks.Registry, Instance: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	for _, blk := range buildChainBlocks(t, ks, 30) {
		if err := log.Append(blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Checkpoint(filepath.Join(dir, "w0.snap"), 0, 0, nil, 13); err != nil {
		t.Fatal(err)
	}

	node := newFakeNode(t, log)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = Stream(ctx, node, Cursor{Worker: 0, Round: 5}, func(uint32, types.Block) error { return nil })
	if !errors.Is(err, store.ErrCompacted) {
		t.Fatalf("stream below base returned %v, want ErrCompacted", err)
	}
}

// TestRemoteCursorBelowRetainedHistoryTyped: the compaction error must
// survive the wire as a typed error — a remote consumer detects the gap
// with errors.Is exactly like an in-process one.
func TestRemoteCursorBelowRetainedHistoryTyped(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	dir := t.TempDir()
	log, _, err := store.Open(filepath.Join(dir, "w0.log"), store.Options{Registry: ks.Registry, Instance: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	for _, blk := range buildChainBlocks(t, ks, 30) {
		if err := log.Append(blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Checkpoint(filepath.Join(dir, "w0.snap"), 0, 0, nil, 13); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(newFakeNode(t, log), ServerOptions{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), 1, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events, err := c.Subscribe(ctx, Cursor{Worker: 0, Round: 5}) // below base 17
	if err != nil {
		t.Fatal(err)
	}
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed without the typed compaction error")
			}
			if ev.Err == nil {
				t.Fatalf("got a block (round %d) from below retained history", ev.Block.Signed.Header.Round)
			}
			if !errors.Is(ev.Err, ErrCompacted) {
				t.Fatalf("terminal error %v is not ErrCompacted", ev.Err)
			}
			return
		case <-ctx.Done():
			t.Fatal("timed out waiting for the terminal event")
		}
	}
}

// TestStreamSlowConsumerFallsBackToReplay: a consumer slower than block
// production must overflow the live buffer and be served from replay (at
// its own pace) rather than stall the delivery path — and still observe
// every block exactly once.
func TestStreamSlowConsumerFallsBackToReplay(t *testing.T) {
	ks := flcrypto.MustGenerateKeySet(4, flcrypto.Ed25519)
	log, _, err := store.Open(filepath.Join(t.TempDir(), "w0.log"), store.Options{Registry: ks.Registry, Instance: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	total := liveBufCap + 200
	blocks := buildChainBlocks(t, ks, total)

	node := newFakeNode(t, log)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	gate := make(chan struct{})
	events := make(chan types.Block, total)
	done := make(chan error, 1)
	go func() {
		done <- Stream(ctx, node, Cursor{}, func(_ uint32, blk types.Block) error {
			<-gate // consumer paced by the test
			events <- blk
			return nil
		})
	}()

	// Deliver one block to park the stream on the live tail, let the
	// consumer take it, then flood more than liveBufCap while it is stuck.
	node.deliver(blocks[0])
	gate <- struct{}{}
	for _, blk := range blocks[1:] {
		node.deliver(blk) // must never block: delivery-path contract
	}
	for i := 1; i < total; i++ {
		select {
		case gate <- struct{}{}:
		case err := <-done:
			t.Fatalf("stream died after %d blocks: %v", i, err)
		case <-ctx.Done():
			t.Fatalf("timed out unblocking consumer at block %d", i)
		}
	}
	for i := 0; i < total; i++ {
		select {
		case blk := <-events:
			if blk.Signed.Header.Round != uint64(i+1) {
				t.Fatalf("position %d holds round %d (gap or duplicate)", i, blk.Signed.Header.Round)
			}
		case err := <-done:
			t.Fatalf("stream ended with %d/%d blocks: %v", i, total, err)
		case <-ctx.Done():
			t.Fatalf("timed out at block %d/%d", i, total)
		}
	}
	cancel()
	<-done
}

// TestCursorArithmetic pins the merged-order cursor algebra the protocol's
// resume semantics rest on.
func TestCursorArithmetic(t *testing.T) {
	if (Cursor{}).pos(3) != 0 {
		t.Fatal("zero cursor must be position 0")
	}
	c := Cursor{Worker: 0, Round: 1}
	want := []Cursor{{1, 1}, {2, 1}, {0, 2}, {1, 2}, {2, 2}, {0, 3}}
	for i, w := range want {
		c = c.Next(3)
		if c != w {
			t.Fatalf("step %d: got %+v, want %+v", i, c, w)
		}
	}
	if p := (Cursor{Worker: 2, Round: 5}).pos(3); p != 14 {
		t.Fatalf("pos(2,5) with ω=3 = %d, want 14", p)
	}
}

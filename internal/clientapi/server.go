package clientapi

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// ServerOptions tune a Server.
type ServerOptions struct {
	// SendQueueCap bounds each connection's outbound queue in frames
	// (default 4096). A BLOCK frame arriving at a full queue parks the
	// subscriber at the fan-out hub (it is retried from the shared ring, or
	// demoted to a replay cohort, once the connection drains) — backpressure
	// that paces the stream to the client without a blocked goroutine.
	// Control frames (ACK, COMMIT, replies) originate on goroutines that
	// must never block — the node's delivery path among them — so a queue
	// still full when one arrives declares the client dead and closes the
	// connection; the client redials and resumes from its cursor.
	SendQueueCap int
	// Logf, when set, receives server diagnostics (accept/handshake/conn
	// errors). Nil discards them.
	Logf func(format string, args ...any)
	// Hub tunes the fan-out hub (ring capacity, cohort segment width).
	// Hub.Logf defaults to Logf.
	Hub HubConfig
}

// Server serves the client wire protocol on behalf of one node. It owns a
// listener, one goroutine pair per connection (reader + writer), a
// SubscribeDeliver tap that routes commit receipts to the sessions whose
// transactions appear in delivered blocks, and one fan-out Hub through which
// every SUBSCRIBE stream is served (one encoding per block shared across all
// subscribers; see fanout.go — connections no longer run private replay
// loops).
type Server struct {
	node Node
	opts ServerOptions
	hub  *Hub

	ln            net.Listener
	cancelDeliver func()

	mu       sync.Mutex
	conns    map[*serverConn]bool
	sessions map[uint64]*serverConn // client id → its connection
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server for node. Call Listen to start serving
// (ServeConn serves pre-established connections without a listener).
func NewServer(node Node, opts ServerOptions) *Server {
	if opts.SendQueueCap <= 0 {
		opts.SendQueueCap = 4096
	}
	s := &Server{
		node:     node,
		opts:     opts,
		conns:    make(map[*serverConn]bool),
		sessions: make(map[uint64]*serverConn),
	}
	hubCfg := opts.Hub
	if hubCfg.Logf == nil {
		hubCfg.Logf = opts.Logf
	}
	s.hub = NewHub(node, hubCfg)
	s.cancelDeliver = node.SubscribeDeliver(s.onDeliver)
	return s
}

// Fanout snapshots the server's fan-out hub counters (frames shared vs
// encoded, cohort replays, demotions, overflow disconnects, tier sizes).
func (s *Server) Fanout() FanoutStats { return s.hub.Stats() }

// Listen binds addr and starts accepting client sessions. The bound address
// (useful with ":0") is available via Addr.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("clientapi: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("clientapi: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// ServeConn serves one client session over a pre-established connection —
// any net.Conn, typically one end of a net.Pipe. Scale tests and benches use
// it to attach tens of thousands of subscribers without consuming file
// descriptors. It returns once the session's goroutines are started; the
// connection is closed when the session ends or the server closes.
func (s *Server) ServeConn(conn net.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return errors.New("clientapi: server is closed")
	}
	c := s.newConnLocked(conn)
	s.mu.Unlock()
	s.wg.Add(2)
	go c.readLoop()
	go c.writeLoop()
	return nil
}

// newConnLocked registers a serverConn for conn; s.mu held, s not closed.
func (s *Server) newConnLocked(conn net.Conn) *serverConn {
	c := &serverConn{srv: s, conn: conn}
	c.sendCond = sync.NewCond(&c.sendMu)
	c.connCtx, c.connCancel = context.WithCancel(context.Background())
	s.conns[c] = true
	return c
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and tears down every session.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	ln := s.ln
	s.mu.Unlock()
	if s.cancelDeliver != nil {
		s.cancelDeliver()
	}
	if ln != nil {
		ln.Close()
	}
	s.hub.Close()
	for _, c := range conns {
		c.close(errors.New("server shutting down"))
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			s.logf("clientapi: accept: %v", err)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		c := s.newConnLocked(conn)
		s.mu.Unlock()
		s.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// onDeliver is the server's single tap on the merged definite stream: it
// turns every delivered transaction of a connected client into a COMMIT
// receipt on that client's session. It runs on the node's delivery
// goroutine and must not block — receipts go through the non-blocking
// control enqueue, which sacrifices the connection rather than the node.
func (s *Server) onDeliver(w uint32, blk types.Block) {
	if len(blk.Body.Txs) == 0 {
		return
	}
	// One lock acquisition per block, not per transaction — this runs on
	// the consensus delivery path, and saturated blocks carry hundreds of
	// transactions.
	type route struct {
		c   *serverConn
		seq uint64
	}
	var routes []route
	s.mu.Lock()
	if len(s.sessions) > 0 {
		for i := range blk.Body.Txs {
			tx := &blk.Body.Txs[i]
			if c := s.sessions[tx.Client]; c != nil {
				routes = append(routes, route{c: c, seq: tx.Seq})
			}
		}
	}
	s.mu.Unlock()
	if len(routes) == 0 {
		return
	}
	receipt := Receipt{Worker: w, Round: blk.Signed.Header.Round, BlockHash: blk.Hash()}
	for _, r := range routes {
		r.c.enqueueControl(marshalCommit(commitMsg{Seq: r.seq, Receipt: receipt}))
	}
}

// serverConn is one client session.
type serverConn struct {
	srv  *Server
	conn net.Conn

	clientID   uint64
	registered bool

	sendMu   sync.Mutex
	sendCond *sync.Cond
	queue    [][]byte
	closed   bool

	// The active SUBSCRIBE stream, served by the server's fan-out hub (at
	// most one per session). fanSink is the hub-facing delivery surface; it
	// doubles as the stream's identity so the hub-initiated end and the
	// client-initiated unsubscribe race to send exactly one STREAM_END.
	subMu   sync.Mutex
	fanSink *connSink
	fanSub  *hubSub

	// connCtx spans the connection's lifetime; close cancels it, unblocking
	// state reads parked on a consistency token and tearing down watches.
	connCtx    context.Context
	connCancel context.CancelFunc

	watchMu sync.Mutex
	watches map[uint64]func() // request id → watch cancel
}

// close tears the connection down once: marks the send queue closed (waking
// writer and blocked enqueuers), closes the socket, detaches the stream from
// the fan-out hub (Unsubscribe never blocks on the subscriber — close may
// run on the node's delivery path via enqueueControl overflow), and releases
// the client id. registered/clientID are guarded by srv.mu: either the
// handshake registers first (and close here releases the id) or a closing
// server wins (and handshake sees srv.closed and releases it itself).
func (c *serverConn) close(reason error) {
	c.sendMu.Lock()
	if c.closed {
		c.sendMu.Unlock()
		return
	}
	c.closed = true
	c.sendCond.Broadcast()
	c.sendMu.Unlock()
	c.conn.Close()
	c.connCancel() // unblocks token waits; watches reap themselves
	c.cancelStream(false)
	s := c.srv
	s.mu.Lock()
	delete(s.conns, c)
	registered, clientID := c.registered, c.clientID
	if registered && s.sessions[clientID] == c {
		delete(s.sessions, clientID)
	}
	s.mu.Unlock()
	if registered {
		s.node.UnregisterClient(clientID)
	}
	if reason != nil {
		s.logf("clientapi: session %d closed: %v", clientID, reason)
	}
}

// enqueueControl appends a control frame (ACK, COMMIT, replies) without
// blocking. Stream frames stop at SendQueueCap, so the [cap, 2·cap) band is
// headroom reserved for control frames — replay backpressure holding the
// queue at cap must not read as a dead client. A queue past 2·cap means the
// client has truly stopped draining; the connection is closed rather than
// letting receipts pile up unboundedly or stalling the caller (which may be
// the node's delivery goroutine).
func (c *serverConn) enqueueControl(frame []byte) {
	c.sendMu.Lock()
	if c.closed {
		c.sendMu.Unlock()
		return
	}
	if len(c.queue) >= 2*c.srv.opts.SendQueueCap {
		c.sendMu.Unlock()
		c.srv.hub.NoteOverflowDisconnect()
		c.close(errors.New("send queue overflow (slow client)"))
		return
	}
	c.queue = append(c.queue, frame)
	c.sendCond.Broadcast()
	c.sendMu.Unlock()
}

// tryEnqueueStream appends a BLOCK frame without blocking: false when the
// queue is at SendQueueCap (or the connection is closed), which tells the
// fan-out hub to park the subscriber until the write loop drains. This is
// the non-blocking half of stream backpressure — BLOCK frames never occupy
// the control headroom above SendQueueCap.
func (c *serverConn) tryEnqueueStream(frame []byte) bool {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed || len(c.queue) >= c.srv.opts.SendQueueCap {
		return false
	}
	c.queue = append(c.queue, frame)
	c.sendCond.Broadcast()
	return true
}

// enqueueStream appends a WATCH_EVENT frame, blocking while the queue is
// full — backpressure that paces a watch to the client's drain rate
// (coalescing happens upstream in the replica). It returns an error once the
// connection is closed or ctx is canceled.
func (c *serverConn) enqueueStream(ctx context.Context, frame []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	for !c.closed && ctx.Err() == nil && len(c.queue) >= c.srv.opts.SendQueueCap {
		c.sendCond.Wait()
	}
	if c.closed {
		return errors.New("clientapi: connection closed")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.queue = append(c.queue, frame)
	c.sendCond.Broadcast()
	return nil
}

func (c *serverConn) writeLoop() {
	defer c.srv.wg.Done()
	for {
		c.sendMu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.sendCond.Wait()
		}
		if len(c.queue) == 0 && c.closed {
			c.sendMu.Unlock()
			return
		}
		batch := c.queue
		c.queue = nil
		c.sendCond.Broadcast() // wake stream enqueuers blocked on the bound
		c.sendMu.Unlock()
		bufs := make(net.Buffers, len(batch))
		copy(bufs, batch)
		if _, err := bufs.WriteTo(c.conn); err != nil {
			c.close(fmt.Errorf("write: %w", err))
			return
		}
		// The queue just drained by a batch: if the hub parked this
		// connection's subscriber against a full queue, tell it to retry
		// (no-op unless parked — one atomic load).
		c.subMu.Lock()
		sub := c.fanSub
		c.subMu.Unlock()
		if sub != nil {
			c.srv.hub.Unpark(sub)
		}
	}
}

func (c *serverConn) readLoop() {
	defer c.srv.wg.Done()
	defer c.close(nil)
	if err := c.handshake(); err != nil {
		return
	}
	for {
		kind, payload, err := readFrame(c.conn)
		if err != nil {
			return
		}
		switch kind {
		case kindSubmit:
			m, err := decodeSubmit(payload)
			if err != nil {
				return
			}
			tx := types.Transaction{Client: c.clientID, Seq: m.Seq, Payload: m.Payload}
			c.enqueueControl(marshalAck(ackMsg{Seq: m.Seq, Err: errString(c.srv.node.Submit(tx))}))
		case kindSubscribe:
			cur, flt, err := decodeSubscribe(payload)
			if err != nil {
				return
			}
			c.startStream(cur, flt)
		case kindUnsubscribe:
			c.cancelStream(true)
		case kindGet:
			m, err := decodeGet(payload)
			if err != nil {
				return
			}
			c.spawn(func() { c.serveGet(m) })
		case kindScan:
			m, err := decodeScan(payload)
			if err != nil {
				return
			}
			c.spawn(func() { c.serveScan(m) })
		case kindWatch:
			m, err := decodeWatch(payload)
			if err != nil {
				return
			}
			c.spawn(func() { c.serveWatch(m) })
		case kindUnwatch:
			id, err := decodeUnwatch(payload)
			if err != nil {
				return
			}
			c.watchMu.Lock()
			cancel := c.watches[id]
			delete(c.watches, id)
			c.watchMu.Unlock()
			if cancel != nil {
				cancel()
			}
		case kindInfo:
			node := c.srv.node
			c.enqueueControl(marshalInfoReply(Info{
				Node:            int64(node.ID()),
				N:               node.N(),
				Workers:         node.Workers(),
				DeliveredBlocks: node.DeliveredBlocks(),
				DeliveredTxs:    node.DeliveredTxs(),
				PoolPending:     node.PoolPending(),
			}))
		default:
			return // unknown kind: protocol violation, drop the session
		}
	}
}

// handshake performs HELLO/WELCOME: version exact-match, then an exclusive
// claim on the client identity (duplicate and reserved ids are refused).
func (c *serverConn) handshake() error {
	kind, payload, err := readFrame(c.conn)
	if err != nil {
		return err
	}
	if kind != kindHello {
		return errors.New("clientapi: expected HELLO")
	}
	hello, err := decodeHello(payload)
	if err != nil {
		return err
	}
	refuse := func(msg string) error {
		// Written synchronously: the read loop closes the connection as soon
		// as handshake returns, which must not race the refusal onto the
		// floor. Nothing else writes this early (the session is not yet
		// registered, so no receipts or streams target it).
		c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		c.conn.Write(marshalWelcome(welcomeMsg{Version: Version, Err: msg}))
		return errors.New("clientapi: " + msg)
	}
	if hello.Magic != Magic {
		return refuse("bad magic: not a FireLedger client")
	}
	if hello.Version != Version {
		return refuse(fmt.Sprintf("unsupported protocol version %d (server speaks %d)", hello.Version, Version))
	}
	if err := c.srv.node.RegisterClient(hello.ClientID); err != nil {
		return refuse(err.Error())
	}
	node := c.srv.node
	// WELCOME is enqueued before the session becomes routable: a
	// reconnecting client may have writes from its previous connection
	// still committing, and a COMMIT enqueued ahead of the WELCOME would
	// break the handshake's frame order.
	c.enqueueControl(marshalWelcome(welcomeMsg{
		Version: Version,
		Node:    int64(node.ID()),
		N:       uint32(node.N()),
		Workers: uint32(node.Workers()),
	}))
	c.srv.mu.Lock()
	if c.srv.closed {
		// Server.Close already swept the session maps; releasing here keeps
		// the id from leaking on the node.
		c.srv.mu.Unlock()
		node.UnregisterClient(hello.ClientID)
		return errors.New("clientapi: server is closed")
	}
	c.clientID = hello.ClientID
	c.registered = true
	c.srv.sessions[hello.ClientID] = c
	c.srv.mu.Unlock()
	return nil
}

// spawn runs fn on a server-tracked goroutine (Close waits for it), unless
// the server is already closing. State reads run off the read loop because
// a consistency token may block on the applied frontier — replies therefore
// return in completion order, correlated by request id.
func (c *serverConn) spawn(fn func()) {
	s := c.srv
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1) // under s.mu: Close sets closed before it waits
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		fn()
	}()
}

// serveGet answers one GET: wait out the token, read, reply as a control
// frame (replies never block; a client that stopped draining is closed by
// the overflow guard).
func (c *serverConn) serveGet(m getMsg) {
	v, found, err := c.srv.node.StateGet(c.connCtx, m.Key, m.At.Worker, m.At.Round)
	if c.connCtx.Err() != nil {
		return // connection gone; no one to answer
	}
	c.enqueueControl(marshalGetReply(getReplyMsg{
		ID: m.ID, Found: found, Value: v, Code: readCode(err), Err: errString(err),
	}))
}

// serveScan answers one SCAN, capping the reply at MaxScanEntries and at a
// frame-size budget (huge values): a truncated reply simply carries fewer
// entries, and the client pages with begin = lastKey+"\x00".
func (c *serverConn) serveScan(m scanMsg) {
	max := int(m.Max)
	if max <= 0 || max > MaxScanEntries {
		max = MaxScanEntries
	}
	entries, err := c.srv.node.StateScan(c.connCtx, m.Begin, m.End, max, m.At.Worker, m.At.Round)
	if c.connCtx.Err() != nil {
		return
	}
	budget := MaxFrame / 2
	for i := range entries {
		budget -= 8 + len(entries[i].Key) + len(entries[i].Value)
		if budget < 0 {
			entries = entries[:i]
			break
		}
	}
	c.enqueueControl(marshalScanReply(scanReplyMsg{
		ID: m.ID, Entries: entries, Code: readCode(err), Err: errString(err),
	}))
}

// serveWatch runs one WATCH subscription: wait out the token, register the
// replica watch, then pump updates until UNWATCH, connection close, or a
// send failure. Updates use the blocking stream enqueue — backpressure is
// safe because the replica coalesces to the latest value upstream — and the
// watch always terminates with a WATCH_END.
func (c *serverConn) serveWatch(m watchMsg) {
	ch, cancel, err := c.srv.node.StateWatch(c.connCtx, m.Key, m.At.Worker, m.At.Round)
	if err != nil {
		if c.connCtx.Err() == nil {
			c.enqueueControl(marshalWatchEnd(watchEndMsg{ID: m.ID, Code: readCode(err), Err: errString(err)}))
		}
		return
	}
	c.watchMu.Lock()
	if c.watches == nil {
		c.watches = make(map[uint64]func())
	}
	if _, dup := c.watches[m.ID]; dup {
		c.watchMu.Unlock()
		cancel()
		c.enqueueControl(marshalWatchEnd(watchEndMsg{ID: m.ID, Code: readError, Err: "duplicate watch id"}))
		return
	}
	c.watches[m.ID] = cancel
	c.watchMu.Unlock()
	for upd := range ch {
		if c.enqueueStream(c.connCtx, marshalWatchEvent(watchEventMsg{ID: m.ID, Upd: upd})) != nil {
			cancel()
			// Keep draining: cancel closes ch, ending the loop.
		}
	}
	c.watchMu.Lock()
	delete(c.watches, m.ID)
	c.watchMu.Unlock()
	c.enqueueControl(marshalWatchEnd(watchEndMsg{ID: m.ID, Code: readOK}))
}

// connSink adapts a serverConn to the fan-out hub's delivery surface. The
// sink pointer identifies one subscription for the lifetime of the stream:
// STREAM_END is sent by whichever of the hub (terminal error) or the
// connection (unsubscribe / replacement) detaches it first.
type connSink struct{ c *serverConn }

func (s *connSink) TrySend(frame []byte) bool { return s.c.tryEnqueueStream(frame) }

func (s *connSink) End(err error) { s.c.streamEnded(s, err) }

// streamEnded handles a hub-initiated stream end (compacted cursor, read
// failure): if sink is still this connection's active stream, detach it and
// report the error to the client. The hub has already forgotten the
// subscription when this runs.
func (c *serverConn) streamEnded(sink *connSink, err error) {
	c.subMu.Lock()
	if c.fanSink != sink {
		c.subMu.Unlock()
		return // already replaced or unsubscribed; its STREAM_END went out
	}
	c.fanSink, c.fanSub = nil, nil
	c.subMu.Unlock()
	c.enqueueControl(marshalStreamEnd(err))
}

// startStream subscribes this connection at the server's fan-out hub,
// replacing any previous subscription (one active stream per session). The
// hub serves the replay — shared with every cohort member in the same
// segment — and the live tail from the shared frame ring; this connection
// contributes only its send queue.
func (c *serverConn) startStream(cur Cursor, flt Filter) {
	c.cancelStream(true)
	sink := &connSink{c: c}
	c.subMu.Lock()
	c.fanSink = sink
	c.subMu.Unlock()
	sub, err := c.srv.hub.Subscribe(cur, flt, sink)
	if err != nil {
		c.streamEnded(sink, err)
		return
	}
	c.subMu.Lock()
	if c.fanSink == sink {
		c.fanSub = sub
		c.subMu.Unlock()
		// If close tore the connection down while we were registering, its
		// cancelStream may have run before the handle existed: detach now
		// rather than leak the subscription at the hub.
		c.sendMu.Lock()
		closed := c.closed
		c.sendMu.Unlock()
		if closed {
			c.cancelStream(false)
		}
		return
	}
	// The hub ended the stream while we were registering the handle (e.g.
	// an immediately-compacted cursor): nothing to track.
	c.subMu.Unlock()
	c.srv.hub.Unsubscribe(sub)
}

// cancelStream detaches the active subscription from the hub, if any. With
// notify, the client is told the stream ended cleanly (unsubscribe or
// replacement by a new SUBSCRIBE); close passes false — the dying
// connection has no one to notify. Never blocks on the hub beyond its
// mutex, so it is safe on the node's delivery path (enqueueControl
// overflow → close).
func (c *serverConn) cancelStream(notify bool) {
	c.subMu.Lock()
	sink, sub := c.fanSink, c.fanSub
	c.fanSink, c.fanSub = nil, nil
	c.subMu.Unlock()
	if sink == nil {
		return
	}
	if sub != nil {
		c.srv.hub.Unsubscribe(sub)
	}
	if notify {
		c.enqueueControl(marshalStreamEnd(nil))
	}
}

package clientapi

// The node-wide fan-out hub: one delivery tap, one encoding, and one bounded
// frame ring shared by every subscriber of a server, in place of the
// per-connection replay loop + private live buffer the server used when
// subscribers numbered in the single digits.
//
// Architecture (three tiers per subscriber):
//
//   - live: the subscriber's cursor sits at the hub frontier. Every
//     delivered block is marshaled into a BLOCK frame exactly once and the
//     same []byte is handed to every live subscriber's send queue (frames
//     are immutable after finishFrame, so sharing needs no refcount). A
//     full send queue moves the subscriber to the lagging set — nothing in
//     the live tier ever blocks, so one stalled subscriber cannot delay the
//     others.
//   - lagging: the cursor is behind the frontier but still inside the hub
//     ring. Once the connection's write loop drains (Unpark), the pump
//     pushes the missed ring frames — still the shared encodings — and the
//     subscriber rejoins the live tier.
//   - cohort: the cursor fell below the ring (or the subscriber arrived
//     with a historical cursor). Subscribers are grouped into replay
//     cohorts by cursor segment; each cohort runs ONE sweep of
//     Node.ReadDefinite per pass and feeds every member from the same read
//     batch and the same encoding, instead of one private replay loop per
//     connection. A member that reaches the ring is promoted back toward
//     the live tier; promotion happens under the hub lock, serialized with
//     ring appends, so the handoff has no gap.
//
// Filters (wire protocol 1.3) are evaluated once per block per distinct
// filter — a per-frame client-id set plus a per-frame verdict cache — and a
// suppressed block just advances the subscriber's cursor.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// hubRingCap bounds the shared frame ring (the node-wide replacement for the
// per-connection liveBuffer): subscribers more than hubRingCap blocks behind
// the frontier are served from their replay cohort instead.
const hubRingCap = 1024

// hubSegSize is the width, in merged positions, of one replay-cohort
// segment: subscribers whose cursors fall in the same segment share one
// historical sweep.
const hubSegSize = 256

// FanoutStats is a snapshot of a hub's counters (Server.Fanout).
type FanoutStats struct {
	// FramesEncoded / BytesEncoded count BLOCK frame marshals: one per
	// delivered block at the hub, plus one per block a replay cohort reads
	// below the ring. FramesShared / BytesSent count frame handoffs to
	// subscriber send queues — with N live subscribers, BytesSent ≈
	// N × BytesEncoded (the sharing ratio).
	FramesEncoded uint64
	BytesEncoded  uint64
	FramesShared  uint64
	BytesSent     uint64
	// BlocksFiltered counts per-subscriber block deliveries a 1.3 filter
	// suppressed (the cursor advanced without a frame being sent).
	BlocksFiltered uint64
	// CohortReplays counts shared historical read batches (one ReadDefinite
	// call serving a whole cohort).
	CohortReplays uint64
	// Demotions counts subscribers that fell out of the ring and were moved
	// to a replay cohort; Promotions counts the reverse.
	Demotions  uint64
	Promotions uint64
	// OverflowDisconnects counts sessions the server closed because the
	// control-frame headroom overflowed (a client that stopped draining).
	OverflowDisconnects uint64
	// Current tier occupancy.
	LiveSubs    int
	LaggingSubs int
	CohortSubs  int
	Cohorts     int
}

// fanoutSink is one subscriber's delivery surface. TrySend must not block:
// false parks the subscriber, and the hub retries from the shared ring (or
// the subscriber's replay cohort) after Unpark. End reports a terminal
// stream error (compacted cursor, read failure); the hub forgets the
// subscriber before calling it.
type fanoutSink interface {
	TrySend(frame []byte) bool
	End(err error)
}

// Subscriber tiers.
const (
	tierLive = iota
	tierLagging
	tierCohort
	tierGone
)

// hubSub is one hub subscription.
type hubSub struct {
	sink   fanoutSink
	filter Filter

	// parked is set when the subscriber's send queue refused a frame and
	// cleared by Unpark once the connection drains; the hub skips parked
	// subscribers instead of re-trying into a known-full queue.
	parked atomic.Bool

	// Guarded by Hub.mu.
	pos  uint64 // next merged position wanted
	tier int
	coh  *cohort
}

// hubFrame is one delivered block with its shared encoding and its lazily
// built filter caches.
type hubFrame struct {
	pos    uint64
	worker uint32
	blk    types.Block
	frame  []byte // shared BLOCK frame; nil until the first offer needs it

	// Filter caches, built under Hub.mu on first use: clients answers
	// client-id-only filters in O(1) per subscriber, verdicts memoizes every
	// other filter shape so each distinct filter scans the body once.
	clients  map[uint64]struct{}
	verdicts map[string]bool
}

// match evaluates the filter against this frame, memoized. Hub.mu held.
func (f *hubFrame) match(flt Filter) bool {
	if flt.Empty() {
		return true
	}
	if flt.HasClient && len(flt.TxPrefix) == 0 {
		if f.clients == nil {
			f.clients = make(map[uint64]struct{}, len(f.blk.Body.Txs))
			for i := range f.blk.Body.Txs {
				f.clients[f.blk.Body.Txs[i].Client] = struct{}{}
			}
		}
		_, ok := f.clients[flt.Client]
		return ok
	}
	k := flt.key()
	if v, ok := f.verdicts[k]; ok {
		return v
	}
	v := flt.MatchBlock(&f.blk.Body)
	if f.verdicts == nil {
		f.verdicts = make(map[string]bool)
	}
	f.verdicts[k] = v
	return v
}

// HubConfig tunes a Hub.
type HubConfig struct {
	// RingCap bounds the shared frame ring (default hubRingCap).
	RingCap int
	// SegSize is the replay-cohort segment width in merged positions
	// (default hubSegSize).
	SegSize uint64
	// Logf receives hub diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Hub is the node-wide fan-out engine behind a Server's SUBSCRIBE streams:
// one SubscribeDeliver tap, each BLOCK frame encoded once and shared across
// every subscriber, cold subscribers grouped into shared replay cohorts.
type Hub struct {
	node    Node
	workers int
	ringCap int
	segSize uint64
	logf    func(format string, args ...any)

	framesEncoded, bytesEncoded   atomic.Uint64
	framesShared, bytesSent       atomic.Uint64
	blocksFiltered, cohortReplays atomic.Uint64
	demotions, promotions         atomic.Uint64
	overflowDisconnects           atomic.Uint64

	mu        sync.Mutex
	closed    bool
	cancelTap func()
	started   bool // first delivery observed; ring positions are valid
	ring      []*hubFrame
	ringLo    uint64 // merged position of ring[0]
	ringHi    uint64 // next position to append (ringLo + len(ring))
	fanned    uint64 // positions [ringLo, fanned) already offered to the live tier
	live      map[*hubSub]struct{}
	lagging   map[*hubSub]struct{}
	cohorts   map[uint64]*cohort // segment → cohort
	// segCache retains the frame caches of recently dissolved cohorts
	// (bounded to segCacheKeep segments) so a later wave of subscribers on
	// the same history does not re-read and re-encode it.
	segCache map[uint64]map[uint64]*hubFrame

	pumpWake chan struct{}
	closeCh  chan struct{}
	wg       sync.WaitGroup
}

// NewHub creates a hub for node and attaches its delivery tap. Close it to
// detach.
func NewHub(node Node, cfg HubConfig) *Hub {
	if cfg.RingCap <= 0 {
		cfg.RingCap = hubRingCap
	}
	if cfg.SegSize == 0 {
		cfg.SegSize = hubSegSize
	}
	h := &Hub{
		node:     node,
		workers:  node.Workers(),
		ringCap:  cfg.RingCap,
		segSize:  cfg.SegSize,
		logf:     cfg.Logf,
		live:     make(map[*hubSub]struct{}),
		lagging:  make(map[*hubSub]struct{}),
		cohorts:  make(map[uint64]*cohort),
		segCache: make(map[uint64]map[uint64]*hubFrame),
		pumpWake: make(chan struct{}, 1),
		closeCh:  make(chan struct{}),
	}
	h.cancelTap = node.SubscribeDeliver(h.onDeliver)
	h.wg.Add(1)
	go h.pump()
	return h
}

// Close detaches the delivery tap and stops the pump and every cohort.
// Active subscribers are forgotten without a terminal frame (their
// connections are being torn down alongside).
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	cancel := h.cancelTap
	h.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	close(h.closeCh)
	h.wg.Wait()
}

// Stats snapshots the hub counters.
func (h *Hub) Stats() FanoutStats {
	s := FanoutStats{
		FramesEncoded:       h.framesEncoded.Load(),
		BytesEncoded:        h.bytesEncoded.Load(),
		FramesShared:        h.framesShared.Load(),
		BytesSent:           h.bytesSent.Load(),
		BlocksFiltered:      h.blocksFiltered.Load(),
		CohortReplays:       h.cohortReplays.Load(),
		Demotions:           h.demotions.Load(),
		Promotions:          h.promotions.Load(),
		OverflowDisconnects: h.overflowDisconnects.Load(),
	}
	h.mu.Lock()
	s.LiveSubs = len(h.live)
	s.LaggingSubs = len(h.lagging)
	for _, c := range h.cohorts {
		s.CohortSubs += len(c.members)
	}
	s.Cohorts = len(h.cohorts)
	h.mu.Unlock()
	return s
}

// Subscribe registers a subscriber from cursor cur. A cursor inside the
// ring joins the live tier immediately (catching up from shared frames); a
// historical cursor joins the replay cohort of its segment. The returned
// subscription is detached with Unsubscribe.
func (h *Hub) Subscribe(cur Cursor, flt Filter, sink fanoutSink) (*hubSub, error) {
	if int(cur.Worker) >= h.workers {
		return nil, fmt.Errorf("clientapi: cursor worker %d out of range (ω=%d)", cur.Worker, h.workers)
	}
	sub := &hubSub{sink: sink, filter: flt, pos: cur.pos(h.workers)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, errors.New("clientapi: server is closed")
	}
	if h.started && sub.pos >= h.ringLo && sub.pos <= h.ringHi {
		sub.tier = tierLagging
		h.lagging[sub] = struct{}{}
		h.catchUpLocked(sub)
	} else {
		h.cohortAddLocked(sub)
	}
	return sub, nil
}

// Unsubscribe detaches sub. After it returns, the hub makes no further
// TrySend or End call for this subscription.
func (h *Hub) Unsubscribe(sub *hubSub) {
	if sub == nil {
		return
	}
	h.mu.Lock()
	h.dropLocked(sub)
	h.mu.Unlock()
}

// Unpark tells the hub that sub's connection drained its send queue: frames
// the subscriber missed while parked are worth retrying. Cheap when the
// subscriber is not parked (one atomic load).
func (h *Hub) Unpark(sub *hubSub) {
	if sub == nil || !sub.parked.Load() {
		return
	}
	sub.parked.Store(false)
	h.mu.Lock()
	var coh *cohort
	switch sub.tier {
	case tierLagging:
		// retried by the pump
	case tierCohort:
		coh = sub.coh
	}
	h.mu.Unlock()
	h.wakePump()
	if coh != nil {
		coh.signal()
	}
}

// NoteOverflowDisconnect records a session closed for an overflowing send
// queue (the server calls it; the counter lives with the fan-out health
// metrics).
func (h *Hub) NoteOverflowDisconnect() { h.overflowDisconnects.Add(1) }

func (h *Hub) wakePump() {
	select {
	case h.pumpWake <- struct{}{}:
	default:
	}
}

func (h *Hub) dropLocked(sub *hubSub) {
	switch sub.tier {
	case tierLive:
		delete(h.live, sub)
	case tierLagging:
		delete(h.lagging, sub)
	case tierCohort:
		if sub.coh != nil {
			delete(sub.coh.members, sub)
		}
	}
	sub.tier = tierGone
	sub.coh = nil
}

// cohortAddLocked files sub into the replay cohort covering its cursor,
// creating the cohort (and its sweep goroutine) on first use.
func (h *Hub) cohortAddLocked(sub *hubSub) {
	seg := sub.pos / h.segSize
	c := h.cohorts[seg]
	if c == nil {
		c = &cohort{
			hub:     h,
			seg:     seg,
			members: make(map[*hubSub]struct{}),
			wake:    make(chan struct{}, 1),
		}
		// Adopt the cache of a previously dissolved cohort on this segment,
		// if retained: the new wave reuses its reads and encodings.
		if fc := h.segCache[seg]; fc != nil {
			c.cache = fc
			delete(h.segCache, seg)
		} else {
			c.cache = make(map[uint64]*hubFrame)
		}
		h.cohorts[seg] = c
		h.wg.Add(1)
		go c.run()
	}
	c.members[sub] = struct{}{}
	sub.tier = tierCohort
	sub.coh = c
	c.signal()
}

// segCacheKeep bounds how many dissolved-cohort frame caches the hub
// retains. Waves of late subscribers tend to land on the most recent
// segments, so a small number is enough to make successive waves reuse
// the previous wave's reads and encodings.
const segCacheKeep = 2

// donateCacheLocked stores a dissolving cohort's frame cache for reuse by
// the next cohort on the same segment, evicting the oldest retained
// segment when over the retention bound.
func (h *Hub) donateCacheLocked(c *cohort) {
	if len(c.cache) == 0 {
		return
	}
	h.segCache[c.seg] = c.cache
	for len(h.segCache) > segCacheKeep {
		lowest := uint64(0)
		first := true
		for seg := range h.segCache {
			if first || seg < lowest {
				lowest = seg
				first = false
			}
		}
		delete(h.segCache, lowest)
	}
}

// frameBytesLocked returns the frame's shared encoding, marshaling it on
// first use (once per block, however many subscribers receive it).
func (h *Hub) frameBytesLocked(f *hubFrame) []byte {
	if f.frame == nil {
		f.frame = marshalBlock(blockMsg{Worker: f.worker, Block: f.blk})
		h.framesEncoded.Add(1)
		h.bytesEncoded.Add(uint64(len(f.frame)))
	}
	return f.frame
}

// offerLocked delivers one frame to one subscriber: a filtered-out block
// advances the cursor silently; a refused send parks the subscriber (and
// moves a live one to the lagging set).
func (h *Hub) offerLocked(sub *hubSub, f *hubFrame) {
	if !f.match(sub.filter) {
		sub.pos++
		h.blocksFiltered.Add(1)
		return
	}
	frame := h.frameBytesLocked(f)
	if sub.sink.TrySend(frame) {
		sub.pos++
		h.framesShared.Add(1)
		h.bytesSent.Add(uint64(len(frame)))
		return
	}
	sub.parked.Store(true)
	if sub.tier == tierLive {
		delete(h.live, sub)
		h.lagging[sub] = struct{}{}
		sub.tier = tierLagging
	}
}

// catchUpLocked pushes the ring frames a lagging subscriber is missing. All
// pushed → live tier; cursor below the ring → demoted to a replay cohort;
// queue still full → stays lagging (parked).
func (h *Hub) catchUpLocked(sub *hubSub) {
	if !h.started {
		return
	}
	if sub.pos < h.ringLo {
		delete(h.lagging, sub)
		h.demotions.Add(1)
		h.cohortAddLocked(sub)
		return
	}
	for sub.pos < h.ringHi {
		was := sub.pos
		h.offerLocked(sub, h.ring[sub.pos-h.ringLo])
		if sub.pos == was {
			return // parked again; Unpark retries
		}
	}
	if sub.tier == tierLagging {
		delete(h.lagging, sub)
		h.live[sub] = struct{}{}
		sub.tier = tierLive
	}
}

// onDeliver is the hub's single tap on the node's merged definite stream.
// It runs on the delivery goroutine: append to the ring and wake the pump
// and the cohorts (the frontier moved) — never block, and never encode.
// The BLOCK frame is marshaled lazily by frameBytesLocked on the first
// offer (pump or cohort goroutine), so a node with no subscribers pays
// nothing per delivery beyond a ring append.
func (h *Hub) onDeliver(w uint32, blk types.Block) {
	pos := (blk.Signed.Header.Round-1)*uint64(h.workers) + uint64(w)
	hf := &hubFrame{pos: pos, worker: w, blk: blk}

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if !h.started {
		h.started = true
		h.ringLo, h.ringHi, h.fanned = pos, pos, pos
	}
	if pos != h.ringHi {
		// The delivery sequence broke (a tap attached mid-delivery can miss
		// one event). Reset the ring at the new position and send everyone
		// through cohort replay, which re-reads the gap from the log.
		if h.logf != nil {
			h.logf("clientapi: fan-out ring gap (delivery at merged pos %d, ring frontier %d); demoting live subscribers to replay", pos, h.ringHi)
		}
		h.resetRingLocked(pos)
	}
	h.ring = append(h.ring, hf)
	h.ringHi++
	trimmed := false
	for len(h.ring) > h.ringCap {
		h.ring[0] = nil
		h.ring = h.ring[1:]
		h.ringLo++
		trimmed = true
	}
	if h.fanned < h.ringLo {
		h.fanned = h.ringLo
	}
	if trimmed {
		// Maintain the tier invariant eagerly: a parked subscriber the ring
		// just trimmed past would otherwise linger in the lagging tier until
		// its connection drains — which for a stalled client is never. Move
		// it to cohort replay now; the cohort skips it while parked, so a
		// stalled subscriber costs nothing there.
		for sub := range h.lagging {
			if sub.pos < h.ringLo {
				delete(h.lagging, sub)
				h.demotions.Add(1)
				h.cohortAddLocked(sub)
			}
		}
	}
	wakes := make([]*cohort, 0, len(h.cohorts))
	for _, c := range h.cohorts {
		wakes = append(wakes, c)
	}
	h.mu.Unlock()

	h.wakePump()
	for _, c := range wakes {
		c.signal()
	}
}

// resetRingLocked restarts the ring at pos and demotes every ring-tier
// subscriber to cohort replay.
func (h *Hub) resetRingLocked(pos uint64) {
	h.ring = nil
	h.ringLo, h.ringHi, h.fanned = pos, pos, pos
	for sub := range h.live {
		delete(h.live, sub)
		h.demotions.Add(1)
		h.cohortAddLocked(sub)
	}
	for sub := range h.lagging {
		delete(h.lagging, sub)
		h.demotions.Add(1)
		h.cohortAddLocked(sub)
	}
}

// pump fans newly delivered ring frames to the live tier and retries
// lagging subscribers whose connections have drained. One goroutine per
// hub: the delivery path only appends and signals.
func (h *Hub) pump() {
	defer h.wg.Done()
	for {
		select {
		case <-h.pumpWake:
		case <-h.closeCh:
			return
		}
		h.mu.Lock()
		for h.fanned < h.ringHi {
			hf := h.ring[h.fanned-h.ringLo]
			for sub := range h.live {
				if sub.pos > hf.pos {
					continue // already served by a catch-up push
				}
				if sub.pos < hf.pos {
					// The ring trimmed frames this subscriber never got
					// (pump starvation); route through catch-up/demotion.
					delete(h.live, sub)
					h.lagging[sub] = struct{}{}
					sub.tier = tierLagging
					continue
				}
				h.offerLocked(sub, hf)
			}
			h.fanned++
		}
		for sub := range h.lagging {
			if sub.parked.Load() {
				continue
			}
			h.catchUpLocked(sub)
		}
		h.mu.Unlock()
	}
}

// cohort is one shared replay sweep: every subscriber whose cursor falls in
// segment seg ([seg·segSize, (seg+1)·segSize) in merged positions) is fed
// from the same ReadDefinite batches and the same per-block encoding.
type cohort struct {
	hub  *Hub
	seg  uint64
	wake chan struct{}

	// members is guarded by hub.mu.
	members map[*hubSub]struct{}

	// cache holds the frames of this segment already read and encoded, so
	// repeated sweep passes (members absorb only a send queue's worth of
	// frames per pass) reuse one encoding per block per cohort. Touched only
	// by the cohort goroutine; entries below every member's cursor are
	// evicted each pass, bounding it at segSize frames.
	cache map[uint64]*hubFrame
}

func (c *cohort) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// run is the cohort's sweep loop. Each pass sweeps once from the minimum
// unparked member cursor, then migrates members that crossed the segment
// end and promotes members the ring now covers. The cohort dissolves when
// its last member leaves.
func (c *cohort) run() {
	h := c.hub
	defer h.wg.Done()
	segEnd := (c.seg + 1) * h.segSize
	queues := make([][]types.Block, h.workers)
	for {
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return
		}
		if len(c.members) == 0 {
			if h.cohorts[c.seg] == c {
				delete(h.cohorts, c.seg)
			}
			h.donateCacheLocked(c)
			h.mu.Unlock()
			return
		}
		sweepFrom, active := uint64(0), false
		for m := range c.members {
			if m.parked.Load() {
				continue
			}
			if !active || m.pos < sweepFrom {
				sweepFrom = m.pos
			}
			active = true
		}
		h.mu.Unlock()
		// The cache is retained for the cohort's lifetime: later demotion
		// waves land below the current members' positions, so evicting
		// passed frames would force a re-read and re-encode per wave. It is
		// bounded by the segment size — sweeps never leave the segment.

		advanced, frontier, hitFrontier := false, uint64(0), false
		if active {
			advanced, frontier, hitFrontier = c.sweep(sweepFrom, segEnd, queues)
		}

		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return
		}
		moved := false
		for m := range c.members {
			if m.pos >= segEnd {
				// Crossed into the next segment: migrate to its cohort.
				delete(c.members, m)
				h.cohortAddLocked(m)
				moved = true
				continue
			}
			if m.parked.Load() {
				continue
			}
			if h.started && m.pos >= h.ringLo {
				// The shared ring covers the cursor: promote. Serialized
				// with ring appends by h.mu, so the handoff has no gap.
				delete(c.members, m)
				m.coh = nil
				m.tier = tierLagging
				h.lagging[m] = struct{}{}
				h.catchUpLocked(m)
				h.promotions.Add(1)
				moved = true
			} else if hitFrontier && !h.started && m.pos >= frontier {
				// Nothing was ever delivered since the hub attached and the
				// log is exhausted: the subscriber is at the frontier; the
				// first delivery will find it in the live tier.
				delete(c.members, m)
				m.coh = nil
				m.tier = tierLive
				h.live[m] = struct{}{}
				h.promotions.Add(1)
				moved = true
			}
		}
		h.mu.Unlock()

		if !advanced && !moved {
			select {
			case <-c.wake:
			case <-h.closeCh:
				return
			}
		}
	}
}

// sweep serves members in merged order from pos until the definite frontier
// or the segment end, reading history in shared replayBatch batches (ring
// frames are reused where the ring already covers a position). It returns
// whether any member advanced and, when it stopped at the frontier, where.
func (c *cohort) sweep(pos, segEnd uint64, queues [][]types.Block) (advanced bool, frontier uint64, hitFrontier bool) {
	h := c.hub
	workers := uint64(h.workers)
	for pos < segEnd {
		var hf *hubFrame
		h.mu.Lock()
		if h.closed || len(c.members) == 0 {
			h.mu.Unlock()
			return
		}
		if h.started && pos >= h.ringLo && pos < h.ringHi {
			hf = h.ring[pos-h.ringLo]
		}
		h.mu.Unlock()
		if hf == nil {
			hf = c.cache[pos]
		}
		if hf == nil {
			w := uint32(pos % workers)
			r := pos/workers + 1
			if len(queues[w]) == 0 || queues[w][0].Signed.Header.Round != r {
				queues[w] = nil
				blocks, err := h.node.ReadDefinite(w, r, replayBatch)
				if err != nil {
					// The position cannot be served (compacted history or a
					// read failure): end the members stuck at it; the rest
					// of the cohort continues from the new minimum.
					var ends []*hubSub
					h.mu.Lock()
					for m := range c.members {
						if m.pos == pos {
							delete(c.members, m)
							m.tier = tierGone
							m.coh = nil
							ends = append(ends, m)
						}
					}
					h.mu.Unlock()
					for _, m := range ends {
						m.sink.End(err)
					}
					advanced = true // membership changed; recompute before waiting
					return
				}
				if len(blocks) == 0 {
					return advanced, pos, true // definite frontier
				}
				h.cohortReplays.Add(1)
				queues[w] = blocks
			}
			blk := queues[w][0]
			queues[w] = queues[w][1:]
			hf = &hubFrame{pos: pos, worker: w, blk: blk}
			c.cache[pos] = hf
		}
		h.mu.Lock()
		for m := range c.members {
			if m.pos != pos || m.parked.Load() {
				continue
			}
			was := m.pos
			h.offerLocked(m, hf)
			if m.pos != was {
				advanced = true
			}
		}
		h.mu.Unlock()
		pos++
	}
	return advanced, 0, false
}

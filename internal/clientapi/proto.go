// Package clientapi is FireLedger's application-facing client protocol: a
// versioned, length-framed TCP wire format plus the server and client that
// speak it, and the cursor-replay streaming engine both the remote and the
// in-process session share.
//
// One connection is one session. The conversation:
//
//	client                              server
//	  | HELLO  {magic, version, id}  →    |   version + identity handshake
//	  |  ←  WELCOME {version, node, n, ω} |   (or an error, then close)
//	  | SUBMIT {seq, payload}  →          |
//	  |  ←  ACK {seq}                     |   accepted into a worker pool
//	  |  ←  COMMIT {seq, w, r, hash}      |   asynchronous, when definite
//	  | SUBSCRIBE {worker, round, filter} |   filter clause since 1.3:
//	  |  ←  BLOCK {w, block} …            |   history from the log, then live
//	  | INFO →  /  ← INFO_REPLY           |
//	  | GET {id, key, token}  →           |   state reads (1.2): served from
//	  |  ←  GET_REPLY {id, value}         |   the node's ledger replica once
//	  | SCAN {id, begin, end, token}  →   |   its applied frontier covers the
//	  |  ←  SCAN_REPLY {id, entries}      |   token — take the token from a
//	  | WATCH {id, key, token}  →         |   commit Receipt to read your own
//	  |  ←  WATCH_EVENT {id, value} …     |   committed write
//	  | UNWATCH {id} →  /  ← WATCH_END    |
//
// Framing is uint32 big-endian length, then one kind byte, then the kind's
// payload in the deterministic codec of internal/types. SUBMIT payloads are
// opaque; COMMIT receipts identify the definite block (worker, round, header
// hash) the write landed in. SUBSCRIBE carries a (worker, round) cursor into
// the merged definite stream: the historical prefix is served from the
// node's persistent BlockLog (or in-memory chain), then the subscription
// switches to the live delivery tail — reconnecting with the cursor just
// past the last observed block resumes with no gaps and no duplicates.
// Since 1.3 SUBSCRIBE additionally carries a Filter clause (client-id and/or
// transaction-payload-prefix conditions): the server evaluates the filter
// once per block and sends only the blocks carrying at least one matching
// transaction, so an end-user application streams its own traffic instead
// of the whole ledger.
package clientapi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/flcrypto"
	"repro/internal/statemachine"
	"repro/internal/store"
	"repro/internal/types"
)

// Magic opens every HELLO, guarding the port against stray connections.
const Magic uint32 = 0x464C_4331 // "FLC1"

// VersionMajor and VersionMinor identify the wire protocol this build
// speaks, packed into the single Version word the HELLO/WELCOME handshake
// exchanges (major in the high 16 bits, minor in the low 16). The handshake
// is exact-match on the packed word: a server rejects clients of any other
// version in the WELCOME, so incompatible frames are never interpreted.
// Bump the major on any layout change to an existing frame; bump the minor
// when a frame gains fields or new frame kinds appear (1.1: INFO_REPLY
// carries PoolPending; 1.2: the GET/SCAN/WATCH state-read frames; 1.3:
// SUBSCRIBE carries a filter clause).
const (
	VersionMajor uint32 = 1
	VersionMinor uint32 = 3
	Version      uint32 = VersionMajor<<16 | VersionMinor
)

// MaxFrame bounds one protocol frame (a BLOCK frame carries one full block).
const MaxFrame = 64 << 20

// Frame kinds.
const (
	kindHello       uint8 = 1  // client→server: magic, version, client id
	kindWelcome     uint8 = 2  // server→client: version, node, n, ω, error
	kindSubmit      uint8 = 3  // client→server: seq, payload
	kindAck         uint8 = 4  // server→client: seq, error ("" = accepted)
	kindCommit      uint8 = 5  // server→client: seq, worker, round, hash
	kindSubscribe   uint8 = 6  // client→server: cursor (worker, round) + filter (1.3)
	kindBlock       uint8 = 7  // server→client: worker, block
	kindStreamEnd   uint8 = 8  // server→client: subscription over, error
	kindInfo        uint8 = 9  // client→server: (empty)
	kindInfoReply   uint8 = 10 // server→client: node, n, ω, delivered counts
	kindUnsubscribe uint8 = 11 // client→server: (empty) stop the stream
	// State-read frames, since 1.2. Every request carries a client-assigned
	// id: the server answers reads on their own goroutines (a consistency
	// token may block on the applied frontier), so replies return in
	// completion order, not request order.
	kindGet        uint8 = 12 // client→server: id, key, token
	kindGetReply   uint8 = 13 // server→client: id, found, value, code, error
	kindScan       uint8 = 14 // client→server: id, begin, end, max, token
	kindScanReply  uint8 = 15 // server→client: id, entries, code, error
	kindWatch      uint8 = 16 // client→server: id, key, token
	kindWatchEvent uint8 = 17 // server→client: id, one KeyUpdate
	kindWatchEnd   uint8 = 18 // server→client: id, code, error — watch over
	kindUnwatch    uint8 = 19 // client→server: id — stop one watch
)

// MaxScanEntries caps one SCAN reply (and the in-process Scan, for parity):
// a larger range is paged by reissuing the scan with begin just past the
// last returned key. The server additionally bounds a reply's total value
// bytes to fit MaxFrame, so a scan over huge values may return fewer
// entries.
const MaxScanEntries = 4096

// ErrFrameTooLarge reports a length prefix above MaxFrame.
var ErrFrameTooLarge = errors.New("clientapi: frame exceeds MaxFrame")

// readFrame reads one length-prefixed frame, returning its kind and payload.
// The payload is freshly allocated per frame, so decoded values (including
// blocks, whose codec retains the wire slice) may alias it freely.
func readFrame(r io.Reader) (kind uint8, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1 {
		return 0, nil, errors.New("clientapi: empty frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// frame starts a wire frame of the given kind, reserving the length prefix;
// finish it with finishFrame once the payload is encoded. Frames are built
// on plain (non-pooled) encoders because they are retained in send queues.
func frame(kind uint8, sizeHint int) *types.Encoder {
	e := types.NewEncoder(5 + sizeHint)
	e.Uint32(0) // length, patched by finishFrame
	e.Uint8(kind)
	return e
}

// finishFrame patches the length prefix and returns the complete wire bytes.
func finishFrame(e *types.Encoder) []byte {
	buf := e.Bytes()
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(buf)-4))
	return buf
}

// ---- message bodies ----

type helloMsg struct {
	Magic    uint32
	Version  uint32
	ClientID uint64
}

func marshalHello(m helloMsg) []byte {
	e := frame(kindHello, 16)
	e.Uint32(m.Magic)
	e.Uint32(m.Version)
	e.Uint64(m.ClientID)
	return finishFrame(e)
}

func decodeHello(payload []byte) (helloMsg, error) {
	d := types.NewDecoder(payload)
	m := helloMsg{Magic: d.Uint32(), Version: d.Uint32(), ClientID: d.Uint64()}
	return m, d.Finish()
}

type welcomeMsg struct {
	Version uint32
	Node    int64
	N       uint32
	Workers uint32
	Err     string
}

func marshalWelcome(m welcomeMsg) []byte {
	e := frame(kindWelcome, 24+len(m.Err))
	e.Uint32(m.Version)
	e.Int64(m.Node)
	e.Uint32(m.N)
	e.Uint32(m.Workers)
	e.Bytes32([]byte(m.Err))
	return finishFrame(e)
}

func decodeWelcome(payload []byte) (welcomeMsg, error) {
	d := types.NewDecoder(payload)
	m := welcomeMsg{Version: d.Uint32(), Node: d.Int64(), N: d.Uint32(), Workers: d.Uint32(), Err: string(d.Bytes32())}
	return m, d.Finish()
}

type submitMsg struct {
	Seq     uint64
	Payload []byte
}

func marshalSubmit(m submitMsg) []byte {
	e := frame(kindSubmit, 12+len(m.Payload))
	e.Uint64(m.Seq)
	e.Bytes32(m.Payload)
	return finishFrame(e)
}

func decodeSubmit(payload []byte) (submitMsg, error) {
	d := types.NewDecoder(payload)
	m := submitMsg{Seq: d.Uint64(), Payload: d.Bytes32()}
	return m, d.Finish()
}

type ackMsg struct {
	Seq uint64
	Err string
}

func marshalAck(m ackMsg) []byte {
	e := frame(kindAck, 12+len(m.Err))
	e.Uint64(m.Seq)
	e.Bytes32([]byte(m.Err))
	return finishFrame(e)
}

func decodeAck(payload []byte) (ackMsg, error) {
	d := types.NewDecoder(payload)
	m := ackMsg{Seq: d.Uint64(), Err: string(d.Bytes32())}
	return m, d.Finish()
}

type commitMsg struct {
	Seq     uint64
	Receipt Receipt
}

func marshalCommit(m commitMsg) []byte {
	e := frame(kindCommit, 52)
	e.Uint64(m.Seq)
	e.Uint32(m.Receipt.Worker)
	e.Uint64(m.Receipt.Round)
	e.Hash(m.Receipt.BlockHash)
	return finishFrame(e)
}

func decodeCommit(payload []byte) (commitMsg, error) {
	d := types.NewDecoder(payload)
	var m commitMsg
	m.Seq = d.Uint64()
	m.Receipt.Worker = d.Uint32()
	m.Receipt.Round = d.Uint64()
	m.Receipt.BlockHash = d.Hash()
	return m, d.Finish()
}

// Filter restricts a block subscription (wire protocol 1.3). A transaction
// matches when it satisfies every set condition; a block is delivered iff it
// carries at least one matching transaction — the subscriber receives whole
// blocks (the shared encode-once frame), filtered at block granularity. The
// zero Filter matches every block.
type Filter struct {
	// HasClient, when true, requires a transaction submitted by Client.
	HasClient bool
	Client    uint64
	// TxPrefix, when non-empty, requires a transaction whose payload starts
	// with these bytes.
	TxPrefix []byte
}

// Empty reports whether the filter matches everything.
func (f Filter) Empty() bool { return !f.HasClient && len(f.TxPrefix) == 0 }

// MatchTx reports whether one transaction satisfies every set condition.
func (f Filter) MatchTx(tx *types.Transaction) bool {
	if f.HasClient && tx.Client != f.Client {
		return false
	}
	if len(f.TxPrefix) > 0 {
		if len(tx.Payload) < len(f.TxPrefix) || string(tx.Payload[:len(f.TxPrefix)]) != string(f.TxPrefix) {
			return false
		}
	}
	return true
}

// MatchBlock reports whether the block carries at least one matching
// transaction (always true for the empty filter, even on empty blocks).
func (f Filter) MatchBlock(body *types.Body) bool {
	if f.Empty() {
		return true
	}
	for i := range body.Txs {
		if f.MatchTx(&body.Txs[i]) {
			return true
		}
	}
	return false
}

// key renders the filter as a comparable cache key (hub verdict caching).
func (f Filter) key() string {
	var b [9]byte
	if f.HasClient {
		b[0] = 1
		binary.BigEndian.PutUint64(b[1:], f.Client)
	}
	return string(b[:]) + string(f.TxPrefix)
}

// SUBSCRIBE filter-clause flags (1.3).
const (
	subFilterClient uint8 = 1 << 0
	subFilterPrefix uint8 = 1 << 1
)

func marshalSubscribe(c Cursor, f Filter) []byte {
	e := frame(kindSubscribe, 26+len(f.TxPrefix))
	e.Uint32(c.Worker)
	e.Uint64(c.Round)
	var flags uint8
	if f.HasClient {
		flags |= subFilterClient
	}
	if len(f.TxPrefix) > 0 {
		flags |= subFilterPrefix
	}
	e.Uint8(flags)
	if f.HasClient {
		e.Uint64(f.Client)
	}
	if len(f.TxPrefix) > 0 {
		e.Bytes32(f.TxPrefix)
	}
	return finishFrame(e)
}

func decodeSubscribe(payload []byte) (Cursor, Filter, error) {
	d := types.NewDecoder(payload)
	c := Cursor{Worker: d.Uint32(), Round: d.Uint64()}
	var f Filter
	flags := d.Uint8()
	if flags&subFilterClient != 0 {
		f.HasClient = true
		f.Client = d.Uint64()
	}
	if flags&subFilterPrefix != 0 {
		f.TxPrefix = append([]byte(nil), d.Bytes32()...)
	}
	return c, f, d.Finish()
}

type blockMsg struct {
	Worker uint32
	Block  types.Block
}

func marshalBlock(m blockMsg) []byte {
	e := frame(kindBlock, 4+256+m.Block.Body.Size())
	e.Uint32(m.Worker)
	m.Block.Encode(e)
	return finishFrame(e)
}

func decodeBlockMsg(payload []byte) (blockMsg, error) {
	d := types.NewDecoder(payload)
	var m blockMsg
	m.Worker = d.Uint32()
	m.Block = types.DecodeBlock(d)
	return m, d.Finish()
}

// STREAM_END codes: why a subscription ended. The code travels alongside
// the human-readable message so typed contracts survive the wire — a remote
// consumer must be able to errors.Is a compaction gap exactly like an
// in-process one.
const (
	streamEndClean     uint8 = 0 // client unsubscribed
	streamEndError     uint8 = 1 // transport or internal failure
	streamEndCompacted uint8 = 2 // cursor predates retained history
)

func marshalStreamEnd(err error) []byte {
	code := streamEndClean
	if err != nil {
		code = streamEndError
		if errors.Is(err, store.ErrCompacted) {
			code = streamEndCompacted
		}
	}
	msg := errString(err)
	e := frame(kindStreamEnd, 5+len(msg))
	e.Uint8(code)
	e.Bytes32([]byte(msg))
	return finishFrame(e)
}

// decodeStreamEnd returns the stream's terminal error (nil for a clean
// unsubscribe) and any decode failure.
func decodeStreamEnd(payload []byte) (error, error) {
	d := types.NewDecoder(payload)
	code := d.Uint8()
	msg := string(d.Bytes32())
	if derr := d.Finish(); derr != nil {
		return nil, derr
	}
	switch code {
	case streamEndClean:
		return nil, nil
	case streamEndCompacted:
		return fmt.Errorf("clientapi: %s: %w", msg, store.ErrCompacted), nil
	default:
		return fmt.Errorf("clientapi: %s", msg), nil
	}
}

func marshalEmpty(kind uint8) []byte { return finishFrame(frame(kind, 0)) }

func marshalInfoReply(info Info) []byte {
	e := frame(kindInfoReply, 44)
	e.Int64(info.Node)
	e.Uint32(uint32(info.N))
	e.Uint32(uint32(info.Workers))
	e.Uint64(info.DeliveredBlocks)
	e.Uint64(info.DeliveredTxs)
	e.Uint64(uint64(info.PoolPending))
	return finishFrame(e)
}

func decodeInfoReply(payload []byte) (Info, error) {
	d := types.NewDecoder(payload)
	var info Info
	info.Node = d.Int64()
	info.N = int(d.Uint32())
	info.Workers = int(d.Uint32())
	info.DeliveredBlocks = d.Uint64()
	info.DeliveredTxs = d.Uint64()
	info.PoolPending = int(d.Uint64())
	return info, d.Finish()
}

// Read-reply codes: why a state read failed. Like STREAM_END codes, the
// typed cause travels alongside the message so errors.Is survives the wire.
const (
	readOK      uint8 = 0
	readNoState uint8 = 1 // node has no queryable state backend
	readError   uint8 = 2 // anything else (bad token, internal failure)
)

// readErr reconstructs a typed error from a reply's code + message.
func readErr(code uint8, msg string) error {
	switch code {
	case readOK:
		return nil
	case readNoState:
		return fmt.Errorf("clientapi: %s: %w", msg, ErrNoState)
	default:
		return fmt.Errorf("clientapi: %s", msg)
	}
}

// readCode classifies a read failure for the wire.
func readCode(err error) uint8 {
	switch {
	case err == nil:
		return readOK
	case errors.Is(err, ErrNoState):
		return readNoState
	default:
		return readError
	}
}

type getMsg struct {
	ID  uint64
	Key string
	At  ReadToken
}

func marshalGet(m getMsg) []byte {
	e := frame(kindGet, 28+len(m.Key))
	e.Uint64(m.ID)
	e.Bytes32([]byte(m.Key))
	e.Uint32(m.At.Worker)
	e.Uint64(m.At.Round)
	return finishFrame(e)
}

func decodeGet(payload []byte) (getMsg, error) {
	d := types.NewDecoder(payload)
	m := getMsg{ID: d.Uint64(), Key: string(d.Bytes32()), At: ReadToken{Worker: d.Uint32(), Round: d.Uint64()}}
	return m, d.Finish()
}

type getReplyMsg struct {
	ID    uint64
	Found bool
	Value []byte
	Code  uint8
	Err   string
}

func marshalGetReply(m getReplyMsg) []byte {
	e := frame(kindGetReply, 20+len(m.Value)+len(m.Err))
	e.Uint64(m.ID)
	e.Bool(m.Found)
	e.Bytes32(m.Value)
	e.Uint8(m.Code)
	e.Bytes32([]byte(m.Err))
	return finishFrame(e)
}

func decodeGetReply(payload []byte) (getReplyMsg, error) {
	d := types.NewDecoder(payload)
	var m getReplyMsg
	m.ID = d.Uint64()
	m.Found = d.Bool()
	m.Value = append([]byte(nil), d.Bytes32()...)
	m.Code = d.Uint8()
	m.Err = string(d.Bytes32())
	return m, d.Finish()
}

type scanMsg struct {
	ID         uint64
	Begin, End string
	Max        uint32
	At         ReadToken
}

func marshalScan(m scanMsg) []byte {
	e := frame(kindScan, 36+len(m.Begin)+len(m.End))
	e.Uint64(m.ID)
	e.Bytes32([]byte(m.Begin))
	e.Bytes32([]byte(m.End))
	e.Uint32(m.Max)
	e.Uint32(m.At.Worker)
	e.Uint64(m.At.Round)
	return finishFrame(e)
}

func decodeScan(payload []byte) (scanMsg, error) {
	d := types.NewDecoder(payload)
	m := scanMsg{
		ID:    d.Uint64(),
		Begin: string(d.Bytes32()),
		End:   string(d.Bytes32()),
		Max:   d.Uint32(),
		At:    ReadToken{Worker: d.Uint32(), Round: d.Uint64()},
	}
	return m, d.Finish()
}

type scanReplyMsg struct {
	ID      uint64
	Entries []Entry
	Code    uint8
	Err     string
}

func marshalScanReply(m scanReplyMsg) []byte {
	size := 24 + len(m.Err)
	for i := range m.Entries {
		size += 8 + len(m.Entries[i].Key) + len(m.Entries[i].Value)
	}
	e := frame(kindScanReply, size)
	e.Uint64(m.ID)
	e.Uint32(uint32(len(m.Entries)))
	for i := range m.Entries {
		e.Bytes32([]byte(m.Entries[i].Key))
		e.Bytes32(m.Entries[i].Value)
	}
	e.Uint8(m.Code)
	e.Bytes32([]byte(m.Err))
	return finishFrame(e)
}

func decodeScanReply(payload []byte) (scanReplyMsg, error) {
	d := types.NewDecoder(payload)
	var m scanReplyMsg
	m.ID = d.Uint64()
	n := d.Uint32()
	if d.Err() != nil || n > MaxScanEntries {
		d.Fail(errors.New("clientapi: corrupt scan reply"))
		return m, d.Err()
	}
	m.Entries = make([]Entry, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.Entries = append(m.Entries, Entry{
			Key:   string(d.Bytes32()),
			Value: append([]byte(nil), d.Bytes32()...),
		})
	}
	m.Code = d.Uint8()
	m.Err = string(d.Bytes32())
	return m, d.Finish()
}

type watchMsg struct {
	ID  uint64
	Key string
	At  ReadToken
}

func marshalWatch(m watchMsg) []byte {
	e := frame(kindWatch, 28+len(m.Key))
	e.Uint64(m.ID)
	e.Bytes32([]byte(m.Key))
	e.Uint32(m.At.Worker)
	e.Uint64(m.At.Round)
	return finishFrame(e)
}

func decodeWatch(payload []byte) (watchMsg, error) {
	d := types.NewDecoder(payload)
	m := watchMsg{ID: d.Uint64(), Key: string(d.Bytes32()), At: ReadToken{Worker: d.Uint32(), Round: d.Uint64()}}
	return m, d.Finish()
}

type watchEventMsg struct {
	ID  uint64
	Upd KeyUpdate
}

func marshalWatchEvent(m watchEventMsg) []byte {
	e := frame(kindWatchEvent, 32+len(m.Upd.Key)+len(m.Upd.Value))
	e.Uint64(m.ID)
	e.Bytes32([]byte(m.Upd.Key))
	e.Bool(m.Upd.Exists)
	e.Bytes32(m.Upd.Value)
	e.Uint32(m.Upd.Worker)
	e.Uint64(m.Upd.Round)
	return finishFrame(e)
}

func decodeWatchEvent(payload []byte) (watchEventMsg, error) {
	d := types.NewDecoder(payload)
	var m watchEventMsg
	m.ID = d.Uint64()
	m.Upd.Key = string(d.Bytes32())
	m.Upd.Exists = d.Bool()
	m.Upd.Value = append([]byte(nil), d.Bytes32()...)
	m.Upd.Worker = d.Uint32()
	m.Upd.Round = d.Uint64()
	return m, d.Finish()
}

type watchEndMsg struct {
	ID   uint64
	Code uint8
	Err  string
}

func marshalWatchEnd(m watchEndMsg) []byte {
	e := frame(kindWatchEnd, 16+len(m.Err))
	e.Uint64(m.ID)
	e.Uint8(m.Code)
	e.Bytes32([]byte(m.Err))
	return finishFrame(e)
}

func decodeWatchEnd(payload []byte) (watchEndMsg, error) {
	d := types.NewDecoder(payload)
	m := watchEndMsg{ID: d.Uint64(), Code: d.Uint8(), Err: string(d.Bytes32())}
	return m, d.Finish()
}

func marshalUnwatch(id uint64) []byte {
	e := frame(kindUnwatch, 8)
	e.Uint64(id)
	return finishFrame(e)
}

func decodeUnwatch(payload []byte) (uint64, error) {
	d := types.NewDecoder(payload)
	id := d.Uint64()
	return id, d.Finish()
}

// ---- shared session vocabulary ----

// Receipt is the proof of commitment a resolved write carries: the definite
// block of the merged order the transaction landed in, identified by worker,
// round, and the block's header hash. Any cluster member (or auditor holding
// the chain) can locate the write from it.
type Receipt struct {
	Worker    uint32
	Round     uint64
	BlockHash flcrypto.Hash
}

// Token derives the consistency token of this receipt: a read anchored to
// it observes the write the receipt certifies (and everything before it in
// the merged order).
func (r Receipt) Token() ReadToken { return ReadToken{Worker: r.Worker, Round: r.Round} }

// ReadToken anchors a state read to a position of the merged definite
// stream: the read blocks until the serving replica's applied frontier
// covers (Worker, Round), then observes that state or newer — which is what
// gives a client read-your-writes across any replica. The zero token reads
// whatever is current without waiting.
type ReadToken struct {
	Worker uint32
	Round  uint64
}

// Entry is one key/value pair of a range scan (ascending key order).
type Entry = statemachine.Entry

// KeyUpdate is one observed change of a watched key; Worker/Round is a
// consistency token for follow-up reads.
type KeyUpdate = statemachine.KeyUpdate

// ErrNoState reports a state read against a node that serves no queryable
// backend (flo.Config.State unset). Typed identically on the in-process and
// remote paths.
var ErrNoState = statemachine.ErrNoState

// Cursor addresses a position in the merged definite stream: the next block
// the subscriber wants is worker Worker's round Round. The merged order
// interleaves workers round-robin — round 1 of workers 0..ω−1, then round 2,
// and so on — so a cursor is totally ordered by (Round, Worker). The zero
// Cursor means "from genesis" (worker 0, round 1). After receiving a block,
// resume later with Cursor{w, r}.Next(ω) — exactly-once streaming across
// reconnects is the client pairing every block with the cursor just past it.
type Cursor struct {
	Worker uint32
	Round  uint64
}

// norm maps the zero value to the genesis cursor.
func (c Cursor) norm() Cursor {
	if c.Round == 0 {
		c.Round = 1
	}
	return c
}

// pos returns the cursor's 0-based index into the merged stream.
func (c Cursor) pos(workers int) uint64 {
	c = c.norm()
	return (c.Round-1)*uint64(workers) + uint64(c.Worker)
}

// Next returns the cursor immediately past this one in the merged order of a
// deployment with the given worker count: the resume point after receiving
// block (c.Worker, c.Round).
func (c Cursor) Next(workers int) Cursor {
	c = c.norm()
	if int(c.Worker)+1 < workers {
		return Cursor{Worker: c.Worker + 1, Round: c.Round}
	}
	return Cursor{Worker: 0, Round: c.Round + 1}
}

// Info describes the serving node: its identity, the cluster size, the
// worker count ω (which cursor arithmetic needs), the node's merged
// delivery totals, and its current submit backlog across all worker pools
// (a load signal clients can use to pick a less-busy node). Since 1.1.
type Info struct {
	Node            int64
	N               int
	Workers         int
	DeliveredBlocks uint64
	DeliveredTxs    uint64
	PoolPending     int
}

// BlockEvent is one element of a Blocks subscription: a definite block of
// the merged stream, or a terminal error (stream ends after an Err event).
type BlockEvent struct {
	Worker uint32
	Block  types.Block
	// Err, when non-nil, reports why the stream ended: the context was
	// canceled, the connection was lost, or the cursor predates retained
	// history. The channel is closed right after.
	Err error
}

// ErrCompacted reports a cursor below the retained history: the rounds were
// checkpointed away and survive only in a snapshot, so the stream cannot be
// served without a gap. Typed identically on the in-process and remote
// paths (the STREAM_END code preserves it across the wire).
var ErrCompacted = store.ErrCompacted

// errString renders an error for the wire ("" for nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

package clientapi

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/flcrypto"
	"repro/internal/statemachine"
	"repro/internal/types"
)

// Node is the node-side surface the client API drives. *flo.Node implements
// it; tests may substitute a fake.
type Node interface {
	ID() flcrypto.NodeID
	N() int
	Workers() int
	Submit(tx types.Transaction) error
	SubscribeDeliver(fn func(worker uint32, blk types.Block)) (cancel func())
	ReadDefinite(worker uint32, from uint64, max int) ([]types.Block, error)
	RegisterClient(id uint64) error
	UnregisterClient(id uint64)
	DeliveredBlocks() uint64
	DeliveredTxs() uint64
	PoolPending() int
	// State reads (wire protocol 1.2), served from the node's ledger
	// replica once its applied frontier covers the (worker, round) token;
	// statemachine.ErrNoState when the node has no backend configured.
	StateGet(ctx context.Context, key string, worker uint32, round uint64) ([]byte, bool, error)
	StateScan(ctx context.Context, begin, end string, max int, worker uint32, round uint64) ([]statemachine.Entry, error)
	StateWatch(ctx context.Context, key string, worker uint32, round uint64) (<-chan statemachine.KeyUpdate, func(), error)
}

// replayBatch is how many blocks one historical read fetches per worker.
const replayBatch = 64

// liveBufCap bounds the live-tail buffer that bridges replay and the
// delivery stream. A consumer that cannot keep up with live block
// production overflows it and is sent back to replay (which paces reads to
// the consumer) instead of stalling the node's delivery path.
const liveBufCap = 1024

// errFellBehind is the internal signal that the live tail cannot continue —
// the buffer overflowed or the tail showed a gap — and the stream must
// re-enter replay at its cursor. The concrete value is a fellBehindError
// carrying which of the two cases fired (they are operationally identical —
// both resume from replay — but diagnostically distinct: overflow means the
// consumer is slow, a gap means the delivery tail skipped past the cursor).
var errFellBehind = errors.New("clientapi: live tail fell behind; resuming from replay")

// fellBehindError is the typed errFellBehind: errors.Is-compatible, plus the
// positions that distinguish a buffer overflow from a genuine tail gap.
type fellBehindError struct {
	gap        bool   // true: tail gap; false: live buffer overflow
	evPos, pos uint64 // gap case: the event seen vs. the cursor expected
}

func (e *fellBehindError) Error() string {
	if e.gap {
		return fmt.Sprintf("clientapi: live tail gap (event at merged pos %d, cursor at %d); resuming from replay", e.evPos, e.pos)
	}
	return "clientapi: live buffer overflowed (slow consumer); resuming from replay"
}

func (e *fellBehindError) Is(target error) bool { return target == errFellBehind }

// StreamOption narrows a block subscription with a server-side filter
// (wire protocol 1.3). Options combine conjunctively: every set condition
// must hold on the same transaction for a block to be delivered.
type StreamOption func(*Filter)

// WithClientFilter delivers only blocks carrying a transaction submitted by
// client — an end-user app streaming its own writes, not the whole ledger.
func WithClientFilter(client uint64) StreamOption {
	return func(f *Filter) { f.HasClient, f.Client = true, client }
}

// WithTxPrefix delivers only blocks carrying a transaction whose payload
// starts with prefix.
func WithTxPrefix(prefix []byte) StreamOption {
	return func(f *Filter) { f.TxPrefix = append([]byte(nil), prefix...) }
}

// BuildFilter folds options into a wire Filter.
func BuildFilter(opts ...StreamOption) Filter {
	var f Filter
	for _, o := range opts {
		o(&f)
	}
	return f
}

// StreamConfig tunes StreamWith beyond the cursor.
type StreamConfig struct {
	// Filter suppresses non-matching blocks (delivered blocks carry at least
	// one matching transaction). The cursor still advances over suppressed
	// blocks, so resume arithmetic is unchanged. Zero value: no filtering.
	Filter Filter
	// Logf, when set, receives stream diagnostics (currently: the first
	// genuine live-tail gap, with positions). Nil discards them.
	Logf func(format string, args ...any)
}

// Stream delivers the merged definite stream from cursor cur, calling emit
// for every block in merged order — each exactly once, no gaps. See
// StreamWith; Stream is the unfiltered form.
func Stream(ctx context.Context, node Node, cur Cursor, emit func(worker uint32, blk types.Block) error) error {
	return StreamWith(ctx, node, cur, StreamConfig{}, emit)
}

// StreamWith delivers the merged definite stream from cursor cur, calling
// emit for every block in merged order that matches cfg.Filter — each
// exactly once, no gaps among matching blocks. The historical prefix below
// the definite frontier is replayed from the node's log (Node.ReadDefinite);
// the stream then follows the live delivery tail, falling back to replay
// whenever the consumer cannot keep up. StreamWith returns when ctx ends,
// when emit returns an error (which it propagates), or when the cursor
// predates retained history (ErrCompacted from the store). It never returns
// nil.
//
// emit may block: backpressure propagates to replay pacing, never to the
// node's delivery goroutine (live deliveries land in a bounded buffer).
func StreamWith(ctx context.Context, node Node, cur Cursor, cfg StreamConfig, emit func(worker uint32, blk types.Block) error) error {
	workers := node.Workers()
	if int(cur.Worker) >= workers {
		return fmt.Errorf("clientapi: cursor worker %d out of range (ω=%d)", cur.Worker, workers)
	}
	pos := cur.pos(workers)
	gapLogged := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Attach the live buffer before replaying: everything delivered
		// from this instant is either replayed (if it became readable in
		// time) or buffered, so the switchover cannot lose a block.
		lb := newLiveBuffer()
		cancel := node.SubscribeDeliver(lb.push)
		err := func() error {
			if err := replay(ctx, node, workers, &pos, cfg.Filter, emit); err != nil {
				return err
			}
			return follow(ctx, workers, &pos, lb, cfg.Filter, emit)
		}()
		cancel()
		var fb *fellBehindError
		if errors.As(err, &fb) {
			if fb.gap && !gapLogged && cfg.Logf != nil {
				// A gap is rare (the delivery tail announced a block past the
				// cursor without the one at it): log the first occurrence with
				// positions so it is distinguishable from routine slow-consumer
				// overflows; replay re-reads and re-verifies the missed range.
				cfg.Logf("%v", fb)
				gapLogged = true
			}
			continue // re-replay from the current cursor
		}
		return err
	}
}

// replay emits definite blocks in merged order starting at *pos until the
// definite frontier is reached (the next block in merged order is not yet
// definite). Per-worker reads are batched so a W-worker replay costs
// O(blocks/replayBatch) historical reads, not one per block. Blocks the
// filter suppresses still advance the cursor.
func replay(ctx context.Context, node Node, workers int, pos *uint64, flt Filter, emit func(uint32, types.Block) error) error {
	queues := make([][]types.Block, workers)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		w := uint32(*pos % uint64(workers))
		r := *pos/uint64(workers) + 1
		if len(queues[w]) == 0 {
			blocks, err := node.ReadDefinite(w, r, replayBatch)
			if err != nil {
				return err
			}
			if len(blocks) == 0 {
				return nil // frontier: the live tail takes over
			}
			queues[w] = blocks
		}
		blk := queues[w][0]
		if got := blk.Signed.Header.Round; got != r {
			return fmt.Errorf("clientapi: replay expected worker %d round %d, source yielded %d", w, r, got)
		}
		queues[w] = queues[w][1:]
		if !flt.MatchBlock(&blk.Body) {
			*pos++
			continue
		}
		if err := emit(w, blk); err != nil {
			return err
		}
		*pos++
	}
}

// follow drains the live buffer, emitting the events at *pos and skipping
// those replay already covered. It returns a fellBehindError — sending the
// stream back to replay — in two distinct cases: the buffer overflowed (slow
// consumer), or the tail showed a genuine gap (an event past *pos arrived
// while the event at *pos was neither buffered nor readable during replay —
// a delivery that slipped between the log read and the buffer attach).
func follow(ctx context.Context, workers int, pos *uint64, lb *liveBuffer, flt Filter, emit func(uint32, types.Block) error) error {
	for {
		ev, err := lb.pop(ctx)
		if err != nil {
			return err
		}
		evPos := (ev.round-1)*uint64(workers) + uint64(ev.worker)
		if evPos < *pos {
			continue // replay already emitted it
		}
		if evPos > *pos {
			return &fellBehindError{gap: true, evPos: evPos, pos: *pos}
		}
		if !flt.MatchBlock(&ev.blk.Body) {
			*pos++
			continue
		}
		if err := emit(ev.worker, ev.blk); err != nil {
			return err
		}
		*pos++
	}
}

// liveEvent is one buffered delivery.
type liveEvent struct {
	worker uint32
	round  uint64
	blk    types.Block
}

// liveBuffer decouples the node's synchronous delivery path from a stream
// consumer: push never blocks (overflow flips a flag instead), pop blocks
// the consumer until an event, overflow, or ctx end.
type liveBuffer struct {
	mu       sync.Mutex
	buf      []liveEvent
	overflow bool
	wake     chan struct{}
}

func newLiveBuffer() *liveBuffer {
	return &liveBuffer{wake: make(chan struct{}, 1)}
}

// push is the SubscribeDeliver callback; it must not block.
func (b *liveBuffer) push(w uint32, blk types.Block) {
	b.mu.Lock()
	if !b.overflow {
		if len(b.buf) >= liveBufCap {
			b.overflow = true
			b.buf = nil // the run is broken; replay will re-read it
		} else {
			b.buf = append(b.buf, liveEvent{worker: w, round: blk.Signed.Header.Round, blk: blk})
		}
	}
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// pop returns the oldest buffered event, blocking until one arrives. It
// returns the overflow form of fellBehindError once the buffer has
// overflowed and drained.
func (b *liveBuffer) pop(ctx context.Context) (liveEvent, error) {
	for {
		b.mu.Lock()
		if len(b.buf) > 0 {
			ev := b.buf[0]
			b.buf = b.buf[1:]
			b.mu.Unlock()
			return ev, nil
		}
		overflow := b.overflow
		b.mu.Unlock()
		if overflow {
			return liveEvent{}, &fellBehindError{gap: false}
		}
		select {
		case <-ctx.Done():
			return liveEvent{}, ctx.Err()
		case <-b.wake:
		}
	}
}

package clientapi

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/flcrypto"
	"repro/internal/statemachine"
	"repro/internal/types"
)

// Node is the node-side surface the client API drives. *flo.Node implements
// it; tests may substitute a fake.
type Node interface {
	ID() flcrypto.NodeID
	N() int
	Workers() int
	Submit(tx types.Transaction) error
	SubscribeDeliver(fn func(worker uint32, blk types.Block)) (cancel func())
	ReadDefinite(worker uint32, from uint64, max int) ([]types.Block, error)
	RegisterClient(id uint64) error
	UnregisterClient(id uint64)
	DeliveredBlocks() uint64
	DeliveredTxs() uint64
	PoolPending() int
	// State reads (wire protocol 1.2), served from the node's ledger
	// replica once its applied frontier covers the (worker, round) token;
	// statemachine.ErrNoState when the node has no backend configured.
	StateGet(ctx context.Context, key string, worker uint32, round uint64) ([]byte, bool, error)
	StateScan(ctx context.Context, begin, end string, max int, worker uint32, round uint64) ([]statemachine.Entry, error)
	StateWatch(ctx context.Context, key string, worker uint32, round uint64) (<-chan statemachine.KeyUpdate, func(), error)
}

// replayBatch is how many blocks one historical read fetches per worker.
const replayBatch = 64

// liveBufCap bounds the live-tail buffer that bridges replay and the
// delivery stream. A consumer that cannot keep up with live block
// production overflows it and is sent back to replay (which paces reads to
// the consumer) instead of stalling the node's delivery path.
const liveBufCap = 1024

// errFellBehind is the internal signal that the live buffer overflowed (or
// the tail showed a gap) and the stream must re-enter replay at its cursor.
var errFellBehind = errors.New("clientapi: live tail fell behind; resuming from replay")

// Stream delivers the merged definite stream from cursor cur, calling emit
// for every block in merged order — each exactly once, no gaps. The
// historical prefix below the definite frontier is replayed from the node's
// log (Node.ReadDefinite); the stream then follows the live delivery tail,
// falling back to replay whenever the consumer cannot keep up. Stream
// returns when ctx ends, when emit returns an error (which it propagates),
// or when the cursor predates retained history (ErrCompacted from the
// store). It never returns nil.
//
// emit may block: backpressure propagates to replay pacing, never to the
// node's delivery goroutine (live deliveries land in a bounded buffer).
func Stream(ctx context.Context, node Node, cur Cursor, emit func(worker uint32, blk types.Block) error) error {
	workers := node.Workers()
	if int(cur.Worker) >= workers {
		return fmt.Errorf("clientapi: cursor worker %d out of range (ω=%d)", cur.Worker, workers)
	}
	pos := cur.pos(workers)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Attach the live buffer before replaying: everything delivered
		// from this instant is either replayed (if it became readable in
		// time) or buffered, so the switchover cannot lose a block.
		lb := newLiveBuffer()
		cancel := node.SubscribeDeliver(lb.push)
		err := func() error {
			if err := replay(ctx, node, workers, &pos, emit); err != nil {
				return err
			}
			return follow(ctx, workers, &pos, lb, emit)
		}()
		cancel()
		if errors.Is(err, errFellBehind) {
			continue // re-replay from the current cursor
		}
		return err
	}
}

// replay emits definite blocks in merged order starting at *pos until the
// definite frontier is reached (the next block in merged order is not yet
// definite). Per-worker reads are batched so a W-worker replay costs
// O(blocks/replayBatch) historical reads, not one per block.
func replay(ctx context.Context, node Node, workers int, pos *uint64, emit func(uint32, types.Block) error) error {
	queues := make([][]types.Block, workers)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		w := uint32(*pos % uint64(workers))
		r := *pos/uint64(workers) + 1
		if len(queues[w]) == 0 {
			blocks, err := node.ReadDefinite(w, r, replayBatch)
			if err != nil {
				return err
			}
			if len(blocks) == 0 {
				return nil // frontier: the live tail takes over
			}
			queues[w] = blocks
		}
		blk := queues[w][0]
		if got := blk.Signed.Header.Round; got != r {
			return fmt.Errorf("clientapi: replay expected worker %d round %d, source yielded %d", w, r, got)
		}
		queues[w] = queues[w][1:]
		if err := emit(w, blk); err != nil {
			return err
		}
		*pos++
	}
}

// follow drains the live buffer, emitting the events at *pos and skipping
// those replay already covered. It returns errFellBehind on buffer overflow
// or a tail gap, sending the stream back to replay.
func follow(ctx context.Context, workers int, pos *uint64, lb *liveBuffer, emit func(uint32, types.Block) error) error {
	for {
		ev, err := lb.pop(ctx)
		if err != nil {
			return err
		}
		evPos := (ev.round-1)*uint64(workers) + uint64(ev.worker)
		if evPos < *pos {
			continue // replay already emitted it
		}
		if evPos > *pos {
			return errFellBehind // should not happen; replay re-verifies
		}
		if err := emit(ev.worker, ev.blk); err != nil {
			return err
		}
		*pos++
	}
}

// liveEvent is one buffered delivery.
type liveEvent struct {
	worker uint32
	round  uint64
	blk    types.Block
}

// liveBuffer decouples the node's synchronous delivery path from a stream
// consumer: push never blocks (overflow flips a flag instead), pop blocks
// the consumer until an event, overflow, or ctx end.
type liveBuffer struct {
	mu       sync.Mutex
	buf      []liveEvent
	overflow bool
	wake     chan struct{}
}

func newLiveBuffer() *liveBuffer {
	return &liveBuffer{wake: make(chan struct{}, 1)}
}

// push is the SubscribeDeliver callback; it must not block.
func (b *liveBuffer) push(w uint32, blk types.Block) {
	b.mu.Lock()
	if !b.overflow {
		if len(b.buf) >= liveBufCap {
			b.overflow = true
			b.buf = nil // the run is broken; replay will re-read it
		} else {
			b.buf = append(b.buf, liveEvent{worker: w, round: blk.Signed.Header.Round, blk: blk})
		}
	}
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// pop returns the oldest buffered event, blocking until one arrives. It
// returns errFellBehind once the buffer has overflowed and drained.
func (b *liveBuffer) pop(ctx context.Context) (liveEvent, error) {
	for {
		b.mu.Lock()
		if len(b.buf) > 0 {
			ev := b.buf[0]
			b.buf = b.buf[1:]
			b.mu.Unlock()
			return ev, nil
		}
		overflow := b.overflow
		b.mu.Unlock()
		if overflow {
			return liveEvent{}, errFellBehind
		}
		select {
		case <-ctx.Done():
			return liveEvent{}, ctx.Err()
		case <-b.wake:
		}
	}
}

package clientapi

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// DialOptions tune Dial.
type DialOptions struct {
	// Timeout bounds the TCP dial and the handshake round trip (default 5s).
	Timeout time.Duration
	// SubscribeBuffer is the capacity of the Subscribe event channel
	// (default 256). A consumer that stops draining it stalls the session's
	// read loop — by design, the backpressure travels over TCP to the
	// server, which pauses the stream at its replay source.
	SubscribeBuffer int
}

// Client is a remote FireLedger session: one TCP connection speaking the
// clientapi wire protocol to a node's client port. It assigns client-local
// sequence numbers, pipelines submissions (Submit returns before the ACK;
// the Pending resolves on the asynchronous COMMIT receipt), and carries at
// most one block subscription. Methods are safe for concurrent use.
type Client struct {
	conn     net.Conn
	clientID uint64
	welcome  welcomeMsg
	opts     DialOptions

	writeMu sync.Mutex // serializes whole-frame writes

	mu       sync.Mutex
	seq      uint64
	pending  map[uint64]*pendingEntry
	sub      *subscription
	infoC    []chan Info
	closed   bool
	readErr  error
	readDone chan struct{}
}

type pendingEntry struct {
	p       *Pending
	resolve func(Receipt, error)
}

type subscription struct {
	ctx   context.Context
	ch    chan BlockEvent
	ended chan struct{} // closed when the subscription detaches
}

// Dial connects to a node's client port and performs the HELLO/WELCOME
// handshake, claiming clientID for this session. The id must be unique
// among the node's live sessions (in-process clients included); the server
// refuses duplicates and the reserved conviction identity.
func Dial(addr string, clientID uint64, opts DialOptions) (*Client, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.SubscribeBuffer <= 0 {
		opts.SubscribeBuffer = 256
	}
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("clientapi: dial %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(opts.Timeout))
	if _, err := conn.Write(marshalHello(helloMsg{Magic: Magic, Version: Version, ClientID: clientID})); err != nil {
		conn.Close()
		return nil, fmt.Errorf("clientapi: handshake write: %w", err)
	}
	kind, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("clientapi: handshake read: %w", err)
	}
	if kind != kindWelcome {
		conn.Close()
		return nil, fmt.Errorf("clientapi: handshake: unexpected frame kind %d", kind)
	}
	welcome, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("clientapi: handshake decode: %w", err)
	}
	if welcome.Err != "" {
		conn.Close()
		return nil, fmt.Errorf("clientapi: server refused session: %s", welcome.Err)
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:     conn,
		clientID: clientID,
		welcome:  welcome,
		opts:     opts,
		// The sequence base is clock-seeded so two sessions of the same
		// client identity can never mint the same (client, seq): a write
		// left in a worker pool by a dropped connection must not have its
		// eventual COMMIT routed onto an unrelated pending of the redialed
		// session, nor collide with its pool identity.
		seq:      uint64(time.Now().UnixNano()),
		pending:  make(map[uint64]*pendingEntry),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// ClientID returns the session's claimed client identity.
func (c *Client) ClientID() uint64 { return c.clientID }

// Workers returns the serving node's worker count ω (from the handshake),
// which Cursor.Next needs.
func (c *Client) Workers() int { return int(c.welcome.Workers) }

// write sends one complete frame.
func (c *Client) write(frame []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.conn.Write(frame); err != nil {
		return fmt.Errorf("clientapi: write: %w", err)
	}
	return nil
}

// Submit sends payload as this session's next transaction. It returns once
// the frame is on the wire — submissions pipeline; the returned Pending is
// acked when the node accepts the write and resolves with the commit
// receipt when it reaches a definite block.
func (c *Client) Submit(payload []byte) (*Pending, error) {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("clientapi: session closed")
		}
		return nil, err
	}
	c.seq++
	seq := c.seq
	tx := types.Transaction{Client: c.clientID, Seq: seq, Payload: payload}
	p, _, resolve := NewPending(tx)
	c.pending[seq] = &pendingEntry{p: p, resolve: resolve}
	c.mu.Unlock()
	if err := c.write(marshalSubmit(submitMsg{Seq: seq, Payload: payload})); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	return p, nil
}

// SubmitWait is Submit followed by Pending.Wait.
func (c *Client) SubmitWait(ctx context.Context, payload []byte) (Receipt, error) {
	p, err := c.Submit(payload)
	if err != nil {
		return Receipt{}, err
	}
	return p.Wait(ctx)
}

// InFlight reports how many of this session's writes are not yet resolved.
func (c *Client) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Subscribe opens the session's block stream at cursor cur: the merged
// definite stream, history replayed first, then the live tail, every block
// exactly once. One subscription is active per session; the stream ends
// (with a terminal Err event for abnormal ends) when ctx is canceled, the
// session closes, or the cursor predates the node's retained history.
func (c *Client) Subscribe(ctx context.Context, cur Cursor) (<-chan BlockEvent, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("clientapi: session closed")
	}
	if c.sub != nil {
		c.mu.Unlock()
		return nil, errors.New("clientapi: a subscription is already active on this session")
	}
	sub := &subscription{ctx: ctx, ch: make(chan BlockEvent, c.opts.SubscribeBuffer), ended: make(chan struct{})}
	c.sub = sub
	c.mu.Unlock()
	if err := c.write(marshalSubscribe(cur)); err != nil {
		c.mu.Lock()
		c.sub = nil
		c.mu.Unlock()
		return nil, err
	}
	// Relay ctx cancellation to the server; the stream then ends cleanly
	// with a STREAM_END and the channel closes. The relay dies with its own
	// subscription (ended), and re-checks it is still the active one under
	// the lock before writing — a stale cancel firing after this stream
	// already ended must not kill a successor subscription on the session.
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			active := c.sub == sub
			if active {
				c.write(marshalEmpty(kindUnsubscribe))
			}
			c.mu.Unlock()
		case <-sub.ended:
		case <-c.readDone:
		}
	}()
	return sub.ch, nil
}

// Info queries the serving node's identity and delivery totals.
func (c *Client) Info(ctx context.Context) (Info, error) {
	ch := make(chan Info, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Info{}, errors.New("clientapi: session closed")
	}
	c.infoC = append(c.infoC, ch)
	c.mu.Unlock()
	if err := c.write(marshalEmpty(kindInfo)); err != nil {
		return Info{}, err
	}
	select {
	case info := <-ch:
		return info, nil
	case <-c.readDone:
		return Info{}, errors.New("clientapi: session closed")
	case <-ctx.Done():
		return Info{}, ctx.Err()
	}
}

// Close terminates the session. Unresolved Pendings fail; an active
// subscription receives a terminal error event.
func (c *Client) Close() error {
	c.conn.Close()
	<-c.readDone // fail() has run; pendings and subscription are resolved
	return nil
}

// finish delivers the subscription's terminal error (if any) and closes
// its channel. The error is a contract signal — ErrCompacted means the
// consumer has a gap it must handle — so it must not be droppable by a full
// buffer: the send blocks until the consumer drains or its ctx ends. It
// runs on its own goroutine so a consumer that abandoned the channel
// without canceling stalls only this goroutine (until its ctx dies), never
// the session's read loop or Close.
func (s *subscription) finish(err error) {
	if err == nil {
		close(s.ch)
		return
	}
	go func() {
		select {
		case s.ch <- BlockEvent{Err: err}:
		case <-s.ctx.Done():
		}
		close(s.ch)
	}()
}

// readLoop owns the connection's read half and dispatches every inbound
// frame: ACKs and COMMITs resolve pendings, BLOCK/STREAM_END feed the
// subscription, INFO_REPLY answers waiters.
func (c *Client) readLoop() {
	var err error
	for {
		var kind uint8
		var payload []byte
		kind, payload, err = readFrame(c.conn)
		if err != nil {
			break
		}
		switch kind {
		case kindAck:
			m, derr := decodeAck(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			e := c.pending[m.Seq]
			if e != nil && m.Err != "" {
				delete(c.pending, m.Seq)
			}
			c.mu.Unlock()
			if e == nil {
				continue
			}
			if m.Err != "" {
				e.resolve(Receipt{}, fmt.Errorf("clientapi: submit rejected: %s", m.Err))
			} else {
				e.p.ack()
			}
		case kindCommit:
			m, derr := decodeCommit(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			e := c.pending[m.Seq]
			delete(c.pending, m.Seq)
			c.mu.Unlock()
			if e != nil {
				e.resolve(m.Receipt, nil)
			}
		case kindBlock:
			m, derr := decodeBlockMsg(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			sub := c.sub
			c.mu.Unlock()
			if sub == nil {
				continue
			}
			select {
			case sub.ch <- BlockEvent{Worker: m.Worker, Block: m.Block}:
			case <-sub.ctx.Done():
				// Consumer gone; drop the event. STREAM_END follows (the
				// unsubscribe relay fired) and detaches the subscription.
			}
		case kindStreamEnd:
			streamErr, derr := decodeStreamEnd(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			sub := c.sub
			c.sub = nil
			c.mu.Unlock()
			if sub != nil {
				close(sub.ended)
				sub.finish(streamErr)
			}
		case kindInfoReply:
			info, derr := decodeInfoReply(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			var ch chan Info
			if len(c.infoC) > 0 {
				ch = c.infoC[0]
				c.infoC = c.infoC[1:]
			}
			c.mu.Unlock()
			if ch != nil {
				ch <- info
			}
		default:
			err = fmt.Errorf("clientapi: unexpected frame kind %d", kind)
		}
		if err != nil {
			break
		}
	}
	c.fail(err)
}

// fail tears the session down after the read loop exits: every unresolved
// Pending fails, the subscription ends with a terminal error, info waiters
// unblock (via readDone).
func (c *Client) fail(err error) {
	if err == nil {
		err = errors.New("clientapi: connection closed")
	}
	sessionErr := fmt.Errorf("clientapi: session lost: %w", err)
	c.mu.Lock()
	c.closed = true
	c.readErr = sessionErr
	pend := c.pending
	c.pending = make(map[uint64]*pendingEntry)
	sub := c.sub
	c.sub = nil
	c.infoC = nil
	c.mu.Unlock()
	c.conn.Close()
	for _, e := range pend {
		e.resolve(Receipt{}, sessionErr)
	}
	if sub != nil {
		close(sub.ended)
		sub.finish(sessionErr)
	}
	close(c.readDone)
}

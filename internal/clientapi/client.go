package clientapi

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// DialOptions tune Dial.
type DialOptions struct {
	// Timeout bounds the TCP dial and the handshake round trip (default 5s).
	Timeout time.Duration
	// SubscribeBuffer is the capacity of the Subscribe event channel
	// (default 256). A consumer that stops draining it stalls the session's
	// read loop — by design, the backpressure travels over TCP to the
	// server, which pauses the stream at its replay source.
	SubscribeBuffer int
}

// Client is a remote FireLedger session: one TCP connection speaking the
// clientapi wire protocol to a node's client port. It assigns client-local
// sequence numbers, pipelines submissions (Submit returns before the ACK;
// the Pending resolves on the asynchronous COMMIT receipt), and carries at
// most one block subscription. Methods are safe for concurrent use.
type Client struct {
	conn     net.Conn
	clientID uint64
	welcome  welcomeMsg
	opts     DialOptions

	writeMu sync.Mutex // serializes whole-frame writes

	mu       sync.Mutex
	seq      uint64
	pending  map[uint64]*pendingEntry
	sub      *subscription
	infoC    []chan Info
	closed   bool
	readErr  error
	readDone chan struct{}

	// State reads (1.2): request-id-correlated waiters — the server answers
	// reads in completion order, so each in-flight request parks its own
	// reply channel here.
	nextReq  uint64
	getW     map[uint64]chan getReplyMsg
	scanW    map[uint64]chan scanReplyMsg
	watchers map[uint64]*clientWatch
}

type pendingEntry struct {
	p       *Pending
	resolve func(Receipt, error)
}

type subscription struct {
	ctx   context.Context
	ch    chan BlockEvent
	ended chan struct{} // closed when the subscription detaches
}

// Dial connects to a node's client port and performs the HELLO/WELCOME
// handshake, claiming clientID for this session. The id must be unique
// among the node's live sessions (in-process clients included); the server
// refuses duplicates and the reserved conviction identity.
func Dial(addr string, clientID uint64, opts DialOptions) (*Client, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("clientapi: dial %s: %w", addr, err)
	}
	return Attach(conn, clientID, opts)
}

// Attach runs the HELLO/WELCOME handshake over an already-established
// connection and returns the session. Any net.Conn works: scale tests and
// benches attach over net.Pipe ends served by Server.ServeConn, taking the
// file-descriptor limit out of subscriber-count experiments. Attach owns
// conn; it is closed on handshake failure and by Client.Close.
func Attach(conn net.Conn, clientID uint64, opts DialOptions) (*Client, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.SubscribeBuffer <= 0 {
		opts.SubscribeBuffer = 256
	}
	conn.SetDeadline(time.Now().Add(opts.Timeout))
	if _, err := conn.Write(marshalHello(helloMsg{Magic: Magic, Version: Version, ClientID: clientID})); err != nil {
		conn.Close()
		return nil, fmt.Errorf("clientapi: handshake write: %w", err)
	}
	kind, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("clientapi: handshake read: %w", err)
	}
	if kind != kindWelcome {
		conn.Close()
		return nil, fmt.Errorf("clientapi: handshake: unexpected frame kind %d", kind)
	}
	welcome, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("clientapi: handshake decode: %w", err)
	}
	if welcome.Err != "" {
		conn.Close()
		return nil, fmt.Errorf("clientapi: server refused session: %s", welcome.Err)
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:     conn,
		clientID: clientID,
		welcome:  welcome,
		opts:     opts,
		// The sequence base is clock-seeded so two sessions of the same
		// client identity can never mint the same (client, seq): a write
		// left in a worker pool by a dropped connection must not have its
		// eventual COMMIT routed onto an unrelated pending of the redialed
		// session, nor collide with its pool identity.
		seq:      uint64(time.Now().UnixNano()),
		pending:  make(map[uint64]*pendingEntry),
		readDone: make(chan struct{}),
		getW:     make(map[uint64]chan getReplyMsg),
		scanW:    make(map[uint64]chan scanReplyMsg),
		watchers: make(map[uint64]*clientWatch),
	}
	go c.readLoop()
	return c, nil
}

// ClientID returns the session's claimed client identity.
func (c *Client) ClientID() uint64 { return c.clientID }

// Workers returns the serving node's worker count ω (from the handshake),
// which Cursor.Next needs.
func (c *Client) Workers() int { return int(c.welcome.Workers) }

// write sends one complete frame.
func (c *Client) write(frame []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.conn.Write(frame); err != nil {
		return fmt.Errorf("clientapi: write: %w", err)
	}
	return nil
}

// Submit sends payload as this session's next transaction. It returns once
// the frame is on the wire — submissions pipeline; the returned Pending is
// acked when the node accepts the write and resolves with the commit
// receipt when it reaches a definite block.
func (c *Client) Submit(payload []byte) (*Pending, error) {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("clientapi: session closed")
		}
		return nil, err
	}
	c.seq++
	seq := c.seq
	tx := types.Transaction{Client: c.clientID, Seq: seq, Payload: payload}
	p, _, resolve := NewPending(tx)
	c.pending[seq] = &pendingEntry{p: p, resolve: resolve}
	c.mu.Unlock()
	if err := c.write(marshalSubmit(submitMsg{Seq: seq, Payload: payload})); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	return p, nil
}

// SubmitWait is Submit followed by Pending.Wait.
func (c *Client) SubmitWait(ctx context.Context, payload []byte) (Receipt, error) {
	p, err := c.Submit(payload)
	if err != nil {
		return Receipt{}, err
	}
	return p.Wait(ctx)
}

// InFlight reports how many of this session's writes are not yet resolved.
func (c *Client) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Subscribe opens the session's block stream at cursor cur: the merged
// definite stream, history replayed first, then the live tail, every block
// exactly once. One subscription is active per session; the stream ends
// (with a terminal Err event for abnormal ends) when ctx is canceled, the
// session closes, or the cursor predates the node's retained history.
func (c *Client) Subscribe(ctx context.Context, cur Cursor) (<-chan BlockEvent, error) {
	return c.SubscribeFiltered(ctx, cur, Filter{})
}

// SubscribeFiltered is Subscribe with a server-side filter (wire 1.3): only
// blocks carrying at least one transaction matching flt are sent over the
// wire; the cursor still advances over suppressed blocks, so resuming from
// the last received block's Cursor.Next is gap-free in the filtered view.
func (c *Client) SubscribeFiltered(ctx context.Context, cur Cursor, flt Filter) (<-chan BlockEvent, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("clientapi: session closed")
	}
	if c.sub != nil {
		c.mu.Unlock()
		return nil, errors.New("clientapi: a subscription is already active on this session")
	}
	sub := &subscription{ctx: ctx, ch: make(chan BlockEvent, c.opts.SubscribeBuffer), ended: make(chan struct{})}
	c.sub = sub
	c.mu.Unlock()
	if err := c.write(marshalSubscribe(cur, flt)); err != nil {
		c.mu.Lock()
		c.sub = nil
		c.mu.Unlock()
		return nil, err
	}
	// Relay ctx cancellation to the server; the stream then ends cleanly
	// with a STREAM_END and the channel closes. The relay dies with its own
	// subscription (ended), and re-checks it is still the active one under
	// the lock before writing — a stale cancel firing after this stream
	// already ended must not kill a successor subscription on the session.
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			active := c.sub == sub
			if active {
				c.write(marshalEmpty(kindUnsubscribe))
			}
			c.mu.Unlock()
		case <-sub.ended:
		case <-c.readDone:
		}
	}()
	return sub.ch, nil
}

// Info queries the serving node's identity and delivery totals.
func (c *Client) Info(ctx context.Context) (Info, error) {
	ch := make(chan Info, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Info{}, errors.New("clientapi: session closed")
	}
	c.infoC = append(c.infoC, ch)
	c.mu.Unlock()
	if err := c.write(marshalEmpty(kindInfo)); err != nil {
		return Info{}, err
	}
	select {
	case info := <-ch:
		return info, nil
	case <-c.readDone:
		return Info{}, errors.New("clientapi: session closed")
	case <-ctx.Done():
		return Info{}, ctx.Err()
	}
}

// sessionErrLocked returns the session's terminal error (c.mu held).
func (c *Client) sessionErrLocked() error {
	if c.readErr != nil {
		return c.readErr
	}
	return errors.New("clientapi: session closed")
}

// Get reads key's current value from the serving node's ledger replica. The
// token anchors the read: the server blocks until its applied frontier
// covers (token.Worker, token.Round), so Get with a commit Receipt's Token
// observes that write (read-your-writes). The zero token reads current
// state without waiting. ErrNoState when the node serves no state backend.
func (c *Client) Get(ctx context.Context, key string, at ReadToken) ([]byte, bool, error) {
	ch := make(chan getReplyMsg, 1)
	c.mu.Lock()
	if c.closed {
		err := c.sessionErrLocked()
		c.mu.Unlock()
		return nil, false, err
	}
	c.nextReq++
	id := c.nextReq
	c.getW[id] = ch
	c.mu.Unlock()
	drop := func() {
		c.mu.Lock()
		delete(c.getW, id)
		c.mu.Unlock()
	}
	if err := c.write(marshalGet(getMsg{ID: id, Key: key, At: at})); err != nil {
		drop()
		return nil, false, err
	}
	select {
	case m := <-ch:
		if err := readErr(m.Code, m.Err); err != nil {
			return nil, false, err
		}
		return m.Value, m.Found, nil
	case <-ctx.Done():
		drop()
		return nil, false, ctx.Err()
	case <-c.readDone:
		c.mu.Lock()
		err := c.sessionErrLocked()
		c.mu.Unlock()
		return nil, false, err
	}
}

// Scan reads up to max entries with begin <= key < end (ascending key
// order) under the same consistency-token semantics as Get. Replies are
// capped at MaxScanEntries (and a frame-size budget for huge values); page
// a larger range by reissuing with begin just past the last returned key.
// max <= 0 requests the cap.
func (c *Client) Scan(ctx context.Context, begin, end string, max int, at ReadToken) ([]Entry, error) {
	ch := make(chan scanReplyMsg, 1)
	c.mu.Lock()
	if c.closed {
		err := c.sessionErrLocked()
		c.mu.Unlock()
		return nil, err
	}
	c.nextReq++
	id := c.nextReq
	c.scanW[id] = ch
	c.mu.Unlock()
	drop := func() {
		c.mu.Lock()
		delete(c.scanW, id)
		c.mu.Unlock()
	}
	if max < 0 {
		max = 0
	}
	if err := c.write(marshalScan(scanMsg{ID: id, Begin: begin, End: end, Max: uint32(max), At: at})); err != nil {
		drop()
		return nil, err
	}
	select {
	case m := <-ch:
		if err := readErr(m.Code, m.Err); err != nil {
			return nil, err
		}
		return m.Entries, nil
	case <-ctx.Done():
		drop()
		return nil, ctx.Err()
	case <-c.readDone:
		c.mu.Lock()
		err := c.sessionErrLocked()
		c.mu.Unlock()
		return nil, err
	}
}

// clientWatch mirrors the replica-side watcher on the client: the read loop
// offers each WATCH_EVENT into a latest-wins slot (never blocking the
// session's frame dispatch), and a pump goroutine drains the slot into the
// consumer channel.
type clientWatch struct {
	id    uint64
	ready chan error // first server response: nil (event arrived) or error

	mu     sync.Mutex
	latest KeyUpdate
	has    bool
	wake   chan struct{}
	done   chan struct{}
	out    chan KeyUpdate

	readyOnce sync.Once
	doneOnce  sync.Once
}

func (w *clientWatch) offer(upd KeyUpdate) {
	w.mu.Lock()
	w.latest, w.has = upd, true
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	w.readyOnce.Do(func() { w.ready <- nil })
}

func (w *clientWatch) end(err error) {
	if err == nil {
		err = errors.New("clientapi: watch ended")
	}
	w.readyOnce.Do(func() { w.ready <- err })
	w.doneOnce.Do(func() { close(w.done) })
}

func (w *clientWatch) pump() {
	defer close(w.out)
	for {
		select {
		case <-w.done:
			return
		case <-w.wake:
		}
		w.mu.Lock()
		upd, has := w.latest, w.has
		w.has = false
		w.mu.Unlock()
		if !has {
			continue
		}
		select {
		case w.out <- upd:
		case <-w.done:
			return
		}
	}
}

// WatchKey watches key on the serving node's ledger replica: once the
// applied frontier covers the token, the returned channel yields the key's
// current state and then every subsequent change, coalesced to the latest
// value when the consumer lags. The watch ends — and the channel closes —
// when ctx is canceled or the session closes. WatchKey blocks until the
// first state arrives (or the server refuses, e.g. ErrNoState).
func (c *Client) WatchKey(ctx context.Context, key string, at ReadToken) (<-chan KeyUpdate, error) {
	w := &clientWatch{
		ready: make(chan error, 1),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		out:   make(chan KeyUpdate, 1),
	}
	c.mu.Lock()
	if c.closed {
		err := c.sessionErrLocked()
		c.mu.Unlock()
		return nil, err
	}
	c.nextReq++
	w.id = c.nextReq
	c.watchers[w.id] = w
	c.mu.Unlock()
	drop := func() {
		c.mu.Lock()
		delete(c.watchers, w.id)
		c.mu.Unlock()
	}
	if err := c.write(marshalWatch(watchMsg{ID: w.id, Key: key, At: at})); err != nil {
		drop()
		return nil, err
	}
	select {
	case err := <-w.ready:
		if err != nil {
			drop()
			return nil, err
		}
	case <-ctx.Done():
		drop()
		c.write(marshalUnwatch(w.id))
		return nil, ctx.Err()
	case <-c.readDone:
		c.mu.Lock()
		err := c.sessionErrLocked()
		c.mu.Unlock()
		return nil, err
	}
	go w.pump()
	// Relay ctx cancellation: the server answers the UNWATCH with a
	// WATCH_END, which ends the watch and closes the channel.
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			active := c.watchers[w.id] == w
			c.mu.Unlock()
			if active {
				c.write(marshalUnwatch(w.id))
			}
			w.end(errors.New("clientapi: watch canceled"))
		case <-w.done:
		case <-c.readDone:
		}
	}()
	return w.out, nil
}

// Close terminates the session. Unresolved Pendings fail; an active
// subscription receives a terminal error event.
func (c *Client) Close() error {
	c.conn.Close()
	<-c.readDone // fail() has run; pendings and subscription are resolved
	return nil
}

// finish delivers the subscription's terminal error (if any) and closes
// its channel. The error is a contract signal — ErrCompacted means the
// consumer has a gap it must handle — so it must not be droppable by a full
// buffer: the send blocks until the consumer drains or its ctx ends. It
// runs on its own goroutine so a consumer that abandoned the channel
// without canceling stalls only this goroutine (until its ctx dies), never
// the session's read loop or Close.
func (s *subscription) finish(err error) {
	if err == nil {
		close(s.ch)
		return
	}
	go func() {
		select {
		case s.ch <- BlockEvent{Err: err}:
		case <-s.ctx.Done():
		}
		close(s.ch)
	}()
}

// readLoop owns the connection's read half and dispatches every inbound
// frame: ACKs and COMMITs resolve pendings, BLOCK/STREAM_END feed the
// subscription, INFO_REPLY answers waiters.
func (c *Client) readLoop() {
	var err error
	for {
		var kind uint8
		var payload []byte
		kind, payload, err = readFrame(c.conn)
		if err != nil {
			break
		}
		switch kind {
		case kindAck:
			m, derr := decodeAck(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			e := c.pending[m.Seq]
			if e != nil && m.Err != "" {
				delete(c.pending, m.Seq)
			}
			c.mu.Unlock()
			if e == nil {
				continue
			}
			if m.Err != "" {
				e.resolve(Receipt{}, fmt.Errorf("clientapi: submit rejected: %s", m.Err))
			} else {
				e.p.ack()
			}
		case kindCommit:
			m, derr := decodeCommit(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			e := c.pending[m.Seq]
			delete(c.pending, m.Seq)
			c.mu.Unlock()
			if e != nil {
				e.resolve(m.Receipt, nil)
			}
		case kindBlock:
			m, derr := decodeBlockMsg(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			sub := c.sub
			c.mu.Unlock()
			if sub == nil {
				continue
			}
			// Prefer delivery: a canceled consumer that is still draining gets
			// every in-flight frame in order until STREAM_END. Only a consumer
			// that stopped receiving (buffer full, ctx done) loses the tail.
			select {
			case sub.ch <- BlockEvent{Worker: m.Worker, Block: m.Block}:
			default:
				select {
				case sub.ch <- BlockEvent{Worker: m.Worker, Block: m.Block}:
				case <-sub.ctx.Done():
					// Consumer gone; drop the event. STREAM_END follows (the
					// unsubscribe relay fired) and detaches the subscription.
				}
			}
		case kindStreamEnd:
			streamErr, derr := decodeStreamEnd(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			sub := c.sub
			c.sub = nil
			c.mu.Unlock()
			if sub != nil {
				close(sub.ended)
				sub.finish(streamErr)
			}
		case kindGetReply:
			m, derr := decodeGetReply(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			ch := c.getW[m.ID]
			delete(c.getW, m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case kindScanReply:
			m, derr := decodeScanReply(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			ch := c.scanW[m.ID]
			delete(c.scanW, m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case kindWatchEvent:
			m, derr := decodeWatchEvent(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			w := c.watchers[m.ID]
			c.mu.Unlock()
			if w != nil {
				w.offer(m.Upd)
			}
		case kindWatchEnd:
			m, derr := decodeWatchEnd(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			w := c.watchers[m.ID]
			delete(c.watchers, m.ID)
			c.mu.Unlock()
			if w != nil {
				w.end(readErr(m.Code, m.Err))
			}
		case kindInfoReply:
			info, derr := decodeInfoReply(payload)
			if derr != nil {
				err = derr
				break
			}
			c.mu.Lock()
			var ch chan Info
			if len(c.infoC) > 0 {
				ch = c.infoC[0]
				c.infoC = c.infoC[1:]
			}
			c.mu.Unlock()
			if ch != nil {
				ch <- info
			}
		default:
			err = fmt.Errorf("clientapi: unexpected frame kind %d", kind)
		}
		if err != nil {
			break
		}
	}
	c.fail(err)
}

// fail tears the session down after the read loop exits: every unresolved
// Pending fails, the subscription ends with a terminal error, info waiters
// unblock (via readDone).
func (c *Client) fail(err error) {
	if err == nil {
		err = errors.New("clientapi: connection closed")
	}
	sessionErr := fmt.Errorf("clientapi: session lost: %w", err)
	c.mu.Lock()
	c.closed = true
	c.readErr = sessionErr
	pend := c.pending
	c.pending = make(map[uint64]*pendingEntry)
	sub := c.sub
	c.sub = nil
	c.infoC = nil
	watchers := c.watchers
	c.watchers = make(map[uint64]*clientWatch)
	c.getW = make(map[uint64]chan getReplyMsg)
	c.scanW = make(map[uint64]chan scanReplyMsg)
	c.mu.Unlock()
	c.conn.Close()
	for _, e := range pend {
		e.resolve(Receipt{}, sessionErr)
	}
	for _, w := range watchers {
		w.end(sessionErr)
	}
	if sub != nil {
		close(sub.ended)
		sub.finish(sessionErr)
	}
	// Get/Scan waiters unblock via readDone (set readErr first, above).
	close(c.readDone)
}

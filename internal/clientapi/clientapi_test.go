package clientapi

import (
	"context"
	"encoding/binary"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/flo"
	"repro/internal/transport"
	"repro/internal/types"
)

// testWorkers mirrors the flo test suite: ω defaults to 1, FLO_TEST_WORKERS
// overrides it (CI runs the package once at ω=4 under -race).
func testWorkers() int {
	if s := os.Getenv("FLO_TEST_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// flo.Node is the production implementation of the backend interface.
var _ Node = (*flo.Node)(nil)

// blockKey identifies one merged-stream element for sequence comparisons.
type blockKey struct {
	worker uint32
	round  uint64
	hash   flcrypto.Hash
}

// deliveryRecord collects a node's merged definite stream from genesis (it
// is installed as Config.Deliver, so nothing is missed).
type deliveryRecord struct {
	mu   sync.Mutex
	keys []blockKey
}

func (r *deliveryRecord) add(w uint32, blk types.Block) {
	r.mu.Lock()
	r.keys = append(r.keys, blockKey{worker: w, round: blk.Signed.Header.Round, hash: blk.Hash()})
	r.mu.Unlock()
}

func (r *deliveryRecord) snapshot() []blockKey {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]blockKey, len(r.keys))
	copy(out, r.keys)
	return out
}

func (r *deliveryRecord) wait(t *testing.T, n int, timeout time.Duration) []blockKey {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if got := r.snapshot(); len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("node delivered %d blocks, want ≥ %d", len(r.snapshot()), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newClusterServer starts a 4-node in-process cluster in client-pool mode
// with a clientapi server fronting node 0, and returns the server's address
// plus node 0's delivery record.
func newClusterServer(t *testing.T, tweak func(i int, cfg *flo.Config)) (addr string, rec *deliveryRecord, node0 *flo.Node) {
	t.Helper()
	const n = 4
	ks := flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519)
	net := transport.NewChanNetwork(transport.ChanConfig{N: n})
	rec = &deliveryRecord{}
	var nodes []*flo.Node
	for i := 0; i < n; i++ {
		cfg := flo.Config{
			Endpoint:     net.Endpoint(flcrypto.NodeID(i)),
			Registry:     ks.Registry,
			Priv:         ks.Privs[i],
			Workers:      testWorkers(),
			BatchSize:    8,
			InitialTimer: 50 * time.Millisecond,
			ViewTimeout:  300 * time.Millisecond,
		}
		if i == 0 {
			cfg.Deliver = rec.add
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		node, err := flo.NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	srv := NewServer(nodes[0], ServerOptions{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for _, node := range nodes {
		node.Start()
	}
	t.Cleanup(func() {
		srv.Close()
		for _, node := range nodes {
			node.Stop()
		}
		net.Close()
	})
	return srv.Addr(), rec, nodes[0]
}

func TestRemoteSubmitCommitReceipt(t *testing.T) {
	addr, _, node0 := newClusterServer(t, nil)
	c, err := Dial(addr, 42, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		p, err := c.Submit([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		receipt, err := p.Wait(ctx)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		select {
		case <-p.Acked():
		default:
			t.Fatalf("write %d committed without an ack", i)
		}
		// The receipt must point at a real definite block containing the tx.
		blk, ok := node0.Worker(int(receipt.Worker)).Chain().BlockAt(receipt.Round)
		if !ok {
			t.Fatalf("receipt names round %d, which node 0 does not hold", receipt.Round)
		}
		if blk.Hash() != receipt.BlockHash {
			t.Fatalf("receipt hash does not match block at (w%d, r%d)", receipt.Worker, receipt.Round)
		}
		found := false
		for _, tx := range blk.Body.Txs {
			if tx.Client == 42 && tx.Seq == p.Tx.Seq {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("receipt block (w%d, r%d) does not contain the transaction", receipt.Worker, receipt.Round)
		}
	}
	if n := c.InFlight(); n != 0 {
		t.Fatalf("in-flight after all commits = %d", n)
	}
}

// TestRemoteSubscribeMatchesLocalDeliver is the acceptance check: a
// subscriber from cursor zero observes exactly the merged definite stream
// the node's own delivery hook saw.
func TestRemoteSubscribeMatchesLocalDeliver(t *testing.T) {
	addr, rec, _ := newClusterServer(t, nil)
	c, err := Dial(addr, 7, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	events, err := c.Subscribe(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	const want = 25
	var got []blockKey
	for len(got) < want {
		select {
		case ev, ok := <-events:
			if !ok || ev.Err != nil {
				t.Fatalf("stream ended after %d blocks: %v", len(got), ev.Err)
			}
			got = append(got, blockKey{worker: ev.Worker, round: ev.Block.Signed.Header.Round, hash: ev.Block.Hash()})
		case <-ctx.Done():
			t.Fatalf("timed out after %d blocks", len(got))
		}
	}
	local := rec.wait(t, want, 30*time.Second)
	for i := 0; i < want; i++ {
		if got[i] != local[i] {
			t.Fatalf("stream diverges at %d: remote %+v, local %+v", i, got[i], local[i])
		}
	}
}

// TestRemoteReconnectResumesAtCursor: a session that drops and redials with
// the cursor just past its last block observes the continuation of the same
// stream — no gaps, no duplicates — across the reconnect.
func TestRemoteReconnectResumesAtCursor(t *testing.T) {
	addr, rec, _ := newClusterServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	c1, err := Dial(addr, 9, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events, err := c1.Subscribe(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	var got []blockKey
	cursor := Cursor{}
	for len(got) < 10 {
		select {
		case ev, ok := <-events:
			if !ok || ev.Err != nil {
				t.Fatalf("first stream ended early: %v", ev.Err)
			}
			got = append(got, blockKey{worker: ev.Worker, round: ev.Block.Signed.Header.Round, hash: ev.Block.Hash()})
			cursor = Cursor{Worker: ev.Worker, Round: ev.Block.Signed.Header.Round}.Next(c1.Workers())
		case <-ctx.Done():
			t.Fatal("timed out on first stream")
		}
	}
	c1.Close()

	// Let the cluster move on while we are away, then resume. The redial
	// retries briefly: the id is released when the server notices the
	// disconnect, which races a fast reconnect.
	rec.wait(t, len(got)+8, 60*time.Second)
	var c2 *Client
	for deadline := time.Now().Add(10 * time.Second); ; {
		c2, err = Dial(addr, 9, DialOptions{}) // same identity: released by Close
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("redial with released id: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer c2.Close()
	events2, err := c2.Subscribe(ctx, cursor)
	if err != nil {
		t.Fatal(err)
	}
	for len(got) < 25 {
		select {
		case ev, ok := <-events2:
			if !ok || ev.Err != nil {
				t.Fatalf("resumed stream ended early: %v", ev.Err)
			}
			got = append(got, blockKey{worker: ev.Worker, round: ev.Block.Signed.Header.Round, hash: ev.Block.Hash()})
		case <-ctx.Done():
			t.Fatal("timed out on resumed stream")
		}
	}
	local := rec.wait(t, 25, 30*time.Second)
	for i := 0; i < 25; i++ {
		if got[i] != local[i] {
			t.Fatalf("reconnected stream diverges at %d: remote %+v, local %+v", i, got[i], local[i])
		}
	}
}

func TestRemoteDuplicateClientIDRefused(t *testing.T) {
	addr, _, _ := newClusterServer(t, nil)
	c1, err := Dial(addr, 5, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, 5, DialOptions{}); err == nil {
		t.Fatal("second session with a live client id was accepted")
	}
	if _, err := Dial(addr, flo.SystemClientID, DialOptions{}); err == nil {
		t.Fatal("reserved conviction identity was accepted")
	}
	c1.Close()
	// The id is released on close; a reconnect must succeed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		c2, err := Dial(addr, 5, DialOptions{})
		if err == nil {
			c2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("redial after close never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestVersionMismatchRefused pins the exact-match handshake on the packed
// major.minor version word: a client differing in only the minor half is
// refused exactly like one differing in the major half.
func TestVersionMismatchRefused(t *testing.T) {
	addr, _, _ := newClusterServer(t, nil)
	for _, tc := range []struct {
		name    string
		version uint32
	}{
		{"minor-bump", VersionMajor<<16 | (VersionMinor + 1)},
		{"major-bump", (VersionMajor + 1) << 16},
		{"legacy-1.2", VersionMajor<<16 | 2}, // pre-filter protocol: SUBSCRIBE carries no filter clause
		{"legacy-1.1", VersionMajor<<16 | 1}, // pre-state-reads protocol: no GET/SCAN/WATCH frames
		{"legacy-1.0", VersionMajor << 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(marshalHello(helloMsg{Magic: Magic, Version: tc.version, ClientID: 1})); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			kind, payload, err := readFrame(conn)
			if err != nil {
				t.Fatal(err)
			}
			if kind != kindWelcome {
				t.Fatalf("got frame kind %d, want WELCOME", kind)
			}
			welcome, err := decodeWelcome(payload)
			if err != nil {
				t.Fatal(err)
			}
			if welcome.Err == "" {
				t.Fatalf("protocol version %#x was accepted", tc.version)
			}
			if welcome.Version != Version {
				t.Fatalf("refusal advertises version %#x, want %#x (for client-side diagnostics)", welcome.Version, Version)
			}
		})
	}
}

// TestInfoReplyRoundTrip covers the 1.1 INFO_REPLY layout, PoolPending
// included.
func TestInfoReplyRoundTrip(t *testing.T) {
	want := Info{Node: 2, N: 4, Workers: 8, DeliveredBlocks: 123, DeliveredTxs: 4567, PoolPending: 42}
	wire := marshalInfoReply(want)
	kind, payload := wire[4], wire[5:]
	if kind != kindInfoReply {
		t.Fatalf("kind = %d", kind)
	}
	got, err := decodeInfoReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestRemoteInfo(t *testing.T) {
	addr, _, node0 := newClusterServer(t, nil)
	c, err := Dial(addr, 11, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Workers() != node0.Workers() {
		t.Fatalf("handshake workers = %d, want %d", c.Workers(), node0.Workers())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Park some writes in the pools so the 1.1 PoolPending field has
	// something to report (client-pool mode: nothing drains until blocks
	// form, but acceptance is synchronous server-side).
	const parked = 5
	for i := 0; i < parked; i++ {
		if _, err := c.Submit([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, err := c.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.Node != 0 || info.N != 4 || info.Workers != node0.Workers() {
			t.Fatalf("info = %+v", info)
		}
		// The writes may already have drained into definite blocks; either
		// the backlog or the delivered-tx counter must account for them.
		if info.PoolPending > 0 || info.DeliveredTxs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submitted writes visible in neither PoolPending nor DeliveredTxs: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteSubmitRejectedOnSaturatedNode: a node running the saturating
// load model has no client pools; the SUBMIT must come back as a rejection
// through the ACK, resolving the pending with an error instead of hanging.
func TestRemoteSubmitRejectedOnSaturatedNode(t *testing.T) {
	addr, _, _ := newClusterServer(t, func(i int, cfg *flo.Config) {
		cfg.Saturate = 32
	})
	c, err := Dial(addr, 3, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.SubmitWait(ctx, []byte("x")); err == nil {
		t.Fatal("submit to a saturated node did not surface the rejection")
	}
}

// TestFrameBounds: a length prefix beyond MaxFrame must be rejected before
// any allocation.
func TestFrameBounds(t *testing.T) {
	addr, _, _ := newClusterServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxFrame+1)
	if _, err := conn.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection rather than wait for 64MiB+.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("server kept the connection after an oversized frame")
	}
}

package clientapi

// Protocol 1.2 state reads over the wire: GET/SCAN/WATCH against a cluster
// whose nodes run a managed state backend, anchored at commit-receipt
// tokens. The read-your-writes contract under test: Submit → Receipt →
// Get/Scan with Receipt.Token() observes the write, on both backends,
// including immediately after the serving node restarts from a
// durable-backend checkpoint.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flo"
	"repro/internal/statemachine"
)

// eachBackend runs fn against a cluster whose nodes all carry the named
// managed backend.
func eachBackend(t *testing.T, fn func(t *testing.T, tweak func(i int, cfg *flo.Config))) {
	t.Helper()
	for _, name := range []string{"map", "durable"} {
		name := name
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			fn(t, func(i int, cfg *flo.Config) {
				if name == "map" {
					cfg.State = statemachine.NewKV()
					return
				}
				d, err := statemachine.OpenDurable(filepath.Join(dir, fmt.Sprintf("state%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { d.Close() })
				cfg.State = d
			})
		})
	}
}

func TestRemoteReadYourWrites(t *testing.T) {
	eachBackend(t, func(t *testing.T, tweak func(i int, cfg *flo.Config)) {
		addr, _, _ := newClusterServer(t, tweak)
		c, err := Dial(addr, 42, DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()

		// Write, take the receipt, read back with its token: the server
		// blocks the read until the applied frontier covers the commit, so
		// no sleep or poll is needed.
		r, err := c.SubmitWait(ctx, statemachine.EncodeSet("k1", []byte("v1")))
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := c.Get(ctx, "k1", r.Token())
		if err != nil || !ok || string(v) != "v1" {
			t.Fatalf("Get(k1) = %q/%v/%v, want v1", v, ok, err)
		}
		// Missing key: found=false, no error.
		if _, ok, err := c.Get(ctx, "nope", r.Token()); ok || err != nil {
			t.Fatalf("Get(missing) = %v/%v", ok, err)
		}
		// The zero token reads current state without waiting.
		if v, ok, err := c.Get(ctx, "k1", ReadToken{}); err != nil || !ok || string(v) != "v1" {
			t.Fatalf("zero-token Get = %q/%v/%v", v, ok, err)
		}

		// Scan a range with the token of the last write in merged order.
		var last Receipt
		for i := 0; i < 6; i++ {
			r, err := c.SubmitWait(ctx, statemachine.EncodeSet(fmt.Sprintf("s/%d", i), []byte{byte(i)}))
			if err != nil {
				t.Fatal(err)
			}
			if r.Round > last.Round || (r.Round == last.Round && r.Worker > last.Worker) {
				last = r
			}
		}
		entries, err := c.Scan(ctx, "s/", "s0", 0, last.Token())
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 6 {
			t.Fatalf("scan returned %d entries, want 6: %v", len(entries), entries)
		}
		for i, e := range entries {
			if e.Key != fmt.Sprintf("s/%d", i) || len(e.Value) != 1 || e.Value[0] != byte(i) {
				t.Fatalf("entry %d = %q/%v", i, e.Key, e.Value)
			}
		}
		// Paged scan: an explicit max caps the reply; resume past the last
		// key of the page.
		page, err := c.Scan(ctx, "s/", "s0", 4, last.Token())
		if err != nil || len(page) != 4 {
			t.Fatalf("page 1: %d entries, err %v", len(page), err)
		}
		rest, err := c.Scan(ctx, page[len(page)-1].Key+"\x00", "s0", 4, last.Token())
		if err != nil || len(rest) != 2 {
			t.Fatalf("page 2: %d entries, err %v", len(rest), err)
		}
	})
}

// TestRemoteReadTokenBlocksUntilCovered pins the consistency semantics: a
// token ahead of the applied frontier parks the read until commits cover it
// (not an error, not a stale answer), and ctx cancellation unparks it.
func TestRemoteReadTokenBlocksUntilCovered(t *testing.T) {
	addr, _, node0 := newClusterServer(t, func(i int, cfg *flo.Config) {
		cfg.State = statemachine.NewKV()
	})
	c, err := Dial(addr, 9, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A token far past the frontier must respect ctx.
	shortCtx, shortCancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer shortCancel()
	if _, _, err := c.Get(shortCtx, "k", ReadToken{Worker: 0, Round: 1 << 40}); err == nil {
		t.Fatal("read with an uncoverable token returned instead of blocking")
	}

	// A token ahead of the frontier parks the read until rounds cover it
	// (the chain free-runs, so coverage arrives on its own); the parked
	// read then answers with the previously committed value.
	if _, err := c.SubmitWait(ctx, statemachine.EncodeSet("future", []byte("yes"))); err != nil {
		t.Fatal(err)
	}
	target := node0.State().Position(0) + 50
	v, ok, err := c.Get(ctx, "future", ReadToken{Worker: 0, Round: target})
	if err != nil || !ok || string(v) != "yes" {
		t.Fatalf("parked read answered %q/%v/%v, want yes", v, ok, err)
	}
	if !node0.State().Covered(0, target) {
		t.Fatal("read returned before its token was covered")
	}
}

func TestRemoteWatchKey(t *testing.T) {
	addr, _, _ := newClusterServer(t, func(i int, cfg *flo.Config) {
		cfg.State = statemachine.NewKV()
	})
	c, err := Dial(addr, 21, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	r, err := c.SubmitWait(ctx, statemachine.EncodeSet("w", []byte("v0")))
	if err != nil {
		t.Fatal(err)
	}
	watchCtx, watchCancel := context.WithCancel(ctx)
	defer watchCancel()
	ch, err := c.WatchKey(watchCtx, "w", r.Token())
	if err != nil {
		t.Fatal(err)
	}
	// First update: the key's state at (or after) the anchor.
	select {
	case upd := <-ch:
		if !upd.Exists || len(upd.Value) == 0 {
			t.Fatalf("initial update = %+v", upd)
		}
	case <-ctx.Done():
		t.Fatal("no initial watch update")
	}
	// Updates are coalesced under load, but the final state always arrives.
	for i := 1; i <= 5; i++ {
		if _, err := c.SubmitWait(ctx, statemachine.EncodeSet("w", []byte(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(30 * time.Second)
	for {
		select {
		case upd, ok := <-ch:
			if !ok {
				t.Fatal("watch channel closed before the final value arrived")
			}
			if string(upd.Value) == "v5" {
				watchCancel()
				// The canceled watch must close the channel.
				closeDeadline := time.After(30 * time.Second)
				for {
					select {
					case _, ok := <-ch:
						if !ok {
							return
						}
					case <-closeDeadline:
						t.Fatal("watch channel did not close after cancel")
					}
				}
			}
		case <-deadline:
			t.Fatal("final value never arrived on the watch")
		}
	}
}

// TestRemoteReadNoState: reads against a node with no configured backend
// fail with the typed ErrNoState on every read verb, and the error survives
// the wire (errors.Is on the client side).
func TestRemoteReadNoState(t *testing.T) {
	addr, _, _ := newClusterServer(t, nil)
	c, err := Dial(addr, 33, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, _, err := c.Get(ctx, "k", ReadToken{}); !errors.Is(err, ErrNoState) {
		t.Fatalf("Get error = %v, want ErrNoState", err)
	}
	if _, err := c.Scan(ctx, "", "", 0, ReadToken{}); !errors.Is(err, ErrNoState) {
		t.Fatalf("Scan error = %v, want ErrNoState", err)
	}
	if _, err := c.WatchKey(ctx, "k", ReadToken{}); !errors.Is(err, ErrNoState) {
		t.Fatalf("WatchKey error = %v, want ErrNoState", err)
	}
}

// TestRemoteReadAfterDurableRestart is the acceptance scenario: commit
// writes on a durable-backend cluster, crash the serving node, restart it
// from its checkpointed DataDir, and read the old receipt's write back with
// its token — immediately, on a fresh connection, before any new commit.
func TestRemoteReadAfterDurableRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster scenario")
	}
	stateDirs := make([]string, 4)
	c := newSimCluster(t, 97, func(i int, dir string, cfg *flo.Config) {
		cfg.DataDir = dir
		cfg.SnapshotEvery = 5
		cfg.CatchUpBatch = 8
		stateDirs[i] = filepath.Join(dir, "state")
		d, err := statemachine.OpenDurable(stateDirs[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		cfg.State = d
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cl, err := Dial(c.srv.Addr(), 55, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Drive rounds until a checkpoint exists (the store compacts at
	// SnapshotEvery), then remember one committed write and its receipt.
	var anchor Receipt
	for i := 0; ; i++ {
		r, err := cl.SubmitWait(ctx, statemachine.EncodeSet(fmt.Sprintf("key%03d", i), []byte(fmt.Sprintf("val%03d", i))))
		if err != nil {
			t.Fatal(err)
		}
		anchor = r
		if r.Round > 12 {
			break
		}
	}
	cl.Close()

	// Crash and restart the serving node from disk, durable backend and all.
	c.srv.Close()
	c.net.Crash(0)
	c.nodes[0].Stop()
	d, err := statemachine.OpenDurable(stateDirs[0])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	c.net.Heal(0)
	node, err := flo.NewNode(flo.Config{
		Endpoint:      c.net.Reattach(0),
		Registry:      c.ks.Registry,
		Priv:          c.ks.Privs[0],
		Workers:       1,
		BatchSize:     8,
		DataDir:       c.dirs[0],
		SnapshotEvery: 5,
		CatchUpBatch:  8,
		State:         d,
		InitialTimer:  25 * time.Millisecond,
		ViewTimeout:   250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[0] = node
	if node.Worker(0).Chain().Base() == 0 {
		t.Fatal("restart found no checkpoint: the scenario never compacted")
	}
	c.srv = NewServer(node, ServerOptions{})
	if err := c.srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	node.Start()

	// The restored replica (checkpoint + replayed suffix) must already
	// cover the old receipt: the read answers without any new commit.
	cl2, err := Dial(c.srv.Addr(), 56, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	readCtx, readCancel := context.WithTimeout(ctx, 30*time.Second)
	defer readCancel()
	v, ok, err := cl2.Get(readCtx, "key000", anchor.Token())
	if err != nil || !ok || string(v) != "val000" {
		t.Fatalf("post-restart Get = %q/%v/%v, want val000", v, ok, err)
	}
	entries, err := cl2.Scan(readCtx, "key", "kez", 0, anchor.Token())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || entries[0].Key != "key000" {
		t.Fatalf("post-restart scan = %v", entries)
	}
}

package obbc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
)

const testProto transport.ProtoID = 11

// orderer is a test stand-in for the PBFT atomic broadcast: it delivers
// every submitted request to all services in one global order.
type orderer struct {
	mu       sync.Mutex
	services []*Service
}

func (o *orderer) submit(req []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.services {
		s.HandleOrdered(req)
	}
	return nil
}

type fixture struct {
	net      *transport.ChanNetwork
	muxes    []*transport.Mux
	services []*Service
	ord      *orderer

	mu       sync.Mutex
	evidence map[flcrypto.NodeID]map[Key][]byte
	pgds     map[flcrypto.NodeID][]string
}

func evidenceFor(key Key) []byte {
	return []byte(fmt.Sprintf("EV|%d|%d|%d", key.Instance, key.Round, key.Proposer))
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	ks := flcrypto.MustGenerateKeySet(n, flcrypto.Ed25519)
	f := &fixture{
		net:      transport.NewChanNetwork(transport.ChanConfig{N: n}),
		ord:      &orderer{},
		evidence: make(map[flcrypto.NodeID]map[Key][]byte),
		pgds:     make(map[flcrypto.NodeID][]string),
	}
	for i := 0; i < n; i++ {
		id := flcrypto.NodeID(i)
		f.evidence[id] = make(map[Key][]byte)
		mux := transport.NewMux(f.net.Endpoint(id))
		svc := New(Config{
			Mux:      mux,
			Proto:    testProto,
			Registry: ks.Registry,
			Priv:     ks.Privs[i],
			SubmitAB: f.ord.submit,
			ValidEvidence: func(key Key, ev []byte) bool {
				return string(ev) == string(evidenceFor(key))
			},
			Evidence: func(key Key) []byte {
				f.mu.Lock()
				defer f.mu.Unlock()
				return f.evidence[id][key]
			},
			OnPgd: func(from flcrypto.NodeID, key Key, pgd []byte) {
				f.mu.Lock()
				f.pgds[id] = append(f.pgds[id], string(pgd))
				f.mu.Unlock()
			},
		})
		mux.Start()
		f.muxes = append(f.muxes, mux)
		f.services = append(f.services, svc)
		f.ord.services = append(f.ord.services, svc)
	}
	t.Cleanup(func() {
		for _, s := range f.services {
			s.Stop()
		}
		for _, m := range f.muxes {
			m.Stop()
		}
		f.net.Close()
	})
	return f
}

// grantEvidence marks node i as holding the proposer's message for key.
func (f *fixture) grantEvidence(i int, key Key) {
	f.mu.Lock()
	f.evidence[flcrypto.NodeID(i)][key] = evidenceFor(key)
	f.mu.Unlock()
}

// propose runs Propose at every node with the given per-node values and
// returns the decisions.
func (f *fixture) propose(t *testing.T, key Key, values []byte) []byte {
	t.Helper()
	n := len(f.services)
	decisions := make([]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var ev []byte
		if values[i] == 1 {
			f.grantEvidence(i, key)
			ev = evidenceFor(key)
		}
		wg.Add(1)
		go func(i int, ev []byte) {
			defer wg.Done()
			decisions[i], errs[i] = f.services[i].Propose(key, values[i], ev, nil)
		}(i, ev)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Propose did not terminate")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return decisions
}

func assertAll(t *testing.T, decisions []byte, want byte) {
	t.Helper()
	for i, d := range decisions {
		if d != want {
			t.Fatalf("node %d decided %d, want %d (all: %v)", i, d, want, decisions)
		}
	}
}

func TestOBBCFastPathUnanimous(t *testing.T) {
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 1, Proposer: 0}
	decisions := f.propose(t, key, []byte{1, 1, 1, 1})
	assertAll(t, decisions, 1)
	fast := uint64(0)
	for _, s := range f.services {
		fast += s.Metrics().FastDecisions.Load()
	}
	if fast != 4 {
		t.Fatalf("expected 4 fast decisions, got %d", fast)
	}
}

func TestOBBCSingleZeroStillDecidesOne(t *testing.T) {
	// n=4, f=1: three 1-votes reach the n−f fast threshold, so 1 is
	// decided; the zero voter also converges on 1.
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 2, Proposer: 1}
	decisions := f.propose(t, key, []byte{1, 1, 1, 0})
	assertAll(t, decisions, 1)
}

func TestOBBCFallbackWithEvidenceDecidesOne(t *testing.T) {
	// Two zero votes in n=4 block the fast path; the evidence exchange
	// (Lemma A.4.1 machinery) must pull the decision to 1 because two
	// correct nodes hold evidence.
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 3, Proposer: 2}
	decisions := f.propose(t, key, []byte{1, 1, 0, 0})
	assertAll(t, decisions, 1)
	fb := uint64(0)
	for _, s := range f.services {
		fb += s.Metrics().FallbackDecisions.Load()
	}
	if fb == 0 {
		t.Fatal("expected fallback decisions")
	}
}

func TestOBBCAllZeroDecidesZero(t *testing.T) {
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 4, Proposer: 3}
	decisions := f.propose(t, key, []byte{0, 0, 0, 0})
	assertAll(t, decisions, 0)
}

func TestOBBCAgreementAcrossManyRounds(t *testing.T) {
	// Property: whatever the vote pattern, all nodes decide the same value,
	// and if the decision is 1 at least one node had evidence.
	f := newFixture(t, 4)
	patterns := [][]byte{
		{1, 1, 1, 1}, {0, 1, 1, 1}, {1, 0, 1, 0}, {0, 0, 0, 1},
		{0, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 0, 1}, {1, 0, 0, 0},
	}
	for r, pat := range patterns {
		key := Key{Instance: 0, Round: uint64(r + 1), Proposer: flcrypto.NodeID(r % 4)}
		decisions := f.propose(t, key, pat)
		for i := 1; i < len(decisions); i++ {
			if decisions[i] != decisions[0] {
				t.Fatalf("round %d pattern %v: decisions diverge %v", r, pat, decisions)
			}
		}
		ones := 0
		for _, v := range pat {
			ones += int(v)
		}
		if decisions[0] == 1 && ones == 0 {
			t.Fatalf("round %d: decided 1 with no evidence holder", r)
		}
	}
}

func TestOBBCProposeValidation(t *testing.T) {
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 99, Proposer: 0}
	if _, err := f.services[0].Propose(key, 1, nil, nil); err == nil {
		t.Fatal("propose 1 without evidence accepted")
	}
	if _, err := f.services[0].Propose(key, 0, []byte("ev"), nil); err == nil {
		t.Fatal("propose 0 with evidence accepted")
	}
}

func TestOBBCAbort(t *testing.T) {
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 77, Proposer: 0}
	errCh := make(chan error, 1)
	go func() {
		// Only this node proposes: it blocks waiting for n−f votes.
		_, err := f.services[0].Propose(key, 0, nil, nil)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	f.services[0].Abort(key)
	select {
	case err := <-errCh:
		if err != ErrAborted {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not unblock Propose")
	}
}

func TestOBBCStopUnblocks(t *testing.T) {
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 88, Proposer: 0}
	errCh := make(chan error, 1)
	go func() {
		_, err := f.services[1].Propose(key, 0, nil, nil)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.services[1].Stop()
	select {
	case err := <-errCh:
		if err != ErrAborted {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not unblock Propose")
	}
}

func TestOBBCPiggybackDelivered(t *testing.T) {
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 10, Proposer: 1}
	n := len(f.services)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		f.grantEvidence(i, key)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var pgd []byte
			if i == 2 {
				pgd = []byte("next-block-header")
			}
			f.services[i].Propose(key, 1, evidenceFor(key), pgd)
		}(i)
	}
	wg.Wait()
	// Every node must have received node 2's piggyback.
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < n; i++ {
		for {
			f.mu.Lock()
			got := len(f.pgds[flcrypto.NodeID(i)]) > 0
			var val string
			if got {
				val = f.pgds[flcrypto.NodeID(i)][0]
			}
			f.mu.Unlock()
			if got {
				if val != "next-block-header" {
					t.Fatalf("node %d pgd = %q", i, val)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never received the piggyback", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestOBBCGC(t *testing.T) {
	f := newFixture(t, 4)
	for r := uint64(1); r <= 5; r++ {
		key := Key{Instance: 0, Round: r, Proposer: 0}
		f.propose(t, key, []byte{1, 1, 1, 1})
	}
	s := f.services[0]
	s.mu.Lock()
	before := len(s.insts)
	s.mu.Unlock()
	if before < 5 {
		t.Fatalf("expected ≥5 instances, got %d", before)
	}
	s.GC(0, 4)
	s.mu.Lock()
	after := len(s.insts)
	s.mu.Unlock()
	if after >= before {
		t.Fatalf("GC did not shrink instance map: %d -> %d", before, after)
	}
}

func TestOBBCEvidenceServedForUnknownRound(t *testing.T) {
	// A node that holds the proposer's message but has not reached the
	// round yet must still answer evidence requests (the Evidence callback
	// reads the WRB stash, not OBBC state).
	f := newFixture(t, 4)
	key := Key{Instance: 0, Round: 20, Proposer: 3}
	// Nodes 2 and 3 hold evidence but never propose. Nodes 0 and 1 propose
	// 0; the fast path fails (only 2 < n−f votes... they wait), so give
	// votes from 2,3 manually by having them propose 0 too — but with
	// evidence reachable via the EV exchange, the decision may become 1
	// only if someone votes 1. Here no one votes 1 and no proposal carries
	// evidence, so the decision is 0 — but the EV responses themselves
	// must flow. We grant evidence to 2,3 and check the decision is still
	// agreed (the adopt rule may lift it to 1; both outcomes must agree).
	f.grantEvidence(2, key)
	f.grantEvidence(3, key)
	decisions := f.propose(t, key, []byte{0, 0, 0, 0})
	for i := 1; i < 4; i++ {
		if decisions[i] != decisions[0] {
			t.Fatalf("decisions diverge: %v", decisions)
		}
	}
}

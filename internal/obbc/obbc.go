// Package obbc implements the Optimistic Binary Byzantine Consensus of the
// paper's Appendix A (Algorithm 4): a binary consensus that decides in a
// single all-to-all communication step of unsigned single-bit votes whenever
// every node proposes the optimistic value v=1, and falls back to a full
// Byzantine consensus otherwise.
//
// The fast path is exactly the paper's: broadcast the vote, wait for n−f
// votes, decide 1 if they are unanimously 1 (lines OB5–OB8). Otherwise the
// node exchanges evidence (lines OB12–OB18) and proposes through a fallback
// BBC. The fallback here is built on the PBFT atomic-broadcast substrate
// (the paper uses BFT-SMaRt the same way, §6.1.2): every participant
// atomic-broadcasts a signed proposal for the instance, and all nodes decide
// the majority value of the first 2f+1 valid proposals in the agreed order.
// Since 2f+1 proposals contain at least f+1 from correct nodes, a majority
// value was proposed by at least one correct node (BBC-Validity), and the
// agreed order makes the decision identical everywhere (BBC-Agreement).
//
// Votes also carry the piggybacked payload of §5.1 (the next proposer's
// block header rides on its vote for the current round), delivered to the
// client through the OnPgd callback.
package obbc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flcrypto"
	"repro/internal/transport"
	"repro/internal/types"
)

// Key identifies one OBBC instance: one delivery attempt of one proposer's
// block in one round of one FLO worker.
type Key struct {
	Instance uint32
	Round    uint64
	Proposer flcrypto.NodeID
}

func (k Key) String() string {
	return fmt.Sprintf("obbc(w%d r%d p%d)", k.Instance, k.Round, k.Proposer)
}

func (k Key) encode(e *types.Encoder) {
	e.Uint32(k.Instance)
	e.Uint64(k.Round)
	e.Int64(int64(k.Proposer))
}

func decodeKey(d *types.Decoder) Key {
	return Key{Instance: d.Uint32(), Round: d.Uint64(), Proposer: flcrypto.NodeID(d.Int64())}
}

// Wire message kinds.
const (
	kindVote   = 1
	kindEvReq  = 2
	kindEvResp = 3
	// kindVoteEcho is a vote re-sent by a node that already decided the
	// instance, for a peer observed still voting on it. It is recorded like
	// a vote but never triggers an echo in response, so echoes cannot
	// ping-pong between two decided nodes.
	kindVoteEcho = 4
)

// BBCTag prefixes fallback proposals in the shared atomic-broadcast stream,
// distinguishing them from recovery versions (see core).
const BBCTag byte = 0x01

// ErrAborted is returned by Propose when the instance is aborted (the node
// entered the recovery procedure) or the service stopped.
var ErrAborted = errors.New("obbc: instance aborted")

// retryInterval paces the re-broadcast of votes and evidence requests while
// a Propose waits on its quorum.
const retryInterval = 500 * time.Millisecond

// starvedRetries is how many fruitless vote re-broadcast cycles the fast
// path tolerates before falling back (see Propose). Healthy fast paths
// decide in milliseconds; a multi-second starvation means the missing
// voters are gone for good.
const starvedRetries = 6

// Config wires a Service to its node.
type Config struct {
	// Mux and Proto attach the vote/evidence messages to the transport.
	Mux   *transport.Mux
	Proto transport.ProtoID
	// Instance scopes this service to one FLO worker: HandleOrdered leaves
	// proposals of other instances to their own service.
	Instance uint32
	// Registry verifies fallback-proposal signatures; Priv signs ours.
	Registry *flcrypto.Registry
	Priv     flcrypto.PrivateKey
	// VerifyPool, when non-nil, routes fallback-proposal signature checks
	// through the node's shared verification pool and its cache. Nil
	// verifies synchronously (deterministic tests).
	VerifyPool *flcrypto.VerifyPool
	// SubmitAB atomic-broadcasts a fallback proposal (PBFT Submit).
	SubmitAB func([]byte) error
	// ValidEvidence reports whether ev is a valid evidence(1) for key —
	// for WRB, a header correctly signed by the round's proposer.
	ValidEvidence func(key Key, ev []byte) bool
	// Evidence returns the local evidence(1) for key, or nil. Consulted
	// when answering evidence requests, so a node can serve evidence for
	// rounds it has not reached yet.
	Evidence func(key Key) []byte
	// OnPgd receives piggybacked payloads attached to votes. Runs on the
	// transport read goroutine; must not block.
	OnPgd func(from flcrypto.NodeID, key Key, pgd []byte)
	// ChainInput, when set, supplies a grounded fallback input for an
	// instance this node never voted on: 1 when the local chain already
	// holds key's block (it was delivered and adopted — via recovery or
	// catch-up), 0 when the chain holds a different proposer's block for
	// that round (the rotation passed key.Proposer). A node whose
	// per-instance state was discarded (DropFrom after a recovery) uses it
	// to join a fallback it would otherwise sit out — without it, a
	// fallback started by starved peers can itself starve below the 2f+1
	// proposal quorum (found by the simulation harness: lossy links plus a
	// recovery left only two live voters on an instance the rest of the
	// cluster had adopted out-of-band). Consulted only under the agreed
	// total order, so all nodes still decide from the same proposal set.
	ChainInput func(key Key) (byte, bool)
	// OnVote observes every incoming vote (after dedup checks are NOT yet
	// applied). The core uses it to spot peers voting on rounds that are
	// already definite here — a lagging node it can help catch up. Runs on
	// the transport read goroutine; must not block.
	OnVote func(from flcrypto.NodeID, key Key)
}

// Metrics counts fast-path and fallback decisions for the evaluation.
type Metrics struct {
	FastDecisions     atomic.Uint64
	FallbackDecisions atomic.Uint64
}

type inst struct {
	mu      sync.Mutex
	update  chan struct{} // closed and replaced on every state change
	votes   map[flcrypto.NodeID]byte
	evResp  map[flcrypto.NodeID][]byte
	ordered []bbcProposal // valid fallback proposals in atomic order
	decided bool
	value   byte
	// fallbackSeen: some node started the fallback (an ordered proposal
	// exists); fast path is no longer attempted locally (and per line
	// OB26, a fast decider echoes its value into the fallback).
	fallbackSeen bool
	submitted    bool // we atomic-broadcast our proposal already
	fastLocal    bool // we decided on the fast path
	aborted      bool
}

type bbcProposal struct {
	voter flcrypto.NodeID
	value byte
}

func newInst() *inst {
	return &inst{
		update: make(chan struct{}),
		votes:  make(map[flcrypto.NodeID]byte),
		evResp: make(map[flcrypto.NodeID][]byte),
	}
}

// bump wakes all waiters; callers hold i.mu.
func (i *inst) bump() {
	close(i.update)
	i.update = make(chan struct{})
}

// Service runs OBBC instances for one node.
type Service struct {
	cfg     Config
	n, f    int
	id      flcrypto.NodeID
	metrics Metrics

	mu    sync.Mutex
	insts map[Key]*inst
	stop  chan struct{}
	once  sync.Once
}

// New registers an OBBC service on cfg.Mux.
func New(cfg Config) *Service {
	s := &Service{
		cfg:   cfg,
		n:     cfg.Mux.N(),
		f:     (cfg.Mux.N() - 1) / 3,
		id:    cfg.Mux.ID(),
		insts: make(map[Key]*inst),
		stop:  make(chan struct{}),
	}
	cfg.Mux.Handle(cfg.Proto, s.onWire)
	return s
}

// Metrics returns the service counters.
func (s *Service) Metrics() *Metrics { return &s.metrics }

// SetOnVote installs the vote observer after construction (the core binds
// it once it exists; see Config.OnVote).
func (s *Service) SetOnVote(fn func(from flcrypto.NodeID, key Key)) {
	s.mu.Lock()
	s.cfg.OnVote = fn
	s.mu.Unlock()
}

// SetChainInput installs the chain oracle after construction (the core
// binds it once the chain exists; see Config.ChainInput).
func (s *Service) SetChainInput(fn func(key Key) (byte, bool)) {
	s.mu.Lock()
	s.cfg.ChainInput = fn
	s.mu.Unlock()
}

func (s *Service) chainInput(key Key) (byte, bool) {
	s.mu.Lock()
	fn := s.cfg.ChainInput
	s.mu.Unlock()
	if fn == nil {
		return 0, false
	}
	return fn(key)
}

// Stop aborts all waiting Propose calls.
func (s *Service) Stop() {
	s.once.Do(func() { close(s.stop) })
}

func (s *Service) inst(key Key) *inst {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.insts[key]
	if i == nil {
		i = newInst()
		s.insts[key] = i
	}
	return i
}

// GC drops instances of `instance` with round < olderThan. The core calls it
// as rounds become definite; instances can no longer be needed once their
// round is beyond recovery reach. A Propose still blocked on a dropped
// instance is woken with an abort: once the entry leaves the map, votes and
// evidence route to a fresh entry and a later Abort cannot reach the old one,
// so without this wake a snapshot install racing an in-flight Propose (the
// round loop parked on a round the whole cluster compacted away) would sleep
// on the orphaned instance forever.
func (s *Service) GC(instance uint32, olderThan uint64) {
	s.dropWhere(func(key Key) bool {
		return key.Instance == instance && key.Round < olderThan
	})
}

// DropFrom discards all state of `instance` at rounds ≥ fromRound. The
// recovery procedure calls it before re-running those rounds, so stale
// pre-recovery votes and decisions cannot leak into the redone attempts
// (every correct node drops and re-votes, so quorums re-form).
func (s *Service) DropFrom(instance uint32, fromRound uint64) {
	s.dropWhere(func(key Key) bool {
		return key.Instance == instance && key.Round >= fromRound
	})
}

// dropWhere removes matching instances and aborts their blocked waiters.
func (s *Service) dropWhere(match func(Key) bool) {
	var dropped []*inst
	s.mu.Lock()
	for key, i := range s.insts {
		if match(key) {
			delete(s.insts, key)
			dropped = append(dropped, i)
		}
	}
	s.mu.Unlock()
	for _, i := range dropped {
		i.mu.Lock()
		i.aborted = true
		i.bump()
		i.mu.Unlock()
	}
}

// Abort wakes any Propose blocked on key with ErrAborted; used when the
// node diverts into the recovery procedure.
func (s *Service) Abort(key Key) {
	i := s.inst(key)
	i.mu.Lock()
	i.aborted = true
	i.bump()
	i.mu.Unlock()
}

// --- Wire handling ---

func (s *Service) onWire(from flcrypto.NodeID, buf []byte) {
	d := types.NewDecoder(buf)
	kind := d.Uint8()
	key := decodeKey(d)
	switch kind {
	case kindVote, kindVoteEcho:
		value := d.Uint8()
		pgd := d.Bytes32()
		if d.Finish() != nil || value > 1 {
			return
		}
		if len(pgd) > 0 && s.cfg.OnPgd != nil {
			s.cfg.OnPgd(from, key, append([]byte(nil), pgd...))
		}
		s.mu.Lock()
		onVote := s.cfg.OnVote
		s.mu.Unlock()
		if onVote != nil {
			onVote(from, key)
		}
		i := s.inst(key)
		i.mu.Lock()
		if _, dup := i.votes[from]; !dup {
			i.votes[from] = value
			i.bump()
		}
		// Vote echo: if this instance is already decided here and the peer
		// is still voting on it, it missed our vote (partition, restart,
		// or in-flight decision right before a cut). Re-send our own vote
		// directly so the peer's quorum can complete — without this, a
		// side that decided from in-flight messages advances while the
		// other side waits forever on an instance nobody revisits. One
		// echo per received vote, unicast: no amplification.
		echo := byte(0)
		doEcho := false
		if kind == kindVote && i.decided {
			if own, ok := i.votes[s.id]; ok {
				echo = own
				doEcho = true
			}
		}
		i.mu.Unlock()
		if doEcho && from != s.id {
			e := types.NewEncoder(64)
			e.Uint8(kindVoteEcho)
			key.encode(e)
			e.Uint8(echo)
			e.Bytes32(nil)
			s.cfg.Mux.Send(s.cfg.Proto, from, e.Bytes())
		}
	case kindEvReq:
		if d.Finish() != nil {
			return
		}
		var ev []byte
		if s.cfg.Evidence != nil {
			ev = s.cfg.Evidence(key)
		}
		e := types.GetEncoder(32 + len(ev))
		e.Uint8(kindEvResp)
		key.encode(e)
		e.Bytes32(ev)
		s.cfg.Mux.Send(s.cfg.Proto, from, e.Bytes())
		e.Release()
	case kindEvResp:
		ev := append([]byte(nil), d.Bytes32()...)
		if d.Finish() != nil {
			return
		}
		i := s.inst(key)
		i.mu.Lock()
		if _, dup := i.evResp[from]; !dup {
			i.evResp[from] = ev
			i.bump()
		}
		i.mu.Unlock()
	}
}

// Propose runs OBBC_1 for key with initial value v (0 or 1) and optional
// piggyback payload pgd attached to the vote. evidence must be non-nil and
// valid exactly when v == 1 (assertion lines OB2–OB3). It blocks until a
// decision is reached or the instance is aborted.
func (s *Service) Propose(key Key, v byte, evidence []byte, pgd []byte) (byte, error) {
	if v == 1 && evidence == nil {
		return 0, fmt.Errorf("obbc: %v: proposing 1 requires evidence", key)
	}
	if v != 1 && evidence != nil {
		return 0, fmt.Errorf("obbc: %v: proposing 0 with evidence", key)
	}

	// OB4: broadcast the vote (with piggyback). The vote is re-broadcast
	// periodically while waiting: receivers deduplicate by sender, and a
	// peer whose recovery procedure discarded this instance's state (see
	// DropFrom) re-learns the vote instead of waiting forever.
	e := types.GetEncoder(64 + len(pgd))
	defer e.Release()
	e.Uint8(kindVote)
	key.encode(e)
	e.Uint8(v)
	e.Bytes32(pgd)
	voteMsg := e.Bytes()
	if err := s.cfg.Mux.Broadcast(s.cfg.Proto, voteMsg); err != nil {
		return 0, err
	}

	i := s.inst(key)

	// OB5–OB8: wait for n−f votes; decide fast on unanimity for 1.
	starved := 0
	for {
		i.mu.Lock()
		if i.decided {
			val := i.value
			i.mu.Unlock()
			return val, nil
		}
		if i.aborted {
			i.aborted = false // one-shot: the abort targets this attempt only
			i.mu.Unlock()
			return 0, ErrAborted
		}
		if i.fallbackSeen {
			// Someone already fell back: skip the fast path and join.
			i.mu.Unlock()
			break
		}
		ones := 0
		for _, vv := range i.votes {
			if vv == 1 {
				ones++
			}
		}
		if ones >= s.n-s.f {
			// Fast decision. It is safe even with stray 0 votes present:
			// n−f one-votes imply at least f+1 correct evidence holders,
			// which is what guarantees any fallback also decides 1
			// (Lemma A.4.1).
			i.decided = true
			i.value = 1
			i.fastLocal = true
			i.bump()
			i.mu.Unlock()
			s.metrics.FastDecisions.Add(1)
			return 1, nil
		}
		if len(i.votes) >= s.n-s.f {
			// Mixed votes: fall back (OB11).
			i.mu.Unlock()
			break
		}
		if starved >= starvedRetries {
			// Vote starvation: peers that already passed this round will
			// never re-vote — their fast votes were lost (a lossy period)
			// and their instance state may be gone (DropFrom after a
			// recovery), so re-broadcasting ours cannot complete the
			// quorum. The fallback is safe to enter at any time (it is a
			// full consensus; skipping the fast path costs only latency)
			// and is the designed escape: our ordered proposal prompts
			// every correct node to contribute via its own vote memory or
			// the ChainInput oracle, so the 2f+1 proposal quorum re-forms
			// from nodes the fast path could no longer reach. Found by the
			// simulation harness as a permanent cluster stall.
			i.mu.Unlock()
			break
		}
		ch := i.update
		i.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(retryInterval):
			starved++
			s.cfg.Mux.Broadcast(s.cfg.Proto, voteMsg)
		case <-s.stop:
			return 0, ErrAborted
		}
	}

	// OB12–OB13: request evidence, wait for n−f replies.
	evEnc := types.GetEncoder(32)
	defer evEnc.Release()
	evEnc.Uint8(kindEvReq)
	key.encode(evEnc)
	evReq := evEnc.Bytes()
	if err := s.cfg.Mux.Broadcast(s.cfg.Proto, evReq); err != nil {
		return 0, err
	}
	for {
		i.mu.Lock()
		if i.decided || i.aborted {
			break
		}
		if len(i.evResp) >= s.n-s.f {
			break
		}
		ch := i.update
		i.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(retryInterval):
			s.cfg.Mux.Broadcast(s.cfg.Proto, voteMsg)
			s.cfg.Mux.Broadcast(s.cfg.Proto, evReq)
		case <-s.stop:
			return 0, ErrAborted
		}
	}
	// (i.mu held here)
	if i.aborted && !i.decided {
		i.aborted = false
		i.mu.Unlock()
		return 0, ErrAborted
	}
	if i.decided {
		val := i.value
		i.mu.Unlock()
		return val, nil
	}
	// OB15–OB18: adopt v if any valid evidence arrived.
	newV := v
	for _, ev := range i.evResp {
		if len(ev) > 0 && s.cfg.ValidEvidence != nil && s.cfg.ValidEvidence(key, ev) {
			newV = 1
			break
		}
	}
	submit := !i.submitted
	i.submitted = true
	i.mu.Unlock()

	// OB19: propose through the fallback BBC.
	if submit {
		if err := s.submitProposal(key, newV); err != nil {
			return 0, err
		}
	}
	for {
		i.mu.Lock()
		if i.decided {
			val := i.value
			i.mu.Unlock()
			return val, nil
		}
		if i.aborted {
			i.aborted = false
			i.mu.Unlock()
			return 0, ErrAborted
		}
		ch := i.update
		i.mu.Unlock()
		select {
		case <-ch:
		case <-s.stop:
			return 0, ErrAborted
		}
	}
}

// --- Fallback BBC over atomic broadcast ---

func proposalSigBody(key Key, voter flcrypto.NodeID, value byte) []byte {
	e := types.NewEncoder(64)
	e.Bytes32([]byte("fireledger/bbc"))
	key.encode(e)
	e.Int64(int64(voter))
	e.Uint8(value)
	return e.Bytes()
}

func (s *Service) submitProposal(key Key, value byte) error {
	sig, err := s.cfg.Priv.Sign(proposalSigBody(key, s.id, value))
	if err != nil {
		return fmt.Errorf("obbc: sign proposal: %w", err)
	}
	e := types.NewEncoder(96)
	e.Uint8(BBCTag)
	key.encode(e)
	e.Int64(int64(s.id))
	e.Uint8(value)
	e.Bytes32(sig)
	return s.cfg.SubmitAB(e.Bytes())
}

// HandleOrdered consumes one atomic-broadcast request. It returns true if
// the request was a BBC proposal (consumed), false otherwise so the caller
// can route it elsewhere. It must be called with requests in the agreed
// total order, identically at every node.
func (s *Service) HandleOrdered(req []byte) bool {
	if len(req) == 0 || req[0] != BBCTag {
		return false
	}
	d := types.NewDecoder(req[1:])
	key := decodeKey(d)
	if key.Instance != s.cfg.Instance {
		return false
	}
	voter := flcrypto.NodeID(d.Int64())
	value := d.Uint8()
	sig := d.Bytes32()
	if d.Finish() != nil || value > 1 || int(voter) < 0 || int(voter) >= s.n {
		return true
	}
	if !s.cfg.VerifyPool.VerifyNode(s.cfg.Registry, voter, proposalSigBody(key, voter, value), sig) {
		return true
	}

	i := s.inst(key)
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.fallbackSeen {
		i.fallbackSeen = true
		// Line OB26–OB27: a node that decided fast joins the fallback so
		// it reaches the 2f+1 proposals quorum. Nodes without a fast
		// decision join from the next-best grounded input: the vote they
		// broadcast earlier (re-learned or remembered), or the chain
		// oracle (this round's block was adopted out-of-band — recovery or
		// catch-up — so the instance's outcome is already materialized
		// locally). Without these, a fallback among partially-reset nodes
		// can starve below 2f+1 proposals forever.
		if !i.submitted {
			if i.fastLocal {
				i.submitted = true
				go s.submitProposal(key, i.value)
			} else if own, ok := i.votes[s.id]; ok {
				i.submitted = true
				go s.submitProposal(key, own)
			} else if input, ok := s.chainInput(key); ok {
				i.submitted = true
				go s.submitProposal(key, input)
			}
		}
		i.bump()
	}
	for _, p := range i.ordered {
		if p.voter == voter {
			return true // one proposal per voter
		}
	}
	if len(i.ordered) >= 2*s.f+1 {
		return true
	}
	i.ordered = append(i.ordered, bbcProposal{voter: voter, value: value})
	if len(i.ordered) == 2*s.f+1 && !i.decided {
		ones := 0
		for _, p := range i.ordered {
			if p.value == 1 {
				ones++
			}
		}
		i.decided = true
		if ones >= s.f+1 {
			i.value = 1
		} else {
			i.value = 0
		}
		s.metrics.FallbackDecisions.Add(1)
		i.bump()
	}
	return true
}

package flcrypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSignVerifyEd25519(t *testing.T) {
	testSignVerify(t, Ed25519)
}

func TestSignVerifyECDSA(t *testing.T) {
	testSignVerify(t, ECDSAP256)
}

func testSignVerify(t *testing.T, scheme Scheme) {
	t.Helper()
	priv, err := GenerateKey(scheme, nil)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	msg := []byte("fireledger block header")
	sig, err := priv.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !priv.Public().Verify(msg, sig) {
		t.Fatal("signature did not verify")
	}
	if priv.Public().Verify([]byte("tampered"), sig) {
		t.Fatal("signature verified against a different message")
	}
	// A flipped signature byte must not verify.
	bad := append(Signature(nil), sig...)
	bad[0] ^= 0xff
	if priv.Public().Verify(msg, bad) {
		t.Fatal("corrupted signature verified")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	for _, scheme := range []Scheme{Ed25519, ECDSAP256} {
		priv, err := GenerateKey(scheme, nil)
		if err != nil {
			t.Fatalf("%v: GenerateKey: %v", scheme, err)
		}
		b := priv.Public().Bytes()
		pub, err := ParsePublicKey(scheme, b)
		if err != nil {
			t.Fatalf("%v: ParsePublicKey: %v", scheme, err)
		}
		msg := []byte("round trip")
		sig, err := priv.Sign(msg)
		if err != nil {
			t.Fatalf("%v: Sign: %v", scheme, err)
		}
		if !pub.Verify(msg, sig) {
			t.Fatalf("%v: parsed key failed to verify", scheme)
		}
		if !bytes.Equal(pub.Bytes(), b) {
			t.Fatalf("%v: Bytes not stable across parse", scheme)
		}
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	if _, err := ParsePublicKey(Ed25519, []byte{1, 2, 3}); err == nil {
		t.Fatal("short ed25519 key accepted")
	}
	if _, err := ParsePublicKey(ECDSAP256, []byte{1, 2, 3}); err == nil {
		t.Fatal("short ecdsa key accepted")
	}
	if _, err := ParsePublicKey(Scheme(99), nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestHasherMatchesSum256(t *testing.T) {
	data := []byte("some block payload")
	h := NewHasher()
	h.Write(data)
	if got, want := h.Sum(), Sum256(data); got != want {
		t.Fatalf("Hasher.Sum = %v, Sum256 = %v", got, want)
	}
}

func TestHasherUint64Ordering(t *testing.T) {
	// Writing (1,2) and (2,1) must hash differently: the codec depends on it.
	a := NewHasher()
	a.WriteUint64(1)
	a.WriteUint64(2)
	b := NewHasher()
	b.WriteUint64(2)
	b.WriteUint64(1)
	if a.Sum() == b.Sum() {
		t.Fatal("uint64 write order did not affect digest")
	}
}

func TestRegistryVerify(t *testing.T) {
	ks := MustGenerateKeySet(4, Ed25519)
	msg := []byte("hello")
	sig, err := ks.Privs[2].Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !ks.Registry.Verify(2, msg, sig) {
		t.Fatal("registry rejected valid signature")
	}
	if ks.Registry.Verify(1, msg, sig) {
		t.Fatal("registry accepted signature under wrong identity")
	}
	if ks.Registry.Verify(77, msg, sig) {
		t.Fatal("registry accepted signature from unknown node")
	}
}

func TestRegistryF(t *testing.T) {
	cases := []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}, {100, 33}, {1, 0}}
	for _, c := range cases {
		if got := NewRegistry(c.n).F(); got != c.f {
			t.Errorf("F(n=%d) = %d, want %d", c.n, got, c.f)
		}
	}
}

func TestGenerateKeySetValidation(t *testing.T) {
	if _, err := GenerateKeySet(0, Ed25519, nil); err == nil {
		t.Fatal("zero-sized key set accepted")
	}
}

func TestPermutationDeterministic(t *testing.T) {
	seed := Sum256([]byte("block 42"))
	p1 := Permutation(seed, 7, 10)
	p2 := Permutation(seed, 7, 10)
	if len(p1) != 10 {
		t.Fatalf("permutation length %d", len(p1))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	// A different epoch must (overwhelmingly likely) differ.
	p3 := Permutation(seed, 8, 10)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different epochs produced identical permutations")
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	f := func(seedBytes []byte, epoch uint64) bool {
		const n = 10
		perm := Permutation(Sum256(seedBytes), epoch, n)
		seen := make(map[NodeID]bool, n)
		for _, id := range perm {
			if id < 0 || id >= n || seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignaturePropertyQuick(t *testing.T) {
	priv, err := GenerateKey(Ed25519, nil)
	if err != nil {
		t.Fatal(err)
	}
	pub := priv.Public()
	f := func(msg []byte) bool {
		sig, err := priv.Sign(msg)
		return err == nil && pub.Verify(msg, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignEd25519(b *testing.B) {
	benchSign(b, Ed25519)
}

func BenchmarkSignECDSA(b *testing.B) {
	benchSign(b, ECDSAP256)
}

func benchSign(b *testing.B, scheme Scheme) {
	priv, err := GenerateKey(scheme, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priv.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyEd25519(b *testing.B) {
	priv, err := GenerateKey(Ed25519, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 512)
	sig, _ := priv.Sign(msg)
	pub := priv.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pub.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

// Package edwards25519 implements group logic for the twisted Edwards curve
//
//	-x^2 + y^2 = 1 + -(121665/121666)*x^2*y^2
//
// This package is a repo-local adaptation of the Go standard library's
// crypto/internal/fips140/edwards25519 (itself derived from
// filippo.io/edwards25519), carried here because that package is internal to
// the toolchain and this repository builds without network access to fetch
// the importable module. The only changes are import-path adjustments
// (byteorder/subtle shims onto encoding/binary and crypto/subtle) and the
// addition of multiscalar.go, which provides the variable-time multi-scalar
// multiplication that batch signature verification needs. Everything else is
// byte-for-byte the upstream source; keep it that way so diffs against the
// toolchain stay reviewable.
//
// Use crypto/ed25519 for single signatures. This package exists solely for
// flcrypto's batch verification path.
package edwards25519

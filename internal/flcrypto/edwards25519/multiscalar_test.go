package edwards25519

import (
	"crypto/rand"
	"testing"
)

func randomScalar(t *testing.T) *Scalar {
	t.Helper()
	var buf [64]byte
	if _, err := rand.Read(buf[:]); err != nil {
		t.Fatal(err)
	}
	s, err := NewScalar().SetUniformBytes(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomPoint(t *testing.T) *Point {
	t.Helper()
	return new(Point).ScalarBaseMult(randomScalar(t))
}

// TestVarTimeMultiScalarBaseMult checks the shared-doubling combination
// against the sum of independent scalar multiplications, across batch sizes
// including the degenerate empty batch.
func TestVarTimeMultiScalarBaseMult(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 32} {
		b := randomScalar(t)
		scalars := make([]*Scalar, n)
		points := make([]*Point, n)
		want := new(Point).ScalarBaseMult(b)
		for i := 0; i < n; i++ {
			scalars[i] = randomScalar(t)
			points[i] = randomPoint(t)
			term := new(Point).ScalarMult(scalars[i], points[i])
			want.Add(want, term)
		}
		got := new(Point).VarTimeMultiScalarBaseMult(b, scalars, points)
		if got.Equal(want) != 1 {
			t.Fatalf("n=%d: multiscalar result differs from term-by-term sum", n)
		}
	}
}

// TestVarTimeMultiScalarBaseMultIdentity exercises the batch-verification
// shape: coefficients chosen so the combination collapses to the identity.
func TestVarTimeMultiScalarBaseMultIdentity(t *testing.T) {
	// a*B + (-a)*B + 0*P == identity for any P.
	a := randomScalar(t)
	nega := NewScalar().Negate(a)
	zero := NewScalar()
	p := randomPoint(t)
	got := new(Point).VarTimeMultiScalarBaseMult(a, []*Scalar{nega, zero}, []*Point{NewGeneratorPoint(), p})
	if got.Equal(NewIdentityPoint()) != 1 {
		t.Fatal("identity combination did not collapse to the identity point")
	}
}

// Repo-local addition (not part of the upstream toolchain source): the
// variable-time multi-scalar multiplication used by flcrypto's batch
// signature verification. Modeled on VarTimeDoubleScalarBaseMult, extended
// from one dynamic point to many so the 256 doublings of the accumulator are
// shared across every term of the batch equation.

package edwards25519

// VarTimeMultiScalarBaseMult sets v = b*B + Σ scalars[i]*points[i], where B
// is the canonical generator, and returns v. scalars and points must have
// equal length; len 0 reduces to b*B.
//
// The basepoint term uses the precomputed width-8 NAF table; every dynamic
// point gets a width-5 NAF table built on the fly. One pass of 256 shared
// doublings then adds whichever table entries the NAF digits select, so the
// per-point cost is ~256/6 additions plus the table build instead of a full
// scalar multiplication.
//
// Execution time depends on the inputs.
func (v *Point) VarTimeMultiScalarBaseMult(b *Scalar, scalars []*Scalar, points []*Point) *Point {
	if len(scalars) != len(points) {
		panic("edwards25519: mismatched multiscalar input lengths")
	}
	checkInitialized(points...)

	basepointNafTable := basepointNafTable()
	bNaf := b.nonAdjacentForm(8)

	tables := make([]nafLookupTable5, len(points))
	nafs := make([][256]int8, len(scalars))
	for i := range points {
		tables[i].FromP3(points[i])
		nafs[i] = scalars[i].nonAdjacentForm(5)
	}

	multP := &projCached{}
	multB := &affineCached{}
	tmp1 := &projP1xP1{}
	tmp2 := &projP2{}
	tmp2.Zero()

	// Walk bits high to low, doubling the shared accumulator once per bit
	// and folding in the (sparse) nonzero NAF digits of every term.
	for i := 255; i >= 0; i-- {
		tmp1.Double(tmp2)

		for j := range nafs {
			if d := nafs[j][i]; d > 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(multP, d)
				tmp1.Add(v, multP)
			} else if d < 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(multP, -d)
				tmp1.Sub(v, multP)
			}
		}
		if d := bNaf[i]; d > 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, d)
			tmp1.AddAffine(v, multB)
		} else if d < 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, -d)
			tmp1.SubAffine(v, multB)
		}

		tmp2.FromP1xP1(tmp1)
	}

	return v.fromP2(tmp2)
}

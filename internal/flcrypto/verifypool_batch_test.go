package flcrypto

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestVerifyPoolWorkersPinned is the regression test for the constructor's
// worker-count semantics: zero and negative counts select GOMAXPROCS —
// deterministically, not "whatever happened to work" — and explicit counts
// are taken literally. Several callers (including this repo's own tests)
// pass 0 and depend on getting a real pool.
func TestVerifyPoolWorkersPinned(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	for _, w := range []int{0, -1, -64} {
		p := NewVerifyPool(w, 0)
		if got := p.Workers(); got != want {
			t.Fatalf("NewVerifyPool(%d, 0).Workers() = %d, want GOMAXPROCS = %d", w, got, want)
		}
		p.Close()
	}
	p := NewVerifyPool(3, 0)
	if got := p.Workers(); got != 3 {
		t.Fatalf("explicit worker count not honored: got %d", got)
	}
	p.Close()
	if (*VerifyPool)(nil).Workers() != 0 {
		t.Fatal("nil pool must report zero workers")
	}
}

// TestVerifyPoolBatchOnByDefault pins the default configuration the rest of
// the repo (and CI's bench smoke) assumes: a plain NewVerifyPool batches.
func TestVerifyPoolBatchOnByDefault(t *testing.T) {
	p := NewVerifyPool(0, 0)
	defer p.Close()
	if !p.BatchEnabled() || p.BatchMax() != DefaultBatchMax {
		t.Fatalf("default pool: BatchEnabled=%v BatchMax=%d, want true/%d", p.BatchEnabled(), p.BatchMax(), DefaultBatchMax)
	}
	po := NewVerifyPoolOpts(PoolOptions{DisableBatch: true})
	defer po.Close()
	if po.BatchEnabled() {
		t.Fatal("DisableBatch pool still reports batching")
	}
	if (*VerifyPool)(nil).BatchEnabled() {
		t.Fatal("nil pool reports batching")
	}
}

// TestVerifyPoolBatchPathResolvesLoad drives enough concurrent async work
// through a batching pool that real multi-scalar combinations run, and
// checks every verdict. This is also the -race target CI runs for the batch
// pool under concurrent forged/valid load.
func TestVerifyPoolBatchPathResolvesLoad(t *testing.T) {
	ks := MustGenerateKeySet(4, Ed25519)
	p := NewVerifyPoolOpts(PoolOptions{Workers: 2, MinBatchWait: 200 * time.Microsecond})
	defer p.Close()

	const submitters = 6
	const perSubmitter = 300
	var wrong atomic.Uint64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var cbs sync.WaitGroup
			for i := 0; i < perSubmitter; i++ {
				node := (s + i) % 4
				msg := []byte(fmt.Sprintf("batch load envelope %d/%d", s, i))
				sig, err := ks.Privs[node].Sign(msg)
				if err != nil {
					wrong.Add(1)
					continue
				}
				forged := i%4 == 0
				if forged {
					sig = append(Signature(nil), sig...)
					sig[32+(i%31)] ^= 0x20 // tamper with s: stays batch-decodable
				}
				cbs.Add(1)
				p.VerifyAsyncNode(ks.Registry, NodeID(node), msg, sig, func(ok bool) {
					if ok == forged {
						wrong.Add(1)
					}
					cbs.Done()
				})
			}
			cbs.Wait()
		}(s)
	}
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d wrong verdicts under concurrent forged/valid batch load", n)
	}
	st := p.BatchStats()
	if st.Batches == 0 || st.BatchedSigs == 0 {
		t.Fatalf("no batches ran under load: %+v", st)
	}
}

// cachedAs reports whether the envelope currently has a cache entry, and
// its cached verdict.
func (p *VerifyPool) cachedAs(pub PublicKey, msg []byte, sig Signature) (ok, cached bool) {
	key := cacheKey(pub, msg, sig)
	return p.shards[key[0]%cacheShardCount].get(key)
}

// TestVerifyPoolForgedPositionsProperty is the cache-poisoning property
// test: seed 1..k forged signatures at random positions of an N-batch,
// submit the whole batch through the async path, and assert that (a)
// exactly the forged positions get false, (b) the cache never holds a
// forged envelope as valid, and (c) honest envelopes are not cached invalid.
// Runs 1000 iterations (100 under -short); the CI batch step runs it with
// -race.
func TestVerifyPoolForgedPositionsProperty(t *testing.T) {
	iters := 1000
	if testing.Short() {
		iters = 100
	}
	const n = 8
	ks := MustGenerateKeySet(n, Ed25519)
	p := NewVerifyPoolOpts(PoolOptions{Workers: 2, MinBatchWait: 100 * time.Microsecond})
	defer p.Close()
	rng := rand.New(rand.NewSource(42))

	type item struct {
		pub    PublicKey
		msg    []byte
		sig    Signature
		forged bool
	}
	for iter := 0; iter < iters; iter++ {
		items := make([]item, n)
		k := 1 + rng.Intn(3)
		forgedAt := rng.Perm(n)[:k]
		isForged := map[int]bool{}
		for _, i := range forgedAt {
			isForged[i] = true
		}
		for i := 0; i < n; i++ {
			msg := []byte(fmt.Sprintf("property %d/%d", iter, i))
			sig, err := ks.Privs[i].Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			if isForged[i] {
				sig = append(Signature(nil), sig...)
				// Alternate corruption classes: tampered s (rides into the
				// combination, isolated by bisection), tampered R (diverted
				// to the individual path), tampered message bytes.
				switch rng.Intn(3) {
				case 0:
					sig[32+rng.Intn(31)] ^= byte(1 + rng.Intn(255))
				case 1:
					sig[rng.Intn(32)] ^= byte(1 + rng.Intn(255))
				default:
					msg = append([]byte(nil), msg...)
					msg[rng.Intn(len(msg))] ^= byte(1 + rng.Intn(255))
				}
			}
			items[i] = item{pub: ks.Registry.PublicKey(NodeID(i)), msg: msg, sig: sig, forged: isForged[i]}
		}
		var wg sync.WaitGroup
		got := make([]bool, n)
		for i := range items {
			i := i
			wg.Add(1)
			p.VerifyAsync(items[i].pub, items[i].msg, items[i].sig, func(ok bool) {
				got[i] = ok
				wg.Done()
			})
		}
		wg.Wait()
		for i, it := range items {
			if got[i] == it.forged {
				t.Fatalf("iter %d item %d: verdict %v, forged %v", iter, i, got[i], it.forged)
			}
			ok, cached := p.cachedAs(it.pub, it.msg, it.sig)
			if it.forged && cached && ok {
				t.Fatalf("iter %d: forged envelope %d cached as valid", iter, i)
			}
			if !it.forged && cached && !ok {
				t.Fatalf("iter %d: honest envelope %d cached as invalid", iter, i)
			}
		}
	}
}

// TestVerifyPoolLoneRequestLatency pins the no-starvation bound of the
// adaptive fill wait: a lone request in a quiet pool completes within (a
// small multiple of) MinBatchWait even though MaxBatchWait is enormous —
// both on a cold estimator and on one left stale-high by an earlier burst.
// This is the PR 8 WRB lesson applied here: an estimator that has only seen
// the fast path must not wedge the slow one.
func TestVerifyPoolLoneRequestLatency(t *testing.T) {
	priv, pub := poolKeyPair(t)
	const minWait = 10 * time.Millisecond
	const maxWait = 3 * time.Second
	p := NewVerifyPoolOpts(PoolOptions{Workers: 1, MinBatchWait: minWait, MaxBatchWait: maxWait})
	defer p.Close()
	// The bound a starvation bug would break is maxWait; anything far below
	// it proves the lone request took the MinBatchWait branch. 1s of slack
	// absorbs CI scheduling noise without weakening that proof.
	const bound = time.Second

	lone := func(label string, i int) {
		msg := []byte(fmt.Sprintf("lone %s %d", label, i))
		sig, _ := priv.Sign(msg)
		done := make(chan struct{})
		start := time.Now()
		p.VerifyAsync(pub, msg, sig, func(ok bool) {
			if !ok {
				t.Errorf("%s: lone request rejected", label)
			}
			close(done)
		})
		<-done
		if elapsed := time.Since(start); elapsed > bound {
			t.Fatalf("%s: lone request took %v (MinBatchWait %v, MaxBatchWait %v)", label, elapsed, minWait, maxWait)
		}
	}
	// Cold estimator: rate unknown, must take the MinBatchWait branch.
	lone("cold", 0)

	// Prime the estimator with a dense burst so a naive controller would
	// project a fast fill and hold a long wait open.
	var wg sync.WaitGroup
	for i := 0; i < 500; i++ {
		msg := []byte(fmt.Sprintf("burst %d", i))
		sig, _ := priv.Sign(msg)
		wg.Add(1)
		p.VerifyAsync(pub, msg, sig, func(bool) { wg.Done() })
	}
	wg.Wait()
	time.Sleep(20 * time.Millisecond) // cluster goes quiet
	lone("stale-high", 1)
}

// TestVerifyPoolCloseDeterministic is the regression test for the
// Close/VerifyAsync race: submissions racing Close used to be able to land
// in the queue after the drain pass and never get their callback. The
// contract now: every VerifyAsync that returns gets its callback — from a
// worker, from Close's drain, or synchronously after close — never dropped.
func TestVerifyPoolCloseDeterministic(t *testing.T) {
	priv, pub := poolKeyPair(t)
	msg := []byte("closing race")
	sig, _ := priv.Sign(msg)
	for round := 0; round < 20; round++ {
		p := NewVerifyPoolOpts(PoolOptions{Workers: 2, MinBatchWait: -1})
		var submitted, called atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					p.VerifyAsync(pub, msg, sig, func(ok bool) {
						if ok {
							called.Add(1)
						}
					})
					submitted.Add(1)
				}
			}()
		}
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		p.Close()
		close(stop)
		wg.Wait()
		// Submissions that returned after Close ran synchronously, so by
		// this point every callback must have fired.
		if s, c := submitted.Load(), called.Load(); s != c {
			t.Fatalf("round %d: %d submissions but %d callbacks", round, s, c)
		}
	}
}

package flcrypto

import (
	"fmt"
	"math/rand"
	"testing"
)

func batchFixture(t *testing.T, n int) ([]PublicKey, [][]byte, []Signature) {
	t.Helper()
	pubs := make([]PublicKey, n)
	msgs := make([][]byte, n)
	sigs := make([]Signature, n)
	for i := 0; i < n; i++ {
		priv, err := GenerateKey(Ed25519, nil)
		if err != nil {
			t.Fatal(err)
		}
		pubs[i] = priv.Public()
		msgs[i] = []byte(fmt.Sprintf("batch envelope %d — padded out to a realistic header size ........", i))
		sigs[i], err = priv.Sign(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	return pubs, msgs, sigs
}

func TestVerifyBatchAllValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 64} {
		pubs, msgs, sigs := batchFixture(t, n)
		for i, ok := range VerifyBatch(pubs, msgs, sigs) {
			if !ok {
				t.Fatalf("n=%d: valid signature %d rejected by batch", n, i)
			}
		}
	}
}

// TestVerifyBatchMatchesSingle is the equivalence property the consensus
// layer depends on: for every corruption class we can construct, the batch
// verdict must equal pub.Verify's verdict, item by item.
func TestVerifyBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	corrupt := []struct {
		name string
		mut  func(msgs [][]byte, sigs []Signature, i int)
	}{
		{"flip-sig-R", func(_ [][]byte, sigs []Signature, i int) { sigs[i][rng.Intn(32)] ^= 0x40 }},
		{"flip-sig-s", func(_ [][]byte, sigs []Signature, i int) { sigs[i][32+rng.Intn(31)] ^= 0x04 }},
		{"flip-msg", func(msgs [][]byte, _ []Signature, i int) { msgs[i][rng.Intn(len(msgs[i]))] ^= 0x01 }},
		{"noncanonical-s", func(_ [][]byte, sigs []Signature, i int) { sigs[i][63] |= 0xe0 }},
		{"truncated-sig", func(_ [][]byte, sigs []Signature, i int) { sigs[i] = sigs[i][:40] }},
		{"all-ff-R", func(_ [][]byte, sigs []Signature, i int) {
			for j := 0; j < 32; j++ {
				sigs[i][j] = 0xff
			}
		}},
	}
	for _, c := range corrupt {
		t.Run(c.name, func(t *testing.T) {
			pubs, msgs, sigs := batchFixture(t, 12)
			bad := map[int]bool{}
			for _, i := range []int{0, 5, 11} {
				c.mut(msgs, sigs, i)
				bad[i] = true
			}
			got := VerifyBatch(pubs, msgs, sigs)
			for i := range pubs {
				want := pubs[i].Verify(msgs[i], sigs[i])
				if got[i] != want {
					t.Fatalf("item %d: batch=%v single=%v (corruption %s, bad=%v)", i, got[i], want, c.name, bad[i])
				}
				if bad[i] && got[i] {
					t.Fatalf("corrupted item %d accepted", i)
				}
				if !bad[i] && !got[i] {
					t.Fatalf("honest item %d rejected alongside forgeries", i)
				}
			}
		})
	}
}

func TestVerifyBatchMixedSchemes(t *testing.T) {
	pubs, msgs, sigs := batchFixture(t, 6)
	// Swap two items for ECDSA (non-batchable scheme; must route through
	// the individual path transparently).
	for _, i := range []int{1, 4} {
		priv, err := GenerateKey(ECDSAP256, nil)
		if err != nil {
			t.Fatal(err)
		}
		pubs[i] = priv.Public()
		sigs[i], err = priv.Sign(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	// And one ECDSA forgery.
	sigs[4] = append(Signature(nil), sigs[4]...)
	sigs[4][5] ^= 0xff
	got := VerifyBatch(pubs, msgs, sigs)
	for i := range pubs {
		if want := pubs[i].Verify(msgs[i], sigs[i]); got[i] != want {
			t.Fatalf("item %d: batch=%v single=%v", i, got[i], want)
		}
	}
	if got[4] {
		t.Fatal("forged ECDSA signature accepted in mixed batch")
	}
}

func TestVerifyBatchWrongKey(t *testing.T) {
	pubs, msgs, sigs := batchFixture(t, 8)
	// Signature 3 presented under key 2: a well-formed signature that is
	// simply not by that key — the large-defect case bisection must isolate.
	sigs[3] = sigs[2]
	msgs[3] = msgs[2]
	got := VerifyBatch(pubs, msgs, sigs)
	for i := range pubs {
		want := i != 3
		if got[i] != want {
			t.Fatalf("item %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestBatchVerifyStats(t *testing.T) {
	pubs, msgs, sigs := batchFixture(t, 16)
	eds := make([]*ed25519Pub, len(pubs))
	for i := range pubs {
		eds[i] = pubs[i].(*ed25519Pub)
	}
	outcomes, st := batchVerify(eds, msgs, sigs)
	if !st.cleanPass || st.combinations != 1 || st.bisections != 0 || st.singles != 0 {
		t.Fatalf("clean batch stats off: %+v", st)
	}
	for i, o := range outcomes {
		if !o.ok || o.confirmed {
			t.Fatalf("clean batch outcome %d: %+v (group-confirmed expected)", i, o)
		}
	}

	// Tamper with the message, not the signature bytes: the signature stays
	// fully decodable, so the forgery rides into the combination and must
	// be isolated by bisection (a corrupted R would be diverted to the
	// individual path before any combination ran).
	msgs[9] = append([]byte(nil), msgs[9]...)
	msgs[9][3] ^= 0x10
	outcomes, st = batchVerify(eds, msgs, sigs)
	if st.cleanPass {
		t.Fatal("cleanPass set on a failing batch")
	}
	if st.bisections == 0 || st.singles == 0 {
		t.Fatalf("failing batch did not bisect to singles: %+v", st)
	}
	for i, o := range outcomes {
		if (i == 9) == o.ok {
			t.Fatalf("outcome %d: ok=%v", i, o.ok)
		}
		if i == 9 && !o.confirmed {
			t.Fatal("forged item's verdict not individually confirmed")
		}
	}
}

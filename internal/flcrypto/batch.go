package flcrypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha512"

	"repro/internal/flcrypto/edwards25519"
)

// Batch Ed25519 verification: one multi-scalar curve combination checks
// dozens of signatures at roughly half the per-signature cost of individual
// verification (the 256 accumulator doublings are shared across the batch;
// see edwards25519.VarTimeMultiScalarBaseMult).
//
// Per signature i with decompressed nonce point R_i, scalar s_i, public-key
// point A_i and challenge k_i = SHA-512(R_i ‖ A_i ‖ M_i), the single check
// is [s_i]B − [k_i]A_i − R_i == 0. The batch draws an independent random
// 128-bit odd coefficient z_i per signature and checks
//
//	[Σ z_i·s_i]B − Σ [z_i·k_i]A_i − Σ [z_i]R_i == identity.
//
// If every signature is individually valid the sum is exactly zero; if any
// is not, the random z_i make the sum nonzero except with probability
// ≤ 2⁻¹²⁶, so a failed combination proves at least one bad signature. The
// failure path bisects: halves are re-checked (fresh coefficients each
// time), and singleton leaves are resolved by stdlib ed25519.Verify — the
// authoritative verdict — so one forged envelope costs O(log n) extra
// combinations and can never reject an honest peer's signature riding in
// the same batch.
//
// Equivalence with the stdlib single-verify path is load-bearing (every
// node must accept exactly the same envelopes, whichever path it used):
//
//   - s is required canonical (SetCanonicalBytes), as stdlib requires;
//   - R must round-trip through point decoding back to the exact signature
//     bytes — stdlib compares recomputed-R bytes to sig[:32], so a
//     non-canonical R encoding is stdlib-invalid; such signatures (and any
//     undecodable R/A) are diverted to the individual path rather than
//     batched;
//   - z_i is forced odd so a single signature whose defect lies entirely in
//     the small 8-torsion subgroup cannot vanish from the combination.
//
// The one remaining divergence from stdlib is inherent to cofactorless
// batching (Chalkias et al., "Taming the many EdDSAs"): a signer who knows
// a key's private scalar can craft ≥2 signatures whose torsion defects
// cancel (e.g. twin order-2 offsets), which pass a combined check but fail
// individually. Crafting such a defect without the private key is as hard
// as forging, so this never admits a forgery of an honest node's signature
// — it only lets a Byzantine signer get its own messages accepted
// inconsistently, which is exactly the equivocation power it already has by
// signing two conflicts honestly, and which the protocol layer above
// already tolerates and convicts. The verify cache is still guarded: a
// batch that fails anywhere caches only individually-confirmed verdicts
// (see VerifyPool).
const batchRandBytes = 16

// batchSig is one decoded, batch-eligible signature check.
type batchSig struct {
	A   *edwards25519.Point // decoded public key (shared, memoized on the key)
	R   *edwards25519.Point // decoded, canonical nonce point
	s   *edwards25519.Scalar
	k   *edwards25519.Scalar
	idx int // caller's position
}

// batchOutcome reports one signature's verdict and how it was reached.
type batchOutcome struct {
	ok        bool
	confirmed bool // true when stdlib ed25519.Verify produced the verdict
}

// batchStats counts the work a batchVerify call did, for pool metrics.
type batchStats struct {
	combinations int // multi-scalar checks run (incl. bisection re-checks)
	bisections   int // failed combinations that split
	singles      int // stdlib verifications (leaves + ineligible items)
	cleanPass    bool
}

// decodeBatchSig prepares one signature for the combined check. ok=false
// means the item cannot ride in a batch — undecodable or non-canonical
// components — and must take the individual path (which is authoritative
// for exactly these cases).
func decodeBatchSig(pub *ed25519Pub, msg []byte, sig Signature, idx int) (batchSig, bool) {
	if len(sig) != ed25519.SignatureSize || sig[63]&224 != 0 {
		return batchSig{}, false
	}
	A := pub.batchPoint()
	if A == nil {
		return batchSig{}, false
	}
	R, err := new(edwards25519.Point).SetBytes(sig[:32])
	if err != nil {
		return batchSig{}, false
	}
	// stdlib compares recomputed-R *bytes* against sig[:32]; a
	// non-canonical encoding of the right point is stdlib-invalid, so only
	// round-tripping encodings may be batched.
	rb := R.Bytes()
	for i := range rb {
		if rb[i] != sig[i] {
			return batchSig{}, false
		}
	}
	s, err := edwards25519.NewScalar().SetCanonicalBytes(sig[32:])
	if err != nil {
		return batchSig{}, false
	}
	kh := sha512.New()
	kh.Write(sig[:32])
	kh.Write(pub.k)
	kh.Write(msg)
	k, err := edwards25519.NewScalar().SetUniformBytes(kh.Sum(nil))
	if err != nil {
		return batchSig{}, false
	}
	return batchSig{A: A, R: R, s: s, k: k, idx: idx}, true
}

// combinedCheck runs one randomized multi-scalar combination over sigs.
// It returns false on any error drawing randomness (callers then fall back
// to individual verification — batch soundness rests on the coefficients).
func combinedCheck(sigs []batchSig) bool {
	buf := make([]byte, batchRandBytes*len(sigs))
	if _, err := rand.Read(buf); err != nil {
		return false
	}
	b := edwards25519.NewScalar()
	scalars := make([]*edwards25519.Scalar, 0, 2*len(sigs))
	points := make([]*edwards25519.Point, 0, 2*len(sigs))
	var zb [32]byte
	for i, sg := range sigs {
		copy(zb[:], buf[i*batchRandBytes:(i+1)*batchRandBytes])
		// Odd z: a pure small-torsion defect (order dividing 8) in a single
		// signature cannot be annihilated by the coefficient.
		zb[0] |= 1
		for j := batchRandBytes; j < len(zb); j++ {
			zb[j] = 0
		}
		z, err := edwards25519.NewScalar().SetCanonicalBytes(zb[:])
		if err != nil {
			return false // unreachable: z < 2^128 < ℓ is canonical
		}
		// Accumulate Σ z·s on the basepoint; add −[z·k]A and −[z]R terms.
		b.MultiplyAdd(z, sg.s, b)
		negZ := edwards25519.NewScalar().Negate(z)
		zk := edwards25519.NewScalar().Multiply(negZ, sg.k)
		scalars = append(scalars, zk, negZ)
		points = append(points, sg.A, sg.R)
	}
	v := new(edwards25519.Point).VarTimeMultiScalarBaseMult(b, scalars, points)
	return v.Equal(edwards25519.NewIdentityPoint()) == 1
}

// resolveBatch assigns verdicts for sigs into out, bisecting on failure.
// Passing groups are trusted wholesale only via the caller's bookkeeping
// (stats.cleanPass); inside a failure cone every singleton leaf is resolved
// by stdlib verification.
func resolveBatch(sigs []batchSig, pubs []*ed25519Pub, msgs [][]byte, rawSigs []Signature, out []batchOutcome, st *batchStats) {
	if len(sigs) == 0 {
		return
	}
	if len(sigs) == 1 {
		i := sigs[0].idx
		st.singles++
		ok := pubs[i].Verify(msgs[i], rawSigs[i])
		out[i] = batchOutcome{ok: ok, confirmed: true}
		return
	}
	st.combinations++
	if combinedCheck(sigs) {
		for _, sg := range sigs {
			out[sg.idx] = batchOutcome{ok: true}
		}
		return
	}
	st.bisections++
	mid := len(sigs) / 2
	resolveBatch(sigs[:mid], pubs, msgs, rawSigs, out, st)
	resolveBatch(sigs[mid:], pubs, msgs, rawSigs, out, st)
}

// batchVerify checks all (pubs[i], msgs[i], sigs[i]) tuples, returning one
// outcome per item plus work stats. Items whose key is not batch-eligible
// Ed25519 (wrong scheme, undecodable, non-canonical components) are
// resolved individually. The three slices must have equal length.
func batchVerify(pubs []*ed25519Pub, msgs [][]byte, sigs []Signature) ([]batchOutcome, batchStats) {
	out := make([]batchOutcome, len(pubs))
	var st batchStats
	eligible := make([]batchSig, 0, len(pubs))
	for i := range pubs {
		if bs, ok := decodeBatchSig(pubs[i], msgs[i], sigs[i], i); ok {
			eligible = append(eligible, bs)
		} else {
			st.singles++
			out[i] = batchOutcome{ok: pubs[i].Verify(msgs[i], sigs[i]), confirmed: true}
		}
	}
	if len(eligible) == 0 {
		return out, st
	}
	if len(eligible) == 1 {
		i := eligible[0].idx
		st.singles++
		out[i] = batchOutcome{ok: pubs[i].Verify(msgs[i], sigs[i]), confirmed: true}
		return out, st
	}
	st.combinations++
	if combinedCheck(eligible) {
		st.cleanPass = len(eligible) == len(pubs)
		for _, sg := range eligible {
			out[sg.idx] = batchOutcome{ok: true}
		}
		return out, st
	}
	st.bisections++
	mid := len(eligible) / 2
	resolveBatch(eligible[:mid], pubs, msgs, sigs, out, &st)
	resolveBatch(eligible[mid:], pubs, msgs, sigs, out, &st)
	return out, st
}

// VerifyBatch checks the signature tuples as one Ed25519 batch, returning
// per-item validity identical to calling pub.Verify item by item. Keys that
// are not Ed25519 — and signatures with undecodable or non-canonical
// components — are verified individually inside the call, so mixed batches
// are fine. It is the standalone (uncached) face of the VerifyPool batch
// path; panics if the slice lengths differ.
func VerifyBatch(pubs []PublicKey, msgs [][]byte, sigs []Signature) []bool {
	if len(pubs) != len(msgs) || len(msgs) != len(sigs) {
		panic("flcrypto: VerifyBatch slice lengths differ")
	}
	valid := make([]bool, len(pubs))
	eds := make([]*ed25519Pub, 0, len(pubs))
	edIdx := make([]int, 0, len(pubs))
	edMsgs := make([][]byte, 0, len(pubs))
	edSigs := make([]Signature, 0, len(pubs))
	for i, pub := range pubs {
		if ep, ok := pub.(*ed25519Pub); ok {
			eds = append(eds, ep)
			edIdx = append(edIdx, i)
			edMsgs = append(edMsgs, msgs[i])
			edSigs = append(edSigs, sigs[i])
			continue
		}
		valid[i] = pub != nil && pub.Verify(msgs[i], sigs[i])
	}
	outcomes, _ := batchVerify(eds, edMsgs, edSigs)
	for j, o := range outcomes {
		valid[edIdx[j]] = o.ok
	}
	return valid
}

package flcrypto

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// The sync-vs-pooled verification benchmarks behind BENCH_verify.json (see
// the repository root): per-envelope cost of
//
//   - sync:  the pre-refactor model — every envelope verified inline on one
//     goroutine, no cache;
//   - pool/wW/cold: the async pipeline with W workers and a cache too small
//     to help (every check runs crypto, but W cores run it);
//   - pool/wW/warm: the same pipeline re-checking already-seen envelopes —
//     the WRB-echo/evidence-response case the verify cache exists for.
//
// Run with: go test -bench BenchmarkVerify -run '^$' ./internal/flcrypto

type benchEnv struct {
	msg []byte
	sig Signature
}

var (
	benchOnce sync.Once
	benchPub  PublicKey
	benchEnvs []benchEnv
)

const benchEnvCount = 4096

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		priv, err := GenerateKey(Ed25519, nil)
		if err != nil {
			panic(err)
		}
		benchPub = priv.Public()
		for i := 0; i < benchEnvCount; i++ {
			msg := []byte(fmt.Sprintf("benchmark envelope %05d padded to a header-ish size ----------------", i))
			sig, err := priv.Sign(msg)
			if err != nil {
				panic(err)
			}
			benchEnvs = append(benchEnvs, benchEnv{msg: msg, sig: sig})
		}
	})
}

func BenchmarkVerifySync(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := &benchEnvs[i%benchEnvCount]
		if !benchPub.Verify(env.msg, env.sig) {
			b.Fatal("verification failed")
		}
	}
}

func benchPool(b *testing.B, workers int, warm bool) {
	benchSetup(b)
	cacheSize := 1 // floor: 128 entries over 4096 envelopes ≈ always cold
	if warm {
		cacheSize = 2 * benchEnvCount
	}
	p := NewVerifyPool(workers, cacheSize)
	defer p.Close()
	if warm {
		for i := range benchEnvs {
			if !p.Verify(benchPub, benchEnvs[i].msg, benchEnvs[i].sig) {
				b.Fatal("verification failed")
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(b.N)
	var failed bool
	for i := 0; i < b.N; i++ {
		env := &benchEnvs[i%benchEnvCount]
		p.VerifyAsync(benchPub, env.msg, env.sig, func(ok bool) {
			if !ok {
				failed = true
			}
			wg.Done()
		})
	}
	wg.Wait()
	b.StopTimer()
	if failed {
		b.Fatal("verification failed")
	}
	hits, misses := p.Stats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total), "cache-hit-frac")
	}
}

func BenchmarkVerifyPool(b *testing.B) {
	workerCounts := []int{1, 4, runtime.NumCPU()}
	if runtime.NumCPU() == 4 {
		workerCounts = workerCounts[:2]
	}
	for _, w := range workerCounts {
		for _, warm := range []bool{false, true} {
			label := "cold"
			if warm {
				label = "warm"
			}
			b.Run(fmt.Sprintf("w%d/%s", w, label), func(b *testing.B) {
				benchPool(b, w, warm)
			})
		}
	}
}

// BenchmarkBatchVerify measures the multi-scalar combination's per-signature
// cost against batch size — the break-even curve behind DefaultBatchMax and
// the adaptive fill wait. Reported as ns/op per signature.
func BenchmarkBatchVerify(b *testing.B) {
	benchSetup(b)
	pub := benchPub.(*ed25519Pub)
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			pubs := make([]*ed25519Pub, n)
			msgs := make([][]byte, n)
			sigs := make([]Signature, n)
			for i := 0; i < n; i++ {
				pubs[i] = pub
				msgs[i] = benchEnvs[i].msg
				sigs[i] = benchEnvs[i].sig
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += n {
				outcomes, _ := batchVerify(pubs, msgs, sigs)
				for _, o := range outcomes {
					if !o.ok {
						b.Fatal("verification failed")
					}
				}
			}
		})
	}
}
